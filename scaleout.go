package dlsm

import (
	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/shard"
)

// ErrReadOnly is returned by writes through a read-only secondary.
var ErrReadOnly = engine.ErrReadOnly

// ErrFenced is returned by writes on a primary whose shard write lease was
// taken over by another compute node (TakeoverAt): the write may be in the
// remote log, but it was never acknowledged and the new primary's recovery
// decides whether it survives. Treat like any failed write.
var ErrFenced = engine.ErrFenced

// ErrLeaseHeld is returned by OpenPrimaryAt when another compute node holds
// a shard's write lease. Use TakeoverAt to depose a dead holder.
var ErrLeaseHeld = shard.ErrLeaseHeld

// OpenPrimaryAt is OpenAt plus write-lease acquisition (multi-compute
// scale-out): compute node computeIdx becomes the shard group's single
// writer under the logical identity owner, acquiring one epoch-fenced
// lease per shard from the shard's memory node. opts must have Durability
// set — the lease fence rides the WAL commit path, and handoff replays the
// log. Fails with ErrLeaseHeld if another compute node already owns a
// shard.
//
// Deprecated: use OpenDB with RolePrimary and Placement.Lease set.
func OpenPrimaryAt(d *Deployment, computeIdx, owner int, servers []*memnode.Server, opts Options, lambda int, boundaries [][]byte) (*DB, error) {
	return OpenDB(d, RolePrimary,
		Placement{ComputeIdx: computeIdx, Owner: owner, Servers: servers, Lambda: lambda, Boundaries: boundaries, Lease: true}, opts)
}

// TakeoverAt moves write ownership of owner's shard group to compute node
// computeIdx: it deposes the current lease holder of every shard (the CAS
// fences the old primary's unacknowledged appends before the log is read)
// and rebuilds the shards from their remote write-ahead logs, so every
// write the old primary acknowledged survives. The geometry arguments must
// match the dead primary's OpenPrimaryAt call; the owner-remap rule
// (see Placement) applies — the new primary keeps logging under owner.
//
// Deprecated: use OpenDB with RoleTakeover and an explicit Placement.
func TakeoverAt(d *Deployment, computeIdx, owner int, servers []*memnode.Server, opts Options, lambda int, boundaries [][]byte) (*DB, error) {
	return OpenDB(d, RoleTakeover,
		Placement{ComputeIdx: computeIdx, Owner: owner, Servers: servers, Lambda: lambda, Boundaries: boundaries}, opts)
}

// OpenSecondaryAt attaches compute node computeIdx as a read-only
// secondary to the shard group a primary opened with
// OpenPrimaryAt(d, _, owner, ...) — or plain OpenAt(d, owner, ...) with
// Durability set. The secondary serves Gets and scans directly from the
// remote SSTables through its own compute-local state (cache, readahead),
// at the primary's last published checkpoint: bounded staleness, not
// read-your-writes. Refresh the view explicitly with DB.RefreshView or per
// read via ReadOptions.MaxStaleness; writes return ErrReadOnly.
//
// Deprecated: use OpenDB with RoleSecondary and an explicit Placement.
func OpenSecondaryAt(d *Deployment, computeIdx, owner int, servers []*memnode.Server, opts Options, lambda int, boundaries [][]byte) (*DB, error) {
	return OpenDB(d, RoleSecondary,
		Placement{ComputeIdx: computeIdx, Owner: owner, Servers: servers, Lambda: lambda, Boundaries: boundaries}, opts)
}

// RefreshView re-reads every shard's WAL checkpoint slot on a read-only
// secondary and installs the primary's latest published view. Errors on
// primaries.
func (db *DB) RefreshView() error { return db.inner.RefreshView() }

// PublishCheckpoint synchronously publishes every shard's checkpoint on a
// primary (the background trimmer does the same after each flush). Call it
// after Flush to make all flushed writes observable by secondaries' next
// RefreshView. Errors when Durability is off.
func (db *DB) PublishCheckpoint() error { return db.inner.PublishCheckpoint() }
