package dlsm_test

import (
	"fmt"

	"dlsm"
)

// ExampleBatch loads rows with one sequence-range claim per batch instead of
// one per Put, then reads one back.
func ExampleBatch() {
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()
	d.Run(func() {
		db := dlsm.Open(d, dlsm.DefaultOptions())
		defer db.Close()
		s := db.NewSession()
		defer s.Close()

		var b dlsm.Batch
		for i := 0; i < 100; i++ {
			b.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
		}
		b.Delete([]byte("key-007"))
		if err := s.Apply(&b); err != nil {
			panic(err)
		}
		b.Reset() // ready for the next batch

		v, _ := s.Get([]byte("key-042"))
		fmt.Println(string(v))
		_, err := s.Get([]byte("key-007"))
		fmt.Println(err == dlsm.ErrNotFound)
	})
	// Output:
	// val-042
	// true
}

// ExampleReadOptions enables the hot-KV cache and contrasts a cache-filling
// point read with a non-polluting one.
func ExampleReadOptions() {
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()
	d.Run(func() {
		opts := dlsm.DefaultOptions()
		opts.CacheBudgetBytes = 16 << 20 // hot-KV cache on the compute node
		db := dlsm.Open(d, opts)
		defer db.Close()
		s := db.NewSession()
		defer s.Close()

		if err := s.Put([]byte("hot"), []byte("value")); err != nil {
			panic(err)
		}

		// Plain Get fills the cache. A one-off scan of cold data can opt
		// out so it does not evict the hot set.
		v, _ := s.Get([]byte("hot"))
		fmt.Println(string(v))
		v, _ = s.GetOpts([]byte("hot"), dlsm.ReadOptions{FillCache: false})
		fmt.Println(string(v))

		// PrefetchBytes widens one iterator's read-ahead window.
		it := s.NewIteratorOpts(dlsm.ReadOptions{PrefetchBytes: 4 << 20})
		defer it.Close()
		for it.First(); it.Valid(); it.Next() {
			fmt.Println(string(it.Key()))
		}
	})
	// Output:
	// value
	// value
	// hot
}
