// Package dlsm is a Go implementation of dLSM, the LSM-tree index for
// disaggregated memory from "dLSM: An LSM-Based Index for Memory
// Disaggregation" (ICDE 2023). MemTables, tree metadata, SSTable indexes
// and bloom filters live on a compute node; SSTable bytes live on one or
// more memory nodes reached through an RDMA-style fabric.
//
// Because real RDMA hardware (and multi-server testbeds) are not assumed,
// the fabric is simulated: real bytes move between real data structures,
// while network latency/bandwidth and per-node CPU cores are accounted on
// a virtual clock (see internal/sim and DESIGN.md). All code runs inside a
// simulation environment:
//
//	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
//	d.Run(func() {
//		db := dlsm.Open(d, dlsm.DefaultOptions())
//		defer db.Close()
//		s := db.NewSession()
//		defer s.Close()
//		s.Put([]byte("k"), []byte("v"))
//		v, err := s.Get([]byte("k"))
//		...
//	})
//	d.Close()
package dlsm

import (
	"fmt"

	"dlsm/internal/engine"
	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/repl"
	"dlsm/internal/shard"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Re-exported configuration and identifiers. The aliases expose the full
// engine configuration surface without duplicating it.
type (
	// Options configures a DB; see DefaultOptions.
	Options = engine.Options
	// ReadOptions tunes one read (cache fill policy, scan prefetch).
	ReadOptions = engine.ReadOptions
	// Batch buffers writes for Session.Apply (one sequence-range claim).
	Batch = engine.Batch
	// Seq is a snapshot sequence number.
	Seq = keys.Seq
	// LinkParams models one network link.
	LinkParams = rdma.LinkParams
	// MemNodeConfig sizes a memory node.
	MemNodeConfig = memnode.Config
)

// Durability selects how writes interact with the remote write-ahead log
// (internal/wal): DurabilityNone (default) disables logging, DurabilityAsync
// acknowledges before the log write lands, DurabilitySync acknowledges only
// once the record is in remote memory — Recover then restores 100% of
// acknowledged writes after a compute-node crash.
type Durability = engine.Durability

// Durability modes for Options.Durability.
const (
	DurabilityNone  = engine.DurabilityNone
	DurabilityAsync = engine.DurabilityAsync
	DurabilitySync  = engine.DurabilitySync
)

// AckPolicy selects when replicated writes acknowledge
// (Options.ReplAck, internal/repl): AckPrimary keeps the single-copy
// behavior (best-effort mirror), AckQuorum and AckAll wait for the
// replica too (they coincide at replication factor 2).
type AckPolicy = repl.AckPolicy

// Acknowledgement policies for Options.ReplAck.
const (
	AckPrimary = repl.AckPrimary
	AckQuorum  = repl.AckQuorum
	AckAll     = repl.AckAll
)

// ReplicationMode selects how flushed/compacted SSTables reach the
// replica memory node (Options.ReplMode): ReplIndexOnly ships each built
// extent once, primary to replica; ReplLogReplay has the compute node
// read it back and re-write it (twice the network bytes, the baseline
// the FORTH index-replication study compares against).
type ReplicationMode = repl.Mode

// SSTable replication modes for Options.ReplMode.
const (
	ReplIndexOnly = repl.IndexOnly
	ReplLogReplay = repl.LogReplay
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = engine.ErrNotFound

// ErrClosed is returned by writes through a closed Session or DB.
var ErrClosed = engine.ErrClosed

// ErrStalled is returned when a write stalled longer than
// Options.StallTimeout (0 disables the timeout).
var ErrStalled = engine.ErrStalled

// Compaction / transport / switch-policy selectors (see DESIGN.md).
const (
	CompactNearData = engine.CompactNearData
	CompactLocal    = engine.CompactLocal

	TransportNative   = engine.TransportNative
	TransportFS       = engine.TransportFS
	TransportTmpfsRPC = engine.TransportTmpfsRPC

	SwitchSeqRange = engine.SwitchSeqRange
	SwitchLocked   = engine.SwitchLocked
)

// DefaultOptions returns dLSM's configuration (byte-addressable SSTables,
// near-data compaction, asynchronous flushing, sequence-range switching).
func DefaultOptions() Options { return engine.DLSM() }

// DeploymentConfig describes the simulated machines.
type DeploymentConfig struct {
	ComputeNodes int
	MemoryNodes  int
	ComputeCores int // per compute node (paper: 24)
	MemoryCores  int // per memory node (paper sweeps 1-12; default 12)
	Link         LinkParams
	MemNode      MemNodeConfig
}

// SingleNodeConfig is the paper's main testbed: one compute node, one
// memory node, EDR 100 Gb/s link.
func SingleNodeConfig() DeploymentConfig {
	return DeploymentConfig{
		ComputeNodes: 1,
		MemoryNodes:  1,
		ComputeCores: 24,
		MemoryCores:  12,
		Link:         rdma.EDR100(),
		MemNode:      memnode.DefaultConfig(),
	}
}

// CloudLabConfig mirrors the multi-node testbed (c6220: 16 cores, FDR
// 56 Gb/s) used in §XI-C8.
func CloudLabConfig(computeNodes, memoryNodes int) DeploymentConfig {
	cfg := SingleNodeConfig()
	cfg.ComputeNodes = computeNodes
	cfg.MemoryNodes = memoryNodes
	cfg.ComputeCores = 16
	cfg.MemoryCores = 8
	cfg.Link = rdma.FDR56()
	return cfg
}

// Deployment is a running simulated cluster: the fabric, compute nodes and
// started memory-node servers.
type Deployment struct {
	Env     *sim.Env
	Fabric  *rdma.Fabric
	Compute []*rdma.Node
	Servers []*memnode.Server
}

// NewDeployment builds and starts the simulated machines.
func NewDeployment(cfg DeploymentConfig) *Deployment {
	if cfg.ComputeNodes < 1 || cfg.MemoryNodes < 1 {
		panic("dlsm: deployment needs at least one compute and one memory node")
	}
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, cfg.Link)
	d := &Deployment{Env: env, Fabric: fab}
	for i := 0; i < cfg.ComputeNodes; i++ {
		d.Compute = append(d.Compute, fab.AddNode(fmt.Sprintf("compute-%d", i), cfg.ComputeCores))
	}
	for i := 0; i < cfg.MemoryNodes; i++ {
		mn := fab.AddNode(fmt.Sprintf("memory-%d", i), cfg.MemoryCores)
		srv := memnode.NewServer(mn, cfg.MemNode)
		srv.Start()
		d.Servers = append(d.Servers, srv)
	}
	return d
}

// Run executes fn as a simulated entity; blocking inside fn advances the
// virtual clock. Call from the host goroutine that owns the deployment.
func (d *Deployment) Run(fn func()) { d.Env.Run(fn) }

// Close tears down the fabric. Databases must be closed first (inside
// Run), then Close joins the remaining simulation entities.
func (d *Deployment) Close() {
	d.Env.Run(func() { d.Fabric.Close() })
	d.Env.Wait()
}

// DB is a (possibly sharded) dLSM index on one compute node.
type DB struct {
	inner *shard.DB
}

// Open creates a DB on the deployment's first compute node backed by its
// first memory node, with Lambda(opts)=1.
//
// Deprecated: use OpenDB(d, RolePrimary, Placement{}, opts).
func Open(d *Deployment, opts Options) *DB {
	return mustOpen(OpenDB(d, RolePrimary, Placement{}, opts))
}

// OpenSharded creates a λ-sharded DB (§VII) on the first compute node.
// boundaries are the λ-1 ascending user-key split points.
//
// Deprecated: use OpenDB(d, RolePrimary, Placement{Lambda: λ, Boundaries: b}, opts).
func OpenSharded(d *Deployment, opts Options, lambda int, boundaries [][]byte) *DB {
	return mustOpen(OpenDB(d, RolePrimary, Placement{Lambda: lambda, Boundaries: boundaries}, opts))
}

// OpenAt creates a DB on compute node computeIdx whose shards round-robin
// across servers (§IX).
//
// Deprecated: use OpenDB with RolePrimary and an explicit Placement.
func OpenAt(d *Deployment, computeIdx int, servers []*memnode.Server, opts Options, lambda int, boundaries [][]byte) *DB {
	return mustOpen(OpenDB(d, RolePrimary,
		Placement{ComputeIdx: computeIdx, Servers: servers, Lambda: lambda, Boundaries: boundaries}, opts))
}

// Recover rebuilds the DB a crashed compute node ran via Open, replaying
// its remote write-ahead logs (§VIII). opts must have Durability set and
// otherwise match the dead DB's Open.
//
// Deprecated: use OpenDB(d, RoleRecover, Placement{}, opts).
func Recover(d *Deployment, opts Options) (*DB, error) {
	return OpenDB(d, RoleRecover, Placement{}, opts)
}

// RecoverSharded rebuilds a λ-sharded DB opened with OpenSharded on the
// first compute node.
//
// Deprecated: use OpenDB(d, RoleRecover, Placement{Lambda: λ, Boundaries: b}, opts).
func RecoverSharded(d *Deployment, opts Options, lambda int, boundaries [][]byte) (*DB, error) {
	return OpenDB(d, RoleRecover, Placement{Lambda: lambda, Boundaries: boundaries}, opts)
}

// RecoverAt rebuilds, on compute node computeIdx, the DB that compute
// node owner opened with OpenAt(d, owner, servers, ...) before crashing.
// servers, opts, lambda and boundaries must match that OpenAt call. See
// Placement for the owner-remap rule.
//
// Deprecated: use OpenDB with RoleRecover and an explicit Placement.
func RecoverAt(d *Deployment, computeIdx, owner int, servers []*memnode.Server, opts Options, lambda int, boundaries [][]byte) (*DB, error) {
	return OpenDB(d, RoleRecover,
		Placement{ComputeIdx: computeIdx, Owner: owner, Servers: servers, Lambda: lambda, Boundaries: boundaries}, opts)
}

// UniformBoundaries splits a formatted integer key space into lambda equal
// ranges; format must be monotone in i (e.g. fmt.Sprintf("key-%012d", i)).
func UniformBoundaries(lambda, maxKey int, format func(i int) []byte) [][]byte {
	return shard.UniformBoundaries(lambda, maxKey, format)
}

// Lambda returns the shard count.
func (db *DB) Lambda() int { return db.inner.Lambda() }

// Flush forces all MemTables to remote memory (the §VIII checkpoint
// boundary).
func (db *DB) Flush() { db.inner.Flush() }

// WaitForCompactions blocks until background compaction settles.
func (db *DB) WaitForCompactions() { db.inner.WaitForCompactions() }

// SpaceUsed reports the remote-memory footprint in bytes.
func (db *DB) SpaceUsed() int64 { return db.inner.SpaceUsed() }

// Stats returns per-shard engine statistics.
func (db *DB) Stats() []*engine.Stats {
	out := make([]*engine.Stats, db.inner.Lambda())
	for i := range out {
		out[i] = db.inner.Shard(i).Stats()
	}
	return out
}

// TelemetrySnapshot returns the merged metrics of all shards: latency
// histograms (virtual ns), flush-pipeline stats, per-level compaction
// bytes, and the headline Stats counters. Merge it with
// Deployment.Fabric.Telemetry().Snapshot() for per-link network traffic.
func (db *DB) TelemetrySnapshot() telemetry.Snapshot {
	return db.inner.TelemetrySnapshot()
}

// Shard exposes shard i's engine (advanced use, ablations).
func (db *DB) Shard(i int) *engine.DB { return db.inner.Shard(i) }

// Boundaries returns the current shard split points (λ-1 ascending user
// keys). With Options.AutoBalance — or after manual Split/Merge calls —
// these drift from the Placement.Boundaries passed at open time, which are
// a starting geometry, not a contract.
func (db *DB) Boundaries() [][]byte { return db.inner.Boundaries() }

// Split divides the shard owning pivot into two at pivot, the upper half
// served by a fresh engine on the same memory node. The cut is online:
// writers to the moving range pause only for the final drain-fence-delta
// window; reads and other ranges are never blocked. Zero acknowledged
// writes are lost (the source is fenced with a burned sequence range, the
// same mechanism flushes trust).
func (db *DB) Split(pivot []byte) error {
	rt := db.inner
	return rt.SplitShardAt(rt.ShardID(rt.Route(pivot)), pivot)
}

// Merge folds the two shards meeting at boundary back into one (boundary
// must be one of Boundaries()). The right shard's live keys move into the
// left engine; the right engine is retired until Close.
func (db *DB) Merge(boundary []byte) error {
	return db.inner.MergeAt(boundary)
}

// Migrate moves the shard owning key to the deployment memory node at
// index server, using server-to-server extent cloning plus a WAL tail
// replay when durability and the native transport allow it.
func (db *DB) Migrate(key []byte, server int) error {
	rt := db.inner
	return rt.MigrateShard(rt.ShardID(rt.Route(key)), server)
}

// Close stops background work and releases engine resources.
func (db *DB) Close() { db.inner.Close() }

// Session is a per-thread handle; see the package example. Sessions are
// not safe for concurrent use (thread-local QPs, §X-B).
type Session struct {
	inner *shard.Session
}

// NewSession creates a thread-local handle.
func (db *DB) NewSession() *Session { return &Session{inner: db.inner.NewSession()} }

// Put inserts or overwrites key. It returns ErrClosed on a closed session
// or DB and ErrStalled when the write outwaits Options.StallTimeout.
func (s *Session) Put(key, value []byte) error { return s.inner.Put(key, value) }

// Delete removes key (a tombstone write). Errors as for Put.
func (s *Session) Delete(key []byte) error { return s.inner.Delete(key) }

// Apply writes every operation buffered in b, claiming one sequence range
// per shard touched instead of one per entry. Entries become visible as
// they are inserted; Apply is a throughput construct, not a transaction.
// On a sharded DB the batch is applied shard by shard (not in insertion
// order); every shard is attempted even if one fails, and the returned
// error joins the per-shard failures — operations routed to a failed shard
// were not applied while the other shards' operations were. Use errors.Is
// to test for ErrClosed or ErrStalled.
func (s *Session) Apply(b *Batch) error { return s.inner.Apply(b) }

// Get returns the newest visible value of key or ErrNotFound.
func (s *Session) Get(key []byte) ([]byte, error) { return s.inner.Get(key) }

// GetOpts is Get with an explicit read policy (ReadOptions.FillCache).
func (s *Session) GetOpts(key []byte, ro ReadOptions) ([]byte, error) {
	return s.inner.GetOpts(key, ro)
}

// NewIterator opens a snapshot-consistent scan in key order.
func (s *Session) NewIterator() *Iterator { return &Iterator{inner: s.inner.NewIterator()} }

// NewIteratorOpts is NewIterator with an explicit read policy
// (ReadOptions.PrefetchBytes; scans bypass the hot-KV cache).
func (s *Session) NewIteratorOpts(ro ReadOptions) *Iterator {
	return &Iterator{inner: s.inner.NewIteratorOpts(ro)}
}

// Close releases the session's fabric resources.
func (s *Session) Close() { s.inner.Close() }

// Iterator scans live keys in ascending order at a fixed snapshot.
type Iterator struct {
	inner *shard.Iterator
}

// First positions at the smallest key.
func (it *Iterator) First() { it.inner.First() }

// SeekGE positions at the first key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) { it.inner.SeekGE(ukey) }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.inner.Valid() }

// Next advances to the next live key.
func (it *Iterator) Next() { it.inner.Next() }

// Key returns the current key (valid until the next move).
func (it *Iterator) Key() []byte { return it.inner.Key() }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.inner.Value() }

// Close releases the pinned snapshot.
func (it *Iterator) Close() { it.inner.Close() }
