// YCSB-style mixed workload over a sharded dLSM (§VII): 16 concurrent
// client threads running an update-heavy mix (50% reads / 50% writes,
// YCSB-A) against dLSM with λ = 1 vs λ = 8, reproducing the effect behind
// Fig 10 — sharding parallelizes L0 compaction and shortens the read path.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dlsm"
	"dlsm/internal/sim"
)

const (
	numKeys   = 100_000
	numOps    = 200_000
	threads   = 16
	readRatio = 0.5
)

func main() {
	for _, lambda := range []int{1, 8} {
		tput := runWorkload(lambda)
		fmt.Printf("dLSM-%d: YCSB-A (%d%% reads) -> %.2fM ops/s\n",
			lambda, int(readRatio*100), tput/1e6)
	}
}

func runWorkload(lambda int) float64 {
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()

	var tput float64
	d.Run(func() {
		format := func(i int) []byte { return []byte(fmt.Sprintf("user%016d", i)) }
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{
			Lambda:     lambda,
			Boundaries: dlsm.UniformBoundaries(lambda, numKeys, format),
		}, dlsm.DefaultOptions())
		if err != nil {
			panic(err)
		}
		defer db.Close()

		// Load phase: every key once, batched — one sequence-range claim
		// per 512 keys instead of one per Put.
		loadStart := d.Env.Now()
		wg := sim.NewWaitGroup(d.Env)
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			d.Env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				var b dlsm.Batch
				for i := t; i < numKeys; i += threads {
					b.Put(format(i), value(i))
					if b.Len() == 512 {
						if err := s.Apply(&b); err != nil {
							panic(err)
						}
						b.Reset()
					}
				}
				if err := s.Apply(&b); err != nil {
					panic(err)
				}
			})
		}
		wg.Wait()
		fmt.Printf("  load: %d keys in %v (virtual)\n", numKeys, time.Duration(d.Env.Now()-loadStart))

		// Run phase: the measured mix.
		start := d.Env.Now()
		var ops int64
		wg2 := sim.NewWaitGroup(d.Env)
		for t := 0; t < threads; t++ {
			t := t
			wg2.Add(1)
			d.Env.Go(func() {
				defer wg2.Done()
				rnd := rand.New(rand.NewSource(int64(t) + 1))
				s := db.NewSession()
				defer s.Close()
				for i := 0; i < numOps/threads; i++ {
					k := rnd.Intn(numKeys)
					if rnd.Float64() < readRatio {
						if _, err := s.Get(format(k)); err != nil {
							panic(err)
						}
					} else if err := s.Put(format(k), value(k)); err != nil {
						panic(err)
					}
				}
			})
		}
		wg2.Wait()
		elapsed := time.Duration(d.Env.Now() - start)
		ops = numOps
		tput = float64(ops) / elapsed.Seconds()
	})
	return tput
}

func value(i int) []byte {
	return []byte(fmt.Sprintf("profile-%08d-%0380d", i, i)) // ~400B, like the paper
}
