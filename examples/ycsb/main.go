// Multi-tenant YCSB over the front-end service tier: a latency-sensitive
// tenant ("frontend", YCSB-B point ops) shares a sharded dLSM with a
// scan-heavy batch tenant ("analytics", YCSB-E range scans). The run is
// repeated twice — first with no limits, then with the analytics tenant
// behind a token-bucket admission controller — and prints the per-tenant
// SLO tables. Admission control on the scan tenant strictly improves the
// frontend's p99. Everything runs on the virtual clock from a fixed seed,
// so the output is deterministic.
package main

import (
	"fmt"
	"os"
	"time"

	"dlsm"
	"dlsm/internal/sim"
)

const (
	numKeys = 100_000
	lambda  = 4
	seed    = 20230401
)

func main() {
	fmt.Println("Two tenants, no limits:")
	open := runScenario(0)
	dlsm.WriteServiceReports(os.Stdout, open)

	// Cap analytics at a quarter of the rate it reached unthrottled, with
	// a one-token-interval admission deadline: over-quota scans queue
	// briefly, then fail fast with ErrThrottled.
	limit := open[1].Throughput / 4
	fmt.Printf("\nTwo tenants, analytics rate-limited to %.0f req/s:\n", limit)
	limited := runScenario(limit)
	dlsm.WriteServiceReports(os.Stdout, limited)

	fmt.Printf("\nfrontend p99: %v -> %v (analytics throttled %d times)\n",
		open[0].P99, limited[0].P99, limited[1].Throttled)
}

// runScenario preloads the store and drives both tenants through the
// service tier, rate-limiting analytics when limit > 0.
func runScenario(limit float64) []dlsm.ServiceReport {
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()

	var reports []dlsm.ServiceReport
	d.Run(func() {
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{
			Lambda:     lambda,
			Boundaries: dlsm.UniformBoundaries(lambda, numKeys, key),
		}, dlsm.DefaultOptions())
		if err != nil {
			panic(err)
		}
		defer db.Close()
		preload(d, db)

		analytics := dlsm.TenantConfig{
			Name:    "analytics",
			Clients: 8,
			Ops:     5_000,
			// YCSB-E: 95% range scans (up to 100 entries), 5% inserts.
			Workload: dlsm.YCSBWorkload('E', numKeys),
		}
		if limit > 0 {
			analytics.RatePerSec = limit
			analytics.Burst = 8
			analytics.AdmissionDeadline = time.Duration(float64(time.Second) / limit)
		}
		tier := dlsm.NewService(d, db, dlsm.ServiceConfig{
			Seed:  seed,
			Key:   key,
			Value: value,
			Tenants: []dlsm.TenantConfig{
				{
					Name:    "frontend",
					Clients: 8,
					Ops:     50_000,
					// YCSB-B: 95% point reads, 5% updates, zipf-skewed.
					Workload: dlsm.YCSBWorkload('B', numKeys),
				},
				analytics,
			},
		})
		reports = tier.Run()
	})
	return reports
}

// preload inserts every key once, batched, across 16 loader entities.
func preload(d *dlsm.Deployment, db *dlsm.DB) {
	const loaders = 16
	wg := sim.NewWaitGroup(d.Env)
	for t := 0; t < loaders; t++ {
		t := t
		wg.Add(1)
		d.Env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			var b dlsm.Batch
			for i := t; i < numKeys; i += loaders {
				b.Put(key(i), value(i))
				if b.Len() == 512 {
					if err := s.Apply(&b); err != nil {
						panic(err)
					}
					b.Reset()
				}
			}
			if err := s.Apply(&b); err != nil {
				panic(err)
			}
		})
	}
	wg.Wait()
	db.WaitForCompactions()
}

func key(i int) []byte { return []byte(fmt.Sprintf("user%016d", i)) }

func value(i int) []byte {
	return []byte(fmt.Sprintf("profile-%08d-%0380d", i, i)) // ~400B, like the paper
}
