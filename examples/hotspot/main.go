// Hotspot: elastic λ-sharding reacting to a skewed workload. The demo has
// two acts:
//
// Act 1 drives the topology by hand: Split cuts the single shard in two at
// a chosen pivot while writers keep running, Migrate moves the hot half to
// the second memory node through the server-to-server clone path, and
// Merge folds the geometry back together — all without losing a write.
//
// Act 2 turns Options.AutoBalance on and hammers a narrow hot band: the
// rebalancer notices the skewed per-shard op counters, derives a
// load-weighted pivot from sampled keys, and splits the hot shard on its
// own. When the hotspot then moves to a different part of the key space,
// it splits again. The starting Boundaries are just that — a starting
// point; the live geometry is whatever the load shaped.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dlsm"
)

const n = 40_000

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func main() {
	cfg := dlsm.SingleNodeConfig()
	cfg.MemoryNodes = 2
	d := dlsm.NewDeployment(cfg)
	defer d.Close()

	d.Run(func() {
		manual(d)
		auto(d)
	})
}

func manual(d *dlsm.Deployment) {
	opts := dlsm.DefaultOptions()
	db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{Servers: d.Servers}, opts)
	if err != nil {
		panic(err)
	}
	defer db.Close()

	s := db.NewSession()
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), key(i)); err != nil {
			panic(err)
		}
	}

	pivot := key(n / 2)
	if err := db.Split(pivot); err != nil {
		panic(err)
	}
	fmt.Printf("manual split at %q: λ=%d, boundaries=%q\n", pivot, db.Lambda(), db.Boundaries())

	// Move the upper shard to the second memory node and write through it.
	if err := db.Migrate(key(3*n/4), 1); err != nil {
		panic(err)
	}
	if err := s.Put(key(3*n/4), []byte("post-migrate")); err != nil {
		panic(err)
	}
	fmt.Println("upper shard migrated to memory node 1; writes keep flowing")

	if err := db.Merge(pivot); err != nil {
		panic(err)
	}
	fmt.Printf("merged back: λ=%d\n", db.Lambda())

	// Nothing was lost along the way.
	for i := 0; i < n; i += 97 {
		want := key(i)
		if i == 3*n/4 {
			want = []byte("post-migrate")
		}
		v, err := s.Get(key(i))
		if err != nil || string(v) != string(want) {
			panic(fmt.Sprintf("Get(%s) = %q, %v", key(i), v, err))
		}
	}
	fmt.Println("manual act: all keys intact after split -> migrate -> merge")
}

func auto(d *dlsm.Deployment) {
	opts := dlsm.DefaultOptions()
	opts.AutoBalance = true
	opts.BalanceInterval = 2 * time.Millisecond
	db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{Servers: d.Servers}, opts)
	if err != nil {
		panic(err)
	}
	defer db.Close()

	s := db.NewSession()
	defer s.Close()
	r := rand.New(rand.NewSource(42))

	// Two hotspot phases: 90% of writes hit a band covering 10% of the key
	// space, first around 45%, then around 80%.
	for phase, origin := range []int{45 * n / 100, 80 * n / 100} {
		for j := 0; j < 60_000; j++ {
			i := r.Intn(n)
			if r.Intn(10) != 0 {
				i = origin + r.Intn(n/10)
			}
			if err := s.Put(key(i), key(i)); err != nil {
				panic(err)
			}
		}
		snap := db.TelemetrySnapshot()
		fmt.Printf("auto act phase %d: λ=%d after %d splits, %d merges (hot band at %d%%)\n",
			phase, db.Lambda(), snap.Counters["balance.splits"],
			snap.Counters["balance.merges"], origin*100/n)
	}
	if db.Lambda() < 2 {
		panic("auto-balancer never split the hot shard")
	}
	fmt.Printf("final boundaries shaped by load: %q\n", db.Boundaries())
}
