// Failover: surviving the loss of a MEMORY node. Durability alone
// (examples/recovery) survives a compute-node crash because the log and the
// SSTables live in remote memory — but that remote memory was a single
// copy. With Options.ReplicationFactor = 2 every durable artifact is
// mirrored onto a second memory node: WAL records land in both rings before
// Put acknowledges (AckQuorum), flushed and compacted SSTable extents are
// cloned primary→replica, the checkpoint slot pair flips on both nodes, and
// the shard lease word is written through. When the primary memory node
// dies, RecoverAt pointed at the replica promotes it — zero acknowledged
// writes lost, including writes that never left the MemTable+log.
package main

import (
	"fmt"

	"dlsm"
)

func main() {
	cfg := dlsm.SingleNodeConfig()
	cfg.ComputeNodes = 2 // compute-1 is the standby
	cfg.MemoryNodes = 2  // memory-1 is the passive replica
	d := dlsm.NewDeployment(cfg)

	d.Run(func() {
		opts := dlsm.DefaultOptions()
		opts.Durability = dlsm.DurabilitySync
		opts.MemTableSize = 256 << 10 // small, so flushes exercise the table mirror
		opts.TableSize = 256 << 10
		opts.ReplicationFactor = 2
		opts.Replica = d.Servers[1]
		opts.ReplAck = dlsm.AckQuorum      // ack only once BOTH rings hold the record
		opts.ReplMode = dlsm.ReplIndexOnly // primary clones extents straight to the replica

		// The DB runs on compute-0 against memory-0; memory-1 is passive —
		// its CPU serves no LSM, bytes arrive via one-sided writes and the
		// repl_clone handler on the primary.
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{Servers: d.Servers[:1]}, opts)
		if err != nil {
			panic(err)
		}
		s := db.NewSession()
		for i := 0; i < 40_000; i++ {
			put(s, fmt.Sprintf("acct-%06d", i%20000), fmt.Sprintf("balance=%d", i))
		}

		// One last write, deliberately NOT flushed: it exists in the
		// MemTable and in the two log rings, nowhere else.
		put(s, "acct-marker", "acked-but-unflushed")
		tel := d.Fabric.Telemetry()
		fmt.Printf("40001 writes quorum-acknowledged; %d SSTable extents mirrored, %d replication bytes on the wire\n",
			tel.Counter("repl.tables").Load(), tel.Counter("repl.net_bytes").Load())

		// 💥 the PRIMARY MEMORY NODE fails: its DRAM — the authoritative
		// SSTables, the primary log ring, the lease table — is gone.
		d.Servers[0].Node().Crash()
		s.Close()
		db.Close()
		fmt.Println("memory-0 lost; promoting the replica on standby compute-1...")

		// Promotion is just recovery pointed at the replica: the mirrored
		// log slot lives under the same key, its checkpoint references the
		// replica-side extent copies, and the ring holds every record the
		// quorum ever acknowledged. Replication is off on the promoted side
		// (its peer is the node that just died).
		opts.ReplicationFactor = 0
		opts.Replica = nil
		db2, err := dlsm.OpenDB(d, dlsm.RoleRecover,
			dlsm.Placement{ComputeIdx: 1, Owner: 0, Servers: d.Servers[1:2]}, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("replayed %d log entries from the replica ring\n",
			db2.Stats()[0].WALReplayed.Load())

		// Verify: checkpointed state came back through the mirrored extents,
		// and the never-flushed acknowledged write through replica log replay.
		s2 := db2.NewSession()
		mustEqual(s2, "acct-019999", "balance=39999")
		mustEqual(s2, "acct-marker", "acked-but-unflushed")
		fmt.Println("failover verified: zero acknowledged writes lost")

		s2.Close()
		db2.Close()
	})
	d.Close()
}

func put(s *dlsm.Session, key, value string) {
	if err := s.Put([]byte(key), []byte(value)); err != nil {
		panic(err)
	}
}

func mustEqual(s *dlsm.Session, key, want string) {
	v, err := s.Get([]byte(key))
	if err != nil || string(v) != want {
		panic(fmt.Sprintf("Get(%s) = %q, %v; want %q", key, v, err, want))
	}
}
