// Quickstart: open a dLSM index on a simulated one-compute/one-memory-node
// deployment, write, read, scan, and inspect where the bytes went.
package main

import (
	"fmt"

	"dlsm"
)

func main() {
	// One compute node (24 cores), one memory node (12 cores), 100 Gb/s
	// RDMA-style link — the paper's main testbed.
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()

	d.Run(func() {
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{}, dlsm.DefaultOptions())
		if err != nil {
			panic(err)
		}
		defer db.Close()

		// A Session is a thread-local handle (one RDMA queue pair per
		// thread, as in the paper's RDMA manager).
		s := db.NewSession()
		defer s.Close()

		// Batched writes claim one sequence range per Apply instead of one
		// per Put; writes return an error (closed session, stall timeout).
		var b dlsm.Batch
		for i := 0; i < 50_000; i++ {
			b.Put(key(i), []byte(fmt.Sprintf("value-%06d", i)))
			if b.Len() == 1000 {
				if err := s.Apply(&b); err != nil {
					panic(err)
				}
				b.Reset()
			}
		}
		if err := s.Apply(&b); err != nil {
			panic(err)
		}

		v, err := s.Get(key(4242))
		fmt.Printf("Get(%s) = %s (err=%v)\n", key(4242), v, err)

		if err := s.Delete(key(4242)); err != nil {
			panic(err)
		}
		if _, err := s.Get(key(4242)); err == dlsm.ErrNotFound {
			fmt.Println("deleted key is gone")
		}

		// Snapshot-consistent range scan.
		it := s.NewIterator()
		defer it.Close()
		n := 0
		for it.SeekGE(key(10_000)); it.Valid() && n < 5; it.Next() {
			fmt.Printf("scan: %s = %.16s...\n", it.Key(), it.Value())
			n++
		}

		// Force the MemTable out and let compaction settle, then look at
		// the tree shape.
		db.Flush()
		db.WaitForCompactions()
		st := db.Stats()[0]
		fmt.Printf("flushes=%d near-data compactions=%d remote bytes=%d MB\n",
			st.Flushes.Load(), st.RemoteCompactions.Load(), db.SpaceUsed()>>20)
		fmt.Printf("virtual time elapsed: %v\n", d.Env.Now())
	})
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
