// Recovery: the §VIII story end to end, now on the remote write-ahead
// log. With Options.Durability = DurabilitySync every acknowledged write
// has its log record in remote memory — placed there by a one-sided RDMA
// write, no memory-node CPU — before Put returns. When the compute node
// dies, a standby calls dlsm.RecoverAt: the log slot is read back, the
// embedded checkpoint rebuilds the table metadata, and every record past
// the checkpoint horizon is re-applied. Nothing acknowledged is lost, not
// even writes still sitting in the MemTable at the moment of the crash.
package main

import (
	"fmt"

	"dlsm"
)

func main() {
	cfg := dlsm.SingleNodeConfig()
	cfg.ComputeNodes = 2 // compute-1 is the standby
	d := dlsm.NewDeployment(cfg)

	d.Run(func() {
		opts := dlsm.DefaultOptions()
		opts.Durability = dlsm.DurabilitySync

		// Runs on compute-0 (log owner 0): the zero Placement.
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{}, opts)
		if err != nil {
			panic(err)
		}
		s := db.NewSession()

		// A main-memory database's write traffic: every nil error below is
		// an acknowledgment the client may act on.
		for i := 0; i < 80_000; i++ {
			put(s, fmt.Sprintf("acct-%06d", i%20000), fmt.Sprintf("balance=%d", i))
		}

		// One last write, deliberately NOT flushed: it exists only in
		// compute-0's MemTable and in the remote log.
		put(s, "acct-marker", "acked-but-unflushed")
		fmt.Println("80001 writes acknowledged (last one never flushed)")

		// 💥 compute-0 fails. Its DRAM — MemTables, metadata, caches — is
		// gone; remote memory (SSTables and the log slot) survives.
		d.Compute[0].Crash()
		s.Close()
		db.Close()
		fmt.Println("compute-0 lost; recovering on standby compute-1...")

		// The standby rebuilds owner 0's DB from the remote log.
		db2, err := dlsm.OpenDB(d, dlsm.RoleRecover, dlsm.Placement{ComputeIdx: 1, Owner: 0}, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("replayed %d log entries past the checkpoint horizon\n",
			db2.Stats()[0].WALReplayed.Load())

		// Verify: flushed state came back through the checkpoint's table
		// metadata, and the never-flushed acknowledged write came back
		// through log replay.
		s2 := db2.NewSession()
		mustEqual(s2, "acct-019999", "balance=79999")
		mustEqual(s2, "acct-marker", "acked-but-unflushed")
		fmt.Println("recovery verified: checkpointed and unflushed acked state intact")

		s2.Close()
		db2.Close()
	})
	d.Close()
}

func put(s *dlsm.Session, key, value string) {
	if err := s.Put([]byte(key), []byte(value)); err != nil {
		panic(err)
	}
}

func mustEqual(s *dlsm.Session, key, want string) {
	v, err := s.Get([]byte(key))
	if err != nil || string(v) != want {
		panic(fmt.Sprintf("Get(%s) = %q, %v; want %q", key, v, err, want))
	}
}
