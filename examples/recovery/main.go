// Recovery: the §VIII story end to end. dLSM serves a main-memory database
// that persists through command logging: the index periodically produces a
// transactionally consistent checkpoint (sequence horizon + table metadata;
// the table bytes already live in remote memory, which survives a compute
// node failure). After a "crash", a replacement compute node rebuilds the
// index from the checkpoint and the database re-executes the command log
// past the horizon.
package main

import (
	"fmt"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

type command struct{ key, value string }

func main() {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn1 := fab.AddNode("compute-1", 24)
	cn2 := fab.AddNode("compute-2", 24) // standby replacement
	mn := fab.AddNode("memory", 12)
	srv := memnode.NewServer(mn, memnode.DefaultConfig())
	srv.Start()

	env.Run(func() {
		opts := engine.DLSM()
		db := engine.Open(cn1, srv, opts)
		s := db.NewSession()

		// The command log the database layer maintains (simplified).
		var log []command
		apply := func(s *engine.Session, c command) {
			log = append(log, c)
			if err := s.Put([]byte(c.key), []byte(c.value)); err != nil {
				panic(err)
			}
		}

		for i := 0; i < 80_000; i++ {
			apply(s, command{fmt.Sprintf("acct-%06d", i%20000), fmt.Sprintf("balance=%d", i)})
		}

		// Checkpoint: flush the MemTables and snapshot the index metadata.
		db.Flush()
		cp := db.Checkpoint()
		horizon := len(log) // commands up to here are covered by cp
		fmt.Printf("checkpoint: %d KB of metadata covering %d commands (seq %d)\n",
			len(cp)>>10, horizon, db.CurrentSeq())

		// More traffic after the checkpoint — covered only by the log.
		for i := 0; i < 5_000; i++ {
			apply(s, command{fmt.Sprintf("acct-%06d", i), fmt.Sprintf("post-cp=%d", i)})
		}

		// 💥 the compute node fails. Sessions and in-DRAM state are gone;
		// remote memory (the SSTables) survives on the memory node.
		s.Close()
		db.Close()
		fmt.Println("compute node lost; recovering on standby...")

		db2, err := engine.OpenFromCheckpoint(cn2, srv, opts, cp)
		if err != nil {
			panic(err)
		}
		s2 := db2.NewSession()

		// Re-execute the command log past the horizon, batched (one
		// sequence-range claim for the whole replay).
		var rb engine.Batch
		for _, c := range log[horizon:] {
			rb.Put([]byte(c.key), []byte(c.value))
		}
		if err := s2.Apply(&rb); err != nil {
			panic(err)
		}
		fmt.Printf("replayed %d post-checkpoint commands\n", len(log)-horizon)

		// Verify: pre-checkpoint state recovered from remote memory,
		// post-checkpoint state recovered from the log.
		mustEqual(s2, "acct-019999", "balance=79999") // last pre-cp write to it
		mustEqual(s2, "acct-000042", "post-cp=42")    // replayed
		fmt.Println("recovery verified: both checkpointed and replayed state intact")

		s2.Close()
		db2.Close()
		fab.Close()
	})
	env.Wait()
}

func mustEqual(s *engine.Session, key, want string) {
	v, err := s.Get([]byte(key))
	if err != nil || string(v) != want {
		panic(fmt.Sprintf("Get(%s) = %q, %v; want %q", key, v, err, want))
	}
}
