// Multinode: dLSM scaled across 4 compute nodes and 4 memory nodes (§IX),
// mirroring the paper's CloudLab experiments (Fig 15). The key space splits
// into one contiguous slice per compute node; each slice splits into λ = 8
// shards whose LSM-trees round-robin across memory nodes. Drivers run on
// their own compute node, so single-shard accesses never cross nodes.
//
// A second act shows multi-compute scale-out on ONE shard group: compute
// node 0 opens it as the lease-holding primary, nodes 1 and 2 attach as
// read-only secondaries, and a primary write becomes visible on both
// secondaries after the checkpoint publish/refresh cycle.
package main

import (
	"fmt"
	"time"

	"dlsm"
	"dlsm/internal/sim"
)

const (
	computeNodes   = 4
	memoryNodes    = 4
	lambda         = 8
	keysPerCompute = 50_000
	threadsPerNode = 8
)

func main() {
	d := dlsm.NewDeployment(dlsm.CloudLabConfig(computeNodes, memoryNodes))
	defer d.Close()

	d.Run(func() {
		total := computeNodes * keysPerCompute
		format := func(i int) []byte { return []byte(fmt.Sprintf("key-%016d", i)) }

		var nodeBounds [][]byte
		for i := 1; i < computeNodes; i++ {
			nodeBounds = append(nodeBounds, format(total*i/computeNodes))
		}
		cl := dlsm.OpenCluster(d, dlsm.DefaultOptions(), lambda, nodeBounds,
			func(node int) [][]byte {
				lo, hi := total*node/computeNodes, total*(node+1)/computeNodes
				var b [][]byte
				for j := 1; j < lambda; j++ {
					b = append(b, format(lo+(hi-lo)*j/lambda))
				}
				return b
			})
		defer cl.Close()

		// Fill: every compute node's drivers write its own slice.
		start := d.Env.Now()
		wg := sim.NewWaitGroup(d.Env)
		for node := 0; node < computeNodes; node++ {
			node := node
			for t := 0; t < threadsPerNode; t++ {
				t := t
				wg.Add(1)
				d.Env.Go(func() {
					defer wg.Done()
					s := cl.Compute(node).NewSession()
					defer s.Close()
					lo := total * node / computeNodes
					for i := t; i < keysPerCompute; i += threadsPerNode {
						k := format(lo + i)
						if err := s.Put(k, []byte(fmt.Sprintf("v-%0400d", i))); err != nil {
							panic(err)
						}
					}
				})
			}
		}
		wg.Wait()
		elapsed := time.Duration(d.Env.Now() - start)
		fmt.Printf("%dC%dM fill: %d keys with %d threads in %v -> %.2fM ops/s\n",
			computeNodes, memoryNodes, total, computeNodes*threadsPerNode,
			elapsed, float64(total)/elapsed.Seconds()/1e6)

		// Verify a sample from each node.
		for node := 0; node < computeNodes; node++ {
			s := cl.Compute(node).NewSession()
			lo := total * node / computeNodes
			if _, err := s.Get(format(lo + keysPerCompute/2)); err != nil {
				panic(fmt.Sprintf("node %d lost a key: %v", node, err))
			}
			s.Close()
		}
		fmt.Println("all compute nodes serve their slices")

		scaleout(d)
	})
}

// scaleout runs the primary + read-only secondaries demo on one shard
// group: writes acknowledged by the primary are invisible to secondaries
// until a checkpoint publish + refresh, then visible on every one.
func scaleout(d *dlsm.Deployment) {
	opts := dlsm.DefaultOptions()
	opts.Durability = dlsm.DurabilitySync // secondaries ride the WAL checkpoint slot
	opts.WALSize = 8 << 20
	servers := d.Servers[:1]

	primary, err := dlsm.OpenDB(d, dlsm.RolePrimary,
		dlsm.Placement{Servers: servers, Lease: true}, opts)
	if err != nil {
		panic(err)
	}
	defer primary.Close()
	var secs []*dlsm.DB
	for _, node := range []int{1, 2} {
		sec, err := dlsm.OpenDB(d, dlsm.RoleSecondary,
			dlsm.Placement{ComputeIdx: node, Owner: 0, Servers: servers}, opts)
		if err != nil {
			panic(err)
		}
		defer sec.Close()
		secs = append(secs, sec)
	}

	ps := primary.NewSession()
	defer ps.Close()
	if err := ps.Put([]byte("scaleout-k"), []byte("scaleout-v")); err != nil {
		panic(err)
	}

	// Not yet published: each secondary's view predates the write.
	for i, sec := range secs {
		s := sec.NewSession()
		if _, err := s.Get([]byte("scaleout-k")); err == nil {
			panic(fmt.Sprintf("secondary %d saw an unpublished write", i+1))
		}
		s.Close()
	}

	// Flush moves the write into a remote SSTable; PublishCheckpoint makes
	// the next refresh observe it.
	primary.Flush()
	if err := primary.PublishCheckpoint(); err != nil {
		panic(err)
	}
	for i, sec := range secs {
		if err := sec.RefreshView(); err != nil {
			panic(err)
		}
		s := sec.NewSession()
		v, err := s.Get([]byte("scaleout-k"))
		if err != nil || string(v) != "scaleout-v" {
			panic(fmt.Sprintf("secondary %d after refresh: %q, %v", i+1, v, err))
		}
		s.Close()
	}
	fmt.Println("primary write visible on both read-only secondaries after checkpoint refresh")
}
