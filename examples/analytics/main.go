// Analytics: time-ordered event ingestion followed by range scans — the
// write-then-scan pattern the byte-addressable SSTable layout is built for
// (§VI). Events are keyed by (sensor, timestamp); a dashboard query scans
// one sensor's recent window while ingest continues, demonstrating
// snapshot-isolated scans and multi-MB prefetching over remote memory.
package main

import (
	"fmt"
	"time"

	"dlsm"
	"dlsm/internal/sim"
)

const (
	sensors        = 64
	eventsPerShard = 4_000
)

func main() {
	d := dlsm.NewDeployment(dlsm.SingleNodeConfig())
	defer d.Close()

	d.Run(func() {
		opts := dlsm.DefaultOptions()
		db, err := dlsm.OpenDB(d, dlsm.RolePrimary, dlsm.Placement{}, opts)
		if err != nil {
			panic(err)
		}
		defer db.Close()

		// Ingest: 8 collector threads append events.
		wg := sim.NewWaitGroup(d.Env)
		for t := 0; t < 8; t++ {
			t := t
			wg.Add(1)
			d.Env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				// Batch one timestamp tick across this thread's sensors:
				// one sequence-range claim per tick.
				var b dlsm.Batch
				for e := 0; e < eventsPerShard; e++ {
					for sensor := t; sensor < sensors; sensor += 8 {
						b.Put(eventKey(sensor, e), payload(sensor, e))
					}
					if err := s.Apply(&b); err != nil {
						panic(err)
					}
					b.Reset()
				}
			})
		}
		wg.Wait()
		total := sensors * eventsPerShard
		fmt.Printf("ingested %d events in %v (virtual)\n", total, d.Env.Now())

		// Dashboard query: scan sensor 17's events in [1000, 2000) while
		// a writer keeps appending — the scan sees a stable snapshot.
		q := db.NewSession()
		defer q.Close()
		d.Env.Go(func() {
			w := db.NewSession()
			defer w.Close()
			for e := eventsPerShard; e < eventsPerShard+500; e++ {
				if err := w.Put(eventKey(17, e), payload(17, e)); err != nil {
					panic(err)
				}
			}
		})

		start := d.Env.Now()
		it := q.NewIterator()
		defer it.Close()
		count, bytes := 0, 0
		for it.SeekGE(eventKey(17, 1000)); it.Valid(); it.Next() {
			if string(it.Key()) >= string(eventKey(17, 2000)) {
				break
			}
			count++
			bytes += len(it.Value())
		}
		elapsed := time.Duration(d.Env.Now() - start)
		fmt.Printf("window scan: %d events, %d KB in %v (%.1fM events/s)\n",
			count, bytes>>10, elapsed, float64(count)/elapsed.Seconds()/1e6)

		// Full-table scan throughput (readseq, Fig 11's workload).
		start = d.Env.Now()
		n := 0
		full := q.NewIterator()
		defer full.Close()
		for full.First(); full.Valid(); full.Next() {
			n++
		}
		elapsed = time.Duration(d.Env.Now() - start)
		fmt.Printf("full scan: %d events in %v (%.1fM events/s)\n",
			n, elapsed, float64(n)/elapsed.Seconds()/1e6)
	})
}

func eventKey(sensor, seq int) []byte {
	return []byte(fmt.Sprintf("evt/%04d/%010d", sensor, seq))
}

func payload(sensor, seq int) []byte {
	return []byte(fmt.Sprintf("{\"sensor\":%d,\"seq\":%d,\"temp\":%d.%d,\"pad\":%0200d}",
		sensor, seq, 20+sensor%10, seq%10, 0))
}
