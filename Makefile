# Developer entry points. `make check` is the tier-1 verification gate
# (see ROADMAP.md) plus a -race pass over the packages with the most
# lock-free concurrency and a short fuzz of the recovery decoders.

GO ?= go

.PHONY: check build test vet race fuzz bench cache faults wal repl scan scaleout offload rebalance ycsb

check: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/... ./internal/engine/... \
		./internal/rpc/... ./internal/memnode/... ./internal/faults/... \
		./internal/cache/... ./internal/shard/... ./internal/wal/... \
		./internal/sstable/... ./internal/iterx/... ./internal/readahead/... \
		./internal/lease/... ./internal/repl/... ./internal/balance/... \
		./internal/service/...

# Short fuzz of the bytes recovery trusts from remote memory (checkpoint
# blobs must decode or error, never panic) and of the merge iterator the
# whole read path sits on (sorted, deduped-to-newest, never yields a
# deleted key). Corpus seeds cover valid, truncated and corrupt inputs;
# CI keeps the budget small.
fuzz:
	$(GO) test ./internal/engine/ -run '^$$' -fuzz FuzzDecodeCheckpoint -fuzztime 10s
	$(GO) test ./internal/iterx/ -run '^$$' -fuzz FuzzMergeIterator -fuzztime 5s
	$(GO) test ./internal/lease/ -run '^$$' -fuzz FuzzDecodeEntry -fuzztime 5s
	$(GO) test ./internal/repl/ -run '^$$' -fuzz FuzzDecodeReplicaSlot -fuzztime 5s
	$(GO) test ./internal/memnode/ -run '^$$' -fuzz FuzzDecodeFlushBuildArgs -fuzztime 5s
	$(GO) test ./internal/shard/ -run '^$$' -fuzz FuzzRouteKey -fuzztime 5s
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzAdmission -fuzztime 5s

# Hot-KV cache budget sweep (Zipf readrandom, cache off -> 64MB).
cache:
	$(GO) run ./cmd/dlsm-bench -fig cache -n 100000

# Remote-WAL durability sweep (randomfill): logging off, Async and Sync,
# each with group commit and with one doorbell per write. Sync with group
# commit must strictly beat sync+perwrite.
wal:
	$(GO) run ./cmd/dlsm-bench -fig wal -n 100000

# Memnode replication sweep (randomfill, sync WAL): single copy, then
# factor 2 in both SSTable transfer modes. Index-only must use strictly
# fewer replication network bytes than log-replay at equal durability.
repl:
	$(GO) run ./cmd/dlsm-bench -fig repl -n 100000

# Pipelined scan prefetching sweep: depth {1,2,4,8} x chunk ceiling on
# readseq and scanrandom. Depth 1 is the synchronous path (byte-identical
# to Fig 11); every depth > 1 must strictly improve throughput.
scan:
	$(GO) run ./cmd/dlsm-bench -fig scan -n 100000

# Write-path offload ablation (fillrandom, sync WAL): no offload, then
# each layer cumulatively (flush serialization, +index build, +filter).
# All layers on must show compute CPU strictly below the baseline at no
# worse throughput.
offload:
	$(GO) run ./cmd/dlsm-bench -fig offload -n 100000

# Elastic-sharding sweep: a 90%-hot key band inside one of λ=4 shards,
# static geometry vs Options.AutoBalance, plus a shifting-hotspot fill
# where the band moves mid-run. Auto-balance must beat static on every
# workload and the shifting run must show at least two splits.
rebalance:
	$(GO) run ./cmd/dlsm-bench -fig rebalance -n 100000

# Multi-tenant service-tier YCSB matrix: all six core workloads through
# the front-end tier, then the mixed-tenant scenario (latency-sensitive
# YCSB-B beside scan-heavy YCSB-E). Rate-limiting the scan tenant must
# strictly improve the frontend's p99.
ycsb:
	$(GO) run ./cmd/dlsm-bench -fig ycsb -n 100000

# Multi-compute scale-out sweep: aggregate read throughput at 1, 2 and 4
# compute nodes (one lease-holding primary + read-only secondaries) over a
# fixed memory tier. Throughput must rise with every added compute node.
scaleout:
	$(GO) run ./cmd/dlsm-bench -fig scaleout -n 100000

# Fault-scenario suite. Every scenario pins its own sim seed, so the
# fault schedule and the virtual-time results are bit-identical per run.
faults:
	$(GO) test -run 'Fault|Outage|Flap|Crash|Dedupe|Closed|Retry|Robust' -v \
		./internal/faults/... ./internal/rdma/... ./internal/rpc/... \
		./internal/memnode/... ./internal/engine/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
