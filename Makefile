# Developer entry points. `make check` is the tier-1 verification gate
# (see ROADMAP.md) plus a -race pass over the packages with the most
# lock-free concurrency.

GO ?= go

.PHONY: check build test vet race bench cache faults

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/... ./internal/engine/... \
		./internal/rpc/... ./internal/memnode/... ./internal/faults/... \
		./internal/cache/... ./internal/shard/...

# Hot-KV cache budget sweep (Zipf readrandom, cache off -> 64MB).
cache:
	$(GO) run ./cmd/dlsm-bench -fig cache -n 100000

# Fault-scenario suite. Every scenario pins its own sim seed, so the
# fault schedule and the virtual-time results are bit-identical per run.
faults:
	$(GO) test -run 'Fault|Outage|Flap|Crash|Dedupe|Closed|Retry|Robust' -v \
		./internal/faults/... ./internal/rdma/... ./internal/rpc/... \
		./internal/memnode/... ./internal/engine/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
