# Developer entry points. `make check` is the tier-1 verification gate
# (see ROADMAP.md) plus a -race pass over the packages with the most
# lock-free concurrency.

GO ?= go

.PHONY: check build test vet race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/... ./internal/engine/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
