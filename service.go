package dlsm

import (
	"io"

	"dlsm/internal/service"
	"dlsm/internal/telemetry"
)

// Service-tier re-exports: a simulated front-end over a DB — client
// entities per tenant with think time, per-tenant token-bucket admission
// control (ErrThrottled / queue-to-deadline), and SLO reports
// (p50/p95/p99/p999) from virtual-clock latencies. See internal/service.
type (
	// ServiceConfig describes one service-tier run (seed, key/value
	// formatters, tenants).
	ServiceConfig = service.Config
	// TenantConfig describes one tenant: clients, ops, think time,
	// rate limit, admission deadline, workload.
	TenantConfig = service.TenantConfig
	// Workload is a tenant's operation mix; build with YCSBWorkload or
	// ReadSeqWorkload, or fill the struct directly.
	Workload = service.Workload
	// ServiceReport is one tenant's SLO summary.
	ServiceReport = service.Report
)

// ErrThrottled is returned inside the service tier when a tenant's
// admission controller rejects a request (the request consumes no quota).
var ErrThrottled = service.ErrThrottled

// YCSBWorkload returns YCSB core workload w ('A'..'F') over keyRange
// preloaded keys.
func YCSBWorkload(w byte, keyRange int) Workload { return service.YCSB(w, keyRange) }

// ReadSeqWorkload is the full-table-scan workload: each client scans the
// whole database once, with entries (not scans) as throughput units.
func ReadSeqWorkload(keyRange int) Workload { return service.ReadSeq(keyRange) }

// WriteServiceReports renders per-tenant SLO rows as an aligned table.
func WriteServiceReports(w io.Writer, reports []ServiceReport) {
	service.WriteReports(w, reports)
}

// ServiceTier is a front-end tier bound to a deployment and a DB.
type ServiceTier struct {
	inner *service.Tier
}

// NewService builds a service tier driving db on d's simulation
// environment. Spawn and drain the tenants with Run (inside d.Run).
func NewService(d *Deployment, db *DB, cfg ServiceConfig) *ServiceTier {
	return &ServiceTier{inner: service.New(d.Env, tierDB{db}, cfg)}
}

// Run spawns every tenant's client entities, waits for them to drain
// their request budgets, and returns one SLO report per tenant.
func (t *ServiceTier) Run() []ServiceReport { return t.inner.Run() }

// TelemetrySnapshot returns the tier's svc.* metrics (per-tenant latency
// and admission histograms, issue/admit/throttle counters).
func (t *ServiceTier) TelemetrySnapshot() telemetry.Snapshot {
	return t.inner.TelemetrySnapshot()
}

// tierDB adapts the facade DB to the service tier's backend interface.
type tierDB struct{ db *DB }

func (d tierDB) NewSession() service.Session { return tierSession{s: d.db.NewSession()} }

type tierSession struct{ s *Session }

func (s tierSession) Put(k, v []byte) error { return s.s.Put(k, v) }

func (s tierSession) Get(k []byte) ([]byte, error) { return s.s.Get(k) }

func (s tierSession) Scan(start []byte, fn func(k, v []byte) bool) {
	it := s.s.NewIterator()
	defer it.Close()
	if start == nil {
		it.First()
	} else {
		it.SeekGE(start)
	}
	for ; it.Valid(); it.Next() {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}

func (s tierSession) Close() { s.s.Close() }
