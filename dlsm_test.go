package dlsm

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsm/internal/sim"
)

func TestPublicAPIQuickstart(t *testing.T) {
	d := NewDeployment(SingleNodeConfig())
	d.Run(func() {
		db := Open(d, DefaultOptions())
		defer db.Close()
		s := db.NewSession()
		defer s.Close()

		s.Put([]byte("hello"), []byte("world"))
		v, err := s.Get([]byte("hello"))
		if err != nil || string(v) != "world" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		s.Delete([]byte("hello"))
		if _, err := s.Get([]byte("hello")); err != ErrNotFound {
			t.Fatalf("after delete: %v", err)
		}
	})
	d.Close()
}

func TestShardedDBRoutesAndScans(t *testing.T) {
	const n, lambda = 4000, 8
	d := NewDeployment(SingleNodeConfig())
	d.Run(func() {
		format := func(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
		opts := DefaultOptions()
		opts.MemTableSize = 32 << 10
		opts.TableSize = 32 << 10
		opts.EntrySizeHint = 64
		db := OpenSharded(d, opts, lambda, UniformBoundaries(lambda, n, format))
		defer db.Close()
		if db.Lambda() != lambda {
			t.Fatalf("Lambda = %d", db.Lambda())
		}

		s := db.NewSession()
		defer s.Close()
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, i := range perm {
			s.Put(format(i), []byte(fmt.Sprintf("v%d", i)))
		}
		// Every shard should have received writes.
		for i := 0; i < lambda; i++ {
			if db.Shard(i).Stats().Writes.Load() == 0 {
				t.Fatalf("shard %d received no writes", i)
			}
		}
		for i := 0; i < n; i += 97 {
			v, err := s.Get(format(i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("Get(%d) = %q, %v", i, v, err)
			}
		}
		// Cross-shard scan in global key order.
		it := s.NewIterator()
		defer it.Close()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != string(format(count)) {
				t.Fatalf("scan[%d] = %q", count, it.Key())
			}
			count++
		}
		if count != n {
			t.Fatalf("scanned %d, want %d", count, n)
		}
		// SeekGE across a shard boundary.
		it2 := s.NewIterator()
		defer it2.Close()
		it2.SeekGE(format(n / 2))
		if !it2.Valid() || string(it2.Key()) != string(format(n/2)) {
			t.Fatalf("SeekGE = %q", it2.Key())
		}
	})
	d.Close()
}

func TestClusterMultiComputeMultiMemory(t *testing.T) {
	const c, m, lambda, perNode = 2, 4, 2, 1500
	d := NewDeployment(CloudLabConfig(c, m))
	d.Run(func() {
		format := func(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
		total := c * perNode
		var nodeBounds [][]byte
		for i := 1; i < c; i++ {
			nodeBounds = append(nodeBounds, format(total*i/c))
		}
		opts := DefaultOptions()
		opts.MemTableSize = 32 << 10
		opts.TableSize = 32 << 10
		opts.EntrySizeHint = 64
		cl := OpenCluster(d, opts, lambda, nodeBounds, func(node int) [][]byte {
			lo, hi := total*node/c, total*(node+1)/c
			var b [][]byte
			for j := 1; j < lambda; j++ {
				b = append(b, format(lo+(hi-lo)*j/lambda))
			}
			return b
		})
		defer cl.Close()

		// One driver entity per compute node writes its own key slice.
		wg := sim.NewWaitGroup(d.Env)
		for node := 0; node < c; node++ {
			node := node
			wg.Add(1)
			d.Env.Go(func() {
				defer wg.Done()
				s := cl.Compute(node).NewSession()
				defer s.Close()
				lo := total * node / c
				for i := 0; i < perNode; i++ {
					k := format(lo + i)
					s.Put(k, k)
				}
				for i := 0; i < perNode; i += 23 {
					k := format(lo + i)
					v, err := s.Get(k)
					if err != nil || string(v) != string(k) {
						t.Errorf("node %d Get(%s) = %q, %v", node, k, v, err)
						return
					}
				}
			})
		}
		wg.Wait()
	})
	d.Close()
}
