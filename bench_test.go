package dlsm

// One testing.B benchmark per evaluation figure (§XI). Each iteration runs
// a scaled-down version of the figure's workload on the simulated testbed
// and reports *virtual-time* throughput as the custom metric "vops/s" —
// host ns/op only reflects how fast the simulation executes, while vops/s
// reflects the modeled hardware and is the number compared against the
// paper in EXPERIMENTS.md. Full sweeps: cmd/dlsm-bench.

import (
	"testing"

	"dlsm/internal/bench"
)

const benchN = 40_000

// report runs one workload per b.N iteration and reports virtual
// throughput of the last run.
func report(b *testing.B, run func() float64) {
	b.Helper()
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = run()
	}
	b.ReportMetric(tput, "vops/s")
}

func BenchmarkFig7aWriteNormalMode(b *testing.B) {
	for _, sys := range []bench.System{bench.DLSM, bench.RocksRDMA8K, bench.NovaLSM, bench.Sherman} {
		b.Run(sys.String(), func(b *testing.B) {
			report(b, func() float64 {
				return bench.FillRandom(bench.Config{System: sys, Threads: 16, N: benchN}).Throughput
			})
		})
	}
}

func BenchmarkFig7bWriteBulkload(b *testing.B) {
	for _, sys := range []bench.System{bench.DLSM, bench.RocksRDMA8K, bench.NovaLSM} {
		b.Run(sys.String(), func(b *testing.B) {
			report(b, func() float64 {
				return bench.FillRandom(bench.Config{System: sys, Threads: 16, N: benchN, Bulkload: true}).Throughput
			})
		})
	}
}

func BenchmarkFig8Read(b *testing.B) {
	for _, sys := range []bench.System{bench.DLSM, bench.RocksRDMA8K, bench.MemoryRocks, bench.Sherman} {
		b.Run(sys.String(), func(b *testing.B) {
			report(b, func() float64 {
				return bench.ReadRandom(bench.Config{System: sys, Threads: 16, N: benchN, KeyRange: benchN}).Throughput
			})
		})
	}
}

func BenchmarkFig9DataSizes(b *testing.B) {
	for _, n := range []int{benchN / 2, benchN, benchN * 2} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			report(b, func() float64 {
				return bench.FillRandom(bench.Config{System: bench.DLSM, Threads: 16, N: n, KeyRange: n}).Throughput
			})
		})
	}
}

func BenchmarkFig10Mixed(b *testing.B) {
	for _, v := range []struct {
		name   string
		lambda int
	}{{"dLSM-1", 1}, {"dLSM-8", 8}} {
		b.Run(v.name, func(b *testing.B) {
			report(b, func() float64 {
				return bench.Mixed(bench.Config{System: bench.DLSM, Threads: 16, N: benchN,
					KeyRange: benchN, ReadRatio: 0.5, Lambda: v.lambda}).Throughput
			})
		})
	}
}

func BenchmarkFig11ReadSeq(b *testing.B) {
	for _, sys := range []bench.System{bench.DLSM, bench.RocksRDMA8K, bench.Sherman} {
		b.Run(sys.String(), func(b *testing.B) {
			report(b, func() float64 {
				return bench.ReadSeq(bench.Config{System: sys, Threads: 4, N: benchN, KeyRange: benchN}).Throughput
			})
		})
	}
}

func BenchmarkFig12NearDataCompaction(b *testing.B) {
	for _, cores := range []int{1, 4, 12} {
		b.Run(coresLabel(cores), func(b *testing.B) {
			report(b, func() float64 {
				return bench.FillRandom(bench.Config{System: bench.DLSM, Threads: 16, N: benchN,
					MemoryCores: cores}).Throughput
			})
		})
	}
	b.Run("compute-side", func(b *testing.B) {
		report(b, func() float64 {
			return bench.FillRandom(bench.Config{System: bench.DLSM, Threads: 16, N: benchN,
				DisableNearData: true}).Throughput
		})
	})
}

func BenchmarkFig13ByteAddressable(b *testing.B) {
	for _, sys := range []bench.System{bench.DLSM, bench.DLSMBlock} {
		b.Run(sys.String()+"/write", func(b *testing.B) {
			report(b, func() float64 {
				return bench.FillRandom(bench.Config{System: sys, Threads: 16, N: benchN, KeyRange: benchN}).Throughput
			})
		})
		b.Run(sys.String()+"/read", func(b *testing.B) {
			report(b, func() float64 {
				return bench.ReadRandom(bench.Config{System: sys, Threads: 16, N: benchN, KeyRange: benchN}).Throughput
			})
		})
	}
}

func BenchmarkFig14aScaleMemoryNodes(b *testing.B) {
	for _, m := range []int{1, 4} {
		b.Run(nodesLabel(m), func(b *testing.B) {
			report(b, func() float64 {
				r := bench.Fig14aPoint(benchN/2, m, 16)
				return r.Throughput
			})
		})
	}
}

func BenchmarkFig14bScaleComputeNodes(b *testing.B) {
	for _, c := range []int{1, 4} {
		b.Run(nodesLabel(c), func(b *testing.B) {
			report(b, func() float64 {
				r := bench.Fig14bPoint(benchN, c, 8)
				return r.Throughput
			})
		})
	}
}

func BenchmarkFig15MultiNode(b *testing.B) {
	for _, x := range []int{1, 4} {
		b.Run(nodesLabel(x), func(b *testing.B) {
			report(b, func() float64 {
				r := bench.Fig15Point(bench.DLSM, benchN/2, x, 8)
				return r.Throughput
			})
		})
	}
}

func sizeLabel(n int) string  { return "n=" + itoa(n) }
func coresLabel(c int) string { return "cores=" + itoa(c) }
func nodesLabel(n int) string { return "nodes=" + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
