// Package keys defines the internal key encoding shared by MemTables and
// SSTables: a user key followed by an 8-byte trailer packing a sequence
// number with the entry kind, ordered so that newer versions of a key sort
// before older ones (as in LevelDB/RocksDB, whose layout dLSM reuses).
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Seq is a global write sequence number. Sequence numbers implement snapshot
// isolation: a reader at sequence s observes exactly the writes with
// sequence <= s.
type Seq uint64

// MaxSeq is the largest representable sequence number (56 bits, as the
// trailer packs kind into the low byte).
const MaxSeq Seq = (1 << 56) - 1

// Kind discriminates entry types within the LSM-tree.
type Kind uint8

// Entry kinds. Deletes are tombstones that shadow older values until
// compaction drops both.
const (
	KindDelete Kind = 0
	KindSet    Kind = 1
)

// TrailerLen is the byte length of the internal-key trailer.
const TrailerLen = 8

// Append appends the internal key (ukey, seq, kind) to dst.
func Append(dst, ukey []byte, seq Seq, kind Kind) []byte {
	dst = append(dst, ukey...)
	return binary.LittleEndian.AppendUint64(dst, uint64(seq)<<8|uint64(kind))
}

// AppendLookup appends the "lookup key" for reading ukey at snapshot seq:
// the internal key that sorts before every version of ukey newer than seq.
func AppendLookup(dst, ukey []byte, seq Seq) []byte {
	return Append(dst, ukey, seq, KindSet)
}

// Parse splits an internal key into its components.
func Parse(ikey []byte) (ukey []byte, seq Seq, kind Kind, err error) {
	if len(ikey) < TrailerLen {
		return nil, 0, 0, fmt.Errorf("keys: internal key too short (%d bytes)", len(ikey))
	}
	n := len(ikey) - TrailerLen
	t := binary.LittleEndian.Uint64(ikey[n:])
	return ikey[:n], Seq(t >> 8), Kind(t & 0xff), nil
}

// UserKey returns the user-key prefix of an internal key.
func UserKey(ikey []byte) []byte { return ikey[:len(ikey)-TrailerLen] }

// Compare orders internal keys: user key ascending, then sequence number
// descending (newer first), then kind descending.
func Compare(a, b []byte) int {
	au, bu := UserKey(a), UserKey(b)
	if c := bytes.Compare(au, bu); c != 0 {
		return c
	}
	at := binary.LittleEndian.Uint64(a[len(au):])
	bt := binary.LittleEndian.Uint64(b[len(bu):])
	switch {
	case at > bt:
		return -1
	case at < bt:
		return +1
	}
	return 0
}
