package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendParseRoundTrip(t *testing.T) {
	f := func(ukey []byte, seq uint64, set bool) bool {
		seq &= uint64(MaxSeq)
		kind := KindDelete
		if set {
			kind = KindSet
		}
		ik := Append(nil, ukey, Seq(seq), kind)
		gu, gs, gk, err := Parse(ik)
		return err == nil && bytes.Equal(gu, ukey) && gs == Seq(seq) && gk == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseTooShort(t *testing.T) {
	if _, _, _, err := Parse([]byte("short")); err == nil {
		t.Fatal("Parse of 5-byte key should fail")
	}
}

func TestCompareOrdersUserKeysAscending(t *testing.T) {
	a := Append(nil, []byte("apple"), 5, KindSet)
	b := Append(nil, []byte("banana"), 5, KindSet)
	if Compare(a, b) >= 0 {
		t.Fatal("apple should sort before banana")
	}
}

func TestCompareOrdersSeqDescending(t *testing.T) {
	older := Append(nil, []byte("k"), 5, KindSet)
	newer := Append(nil, []byte("k"), 9, KindSet)
	if Compare(newer, older) >= 0 {
		t.Fatal("newer version must sort before older")
	}
}

func TestCompareKindBreaksTies(t *testing.T) {
	del := Append(nil, []byte("k"), 5, KindDelete)
	set := Append(nil, []byte("k"), 5, KindSet)
	if Compare(set, del) >= 0 {
		t.Fatal("set (kind 1) must sort before delete (kind 0) at equal seq")
	}
}

func TestLookupKeySortsBeforeVisibleVersions(t *testing.T) {
	// The lookup key at snapshot s must sort <= every version with seq <= s
	// and > every version with seq > s.
	lookup := AppendLookup(nil, []byte("k"), 10)
	visible := Append(nil, []byte("k"), 10, KindSet)
	tooNew := Append(nil, []byte("k"), 11, KindSet)
	if Compare(lookup, visible) > 0 {
		t.Fatal("lookup must not sort after an equal-seq version")
	}
	if Compare(lookup, tooNew) <= 0 {
		t.Fatal("lookup must sort after newer-than-snapshot versions")
	}
}

func TestCompareConsistencyProperty(t *testing.T) {
	f := func(ka, kb []byte, sa, sb uint64) bool {
		ia := Append(nil, ka, Seq(sa&uint64(MaxSeq)), KindSet)
		ib := Append(nil, kb, Seq(sb&uint64(MaxSeq)), KindSet)
		return Compare(ia, ib) == -Compare(ib, ia)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserKey(t *testing.T) {
	ik := Append(nil, []byte("user"), 1, KindSet)
	if string(UserKey(ik)) != "user" {
		t.Fatalf("UserKey = %q", UserKey(ik))
	}
}
