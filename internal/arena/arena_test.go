package arena

import (
	"sync"
	"testing"
)

func TestAllocSizesAndAccounting(t *testing.T) {
	a := New()
	total := 0
	for _, n := range []int{1, 64, 4096, slabSize, slabSize + 1} {
		b := a.Alloc(n)
		if len(b) != n {
			t.Fatalf("Alloc(%d) returned %d bytes", n, len(b))
		}
		for i := range b {
			if b[i] != 0 {
				t.Fatalf("Alloc(%d) not zeroed at %d", n, i)
			}
		}
		total += n
	}
	if a.Used() != int64(total) {
		t.Fatalf("Used = %d, want %d", a.Used(), total)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := New()
	b1 := a.Alloc(10)
	b2 := a.Alloc(10)
	for i := range b1 {
		b1[i] = 1
	}
	for i := range b2 {
		b2[i] = 2
	}
	for i := range b1 {
		if b1[i] != 1 {
			t.Fatal("allocations overlap")
		}
	}
}

func TestAppendCopies(t *testing.T) {
	a := New()
	src := []byte("data")
	cp := a.Append(src)
	src[0] = 'X'
	if string(cp) != "data" {
		t.Fatalf("Append aliased the source: %q", cp)
	}
}

func TestAppendCapClamped(t *testing.T) {
	// Appending to a returned slice must not clobber the next allocation.
	a := New()
	b1 := a.Alloc(8)
	b2 := a.Alloc(8)
	_ = append(b1, 0xFF, 0xFF)
	for i := range b2 {
		if b2[i] != 0 {
			t.Fatal("append to earlier allocation clobbered later one")
		}
	}
}

func TestConcurrentAlloc(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := a.Alloc(32)
				b[0] = 1 // touch to catch overlap crashes under -race
			}
		}()
	}
	wg.Wait()
	if a.Used() != 8*1000*32 {
		t.Fatalf("Used = %d, want %d", a.Used(), 8*1000*32)
	}
}
