// Package arena provides a concurrent bump allocator. MemTables allocate
// skiplist nodes and key-value bytes from an arena so that a full table is
// released as a handful of slabs instead of millions of small objects —
// keeping Go GC pressure (which would otherwise distort latency, see
// DESIGN.md §2) off the write path.
package arena

import (
	"sync"
	"sync/atomic"
)

const slabSize = 1 << 20 // 1 MiB

// Arena is a thread-safe append-only allocator. Memory is reclaimed all at
// once when the arena becomes unreachable.
type Arena struct {
	used atomic.Int64 // total bytes handed out, for MemTable sizing

	mu    sync.Mutex
	slab  []byte
	off   int
	slabs [][]byte
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Alloc returns a zeroed byte slice of length n from the arena.
func (a *Arena) Alloc(n int) []byte {
	a.used.Add(int64(n))
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > slabSize {
		b := make([]byte, n)
		a.slabs = append(a.slabs, b)
		return b
	}
	if a.off+n > len(a.slab) {
		a.slab = make([]byte, slabSize)
		a.slabs = append(a.slabs, a.slab)
		a.off = 0
	}
	b := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// Append copies p into the arena and returns the stable copy.
func (a *Arena) Append(p []byte) []byte {
	b := a.Alloc(len(p))
	copy(b, p)
	return b
}

// Used returns the total bytes allocated, the MemTable's size estimate.
func (a *Arena) Used() int64 { return a.used.Load() }
