// Package rpc implements dLSM's two RPC flavors over the RDMA fabric
// (paper §X-D):
//
//   - General-purpose RPC: the requester attaches the address and rkey of a
//     reply buffer to a two-sided SEND; the responder processes the call and
//     returns results with a one-sided WRITE into that buffer; the requester
//     polls a flag at the end of the buffer, so the reply bypasses the
//     message dispatcher entirely.
//   - Large-argument RPC (near-data compaction): arguments are serialized
//     into a registered buffer on the requester and only their address is
//     sent; the responder pulls them with an RDMA READ. The reply is a
//     WRITE_WITH_IMMEDIATE whose immediate value is a wake-up id; a per-node
//     thread notifier routes it to the sleeping requester.
package rpc

import "encoding/binary"

// Wire format helpers: all integers little-endian, length-prefixed bytes.

func putU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putBytes(b, p []byte) []byte {
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) u32() uint32 {
	if r.err || r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err || r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}
