package rpc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func quickPolicy(attempts int) Policy {
	return Policy{
		Timeout:     time.Millisecond,
		MaxAttempts: attempts,
		Backoff:     100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      0.2,
	}
}

func TestCallPolicyTimesOutWhileServiceDown(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("ping", func(from int, args []byte) ([]byte, error) { return []byte("pong"), nil })
		srv.Start()
		srv.Stop() // service dies; the node's memory stays registered

		cli := NewClient(cn, mn, nil, 4096)
		start := env.Now()
		_, err := cli.CallPolicy("ping", nil, quickPolicy(3))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		// Three attempts, each expiring its 1ms deadline.
		if d := time.Duration(env.Now() - start); d < 3*time.Millisecond {
			t.Fatalf("3 timed-out attempts took %v, want >= 3ms", d)
		}
	})
	env.Wait()
	tel := f.Telemetry()
	if tel.Counter("rpc.timeouts").Load() != 3 {
		t.Errorf("rpc.timeouts = %d, want 3", tel.Counter("rpc.timeouts").Load())
	}
	if tel.Counter("rpc.retries").Load() != 2 {
		t.Errorf("rpc.retries = %d, want 2", tel.Counter("rpc.retries").Load())
	}
}

func TestCallPolicySucceedsAfterServiceRestart(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("ping", func(from int, args []byte) ([]byte, error) { return []byte("pong"), nil })
		srv.Start()
		srv.Stop()
		env.Go(func() {
			env.Sleep(2500 * time.Microsecond)
			srv.Start()
		})

		cli := NewClient(cn, mn, nil, 4096)
		got, err := cli.CallPolicy("ping", nil, quickPolicy(10))
		if err != nil {
			t.Fatalf("CallPolicy: %v", err)
		}
		if string(got) != "pong" {
			t.Fatalf("reply = %q", got)
		}
	})
	env.Wait()
	if f.Telemetry().Counter("rpc.retries").Load() == 0 {
		t.Error("expected retries while the service was down")
	}
}

func TestCallLargePolicyRetriesAcrossServiceOutage(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 2)
		srv.Handle("sum", func(from int, args []byte) ([]byte, error) {
			var s int
			for _, b := range args {
				s += int(b)
			}
			return []byte{byte(s), byte(s >> 8)}, nil
		})
		srv.Start()
		srv.Stop()
		env.Go(func() {
			env.Sleep(2 * time.Millisecond)
			srv.Start()
		})

		cli := NewClient(cn, mn, NotifierFor(cn), 4096)
		args := bytes.Repeat([]byte{1}, 10_000)
		got, err := cli.CallLargePolicy("sum", args, quickPolicy(10))
		if err != nil {
			t.Fatalf("CallLargePolicy: %v", err)
		}
		const want = 10_000
		if got[0] != byte(want&0xff) || got[1] != byte(want>>8) {
			t.Fatalf("sum = %v", got)
		}
	})
	env.Wait()
}

func TestCallLargePolicyExhaustsAttempts(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("noop", func(from int, args []byte) ([]byte, error) { return nil, nil })
		srv.Start()
		srv.Stop()
		cli := NewClient(cn, mn, NotifierFor(cn), 4096)
		_, err := cli.CallLargePolicy("noop", make([]byte, 1000), quickPolicy(2))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
	env.Wait()
}

func TestOversizedReplyDegradesToError(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("big", func(from int, args []byte) ([]byte, error) {
			return bytes.Repeat([]byte{7}, 100_000), nil
		})
		srv.Start()
		cli := NewClient(cn, mn, nil, 256) // reply buffer far too small
		_, err := cli.Call("big", nil)
		if err == nil || !strings.Contains(err.Error(), "too large") {
			t.Fatalf("err = %v, want reply-too-large error", err)
		}
		// The client must remain usable: the flag byte was set exactly once
		// and nothing beyond the buffer was touched.
		srv.Handle("small", func(from int, args []byte) ([]byte, error) { return []byte("ok"), nil })
		got, err := cli.Call("small", nil)
		if err != nil || string(got) != "ok" {
			t.Fatalf("follow-up call: %q, %v", got, err)
		}
	})
	env.Wait()
}

func TestRetryScheduleDeterministic(t *testing.T) {
	run := func() sim.Time {
		env := sim.NewEnvSeed(99)
		f := rdma.NewFabric(env, rdma.EDR100())
		cn := f.AddNode("compute", 4)
		mn := f.AddNode("memory", 4)
		env.Run(func() {
			defer f.Close()
			srv := NewServer(mn, sim.DefaultCosts(), 1)
			srv.Handle("ping", func(from int, args []byte) ([]byte, error) { return []byte("pong"), nil })
			srv.Start()
			srv.Stop()
			env.Go(func() {
				env.Sleep(3 * time.Millisecond)
				srv.Start()
			})
			cli := NewClient(cn, mn, nil, 4096)
			if _, err := cli.CallPolicy("ping", nil, quickPolicy(10)); err != nil {
				t.Fatalf("CallPolicy: %v", err)
			}
		})
		env.Wait()
		return env.Now()
	}
	if t1, t2 := run(), run(); t1 != t2 {
		t.Fatalf("same seed, different virtual end times: %v vs %v", t1, t2)
	}
}

func TestServerRestartGetsFreshEpoch(t *testing.T) {
	// A handler that straddles a Stop must not write into a requester
	// buffer of the next era; the requester's retry (after restart) gets
	// the fresh handler's reply.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		calls := 0
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("slow", func(from int, args []byte) ([]byte, error) {
			calls++
			if calls == 1 {
				mn.CPU.Use(5 * time.Millisecond) // outlives the Stop below
			}
			return []byte("fresh"), nil
		})
		srv.Start()
		env.Go(func() {
			env.Sleep(time.Millisecond)
			srv.Stop()
			env.Sleep(time.Millisecond)
			srv.Start()
		})
		cli := NewClient(cn, mn, nil, 4096)
		got, err := cli.CallPolicy("slow", nil, Policy{Timeout: 2 * time.Millisecond, MaxAttempts: 10, Backoff: 500 * time.Microsecond})
		if err != nil {
			t.Fatalf("CallPolicy: %v", err)
		}
		if string(got) != "fresh" {
			t.Fatalf("reply = %q", got)
		}
		if calls < 2 {
			t.Fatalf("calls = %d, want the zombie first call plus a retry", calls)
		}
	})
	env.Wait()
}
