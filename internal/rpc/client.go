package rpc

import (
	"errors"
	"fmt"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// Client issues RPCs from one requester thread to one responder node. It is
// not safe for concurrent use: like the paper's design, every thread owns a
// thread-local QP, reply buffer and (for large calls) argument buffer.
type Client struct {
	env      *sim.Env
	node     *rdma.Node
	peer     *rdma.Node
	qp       *rdma.QP
	reply    *rdma.MemoryRegion
	args     *rdma.MemoryRegion
	notifier *Notifier
	wakeID   uint32
}

// DefaultReplyBuf is the reply buffer size when none is specified.
const DefaultReplyBuf = 1 << 20

// NewClient creates a client from node to peer. notifier may be nil if
// CallLarge is never used. replyBuf is the reply buffer capacity.
func NewClient(node, peer *rdma.Node, notifier *Notifier, replyBuf int) *Client {
	if replyBuf <= 0 {
		replyBuf = DefaultReplyBuf
	}
	c := &Client{
		env:      node.Fabric().Env(),
		node:     node,
		peer:     peer,
		qp:       node.NewQP(peer),
		reply:    node.Register(replyBuf),
		notifier: notifier,
	}
	if notifier != nil {
		c.wakeID = notifier.NewID()
	}
	return c
}

// Call performs a general-purpose RPC: SEND the request with the reply
// buffer's address attached, then poll the flag byte at the end of the
// buffer until the responder's one-sided write lands.
func (c *Client) Call(method string, args []byte) ([]byte, error) {
	flagOff := c.reply.Size() - 1
	c.reply.SetByte(flagOff, 0)

	req := make([]byte, 0, len(args)+len(method)+64)
	req = putU32(req, kindInline)
	req = putBytes(req, []byte(method))
	req = c.appendReplyAddr(req)
	req = putBytes(req, args)

	if err := c.qp.SendSync(EndpointName, req); err != nil {
		return nil, err
	}
	c.reply.AwaitByte(flagOff, 1)
	return c.parseReply()
}

// CallLarge performs the near-data-compaction RPC: args are serialized into
// a registered buffer and pulled by the responder via RDMA READ; the caller
// sleeps until the reply's WRITE_WITH_IMMEDIATE wakes it through the node's
// thread notifier.
func (c *Client) CallLarge(method string, args []byte) ([]byte, error) {
	if c.notifier == nil {
		return nil, errors.New("rpc: CallLarge requires a notifier")
	}
	if c.args == nil || c.args.Size() < len(args) {
		c.args = c.node.Register(max(len(args), 64<<10))
	}
	copy(c.args.Bytes(0, len(args)), args)

	req := make([]byte, 0, len(method)+64)
	req = putU32(req, kindRemote)
	req = putBytes(req, []byte(method))
	req = c.appendReplyAddr(req)
	argAddr := c.args.Addr(0)
	req = putU32(req, uint32(argAddr.Node))
	req = putU32(req, argAddr.RKey)
	req = putU64(req, uint64(argAddr.Off))
	req = putU32(req, uint32(len(args)))
	req = putU32(req, c.wakeID)

	wake := c.notifier.Arm(c.wakeID)
	if err := c.qp.SendSync(EndpointName, req); err != nil {
		return nil, err
	}
	c.notifier.Wait(wake) // sleep until the reply's immediate wakes us
	return c.parseReply()
}

func (c *Client) appendReplyAddr(req []byte) []byte {
	addr := c.reply.Addr(0)
	req = putU32(req, uint32(addr.Node))
	req = putU32(req, addr.RKey)
	req = putU64(req, uint64(addr.Off))
	req = putU32(req, uint32(c.reply.Size()))
	return req
}

func (c *Client) parseReply() ([]byte, error) {
	buf := c.reply.Bytes(0, c.reply.Size())
	r := &reader{b: buf, off: 1}
	payload := r.bytes()
	if r.err {
		return nil, errors.New("rpc: malformed reply")
	}
	if buf[0] == statusErr {
		return nil, fmt.Errorf("rpc: remote error: %s", payload)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Close releases the client's QP.
func (c *Client) Close() { c.qp.Close() }

// Notifier is the per-node thread notifier (§X-D2): a single entity drains
// the node's immediate queue and wakes the requester registered under each
// wake-up id.
type Notifier struct {
	env  *sim.Env
	node *rdma.Node

	mu     sync.Mutex
	nextID uint32
	armed  map[uint32]chan struct{}
}

// notifierKey indexes the per-node notifier in Node.UserData.
type notifierKey struct{}

// NotifierFor returns the node's thread notifier, creating and starting it
// on first use. The notifier is a per-node singleton because WRITE_WITH_IMM
// notifications arrive on one queue per node: multiple drainers would steal
// each other's wake-ups, and wake ids must be unique node-wide.
func NotifierFor(node *rdma.Node) *Notifier {
	if v, ok := node.UserData().Load(notifierKey{}); ok {
		return v.(*Notifier)
	}
	n := &Notifier{
		env:   node.Fabric().Env(),
		node:  node,
		armed: make(map[uint32]chan struct{}),
	}
	if actual, loaded := node.UserData().LoadOrStore(notifierKey{}, n); loaded {
		return actual.(*Notifier)
	}
	n.env.Go(n.loop)
	return n
}

// NewID allocates a unique wake-up id for a requester thread.
func (n *Notifier) NewID() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	return n.nextID
}

// Arm registers the calling requester to be woken when a reply with its id
// arrives. Arm before issuing the request; then block with Wait.
func (n *Notifier) Arm(id uint32) <-chan struct{} {
	ch := make(chan struct{})
	n.mu.Lock()
	n.armed[id] = ch
	n.mu.Unlock()
	return ch
}

// Wait parks the calling entity until the armed channel is signaled.
func (n *Notifier) Wait(ch <-chan struct{}) {
	n.env.Clock().Block("rpc.sleep")
	<-ch
}

func (n *Notifier) loop() {
	q := n.node.ImmQueue()
	for {
		msg, ok := q.Recv()
		if !ok {
			n.drain()
			return
		}
		n.mu.Lock()
		ch := n.armed[msg.Imm]
		delete(n.armed, msg.Imm)
		n.mu.Unlock()
		if ch != nil {
			n.env.Clock().Unblock("rpc.sleep")
			close(ch)
		}
	}
}

// drain wakes any still-armed requesters during shutdown so they do not
// leak as blocked entities.
func (n *Notifier) drain() {
	n.mu.Lock()
	armed := n.armed
	n.armed = make(map[uint32]chan struct{})
	n.mu.Unlock()
	for _, ch := range armed {
		n.env.Clock().Unblock("rpc.sleep")
		close(ch)
	}
}
