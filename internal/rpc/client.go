package rpc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// ErrTimeout is returned (wrapped) when a call's reply deadline expires on
// its final attempt. Test with errors.Is.
var ErrTimeout = errors.New("rpc: call timed out")

// Policy controls per-call robustness. The zero value reproduces the
// pre-fault-injection behavior: wait forever, never retry — so baseline
// benchmarks are unaffected unless a caller opts in.
//
// Retrying is only safe for idempotent or deduplicated calls: reads and
// allocation-free polls can always retry; compaction RPCs carry a job id
// so the memory node deduplicates redelivery (see internal/memnode).
type Policy struct {
	// Timeout is the per-attempt reply deadline in virtual time; 0 waits
	// forever.
	Timeout sim.Duration
	// MaxAttempts is the total number of attempts (first try included);
	// values below 1 mean 1.
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt, capped at MaxBackoff (if nonzero).
	Backoff sim.Duration
	// MaxBackoff caps the exponential backoff. 0 = uncapped.
	MaxBackoff sim.Duration
	// Jitter randomizes each backoff by ±Jitter fraction (0..1), hashed
	// deterministically from the client identity, method, call start time
	// and attempt number — no global RNG stream is consumed.
	Jitter float64
}

func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffFor returns the deterministic backoff before attempt+1.
func (p Policy) backoffFor(salt uint64, attempt int) sim.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*sim.MixFloat(salt, uint64(attempt))-1)
		d = sim.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Client issues RPCs from one requester thread to one responder node. It is
// not safe for concurrent use: like the paper's design, every thread owns a
// thread-local QP, reply buffer and (for large calls) argument buffer.
type Client struct {
	env      *sim.Env
	node     *rdma.Node
	peer     *rdma.Node
	qp       *rdma.QP
	reply    *rdma.MemoryRegion
	args     *rdma.MemoryRegion
	notifier *Notifier
	salt     uint64

	retries  *telemetry.Counter
	timeouts *telemetry.Counter
}

// DefaultReplyBuf is the reply buffer size when none is specified.
const DefaultReplyBuf = 1 << 20

// NewClient creates a client from node to peer. notifier may be nil if
// CallLarge is never used. replyBuf is the reply buffer capacity.
func NewClient(node, peer *rdma.Node, notifier *Notifier, replyBuf int) *Client {
	if replyBuf <= 0 {
		replyBuf = DefaultReplyBuf
	}
	env := node.Fabric().Env()
	tel := node.Fabric().Telemetry()
	c := &Client{
		env:      env,
		node:     node,
		peer:     peer,
		qp:       node.NewQP(peer),
		reply:    node.Register(replyBuf),
		notifier: notifier,
		retries:  tel.Counter("rpc.retries"),
		timeouts: tel.Counter("rpc.timeouts"),
	}
	// The salt must be a pure function of stable identifiers: rkeys and
	// wake-up ids come from shared allocators whose hand-out order depends
	// on host scheduling when clients are created lazily by concurrent
	// workers, so they must not leak into the jitter stream.
	c.salt = sim.Mix64(uint64(env.Seed()), uint64(node.ID), uint64(peer.ID))
	return c
}

// callSalt derives one call's jitter stream from the client's stable
// identity, the method, and the call's start in virtual time — all pure
// virtual-state inputs, so same-seed runs draw identical backoff jitter no
// matter how host threads interleave, while concurrent calls (which start
// at different virtual instants) still decorrelate.
func (c *Client) callSalt(method string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	return sim.Mix64(c.salt, h.Sum64(), uint64(c.env.Now()))
}

// Call performs a general-purpose RPC with no deadline and no retries: SEND
// the request with the reply buffer's address attached, then poll the flag
// byte at the end of the buffer until the responder's one-sided write lands.
func (c *Client) Call(method string, args []byte) ([]byte, error) {
	return c.CallPolicy(method, args, Policy{})
}

// CallPolicy is Call under a robustness policy: each attempt abandons the
// reply flag at its deadline, and failed attempts are retried with capped
// exponential backoff. Every retry gets a fresh reply region so a straggler
// reply from an earlier attempt targets a deregistered rkey and dies on the
// responder's NIC instead of corrupting the retry.
func (c *Client) CallPolicy(method string, args []byte, p Policy) ([]byte, error) {
	attempts := p.attempts()
	salt := c.callSalt(method)
	var lastErr error
	for attempt := 1; ; attempt++ {
		flagOff := c.reply.Size() - 1
		c.reply.SetByte(flagOff, 0)

		req := make([]byte, 0, len(args)+len(method)+64)
		req = putU32(req, kindInline)
		req = putBytes(req, []byte(method))
		req = c.appendReplyAddr(req)
		req = putBytes(req, args)

		var deadline sim.Time
		if p.Timeout > 0 {
			deadline = c.env.Now() + sim.Time(p.Timeout)
		}
		if err := c.qp.SendSync(EndpointName, req); err != nil {
			if errors.Is(err, rdma.ErrQPClosed) {
				return nil, err // our own QP is gone; retrying cannot help
			}
			lastErr = err
		} else if c.reply.AwaitByteDeadline(flagOff, 1, deadline) {
			return c.parseReply()
		} else {
			c.timeouts.Inc()
			lastErr = fmt.Errorf("%w: %s (attempt %d/%d)", ErrTimeout, method, attempt, attempts)
		}
		if attempt >= attempts {
			return nil, lastErr
		}
		c.retries.Inc()
		if d := p.backoffFor(salt, attempt); d > 0 {
			c.env.Sleep(d)
		}
		c.renewReply()
	}
}

// CallLarge performs the near-data-compaction RPC with no deadline and no
// retries: args are serialized into a registered buffer and pulled by the
// responder via RDMA READ; the caller sleeps until the reply's
// WRITE_WITH_IMMEDIATE wakes it through the node's thread notifier.
func (c *Client) CallLarge(method string, args []byte) ([]byte, error) {
	return c.CallLargePolicy(method, args, Policy{})
}

// CallLargePolicy is CallLarge under a robustness policy. Each attempt arms
// a fresh wake-up id and each retry re-registers both the argument and the
// reply regions, so a straggler READ or reply write from a dead attempt
// hits an invalid rkey and cannot wake or corrupt the retry.
func (c *Client) CallLargePolicy(method string, args []byte, p Policy) ([]byte, error) {
	if c.notifier == nil {
		return nil, errors.New("rpc: CallLarge requires a notifier")
	}
	attempts := p.attempts()
	salt := c.callSalt(method)
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.stageArgs(args)
		wakeID := c.notifier.NewID()

		req := make([]byte, 0, len(method)+64)
		req = putU32(req, kindRemote)
		req = putBytes(req, []byte(method))
		req = c.appendReplyAddr(req)
		argAddr := c.args.Addr(0)
		req = putU32(req, uint32(argAddr.Node))
		req = putU32(req, argAddr.RKey)
		req = putU64(req, uint64(argAddr.Off))
		req = putU32(req, uint32(len(args)))
		req = putU32(req, wakeID)

		var deadline sim.Time
		if p.Timeout > 0 {
			deadline = c.env.Now() + sim.Time(p.Timeout)
		}
		w := c.notifier.Arm(wakeID)
		if err := c.qp.SendSync(EndpointName, req); err != nil {
			c.notifier.Disarm(wakeID, w)
			if errors.Is(err, rdma.ErrQPClosed) {
				return nil, err
			}
			lastErr = err
		} else if c.notifier.Wait(wakeID, w, deadline) {
			return c.parseReply()
		} else {
			c.timeouts.Inc()
			lastErr = fmt.Errorf("%w: %s (attempt %d/%d)", ErrTimeout, method, attempt, attempts)
		}
		if attempt >= attempts {
			return nil, lastErr
		}
		c.retries.Inc()
		if d := p.backoffFor(salt, attempt); d > 0 {
			c.env.Sleep(d)
		}
		c.renewReply()
		c.renewArgs()
	}
}

// stageArgs copies args into the registered argument buffer, growing it if
// needed. The outgrown region is deregistered first — leaking it would pin
// both memory and a live rkey a stale remote READ could still hit.
func (c *Client) stageArgs(args []byte) {
	if c.args == nil || c.args.Size() < len(args) {
		if c.args != nil {
			c.node.Deregister(c.args)
		}
		c.args = c.node.Register(max(len(args), 64<<10))
	}
	copy(c.args.Bytes(0, len(args)), args)
}

// renewReply swaps the reply region for a freshly registered one of the
// same size, invalidating the rkey any in-flight responder still holds.
func (c *Client) renewReply() {
	size := c.reply.Size()
	c.node.Deregister(c.reply)
	c.reply = c.node.Register(size)
}

// renewArgs drops the argument region; the next attempt re-stages into a
// fresh registration.
func (c *Client) renewArgs() {
	if c.args != nil {
		c.node.Deregister(c.args)
		c.args = nil
	}
}

func (c *Client) appendReplyAddr(req []byte) []byte {
	addr := c.reply.Addr(0)
	req = putU32(req, uint32(addr.Node))
	req = putU32(req, addr.RKey)
	req = putU64(req, uint64(addr.Off))
	req = putU32(req, uint32(c.reply.Size()))
	return req
}

func (c *Client) parseReply() ([]byte, error) {
	buf := c.reply.Bytes(0, c.reply.Size())
	r := &reader{b: buf, off: 1}
	payload := r.bytes()
	if r.err {
		return nil, errors.New("rpc: malformed reply")
	}
	if buf[0] == statusErr {
		return nil, fmt.Errorf("rpc: remote error: %s", payload)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Close releases the client's QP and deregisters its buffers.
func (c *Client) Close() {
	c.qp.Close()
	c.node.Deregister(c.reply)
	if c.args != nil {
		c.node.Deregister(c.args)
	}
}

// Notifier is the per-node thread notifier (§X-D2): a single entity drains
// the node's immediate queue and wakes the requester registered under each
// wake-up id.
type Notifier struct {
	env  *sim.Env
	node *rdma.Node

	mu     sync.Mutex
	nextID uint32
	armed  map[uint32]*Waiter
}

// Waiter is one armed wake-up registration. All fields are guarded by the
// notifier mutex; signaled/blocked sequence the race between a waker (the
// notifier loop, a drain, or the deadline alarm) and a requester that has
// armed but not yet parked.
type Waiter struct {
	ch       chan struct{}
	alarm    *sim.Alarm
	blocked  bool // requester is parked (Unblock on wake is owed)
	signaled bool // a waker already decided this waiter's fate
	timedOut bool
}

// notifierKey indexes the per-node notifier in Node.UserData.
type notifierKey struct{}

// NotifierFor returns the node's thread notifier, creating and starting it
// on first use. The notifier is a per-node singleton because WRITE_WITH_IMM
// notifications arrive on one queue per node: multiple drainers would steal
// each other's wake-ups, and wake ids must be unique node-wide.
func NotifierFor(node *rdma.Node) *Notifier {
	if v, ok := node.UserData().Load(notifierKey{}); ok {
		return v.(*Notifier)
	}
	n := &Notifier{
		env:   node.Fabric().Env(),
		node:  node,
		armed: make(map[uint32]*Waiter),
	}
	if actual, loaded := node.UserData().LoadOrStore(notifierKey{}, n); loaded {
		return actual.(*Notifier)
	}
	n.env.Go(n.loop)
	return n
}

// NewID allocates a unique wake-up id for one call attempt. Retried
// attempts use fresh ids so a straggler immediate from a dead attempt can
// never wake the retry.
func (n *Notifier) NewID() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	return n.nextID
}

// Arm registers the calling requester to be woken when a reply with its id
// arrives. Arm before issuing the request; then block with Wait.
func (n *Notifier) Arm(id uint32) *Waiter {
	w := &Waiter{ch: make(chan struct{})}
	n.mu.Lock()
	n.armed[id] = w
	n.mu.Unlock()
	return w
}

// Disarm cancels a registration that will never be waited on (e.g. the
// request SEND itself failed).
func (n *Notifier) Disarm(id uint32, w *Waiter) {
	n.mu.Lock()
	if n.armed[id] == w {
		delete(n.armed, id)
	}
	n.mu.Unlock()
}

// Wait parks the calling entity until the armed waiter is signaled. It
// returns true if the reply's immediate woke it, false if the deadline
// passed first (deadline 0 waits forever) or the notifier shut down.
func (n *Notifier) Wait(id uint32, w *Waiter, deadline sim.Time) bool {
	n.mu.Lock()
	if w.signaled {
		// The reply (or a shutdown drain) won the race before we parked.
		n.mu.Unlock()
		return !w.timedOut
	}
	if deadline > 0 {
		w.alarm = n.env.Clock().NewAlarm(deadline, "rpc.sleep")
		n.mu.Unlock()
		if w.alarm.Wait() {
			// Deadline fired first: claim the registration. Losing the
			// claim means the reply landed concurrently — count that as
			// success, the reply bytes are already in place.
			n.mu.Lock()
			if n.armed[id] == w {
				delete(n.armed, id)
				w.timedOut = true
			}
			n.mu.Unlock()
		}
		return !w.timedOut
	}
	w.blocked = true
	n.mu.Unlock()
	n.env.Clock().Block("rpc.sleep")
	<-w.ch
	return !w.timedOut
}

// wakeLocked signals one waiter; the caller holds n.mu and has already
// removed it from the armed map.
func (n *Notifier) wakeLocked(w *Waiter) {
	w.signaled = true
	switch {
	case w.alarm != nil:
		w.alarm.Cancel()
	case w.blocked:
		n.env.Clock().Ready("rpc.sleep", w.ch)
	default:
		// Not parked yet: Wait (or Disarm) observes signaled and never
		// blocks, so the scheduler is not involved.
		close(w.ch)
	}
}

func (n *Notifier) loop() {
	q := n.node.ImmQueue()
	for {
		msg, ok := q.Recv()
		if !ok {
			n.drain()
			return
		}
		n.mu.Lock()
		w := n.armed[msg.Imm]
		delete(n.armed, msg.Imm)
		if w != nil {
			n.wakeLocked(w)
		}
		n.mu.Unlock()
	}
}

// drain wakes any still-armed requesters during shutdown (the node
// crashed or closed) so they do not leak as blocked entities. They
// observe the shutdown as a timeout.
func (n *Notifier) drain() {
	n.mu.Lock()
	armed := n.armed
	n.armed = make(map[uint32]*Waiter)
	for _, w := range armed {
		w.timedOut = true
		n.wakeLocked(w)
	}
	n.mu.Unlock()
}
