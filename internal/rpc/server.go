package rpc

import (
	"fmt"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// EndpointName is the receive endpoint RPC requests arrive on.
const EndpointName = "rpc"

// Handler processes one call. args is only valid for the duration of the
// call. Returned bytes are copied into the requester's reply buffer.
type Handler func(fromNode int, args []byte) ([]byte, error)

// request kinds.
const (
	kindInline = 0 // args inline in the SEND payload
	kindRemote = 1 // args pulled from the requester via RDMA READ
)

// reply status bytes.
const (
	statusOK  = 0
	statusErr = 1
)

// Server dispatches RPC requests arriving at a node to a pool of worker
// entities and returns replies via one-sided writes (general case) or
// write-with-immediate (large-argument case).
//
// The service is restartable: Stop models the server process dying while
// the node's memory stays registered (one-sided RDMA keeps working — the
// whole point of memory disaggregation). While stopped, incoming requests
// are dropped on the floor and requester-side deadlines are the only way
// to notice. Start brings the service back under a new epoch; replies from
// handlers that straddled a stop are suppressed by the epoch guard so a
// zombie worker can never write into a requester buffer of a later era.
type Server struct {
	env   *sim.Env
	node  *rdma.Node
	costs sim.CostModel

	mu       sync.Mutex
	handlers map[string]Handler
	qps      map[[2]int]*rdma.QP // per (worker, requester node): thread-local QPs
	argBufs  map[int]*rdma.MemoryRegion

	work         *sim.Chan[rdma.Message]
	workers      int
	dedicated    map[string]*dedicatedPool
	nextWID      int
	running      bool
	dispatcherOn bool
	epoch        uint64
}

// dedicatedPool gives one method its own worker pool so long-running calls
// (near-data compaction) never starve short ones (allocation frees).
type dedicatedPool struct {
	work    *sim.Chan[rdma.Message]
	workers int
}

// NewServer creates an RPC server on node with the given worker pool size.
func NewServer(node *rdma.Node, costs sim.CostModel, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{
		env:       nodeEnv(node),
		node:      node,
		costs:     costs,
		handlers:  make(map[string]Handler),
		qps:       make(map[[2]int]*rdma.QP),
		argBufs:   make(map[int]*rdma.MemoryRegion),
		workers:   workers,
		dedicated: make(map[string]*dedicatedPool),
	}
}

func nodeEnv(n *rdma.Node) *sim.Env { return n.Fabric().Env() }

// Handle registers a handler for method. Must be called before Start.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleDedicated registers a handler served by its own pool of workers,
// isolating long-running calls from the shared pool.
func (s *Server) HandleDedicated(method string, h Handler, workers int) {
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
	s.dedicated[method] = &dedicatedPool{workers: workers}
}

// Start launches (or relaunches after Stop) the dispatcher and worker
// entities under a fresh epoch.
func (s *Server) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.epoch++
	epoch := s.epoch
	s.work = sim.NewChan[rdma.Message](s.env, 4096)
	type spec struct {
		work *sim.Chan[rdma.Message]
		n    int
	}
	specs := []spec{{s.work, s.workers}}
	for _, p := range s.dedicated {
		p.work = sim.NewChan[rdma.Message](s.env, 4096)
		specs = append(specs, spec{p.work, p.workers})
	}
	startDispatcher := !s.dispatcherOn
	s.dispatcherOn = true
	s.mu.Unlock()

	if startDispatcher {
		// Resolve the endpoint here, not in the dispatcher goroutine: Start
		// must synchronously register the receive queue so a fabric torn
		// down immediately afterwards closes it (and thus unwinds the
		// dispatcher) instead of racing the dispatcher's first instruction.
		ep := s.node.Endpoint(EndpointName)
		s.env.Go(func() { s.dispatch(ep) })
	}
	for _, sp := range specs {
		for i := 0; i < sp.n; i++ {
			id := s.allocWorkerID()
			work := sp.work
			s.env.Go(func() { s.pump(work, id, epoch) })
		}
	}
}

// Stop kills the RPC service: worker pools shut down, their QPs close (so
// in-flight replies complete with errors instead of reaching requesters),
// and arriving requests are dropped until the next Start. Registered
// memory regions are untouched — remote one-sided access keeps working.
func (s *Server) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	s.epoch++
	pools := []*sim.Chan[rdma.Message]{s.work}
	for _, p := range s.dedicated {
		pools = append(pools, p.work)
	}
	qps := make([]*rdma.QP, 0, len(s.qps))
	for _, qp := range s.qps {
		qps = append(qps, qp)
	}
	s.qps = make(map[[2]int]*rdma.QP)
	s.mu.Unlock()
	for _, w := range pools {
		w.Close()
	}
	for _, qp := range qps {
		qp.Close()
	}
}

// Running reports whether the service is accepting requests.
func (s *Server) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// epochValid reports whether a worker of the given epoch may still send
// replies.
func (s *Server) epochValid(e uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running && s.epoch == e
}

func (s *Server) allocWorkerID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextWID++
	return s.nextWID
}

// dispatch routes arriving requests to the worker pools of the current
// epoch, dropping them while the service is stopped. It exits (and tears
// the service down) when the node itself crashes or closes.
func (s *Server) dispatch(ep *sim.Chan[rdma.Message]) {
	for {
		msg, ok := ep.Recv()
		if !ok {
			s.mu.Lock()
			s.dispatcherOn = false
			s.mu.Unlock()
			s.Stop()
			return
		}
		s.mu.Lock()
		if !s.running {
			s.mu.Unlock()
			continue // service is down: the request vanishes
		}
		target := s.work
		if p, ok := s.dedicated[peekMethod(msg.Payload)]; ok {
			target = p.work
		}
		s.mu.Unlock()
		target.Send(msg)
	}
}

// peekMethod extracts the method name from a request without consuming it.
func peekMethod(payload []byte) string {
	r := &reader{b: payload}
	r.u32() // kind
	m := r.bytes()
	if r.err {
		return ""
	}
	return string(m)
}

func (s *Server) pump(work *sim.Chan[rdma.Message], id int, epoch uint64) {
	for {
		msg, ok := work.Recv()
		if !ok {
			return
		}
		s.serve(id, epoch, msg)
	}
}

// qpTo returns this worker's QP to the requester node, creating it on first
// use. QPs are thread-local so workers never mix completions (§X-B).
func (s *Server) qpTo(worker, nodeID int) *rdma.QP {
	key := [2]int{worker, nodeID}
	s.mu.Lock()
	defer s.mu.Unlock()
	qp, ok := s.qps[key]
	if !ok {
		qp = s.node.NewQP(s.node.Fabric().Node(nodeID))
		s.qps[key] = qp
	}
	return qp
}

// argBuf returns a per-worker staging buffer for pulled arguments.
func (s *Server) argBuf(worker, size int) *rdma.MemoryRegion {
	s.mu.Lock()
	defer s.mu.Unlock()
	mr := s.argBufs[worker]
	if mr == nil || mr.Size() < size {
		if mr != nil {
			s.node.Deregister(mr)
		}
		mr = s.node.Register(max(size, 64<<10))
		s.argBufs[worker] = mr
	}
	return mr
}

// replyOverhead is the fixed cost of a reply: status byte + u32 length
// prefix. The last byte of the requester's buffer is its ready flag, so
// the usable reply budget is replyLen - 1.
const replyOverhead = 5

// encodeReply builds the wire reply [status][len][payload] within the
// requester's buffer budget. Oversized results (and oversized error
// messages) degrade to a statusErr whose text is truncated to fit; if the
// buffer cannot hold even an empty error, nil is returned and no reply is
// sent — the requester's deadline is then the only exit. The flag byte at
// replyLen-1 is never touched by the payload, whatever the handler did.
func encodeReply(result []byte, err error, replyLen int) []byte {
	budget := replyLen - 1 - replyOverhead
	if budget < 0 {
		return nil
	}
	if err == nil && len(result) <= budget {
		reply := make([]byte, 0, len(result)+replyOverhead)
		reply = append(reply, statusOK)
		return putBytes(reply, result)
	}
	var msg string
	if err != nil {
		msg = err.Error()
	} else {
		msg = fmt.Sprintf("rpc: reply too large (%d bytes, buffer %d)", len(result), replyLen)
	}
	b := []byte(msg)
	if len(b) > budget {
		b = b[:budget]
	}
	reply := make([]byte, 0, len(b)+replyOverhead)
	reply = append(reply, statusErr)
	return putBytes(reply, b)
}

func (s *Server) serve(workerID int, epoch uint64, msg rdma.Message) {
	s.node.CPU.Use(s.costs.RPCHandle)

	r := &reader{b: msg.Payload}
	kind := r.u32()
	method := string(r.bytes())
	replyAddr := rdma.RemoteAddr{Node: int(r.u32()), RKey: r.u32(), Off: int(r.u64())}
	replyLen := int(r.u32())

	var args []byte
	var wakeID uint32
	switch kind {
	case kindInline:
		args = r.bytes()
	case kindRemote:
		argAddr := rdma.RemoteAddr{Node: int(r.u32()), RKey: r.u32(), Off: int(r.u64())}
		argLen := int(r.u32())
		wakeID = r.u32()
		if r.err {
			return
		}
		// Pull the large argument from the requester with an RDMA READ
		// (paper §X-D2), staging it in a pre-registered worker buffer.
		buf := s.argBuf(workerID, argLen)
		qp := s.qpTo(workerID, msg.From)
		if err := qp.ReadSync(buf, 0, argAddr, argLen); err != nil {
			return
		}
		args = buf.Bytes(0, argLen)
	default:
		return
	}
	if r.err {
		return
	}

	s.mu.Lock()
	h := s.handlers[method]
	s.mu.Unlock()

	var result []byte
	var err error
	if h == nil {
		err = fmt.Errorf("rpc: unknown method %q", method)
	} else {
		result, err = h(msg.From, args)
	}

	reply := encodeReply(result, err, replyLen)
	if reply == nil {
		return // no reply can fit; the requester's deadline handles it
	}
	if !s.epochValid(epoch) {
		return // service stopped while the handler ran: zombie reply suppressed
	}

	qp := s.qpTo(workerID, msg.From)
	lmr := s.node.RegisterBuf(reply) // small, per-reply staging
	defer s.node.Deregister(lmr)
	if kind == kindRemote {
		// Large-argument path: wake the sleeping requester via the
		// immediate value routed by its thread notifier.
		qp.WriteImm(lmr, 0, replyAddr, len(reply), wakeID, 0)
		qp.WaitCQ()
		return
	}
	// General path: write payload, then set the flag byte at the end of
	// the reply buffer; the requester is spin-polling it.
	qp.Write(lmr, 0, replyAddr, len(reply), 0)
	flag := s.node.RegisterBuf([]byte{1})
	defer s.node.Deregister(flag)
	qp.Write(flag, 0, replyAddr.Add(replyLen-1), 1, 1)
	qp.WaitCQ()
	qp.WaitCQ()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
