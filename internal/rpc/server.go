package rpc

import (
	"fmt"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// EndpointName is the receive endpoint RPC requests arrive on.
const EndpointName = "rpc"

// Handler processes one call. args is only valid for the duration of the
// call. Returned bytes are copied into the requester's reply buffer.
type Handler func(fromNode int, args []byte) ([]byte, error)

// request kinds.
const (
	kindInline = 0 // args inline in the SEND payload
	kindRemote = 1 // args pulled from the requester via RDMA READ
)

// reply status bytes.
const (
	statusOK  = 0
	statusErr = 1
)

// Server dispatches RPC requests arriving at a node to a pool of worker
// entities and returns replies via one-sided writes (general case) or
// write-with-immediate (large-argument case).
type Server struct {
	env   *sim.Env
	node  *rdma.Node
	costs sim.CostModel

	mu       sync.Mutex
	handlers map[string]Handler
	qps      map[[2]int]*rdma.QP // per (worker, requester node): thread-local QPs
	argBufs  map[int]*rdma.MemoryRegion

	work      *sim.Chan[rdma.Message]
	workers   int
	dedicated map[string]*dedicatedPool
	nextWID   int
	started   bool
}

// dedicatedPool gives one method its own worker pool so long-running calls
// (near-data compaction) never starve short ones (allocation frees).
type dedicatedPool struct {
	work    *sim.Chan[rdma.Message]
	workers int
}

// NewServer creates an RPC server on node with the given worker pool size.
func NewServer(node *rdma.Node, costs sim.CostModel, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{
		env:       nodeEnv(node),
		node:      node,
		costs:     costs,
		handlers:  make(map[string]Handler),
		qps:       make(map[[2]int]*rdma.QP),
		argBufs:   make(map[int]*rdma.MemoryRegion),
		work:      sim.NewChan[rdma.Message](nodeEnv(node), 4096),
		workers:   workers,
		dedicated: make(map[string]*dedicatedPool),
	}
}

func nodeEnv(n *rdma.Node) *sim.Env { return n.Fabric().Env() }

// Handle registers a handler for method. Must be called before Start.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleDedicated registers a handler served by its own pool of workers,
// isolating long-running calls from the shared pool.
func (s *Server) HandleDedicated(method string, h Handler, workers int) {
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
	s.dedicated[method] = &dedicatedPool{
		work:    sim.NewChan[rdma.Message](s.env, 4096),
		workers: workers,
	}
}

// Start launches the dispatcher and worker entities.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	ep := s.node.Endpoint(EndpointName)
	s.env.Go(func() { // message dispatcher
		for {
			msg, ok := ep.Recv()
			if !ok {
				s.work.Close()
				for _, p := range s.dedicated {
					p.work.Close()
				}
				return
			}
			if p, ok := s.dedicated[peekMethod(msg.Payload)]; ok {
				p.work.Send(msg)
				continue
			}
			s.work.Send(msg)
		}
	})
	for i := 0; i < s.workers; i++ {
		id := s.allocWorkerID()
		s.env.Go(func() { s.pump(s.work, id) })
	}
	for _, p := range s.dedicated {
		p := p
		for i := 0; i < p.workers; i++ {
			id := s.allocWorkerID()
			s.env.Go(func() { s.pump(p.work, id) })
		}
	}
}

func (s *Server) allocWorkerID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextWID++
	return s.nextWID
}

// peekMethod extracts the method name from a request without consuming it.
func peekMethod(payload []byte) string {
	r := &reader{b: payload}
	r.u32() // kind
	m := r.bytes()
	if r.err {
		return ""
	}
	return string(m)
}

func (s *Server) pump(work *sim.Chan[rdma.Message], id int) {
	for {
		msg, ok := work.Recv()
		if !ok {
			return
		}
		s.serve(id, msg)
	}
}

// qpTo returns this worker's QP to the requester node, creating it on first
// use. QPs are thread-local so workers never mix completions (§X-B).
func (s *Server) qpTo(worker, nodeID int) *rdma.QP {
	key := [2]int{worker, nodeID}
	s.mu.Lock()
	defer s.mu.Unlock()
	qp, ok := s.qps[key]
	if !ok {
		qp = s.node.NewQP(s.node.Fabric().Node(nodeID))
		s.qps[key] = qp
	}
	return qp
}

// argBuf returns a per-worker staging buffer for pulled arguments.
func (s *Server) argBuf(worker, size int) *rdma.MemoryRegion {
	s.mu.Lock()
	defer s.mu.Unlock()
	mr := s.argBufs[worker]
	if mr == nil || mr.Size() < size {
		mr = s.node.Register(max(size, 64<<10))
		s.argBufs[worker] = mr
	}
	return mr
}

func (s *Server) serve(workerID int, msg rdma.Message) {
	s.node.CPU.Use(s.costs.RPCHandle)

	r := &reader{b: msg.Payload}
	kind := r.u32()
	method := string(r.bytes())
	replyAddr := rdma.RemoteAddr{Node: int(r.u32()), RKey: r.u32(), Off: int(r.u64())}
	replyLen := int(r.u32())

	var args []byte
	var wakeID uint32
	switch kind {
	case kindInline:
		args = r.bytes()
	case kindRemote:
		argAddr := rdma.RemoteAddr{Node: int(r.u32()), RKey: r.u32(), Off: int(r.u64())}
		argLen := int(r.u32())
		wakeID = r.u32()
		if r.err {
			return
		}
		// Pull the large argument from the requester with an RDMA READ
		// (paper §X-D2), staging it in a pre-registered worker buffer.
		buf := s.argBuf(workerID, argLen)
		qp := s.qpTo(workerID, msg.From)
		if err := qp.ReadSync(buf, 0, argAddr, argLen); err != nil {
			return
		}
		args = buf.Bytes(0, argLen)
	default:
		return
	}
	if r.err {
		return
	}

	s.mu.Lock()
	h := s.handlers[method]
	s.mu.Unlock()

	var result []byte
	var err error
	if h == nil {
		err = fmt.Errorf("rpc: unknown method %q", method)
	} else {
		result, err = h(msg.From, args)
	}

	// Encode the reply: [status][payload]; the general path appends a
	// ready flag as the final byte of the reply buffer.
	reply := make([]byte, 0, len(result)+16)
	if err != nil {
		reply = append(reply, statusErr)
		reply = putBytes(reply, []byte(err.Error()))
	} else {
		reply = append(reply, statusOK)
		reply = putBytes(reply, result)
	}
	if len(reply) > replyLen-1 {
		// Reply would overflow the requester's buffer: report the error
		// in-band instead (it always fits a sane minimum buffer).
		reply = reply[:0]
		reply = append(reply, statusErr)
		reply = putBytes(reply, []byte("rpc: reply buffer too small"))
	}

	qp := s.qpTo(workerID, msg.From)
	lmr := s.node.RegisterBuf(reply) // small, per-reply staging
	defer s.node.Deregister(lmr)
	if kind == kindRemote {
		// Large-argument path: wake the sleeping requester via the
		// immediate value routed by its thread notifier.
		qp.WriteImm(lmr, 0, replyAddr, len(reply), wakeID, 0)
		qp.WaitCQ()
		return
	}
	// General path: write payload, then set the flag byte at the end of
	// the reply buffer; the requester is spin-polling it.
	qp.Write(lmr, 0, replyAddr, len(reply), 0)
	flag := s.node.RegisterBuf([]byte{1})
	defer s.node.Deregister(flag)
	qp.Write(flag, 0, replyAddr.Add(replyLen-1), 1, 1)
	qp.WaitCQ()
	qp.WaitCQ()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
