package rpc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func testbed() (*sim.Env, *rdma.Fabric, *rdma.Node, *rdma.Node) {
	env := sim.NewEnv()
	f := rdma.NewFabric(env, rdma.EDR100())
	cn := f.AddNode("compute", 24)
	mn := f.AddNode("memory", 12)
	return env, f, cn, mn
}

func TestGeneralRPCEcho(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 2)
		srv.Handle("echo", func(from int, args []byte) ([]byte, error) {
			return append([]byte("echo:"), args...), nil
		})
		srv.Start()

		cli := NewClient(cn, mn, nil, 4096)
		got, err := cli.Call("echo", []byte("hello"))
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if string(got) != "echo:hello" {
			t.Fatalf("reply = %q", got)
		}
	})
	env.Wait()
}

func TestRPCSequentialCallsReuseBuffers(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 2)
		srv.Handle("double", func(from int, args []byte) ([]byte, error) {
			return append(args, args...), nil
		})
		srv.Start()
		cli := NewClient(cn, mn, nil, 4096)
		for i := 0; i < 20; i++ {
			in := bytes.Repeat([]byte{byte(i)}, i+1)
			got, err := cli.Call("double", in)
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			if !bytes.Equal(got, append(append([]byte{}, in...), in...)) {
				t.Fatalf("call %d: wrong reply", i)
			}
		}
	})
	env.Wait()
}

func TestRPCUnknownMethod(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Start()
		cli := NewClient(cn, mn, nil, 4096)
		_, err := cli.Call("nope", nil)
		if err == nil || !strings.Contains(err.Error(), "unknown method") {
			t.Fatalf("err = %v, want unknown method", err)
		}
	})
	env.Wait()
}

func TestRPCHandlerError(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("fail", func(from int, args []byte) ([]byte, error) {
			return nil, errTest
		})
		srv.Start()
		cli := NewClient(cn, mn, nil, 4096)
		_, err := cli.Call("fail", nil)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("err = %v, want remote boom", err)
		}
	})
	env.Wait()
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestLargeArgRPCWithImmediateWakeup(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 2)
		srv.Handle("sum", func(from int, args []byte) ([]byte, error) {
			var s int
			for _, b := range args {
				s += int(b)
			}
			return []byte{byte(s), byte(s >> 8), byte(s >> 16)}, nil
		})
		srv.Start()

		notifier := NotifierFor(cn)
		cli := NewClient(cn, mn, notifier, 4096)
		args := bytes.Repeat([]byte{3}, 100_000) // 100KB argument
		got, err := cli.CallLarge("sum", args)
		if err != nil {
			t.Fatalf("CallLarge: %v", err)
		}
		want := 300_000
		if got[0] != byte(want) || got[1] != byte(want>>8) || got[2] != byte(want>>16) {
			t.Fatalf("sum reply = %v", got)
		}
	})
	env.Wait()
}

func TestLargeArgRPCChargesTransferTime(t *testing.T) {
	// The 1MB argument must be pulled over the wire: the call cannot finish
	// faster than the wire time of the argument.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("noop", func(from int, args []byte) ([]byte, error) { return nil, nil })
		srv.Start()
		notifier := NotifierFor(cn)
		cli := NewClient(cn, mn, notifier, 4096)
		args := make([]byte, 1<<20)
		start := env.Now()
		if _, err := cli.CallLarge("noop", args); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Duration(env.Now() - start)
		wire := time.Duration(float64(1<<20) / rdma.EDR100().Bandwidth * 1e9)
		if elapsed < wire {
			t.Fatalf("CallLarge(1MB) took %v, faster than wire time %v", elapsed, wire)
		}
	})
	env.Wait()
}

func TestConcurrentClientsParallelWorkers(t *testing.T) {
	// With 4 workers, 4 concurrent slow calls (1ms of handler CPU on a
	// 12-core node) should overlap rather than serialize.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 4)
		srv.Handle("slow", func(from int, args []byte) ([]byte, error) {
			mn.CPU.Use(time.Millisecond)
			return []byte("ok"), nil
		})
		srv.Start()

		wg := sim.NewWaitGroup(env)
		start := env.Now()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				cli := NewClient(cn, mn, nil, 4096)
				if _, err := cli.Call("slow", nil); err != nil {
					t.Errorf("call: %v", err)
				}
			})
		}
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)
		if elapsed > 2*time.Millisecond {
			t.Fatalf("4 concurrent 1ms calls took %v, want ~1ms (workers must parallelize)", elapsed)
		}
	})
	env.Wait()
}

func TestRPCReplyBypassesDispatcherOnWire(t *testing.T) {
	// A general call's reply arrives via one-sided write: total time should
	// be about one two-sided send + handler + one-sided write, i.e. well
	// under two full two-sided round trips.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		srv := NewServer(mn, sim.DefaultCosts(), 1)
		srv.Handle("ping", func(from int, args []byte) ([]byte, error) { return []byte("pong"), nil })
		srv.Start()
		cli := NewClient(cn, mn, nil, 4096)
		start := env.Now()
		if _, err := cli.Call("ping", nil); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Duration(env.Now() - start)
		p := rdma.EDR100()
		budget := (p.Latency + p.TwoSidedExtra) + sim.DefaultCosts().RPCHandle + 3*p.Latency
		if elapsed > budget {
			t.Fatalf("ping took %v, want <= %v", elapsed, budget)
		}
	})
	env.Wait()
}
