package repl

import (
	"encoding/binary"
	"testing"

	"dlsm/internal/wal"
)

// FuzzDecodeReplicaSlot: slot headers cross the fabric from a possibly
// half-written replica; hostile bytes must decode or error, never panic,
// and the (decode, PickSlotPair) pair must stay total on whatever decodes.
func FuzzDecodeReplicaSlot(f *testing.F) {
	valid := make([]byte, wal.HeaderSize)
	binary.LittleEndian.PutUint32(valid[0:], wal.Magic)
	binary.LittleEndian.PutUint32(valid[4:], wal.Version)
	binary.LittleEndian.PutUint64(valid[8:], 3)  // epoch
	binary.LittleEndian.PutUint64(valid[56:], 9) // tag
	f.Add(valid)
	f.Add(valid[:12])                   // truncated
	f.Add(make([]byte, wal.HeaderSize)) // zero (bad magic)
	f.Add([]byte{})                     // empty
	torn := append([]byte(nil), valid...)
	torn[40] = 0xFF // corrupt CkptCap
	f.Add(torn)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeReplicaSlot(b)
		if err != nil {
			return
		}
		// Whatever decoded must arbitrate without panicking, both ways.
		if p := PickSlotPair(h, h); p != 0 {
			t.Fatalf("identical pair arbitrated to %d, want 0 (primary)", p)
		}
		PickSlotPair(wal.Header{}, h)
		PickSlotPair(h, wal.Header{})
	})
}
