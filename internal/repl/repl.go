// Package repl mirrors every durable artifact of one engine shard — SSTable
// extents with their footers, the WAL ring, the checkpoint slot pair, the
// lease word — onto a second memory node, so a primary-memnode crash loses
// nothing that was acknowledged.
//
// The design follows the FORTH index-replication study (PAPERS.md): backups
// are passive DRAM. No LSM runs on the replica; bytes arrive via one-sided
// RDMA writes and the backup's CPU stays at zero. Two transfer modes are
// modeled for SSTables:
//
//   - IndexOnly: the primary memory node clones the built extent straight to
//     the replica (one `repl_clone` RPC, n bytes on the wire). This is the
//     paper's "send the index" mode.
//   - LogReplay: the compute node reads the extent back from the primary and
//     writes it to the replica (2n bytes on the wire), standing in for a
//     backup that regenerates tables from its log copy — the CPU cost is
//     modeled at the compute node, wire cost as read-back plus write-out.
//
// The WAL ring itself is mirrored inside internal/wal (see
// wal.ReplicaConfig); this package owns the table map, the replica-side
// extent lifecycle, and the slot-pair arbitration used at failover.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/remote"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
	"dlsm/internal/wal"
)

// Mode selects how SSTable bytes reach the replica.
type Mode int

const (
	// IndexOnly ships built extents primary→replica with a chained
	// one-sided write issued by the primary memory node.
	IndexOnly Mode = iota
	// LogReplay models a backup that rebuilds tables from its WAL copy:
	// the compute node reads the extent back and writes it out again.
	LogReplay
)

func (m Mode) String() string {
	if m == LogReplay {
		return "log-replay"
	}
	return "index-only"
}

// AckPolicy selects when a durable write acknowledges.
type AckPolicy int

const (
	// AckPrimary acks once the primary memory node has the bytes; the
	// replica is mirrored best-effort and a replica failure only degrades
	// redundancy. This is the pre-replication behavior when RF=1.
	AckPrimary AckPolicy = iota
	// AckQuorum acks once a majority of copies is durable. With two
	// copies a majority is both of them, so Quorum and All coincide.
	AckQuorum
	// AckAll acks only when every copy is durable.
	AckAll
)

// Sync reports whether the policy requires the replica write to complete
// before acknowledging. With ReplicationFactor=2, Quorum and All both do.
func (p AckPolicy) Sync() bool { return p != AckPrimary }

func (p AckPolicy) String() string {
	switch p {
	case AckQuorum:
		return "quorum"
	case AckAll:
		return "all"
	default:
		return "primary"
	}
}

// ErrDegraded is returned by Attach under a Sync policy when the replica
// copy cannot be made; wrapped errors carry the cause.
var ErrDegraded = errors.New("repl: replica degraded")

// Config wires a Mirror into one engine shard.
type Config struct {
	Compute *rdma.Node      // the shard's compute node
	Primary *memnode.Server // where the authoritative extents live
	Replica *memnode.Server // the backup memory node
	Mode    Mode
	// Sync: a failed replica copy fails the Attach (the caller retries or
	// surrenders). Non-Sync: the mirror degrades silently and OnDegrade
	// fires once.
	Sync bool
	// OnDegrade runs once when a non-Sync mirror gives up on the replica.
	// The engine hooks it to wal.Log.DropMirror so a checkpoint that can
	// no longer translate does not hold WAL truncation hostage.
	OnDegrade func()
	// RPC is the robustness policy for the repl_clone call (IndexOnly).
	RPC rpc.Policy
}

// entry records where one table's replica copy lives.
type entry struct {
	addr   rdma.RemoteAddr
	extent int64
}

// Mirror maintains the replica copies of one shard's SSTables. All methods
// are safe for concurrent use from simulation entities; the internal mutex
// is a sim mutex because it is held across blocking fabric operations.
type Mirror struct {
	cfg   Config
	env   *sim.Env
	alloc *remote.Allocator
	rmr   *rdma.MemoryRegion

	mu      *sim.Mutex
	tables  map[uint64]entry
	down    bool
	closed  bool
	qpP     *rdma.QP    // compute→primary, LogReplay read-back
	qpR     *rdma.QP    // compute→replica, LogReplay write-out
	cli     *rpc.Client // compute→primary, IndexOnly clone requests
	scratch *rdma.MemoryRegion

	// Registered on the fabric registry only when a mirror exists, so an
	// unreplicated deployment's telemetry stays byte-identical to the seed.
	tablesC   *telemetry.Counter // repl.tables: extents attached
	releasedC *telemetry.Counter // repl.released: replica extents freed
	bytesC    *telemetry.Counter // repl.bytes: payload bytes mirrored
	netC      *telemetry.Counter // repl.net_bytes: wire bytes spent mirroring
	cloneC    *telemetry.Counter // repl.clone_rpcs: repl_clone calls issued
	degradedC *telemetry.Counter // repl.degraded: mirrors given up on
}

// NewMirror creates the mirror for one shard. It allocates replica extents
// from the replica's host-shared compute allocator, so copies survive a
// compute-node crash and a later Recover can adopt and eventually free them.
func NewMirror(cfg Config) *Mirror {
	env := cfg.Compute.Fabric().Env()
	tel := cfg.Compute.Fabric().Telemetry()
	return &Mirror{
		cfg:       cfg,
		env:       env,
		alloc:     cfg.Replica.ComputeAlloc(),
		rmr:       cfg.Replica.DataMR(),
		mu:        sim.NewMutex(env),
		tables:    make(map[uint64]entry),
		tablesC:   tel.Counter("repl.tables"),
		releasedC: tel.Counter("repl.released"),
		bytesC:    tel.Counter("repl.bytes"),
		netC:      tel.Counter("repl.net_bytes"),
		cloneC:    tel.Counter("repl.clone_rpcs"),
		degradedC: tel.Counter("repl.degraded"),
	}
}

// Attach mirrors one freshly built table (data + footer) onto the replica.
// It is idempotent by table id. Under Sync a failure is returned and the
// caller owns the primary extent (retry or free); otherwise the mirror
// degrades permanently and Attach reports success with one copy.
func (m *Mirror) Attach(meta *sstable.Meta) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("%w: mirror closed", ErrDegraded)
	}
	if m.down {
		if m.cfg.Sync {
			return ErrDegraded
		}
		return nil
	}
	if _, ok := m.tables[meta.ID]; ok {
		return nil
	}
	n := int(meta.Size) + meta.IndexLen + meta.FilterLen
	off, err := m.alloc.Alloc(int(meta.Extent))
	if err != nil {
		return m.failLocked(fmt.Errorf("replica extent alloc: %w", err))
	}
	dst := m.rmr.Addr(int(off))
	var cerr error
	if m.cfg.Mode == LogReplay {
		cerr = m.copyViaComputeLocked(meta, dst, n)
	} else {
		cerr = m.cloneLocked(meta, dst, n)
	}
	if cerr != nil {
		// Failed dual-write: the replica extent must not leak. The copy
		// never completed, so nothing can reference it — free is safe.
		m.alloc.Free(off, int(meta.Extent))
		return m.failLocked(cerr)
	}
	m.tables[meta.ID] = entry{addr: dst, extent: meta.Extent}
	m.tablesC.Inc()
	m.bytesC.Add(int64(n))
	return nil
}

// cloneLocked asks the primary memory node to write the extent straight to
// the replica (IndexOnly): n bytes cross the wire, no compute CPU.
func (m *Mirror) cloneLocked(meta *sstable.Meta, dst rdma.RemoteAddr, n int) error {
	if m.cli == nil {
		m.cli = rpc.NewClient(m.cfg.Compute, m.cfg.Primary.Node(), nil, 4096)
	}
	var args [32]byte
	binary.LittleEndian.PutUint64(args[0:], uint64(meta.Data.Off))
	binary.LittleEndian.PutUint64(args[8:], uint64(n))
	binary.LittleEndian.PutUint32(args[16:], uint32(dst.Node))
	binary.LittleEndian.PutUint32(args[20:], dst.RKey)
	binary.LittleEndian.PutUint64(args[24:], uint64(dst.Off))
	m.cloneC.Inc()
	if _, err := m.cli.CallPolicy("repl_clone", args[:], m.cfg.RPC); err != nil {
		return fmt.Errorf("repl_clone: %w", err)
	}
	m.netC.Add(int64(n))
	return nil
}

// copyViaComputeLocked reads the extent back from the primary and writes it
// to the replica (LogReplay): 2n bytes cross the wire.
func (m *Mirror) copyViaComputeLocked(meta *sstable.Meta, dst rdma.RemoteAddr, n int) error {
	if m.qpP == nil {
		m.qpP = m.cfg.Compute.NewQP(m.cfg.Primary.Node())
		m.qpR = m.cfg.Compute.NewQP(m.cfg.Replica.Node())
	}
	if m.scratch == nil || m.scratch.Size() < n {
		if m.scratch != nil {
			m.cfg.Compute.Deregister(m.scratch)
		}
		m.scratch = m.cfg.Compute.Register(max(n, 64<<10))
	}
	if err := m.qpP.ReadSync(m.scratch, 0, meta.Data, n); err != nil {
		return fmt.Errorf("read-back: %w", err)
	}
	if err := m.qpR.WriteSync(m.scratch, 0, dst, n); err != nil {
		return fmt.Errorf("write-out: %w", err)
	}
	m.netC.Add(2 * int64(n))
	return nil
}

// failLocked converts a copy failure into the policy's outcome: an error
// under Sync, a permanent one-copy degrade otherwise.
func (m *Mirror) failLocked(err error) error {
	if m.cfg.Sync {
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if !m.down {
		m.down = true
		m.degradedC.Inc()
		if m.cfg.OnDegrade != nil {
			m.cfg.OnDegrade()
		}
	}
	return nil
}

// Release frees the replica copy of a table that became obsolete (or never
// installed). Idempotent: releasing an unknown id is a no-op, so the GC path
// and an abandoned-output path can both call it without double-free.
func (m *Mirror) Release(id uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.tables[id]
	if !ok {
		return
	}
	delete(m.tables, id)
	m.alloc.Free(int64(e.addr.Off), int(e.extent))
	m.releasedC.Inc()
}

// Lookup returns the replica address and extent of a mirrored table.
func (m *Mirror) Lookup(id uint64) (rdma.RemoteAddr, int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.tables[id]
	return e.addr, e.extent, ok
}

// Has reports whether the table's replica copy is tracked.
func (m *Mirror) Has(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.tables[id]
	return ok
}

// Seed adopts existing replica copies, typically decoded from the replica
// checkpoint slot during recovery: each meta's Data/Extent are already
// replica-side, and the matching allocator ranges are live in the replica's
// host-shared compute allocator.
func (m *Mirror) Seed(metas []*sstable.Meta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, meta := range metas {
		if _, ok := m.tables[meta.ID]; ok {
			continue
		}
		m.tables[meta.ID] = entry{addr: meta.Data, extent: meta.Extent}
	}
}

// Down reports whether a non-Sync mirror has degraded to one copy.
func (m *Mirror) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Close releases the mirror's fabric resources. Replica extents are left in
// place: they are the surviving copy a failover recovers from.
func (m *Mirror) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.qpP != nil {
		m.qpP.Close()
		m.qpR.Close()
	}
	if m.cli != nil {
		m.cli.Close()
	}
	if m.scratch != nil {
		m.cfg.Compute.Deregister(m.scratch)
		m.scratch = nil
	}
}

// DecodeReplicaSlot parses the 64-byte header of a replicated WAL slot
// (primary or replica side — both use the same layout). It never panics on
// hostile input; see FuzzDecodeReplicaSlot.
func DecodeReplicaSlot(b []byte) (wal.Header, error) {
	return wal.DecodeHeader(b)
}

// PickSlotPair arbitrates a replicated checkpoint-slot pair after a crash:
// it returns 0 to recover from the primary slot, 1 for the replica slot.
//
// The publish protocol flips the replica header before the primary and
// stamps both with the same publication tag, so the replica's (Epoch, Tag)
// is never behind the primary's. A torn dual-flip therefore leaves the
// replica exactly one tag ahead — the newer, self-consistent side. Ring
// bytes are only truncated after both flips land, so whichever side is
// chosen still holds every record past its own Covered horizon.
func PickSlotPair(primary, replica wal.Header) int {
	if replica.Epoch != primary.Epoch {
		if replica.Epoch > primary.Epoch {
			return 1
		}
		return 0
	}
	if replica.Tag > primary.Tag {
		return 1
	}
	return 0
}
