package repl

import (
	"bytes"
	"errors"
	"testing"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/wal"
)

// testCluster is one compute node plus a primary and a replica memory node
// on a shared fabric, the minimal topology a Mirror spans.
type testCluster struct {
	env     *rdma.Fabric
	cn      *rdma.Node
	primary *memnode.Server
	replica *memnode.Server
}

// withCluster runs fn inside a fresh simulation with both servers started.
func withCluster(t *testing.T, fn func(c testCluster)) {
	t.Helper()
	env := sim.NewEnvSeed(1)
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 8)
	m1 := fab.AddNode("mem1", 8)
	m2 := fab.AddNode("mem2", 8)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 32 << 20
	cfg.SelfRegionSize = 8 << 20
	cfg.LogRegionSize = 4 << 20
	env.Run(func() {
		defer fab.Close()
		p := memnode.NewServer(m1, cfg)
		p.Start()
		r := memnode.NewServer(m2, cfg)
		r.Start()
		fn(testCluster{env: fab, cn: cn, primary: p, replica: r})
	})
	env.Wait()
}

// makeTable allocates an extent on the primary, fills it with a
// deterministic pattern and returns the meta describing it — the shape a
// flush or compaction hands to Mirror.Attach.
func (c testCluster) makeTable(t *testing.T, id uint64, size int) *sstable.Meta {
	t.Helper()
	const indexLen, filterLen = 128, 64
	extent := 1
	for extent < size+indexLen+filterLen {
		extent <<= 1
	}
	off, err := c.primary.ComputeAlloc().Alloc(extent)
	if err != nil {
		t.Fatalf("primary alloc: %v", err)
	}
	n := size + indexLen + filterLen
	mr := c.cn.Register(n)
	defer c.cn.Deregister(mr)
	b := mr.Bytes(0, n)
	for i := range b {
		b[i] = byte(sim.Mix64(id, uint64(i)))
	}
	qp := c.cn.NewQP(c.primary.Node())
	defer qp.Close()
	dst := c.primary.DataMR().Addr(int(off))
	if err := qp.WriteSync(mr, 0, dst, n); err != nil {
		t.Fatalf("seeding primary extent: %v", err)
	}
	return &sstable.Meta{
		ID: id, Size: int64(size), Extent: int64(extent),
		IndexLen: indexLen, FilterLen: filterLen,
		Data: dst, CreatorNode: c.primary.Node().ID,
	}
}

// readRemote reads n bytes at addr from the compute node.
func (c testCluster) readRemote(t *testing.T, host *rdma.Node, addr rdma.RemoteAddr, n int) []byte {
	t.Helper()
	mr := c.cn.Register(n)
	defer c.cn.Deregister(mr)
	qp := c.cn.NewQP(host)
	defer qp.Close()
	if err := qp.ReadSync(mr, 0, addr, n); err != nil {
		t.Fatalf("reading back replica extent: %v", err)
	}
	return append([]byte(nil), mr.Bytes(0, n)...)
}

// testAttach runs the byte-fidelity and idempotence checks in one transfer
// mode and returns the replication wire bytes it spent.
func testAttach(t *testing.T, mode Mode) int64 {
	var net int64
	withCluster(t, func(c testCluster) {
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica, Mode: mode, Sync: true})
		defer m.Close()
		meta := c.makeTable(t, 42, 4096)
		if err := m.Attach(meta); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		addr, extent, ok := m.Lookup(meta.ID)
		if !ok || extent != meta.Extent {
			t.Fatalf("Lookup(%d) = (%v, %d, %v), want tracked extent %d", meta.ID, addr, extent, ok, meta.Extent)
		}
		if addr.Node != c.replica.Node().ID {
			t.Fatalf("replica copy on node %d, want %d", addr.Node, c.replica.Node().ID)
		}
		n := int(meta.Size) + meta.IndexLen + meta.FilterLen
		want := c.readRemote(t, c.primary.Node(), meta.Data, n)
		got := c.readRemote(t, c.replica.Node(), addr, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: replica bytes differ from primary", mode)
		}
		net = c.env.Telemetry().Counter("repl.net_bytes").Load()
		// Re-attaching the same id is a no-op: same address, no extra bytes.
		if err := m.Attach(meta); err != nil {
			t.Fatalf("re-Attach: %v", err)
		}
		if again := c.env.Telemetry().Counter("repl.net_bytes").Load(); again != net {
			t.Fatalf("idempotent re-Attach moved %d extra bytes", again-net)
		}
		addr2, _, _ := m.Lookup(meta.ID)
		if addr2 != addr {
			t.Fatalf("re-Attach relocated the copy: %v -> %v", addr, addr2)
		}
	})
	return net
}

// TestAttachModes verifies both FORTH transfer modes produce byte-identical
// replica copies, and that index-only spends strictly fewer wire bytes than
// log-replay for the same table (n vs 2n).
func TestAttachModes(t *testing.T) {
	idx := testAttach(t, IndexOnly)
	rep := testAttach(t, LogReplay)
	if idx <= 0 || rep <= 0 {
		t.Fatalf("net bytes not recorded: index-only %d, log-replay %d", idx, rep)
	}
	if idx >= rep {
		t.Fatalf("index-only used %d wire bytes, log-replay %d; index-only must be strictly cheaper", idx, rep)
	}
	if rep != 2*idx {
		t.Fatalf("log-replay = %d bytes, want exactly 2x index-only (%d)", rep, 2*idx)
	}
}

// TestReleaseIdempotent: Release frees the replica extent exactly once, and
// releasing an unknown id (the abandoned-output path racing GC) is a no-op.
func TestReleaseIdempotent(t *testing.T) {
	withCluster(t, func(c testCluster) {
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica, Sync: true})
		defer m.Close()
		meta := c.makeTable(t, 7, 2048)
		if err := m.Attach(meta); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		used := c.replica.ComputeAlloc().Used()
		m.Release(meta.ID)
		if got := c.replica.ComputeAlloc().Used(); got != used-meta.Extent {
			t.Fatalf("replica allocator used %d after Release, want %d", got, used-meta.Extent)
		}
		if m.Has(meta.ID) {
			t.Fatal("released table still tracked")
		}
		m.Release(meta.ID) // double release must not free anything else
		m.Release(999)     // unknown id is a no-op
		if got := c.replica.ComputeAlloc().Used(); got != used-meta.Extent {
			t.Fatal("idempotent Release changed the allocator")
		}
	})
}

// TestSeedAdoptsExistingCopies: Seed (the recovery path) tracks replica-side
// metas without moving bytes, and Attach after Seed is a no-op for them.
func TestSeedAdoptsExistingCopies(t *testing.T) {
	withCluster(t, func(c testCluster) {
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica, Sync: true})
		defer m.Close()
		off, err := c.replica.ComputeAlloc().Alloc(4096)
		if err != nil {
			t.Fatalf("replica alloc: %v", err)
		}
		adopted := &sstable.Meta{ID: 11, Size: 3000, Extent: 4096, IndexLen: 100, FilterLen: 50,
			Data: c.replica.DataMR().Addr(int(off))}
		m.Seed([]*sstable.Meta{adopted})
		if !m.Has(11) {
			t.Fatal("seeded table not tracked")
		}
		if n := c.env.Telemetry().Counter("repl.net_bytes").Load(); n != 0 {
			t.Fatalf("Seed moved %d bytes; adoption must be free", n)
		}
		addr, extent, _ := m.Lookup(11)
		if addr != adopted.Data || extent != 4096 {
			t.Fatalf("Lookup after Seed = (%v, %d)", addr, extent)
		}
	})
}

// TestDegradeBestEffort: with a non-Sync policy a dead replica degrades the
// mirror silently — Attach keeps succeeding with one copy, OnDegrade fires
// exactly once, and no replica extent leaks.
func TestDegradeBestEffort(t *testing.T) {
	withCluster(t, func(c testCluster) {
		degraded := 0
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica,
			Mode: LogReplay, Sync: false, OnDegrade: func() { degraded++ }})
		defer m.Close()
		used := c.replica.ComputeAlloc().Used()
		c.replica.Node().Crash()
		for id := uint64(1); id <= 3; id++ {
			if err := m.Attach(c.makeTable(t, id, 1024)); err != nil {
				t.Fatalf("best-effort Attach %d: %v", id, err)
			}
		}
		if !m.Down() {
			t.Fatal("mirror not marked down after replica crash")
		}
		if degraded != 1 {
			t.Fatalf("OnDegrade fired %d times, want 1", degraded)
		}
		if got := c.replica.ComputeAlloc().Used(); got != used {
			t.Fatalf("failed attaches leaked %d replica bytes", got-used)
		}
	})
}

// TestSyncFailureReturnsErrDegraded: under quorum ack a dead replica fails
// the Attach with ErrDegraded so the caller can retry or surrender, and the
// speculatively allocated replica extent is returned.
func TestSyncFailureReturnsErrDegraded(t *testing.T) {
	withCluster(t, func(c testCluster) {
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica,
			Mode: LogReplay, Sync: true})
		defer m.Close()
		used := c.replica.ComputeAlloc().Used()
		c.replica.Node().Crash()
		err := m.Attach(c.makeTable(t, 5, 1024))
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("Attach on dead replica = %v, want ErrDegraded", err)
		}
		if got := c.replica.ComputeAlloc().Used(); got != used {
			t.Fatalf("failed sync attach leaked %d replica bytes", got-used)
		}
	})
}

// TestCloneRPCCounted: index-only transfers go through the primary's
// repl_clone handler, one RPC per extent.
func TestCloneRPCCounted(t *testing.T) {
	withCluster(t, func(c testCluster) {
		m := NewMirror(Config{Compute: c.cn, Primary: c.primary, Replica: c.replica,
			Mode: IndexOnly, Sync: true, RPC: rpc.Policy{MaxAttempts: 2}})
		defer m.Close()
		for id := uint64(1); id <= 4; id++ {
			if err := m.Attach(c.makeTable(t, id, 1024)); err != nil {
				t.Fatalf("Attach %d: %v", id, err)
			}
		}
		if n := c.env.Telemetry().Counter("repl.clone_rpcs").Load(); n != 4 {
			t.Fatalf("repl.clone_rpcs = %d, want 4", n)
		}
	})
}

// TestPickSlotPair covers the torn-dual-flip arbitration table: the replica
// header flips first, so it is preferred exactly when its (Epoch, Tag) is
// ahead.
func TestPickSlotPair(t *testing.T) {
	h := func(epoch, tag uint64) wal.Header { return wal.Header{Epoch: epoch, Tag: tag} }
	cases := []struct {
		name             string
		primary, replica wal.Header
		want             int
	}{
		{"in sync", h(3, 7), h(3, 7), 0},
		{"torn publish: replica one tag ahead", h(3, 7), h(3, 8), 1},
		{"stale replica tag never wins", h(3, 7), h(3, 6), 0},
		{"replica epoch ahead", h(3, 9), h(4, 1), 1},
		{"primary epoch ahead", h(5, 0), h(4, 99), 0},
		{"fresh pair", h(1, 0), h(1, 0), 0},
	}
	for _, tc := range cases {
		if got := PickSlotPair(tc.primary, tc.replica); got != tc.want {
			t.Errorf("%s: PickSlotPair = %d, want %d", tc.name, got, tc.want)
		}
	}
}
