package version

import (
	"fmt"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// mkFile builds a fake table covering [lo, hi] user keys.
func mkFile(id uint64, lo, hi string, size int64, maxSeq uint64) *File {
	return NewFile(&sstable.Meta{
		ID:       id,
		Size:     size,
		Smallest: keys.Append(nil, []byte(lo), keys.MaxSeq, keys.KindSet),
		Largest:  keys.Append(nil, []byte(hi), 0, keys.KindSet),
		MaxSeq:   maxSeq,
	})
}

func TestApplyAddsAndRemoves(t *testing.T) {
	vs := New(nil)
	f1 := mkFile(1, "a", "m", 100, 10)
	f2 := mkFile(2, "n", "z", 100, 20)

	e := NewEdit()
	e.Add(0, f1)
	e.Add(0, f2)
	vs.Apply(e)

	v := vs.Current()
	if v.L0Count() != 2 || v.NumFiles() != 2 {
		t.Fatalf("L0 = %d files, want 2", v.L0Count())
	}
	v.Unref()

	e2 := NewEdit()
	e2.Delete(f1)
	e2.Add(1, mkFile(3, "a", "m", 100, 10))
	vs.Apply(e2)
	v = vs.Current()
	if v.L0Count() != 1 || len(v.Levels[1]) != 1 {
		t.Fatalf("after edit: L0=%d L1=%d", v.L0Count(), len(v.Levels[1]))
	}
	v.Unref()
}

func TestL0OrderedNewestFirst(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	e.Add(0, mkFile(1, "a", "z", 10, 5))
	e.Add(0, mkFile(2, "a", "z", 10, 50))
	e.Add(0, mkFile(3, "a", "z", 10, 20))
	vs.Apply(e)
	v := vs.Current()
	defer v.Unref()
	got := []uint64{v.Levels[0][0].MaxSeq, v.Levels[0][1].MaxSeq, v.Levels[0][2].MaxSeq}
	if got[0] != 50 || got[1] != 20 || got[2] != 5 {
		t.Fatalf("L0 order = %v, want [50 20 5]", got)
	}
}

func TestLevelSortedByKey(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	e.Add(1, mkFile(1, "m", "r", 10, 1))
	e.Add(1, mkFile(2, "a", "f", 10, 1))
	e.Add(1, mkFile(3, "s", "z", 10, 1))
	vs.Apply(e)
	v := vs.Current()
	defer v.Unref()
	if string(keys.UserKey(v.Levels[1][0].Smallest)) != "a" {
		t.Fatal("level 1 not key sorted")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObsoleteFiredWhenUnreachable(t *testing.T) {
	var obsolete []uint64
	vs := New(func(m *sstable.Meta) { obsolete = append(obsolete, m.ID) })

	f := mkFile(1, "a", "z", 10, 1)
	e := NewEdit()
	e.Add(0, f)
	vs.Apply(e)
	f.refs.Add(-1) // drop creator's reference; version still holds one

	// A reader pins the current version, then the file is compacted away.
	reader := vs.Current()

	e2 := NewEdit()
	e2.Delete(f)
	vs.Apply(e2)
	if len(obsolete) != 0 {
		t.Fatal("file reclaimed while a reader still pins it")
	}
	reader.Unref()
	if len(obsolete) != 1 || obsolete[0] != 1 {
		t.Fatalf("obsolete = %v, want [1]", obsolete)
	}
}

func TestOverlapping(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	e.Add(1, mkFile(1, "a", "f", 10, 1))
	e.Add(1, mkFile(2, "g", "m", 10, 1))
	e.Add(1, mkFile(3, "n", "z", 10, 1))
	vs.Apply(e)
	v := vs.Current()
	defer v.Unref()
	got := v.Overlapping(1, []byte("h"), []byte("p"))
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		ids := []uint64{}
		for _, f := range got {
			ids = append(ids, f.ID)
		}
		t.Fatalf("Overlapping = %v, want [2 3]", ids)
	}
}

func pp() PickParams { return PickParams{L0Trigger: 4, L1MaxBytes: 1000, Multiplier: 10} }

func TestPickL0WhenTriggered(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	for i := 0; i < 4; i++ {
		e.Add(0, mkFile(uint64(i+1), "a", "z", 10, uint64(i+1)))
	}
	e.Add(1, mkFile(10, "c", "h", 10, 0))
	vs.Apply(e)

	c := vs.PickCompaction(pp())
	if c == nil || c.Level != 0 {
		t.Fatalf("pick = %+v, want L0 compaction", c)
	}
	if len(c.Inputs[0]) != 4 {
		t.Fatalf("L0 inputs = %d, want all 4", len(c.Inputs[0]))
	}
	if len(c.Inputs[1]) != 1 {
		t.Fatalf("L1 inputs = %d, want 1 overlapping", len(c.Inputs[1]))
	}
	if !c.DropTombstones {
		t.Fatal("deepest-level output should drop tombstones")
	}
	// A second pick must not steal the same files.
	if c2 := vs.PickCompaction(pp()); c2 != nil {
		t.Fatalf("second pick got %+v while first in flight", c2)
	}
	vs.Release(c)
	if c3 := vs.PickCompaction(pp()); c3 == nil {
		t.Fatal("after release, compaction should be pickable again")
	}
}

func TestPickBelowTriggerNone(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	e.Add(0, mkFile(1, "a", "z", 10, 1))
	vs.Apply(e)
	if c := vs.PickCompaction(pp()); c != nil {
		t.Fatalf("picked %+v below trigger", c)
	}
}

func TestPickSizeTriggeredLevel(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	// L1 over budget (1500 > 1000), L2 has an overlapping and a
	// non-overlapping file.
	e.Add(1, mkFile(1, "a", "f", 800, 1))
	e.Add(1, mkFile(2, "g", "m", 700, 1))
	e.Add(2, mkFile(3, "a", "c", 10, 1))
	e.Add(2, mkFile(4, "p", "z", 10, 1))
	vs.Apply(e)

	c := vs.PickCompaction(pp())
	if c == nil || c.Level != 1 {
		t.Fatalf("pick = %+v, want L1 compaction", c)
	}
	if len(c.Inputs[0]) != 1 {
		t.Fatalf("inputs[0] = %d files, want 1", len(c.Inputs[0]))
	}
	if !c.DropTombstones {
		t.Fatal("output level 2 is the deepest populated level; tombstones should drop")
	}
	vs.Release(c)
}

func TestTombstoneDropOnlyAtBottom(t *testing.T) {
	vs := New(nil)
	e := NewEdit()
	for i := 0; i < 4; i++ {
		e.Add(0, mkFile(uint64(i+1), "a", "z", 10, uint64(i+1)))
	}
	e.Add(2, mkFile(10, "a", "z", 10, 0)) // data below the L0->L1 output
	vs.Apply(e)
	c := vs.PickCompaction(pp())
	if c == nil {
		t.Fatal("no compaction picked")
	}
	if c.DropTombstones {
		t.Fatal("tombstones must be kept when deeper levels hold data")
	}
	vs.Release(c)
}

func TestFileIDsMonotonic(t *testing.T) {
	vs := New(nil)
	a, b := vs.NextFileID(), vs.NextFileID()
	if b <= a {
		t.Fatalf("ids not monotonic: %d then %d", a, b)
	}
}

func TestManyVersionsRefcountStress(t *testing.T) {
	freed := map[uint64]bool{}
	vs := New(func(m *sstable.Meta) {
		if freed[m.ID] {
			panic(fmt.Sprintf("double obsolete for %d", m.ID))
		}
		freed[m.ID] = true
	})
	var live []*File
	for i := 0; i < 100; i++ {
		f := mkFile(uint64(i+1), fmt.Sprintf("k%03d", i), fmt.Sprintf("k%03d", i), 10, uint64(i))
		e := NewEdit()
		e.Add(1, f)
		if len(live) > 5 {
			e.Delete(live[0])
			live = live[1:]
		}
		vs.Apply(e)
		f.refs.Add(-1) // creator reference dropped after apply
		live = append(live, f)
	}
	if len(freed) != 100-len(live) {
		t.Fatalf("freed %d files, want %d", len(freed), 100-len(live))
	}
	for _, f := range live {
		if freed[f.ID] {
			t.Fatalf("live file %d was freed", f.ID)
		}
	}
}
