package version

import (
	"bytes"

	"dlsm/internal/keys"
)

// Compaction describes one picked compaction: all Inputs[0] files at Level
// merge with the overlapping Inputs[1] files at Level+1.
type Compaction struct {
	Level  int
	Inputs [2][]*File
	// DropTombstones is set when the output level is the deepest populated
	// level, so deletes and shadowed versions can be discarded outright.
	DropTombstones bool
}

// Files returns all input files across both levels.
func (c *Compaction) Files() []*File {
	out := make([]*File, 0, len(c.Inputs[0])+len(c.Inputs[1]))
	out = append(out, c.Inputs[0]...)
	return append(out, c.Inputs[1]...)
}

// InputBytes returns the total data size of all inputs.
func (c *Compaction) InputBytes() int64 {
	var n int64
	for _, f := range c.Files() {
		n += f.Size
	}
	return n
}

// PickParams tunes compaction selection.
type PickParams struct {
	L0Trigger  int   // files in L0 that trigger an L0->L1 compaction
	L1MaxBytes int64 // size budget of L1
	Multiplier int64 // per-level size growth factor
}

// maxBytesForLevel returns the size budget of a level >= 1.
func (p PickParams) maxBytesForLevel(level int) int64 {
	max := p.L1MaxBytes
	for l := 1; l < level; l++ {
		max *= p.Multiplier
	}
	return max
}

// PickCompaction selects the most urgent compaction of the current version,
// or nil if nothing needs compacting. Picked files are marked busy so
// concurrent workers never double-compact; the caller must call Release
// when the compaction completes or aborts. Callers draw extra references
// on the returned files via the compaction token.
func (vs *VersionSet) PickCompaction(p PickParams) *Compaction {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v := vs.current

	bestLevel, bestScore := -1, 1.0
	if score := float64(len(v.Levels[0])) / float64(p.L0Trigger); score >= bestScore && !anyCompacting(v.Levels[0]) {
		bestLevel, bestScore = 0, score
	}
	for level := 1; level < NumLevels-1; level++ {
		var size int64
		for _, f := range v.Levels[level] {
			size += f.Size
		}
		if score := float64(size) / float64(p.maxBytesForLevel(level)); score >= bestScore {
			// Only a level with an idle candidate file can be picked.
			if pickLevelFile(v.Levels[level], vs.compactPtr[level]) != nil {
				bestLevel, bestScore = level, score
			}
		}
	}
	if bestLevel < 0 {
		return nil
	}

	c := &Compaction{Level: bestLevel}
	if bestLevel == 0 {
		// L0 files overlap each other, so every L0 compaction takes them
		// all (the paper parallelizes *within* the job via subcompaction).
		c.Inputs[0] = append([]*File(nil), v.Levels[0]...)
	} else {
		f := pickLevelFile(v.Levels[bestLevel], vs.compactPtr[bestLevel])
		c.Inputs[0] = []*File{f}
		vs.compactPtr[bestLevel] = append([]byte(nil), f.Largest...)
	}

	lo, hi := keyRangeUser(c.Inputs[0])
	for _, f := range v.Levels[bestLevel+1] {
		if f.Overlaps(bytes.Compare, lo, hi) {
			if f.compacting {
				return nil // conflicting in-flight compaction; retry later
			}
			c.Inputs[1] = append(c.Inputs[1], f)
		}
	}

	// Deletes can be dropped when nothing below the output level can hold
	// an older version of the keys.
	c.DropTombstones = true
	for level := bestLevel + 2; level < NumLevels; level++ {
		if len(v.Levels[level]) > 0 {
			c.DropTombstones = false
			break
		}
	}

	for _, f := range c.Files() {
		f.compacting = true
		f.ref() // the compaction holds the inputs alive while it runs
	}
	return c
}

// Release marks the compaction's inputs idle again and drops the references
// PickCompaction took. Call exactly once per picked compaction.
func (vs *VersionSet) Release(c *Compaction) {
	vs.mu.Lock()
	for _, f := range c.Files() {
		f.compacting = false
	}
	vs.mu.Unlock()
	for _, f := range c.Files() {
		vs.unrefFile(f)
	}
}

func anyCompacting(files []*File) bool {
	for _, f := range files {
		if f.compacting {
			return true
		}
	}
	return false
}

// pickLevelFile returns the first idle file after the round-robin cursor,
// wrapping to the level start.
func pickLevelFile(files []*File, after []byte) *File {
	var wrapped *File
	for _, f := range files {
		if f.compacting {
			continue
		}
		if wrapped == nil {
			wrapped = f
		}
		if after == nil || keys.Compare(f.Largest, after) > 0 {
			return f
		}
	}
	return wrapped
}

// keyRangeUser returns the user-key span covered by files.
func keyRangeUser(files []*File) (lo, hi []byte) {
	for _, f := range files {
		fLo := f.Smallest[:len(f.Smallest)-keys.TrailerLen]
		fHi := f.Largest[:len(f.Largest)-keys.TrailerLen]
		if lo == nil || bytes.Compare(fLo, lo) < 0 {
			lo = fLo
		}
		if hi == nil || bytes.Compare(fHi, hi) > 0 {
			hi = fHi
		}
	}
	return lo, hi
}
