// Package version maintains the LSM-tree metadata that dLSM keeps on the
// compute node (§V-A): which SSTables exist, at which levels, over which
// key ranges. Mutations are copy-on-write (§III): applying an edit builds a
// new immutable Version, so readers pin a consistent snapshot of the tree
// for free, and garbage collection falls out of reference counting — a
// table is reclaimable exactly when the last Version (and reader) that
// could see it is gone (§V-B).
package version

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// NumLevels is the number of LSM levels.
const NumLevels = 7

// File is a ref-counted SSTable reference. The count tracks how many
// Versions (and in-flight compactions) can reach the table.
type File struct {
	*sstable.Meta
	refs       atomic.Int32
	compacting bool // guarded by VersionSet.mu
}

// NewFile wraps a table meta with an initial reference owned by the caller.
func NewFile(m *sstable.Meta) *File {
	f := &File{Meta: m}
	f.refs.Store(1)
	return f
}

func (f *File) ref() { f.refs.Add(1) }

// Version is an immutable snapshot of the tree shape. Level 0 is ordered
// newest-first (by MaxSeq); levels >= 1 are key-ordered and non-overlapping.
type Version struct {
	vs     *VersionSet
	refs   atomic.Int32
	Levels [NumLevels][]*File
}

// Ref pins the version (and transitively every file in it).
func (v *Version) Ref() { v.refs.Add(1) }

// Unref releases the pin; at zero every file loses one reference and
// fully-unreferenced files are reported obsolete.
func (v *Version) Unref() {
	if n := v.refs.Add(-1); n == 0 {
		for _, level := range v.Levels {
			for _, f := range level {
				v.vs.unrefFile(f)
			}
		}
	} else if n < 0 {
		panic("version: negative refcount")
	}
}

// NumFiles returns the total table count.
func (v *Version) NumFiles() int {
	n := 0
	for _, l := range v.Levels {
		n += len(l)
	}
	return n
}

// SizeBytes returns the total data bytes across all tables.
func (v *Version) SizeBytes() int64 {
	var n int64
	for _, l := range v.Levels {
		for _, f := range l {
			n += f.Size
		}
	}
	return n
}

// L0Count returns the number of level-0 tables (write-stall input).
func (v *Version) L0Count() int { return len(v.Levels[0]) }

// Overlapping returns the files in level whose user-key range intersects
// [lo, hi] (nil = unbounded).
func (v *Version) Overlapping(level int, lo, hi []byte) []*File {
	var out []*File
	for _, f := range v.Levels[level] {
		if f.Overlaps(bytes.Compare, lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

// Edit describes one metadata mutation: tables added per level and tables
// removed. Flushes add to L0; compactions remove inputs and add outputs.
type Edit struct {
	Added   map[int][]*File
	Deleted []*File
}

// NewEdit returns an empty edit.
func NewEdit() *Edit { return &Edit{Added: map[int][]*File{}} }

// Add records a new table at level.
func (e *Edit) Add(level int, f *File) { e.Added[level] = append(e.Added[level], f) }

// Delete records table removal.
func (e *Edit) Delete(f *File) { e.Deleted = append(e.Deleted, f) }

// VersionSet owns the current Version and applies edits under a mutex —
// per the paper, metadata changes are infrequent (≈every 20ms) so a single
// lock suffices (§V-A).
type VersionSet struct {
	mu         sync.Mutex
	current    *Version
	nextID     atomic.Uint64
	onObsolete func(*sstable.Meta)
	compactPtr [NumLevels][]byte // round-robin pick cursor per level
}

// New creates a VersionSet with an empty tree. onObsolete is called (from
// arbitrary goroutines, possibly under the set's mutex) when a table
// becomes unreachable; implementations must only enqueue work.
func New(onObsolete func(*sstable.Meta)) *VersionSet {
	vs := &VersionSet{onObsolete: onObsolete}
	vs.nextID.Store(1)
	v := &Version{vs: vs}
	v.refs.Store(1) // the set's own reference to current
	vs.current = v
	return vs
}

// NextFileID allocates a table id.
func (vs *VersionSet) NextFileID() uint64 { return vs.nextID.Add(1) }

// Current returns the current version with a reference held for the caller.
func (vs *VersionSet) Current() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.current.Ref()
	return vs.current
}

func (vs *VersionSet) unrefFile(f *File) {
	if n := f.refs.Add(-1); n == 0 {
		if vs.onObsolete != nil {
			vs.onObsolete(f.Meta)
		}
	} else if n < 0 {
		panic("version: negative file refcount")
	}
}

// Apply installs edit as the new current version (copy-on-write).
func (vs *VersionSet) Apply(edit *Edit) {
	vs.mu.Lock()
	defer vs.mu.Unlock()

	deleted := make(map[*File]bool, len(edit.Deleted))
	for _, f := range edit.Deleted {
		deleted[f] = true
	}
	next := &Version{vs: vs}
	next.refs.Store(1) // the set's reference
	for level := range vs.current.Levels {
		for _, f := range vs.current.Levels[level] {
			if !deleted[f] {
				next.Levels[level] = append(next.Levels[level], f)
			}
		}
		for _, f := range edit.Added[level] {
			next.Levels[level] = append(next.Levels[level], f)
		}
		if len(edit.Added[level]) > 0 {
			sortLevel(level, next.Levels[level])
		}
	}
	// New version references everything it contains.
	for _, level := range next.Levels {
		for _, f := range level {
			f.ref()
		}
	}
	old := vs.current
	vs.current = next
	old.Unref() // drop the set's reference to the old version
}

func sortLevel(level int, files []*File) {
	if level == 0 {
		// Newest first: point reads stop at the first visible version.
		sort.Slice(files, func(i, j int) bool { return files[i].MaxSeq > files[j].MaxSeq })
		return
	}
	sort.Slice(files, func(i, j int) bool {
		return keys.Compare(files[i].Smallest, files[j].Smallest) < 0
	})
}

// CheckInvariants validates level ordering and overlap rules; used by tests
// and enabled checks.
func (v *Version) CheckInvariants() error {
	for i := 1; i < NumLevels; i++ {
		files := v.Levels[i]
		for j := 1; j < len(files); j++ {
			if keys.Compare(files[j-1].Largest, files[j].Smallest) >= 0 {
				return fmt.Errorf("level %d: files %d and %d overlap (%q .. %q)",
					i, j-1, j, files[j-1].Largest, files[j].Smallest)
			}
		}
	}
	return nil
}

// UnrefFile drops one caller-held reference on f (e.g. the creator's
// reference after the file has been installed into a version).
func (vs *VersionSet) UnrefFile(f *File) { vs.unrefFile(f) }
