package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrTooLarge is returned when a single entry cannot fit one log record
// (bounded by the staging buffer and a quarter of the ring).
var ErrTooLarge = errors.New("wal: entry too large for log record")

// ErrFenced is returned once the log's ownership fence fails: another
// compute node took over the shard's write lease (internal/lease), so this
// log must never acknowledge another write. The log is permanently broken;
// every pending and future append resolves to this error.
var ErrFenced = errors.New("wal: fenced by lease takeover")

// Metrics is the optional instrumentation bundle; all fields are nil-safe.
type Metrics struct {
	Appends      *telemetry.Counter   // records staged
	AppendBytes  *telemetry.Counter   // framed record bytes staged
	Doorbells    *telemetry.Counter   // RDMA writes posted for record data
	GroupRecords *telemetry.Histogram // records coalesced per commit group
	Truncations  *telemetry.Counter   // checkpoint refreshes published
	CkptSkips    *telemetry.Counter   // refreshes dropped (blob > slot cap)
	RingStalls   *telemetry.Counter   // commit-loop waits for ring space
	Replayed     *telemetry.Counter   // entries re-applied by recovery
}

// Config wires a Log to its environment.
type Config struct {
	Env     *sim.Env
	Compute *rdma.Node // the appending compute node
	Host    *rdma.Node // the memory node owning the slot

	Slot     rdma.RemoteAddr // slot base (from memnode.OpenLog)
	SlotSize int64

	// PerWrite disables group commit: one doorbell per record, for the
	// durability-sweep ablation.
	PerWrite bool
	// MaxStage bounds the local staging buffer — and therefore the bytes
	// coalesced into one commit group. 0 means 1 MiB.
	MaxStage int

	// Refresh builds a checkpoint blob plus the covered horizon: every
	// sequence number <= covered is captured by the blob's tables. The
	// trimmer calls it outside the log mutex.
	Refresh func() (blob []byte, covered uint64)
	// Kick asks the engine to push unflushed data toward a checkpoint
	// (force a memtable switch); called when appends stall on ring space.
	Kick func()
	// Charge accounts serialization/copy CPU to the compute node.
	Charge func(bytes int)

	// Fence/FenceWord wire the shard's ownership lease (internal/lease)
	// into the commit path: when FenceWord is nonzero, every commit group
	// is acknowledged — and every checkpoint refresh published — only
	// after a one-sided CAS verifies the remote word at Fence still holds
	// FenceWord. A takeover changes the word atomically, so a deposed
	// owner's in-flight appends land in the ring but never acknowledge
	// (ErrFenced), and the new owner's post-takeover slot read observes
	// every write the old owner ever acknowledged. Zero FenceWord — the
	// default — skips the check entirely (single-owner layout).
	Fence     rdma.RemoteAddr
	FenceWord uint64

	// Replica mirrors the whole slot — ring records, checkpoint blobs and
	// header flips — onto a second memory node with chained one-sided
	// writes, so the slot survives the primary memory node dying
	// (internal/repl). Nil disables mirroring; the log then behaves (and
	// its slot image stays) byte-identical to the unreplicated layout.
	Replica *ReplicaConfig

	Metrics Metrics
}

// ReplicaConfig describes the mirror slot on the backup memory node. It
// must have the same size as the primary slot: the two then share one
// geometry, so ring offsets and checkpoint-slot offsets carry over
// unchanged and every mirror write is a plain re-post of the primary one.
type ReplicaConfig struct {
	Host *rdma.Node      // the backup memory node
	Slot rdma.RemoteAddr // mirror slot base (from memnode.OpenLog)

	// Sync couples the replica to the ack path (the Quorum/All policies):
	// a mirror failure breaks the log before any unmirrored record can be
	// acknowledged, so an acked write is always on both copies. False (the
	// Primary policy) degrades instead — mirroring stops, acknowledgements
	// continue against the primary copy alone.
	Sync bool

	// Translate rewrites a checkpoint blob's table addresses into their
	// replica-side locations before the blob is published on the mirror
	// slot (the engine maps each table to its mirrored extent). ok=false
	// skips the refresh entirely — a named table is not mirrored yet, and
	// publishing a half-translated checkpoint would be worse than keeping
	// the previous one. Nil publishes the blob unchanged.
	Translate func(blob []byte) ([]byte, bool)

	// Bytes counts mirrored bytes; Degraded counts permanent mirror
	// aborts (non-Sync only). Both nil-safe.
	Bytes    *telemetry.Counter
	Degraded *telemetry.Counter

	// TornHook, when set, runs between the replica header flip and the
	// primary header flip of every checkpoint publish — the torn-dual-flip
	// window the replication tests aim a seeded crash at.
	TornHook func()
}

// Token identifies a staged append; Commit waits on it.
type Token struct{ lsn uint64 }

// stagedRec is one framed record awaiting the commit loop.
type stagedRec struct {
	lsn    uint64
	loSeq  uint64
	maxSeq uint64
	buf    []byte // len | body | crc
}

// liveRec is one record resident in the ring, FIFO by LSN.
type liveRec struct {
	lsn       uint64
	off       int // ring offset
	size      int
	padBefore int // pad bytes consumed at the ring tail edge before it
	loSeq     uint64
	maxSeq    uint64
}

// segment is a contiguous run of ring bytes one doorbell write covers.
type segment struct {
	ringOff int
	data    []byte
}

// Log is one shard's remote write-ahead log.
type Log struct {
	cfg      Config
	env      *sim.Env
	ckptCap  int
	ringBase int
	ringSize int
	maxStage int

	qp      *rdma.QP // commit loop's queue pair
	trimQP  *rdma.QP // trimmer's queue pair (separate completion stream)
	staging *rdma.MemoryRegion

	// Replica queue pairs, nil unless Config.Replica is set: the commit
	// loop chains each group's doorbell onto replQP after the primary
	// completions; the trimmer mirrors checkpoints over replTrimQP.
	replQP     *rdma.QP
	replTrimQP *rdma.QP

	mu         *sim.Mutex
	appendCond *sim.Cond // commit loop <- staged work
	ackCond    *sim.Cond // writers <- durability advanced
	spaceCond  *sim.Cond // commit loop <- ring space freed
	trimCond   *sim.Cond // trimmer <- refresh requested
	trimMu     *sim.Mutex

	epoch      uint64
	nextLSN    uint64
	durableLSN uint64
	pending    []stagedRec
	live       []liveRec
	head, tail int // ring offsets
	used       int // ring bytes occupied (records + padding)

	durableCovered uint64 // covered horizon of the last published header
	ckptSlot       uint32 // active checkpoint slot of the last header
	pubSeq         uint64 // header Tag of the last published pair (replicated slots)

	holdTrunc   int // >0: ring truncation paused (see HoldTruncation)
	refreshReq  bool
	recovering  bool
	closed      bool
	broken      bool
	brokenErr   error
	replicaDown bool // non-Sync mirror failed permanently; primary-only from here

	wg *sim.WaitGroup
}

const (
	walMaxAttempts = 8
	walRetryBase   = 200 * time.Microsecond
	walRetryMax    = 10 * time.Millisecond
)

// Open initializes (or, with recovering=true, attaches to) the log slot
// and starts the commit and trim entities.
//
// A fresh Open stamps a new header with a bumped epoch, logically
// emptying the slot: stale ring bytes from a previous life can never
// parse as live records. A recovering Open leaves the remote slot
// untouched and starts with appends and refreshes disabled, so a crash
// during replay re-runs recovery against the identical surviving state;
// FinishRecovery performs the single atomic switch to a fresh epoch.
func Open(cfg Config, recovering bool) (*Log, error) {
	if cfg.MaxStage <= 0 {
		cfg.MaxStage = 1 << 20
	}
	ckptCap, ringBase, ringSize, err := geometry(cfg.SlotSize, 0)
	if err != nil {
		return nil, err
	}
	l := &Log{
		cfg:      cfg,
		env:      cfg.Env,
		ckptCap:  ckptCap,
		ringBase: ringBase,
		ringSize: ringSize,
		maxStage: cfg.MaxStage,
		qp:       cfg.Compute.NewQP(cfg.Host),
		trimQP:   cfg.Compute.NewQP(cfg.Host),
		staging:  cfg.Compute.Register(cfg.MaxStage),
		mu:       sim.NewMutex(cfg.Env),
		trimMu:   sim.NewMutex(cfg.Env),
		nextLSN:  1,
		wg:       sim.NewWaitGroup(cfg.Env),
	}
	l.appendCond = sim.NewNamedCond(cfg.Env, l.mu, "wal.append")
	l.ackCond = sim.NewNamedCond(cfg.Env, l.mu, "wal.ack")
	l.spaceCond = sim.NewNamedCond(cfg.Env, l.mu, "wal.space")
	l.trimCond = sim.NewNamedCond(cfg.Env, l.mu, "wal.trim")
	l.recovering = recovering
	if cfg.Replica != nil {
		l.replQP = cfg.Compute.NewQP(cfg.Replica.Host)
		l.replTrimQP = cfg.Compute.NewQP(cfg.Replica.Host)
	}

	if !recovering {
		// Read the old header (if any) so the fresh epoch supersedes it.
		old, err := l.readHeader()
		epoch := uint64(1)
		if err == nil {
			epoch = old.Epoch + 1
		}
		l.epoch = epoch
		h := Header{
			Epoch: epoch, StartOff: 0, StartLSN: 1, Covered: 0,
			CkptCap: uint32(ckptCap), CkptSlot: 0, CkptLen: 0, CkptCRC: 0,
		}
		if cfg.Replica != nil {
			// Tags stay monotonic across slot lives; replica flips first so
			// the replica header is never behind a freed primary ring.
			l.pubSeq = old.Tag + 1
			h.Tag = l.pubSeq
			if err := l.writeReplicaHeader(h); err != nil {
				l.teardown()
				return nil, fmt.Errorf("wal: initializing replica slot: %w", err)
			}
		}
		if err := l.writeHeader(h); err != nil {
			l.teardown()
			return nil, fmt.Errorf("wal: initializing slot: %w", err)
		}
	}

	l.wg.Add(2)
	l.env.Go(l.commitLoop)
	l.env.Go(l.trimLoop)
	return l, nil
}

func (l *Log) teardown() {
	l.qp.Close()
	l.trimQP.Close()
	if l.replQP != nil {
		l.replQP.Close()
		l.replTrimQP.Close()
	}
	l.cfg.Compute.Deregister(l.staging)
}

// readHeader fetches the remote slot header.
func (l *Log) readHeader() (Header, error) {
	mr := l.cfg.Compute.Register(HeaderSize)
	defer l.cfg.Compute.Deregister(mr)
	if err := l.trimQP.ReadSync(mr, 0, l.cfg.Slot, HeaderSize); err != nil {
		return Header{}, err
	}
	return decodeHeader(append([]byte(nil), mr.Bytes(0, HeaderSize)...))
}

// writeHeader publishes h as the slot's header, retrying transient faults.
func (l *Log) writeHeader(h Header) error {
	mr := l.cfg.Compute.RegisterBuf(encodeHeader(h))
	defer l.cfg.Compute.Deregister(mr)
	return l.retrySync(func() error {
		return l.trimQP.WriteSync(mr, 0, l.cfg.Slot, HeaderSize)
	})
}

// writeReplicaHeader publishes h on the mirror slot (trimmer context: it
// rides replTrimQP), retrying transient faults.
func (l *Log) writeReplicaHeader(h Header) error {
	mr := l.cfg.Compute.RegisterBuf(encodeHeader(h))
	defer l.cfg.Compute.Deregister(mr)
	err := l.retrySync(func() error {
		return l.replTrimQP.WriteSync(mr, 0, l.cfg.Replica.Slot, HeaderSize)
	})
	if err == nil {
		l.cfg.Replica.Bytes.Add(HeaderSize)
	}
	return err
}

// mirrorActive reports whether mirror writes should still be issued.
func (l *Log) mirrorActive() bool {
	if l.cfg.Replica == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.replicaDown
}

// mirrorFailed resolves a permanent mirror error under the configured ack
// policy: Sync propagates it, breaking the log before anything unmirrored
// can acknowledge; non-Sync (the Primary policy) degrades to primary-only
// operation and swallows the error.
func (l *Log) mirrorFailed(err error) error {
	if l.cfg.Replica.Sync {
		return fmt.Errorf("wal: replica mirror: %w", err)
	}
	l.mu.Lock()
	if !l.replicaDown {
		l.replicaDown = true
		l.cfg.Replica.Degraded.Inc()
	}
	l.mu.Unlock()
	return nil
}

// retrySync runs op with capped exponential backoff.
func (l *Log) retrySync(op func() error) error {
	backoff := walRetryBase
	var err error
	for attempt := 0; attempt < walMaxAttempts; attempt++ {
		if l.cfg.Compute.Crashed() {
			return rdma.ErrQPBroken
		}
		if err = op(); err == nil {
			return nil
		}
		l.env.Sleep(backoff)
		if backoff *= 2; backoff > walRetryMax {
			backoff = walRetryMax
		}
	}
	return err
}

// maxBody is the largest record body Stage will build: it must fit the
// staging buffer and leave the ring room to breathe across wraps.
func (l *Log) maxBody() int {
	m := l.ringSize/4 - recOverhead
	if s := l.maxStage - recOverhead; s < m {
		m = s
	}
	return m
}

// Stage frames the entries [0,n) — consecutive sequence numbers starting
// at seqLo — into one or more pending records and returns the token of
// the last one. The caller then inserts into the MemTable and calls
// Commit; the commit loop makes staged records durable in LSN order, so
// an acknowledged (Sync) write is durable before Put returns.
func (l *Log) Stage(seqLo uint64, n int, ent func(i int) (kind byte, key, value []byte)) (Token, error) {
	if n <= 0 {
		return Token{}, nil
	}
	maxBody := l.maxBody()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Token{}, ErrClosed
	}
	if l.broken {
		err := l.brokenErr
		l.mu.Unlock()
		return Token{}, err
	}
	if l.recovering {
		l.mu.Unlock()
		return Token{}, fmt.Errorf("wal: append during recovery")
	}
	var tok Token
	staged := 0
	for i := 0; i < n; {
		body := recFixed
		j := i
		for j < n {
			_, key, value := ent(j)
			sz := entryOverhead + len(key) + len(value)
			if body+sz > maxBody {
				break
			}
			body += sz
			j++
		}
		if j == i {
			// A single entry exceeds the record budget; undo nothing —
			// already-staged chunks are harmless (their seqs never ack).
			l.mu.Unlock()
			return Token{}, ErrTooLarge
		}
		lsn := l.nextLSN
		l.nextLSN++
		base := i
		buf := appendRecord(make([]byte, 0, body+recOverhead), l.epoch, lsn, seqLo+uint64(base), j-i,
			func(k int) (byte, []byte, []byte) { return ent(base + k) })
		l.pending = append(l.pending, stagedRec{lsn: lsn, loSeq: seqLo + uint64(base), maxSeq: seqLo + uint64(j) - 1, buf: buf})
		staged += len(buf)
		l.cfg.Metrics.Appends.Inc()
		l.cfg.Metrics.AppendBytes.Add(int64(len(buf)))
		tok = Token{lsn: lsn}
		i = j
	}
	l.appendCond.Signal()
	l.mu.Unlock()
	if l.cfg.Charge != nil {
		l.cfg.Charge(staged)
	}
	return tok, nil
}

// Commit resolves a staged token. sync waits until the record is durable
// in the remote ring (one group-commit round trip, shared with every
// concurrent writer); async returns immediately, only surfacing an
// already-broken log.
func (l *Log) Commit(t Token, sync bool) error {
	if t.lsn == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !sync {
		if l.broken && l.durableLSN < t.lsn {
			return l.brokenErr
		}
		return nil
	}
	for l.durableLSN < t.lsn && !l.broken {
		l.ackCond.Wait()
	}
	if l.durableLSN >= t.lsn {
		return nil
	}
	return l.brokenErr
}

// RequestRefresh nudges the trimmer to publish a new checkpoint and
// advance the truncation horizon; the engine calls it after each flush.
// Nil-safe so Durability-off call sites need no guards.
func (l *Log) RequestRefresh() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed && !l.broken {
		l.refreshReq = true
		l.trimCond.Signal()
	}
	l.mu.Unlock()
}

// RefreshNow synchronously publishes a checkpoint (used when opening
// from an existing checkpoint, so the slot's recovery baseline is the
// one the caller just installed).
func (l *Log) RefreshNow() error {
	blob, covered := l.cfg.Refresh()
	return l.publishRefresh(blob, covered)
}

// DropMirror permanently stops mirroring onto the replica slot. The
// engine calls it when the extent-mirroring side of replication degrades
// under the Primary ack policy: a checkpoint naming unmirrored tables can
// then never translate, so continuing to hold refreshes hostage to the
// mirror would wedge ring truncation. Nil-safe and a no-op on
// unreplicated logs.
func (l *Log) DropMirror() {
	if l == nil || l.cfg.Replica == nil {
		return
	}
	l.mu.Lock()
	if !l.replicaDown {
		l.replicaDown = true
		l.cfg.Replica.Degraded.Inc()
	}
	l.mu.Unlock()
}

// Broken reports whether the log has failed permanently (the compute
// node crashed or the fabric gave out); appends and syncs return the
// underlying error.
func (l *Log) Broken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Close drains staged records (making them durable if the fabric still
// works), stops the entities, and releases local resources. It does not
// publish a final checkpoint: the slot stays exactly as durable as the
// last acknowledged write, which is what Recover replays.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.appendCond.Broadcast()
	l.trimCond.Broadcast()
	l.spaceCond.Broadcast()
	l.ackCond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
	l.teardown()
}

// --- commit loop -----------------------------------------------------------

func (l *Log) commitLoop() {
	defer l.wg.Done()
	l.mu.Lock()
	for {
		for len(l.pending) == 0 && !l.closed && !l.broken {
			l.appendCond.Wait()
		}
		if l.broken || (l.closed && len(l.pending) == 0) {
			break
		}
		// Take the commit group: everything staged, bounded by the staging
		// buffer; or a single record in per-write mode. If the ring lacks
		// room for the whole group, durable prefixes are flushed first so
		// the stall can never wait on the group's own unflushed records.
		group := l.takeGroupLocked()
		idx := 0
		for idx < len(group) {
			segs, placed := l.placeAvailLocked(group[idx:])
			if placed == 0 {
				if !l.waitForSpaceLocked(len(group[idx].buf)) {
					break
				}
				continue
			}
			l.mu.Unlock()
			err := l.flushSegments(segs)
			if err == nil {
				// Ownership fence, checked after the bytes land and before
				// any writer is acknowledged: if the lease moved while the
				// doorbell was in flight, the new owner's slot read may
				// predate these records — so they must never ack.
				err = l.checkFence(l.qp)
			}
			l.mu.Lock()
			if err != nil {
				if errors.Is(err, ErrFenced) {
					l.failLocked(err)
				} else {
					l.failLocked(fmt.Errorf("wal: append doorbell: %w", err))
				}
				break
			}
			l.durableLSN = group[idx+placed-1].lsn
			l.cfg.Metrics.GroupRecords.Observe(int64(placed))
			l.ackCond.Broadcast()
			idx += placed
		}
		if l.broken {
			break
		}
	}
	l.ackCond.Broadcast()
	l.mu.Unlock()
}

// failLocked marks the log permanently broken and wakes everyone.
func (l *Log) failLocked(err error) {
	if !l.broken {
		l.broken = true
		l.brokenErr = err
	}
	l.ackCond.Broadcast()
	l.appendCond.Broadcast()
	l.spaceCond.Broadcast()
	l.trimCond.Broadcast()
}

func (l *Log) takeGroupLocked() []stagedRec {
	if l.cfg.PerWrite {
		group := l.pending[:1:1]
		l.pending = l.pending[1:]
		return group
	}
	// Leave headroom in the staging budget for one wrap's pad marker.
	budget := l.maxStage - 8
	total, n := 0, 0
	for n < len(l.pending) {
		total += len(l.pending[n].buf)
		if n > 0 && total > budget {
			break
		}
		n++
	}
	group := l.pending[:n:n]
	l.pending = l.pending[n:]
	return group
}

// padBytes is the wrap marker stamped at the ring's tail edge.
var padBytes = []byte{0xFF, 0xFF, 0xFF, 0xFF}

// fitsLocked reports whether a record of size need fits the ring now,
// along with the padding a placement would burn at the tail edge.
func (l *Log) fitsLocked(need int) (pad int, ok bool) {
	if l.tail+need > l.ringSize {
		pad = l.ringSize - l.tail
	}
	return pad, l.used+pad+need <= l.ringSize
}

// placeAvailLocked greedily assigns ring offsets to a prefix of group
// without waiting, returning the contiguous segments to write and how
// many records were placed.
func (l *Log) placeAvailLocked(group []stagedRec) ([]segment, int) {
	var segs []segment
	put := func(off int, b []byte) {
		if n := len(segs); n > 0 && segs[n-1].ringOff+len(segs[n-1].data) == off {
			segs[n-1].data = append(segs[n-1].data, b...)
			return
		}
		segs = append(segs, segment{ringOff: off, data: append([]byte(nil), b...)})
	}
	placed := 0
	for _, r := range group {
		need := len(r.buf)
		pad, ok := l.fitsLocked(need)
		if !ok {
			break
		}
		off := l.tail
		if pad > 0 {
			if pad >= 4 {
				put(l.tail, padBytes)
			}
			off = 0
		}
		put(off, r.buf)
		l.live = append(l.live, liveRec{lsn: r.lsn, off: off, size: need, padBefore: pad, loSeq: r.loSeq, maxSeq: r.maxSeq})
		l.tail = off + need
		if l.tail == l.ringSize {
			l.tail = 0
		}
		l.used += pad + need
		placed++
	}
	return segs, placed
}

// waitForSpaceLocked parks the commit loop until a record of size need
// fits the ring, prodding the trimmer (and, through Kick, the engine's
// flush pipeline) to advance the truncation horizon. Returns false when
// the log broke or closed while waiting.
func (l *Log) waitForSpaceLocked(need int) bool {
	for {
		if _, ok := l.fitsLocked(need); ok {
			return true
		}
		if l.broken || l.closed {
			return false
		}
		l.cfg.Metrics.RingStalls.Inc()
		l.refreshReq = true
		l.trimCond.Signal()
		if l.cfg.Kick != nil {
			l.mu.Unlock()
			l.cfg.Kick()
			l.mu.Lock()
			// Re-check before parking: the kick (or a refresh racing it)
			// may already have freed space, and its broadcast is gone.
			if _, ok := l.fitsLocked(need); ok {
				return true
			}
			if l.broken || l.closed {
				return false
			}
		}
		l.spaceCond.Wait()
	}
}

// checkFence verifies the ownership lease is still this log's: a CAS that
// expects (and rewrites) the unchanged fence word. A definitive mismatch
// is ErrFenced — no retry, the lease is gone for good; transient fabric
// faults retry like any other verb. qp selects whose completion stream
// the atomic rides (the commit loop's or the trimmer's — they must not
// interleave on one queue pair).
func (l *Log) checkFence(qp *rdma.QP) error {
	if l.cfg.FenceWord == 0 {
		return nil
	}
	var swapped bool
	err := l.retrySync(func() error {
		var cerr error
		_, swapped, cerr = qp.CompareSwapSync(l.cfg.Fence, l.cfg.FenceWord, l.cfg.FenceWord)
		return cerr
	})
	if err != nil {
		return err
	}
	if !swapped {
		return ErrFenced
	}
	return nil
}

// flushSegments copies the group into the staging region and issues one
// doorbell write per contiguous segment (normally exactly one), then
// waits for the completions. The writes are one-sided: the memory node's
// CPU is never involved.
func (l *Log) flushSegments(segs []segment) error {
	total := 0
	for _, s := range segs {
		copy(l.staging.Bytes(total, len(s.data)), s.data)
		total += len(s.data)
	}
	if l.cfg.Charge != nil {
		l.cfg.Charge(total)
	}
	err := l.retrySync(func() error {
		off := 0
		for i, s := range segs {
			l.qp.Write(l.staging, off, l.cfg.Slot.Add(l.ringBase+s.ringOff), len(s.data), uint64(i))
			off += len(s.data)
		}
		var err error
		for range segs {
			if c := l.qp.WaitCQ(); c.Err != nil {
				err = c.Err
			}
		}
		if err == nil {
			l.cfg.Metrics.Doorbells.Add(int64(len(segs)))
		}
		return err
	})
	if err != nil {
		return err
	}
	return l.mirrorSegments(segs, total)
}

// mirrorSegments chains the group's doorbell onto the replica ring: the
// same staged bytes at the same ring offsets (both slots share one
// geometry), posted only after every primary completion — so under Sync
// no record acknowledges until it is resident on both copies.
func (l *Log) mirrorSegments(segs []segment, total int) error {
	if !l.mirrorActive() {
		return nil
	}
	rc := l.cfg.Replica
	err := l.retrySync(func() error {
		off := 0
		for i, s := range segs {
			l.replQP.Write(l.staging, off, rc.Slot.Add(l.ringBase+s.ringOff), len(s.data), uint64(i))
			off += len(s.data)
		}
		var err error
		for range segs {
			if c := l.replQP.WaitCQ(); c.Err != nil {
				err = c.Err
			}
		}
		return err
	})
	if err != nil {
		return l.mirrorFailed(err)
	}
	rc.Bytes.Add(int64(total))
	return nil
}

// --- truncation / checkpoint refresh ---------------------------------------

func (l *Log) trimLoop() {
	defer l.wg.Done()
	l.mu.Lock()
	for {
		for !l.closed && !l.broken && (!l.refreshReq || l.recovering) {
			l.trimCond.Wait()
		}
		if l.closed || l.broken {
			break
		}
		l.refreshReq = false
		l.mu.Unlock()
		blob, covered := l.cfg.Refresh()
		err := l.publishRefresh(blob, covered)
		l.mu.Lock()
		if err != nil {
			l.failLocked(fmt.Errorf("wal: checkpoint refresh: %w", err))
			break
		}
	}
	l.mu.Unlock()
}

// publishRefresh writes blob into the inactive checkpoint slot, flips the
// header to it (also advancing the ring start past every durable record
// the checkpoint covers), and only then — once the new header is durable
// — releases the trimmed ring space for reuse. A crash at any point
// leaves either the old or the new header, each self-consistent.
func (l *Log) publishRefresh(blob []byte, covered uint64) error {
	if len(blob) > l.ckptCap {
		l.cfg.Metrics.CkptSkips.Inc()
		return nil
	}
	l.trimMu.Lock()
	defer l.trimMu.Unlock()

	l.mu.Lock()
	if covered < l.durableCovered {
		covered = l.durableCovered // horizons never move backwards
	}
	target := 1 - l.ckptSlot
	epoch := l.epoch
	tag := uint64(0)
	if l.cfg.Replica != nil {
		l.pubSeq++
		tag = l.pubSeq
	}
	// Trim plan: pop durable records fully below the horizon. The frees
	// are applied only after the header lands. While a truncation hold is
	// in force (shard migration reading the tail) nothing is popped — the
	// checkpoint still publishes, but every live record stays readable.
	trimN, freed := 0, 0
	startOff, startLSN := l.head, uint64(0)
	if l.holdTrunc == 0 {
		for _, r := range l.live {
			if r.lsn > l.durableLSN || r.maxSeq > covered {
				break
			}
			trimN++
			freed += r.padBefore + r.size
			startOff = r.off + r.size
			if startOff == l.ringSize {
				startOff = 0
			}
		}
	}
	if trimN > 0 {
		startLSN = l.live[trimN-1].lsn + 1
	} else if len(l.live) > 0 {
		startOff, startLSN = l.live[0].off, l.live[0].lsn
	} else {
		startOff, startLSN = l.tail, l.nextLSN
	}
	l.mu.Unlock()

	// A deposed owner must not clobber the new owner's checkpoint slots or
	// header: fence before touching the slot. (A takeover landing after
	// this check can still race the header write below — the harm is
	// bounded to one stale-but-self-consistent header, which the new
	// owner's own FinishRecovery header supersedes; real deployments close
	// even that window by revoking the deposed node's rkeys.)
	if err := l.checkFence(l.trimQP); err != nil {
		return err
	}
	h := Header{
		Epoch: epoch, StartOff: uint64(startOff), StartLSN: startLSN, Covered: covered,
		CkptCap: uint32(l.ckptCap), CkptSlot: target,
		CkptLen: uint32(len(blob)), CkptCRC: crc32.ChecksumIEEE(blob),
		Tag: tag,
	}
	// Replica first: ring space freed below is only ever reused once BOTH
	// headers have advanced past it, so each slot image stays individually
	// recoverable no matter where a crash lands; a crash between the two
	// flips leaves the replica one Tag ahead (see Header.Tag).
	if l.mirrorActive() {
		done, merr := l.mirrorCheckpoint(blob, h)
		if merr != nil {
			if merr = l.mirrorFailed(merr); merr != nil {
				return merr
			}
		} else if !done {
			return nil // a named table is not mirrored yet; keep the previous pair
		}
	}
	if len(blob) > 0 {
		mr := l.cfg.Compute.RegisterBuf(append([]byte(nil), blob...))
		err := l.retrySync(func() error {
			return l.trimQP.WriteSync(mr, 0, l.cfg.Slot.Add(HeaderSize+int(target)*l.ckptCap), len(blob))
		})
		l.cfg.Compute.Deregister(mr)
		if err != nil {
			return err
		}
	}
	if err := l.writeHeader(h); err != nil {
		return err
	}

	l.mu.Lock()
	l.live = l.live[trimN:]
	l.used -= freed
	l.head = startOff
	l.durableCovered = covered
	l.ckptSlot = target
	l.cfg.Metrics.Truncations.Inc()
	if freed > 0 {
		l.spaceCond.Broadcast()
	}
	l.mu.Unlock()
	return nil
}

// mirrorCheckpoint publishes the checkpoint pair half that lives on the
// mirror slot: the blob — translated into replica-side table addresses —
// into the target checkpoint slot, then the replica header. Called before
// the primary flip. done=false means the blob cannot be translated (or
// does not fit) yet and the whole refresh should be skipped; the previous
// self-consistent pair stays in force.
func (l *Log) mirrorCheckpoint(blob []byte, h Header) (done bool, err error) {
	rc := l.cfg.Replica
	rblob := blob
	if rc.Translate != nil && len(blob) > 0 {
		var ok bool
		if rblob, ok = rc.Translate(blob); !ok {
			return false, nil
		}
	}
	if len(rblob) > l.ckptCap {
		l.cfg.Metrics.CkptSkips.Inc()
		return false, nil
	}
	if len(rblob) > 0 {
		mr := l.cfg.Compute.RegisterBuf(append([]byte(nil), rblob...))
		werr := l.retrySync(func() error {
			return l.replTrimQP.WriteSync(mr, 0, rc.Slot.Add(HeaderSize+int(h.CkptSlot)*l.ckptCap), len(rblob))
		})
		l.cfg.Compute.Deregister(mr)
		if werr != nil {
			return false, werr
		}
		rc.Bytes.Add(int64(len(rblob)))
	}
	h.CkptLen = uint32(len(rblob))
	h.CkptCRC = crc32.ChecksumIEEE(rblob)
	if werr := l.writeReplicaHeader(h); werr != nil {
		return false, werr
	}
	if rc.TornHook != nil {
		rc.TornHook()
	}
	return true, nil
}

// FinishRecovery atomically switches a recovering log to a fresh, live
// epoch: the caller has re-applied and flushed every surviving record,
// so the new checkpoint (built by Refresh) covers them all and the ring
// restarts empty. A crash before the header write re-runs recovery
// against the untouched old state.
func (l *Log) FinishRecovery() error {
	l.mu.Lock()
	if !l.recovering {
		l.mu.Unlock()
		return fmt.Errorf("wal: not recovering")
	}
	l.mu.Unlock()

	old, err := l.readHeader()
	epoch := uint64(1)
	if err == nil {
		epoch = old.Epoch + 1
	}
	blob, covered := l.cfg.Refresh()
	if len(blob) > l.ckptCap {
		return fmt.Errorf("wal: recovery checkpoint (%d bytes) exceeds slot capacity %d", len(blob), l.ckptCap)
	}
	target := uint32(0)
	if err == nil {
		target = 1 - old.CkptSlot&1
	}
	h := Header{
		Epoch: epoch, StartOff: 0, StartLSN: 1, Covered: covered,
		CkptCap: uint32(l.ckptCap), CkptSlot: target,
		CkptLen: uint32(len(blob)), CkptCRC: crc32.ChecksumIEEE(blob),
	}
	tag := uint64(0)
	if l.cfg.Replica != nil {
		tag = old.Tag + 1
		h.Tag = tag
		done, merr := l.mirrorCheckpoint(blob, h)
		if merr != nil {
			if merr = l.mirrorFailed(merr); merr != nil {
				return merr
			}
		} else if !done {
			return fmt.Errorf("wal: recovery checkpoint not mirrorable")
		}
	}
	if len(blob) > 0 {
		mr := l.cfg.Compute.RegisterBuf(append([]byte(nil), blob...))
		werr := l.retrySync(func() error {
			return l.trimQP.WriteSync(mr, 0, l.cfg.Slot.Add(HeaderSize+int(target)*l.ckptCap), len(blob))
		})
		l.cfg.Compute.Deregister(mr)
		if werr != nil {
			return werr
		}
	}
	if err := l.writeHeader(h); err != nil {
		return err
	}

	l.mu.Lock()
	l.epoch = epoch
	l.nextLSN = 1
	l.durableLSN = 0
	l.pending = nil
	l.live = nil
	l.head, l.tail, l.used = 0, 0, 0
	l.durableCovered = covered
	l.ckptSlot = target
	l.pubSeq = tag
	l.recovering = false
	l.appendCond.Broadcast()
	l.trimCond.Broadcast()
	l.mu.Unlock()
	return nil
}
