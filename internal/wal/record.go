// Package wal implements a remote write-ahead log for the dLSM engine:
// a per-shard ring buffer living in a pre-registered memory-node region,
// appended with one-sided RDMA writes so the commit path consumes zero
// memory-node CPU (§VIII; O³-LSM's log offloading). A group-commit loop
// coalesces concurrent writers into one RDMA doorbell + one completion,
// amortizing the fabric round trip the same way the flush pipeline
// amortizes buffers.
//
// # Slot layout
//
// Each log owns one contiguous slot of the memory node's log region:
//
//	[ 64 B header | checkpoint slot A | checkpoint slot B | ring data ]
//
// The header names the active checkpoint slot and where the ring's live
// records begin; checkpoints are written to the inactive slot and then
// activated by a single 64-byte header write, so a torn checkpoint can
// never be observed. The checkpoint slot capacity is recorded in the
// header, making a slot image self-describing for recovery.
//
// # Record framing
//
//	u32 length | body | u32 crc32(body)
//
// body = epoch u64 | lsn u64 | seqLo u64 | count u32 |
//
//	count × (kind u8 | klen u32 | vlen u32 | key | value)
//
// Records never wrap around the ring edge: a writer that cannot fit a
// record before the edge stamps the pad marker 0xFFFFFFFF in the length
// position (or nothing, if fewer than 4 bytes remain) and continues at
// offset 0. Recovery scans from the header's start offset, accepting
// records only while the CRC matches, the epoch equals the header's, and
// LSNs run strictly sequentially — the first violation is the torn tail.
// The epoch is bumped every time a slot is (re)initialized, so records
// from a previous life of the log can never be mistaken for live ones,
// even when the ring wraps onto stale bytes with valid CRCs.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// Magic identifies an initialized log slot ("dLOG").
	Magic = 0x644c4f47
	// Version is the slot format version.
	Version = 1
	// HeaderSize is the fixed slot header length.
	HeaderSize = 64

	// padMarker in a record's length position means "rest of the ring is
	// padding; continue at offset 0".
	padMarker = 0xFFFFFFFF

	// recFixed is the fixed body prefix: epoch + lsn + seqLo + count.
	recFixed = 8 + 8 + 8 + 4
	// recOverhead frames a body: u32 length + u32 crc.
	recOverhead = 8
	// entryOverhead frames one entry: kind + klen + vlen.
	entryOverhead = 1 + 4 + 4
)

// Header mirrors the 64-byte slot header.
//
//	off  0: magic u32        4: version u32
//	off  8: epoch u64       16: startOff u64 (ring-relative)
//	off 24: startLSN u64    32: covered u64
//	off 40: ckptCap u32     44: ckptSlot u32
//	off 48: ckptLen u32     52: ckptCRC u32
//	off 56: tag u64
type Header struct {
	Epoch    uint64 // bumped on every slot (re)initialization
	StartOff uint64 // ring offset of the oldest live record
	StartLSN uint64 // LSN of the record at StartOff
	Covered  uint64 // all seqs <= Covered are captured by the checkpoint
	CkptCap  uint32 // capacity of each checkpoint slot
	CkptSlot uint32 // active checkpoint slot, 0 or 1
	CkptLen  uint32 // active checkpoint length (0: none)
	CkptCRC  uint32 // crc32 of the active checkpoint
	// Tag is the publish sequence number stamped into both headers of a
	// replicated slot pair (internal/repl): every checkpoint publish writes
	// the replica header first, then the primary's, both carrying the same
	// fresh Tag. A crash between the two flips therefore leaves the replica
	// one Tag ahead — detectable, and resolvable by preferring the higher
	// (Epoch, Tag). Unreplicated slots leave it zero (the layout's former
	// reserved word), keeping their images byte-identical to older builds.
	Tag uint64
}

func encodeHeader(h Header) []byte {
	b := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], Version)
	binary.LittleEndian.PutUint64(b[8:], h.Epoch)
	binary.LittleEndian.PutUint64(b[16:], h.StartOff)
	binary.LittleEndian.PutUint64(b[24:], h.StartLSN)
	binary.LittleEndian.PutUint64(b[32:], h.Covered)
	binary.LittleEndian.PutUint32(b[40:], h.CkptCap)
	binary.LittleEndian.PutUint32(b[44:], h.CkptSlot)
	binary.LittleEndian.PutUint32(b[48:], h.CkptLen)
	binary.LittleEndian.PutUint32(b[52:], h.CkptCRC)
	binary.LittleEndian.PutUint64(b[56:], h.Tag)
	return b
}

// decodeHeader parses a slot header, failing on bad magic or version.
func decodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("wal: short header: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != Magic {
		return Header{}, fmt.Errorf("wal: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != Version {
		return Header{}, fmt.Errorf("wal: unsupported version %d", v)
	}
	return Header{
		Epoch:    binary.LittleEndian.Uint64(b[8:]),
		StartOff: binary.LittleEndian.Uint64(b[16:]),
		StartLSN: binary.LittleEndian.Uint64(b[24:]),
		Covered:  binary.LittleEndian.Uint64(b[32:]),
		CkptCap:  binary.LittleEndian.Uint32(b[40:]),
		CkptSlot: binary.LittleEndian.Uint32(b[44:]),
		CkptLen:  binary.LittleEndian.Uint32(b[48:]),
		CkptCRC:  binary.LittleEndian.Uint32(b[52:]),
		Tag:      binary.LittleEndian.Uint64(b[56:]),
	}, nil
}

// DecodeHeader parses a raw 64-byte slot header as read back from remote
// memory. Read-only secondaries use it to refresh their view from the
// checkpoint slot without parsing the whole slot image.
func DecodeHeader(b []byte) (Header, error) { return decodeHeader(b) }

// CkptOffset returns the slot-relative byte offset of the active
// checkpoint blob described by h.
func (h Header) CkptOffset() int { return HeaderSize + int(h.CkptSlot)*int(h.CkptCap) }

// VerifyCheckpoint reports whether blob is the checkpoint h describes:
// the length and CRC both match. A mismatch usually means the header
// flipped while the blob was being read — re-read both and retry.
func (h Header) VerifyCheckpoint(blob []byte) bool {
	return len(blob) == int(h.CkptLen) && crc32.ChecksumIEEE(blob) == h.CkptCRC
}

// Entry is one logged write.
type Entry struct {
	Seq   uint64
	Kind  byte
	Key   []byte
	Value []byte
}

// Record is one decoded log record: count entries with consecutive
// sequence numbers starting at SeqLo.
type Record struct {
	LSN     uint64
	SeqLo   uint64
	Entries []Entry
}

// MaxSeq returns the highest sequence number in the record.
func (r Record) MaxSeq() uint64 { return r.SeqLo + uint64(len(r.Entries)) - 1 }

// appendRecord frames one record onto dst. ent yields entry i of n.
func appendRecord(dst []byte, epoch, lsn, seqLo uint64, n int, ent func(i int) (kind byte, key, value []byte)) []byte {
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	body := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = binary.LittleEndian.AppendUint64(dst, seqLo)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for i := 0; i < n; i++ {
		kind, key, value := ent(i)
		dst = append(dst, kind)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(value)))
		dst = append(dst, key...)
		dst = append(dst, value...)
	}
	binary.LittleEndian.PutUint32(dst[lenPos:], uint32(len(dst)-body))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[body:]))
}

// parseRecord decodes the record at the front of b, requiring the given
// epoch and exact LSN. Returns the framed size on success; ok=false means
// the bytes are not a valid next record (torn tail).
func parseRecord(b []byte, epoch, wantLSN uint64) (Record, int, bool) {
	return parseRecordAt(b, epoch, wantLSN, true)
}

// ParseReplayRecord decodes one framed record for offload replay. Unlike
// recovery's ring scan it has no sequential-LSN requirement: replay
// selects records by ring location (wal.View), not by walking from the
// header, so any LSN of the right epoch with a valid CRC is acceptable.
func ParseReplayRecord(b []byte, epoch uint64) (Record, bool) {
	rec, _, ok := parseRecordAt(b, epoch, 0, false)
	return rec, ok
}

func parseRecordAt(b []byte, epoch, wantLSN uint64, exactLSN bool) (Record, int, bool) {
	if len(b) < 4 {
		return Record{}, 0, false
	}
	ln := binary.LittleEndian.Uint32(b)
	if ln == padMarker || int64(ln) < recFixed || int64(ln) > int64(len(b)-recOverhead) {
		return Record{}, 0, false
	}
	body := b[4 : 4+ln]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[4+ln:]) {
		return Record{}, 0, false
	}
	if binary.LittleEndian.Uint64(body[0:]) != epoch {
		return Record{}, 0, false
	}
	rec := Record{
		LSN:   binary.LittleEndian.Uint64(body[8:]),
		SeqLo: binary.LittleEndian.Uint64(body[16:]),
	}
	if exactLSN && rec.LSN != wantLSN {
		return Record{}, 0, false
	}
	count := int(binary.LittleEndian.Uint32(body[24:]))
	rest := body[recFixed:]
	for i := 0; i < count; i++ {
		if len(rest) < entryOverhead {
			return Record{}, 0, false
		}
		kind := rest[0]
		klen := int64(binary.LittleEndian.Uint32(rest[1:]))
		vlen := int64(binary.LittleEndian.Uint32(rest[5:]))
		rest = rest[entryOverhead:]
		if klen+vlen > int64(len(rest)) {
			return Record{}, 0, false
		}
		rec.Entries = append(rec.Entries, Entry{
			Seq:   rec.SeqLo + uint64(i),
			Kind:  kind,
			Key:   append([]byte(nil), rest[:klen]...),
			Value: append([]byte(nil), rest[klen:klen+vlen]...),
		})
		rest = rest[klen+vlen:]
	}
	if len(rest) != 0 || count == 0 {
		return Record{}, 0, false
	}
	return rec, int(4 + ln + 4), true
}

// scanRing walks the ring from the header's start position, returning
// every record up to the torn tail (first CRC/epoch/LSN violation).
func scanRing(ring []byte, h Header) []Record {
	if len(ring) == 0 || int(h.StartOff) >= len(ring) {
		return nil
	}
	off := int(h.StartOff)
	lsn := h.StartLSN
	walked := 0
	var out []Record
	for walked < len(ring) {
		rem := len(ring) - off
		if rem < 4 || binary.LittleEndian.Uint32(ring[off:]) == padMarker {
			// Tail padding (explicit marker, or too narrow to hold one):
			// the next record starts at the ring base.
			walked += rem
			off = 0
			continue
		}
		rec, size, ok := parseRecord(ring[off:], h.Epoch, lsn)
		if !ok {
			break
		}
		out = append(out, rec)
		off += size
		walked += size
		lsn++
		if off == len(ring) {
			off = 0
		}
	}
	return out
}

// geometry computes the derived slot layout. ckptCap 0 picks the default
// rule used by Open; recovery always passes the header's recorded value.
func geometry(slotSize int64, ckptCap int) (cap, ringBase, ringSize int, err error) {
	if ckptCap == 0 {
		ckptCap = int(slotSize / 8)
		if ckptCap < 4096 {
			ckptCap = 4096
		}
		if ckptCap > 4<<20 {
			ckptCap = 4 << 20
		}
		ckptCap = (ckptCap + 63) &^ 63
	}
	ringBase = HeaderSize + 2*ckptCap
	ringSize = int(slotSize) - ringBase
	if ringSize < 1024 {
		return 0, 0, 0, fmt.Errorf("wal: slot size %d leaves %d-byte ring (ckpt cap %d)", slotSize, ringSize, ckptCap)
	}
	return ckptCap, ringBase, ringSize, nil
}

// Geometry returns the derived slot layout of a slot of the given size
// under the default checkpoint-capacity rule (the one Open applies).
func Geometry(slotSize int64) (ckptCap, ringBase, ringSize int, err error) {
	return geometry(slotSize, 0)
}

// ParseImage decodes a raw slot image (header + checkpoint slots + ring)
// as read back during recovery: the header, the active checkpoint blob
// (nil when none was ever published), and every surviving record in LSN
// order up to the torn tail.
func ParseImage(img []byte) (Header, []byte, []Record, error) {
	h, err := decodeHeader(img)
	if err != nil {
		return Header{}, nil, nil, err
	}
	_, ringBase, ringSize, err := geometry(int64(len(img)), int(h.CkptCap))
	if err != nil {
		return Header{}, nil, nil, err
	}
	if h.CkptSlot > 1 || int(h.StartOff) >= ringSize {
		return Header{}, nil, nil, fmt.Errorf("wal: corrupt header (slot %d, start %d)", h.CkptSlot, h.StartOff)
	}
	var ckpt []byte
	if h.CkptLen > 0 {
		if h.CkptLen > h.CkptCap {
			return Header{}, nil, nil, fmt.Errorf("wal: checkpoint length %d exceeds slot capacity %d", h.CkptLen, h.CkptCap)
		}
		base := HeaderSize + int(h.CkptSlot)*int(h.CkptCap)
		ckpt = append([]byte(nil), img[base:base+int(h.CkptLen)]...)
		if crc32.ChecksumIEEE(ckpt) != h.CkptCRC {
			return Header{}, nil, nil, fmt.Errorf("wal: checkpoint crc mismatch")
		}
	}
	return h, ckpt, scanRing(img[ringBase:], h), nil
}
