package wal

import (
	"bytes"
	"fmt"
	"sort"
)

// HoldTruncation pauses ring truncation: checkpoints keep publishing, but
// no live record is trimmed until ReleaseTruncation. Shard migration holds
// the ring while it captures a table horizon and reads the tail above it —
// without the hold, a flush completing in between could publish a higher
// covered horizon and reclaim records the tail read still needs. Holds
// nest; nil-safe.
func (l *Log) HoldTruncation() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.holdTrunc++
	l.mu.Unlock()
}

// ReleaseTruncation undoes one HoldTruncation and nudges the trimmer so
// space held back during the pause is reclaimed promptly. Nil-safe.
func (l *Log) ReleaseTruncation() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.holdTrunc > 0 {
		l.holdTrunc--
		if l.holdTrunc == 0 && !l.closed && !l.broken {
			l.refreshReq = true
			l.trimCond.Signal()
		}
	}
	l.mu.Unlock()
}

// TailEntries reads back every durable log entry with sequence in
// [seqLo, seqHi], in sequence order. It rides ReplayView for the record
// locations (waiting out in-flight commits that overlap the range), then
// fetches each record from the remote ring over its own queue pair and
// decodes it. Shard migration replays the returned entries on the
// destination shard — the tail above the cloned checkpoint horizon. The
// caller must bracket the call with HoldTruncation/ReleaseTruncation if
// the horizon was computed earlier; otherwise a concurrent checkpoint
// could trim records between the horizon capture and the read.
func (l *Log) TailEntries(seqLo, seqHi uint64) ([]Entry, error) {
	if seqLo > seqHi {
		return nil, nil
	}
	view, err := l.ReplayView(seqLo, seqHi)
	if err != nil {
		return nil, err
	}
	if len(view.Records) == 0 {
		return nil, nil
	}
	max := 0
	for _, r := range view.Records {
		if r.Size > max {
			max = r.Size
		}
	}
	qp := l.cfg.Compute.NewQP(l.cfg.Host)
	defer qp.Close()
	mr := l.cfg.Compute.Register(max)
	defer l.cfg.Compute.Deregister(mr)

	var out []Entry
	for _, r := range view.Records {
		if err := qp.ReadSync(mr, 0, l.cfg.Slot.Add(l.ringBase+r.Off), r.Size); err != nil {
			return nil, err
		}
		rec, ok := ParseReplayRecord(mr.Bytes(0, r.Size), view.Epoch)
		if !ok {
			return nil, fmt.Errorf("wal: tail record at ring offset %d failed to parse", r.Off)
		}
		for _, e := range rec.Entries {
			if e.Seq >= seqLo && e.Seq <= seqHi {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// FilterRange returns the entries whose user keys fall in [lo, hi); nil
// bounds are unbounded. A migrating shard's log holds exactly its own
// range, but the filter keeps tail replay correct even when a caller
// replays a sub-range (a split running against a fenced source).
func FilterRange(entries []Entry, lo, hi []byte) []Entry {
	var out []Entry
	for _, e := range entries {
		if lo != nil && bytes.Compare(e.Key, lo) < 0 {
			continue
		}
		if hi != nil && bytes.Compare(e.Key, hi) >= 0 {
			continue
		}
		out = append(out, e)
	}
	return out
}
