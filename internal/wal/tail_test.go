package wal

import (
	"bytes"
	"fmt"
	"testing"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func TestTailEntriesRange(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 70, 1<<20, false)
		defer tw.l.Close()
		for i := 1; i <= 20; i++ {
			tw.put(t, uint64(i), fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i))
		}
		entries, err := tw.l.TailEntries(5, 12)
		if err != nil {
			t.Fatalf("TailEntries: %v", err)
		}
		if len(entries) != 8 {
			t.Fatalf("got %d entries, want 8", len(entries))
		}
		for i, e := range entries {
			want := uint64(5 + i)
			if e.Seq != want {
				t.Fatalf("entries[%d].Seq = %d, want %d", i, e.Seq, want)
			}
			if k := fmt.Sprintf("key-%02d", want); !bytes.Equal(e.Key, []byte(k)) {
				t.Fatalf("entries[%d].Key = %q, want %q", i, e.Key, k)
			}
			if v := fmt.Sprintf("val-%02d", want); !bytes.Equal(e.Value, []byte(v)) {
				t.Fatalf("entries[%d].Value = %q, want %q", i, e.Value, v)
			}
		}
		// Inverted range is empty, not an error.
		if got, err := tw.l.TailEntries(7, 3); err != nil || got != nil {
			t.Fatalf("TailEntries(7,3) = %v, %v; want nil, nil", got, err)
		}
	})
}

func TestHoldTruncationPreservesTail(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 71, 1<<20, false)
		defer tw.l.Close()
		for i := 1; i <= 30; i++ {
			tw.put(t, uint64(i), fmt.Sprintf("key-%02d", i), "v")
		}
		// With truncation held, publishing a checkpoint that covers seq ≤ 25
		// must not reclaim those records: the tail read still needs them.
		tw.l.HoldTruncation()
		tw.covered.Store(25)
		if err := tw.l.RefreshNow(); err != nil {
			t.Fatalf("RefreshNow: %v", err)
		}
		entries, err := tw.l.TailEntries(1, 30)
		if err != nil {
			t.Fatalf("TailEntries under hold: %v", err)
		}
		if len(entries) != 30 {
			t.Fatalf("got %d entries under hold, want 30", len(entries))
		}
		tw.l.ReleaseTruncation()
		// After release the covered prefix may be trimmed, but the tail
		// above the horizon survives.
		if err := tw.l.RefreshNow(); err != nil {
			t.Fatalf("RefreshNow after release: %v", err)
		}
		entries, err = tw.l.TailEntries(26, 30)
		if err != nil {
			t.Fatalf("TailEntries after release: %v", err)
		}
		if len(entries) != 5 {
			t.Fatalf("got %d tail entries after release, want 5", len(entries))
		}
	})
}

func TestFilterRange(t *testing.T) {
	mk := func(keys ...string) []Entry {
		var out []Entry
		for i, k := range keys {
			out = append(out, Entry{Seq: uint64(i + 1), Key: []byte(k)})
		}
		return out
	}
	keysOf := func(es []Entry) []string {
		var out []string
		for _, e := range es {
			out = append(out, string(e.Key))
		}
		return out
	}
	in := mk("a", "b", "c", "d", "e")
	cases := []struct {
		lo, hi []byte
		want   []string
	}{
		{[]byte("b"), []byte("d"), []string{"b", "c"}},
		{nil, []byte("c"), []string{"a", "b"}},
		{[]byte("d"), nil, []string{"d", "e"}},
		{nil, nil, []string{"a", "b", "c", "d", "e"}},
		{[]byte("x"), nil, nil},
	}
	for _, c := range cases {
		got := keysOf(FilterRange(in, c.lo, c.hi))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("FilterRange(%q,%q) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}
