package wal

import (
	"fmt"
	"time"
)

// RecordLoc locates one framed record inside the ring (ring-relative
// offset; records never wrap the ring edge, so [Off, Off+Size) is always
// contiguous).
type RecordLoc struct {
	Off  int
	Size int
}

// View is a zero-copy flush descriptor: the ring locations of every
// durable record whose sequence span overlaps a requested range. The
// engine ships it to the memory node instead of re-sending immutable
// memtable contents (three-layer offloading, DESIGN.md §11) — the bytes
// are already resident in memory-node DRAM, so the memnode replays them
// in place for zero extra network traffic. The records stay resident
// until the flush completes: truncation only trims records whose
// sequences a published checkpoint covers, and the covered horizon stays
// strictly below any unflushed memtable's range.
type View struct {
	Epoch   uint64
	Records []RecordLoc
}

const (
	replayPollInterval = 200 * time.Microsecond
	replayPollMax      = 100
)

// ReplayView returns the ring locations of every durable record
// overlapping [seqLo, seqHi]. Records still staged or in a not-yet-acked
// commit group are waited for with a bounded poll; if durability does not
// arrive (ring stalled on space, log broken mid-wait) an error is
// returned and the caller falls back to shipping the memtable contents.
//
// A view can legitimately miss entries that were inserted into the
// memtable but never staged (an ErrTooLarge append, or a writer between
// its claim release and its Stage call); the flush protocol detects that
// by comparing the built table's entry count against the memtable's and
// falls back, so ReplayView itself makes no completeness promise.
func (l *Log) ReplayView(seqLo, seqHi uint64) (View, error) {
	overlaps := func(lo, hi uint64) bool { return lo <= seqHi && hi >= seqLo }
	for attempt := 0; ; attempt++ {
		l.mu.Lock()
		switch {
		case l.closed:
			l.mu.Unlock()
			return View{}, ErrClosed
		case l.broken:
			err := l.brokenErr
			l.mu.Unlock()
			return View{}, err
		case l.recovering:
			l.mu.Unlock()
			return View{}, fmt.Errorf("wal: replay view during recovery")
		}
		wait := false
		for _, r := range l.pending {
			if overlaps(r.loSeq, r.maxSeq) {
				wait = true
				break
			}
		}
		if !wait {
			for _, r := range l.live {
				if overlaps(r.loSeq, r.maxSeq) && r.lsn > l.durableLSN {
					wait = true
					break
				}
			}
		}
		if !wait {
			v := View{Epoch: l.epoch}
			for _, r := range l.live {
				if overlaps(r.loSeq, r.maxSeq) {
					v.Records = append(v.Records, RecordLoc{Off: r.off, Size: r.size})
				}
			}
			l.mu.Unlock()
			return v, nil
		}
		l.mu.Unlock()
		if attempt >= replayPollMax {
			return View{}, fmt.Errorf("wal: replay view stalled waiting for durability of seqs [%d, %d]", seqLo, seqHi)
		}
		l.env.Sleep(replayPollInterval)
	}
}
