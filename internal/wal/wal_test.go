package wal

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// logHost is a minimal stand-in for the memory node's log region — just
// registered slot memory on the remote node, with memnode's OpenLog
// surface. The real memnode now parses WAL records for flush offloading
// (so it imports this package), which makes it unusable from these
// internal tests.
type logHost struct {
	node *rdma.Node
	mr   *rdma.MemoryRegion
	next int
	logs map[uint64]logSlot
}

type logSlot struct {
	Addr rdma.RemoteAddr
	Size int64
}

func newLogHost(mn *rdma.Node) *logHost {
	return &logHost{node: mn, mr: mn.Register(8 << 20), logs: map[uint64]logSlot{}}
}

func (h *logHost) Node() *rdma.Node         { return h.node }
func (h *logHost) LogMR() *rdma.MemoryRegion { return h.mr }

func (h *logHost) OpenLog(key uint64, size int64) (logSlot, error) {
	if s, ok := h.logs[key]; ok {
		return s, nil
	}
	off := (h.next + 4095) &^ 4095
	if off+int(size) > h.mr.Size() {
		return logSlot{}, fmt.Errorf("log region full")
	}
	h.next = off + int(size)
	s := logSlot{Addr: h.mr.Addr(off), Size: size}
	h.logs[key] = s
	return s, nil
}

func (h *logHost) FindLog(key uint64) (logSlot, bool) {
	s, ok := h.logs[key]
	return s, ok
}

// walHarness runs fn inside a fresh simulated deployment.
func walHarness(t *testing.T, fn func(env *sim.Env, cn *rdma.Node, srv *logHost)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	srv := newLogHost(mn)
	env.Run(func() {
		fn(env, cn, srv)
		fab.Close()
	})
	env.Wait()
}

// testWAL bundles a Log with a controllable covered horizon. Its Kick
// plays the engine's flush pipeline: when appends stall on ring space it
// advances the horizon to just below the acked frontier, the way a real
// kick forces a memtable switch whose flush advances the checkpoint.
type testWAL struct {
	l       *Log
	covered atomic.Uint64
	acked   atomic.Uint64
	m       Metrics
}

func openTestWAL(t *testing.T, env *sim.Env, cn *rdma.Node, srv *logHost, key uint64, slotSize int64, perWrite bool) *testWAL {
	t.Helper()
	slot, err := srv.OpenLog(key, slotSize)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	tw := &testWAL{}
	reg := cn.Fabric().Telemetry()
	tw.m = Metrics{
		Appends:      reg.Counter(fmt.Sprintf("test.wal%d.appends", key)),
		AppendBytes:  reg.Counter(fmt.Sprintf("test.wal%d.bytes", key)),
		Doorbells:    reg.Counter(fmt.Sprintf("test.wal%d.doorbells", key)),
		GroupRecords: reg.Histogram(fmt.Sprintf("test.wal%d.group", key)),
		Truncations:  reg.Counter(fmt.Sprintf("test.wal%d.truncations", key)),
		RingStalls:   reg.Counter(fmt.Sprintf("test.wal%d.stalls", key)),
	}
	l, err := Open(Config{
		Env: env, Compute: cn, Host: srv.Node(),
		Slot: slot.Addr, SlotSize: slot.Size,
		PerWrite: perWrite,
		Refresh:  func() ([]byte, uint64) { return []byte("test-checkpoint-blob"), tw.covered.Load() },
		Kick: func() {
			if a := tw.acked.Load(); a > 20 {
				for {
					cur := tw.covered.Load()
					if a-20 <= cur || tw.covered.CompareAndSwap(cur, a-20) {
						break
					}
				}
				tw.l.RequestRefresh()
			}
		},
		Metrics: tw.m,
	}, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tw.l = l
	return tw
}

// put stages one entry and waits for durability.
func (tw *testWAL) put(t *testing.T, seq uint64, key, value string) {
	t.Helper()
	tok, err := tw.l.Stage(seq, 1, func(int) (byte, []byte, []byte) { return 1, []byte(key), []byte(value) })
	if err != nil {
		t.Fatalf("Stage(seq=%d): %v", seq, err)
	}
	if err := tw.l.Commit(tok, true); err != nil {
		t.Fatalf("Commit(seq=%d): %v", seq, err)
	}
	for {
		cur := tw.acked.Load()
		if seq <= cur || tw.acked.CompareAndSwap(cur, seq) {
			break
		}
	}
}

// image snapshots the raw slot bytes from the memory node.
func slotImage(srv *logHost, key uint64) []byte {
	slot, ok := srv.FindLog(key)
	if !ok {
		panic("no log slot")
	}
	return append([]byte(nil), srv.LogMR().Bytes(slot.Addr.Off, int(slot.Size))...)
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Epoch: 7, StartOff: 1234, StartLSN: 99, Covered: 424242,
		CkptCap: 4096, CkptSlot: 1, CkptLen: 17, CkptCRC: 0xDEADBEEF}
	got, err := decodeHeader(encodeHeader(h))
	if err != nil {
		t.Fatalf("decodeHeader: %v", err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	if _, err := decodeHeader(make([]byte, HeaderSize)); err == nil {
		t.Fatal("zero header decoded without error")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	buf := appendRecord(nil, 3, 11, 100, 2, func(i int) (byte, []byte, []byte) {
		return byte(i), []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))
	})
	rec, size, ok := parseRecord(buf, 3, 11)
	if !ok || size != len(buf) {
		t.Fatalf("parseRecord: ok=%v size=%d want %d", ok, size, len(buf))
	}
	if rec.LSN != 11 || rec.SeqLo != 100 || len(rec.Entries) != 2 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Entries[1].Seq != 101 || string(rec.Entries[1].Key) != "k1" || string(rec.Entries[1].Value) != "v1" {
		t.Fatalf("entry %+v", rec.Entries[1])
	}
	// Wrong epoch, wrong LSN, flipped bytes: all rejected.
	if _, _, ok := parseRecord(buf, 4, 11); ok {
		t.Fatal("accepted wrong epoch")
	}
	if _, _, ok := parseRecord(buf, 3, 12); ok {
		t.Fatal("accepted wrong lsn")
	}
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if rec, _, ok := parseRecord(bad, 3, 11); ok {
			// A flip in the length field could still frame a valid record
			// only if the CRC matched, which a single bit flip prevents.
			t.Fatalf("accepted corrupt byte %d: %+v", i, rec)
		}
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 1, 64<<10, false)
		for i := 1; i <= 20; i++ {
			tw.put(t, uint64(i), fmt.Sprintf("key-%03d", i), fmt.Sprintf("value-%03d", i))
		}
		h, ckpt, recs, err := ParseImage(slotImage(srv, 1))
		if err != nil {
			t.Fatalf("ParseImage: %v", err)
		}
		if h.Covered != 0 || ckpt != nil {
			t.Fatalf("unexpected checkpoint before refresh: covered=%d ckpt=%q", h.Covered, ckpt)
		}
		var seqs []uint64
		for _, r := range recs {
			for _, e := range r.Entries {
				seqs = append(seqs, e.Seq)
			}
		}
		if len(seqs) != 20 {
			t.Fatalf("scanned %d entries, want 20 (%v)", len(seqs), seqs)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("entry %d has seq %d", i, s)
			}
		}
		// Refresh publishes the checkpoint blob and covers everything.
		tw.covered.Store(20)
		if err := tw.l.RefreshNow(); err != nil {
			t.Fatalf("RefreshNow: %v", err)
		}
		h, ckpt, recs, err = ParseImage(slotImage(srv, 1))
		if err != nil {
			t.Fatalf("ParseImage after refresh: %v", err)
		}
		if h.Covered != 20 || !bytes.Equal(ckpt, []byte("test-checkpoint-blob")) || len(recs) != 0 {
			t.Fatalf("after refresh: covered=%d ckpt=%q recs=%d", h.Covered, ckpt, len(recs))
		}
		tw.l.Close()
	})
}

func TestRingWraparound(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 2, 16<<10, false)
		if tw.l.ringSize >= 1<<14 {
			t.Fatalf("ring unexpectedly large: %d", tw.l.ringSize)
		}
		// Push many times the ring's capacity through it. Truncation is
		// driven entirely by the stall path: the ring fills, the commit
		// loop kicks, the horizon advances, space frees — wrap after wrap.
		const n = 500
		for i := 1; i <= n; i++ {
			tw.put(t, uint64(i), fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d-padpadpadpadpad", i))
		}
		// Quiesce with a final horizon keeping (at most) the last 25.
		tw.covered.Store(n - 25)
		if err := tw.l.RefreshNow(); err != nil {
			t.Fatalf("RefreshNow: %v", err)
		}
		h, _, recs, err := ParseImage(slotImage(srv, 2))
		if err != nil {
			t.Fatalf("ParseImage: %v", err)
		}
		if h.Covered < n-25 || h.Covered >= n {
			t.Fatalf("covered=%d, want within [%d,%d)", h.Covered, n-25, n)
		}
		var got []uint64
		for _, r := range recs {
			for _, e := range r.Entries {
				got = append(got, e.Seq)
			}
		}
		// Every acked entry above the horizon must survive, in seq order.
		if len(got) != int(n-h.Covered) {
			t.Fatalf("scanned %d entries above horizon %d, want %d (%v)", len(got), h.Covered, n-h.Covered, got)
		}
		for i, s := range got {
			if s != h.Covered+1+uint64(i) {
				t.Fatalf("entry %d: seq %d", i, s)
			}
			if want := fmt.Sprintf("key-%05d", s); string(recs[i].Entries[0].Key) != want {
				t.Fatalf("entry %d: key %q want %q", i, recs[i].Entries[0].Key, want)
			}
		}
		if tw.m.RingStalls.Load() == 0 {
			t.Fatal("expected ring-full stalls with a tiny ring")
		}
		if tw.m.Truncations.Load() < 3 {
			t.Fatalf("truncations=%d, expected repeated horizon advances", tw.m.Truncations.Load())
		}
		tw.l.Close()
	})
}

func TestTruncationRacesAppends(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 3, 32<<10, false)
		var seqCtr, acked atomic.Uint64
		const writers, perWriter = 8, 100
		writersWG := sim.NewWaitGroup(env)
		for w := 0; w < writers; w++ {
			w := w
			writersWG.Add(1)
			env.Go(func() {
				defer writersWG.Done()
				for i := 0; i < perWriter; i++ {
					seq := seqCtr.Add(1)
					tok, err := tw.l.Stage(seq, 1, func(int) (byte, []byte, []byte) {
						return 1, []byte(fmt.Sprintf("w%d-k%06d", w, seq)), []byte(fmt.Sprintf("v%06d", seq))
					})
					if err != nil {
						t.Errorf("Stage: %v", err)
						return
					}
					if err := tw.l.Commit(tok, true); err != nil {
						t.Errorf("Commit: %v", err)
						return
					}
					// Track the contiguous acked prefix for the trimmer.
					for {
						cur := acked.Load()
						if seq <= cur || acked.CompareAndSwap(cur, seq) {
							break
						}
					}
				}
			})
		}
		// A refresher races the writers, aggressively moving the horizon
		// to just below the acked frontier.
		var stop atomic.Bool
		refresherWG := sim.NewWaitGroup(env)
		refresherWG.Add(1)
		env.Go(func() {
			defer refresherWG.Done()
			for !stop.Load() {
				if a := acked.Load(); a > 10 {
					tw.covered.Store(a - 10)
					tw.l.RequestRefresh()
				}
				env.Sleep(20_000) // 20µs
			}
		})
		writersWG.Wait()
		stop.Store(true)
		refresherWG.Wait()
		total := uint64(writers * perWriter)
		tw.covered.Store(total - 30)
		if err := tw.l.RefreshNow(); err != nil {
			t.Fatalf("final RefreshNow: %v", err)
		}
		h, _, recs, err := ParseImage(slotImage(srv, 3))
		if err != nil {
			t.Fatalf("ParseImage: %v", err)
		}
		if h.Covered != total-30 {
			t.Fatalf("covered=%d want %d", h.Covered, total-30)
		}
		seen := map[uint64]bool{}
		for _, r := range recs {
			for _, e := range r.Entries {
				seen[e.Seq] = true
			}
		}
		for seq := h.Covered + 1; seq <= total; seq++ {
			if !seen[seq] {
				t.Fatalf("acked seq %d above horizon lost (scanned %d entries)", seq, len(seen))
			}
		}
		if tw.m.Truncations.Load() < 3 {
			t.Fatalf("truncations=%d, expected the horizon to advance repeatedly", tw.m.Truncations.Load())
		}
		tw.l.Close()
	})
}

func TestTornTailDetection(t *testing.T) {
	walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
		tw := openTestWAL(t, env, cn, srv, 4, 64<<10, false)
		for i := 1; i <= 10; i++ {
			tw.put(t, uint64(i), fmt.Sprintf("key-%02d", i), "value")
		}
		// Corrupt one byte inside the last record — a torn doorbell write.
		slot, _ := srv.FindLog(4)
		ringBytes := int(tw.m.AppendBytes.Load())
		srv.LogMR().SetByte(slot.Addr.Off+tw.l.ringBase+ringBytes-6, 0xA5)
		_, _, recs, err := ParseImage(slotImage(srv, 4))
		if err != nil {
			t.Fatalf("ParseImage: %v", err)
		}
		if len(recs) != 9 {
			t.Fatalf("scanned %d records past a torn tail, want 9", len(recs))
		}
		for i, r := range recs {
			if r.SeqLo != uint64(i+1) {
				t.Fatalf("record %d: seqLo %d", i, r.SeqLo)
			}
		}
		tw.l.Close()
	})
}

func TestGroupCommitCoalescing(t *testing.T) {
	run := func(perWrite bool) (appends, doorbells int64, maxGroup float64) {
		var a, d int64
		var mg float64
		walHarness(t, func(env *sim.Env, cn *rdma.Node, srv *logHost) {
			key := uint64(5)
			if perWrite {
				key = 6
			}
			tw := openTestWAL(t, env, cn, srv, key, 256<<10, perWrite)
			var seqCtr atomic.Uint64
			const writers, perWriter = 16, 25
			wg := sim.NewWaitGroup(env)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				env.Go(func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						seq := seqCtr.Add(1)
						tok, err := tw.l.Stage(seq, 1, func(int) (byte, []byte, []byte) {
							return 1, []byte(fmt.Sprintf("k%06d", seq)), []byte("value-payload")
						})
						if err != nil {
							t.Errorf("Stage: %v", err)
							return
						}
						if err := tw.l.Commit(tok, true); err != nil {
							t.Errorf("Commit: %v", err)
							return
						}
					}
				})
			}
			wg.Wait()
			a, d = tw.m.Appends.Load(), tw.m.Doorbells.Load()
			mg = float64(tw.m.GroupRecords.Snapshot().Max)
			tw.l.Close()
		})
		return a, d, mg
	}
	ga, gd, gmax := run(false)
	pa, pd, _ := run(true)
	if ga != 16*25 || pa != 16*25 {
		t.Fatalf("appends: group=%d perwrite=%d want %d", ga, pa, 16*25)
	}
	if gd >= ga {
		t.Fatalf("group commit did not coalesce: %d doorbells for %d appends", gd, ga)
	}
	if gmax < 2 {
		t.Fatalf("max group size %v, expected coalescing under concurrency", gmax)
	}
	if pd != pa {
		t.Fatalf("per-write mode: %d doorbells for %d appends, want equal", pd, pa)
	}
	t.Logf("group: %d doorbells / %d appends (max group %v); per-write: %d/%d", gd, ga, gmax, pd, pa)
}
