package sstable

import (
	"encoding/binary"
	"sort"
)

// Index is the compute-side lookup structure for one SSTable (§VI).
// For ByteAddr tables there is one record per entry: (internal key, entry
// offset, key length, value length) — enough to address a single key-value
// pair with one RDMA read. For Block tables there is one record per block:
// (last internal key, block offset, block length, entry count).
type Index struct {
	raw    []byte
	format Format
	keys   [][]byte
	offs   []uint32
	aux1   []uint32 // byteaddr: klen; block: block length
	aux2   []uint32 // byteaddr: vlen; block: entry count
}

// NewIndexFromRaw reconstructs an index from its serialized form (e.g. a
// table footer read from the memory node's own DRAM).
func NewIndexFromRaw(raw []byte, format Format) Index {
	ix := Index{raw: raw, format: format}
	ix.parse()
	return ix
}

// Raw returns the serialized index bytes.
func (ix *Index) Raw() []byte { return ix.raw }

// NumRecords returns the number of index records.
func (ix *Index) NumRecords() int { return len(ix.keys) }

// RawLen returns the serialized index size in bytes (what the compute node
// caches in local memory).
func (ix *Index) RawLen() int { return len(ix.raw) }

// Record returns the i-th record's fields.
func (ix *Index) Record(i int) (key []byte, off, a, b uint32) {
	return ix.keys[i], ix.offs[i], ix.aux1[i], ix.aux2[i]
}

// SeekGE returns the position of the first record with key >= target under
// cmp, or NumRecords() if none. For Block format, records are block last
// keys, so the result is the first block that could contain target.
func (ix *Index) SeekGE(target []byte, cmp func(a, b []byte) int) int {
	return sort.Search(len(ix.keys), func(i int) bool {
		return cmp(ix.keys[i], target) >= 0
	})
}

// parse materializes the search arrays from the raw serialization.
func (ix *Index) parse() {
	b := ix.raw
	if len(b) < 4 {
		return
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// Defensive bound: a record is at least 14 bytes, so a count beyond
	// len/14 means corruption; parse what fits instead of pre-allocating
	// for a lie.
	if maxN := len(b) / 14; n > maxN {
		n = maxN
	}
	ix.keys = make([][]byte, 0, n)
	ix.offs = make([]uint32, 0, n)
	ix.aux1 = make([]uint32, 0, n)
	ix.aux2 = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return
		}
		kl := int(binary.LittleEndian.Uint16(b))
		if len(b) < 2+kl+12 {
			return
		}
		ix.keys = append(ix.keys, b[2:2+kl])
		rest := b[2+kl:]
		ix.offs = append(ix.offs, binary.LittleEndian.Uint32(rest))
		ix.aux1 = append(ix.aux1, binary.LittleEndian.Uint32(rest[4:]))
		ix.aux2 = append(ix.aux2, binary.LittleEndian.Uint32(rest[8:]))
		b = rest[12:]
	}
}

// IndexBuilder accumulates records during table construction.
type IndexBuilder struct {
	format Format
	raw    []byte
	count  uint32
}

// NewIndexBuilder returns a builder for the given format.
func NewIndexBuilder(format Format) *IndexBuilder {
	b := &IndexBuilder{format: format}
	b.raw = binary.LittleEndian.AppendUint32(nil, 0) // count patched in Finish
	return b
}

// Add appends a record. Keys must arrive in ascending order.
func (b *IndexBuilder) Add(key []byte, off, a1, a2 uint32) {
	b.raw = binary.LittleEndian.AppendUint16(b.raw, uint16(len(key)))
	b.raw = append(b.raw, key...)
	b.raw = binary.LittleEndian.AppendUint32(b.raw, off)
	b.raw = binary.LittleEndian.AppendUint32(b.raw, a1)
	b.raw = binary.LittleEndian.AppendUint32(b.raw, a2)
	b.count++
}

// Finish returns the completed, parsed index.
func (b *IndexBuilder) Finish() Index {
	binary.LittleEndian.PutUint32(b.raw, b.count)
	ix := Index{raw: b.raw, format: b.format}
	ix.parse()
	return ix
}
