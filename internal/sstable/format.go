// Package sstable implements dLSM's sorted string tables in two on-"disk"
// (remote memory) formats:
//
//   - Byte-addressable (§VI): the data region is nothing but concatenated
//     [internal key][value] entries. A per-entry index (key, offset,
//     lengths) and a bloom filter live on the compute node, so a point read
//     fetches exactly one value with one RDMA read and a range scan slices
//     entries out of large prefetched chunks with no block unwrapping.
//   - Block-based (RocksDB-style): entries are wrapped into fixed-target
//     blocks with an in-block offset table; a block index maps each block's
//     last key to its extent. Point reads must fetch a whole block (read
//     amplification) and pay per-block wrap/unwrap CPU — the costs dLSM's
//     format eliminates. Used by the RocksDB-RDMA baselines and the
//     dLSM-Block ablation (Fig 13).
//
// Writers stream bytes through a Sink (the async flush pipeline, or the
// memory node's local copier during near-data compaction); readers pull
// bytes through a Fetcher (one-sided RDMA reads, or local slices on the
// memory node).
package sstable

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/bloom"
	"dlsm/internal/rdma"
)

// Format selects the table layout.
type Format int

// Table formats.
const (
	ByteAddr Format = iota // dLSM's block-free layout
	Block                  // RocksDB-style blocks
)

func (f Format) String() string {
	if f == ByteAddr {
		return "byteaddr"
	}
	return "block"
}

// Meta describes one SSTable. The data bytes live in remote memory at Data;
// the index and filter are the compute-side cached metadata (§VI), also
// shipped inside near-data compaction RPC replies.
type Meta struct {
	ID          uint64
	Size        int64 // bytes of the data region
	Extent      int64 // bytes of the allocated extent (>= Size+IndexLen+FilterLen)
	IndexLen    int   // serialized index bytes stored at Data+Size (footer)
	FilterLen   int   // bloom bytes stored at Data+Size+IndexLen
	Count       int   // entries
	Smallest    []byte
	Largest     []byte // internal keys
	MaxSeq      uint64 // newest sequence number in the table (L0 ordering)
	Data        rdma.RemoteAddr
	CreatorNode int // node that allocated the extent (GC routing, §V-B)
	Format      Format
	BlockSize   int // target block size (Block format only)
	Index       Index
	Filter      bloom.Filter
}

// Overlaps reports whether the table's key range intersects [lo, hi] in
// user-key space. nil bounds are unbounded.
func (m *Meta) Overlaps(cmpUser func(a, b []byte) int, lo, hi []byte) bool {
	if lo != nil && cmpUser(userKeyOf(m.Largest), lo) < 0 {
		return false
	}
	if hi != nil && cmpUser(userKeyOf(m.Smallest), hi) > 0 {
		return false
	}
	return true
}

func userKeyOf(ikey []byte) []byte { return ikey[:len(ikey)-8] }

// EncodeMeta serializes a Meta including the index and filter bodies, for
// compaction replies (the compute node caches them, §VI).
func EncodeMeta(m *Meta) []byte { return encodeMeta(m, true) }

// EncodeMetaSlim omits the index and filter bodies. Used for compaction
// arguments: the memory node reloads both from the table footer in its own
// memory, so they never cross the network (§V-A).
func EncodeMetaSlim(m *Meta) []byte { return encodeMeta(m, false) }

func encodeMeta(m *Meta, full bool) []byte {
	b := make([]byte, 0, 96+len(m.Index.raw)+len(m.Filter))
	if full {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, m.ID)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Size))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Extent))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.IndexLen))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.FilterLen))
	b = binary.LittleEndian.AppendUint64(b, m.MaxSeq)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Count))
	b = appendBytes16(b, m.Smallest)
	b = appendBytes16(b, m.Largest)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Data.Node))
	b = binary.LittleEndian.AppendUint32(b, m.Data.RKey)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Data.Off))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.CreatorNode))
	b = append(b, byte(m.Format))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.BlockSize))
	if full {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Index.raw)))
		b = append(b, m.Index.raw...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Filter)))
		b = append(b, m.Filter...)
	}
	return b
}

// DecodeMeta parses a Meta produced by EncodeMeta, returning the remainder
// of the buffer.
func DecodeMeta(b []byte) (*Meta, []byte, error) {
	m := &Meta{}
	var ok bool
	if len(b) < 57 {
		return nil, nil, fmt.Errorf("sstable: short meta")
	}
	full := b[0] == 1
	b = b[1:]
	m.ID = binary.LittleEndian.Uint64(b)
	m.Size = int64(binary.LittleEndian.Uint64(b[8:]))
	m.Extent = int64(binary.LittleEndian.Uint64(b[16:]))
	m.IndexLen = int(binary.LittleEndian.Uint64(b[24:]))
	m.FilterLen = int(binary.LittleEndian.Uint64(b[32:]))
	m.MaxSeq = binary.LittleEndian.Uint64(b[40:])
	m.Count = int(binary.LittleEndian.Uint64(b[48:]))
	b = b[56:]
	if m.Smallest, b, ok = takeBytes16(b); !ok {
		return nil, nil, fmt.Errorf("sstable: bad smallest key")
	}
	if m.Largest, b, ok = takeBytes16(b); !ok {
		return nil, nil, fmt.Errorf("sstable: bad largest key")
	}
	if len(b) < 21 {
		return nil, nil, fmt.Errorf("sstable: short meta tail")
	}
	m.Data.Node = int(binary.LittleEndian.Uint32(b))
	m.Data.RKey = binary.LittleEndian.Uint32(b[4:])
	m.Data.Off = int(binary.LittleEndian.Uint64(b[8:]))
	m.CreatorNode = int(binary.LittleEndian.Uint32(b[16:]))
	m.Format = Format(b[20])
	b = b[21:]
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("sstable: short meta blocksize")
	}
	m.BlockSize = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if !full {
		return m, b, nil
	}
	var raw []byte
	if raw, b, ok = takeBytes32(b); !ok {
		return nil, nil, fmt.Errorf("sstable: bad index")
	}
	m.Index = NewIndexFromRaw(append([]byte(nil), raw...), m.Format)
	var filt []byte
	if filt, b, ok = takeBytes32(b); !ok {
		return nil, nil, fmt.Errorf("sstable: bad filter")
	}
	m.Filter = bloom.Filter(append([]byte(nil), filt...))
	return m, b, nil
}

func appendBytes16(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p)))
	return append(b, p...)
}

func takeBytes16(b []byte) ([]byte, []byte, bool) {
	if len(b) < 2 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, nil, false
	}
	return append([]byte(nil), b[2:2+n]...), b[2+n:], true
}

func takeBytes32(b []byte) ([]byte, []byte, bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, false
	}
	return b[4 : 4+n], b[4+n:], true
}
