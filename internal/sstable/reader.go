package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"dlsm/internal/keys"
)

// Reader serves point lookups and scans over one SSTable through a Fetcher.
// Readers are thread-local (they share the fetcher's scratch buffer).
type Reader struct {
	meta  *Meta
	fetch Fetcher
	opts  Options
}

// NewReader creates a reader for the table described by meta.
func NewReader(meta *Meta, fetch Fetcher, opts Options) *Reader {
	return &Reader{meta: meta, fetch: fetch, opts: opts}
}

// Meta returns the table metadata.
func (r *Reader) Meta() *Meta { return r.meta }

func (r *Reader) charge(d time.Duration) {
	if r.opts.Charge != nil && d > 0 {
		r.opts.Charge(d)
	}
}

func (r *Reader) countFetch(n int64) {
	if m := r.opts.Metrics; m != nil {
		m.Fetches.Inc()
		m.FetchedBytes.Add(n)
	}
}

// Get looks up ukey at snapshot seq.
// Returns (value, found, deleted): found=false means the table has no
// visible version; deleted=true means a tombstone shadows the key.
func (r *Reader) Get(ukey []byte, seq keys.Seq) (value []byte, found, deleted bool, err error) {
	c := r.opts.Costs
	var kh uint64
	if r.opts.Cache != nil {
		// The negative cache answers repeated bloom-false-positive misses
		// before even the bloom probe is paid. Entries are snapshot-tagged,
		// so a miss recorded by an old-snapshot read never hides versions
		// newer than that snapshot from this one.
		kh = keyHash(ukey)
		if r.opts.Cache.Negative(r.meta.ID, kh, uint64(seq)) {
			return nil, false, false, nil
		}
	}
	if r.meta.Filter != nil {
		r.charge(c.BloomProbe)
		if !r.meta.Filter.MayContain(ukey) {
			if m := r.opts.Metrics; m != nil {
				m.BloomNegatives.Inc()
			}
			return nil, false, false, nil
		}
	}
	lookup := keys.AppendLookup(make([]byte, 0, len(ukey)+keys.TrailerLen), ukey, seq)
	r.charge(c.IndexSearch)
	if r.meta.Format == ByteAddr {
		return r.getByteAddr(ukey, lookup, kh, seq)
	}
	return r.getBlock(ukey, lookup, kh, seq)
}

// fillNegative records a miss at snapshot seq that survived the bloom
// filter, so the next lookup of the same absent key at that snapshot (or
// an older one) skips this table's bloom and index work (and, under the
// block layout, the block fetch).
func (r *Reader) fillNegative(kh uint64, seq keys.Seq) {
	if r.opts.Cache != nil && r.opts.FillCache {
		r.opts.Cache.FillNegative(r.meta.ID, kh, uint64(seq))
	}
}

// getByteAddr resolves the entry from the per-entry index and fetches
// exactly the value bytes — one small RDMA read, no read amplification.
// With a hot-KV cache wired in, the index still resolves the entry (cheap
// compute-local work) but a cache hit replaces the RDMA round trip.
func (r *Reader) getByteAddr(ukey, lookup []byte, kh uint64, seq keys.Seq) (value []byte, found, deleted bool, err error) {
	ix := &r.meta.Index
	i := ix.SeekGE(lookup, keys.Compare)
	if i >= ix.NumRecords() {
		r.fillNegative(kh, seq)
		return nil, false, false, nil
	}
	key, off, klen, vlen := ix.Record(i)
	if !bytes.Equal(keys.UserKey(key), ukey) {
		r.fillNegative(kh, seq)
		return nil, false, false, nil
	}
	_, _, kind, perr := keys.Parse(key)
	if perr != nil {
		return nil, false, false, perr
	}
	if kind == keys.KindDelete {
		// Tombstones need no data fetch: the index alone answers them.
		return nil, true, true, nil
	}
	if kc := r.opts.Cache; kc != nil {
		if v, ok := kc.GetValue(r.meta.ID, uint32(i)); ok {
			return v, true, false, nil
		}
	}
	b, err := r.fetch.ReadAt(int(off)+int(klen), int(vlen))
	if err != nil {
		return nil, false, false, err
	}
	r.countFetch(int64(vlen))
	r.charge(r.opts.Costs.EntryParse)
	if kc := r.opts.Cache; kc != nil && r.opts.FillCache {
		kc.FillValue(r.meta.ID, uint32(i), b)
	}
	return b, true, false, nil
}

// keyHash is FNV-1a over the user key, the fingerprint the negative cache
// stores. It only has to be consistent within this package.
func keyHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// getBlock fetches the whole candidate block and searches inside it — the
// read amplification the byte-addressable layout removes (Fig 13). The
// per-entry value cache does not apply here (the entry index within a block
// is unknowable before the fetch); only the negative cache participates.
func (r *Reader) getBlock(ukey, lookup []byte, kh uint64, seq keys.Seq) (value []byte, found, deleted bool, err error) {
	ix := &r.meta.Index
	bi := ix.SeekGE(lookup, keys.Compare)
	if bi >= ix.NumRecords() {
		r.fillNegative(kh, seq)
		return nil, false, false, nil
	}
	_, off, blen, _ := ix.Record(bi)
	raw, err := r.fetch.ReadAt(int(off), int(blen))
	if err != nil {
		return nil, false, false, err
	}
	r.countFetch(int64(blen))
	blk, err := parseBlock(raw)
	if err != nil {
		return nil, false, false, err
	}
	c := r.opts.Costs
	r.charge(c.BlockTouch + time.Duration(float64(blen)*c.BlockByte))
	j := blk.seekGE(lookup)
	if j >= blk.count {
		r.fillNegative(kh, seq)
		return nil, false, false, nil
	}
	ikey, val := blk.entry(j)
	if !bytes.Equal(keys.UserKey(ikey), ukey) {
		r.fillNegative(kh, seq)
		return nil, false, false, nil
	}
	_, _, kind, perr := keys.Parse(ikey)
	if perr != nil {
		return nil, false, false, perr
	}
	if kind == keys.KindDelete {
		return nil, true, true, nil
	}
	return val, true, false, nil
}

// block is a parsed in-memory view of one data block.
type block struct {
	data    []byte
	offsets []byte // u32 array region
	count   int
}

func parseBlock(raw []byte) (*block, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("sstable: short block (%d bytes)", len(raw))
	}
	count := int(binary.LittleEndian.Uint32(raw[len(raw)-4:]))
	tail := 4 + 4*count
	if count < 0 || len(raw) < tail {
		return nil, fmt.Errorf("sstable: corrupt block trailer (count=%d len=%d)", count, len(raw))
	}
	return &block{
		data:    raw[:len(raw)-tail],
		offsets: raw[len(raw)-tail : len(raw)-4],
		count:   count,
	}, nil
}

func (b *block) entryOff(i int) int {
	return int(binary.LittleEndian.Uint32(b.offsets[4*i:]))
}

func (b *block) entry(i int) (ikey, value []byte) {
	off := b.entryOff(i)
	kl := int(binary.LittleEndian.Uint16(b.data[off:]))
	vl := int(binary.LittleEndian.Uint32(b.data[off+2:]))
	off += 6
	return b.data[off : off+kl], b.data[off+kl : off+kl+vl]
}

// seekGE returns the first in-block position with key >= target.
func (b *block) seekGE(target []byte) int {
	lo, hi := 0, b.count
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := b.entry(mid)
		if keys.Compare(k, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
