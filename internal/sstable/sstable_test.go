package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"dlsm/internal/keys"
)

// memSink/memFetcher run tables fully in host memory for format testing.
type memSink struct{ buf *[]byte }

func (s memSink) Write(p []byte) { *s.buf = append(*s.buf, p...) }
func (s memSink) Finish() error  { return nil }

type memFetcher struct{ buf *[]byte }

func (f memFetcher) ReadAt(off, n int) ([]byte, error) {
	b := *f.buf
	if off+n > len(b) {
		return nil, fmt.Errorf("memFetcher: read [%d,+%d) beyond %d", off, n, len(b))
	}
	return b[off : off+n], nil
}

// buildTable writes n entries "key-%06d" -> "value-%06d" (every key at seq
// i+1) in the given format and returns a reader over it.
func buildTable(t *testing.T, format Format, blockSize, n int) (*Reader, *Meta) {
	t.Helper()
	var buf []byte
	w := NewWriter(format, memSink{&buf}, blockSize, 10, Options{})
	for i := 0; i < n; i++ {
		ik := keys.Append(nil, []byte(fmt.Sprintf("key-%06d", i)), keys.Seq(i+1), keys.KindSet)
		w.Add(ik, []byte(fmt.Sprintf("value-%06d", i)))
	}
	res, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n {
		t.Fatalf("Count = %d, want %d", res.Count, n)
	}
	if want := res.Size + int64(res.IndexLen) + int64(res.FilterLen); int64(len(buf)) != want {
		t.Fatalf("emitted %d bytes, want data+footer = %d", len(buf), want)
	}
	meta := &Meta{
		ID: 1, Size: res.Size, Count: res.Count,
		Smallest: res.Smallest, Largest: res.Largest,
		Format: format, BlockSize: blockSize,
		Index: res.Index, Filter: res.Filter,
	}
	return NewReader(meta, memFetcher{&buf}, Options{}), meta
}

func testGetAllFormats(t *testing.T, format Format, blockSize int) {
	r, _ := buildTable(t, format, blockSize, 1000)
	for _, i := range []int{0, 1, 499, 998, 999} {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, found, deleted, err := r.Get(k, keys.MaxSeq)
		if err != nil || !found || deleted {
			t.Fatalf("%v Get(%s) = found=%v deleted=%v err=%v", format, k, found, deleted, err)
		}
		if want := fmt.Sprintf("value-%06d", i); string(v) != want {
			t.Fatalf("%v Get(%s) = %q, want %q", format, k, v, want)
		}
	}
	// Missing keys: before, between, after.
	for _, k := range []string{"key-", "key-000500x", "zzz"} {
		_, found, _, err := r.Get([]byte(k), keys.MaxSeq)
		if err != nil || found {
			t.Fatalf("%v Get(%q) found=%v err=%v, want miss", format, k, found, err)
		}
	}
}

func TestGetByteAddr(t *testing.T) { testGetAllFormats(t, ByteAddr, 0) }
func TestGetBlock8K(t *testing.T)  { testGetAllFormats(t, Block, 8<<10) }
func TestGetBlock2K(t *testing.T)  { testGetAllFormats(t, Block, 2<<10) }
func TestGetBlockTiny(t *testing.T) {
	// Entry-sized blocks: the Memory-RocksDB-RDMA configuration.
	testGetAllFormats(t, Block, 1)
}

func TestSnapshotVisibility(t *testing.T) {
	for _, format := range []Format{ByteAddr, Block} {
		var buf []byte
		w := NewWriter(format, memSink{&buf}, 4096, 10, Options{})
		ik1 := keys.Append(nil, []byte("k"), 10, keys.KindSet) // newer first
		ik2 := keys.Append(nil, []byte("k"), 5, keys.KindSet)
		w.Add(ik1, []byte("new"))
		w.Add(ik2, []byte("old"))
		res, _ := w.Finish()
		meta := &Meta{Size: res.Size, Count: res.Count, Format: format, BlockSize: 4096, Index: res.Index, Filter: res.Filter}
		r := NewReader(meta, memFetcher{&buf}, Options{})

		v, found, _, _ := r.Get([]byte("k"), keys.MaxSeq)
		if !found || string(v) != "new" {
			t.Fatalf("%v: Get@max = %q, want new", format, v)
		}
		v, found, _, _ = r.Get([]byte("k"), 7)
		if !found || string(v) != "old" {
			t.Fatalf("%v: Get@7 = %q, want old", format, v)
		}
		_, found, _, _ = r.Get([]byte("k"), 3)
		if found {
			t.Fatalf("%v: Get@3 should miss", format)
		}
	}
}

func TestTombstoneNeedsNoFetch(t *testing.T) {
	for _, format := range []Format{ByteAddr, Block} {
		var buf []byte
		w := NewWriter(format, memSink{&buf}, 4096, 10, Options{})
		w.Add(keys.Append(nil, []byte("dead"), 5, keys.KindDelete), nil)
		res, _ := w.Finish()
		meta := &Meta{Size: res.Size, Count: res.Count, Format: format, BlockSize: 4096, Index: res.Index, Filter: res.Filter}
		r := NewReader(meta, memFetcher{&buf}, Options{})
		_, found, deleted, err := r.Get([]byte("dead"), keys.MaxSeq)
		if err != nil || !found || !deleted {
			t.Fatalf("%v: tombstone = found=%v deleted=%v err=%v", format, found, deleted, err)
		}
	}
}

func testIterate(t *testing.T, format Format, blockSize, prefetch int) {
	r, _ := buildTable(t, format, blockSize, 500)
	it := r.NewIterator(prefetch)
	i := 0
	for it.First(); it.Valid(); it.Next() {
		wantK := fmt.Sprintf("key-%06d", i)
		if string(keys.UserKey(it.Key())) != wantK {
			t.Fatalf("%v/%d: key[%d] = %q, want %q", format, prefetch, i, it.Key(), wantK)
		}
		if want := fmt.Sprintf("value-%06d", i); string(it.Value()) != want {
			t.Fatalf("%v/%d: value[%d] = %q, want %q", format, prefetch, i, it.Value(), want)
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != 500 {
		t.Fatalf("%v/%d: iterated %d entries, want 500", format, prefetch, i)
	}
}

func TestIterateByteAddrPrefetch(t *testing.T)   { testIterate(t, ByteAddr, 0, 1<<20) }
func TestIterateByteAddrNoPrefetch(t *testing.T) { testIterate(t, ByteAddr, 0, 0) }
func TestIterateByteAddrTinyPrefetch(t *testing.T) {
	testIterate(t, ByteAddr, 0, 100) // smaller than one entry pair
}
func TestIterateBlockPrefetch(t *testing.T)   { testIterate(t, Block, 2048, 1<<20) }
func TestIterateBlockNoPrefetch(t *testing.T) { testIterate(t, Block, 2048, 0) }

func testSeek(t *testing.T, format Format, blockSize int) {
	r, _ := buildTable(t, format, blockSize, 100)
	it := r.NewIterator(1 << 20)

	seek := keys.AppendLookup(nil, []byte("key-000050"), keys.MaxSeq)
	it.SeekGE(seek)
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000050" {
		t.Fatalf("%v: SeekGE(key-000050) at %q", format, it.Key())
	}
	// Seek between keys lands on the next one.
	seek = keys.AppendLookup(nil, []byte("key-000050a"), keys.MaxSeq)
	it.SeekGE(seek)
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000051" {
		t.Fatalf("%v: SeekGE(between) at %q", format, it.Key())
	}
	// Seek past the end.
	seek = keys.AppendLookup(nil, []byte("zzz"), keys.MaxSeq)
	it.SeekGE(seek)
	if it.Valid() {
		t.Fatalf("%v: SeekGE(zzz) should be invalid, at %q", format, it.Key())
	}
}

func TestSeekByteAddr(t *testing.T) { testSeek(t, ByteAddr, 0) }
func TestSeekBlock(t *testing.T)    { testSeek(t, Block, 2048) }

func TestEncodeDecodeMetaRoundTrip(t *testing.T) {
	_, meta := buildTable(t, ByteAddr, 0, 100)
	meta.Data.Node, meta.Data.RKey, meta.Data.Off = 3, 7, 123456
	meta.CreatorNode = 3

	b := EncodeMeta(meta)
	got, rest, err := DecodeMeta(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if got.ID != meta.ID || got.Size != meta.Size || got.Count != meta.Count ||
		!bytes.Equal(got.Smallest, meta.Smallest) || !bytes.Equal(got.Largest, meta.Largest) ||
		got.Data != meta.Data || got.CreatorNode != meta.CreatorNode || got.Format != meta.Format {
		t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got, meta)
	}
	if got.Index.NumRecords() != meta.Index.NumRecords() {
		t.Fatalf("index records = %d, want %d", got.Index.NumRecords(), meta.Index.NumRecords())
	}
	// The decoded table must still serve reads.
	k0, _, _, _ := got.Index.Record(0)
	if !bytes.Equal(k0, meta.Smallest) {
		t.Fatal("decoded index record 0 mismatch")
	}
	if !got.Filter.MayContain([]byte("key-000050")) {
		t.Fatal("decoded filter lost keys")
	}
}

func TestDecodeMetaCorrupt(t *testing.T) {
	_, meta := buildTable(t, Block, 2048, 10)
	b := EncodeMeta(meta)
	for _, cut := range []int{0, 3, 10, len(b) / 2, len(b) - 1} {
		if _, _, err := DecodeMeta(b[:cut]); err == nil {
			t.Fatalf("DecodeMeta of %d-byte prefix succeeded", cut)
		}
	}
}

func TestMetaOverlaps(t *testing.T) {
	_, meta := buildTable(t, ByteAddr, 0, 100) // key-000000 .. key-000099
	cmp := bytes.Compare
	cases := []struct {
		lo, hi string
		want   bool
	}{
		{"key-000000", "key-000099", true},
		{"a", "key-000000", true},
		{"key-000099", "z", true},
		{"a", "b", false},
		{"z", "zz", false},
		{"key-000050", "key-000050", true},
	}
	for _, c := range cases {
		if got := meta.Overlaps(cmp, []byte(c.lo), []byte(c.hi)); got != c.want {
			t.Fatalf("Overlaps(%q,%q) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if !meta.Overlaps(cmp, nil, nil) {
		t.Fatal("unbounded range must overlap")
	}
}

func TestBlockSizesProduceExpectedBlockCounts(t *testing.T) {
	// 1000 entries x ~45B: with 8KB blocks expect far fewer index records
	// than with entry-sized blocks.
	_, meta8k := buildTable(t, Block, 8<<10, 1000)
	_, metaTiny := buildTable(t, Block, 1, 1000)
	if meta8k.Index.NumRecords() >= metaTiny.Index.NumRecords() {
		t.Fatalf("8KB blocks %d records >= tiny blocks %d records",
			meta8k.Index.NumRecords(), metaTiny.Index.NumRecords())
	}
	if metaTiny.Index.NumRecords() != 1000 {
		t.Fatalf("entry-sized blocks: %d records, want 1000", metaTiny.Index.NumRecords())
	}
}

func TestByteAddrIndexAddressesEveryEntry(t *testing.T) {
	_, meta := buildTable(t, ByteAddr, 0, 257)
	if meta.Index.NumRecords() != 257 {
		t.Fatalf("byteaddr index has %d records, want 257", meta.Index.NumRecords())
	}
}

func TestEmptyTableIterator(t *testing.T) {
	for _, format := range []Format{ByteAddr, Block} {
		var buf []byte
		w := NewWriter(format, memSink{&buf}, 4096, 10, Options{})
		res, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		meta := &Meta{Size: res.Size, Format: format, Index: res.Index, Filter: res.Filter}
		r := NewReader(meta, memFetcher{&buf}, Options{})
		it := r.NewIterator(0)
		it.First()
		if it.Valid() {
			t.Fatalf("%v: empty table iterator valid", format)
		}
	}
}
