package sstable

import (
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Sink receives the sequential byte stream of a table under construction.
// Implementations: the asynchronous RDMA flush pipeline (internal/flush),
// the memory node's local copier (near-data compaction), and the
// RDMA-oriented file system used by the RocksDB baselines.
type Sink interface {
	// Write appends p to the table; p is not retained.
	Write(p []byte)
	// Finish completes the stream; on return the bytes are durable in
	// their destination memory.
	Finish() error
}

// Fetcher reads byte ranges of a table's data region.
type Fetcher interface {
	// ReadAt returns n bytes at offset off. The slice is valid only until
	// the next ReadAt on this fetcher (readers are thread-local).
	ReadAt(off, n int) ([]byte, error)
}

// Charger accounts virtual CPU time to the node running the code; nil
// means no accounting (unit tests).
type Charger func(d time.Duration)

// chargeBatcher coalesces many tiny CPU charges into scheduler-friendly
// batches; fine-grained per-entry charging would swamp the event queue.
type chargeBatcher struct {
	charge  Charger
	pending time.Duration
}

const chargeFlushThreshold = 20 * time.Microsecond

func (c *chargeBatcher) add(d time.Duration) {
	if c.charge == nil {
		return
	}
	c.pending += d
	if c.pending >= chargeFlushThreshold {
		c.charge(c.pending)
		c.pending = 0
	}
}

func (c *chargeBatcher) flush() {
	if c.charge != nil && c.pending > 0 {
		c.charge(c.pending)
		c.pending = 0
	}
}

// ReaderMetrics holds the telemetry handles table readers report into.
// Fields may be nil (nil handles are inert); one ReaderMetrics is typically
// shared by all readers of a DB.
type ReaderMetrics struct {
	// BloomNegatives counts lookups the bloom filter answered without any
	// data fetch.
	BloomNegatives *telemetry.Counter
	// Fetches counts data-region reads issued through the Fetcher.
	Fetches *telemetry.Counter
	// FetchedBytes counts the bytes those reads pulled — per-entry values
	// under ByteAddr, whole blocks under the block layout (Fig 13's read
	// amplification shows up here).
	FetchedBytes *telemetry.Counter
}

// ValueCache is the compute-side hot-KV cache consulted by point reads
// (implemented by internal/cache). Values are keyed by (table file number,
// entry index) — table files are immutable and ids are never reused, so
// cached values cannot go stale. The negative side records misses that
// survived the bloom filter, keyed by (table, user-key hash) and tagged
// with the read snapshot: a miss at snapshot S only answers readers at
// snapshots <= S, so an old-snapshot read can never hide newer versions
// from current readers. All methods must be safe for concurrent use and
// account their own virtual CPU.
type ValueCache interface {
	// GetValue returns a stable copy of the cached value, if present.
	GetValue(table uint64, entry uint32) ([]byte, bool)
	// FillValue caches a copy of val under (table, entry).
	FillValue(table uint64, entry uint32, val []byte)
	// Negative reports a recorded bloom-surviving miss valid at snapshot
	// snap (a sequence number widened to uint64).
	Negative(table, keyHash, snap uint64) bool
	// FillNegative records a bloom-surviving miss observed at snapshot snap.
	FillNegative(table, keyHash, snap uint64)
}

// Options bundles the cost model, charger, and metrics used by readers and
// writers.
type Options struct {
	Costs   sim.CostModel
	Charge  Charger
	Metrics *ReaderMetrics

	// Cache, when non-nil, is the hot-KV cache point reads consult before
	// fetching from remote memory. Scans leave it nil (bypass): one value
	// per RDMA round trip is where caching pays; prefetched chunks are not.
	Cache ValueCache
	// FillCache gates inserting fetched values and negative results into
	// Cache (ReadOptions.FillCache); lookups happen regardless.
	FillCache bool

	// Build-splitting controls for three-layer write-path offloading
	// (DESIGN.md §11). All false by default, leaving writer behavior —
	// bytes and CPU charges — exactly as before. A builder running on one
	// node sets Skip* for the sections another node constructs, and
	// DeferFooter when the caller places the footer sections itself.
	SkipIndex   bool // don't construct the block index
	SkipFilter  bool // don't construct the bloom filter
	SkipData    bool // track geometry only: no data writes, no data charges
	DeferFooter bool // Finish returns index/filter without writing them to the sink
}

// QPFetcher reads table bytes from remote memory with one-sided RDMA reads
// through a thread-local queue pair into a registered scratch buffer.
type QPFetcher struct {
	qp      *rdma.QP
	base    rdma.RemoteAddr
	scratch *rdma.MemoryRegion
}

// NewQPFetcher creates a fetcher for the table data at base.
func NewQPFetcher(qp *rdma.QP, base rdma.RemoteAddr) *QPFetcher {
	return &QPFetcher{qp: qp, base: base}
}

// ReadAt performs one RDMA read of [off, off+n) of the table.
func (f *QPFetcher) ReadAt(off, n int) ([]byte, error) {
	if f.scratch == nil || f.scratch.Size() < n {
		size := 256 << 10
		for size < n {
			size *= 2
		}
		f.scratch = f.qp.Node().Register(size)
	}
	if err := f.qp.ReadSync(f.scratch, 0, f.base.Add(off), n); err != nil {
		return nil, err
	}
	return f.scratch.Bytes(0, n), nil
}

// LocalFetcher serves table bytes from a local memory region — the memory
// node's view of its own SSTables during near-data compaction, where reads
// cost no network time.
type LocalFetcher struct {
	mr   *rdma.MemoryRegion
	base int
}

// NewLocalFetcher wraps the extent at base within mr.
func NewLocalFetcher(mr *rdma.MemoryRegion, base int) *LocalFetcher {
	return &LocalFetcher{mr: mr, base: base}
}

// ReadAt returns a direct slice of local memory.
func (f *LocalFetcher) ReadAt(off, n int) ([]byte, error) {
	return f.mr.Bytes(f.base+off, n), nil
}

// LocalSink writes table bytes directly into a local memory region — the
// near-data compactor's output path (§V-A): compaction output never
// crosses the network.
type LocalSink struct {
	mr  *rdma.MemoryRegion
	off int
}

// NewLocalSink appends at base within mr.
func NewLocalSink(mr *rdma.MemoryRegion, base int) *LocalSink {
	return &LocalSink{mr: mr, off: base}
}

// Write copies p into the region.
func (s *LocalSink) Write(p []byte) {
	copy(s.mr.Bytes(s.off, len(p)), p)
	s.off += len(p)
}

// Finish is immediate for local memory.
func (s *LocalSink) Finish() error { return nil }
