package sstable

import (
	"fmt"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/rdma"
	"dlsm/internal/readahead"
	"dlsm/internal/sim"
)

// entry is one KV pair for edge-case table construction.
type entry struct {
	key string
	val []byte
}

func valOf(i, size int) []byte {
	v := make([]byte, size)
	copy(v, fmt.Sprintf("value-%06d-", i))
	return v
}

func uniformEntries(n, valSize int) []entry {
	out := make([]entry, n)
	for i := range out {
		out[i] = entry{key: fmt.Sprintf("key-%06d", i), val: valOf(i, valSize)}
	}
	return out
}

// remoteTable builds a table from entries, places it in a registered
// region on a simulated memory node and runs fn inside the simulation
// with iterator factories for both the synchronous path and, when
// depth > 1, a pipelined-readahead path on its own QP.
func remoteTable(t *testing.T, format Format, blockSize int, entries []entry,
	fn func(env *sim.Env, r *Reader, newIter func(prefetch, depth int) Iterator)) {
	t.Helper()
	var buf []byte
	w := NewWriter(format, memSink{&buf}, blockSize, 10, Options{})
	for i, e := range entries {
		w.Add(keys.Append(nil, []byte(e.key), keys.Seq(i+1), keys.KindSet), e.val)
	}
	res, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 4)
	mn := fab.AddNode("memory", 4)
	env.Run(func() {
		mr := mn.Register(len(buf) + 1)
		copy(mr.Bytes(0, len(buf)), buf)
		meta := &Meta{
			ID: 1, Size: res.Size, Count: res.Count,
			Smallest: res.Smallest, Largest: res.Largest,
			Format: format, BlockSize: blockSize,
			Index: res.Index, Filter: res.Filter,
			Data: mr.Addr(0),
		}
		qp := cn.NewQP(mn)
		r := NewReader(meta, NewQPFetcher(qp, meta.Data), Options{})
		pool := readahead.NewPool(cn, 1<<20)
		newIter := func(prefetch, depth int) Iterator {
			if depth <= 1 {
				return r.NewIterator(prefetch)
			}
			return r.NewIteratorOpts(IterOpts{
				Prefetch: prefetch,
				Readahead: &readahead.Config{
					QP: cn.NewQP(mn), OwnQP: true, Base: meta.Data,
					Pool: pool, Depth: depth, MaxWindow: prefetch,
				},
			})
		}
		fn(env, r, newIter)
		qp.Close()
		fab.Close()
	})
	env.Wait()
}

// iterMatrix runs a sub-test for both formats at depth 1 and depth 4.
func iterMatrix(t *testing.T, entries []entry, prefetch int,
	check func(t *testing.T, it Iterator, entries []entry)) {
	for _, format := range []Format{ByteAddr, Block} {
		for _, depth := range []int{1, 4} {
			name := fmt.Sprintf("%v/depth%d", format, depth)
			t.Run(name, func(t *testing.T) {
				remoteTable(t, format, 2<<10, entries,
					func(env *sim.Env, r *Reader, newIter func(int, int) Iterator) {
						it := newIter(prefetch, depth)
						check(t, it, entries)
						it.Close()
					})
			})
		}
	}
}

func checkFullScan(t *testing.T, it Iterator, entries []entry) {
	t.Helper()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if i >= len(entries) {
			t.Fatalf("iterated past %d entries", len(entries))
		}
		if got := string(keys.UserKey(it.Key())); got != entries[i].key {
			t.Fatalf("key[%d] = %q, want %q", i, got, entries[i].key)
		}
		if got := it.Value(); string(got) != string(entries[i].val) {
			t.Fatalf("value[%d] mismatch (%d vs %d bytes)", i, len(got), len(entries[i].val))
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("iterated %d entries, want %d", i, len(entries))
	}
}

func TestIterSeekPastLastKey(t *testing.T) {
	iterMatrix(t, uniformEntries(200, 40), 4<<10, func(t *testing.T, it Iterator, entries []entry) {
		it.SeekGE(keys.AppendLookup(nil, []byte("zzz"), keys.MaxSeq))
		if it.Valid() {
			t.Fatalf("SeekGE(zzz) valid at %q", it.Key())
		}
		// The iterator must recover from an exhausted position.
		it.SeekGE(keys.AppendLookup(nil, []byte(entries[100].key), keys.MaxSeq))
		if !it.Valid() || string(keys.UserKey(it.Key())) != entries[100].key {
			t.Fatalf("re-seek after exhaustion at %q", it.Key())
		}
		if string(it.Value()) != string(entries[100].val) {
			t.Fatal("re-seek value mismatch")
		}
	})
}

func TestIterEmptyTable(t *testing.T) {
	iterMatrix(t, nil, 4<<10, func(t *testing.T, it Iterator, _ []entry) {
		it.First()
		if it.Valid() {
			t.Fatal("empty table First() valid")
		}
		it.SeekGE(keys.AppendLookup(nil, []byte("a"), keys.MaxSeq))
		if it.Valid() {
			t.Fatal("empty table SeekGE() valid")
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIterPrefetchLargerThanTable(t *testing.T) {
	// 50 small entries, multi-MB window: one chunk covers the whole table.
	iterMatrix(t, uniformEntries(50, 40), 8<<20, checkFullScan)
}

// A value much larger than the adaptive window: the chunk planner must
// grow the chunk to the whole entry (or block) instead of splitting a KV
// across chunk boundaries.
func TestIterChunkBoundarySplitsEntry(t *testing.T) {
	entries := uniformEntries(64, 100)
	entries[20].val = valOf(20, 9<<10) // bigger than the 4KB min window and the 2KB block size target
	entries[40].val = valOf(40, 6<<10)
	iterMatrix(t, entries, 4<<10, checkFullScan)
}

// Interleaved seeks and scans at depth > 1: seeking backwards abandons the
// pipelined run, seeking forward skips chunks; contents must match the
// synchronous iterator exactly.
func TestIterSeekScanPipelined(t *testing.T) {
	entries := uniformEntries(400, 120)
	for _, format := range []Format{ByteAddr, Block} {
		t.Run(format.String(), func(t *testing.T) {
			remoteTable(t, format, 2<<10, entries,
				func(env *sim.Env, r *Reader, newIter func(int, int) Iterator) {
					sync := newIter(8<<10, 1)
					pipe := newIter(8<<10, 4)
					for _, start := range []int{350, 0, 123, 399, 42} {
						target := keys.AppendLookup(nil, []byte(entries[start].key), keys.MaxSeq)
						sync.SeekGE(target)
						pipe.SeekGE(target)
						for n := 0; n < 60; n++ {
							if sync.Valid() != pipe.Valid() {
								t.Fatalf("start %d step %d: valid %v vs %v", start, n, sync.Valid(), pipe.Valid())
							}
							if !sync.Valid() {
								break
							}
							if string(sync.Key()) != string(pipe.Key()) {
								t.Fatalf("start %d step %d: key %q vs %q", start, n, sync.Key(), pipe.Key())
							}
							if string(sync.Value()) != string(pipe.Value()) {
								t.Fatalf("start %d step %d: value mismatch at %q", start, n, sync.Key())
							}
							sync.Next()
							pipe.Next()
						}
					}
					sync.Close()
					pipe.Close()
				})
		})
	}
}
