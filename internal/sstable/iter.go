package sstable

import (
	"sort"
	"time"

	"dlsm/internal/keys"
	"dlsm/internal/readahead"
)

// Iterator is the common scan interface over MemTables, SSTables and merged
// views. Key returns an internal key; Value is valid until the next
// positioning call (fetch buffers are reused). Close releases prefetch
// resources (pipelined fetch buffers, per-iterator QPs) and is required
// even mid-scan; it is idempotent and a no-op for purely in-memory or
// synchronous iterators.
type Iterator interface {
	First()
	SeekGE(ikey []byte)
	Valid() bool
	Next()
	Key() []byte
	Value() []byte
	Error() error
	Close()
}

// IterOpts configures a table iterator.
type IterOpts struct {
	// Prefetch is the sequential read-ahead in bytes (§VI: dLSM prefetches
	// multi-MB chunks so range scans do one large RDMA read instead of
	// many small ones); 0 fetches one entry/block at a time.
	Prefetch int
	// Readahead, when non-nil with Depth > 1, pipelines chunk fetches on
	// the config's queue pair so the network overlaps iteration CPU;
	// chunks are planned on entry/block boundaries from the table index,
	// with an adaptive window growing from one entry-page to Prefetch.
	// Size and MaxWindow are filled in from the table. Nil (or Depth <= 1)
	// is the synchronous path, byte-identical to NewIterator.
	Readahead *readahead.Config
}

// NewIterator returns a synchronous scan iterator for the table reading
// ahead by prefetch bytes.
func (r *Reader) NewIterator(prefetch int) Iterator {
	return r.NewIteratorOpts(IterOpts{Prefetch: prefetch})
}

// NewIteratorOpts is NewIterator with an explicit prefetch policy.
func (r *Reader) NewIteratorOpts(o IterOpts) Iterator {
	var ra *readahead.Scheduler
	if o.Readahead != nil && o.Readahead.Depth > 1 {
		cfg := *o.Readahead
		cfg.Size = int(r.meta.Size)
		if cfg.MaxWindow <= 0 {
			cfg.MaxWindow = o.Prefetch
		}
		ra = readahead.New(cfg, r.chunkEnd)
	}
	if r.meta.Format == ByteAddr {
		return &byteAddrIter{r: r, prefetch: o.Prefetch, pos: -1, ra: ra}
	}
	return &blockIter{r: r, prefetch: o.Prefetch, bi: -1, ra: ra}
}

// chunkEnd plans readahead chunk boundaries: the end of the smallest run
// of whole entries (ByteAddr) or blocks (Block) that starts at off and
// spans at least want bytes, capped at the data region. Aligning chunks
// this way means no entry or block ever straddles two chunks — an entry
// larger than the window simply becomes its own chunk.
func (r *Reader) chunkEnd(off, want int) int {
	size := int(r.meta.Size)
	target := off + want
	if target >= size {
		return size
	}
	ix := &r.meta.Index
	n := ix.NumRecords()
	i := sort.Search(n, func(i int) bool {
		return r.recordEnd(i) >= target
	})
	if i >= n {
		return size
	}
	return r.recordEnd(i)
}

// recordEnd is the data-region end offset of index record i: entry end
// (off+klen+vlen) for ByteAddr, block end (off+blen) for Block.
func (r *Reader) recordEnd(i int) int {
	_, off, a, b := r.meta.Index.Record(i)
	if r.meta.Format == ByteAddr {
		return int(off) + int(a) + int(b)
	}
	return int(off) + int(a)
}

// byteAddrIter walks the per-entry index; keys come from the local index
// for free, values are sliced out of the prefetched chunk with no block
// unwrapping.
type byteAddrIter struct {
	r        *Reader
	prefetch int
	ra       *readahead.Scheduler // nil = synchronous fetches
	pos      int
	chunk    []byte
	chunkLo  int
	chunkHi  int
	err      error
}

func (it *byteAddrIter) First() { it.setPos(0) }

func (it *byteAddrIter) SeekGE(ikey []byte) {
	it.setPos(it.r.meta.Index.SeekGE(ikey, keys.Compare))
}

func (it *byteAddrIter) Valid() bool {
	return it.err == nil && it.pos >= 0 && it.pos < it.r.meta.Index.NumRecords()
}

func (it *byteAddrIter) Next() { it.setPos(it.pos + 1) }

func (it *byteAddrIter) setPos(pos int) {
	it.pos = pos
	if !it.Valid() {
		return
	}
	it.r.charge(it.r.opts.Costs.EntryParse)
}

func (it *byteAddrIter) Key() []byte {
	k, _, _, _ := it.r.meta.Index.Record(it.pos)
	return k
}

func (it *byteAddrIter) Value() []byte {
	_, off, klen, vlen := it.r.meta.Index.Record(it.pos)
	lo, hi := int(off)+int(klen), int(off)+int(klen)+int(vlen)
	if err := it.ensure(lo, hi); err != nil {
		it.err = err
		return nil
	}
	return it.chunk[lo-it.chunkLo : hi-it.chunkLo]
}

// ensure makes [lo, hi) resident in the chunk, reading ahead by the
// prefetch window.
func (it *byteAddrIter) ensure(lo, hi int) error {
	if lo >= it.chunkLo && hi <= it.chunkHi {
		return nil
	}
	if it.ra != nil {
		b, clo, err := it.ra.ReadAt(lo, hi)
		if err != nil {
			return err
		}
		it.chunk, it.chunkLo, it.chunkHi = b, clo, clo+len(b)
		return nil
	}
	n := hi - lo
	if n < it.prefetch {
		n = it.prefetch
	}
	if max := int(it.r.meta.Size) - lo; n > max {
		n = max
	}
	b, err := it.r.fetch.ReadAt(lo, n)
	if err != nil {
		return err
	}
	it.chunk, it.chunkLo, it.chunkHi = b, lo, lo+n
	return nil
}

func (it *byteAddrIter) Error() error { return it.err }

func (it *byteAddrIter) Close() {
	if it.ra != nil {
		it.ra.Close()
		it.ra = nil
	}
}

// blockIter walks block-format tables: every block crossing pays a fetch
// (or a slice of the prefetched run) plus unwrap CPU.
type blockIter struct {
	r        *Reader
	prefetch int
	ra       *readahead.Scheduler // nil = synchronous fetches
	bi       int                  // current block index, -1 unpositioned
	ei       int                  // entry index within block
	blk      *block
	chunk    []byte
	chunkLo  int
	chunkHi  int
	err      error
}

func (it *blockIter) First() {
	if it.r.meta.Index.NumRecords() == 0 {
		it.bi = 0
		return
	}
	if it.loadBlock(0) {
		it.ei = 0
	}
}

func (it *blockIter) SeekGE(ikey []byte) {
	bi := it.r.meta.Index.SeekGE(ikey, keys.Compare)
	if bi >= it.r.meta.Index.NumRecords() {
		it.bi = bi
		return
	}
	if !it.loadBlock(bi) {
		return
	}
	it.ei = it.blk.seekGE(ikey)
	if it.ei >= it.blk.count {
		// Target sorts after this block's last key only when the index
		// pointed us at the final block; advance (possibly to invalid).
		it.advanceBlock()
	}
}

func (it *blockIter) Valid() bool {
	return it.err == nil && it.blk != nil && it.bi < it.r.meta.Index.NumRecords() && it.ei < it.blk.count
}

func (it *blockIter) Next() {
	it.ei++
	it.r.charge(it.r.opts.Costs.EntryParse)
	if it.blk != nil && it.ei >= it.blk.count {
		it.advanceBlock()
	}
}

func (it *blockIter) advanceBlock() {
	if it.loadBlock(it.bi + 1) {
		it.ei = 0
	}
}

// loadBlock makes block bi current, fetching (with read-ahead) and parsing
// it. Returns false when bi is out of range or on error.
func (it *blockIter) loadBlock(bi int) bool {
	it.bi = bi
	it.blk = nil
	ix := &it.r.meta.Index
	if bi < 0 || bi >= ix.NumRecords() {
		return false
	}
	_, off, blen, _ := ix.Record(bi)
	lo, hi := int(off), int(off)+int(blen)
	if lo < it.chunkLo || hi > it.chunkHi {
		if it.ra != nil {
			b, clo, err := it.ra.ReadAt(lo, hi)
			if err != nil {
				it.err = err
				return false
			}
			it.chunk, it.chunkLo, it.chunkHi = b, clo, clo+len(b)
		} else {
			n := hi - lo
			if n < it.prefetch {
				n = it.prefetch
			}
			if max := int(it.r.meta.Size) - lo; n > max {
				n = max
			}
			b, err := it.r.fetch.ReadAt(lo, n)
			if err != nil {
				it.err = err
				return false
			}
			it.chunk, it.chunkLo, it.chunkHi = b, lo, lo+n
		}
	}
	raw := it.chunk[lo-it.chunkLo : hi-it.chunkLo]
	blk, err := parseBlock(raw)
	if err != nil {
		it.err = err
		return false
	}
	c := it.r.opts.Costs
	it.r.charge(c.BlockTouch + time.Duration(float64(blen)*c.BlockByte))
	it.blk = blk
	return true
}

func (it *blockIter) Key() []byte {
	k, _ := it.blk.entry(it.ei)
	return k
}

func (it *blockIter) Value() []byte {
	_, v := it.blk.entry(it.ei)
	return v
}

func (it *blockIter) Error() error { return it.err }

func (it *blockIter) Close() {
	if it.ra != nil {
		it.ra.Close()
		it.ra = nil
	}
}
