package sstable

import (
	"encoding/binary"
	"time"

	"dlsm/internal/bloom"
	"dlsm/internal/keys"
)

// BuildResult is what a writer produces; the engine combines it with the
// destination address and creator node into a Meta.
type BuildResult struct {
	Size      int64 // data-region bytes
	IndexLen  int   // footer: serialized index bytes at Size
	FilterLen int   // footer: bloom bytes at Size+IndexLen
	Count     int
	Smallest  []byte
	Largest   []byte
	Index     Index
	Filter    bloom.Filter
}

// Writer builds one SSTable from entries added in ascending internal-key
// order.
type Writer interface {
	Add(ikey, value []byte)
	// EstimatedSize returns the data bytes emitted so far (sizing output
	// files during compaction).
	EstimatedSize() int64
	// FooterSize estimates the index+filter footer bytes Finish will
	// append, so callers can rotate outputs to fit fixed extents.
	FooterSize() int64
	// Finish completes the table. No more Adds are allowed.
	Finish() (BuildResult, error)
}

// NewWriter returns a writer for the format. blockSize is used only by the
// Block format. bitsPerKey configures the bloom filter (0 disables it).
func NewWriter(format Format, sink Sink, blockSize, bitsPerKey int, opts Options) Writer {
	if format == ByteAddr {
		return newByteAddrWriter(sink, bitsPerKey, opts)
	}
	return newBlockWriter(sink, blockSize, bitsPerKey, opts)
}

// byteAddrWriter emits the dLSM layout: raw concatenated entries, no block
// wrapping, no extra copies (§VI "building an SSTable is accelerated as the
// key-value pairs are directly serialized to the target buffer").
type byteAddrWriter struct {
	sink    Sink
	ib      *IndexBuilder
	userKey [][]byte
	bits    int
	off     int64
	count   int
	small   []byte
	large   []byte
	charges chargeBatcher
	costs   Options
}

func newByteAddrWriter(sink Sink, bitsPerKey int, opts Options) *byteAddrWriter {
	return &byteAddrWriter{
		sink:    sink,
		ib:      NewIndexBuilder(ByteAddr),
		bits:    bitsPerKey,
		charges: chargeBatcher{charge: opts.Charge},
		costs:   opts,
	}
}

func (w *byteAddrWriter) Add(ikey, value []byte) {
	if w.count == 0 {
		w.small = append([]byte(nil), ikey...)
	}
	w.large = append(w.large[:0], ikey...)
	if !w.costs.SkipIndex {
		w.ib.Add(ikey, uint32(w.off), uint32(len(ikey)), uint32(len(value)))
	}
	if w.bits > 0 && !w.costs.SkipFilter {
		w.userKey = append(w.userKey, append([]byte(nil), keys.UserKey(ikey)...))
	}
	n := len(ikey) + len(value)
	if !w.costs.SkipData {
		w.sink.Write(ikey)
		w.sink.Write(value)
		w.charges.add(bytesCost(n, w.costs.Costs.SerializeByte))
	}
	w.off += int64(n)
	w.count++
}

func (w *byteAddrWriter) EstimatedSize() int64 { return w.off }

func (w *byteAddrWriter) FooterSize() int64 {
	return int64(len(w.ib.raw)) + int64(w.count*w.bits/8) + 16
}

func (w *byteAddrWriter) Finish() (BuildResult, error) {
	var f bloom.Filter
	if w.bits > 0 && !w.costs.SkipFilter {
		f = bloom.Build(w.userKey, w.bits)
		if w.costs.Costs.FilterKey > 0 {
			w.charges.add(time.Duration(w.count) * w.costs.Costs.FilterKey)
		}
	}
	ix := w.ib.Finish()
	if !w.costs.SkipIndex && w.costs.Costs.IndexByte > 0 {
		w.charges.add(bytesCost(len(ix.Raw()), w.costs.Costs.IndexByte))
	}
	w.charges.flush()
	// Footer: the index and filter live in the extent right after the
	// data, so the memory node can reload them locally for near-data
	// compaction while the compute node keeps its own cached copy (§V-A).
	if !w.costs.DeferFooter {
		w.sink.Write(ix.Raw())
		w.sink.Write(f)
	}
	if err := w.sink.Finish(); err != nil {
		return BuildResult{}, err
	}
	return BuildResult{
		Size:      w.off,
		IndexLen:  len(ix.Raw()),
		FilterLen: len(f),
		Count:     w.count,
		Smallest:  w.small,
		Largest:   append([]byte(nil), w.large...),
		Index:     ix,
		Filter:    f,
	}, nil
}

// blockWriter emits the RocksDB-style layout. Each block is
//
//	entries... | offsets (u32 x count) | count (u32)
//
// where each entry is [klen u16][vlen u32][ikey][value]. Wrapping entries
// into blocks costs an extra copy plus per-block CPU — exactly the software
// overhead Fig 13 measures against the byte-addressable layout.
type blockWriter struct {
	sink      Sink
	blockSize int
	ib        *IndexBuilder
	userKey   [][]byte
	bits      int

	cur      []byte
	offsets  []uint32
	lastKey  []byte
	blockOff int64
	off      int64
	count    int
	small    []byte
	charges  chargeBatcher
	costs    Options
}

func newBlockWriter(sink Sink, blockSize, bitsPerKey int, opts Options) *blockWriter {
	if blockSize <= 0 {
		blockSize = 8 << 10
	}
	return &blockWriter{
		sink:      sink,
		blockSize: blockSize,
		ib:        NewIndexBuilder(Block),
		bits:      bitsPerKey,
		charges:   chargeBatcher{charge: opts.Charge},
		costs:     opts,
	}
}

func (w *blockWriter) Add(ikey, value []byte) {
	if w.count == 0 {
		w.small = append([]byte(nil), ikey...)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	w.offsets = append(w.offsets, uint32(len(w.cur)))
	w.cur = binary.LittleEndian.AppendUint16(w.cur, uint16(len(ikey)))
	w.cur = binary.LittleEndian.AppendUint32(w.cur, uint32(len(value)))
	w.cur = append(w.cur, ikey...)
	w.cur = append(w.cur, value...)
	if w.bits > 0 && !w.costs.SkipFilter {
		w.userKey = append(w.userKey, append([]byte(nil), keys.UserKey(ikey)...))
	}
	w.count++
	n := len(ikey) + len(value) + 6
	if !w.costs.SkipData {
		w.charges.add(bytesCost(n, w.costs.Costs.SerializeByte))
	}
	if len(w.cur) >= w.blockSize {
		w.flushBlock()
	}
}

func (w *blockWriter) flushBlock() {
	if len(w.offsets) == 0 {
		return
	}
	for _, o := range w.offsets {
		w.cur = binary.LittleEndian.AppendUint32(w.cur, o)
	}
	w.cur = binary.LittleEndian.AppendUint32(w.cur, uint32(len(w.offsets)))
	if !w.costs.SkipIndex {
		w.ib.Add(w.lastKey, uint32(w.blockOff), uint32(len(w.cur)), uint32(len(w.offsets)))
	}
	if !w.costs.SkipData {
		w.sink.Write(w.cur)
		// Block wrapping pays an extra pass over the block bytes plus fixed
		// per-block work.
		w.charges.add(bytesCost(len(w.cur), w.costs.Costs.BlockByte) + w.costs.Costs.BlockTouch)
	}
	w.off = w.blockOff + int64(len(w.cur))
	w.blockOff = w.off
	w.cur = w.cur[:0]
	w.offsets = w.offsets[:0]
}

func (w *blockWriter) EstimatedSize() int64 { return w.blockOff + int64(len(w.cur)) }

func (w *blockWriter) FooterSize() int64 {
	// The in-progress block's index record is not in ib.raw yet; bound it
	// by the current last key.
	return int64(len(w.ib.raw)+len(w.lastKey)+14) + int64(w.count*w.bits/8) + 16
}

func (w *blockWriter) Finish() (BuildResult, error) {
	w.flushBlock()
	var f bloom.Filter
	if w.bits > 0 && !w.costs.SkipFilter {
		f = bloom.Build(w.userKey, w.bits)
		if w.costs.Costs.FilterKey > 0 {
			w.charges.add(time.Duration(w.count) * w.costs.Costs.FilterKey)
		}
	}
	ix := w.ib.Finish()
	if !w.costs.SkipIndex && w.costs.Costs.IndexByte > 0 {
		w.charges.add(bytesCost(len(ix.Raw()), w.costs.Costs.IndexByte))
	}
	w.charges.flush()
	if !w.costs.DeferFooter {
		w.sink.Write(ix.Raw())
		w.sink.Write(f)
	}
	if err := w.sink.Finish(); err != nil {
		return BuildResult{}, err
	}
	return BuildResult{
		Size:      w.blockOff,
		IndexLen:  len(ix.Raw()),
		FilterLen: len(f),
		Count:     w.count,
		Smallest:  w.small,
		Largest:   append([]byte(nil), w.lastKey...),
		Index:     ix,
		Filter:    f,
	}, nil
}

func bytesCost(n int, nsPerByte float64) time.Duration {
	return time.Duration(float64(n) * nsPerByte)
}
