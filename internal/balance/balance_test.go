package balance

import (
	"testing"
	"time"

	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// fakeTarget is an in-memory shard population: operations mutate the
// shard list the way the real shard layer would, and tickLoad scripts the
// per-tick load the balancer observes.
type fakeTarget struct {
	shards  []Shard
	servers int

	splits, merges, migrates int
	nextID                   int
}

func (f *fakeTarget) Shards() []Shard { return append([]Shard(nil), f.shards...) }
func (f *fakeTarget) Servers() int    { return f.servers }

func (f *fakeTarget) find(id int) int {
	for i := range f.shards {
		if f.shards[i].ID == id {
			return i
		}
	}
	return -1
}

func (f *fakeTarget) Split(id int) error {
	i := f.find(id)
	f.splits++
	// The right half starts with the same cumulative counter (monotone).
	right := Shard{ID: f.nextID, Server: f.shards[i].Server, Ops: f.shards[i].Ops, CanSplit: true}
	f.nextID++
	f.shards = append(f.shards[:i+1], append([]Shard{right}, f.shards[i+1:]...)...)
	return nil
}

func (f *fakeTarget) Merge(leftID int) error {
	i := f.find(leftID)
	f.merges++
	f.shards = append(f.shards[:i+1], f.shards[i+2:]...)
	return nil
}

func (f *fakeTarget) Migrate(id, server int) error {
	i := f.find(id)
	f.migrates++
	f.shards[i].Server = server
	return nil
}

// tickLoad advances every shard's cumulative counter by its per-tick rate.
func (f *fakeTarget) tickLoad(rates map[int]int64) {
	for i := range f.shards {
		f.shards[i].Ops += rates[f.shards[i].ID]
	}
}

// harness builds a balancer whose loop never fires (huge interval); tests
// drive b.tick() by hand for deterministic schedules.
func harness(t *testing.T, f *fakeTarget, cfg Config, fn func(b *Balancer)) {
	t.Helper()
	env := sim.NewEnv()
	cfg.Interval = time.Hour
	env.Run(func() {
		r := telemetry.NewRegistry(telemetry.ClockFunc(func() int64 { return int64(env.Now()) }))
		b := New(env, f, cfg, r)
		fn(b)
		b.Close()
	})
	env.Wait()
}

func TestSplitsHotSingleShard(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 1,
		shards: []Shard{{ID: 0, Server: 0, CanSplit: true}}}
	harness(t, f, Config{MinOps: 100}, func(b *Balancer) {
		// One shard carrying all the traffic: the share test must fire
		// even though hottest == mean.
		f.tickLoad(map[int]int64{0: 1000})
		b.tick() // baseline
		f.tickLoad(map[int]int64{0: 1000})
		b.tick()
		if f.splits == 0 {
			t.Fatal("hot single shard never split")
		}
	})
}

func TestNoSplitWhenBalanced(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 2, shards: []Shard{
		{ID: 0, Server: 0, CanSplit: true}, {ID: 1, Server: 0, CanSplit: true}}}
	harness(t, f, Config{MinOps: 100}, func(b *Balancer) {
		for i := 0; i < 6; i++ {
			f.tickLoad(map[int]int64{0: 1000, 1: 1000})
			b.tick()
		}
		if f.splits != 0 {
			t.Fatalf("balanced shards split %d times", f.splits)
		}
	})
}

func TestNoSplitBelowMinOps(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 1,
		shards: []Shard{{ID: 0, Server: 0, CanSplit: true}}}
	harness(t, f, Config{MinOps: 5000}, func(b *Balancer) {
		for i := 0; i < 4; i++ {
			f.tickLoad(map[int]int64{0: 1000})
			b.tick()
		}
		if f.splits != 0 {
			t.Fatal("trickle-load shard split")
		}
	})
}

func TestMergesColdPairAfterHysteresis(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 3, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}, {ID: 2, Server: 0}}}
	harness(t, f, Config{MinOps: 100, MergeTicks: 3}, func(b *Balancer) {
		f.tickLoad(map[int]int64{0: 1000})
		b.tick() // baseline: every delta 0, total under MinOps — no evidence
		// Shard 0 stays warm; 1 and 2 stay cold. The pair must survive
		// MergeTicks consecutive cold observations before merging.
		f.tickLoad(map[int]int64{0: 1000})
		b.tick() // cold run 1
		f.tickLoad(map[int]int64{0: 1000})
		b.tick() // cold run 2
		if f.merges != 0 {
			t.Fatal("merged before hysteresis elapsed")
		}
		f.tickLoad(map[int]int64{0: 1000})
		b.tick() // cold run 3 → merge
		if f.merges == 0 {
			t.Fatal("cold adjacent pair never merged")
		}
		if len(f.shards) != 2 {
			t.Fatalf("shard count = %d, want 2", len(f.shards))
		}
	})
}

func TestMergeDeferredWhileBusy(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 3, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}, {ID: 2, Server: 0}}}
	// Shard 0 keeps the table over the idle ceiling; (1,2) stay cold far
	// past the hysteresis. MaxShards pins the count so the busy shard is
	// never split out from under the scenario.
	harness(t, f, Config{MinOps: 100, MergeTicks: 2, MergeIdleOps: 4096, MaxShards: 3},
		func(b *Balancer) {
			for i := 0; i < 5; i++ {
				f.tickLoad(map[int]int64{0: 10_000})
				b.tick()
			}
			if f.merges != 0 {
				t.Fatalf("merged while busy (merges=%d)", f.merges)
			}
			// The moment the table quiets, the accumulated cold run pays off.
			f.tickLoad(map[int]int64{0: 1000})
			b.tick()
			if f.merges == 0 {
				t.Fatal("cold pair never merged after the table went idle")
			}
		})
}

func TestIdleTableNeverMerges(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 4, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}, {ID: 2, Server: 0}, {ID: 3, Server: 0}}}
	// A table with no traffic at all gives no skew evidence: with zero
	// totals the mean is zero and every pair would look "cold", so an
	// overnight lull must not fold a healthy geometry flat.
	harness(t, f, Config{MinOps: 100, MergeTicks: 2}, func(b *Balancer) {
		for i := 0; i < 10; i++ {
			b.tick()
		}
		if f.merges != 0 {
			t.Fatalf("idle table merged (merges=%d)", f.merges)
		}
	})
}

func TestColdRunResetsOnActivity(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 2, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}}}
	harness(t, f, Config{MinOps: 100, MergeTicks: 2, MergeRatio: 0.1}, func(b *Balancer) {
		// The baseline tick sees zero deltas (everything "cold"); the warm
		// ticks after it must reset the pair's cold run, so with
		// MergeTicks=2 no merge ever fires.
		f.tickLoad(map[int]int64{0: 1000, 1: 1000})
		b.tick() // baseline (cold run 1: deltas are zero)
		f.tickLoad(map[int]int64{0: 1000, 1: 1000})
		b.tick() // warm → run resets
		f.tickLoad(map[int]int64{0: 1000, 1: 1000})
		b.tick() // warm
		if f.merges != 0 {
			t.Fatalf("active pair merged (merges=%d)", f.merges)
		}
	})
}

func TestMigratesOffHotServer(t *testing.T) {
	f := &fakeTarget{servers: 2, nextID: 4, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}, {ID: 2, Server: 0}, {ID: 3, Server: 1}}}
	harness(t, f, Config{MinOps: 100, MaxShards: 4}, func(b *Balancer) {
		// Server 0 carries 4500 ops/tick against server 1's 300: the
		// imbalance (4500 > 1.75 × 2400) triggers a move; no shard is
		// individually split-hot (and the count is at MaxShards anyway).
		rates := map[int]int64{0: 1500, 1: 1500, 2: 1500, 3: 300}
		for i := 0; i < 3; i++ {
			f.tickLoad(rates)
			b.tick()
		}
		if f.migrates == 0 {
			t.Fatal("imbalanced servers never triggered a migration")
		}
		perSrv := map[int]int{}
		for _, s := range f.shards {
			perSrv[s.Server]++
		}
		if perSrv[0] == 3 {
			t.Fatal("server 0 still has all three shards")
		}
	})
}

func TestDisappearedShardForgotten(t *testing.T) {
	f := &fakeTarget{servers: 1, nextID: 2, shards: []Shard{
		{ID: 0, Server: 0}, {ID: 1, Server: 0}}}
	harness(t, f, Config{MinOps: 100}, func(b *Balancer) {
		f.tickLoad(map[int]int64{0: 500, 1: 500})
		b.tick()
		if _, ok := b.lastOps[1]; !ok {
			t.Fatal("tracked shard missing before removal")
		}
		f.shards = f.shards[:1]
		b.tick()
		if _, ok := b.lastOps[1]; ok {
			t.Fatal("removed shard still tracked")
		}
	})
}
