// Package balance implements the elastic-sharding rebalancer: a control
// loop that watches per-shard load telemetry on the simulated clock and
// issues online split, merge, and migrate operations against the shard
// layer. The policy lives here, decoupled from the mechanism (the shard
// package's cut-over protocol) behind the Target interface, so it can be
// unit-tested against a fake and tuned without touching the data path.
package balance

import (
	"fmt"
	"time"

	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Shard is one routing-table entry's identity and load, as sampled by the
// Target at a decision tick.
type Shard struct {
	ID     int
	Server int
	// Ops is the cumulative operation count (reads + writes) the shard's
	// engine has served; the balancer differences consecutive samples.
	Ops int64
	// Stalls is the cumulative write-stall count — a shard under memtable
	// or L0 pressure is a split candidate even at moderate op rates.
	Stalls int64
	// CanSplit reports whether the shard's key range can be divided (a
	// pivot strictly inside the range is known).
	CanSplit bool
}

// Target is the surface the balancer drives. The shard layer implements
// it; tests implement fakes. All calls run on the simulation clock in the
// balancer's entity.
type Target interface {
	// Shards samples the current routing table, in routing order.
	Shards() []Shard
	// Servers returns the number of memory nodes available for placement.
	Servers() int
	// Split divides the identified shard at a load-weighted pivot.
	Split(id int) error
	// Merge folds the identified shard's right neighbor into it.
	Merge(leftID int) error
	// Migrate moves the identified shard's data to the given server.
	Migrate(id int, server int) error
}

// Config tunes the decision policy. Zero values select the defaults.
type Config struct {
	// Interval is the decision tick period (virtual time).
	Interval time.Duration
	// SplitRatio: split the hottest shard when its per-tick ops exceed
	// SplitRatio × the mean across shards.
	SplitRatio float64
	// SplitShare: also split when one shard carries more than this
	// fraction of the total per-tick ops. The ratio test alone goes blind
	// at small shard counts — with one shard the hottest IS the mean, and
	// with two a 90% shard is still under 2× the mean.
	SplitShare float64
	// MinOps is the per-tick op floor below which a shard is never split
	// or migrated — skew over a trickle is not worth a cut-over.
	MinOps int64
	// MaxShards caps the shard count; splits stop at the cap.
	MaxShards int
	// MergeRatio: a shard is "cold" when its per-tick ops fall under
	// MergeRatio × the mean.
	MergeRatio float64
	// MergeTicks is how many consecutive cold ticks a pair of adjacent
	// shards must accumulate before they merge — hysteresis against
	// oscillating split/merge cycles.
	MergeTicks int
	// MergeIdleOps is the total per-tick op ceiling above which merges
	// are deferred (cold runs keep accumulating). A merge's only payoff
	// is reclaiming memtable/cache budget, and its cut-over bulk-copies
	// the donor shard's whole live set through the compute node — worth
	// it on a quiet table, ruinous in the middle of a heavy workload
	// just because two shards look cold next to a hotspot.
	MergeIdleOps int64
	// MigrateRatio: when one server carries more than MigrateRatio × the
	// per-server mean load, its hottest shard moves to the lightest
	// server.
	MigrateRatio float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.SplitRatio <= 0 {
		c.SplitRatio = 2.0
	}
	if c.SplitShare <= 0 {
		c.SplitShare = 0.55
	}
	if c.MinOps <= 0 {
		c.MinOps = 256
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	if c.MergeRatio <= 0 {
		c.MergeRatio = 0.1
	}
	if c.MergeTicks <= 0 {
		c.MergeTicks = 3
	}
	if c.MergeIdleOps <= 0 {
		c.MergeIdleOps = 4096
	}
	if c.MigrateRatio <= 0 {
		c.MigrateRatio = 1.75
	}
	return c
}

// Balancer runs the decision loop as one simulation entity. At each tick
// it differences cumulative op counters against the previous sample,
// classifies shards, and applies at most one operation — split first
// (relieving overload beats tidying), then migrate, then merge — so the
// system moves in small, observable steps.
type Balancer struct {
	env *sim.Env
	t   Target
	cfg Config
	tel *telemetry.Registry

	mu     *sim.Mutex
	closed bool
	wg     *sim.WaitGroup

	lastOps  map[int]int64 // shard id → cumulative ops at previous tick
	lastStal map[int]int64 // shard id → cumulative stalls at previous tick
	coldRuns map[int]int   // left shard id → consecutive cold ticks of (left, right)
}

// New starts a balancer driving t every cfg.Interval of virtual time.
// Decisions and outcomes are counted in reg under balance.* names; the
// span histogram balance.decide_ns times each executed operation.
func New(env *sim.Env, t Target, cfg Config, reg *telemetry.Registry) *Balancer {
	b := &Balancer{
		env:      env,
		t:        t,
		cfg:      cfg.withDefaults(),
		tel:      reg,
		mu:       sim.NewMutex(env),
		wg:       sim.NewWaitGroup(env),
		lastOps:  map[int]int64{},
		lastStal: map[int]int64{},
		coldRuns: map[int]int{},
	}
	b.wg.Add(1)
	env.Go(func() {
		defer b.wg.Done()
		b.loop()
	})
	return b
}

// Close stops the decision loop and waits for an in-flight tick to finish.
func (b *Balancer) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.wg.Wait()
}

func (b *Balancer) loop() {
	for {
		b.env.Sleep(b.cfg.Interval)
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.tick()
	}
}

// load is one shard's per-tick activity.
type load struct {
	Shard
	dOps   int64
	dStall int64
}

func (b *Balancer) tick() {
	b.tel.Counter("balance.ticks").Add(1)
	shards := b.t.Shards()
	if len(shards) == 0 {
		return
	}

	loads := make([]load, len(shards))
	seen := map[int]bool{}
	var total int64
	for i, s := range shards {
		d := s.Ops - b.lastOps[s.ID]
		if _, ok := b.lastOps[s.ID]; !ok {
			d = 0 // first sight: no baseline, don't mistake history for heat
		}
		ds := s.Stalls - b.lastStal[s.ID]
		if _, ok := b.lastStal[s.ID]; !ok {
			ds = 0
		}
		b.lastOps[s.ID] = s.Ops
		b.lastStal[s.ID] = s.Stalls
		seen[s.ID] = true
		loads[i] = load{Shard: s, dOps: d, dStall: ds}
		total += d
	}
	for id := range b.lastOps {
		if !seen[id] {
			delete(b.lastOps, id)
			delete(b.lastStal, id)
			delete(b.coldRuns, id)
		}
	}
	mean := float64(total) / float64(len(loads))
	b.tel.Gauge("balance.shards").Set(int64(len(loads)))

	if b.trySplit(loads, mean, total) {
		return
	}
	if b.tryMigrate(loads) {
		return
	}
	b.tryMerge(loads, mean, total)
}

// trySplit divides the hottest shard when it dominates — by ratio over
// the mean, by absolute share of the total (the only test that can fire
// at λ=1, where the hottest shard is the mean), or by stalling while
// measurably hotter than the mean. The stall clause needs the heat
// qualifier: under a heavy uniform write load every shard stalls a
// little, and splitting average shards just walks the table to
// MaxShards without relieving anything.
func (b *Balancer) trySplit(loads []load, mean float64, total int64) bool {
	if len(loads) >= b.cfg.MaxShards {
		return false
	}
	best := -1
	for i, l := range loads {
		if !l.CanSplit || l.dOps < b.cfg.MinOps {
			continue
		}
		hot := float64(l.dOps) > b.cfg.SplitRatio*mean ||
			float64(l.dOps) > b.cfg.SplitShare*float64(total) ||
			(l.dStall > 0 && float64(l.dOps) > 1.25*mean)
		if !hot {
			continue
		}
		if best < 0 || l.dOps > loads[best].dOps {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	id := loads[best].ID
	sp := b.tel.StartSpan("balance.decide_ns")
	err := b.t.Split(id)
	sp.End()
	if err != nil {
		b.tel.Counter("balance.split.errors").Add(1)
		return false
	}
	delete(b.coldRuns, id) // geometry changed under this id
	b.tel.Counter("balance.splits").Add(1)
	return true
}

// tryMigrate moves the busiest eligible shard off the most loaded server
// when the per-server imbalance crosses the ratio. Requires ≥2 servers,
// and skips the move when it would just relocate the hotspot.
func (b *Balancer) tryMigrate(loads []load) bool {
	n := b.t.Servers()
	if n < 2 {
		return false
	}
	perSrv := make([]int64, n)
	var total int64
	for _, l := range loads {
		if l.Server >= 0 && l.Server < n {
			perSrv[l.Server] += l.dOps
			total += l.dOps
		}
	}
	if total == 0 {
		return false
	}
	mean := float64(total) / float64(n)
	hotSrv, coldSrv := 0, 0
	for s := 1; s < n; s++ {
		if perSrv[s] > perSrv[hotSrv] {
			hotSrv = s
		}
		if perSrv[s] < perSrv[coldSrv] {
			coldSrv = s
		}
	}
	if float64(perSrv[hotSrv]) <= b.cfg.MigrateRatio*mean || hotSrv == coldSrv {
		return false
	}
	// The hot server's busiest shard moves — but prefer one whose load,
	// added to the cold server, leaves the destination under the bar.
	best := -1
	for i, l := range loads {
		if l.Server != hotSrv || l.dOps < b.cfg.MinOps {
			continue
		}
		if float64(perSrv[coldSrv]+l.dOps) > b.cfg.MigrateRatio*mean {
			continue
		}
		if best < 0 || l.dOps > loads[best].dOps {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	id := loads[best].ID
	sp := b.tel.StartSpan("balance.decide_ns")
	err := b.t.Migrate(id, coldSrv)
	sp.End()
	if err != nil {
		b.tel.Counter("balance.migrate.errors").Add(1)
		return false
	}
	b.tel.Counter("balance.migrates").Add(1)
	return true
}

// tryMerge folds an adjacent cold pair after sustained inactivity. Only
// one merge per tick; the left shard absorbs the right. Above the
// MergeIdleOps ceiling merges are deferred — cold runs keep counting,
// so the fold happens the moment the table quiets down. Below MinOps
// total the tick is skipped entirely: a quiet table says nothing about
// skew (with zero traffic the mean is zero and every pair looks
// "cold"), and acting on it would fold a healthy geometry flat during
// any lull — cold runs freeze until real traffic returns.
func (b *Balancer) tryMerge(loads []load, mean float64, total int64) bool {
	if len(loads) < 2 || total < b.cfg.MinOps {
		return false
	}
	threshold := b.cfg.MergeRatio * mean
	busy := total > b.cfg.MergeIdleOps
	merged := false
	for i := 0; i+1 < len(loads); i++ {
		l, r := loads[i], loads[i+1]
		cold := float64(l.dOps) <= threshold && float64(r.dOps) <= threshold &&
			l.dStall == 0 && r.dStall == 0
		if !cold {
			delete(b.coldRuns, l.ID)
			continue
		}
		if merged {
			continue
		}
		b.coldRuns[l.ID]++
		if busy || b.coldRuns[l.ID] < b.cfg.MergeTicks {
			continue
		}
		sp := b.tel.StartSpan("balance.decide_ns")
		err := b.t.Merge(l.ID)
		sp.End()
		delete(b.coldRuns, l.ID)
		if err != nil {
			b.tel.Counter("balance.merge.errors").Add(1)
			continue
		}
		b.tel.Counter("balance.merges").Add(1)
		merged = true
	}
	return merged
}

// String summarizes the live policy, for logs and tests.
func (b *Balancer) String() string {
	return fmt.Sprintf("balance{interval=%v split>%.1fx merge<%.2fx/%dt migrate>%.2fx max=%d}",
		b.cfg.Interval, b.cfg.SplitRatio, b.cfg.MergeRatio, b.cfg.MergeTicks,
		b.cfg.MigrateRatio, b.cfg.MaxShards)
}
