package flush

import (
	"bytes"
	"testing"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

func testbed() (*sim.Env, *rdma.Fabric, *rdma.Node, *rdma.Node) {
	env := sim.NewEnv()
	f := rdma.NewFabric(env, rdma.EDR100())
	return env, f, f.AddNode("compute", 24), f.AddNode("memory", 12)
}

func TestStreamsBytesCorrectly(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(1 << 20)
		qp := cn.NewQP(mn)
		p := NewPipeline(qp, 4096)
		p.Reset(dst.Addr(0), 1<<20)

		var want []byte
		for i := 0; i < 300; i++ { // ~300 x 1KB spans many 4KB buffers
			chunk := bytes.Repeat([]byte{byte(i)}, 1000)
			p.Write(chunk)
			want = append(want, chunk...)
		}
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		if got := dst.Bytes(0, len(want)); !bytes.Equal(got, want) {
			t.Fatal("remote bytes differ from stream")
		}
		if p.Written() != len(want) {
			t.Fatalf("Written = %d, want %d", p.Written(), len(want))
		}
	})
	env.Wait()
}

func TestWriteLargerThanBuffer(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(1 << 20)
		p := NewPipeline(cn.NewQP(mn), 1024)
		p.Reset(dst.Addr(0), 1<<20)
		big := bytes.Repeat([]byte{0xAB}, 10_000) // ~10 buffers in one call
		p.Write(big)
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst.Bytes(0, len(big)), big) {
			t.Fatal("large write corrupted")
		}
	})
	env.Wait()
}

func TestBufferRecycling(t *testing.T) {
	// Streaming a large table must not allocate one buffer per submission:
	// completed buffers are recycled from the FIFO head.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(16 << 20)
		p := NewPipeline(cn.NewQP(mn), 64<<10)
		p.Reset(dst.Addr(0), 16<<20)
		chunk := make([]byte, 64<<10)
		for i := 0; i < 256; i++ { // 16MB through 64KB buffers
			p.Write(chunk)
		}
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		if p.BuffersAllocated() > DefaultMaxInflight+1 {
			t.Fatalf("allocated %d buffers for 256 submissions; recycling broken", p.BuffersAllocated())
		}
	})
	env.Wait()
}

func TestAsyncOverlapsSerializationAndTransfer(t *testing.T) {
	// With async I/O the producer should not pay full wire time per buffer:
	// total time ~ serialization + wire time overlapped, which is strictly
	// less than the sum of per-buffer (serialize + wait-for-wire) rounds.
	env, f, cn, mn := testbed()
	const total = 8 << 20
	const bufSize = 1 << 20

	elapsedAsync := time.Duration(0)
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(total)
		p := NewPipeline(cn.NewQP(mn), bufSize)
		p.Reset(dst.Addr(0), total)
		chunk := make([]byte, bufSize)
		start := env.Now()
		for i := 0; i < total/bufSize; i++ {
			cn.CPU.Use(200 * time.Microsecond) // model serialization work
			p.Write(chunk)
		}
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		elapsedAsync = time.Duration(env.Now() - start)
	})
	env.Wait()

	wirePerBuf := time.Duration(float64(bufSize) / rdma.EDR100().Bandwidth * 1e9)
	syncLowerBound := 8 * (200*time.Microsecond + wirePerBuf) // serialized alternative
	if elapsedAsync >= syncLowerBound {
		t.Fatalf("async flush took %v, not faster than serialized bound %v", elapsedAsync, syncLowerBound)
	}
}

func TestOverflowDetected(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(4096)
		p := NewPipeline(cn.NewQP(mn), 1024)
		p.Reset(dst.Addr(0), 2048)
		p.Write(make([]byte, 4096))
		if err := p.Finish(); err == nil {
			t.Fatal("overflowing the extent did not error")
		}
	})
	env.Wait()
}

func TestResetReusesAcrossTables(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(64 << 10)
		p := NewPipeline(cn.NewQP(mn), 1024)
		for table := 0; table < 4; table++ {
			p.Reset(dst.Addr(table*16<<10), 16<<10)
			payload := bytes.Repeat([]byte{byte(table + 1)}, 10_000)
			p.Write(payload)
			if err := p.Finish(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst.Bytes(table*16<<10, 10_000), payload) {
				t.Fatalf("table %d bytes wrong", table)
			}
		}
		if p.BuffersAllocated() > 16 {
			t.Fatalf("buffers not reused across Reset: %d", p.BuffersAllocated())
		}
	})
	env.Wait()
}

func TestAccountingAcrossResetCycles(t *testing.T) {
	// Satellite regression: Written must report only the current table's
	// bytes (resetting to 0 on Reset), while BuffersAllocated accumulates
	// across tables yet stays bounded by recycling.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		dst := mn.Register(256 << 10)
		p := NewPipeline(cn.NewQP(mn), 1024)
		for table := 0; table < 5; table++ {
			p.Reset(dst.Addr(table*32<<10), 32<<10)
			if p.Written() != 0 {
				t.Fatalf("table %d: Written = %d after Reset, want 0", table, p.Written())
			}
			size := 5000 * (table + 1)
			p.Write(make([]byte, size))
			if p.Written() != size {
				t.Fatalf("table %d: Written = %d before Finish, want %d", table, p.Written(), size)
			}
			if err := p.Finish(); err != nil {
				t.Fatal(err)
			}
			if p.Written() != size {
				t.Fatalf("table %d: Written = %d after Finish, want %d", table, p.Written(), size)
			}
		}
		if got := p.BuffersAllocated(); got == 0 || got > 5*DefaultMaxInflight {
			t.Fatalf("BuffersAllocated = %d across 5 tables; want >0 and bounded", got)
		}
	})
	env.Wait()
}

func TestPipelineMetrics(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		reg := telemetry.NewRegistry(telemetry.ClockFunc(func() int64 { return int64(env.Now()) }))
		m := Metrics{
			BuffersInFlight:  reg.Gauge("flush.buffers_inflight"),
			BuffersAllocated: reg.Counter("flush.buffers_allocated"),
			ReapWaits:        reg.Counter("flush.reap_waits"),
			BytesSubmitted:   reg.Counter("flush.bytes_submitted"),
		}
		dst := mn.Register(1 << 20)
		p := NewPipeline(cn.NewQP(mn), 4096)
		p.SetMetrics(m)
		p.Reset(dst.Addr(0), 1<<20)
		const total = 100 * 1000
		for i := 0; i < 100; i++ {
			p.Write(make([]byte, 1000))
		}
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		s := reg.Snapshot()
		if got := s.Counters["flush.bytes_submitted"]; got != total {
			t.Fatalf("bytes_submitted = %d, want %d", got, total)
		}
		if got := s.Gauges["flush.buffers_inflight"]; got != 0 {
			t.Fatalf("buffers_inflight = %d after Finish, want 0", got)
		}
		if got := s.Counters["flush.buffers_allocated"]; got != int64(p.BuffersAllocated()) {
			t.Fatalf("buffers_allocated counter = %d, internal = %d", got, p.BuffersAllocated())
		}
		if s.Counters["flush.reap_waits"] == 0 {
			t.Fatal("reap_waits = 0; Finish must count its blocking waits")
		}
	})
	env.Wait()
}
