// Package flush implements dLSM's asynchronous MemTable-flushing pipeline
// (§X-C, Fig 6). The flusher serializes table bytes straight into
// registered write buffers; when a buffer fills, its RDMA write is posted
// asynchronously and serialization continues into the next buffer without
// blocking. In-flight buffers form a FIFO linked queue mirroring the QP's
// send queue: because RDMA completions on one QP are FIFO, each completion
// retires exactly the queue head, whose buffer is recycled.
package flush

import (
	"fmt"

	"dlsm/internal/rdma"
	"dlsm/internal/telemetry"
)

// Metrics holds the telemetry handles a pipeline reports into. Fields may
// be nil (telemetry handles are inert when nil); several pipelines may
// share one Metrics, in which case the numbers aggregate.
type Metrics struct {
	// BuffersInFlight tracks posted-but-unfinished buffers (Fig 6's FIFO
	// occupancy).
	BuffersInFlight *telemetry.Gauge
	// BuffersAllocated counts distinct registered buffers ever created.
	BuffersAllocated *telemetry.Counter
	// ReapWaits counts blocking waits for a completion — the producer
	// outrunning the NIC (backpressure events).
	ReapWaits *telemetry.Counter
	// BytesSubmitted counts payload bytes posted to the wire.
	BytesSubmitted *telemetry.Counter
}

// DefaultBufSize is the per-buffer capacity of the pipeline.
const DefaultBufSize = 1 << 20

// DefaultMaxInflight bounds the number of posted-but-unfinished buffers.
// When the producer outruns the NIC it blocks for the queue head to
// complete — backpressure from the finite pool of registered buffers.
const DefaultMaxInflight = 8

// Pipeline is an sstable.Sink that streams a table into remote memory with
// overlapping serialization and network transfer. It is owned by a single
// flusher thread.
type Pipeline struct {
	node    *rdma.Node
	qp      *rdma.QP
	bufSize int

	dst rdma.RemoteAddr // base of the destination extent
	off int             // next write offset within the extent
	cap int             // destination extent capacity

	cur  *rdma.MemoryRegion // buffer being serialized into
	curN int

	// inflight is the FIFO of posted-but-unfinished buffers (Fig 6's
	// linked list); free holds recycled buffers ready for reuse.
	inflight []*rdma.MemoryRegion
	free     []*rdma.MemoryRegion
	nextCtx  uint64
	err      error

	buffersAllocated int // observability: how many buffers ever created

	m Metrics // nil-field handles are inert, so the zero value is fine
}

// NewPipeline creates a pipeline writing through qp (a thread-local QP of
// the flusher). bufSize <= 0 selects DefaultBufSize.
func NewPipeline(qp *rdma.QP, bufSize int) *Pipeline {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	return &Pipeline{node: qp.Node(), qp: qp, bufSize: bufSize}
}

// SetMetrics points the pipeline's telemetry at m. Pass the same Metrics
// to several pipelines to aggregate them (e.g. the flusher's pipeline and
// per-subcompaction pipelines of one DB).
func (p *Pipeline) SetMetrics(m Metrics) { p.m = m }

// Reset points the pipeline at a fresh destination extent of the given
// capacity. Must not be called while writes are in flight.
func (p *Pipeline) Reset(dst rdma.RemoteAddr, capacity int) {
	if len(p.inflight) != 0 {
		panic("flush: Reset with writes in flight")
	}
	p.dst, p.off, p.cap, p.curN, p.err = dst, 0, capacity, 0, nil
}

// Written returns the bytes submitted so far (including the current
// partially filled buffer).
func (p *Pipeline) Written() int { return p.off + p.curN }

// BuffersAllocated reports how many distinct buffers the pipeline created;
// effective recycling keeps this near (link latency x bandwidth)/bufSize
// regardless of table size.
func (p *Pipeline) BuffersAllocated() int { return p.buffersAllocated }

// Write appends p's bytes to the table stream (sstable.Sink).
func (pl *Pipeline) Write(b []byte) {
	for len(b) > 0 {
		if pl.cur == nil {
			pl.cur = pl.takeBuffer()
			pl.curN = 0
		}
		n := copy(pl.cur.Bytes(pl.curN, pl.bufSize-pl.curN), b)
		pl.curN += n
		b = b[n:]
		if pl.curN == pl.bufSize {
			pl.submit()
		}
	}
}

// submit posts the current buffer's RDMA write and appends it to the
// in-flight FIFO; the thread does not wait for the transfer (step 2-3 of
// Fig 6).
func (pl *Pipeline) submit() {
	if pl.curN == 0 {
		return
	}
	if pl.off+pl.curN > pl.cap {
		pl.err = fmt.Errorf("flush: table overflows extent (%d > %d)", pl.off+pl.curN, pl.cap)
		pl.cur, pl.curN = nil, 0
		return
	}
	pl.qp.Write(pl.cur, 0, pl.dst.Add(pl.off), pl.curN, pl.nextCtx)
	pl.m.BytesSubmitted.Add(int64(pl.curN))
	pl.m.BuffersInFlight.Add(1)
	pl.nextCtx++
	pl.off += pl.curN
	pl.inflight = append(pl.inflight, pl.cur)
	pl.cur, pl.curN = nil, 0
}

// takeBuffer recycles a finished buffer if one is available, otherwise
// allocates and registers a new one (step 4 of Fig 6), blocking only when
// the in-flight cap is reached.
func (pl *Pipeline) takeBuffer() *rdma.MemoryRegion {
	pl.reap(false)
	for len(pl.free) == 0 && len(pl.inflight) >= DefaultMaxInflight {
		pl.reapOne()
	}
	if n := len(pl.free); n > 0 {
		buf := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return buf
	}
	pl.buffersAllocated++
	pl.m.BuffersAllocated.Inc()
	return pl.node.Register(pl.bufSize)
}

// reapOne blocks for exactly one completion and retires the FIFO head.
func (pl *Pipeline) reapOne() {
	if len(pl.inflight) == 0 {
		return
	}
	pl.m.ReapWaits.Inc()
	c := pl.qp.WaitCQ()
	if c.Err != nil && pl.err == nil {
		pl.err = c.Err
	}
	pl.retireHead()
}

// retireHead moves the in-flight FIFO head to the free list.
func (pl *Pipeline) retireHead() {
	head := pl.inflight[0]
	pl.inflight = pl.inflight[1:]
	pl.free = append(pl.free, head)
	pl.m.BuffersInFlight.Add(-1)
}

// reap moves completed buffers from the in-flight FIFO to the free list.
// With wait=true it blocks until everything in flight has completed.
func (pl *Pipeline) reap(wait bool) {
	for len(pl.inflight) > 0 {
		var c rdma.Completion
		var ok bool
		if wait {
			pl.m.ReapWaits.Inc()
			c, ok = pl.qp.WaitCQ(), true
		} else if c, ok = pl.qp.PollCQ(); !ok {
			return
		}
		if c.Err != nil && pl.err == nil {
			pl.err = c.Err
		}
		// FIFO: this completion retires the queue head.
		pl.retireHead()
	}
}

// Finish submits any partial buffer and blocks until every in-flight write
// has completed, after which the table bytes are durable in remote memory.
func (pl *Pipeline) Finish() error {
	pl.submit()
	pl.reap(true)
	return pl.err
}
