package memnode

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dlsm/internal/keys"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

func testbed(cfg Config) (*sim.Env, *rdma.Fabric, *rdma.Node, *Server) {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	srv := NewServer(mn, cfg)
	srv.Start()
	return env, fab, cn, srv
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ComputeRegionSize = 64 << 20
	cfg.SelfRegionSize = 64 << 20
	return cfg
}

// buildRemoteTable writes a byte-addressable table (with footer) directly
// into the server's compute region, as a flush would.
func buildRemoteTable(t *testing.T, srv *Server, id uint64, firstKey, n int, seqBase uint64) *sstable.Meta {
	t.Helper()
	var buf []byte
	w := sstable.NewWriter(sstable.ByteAddr, memSink{&buf}, 0, 10, sstable.Options{})
	var maxSeq uint64
	for i := 0; i < n; i++ {
		seq := seqBase + uint64(i)
		w.Add(keys.Append(nil, []byte(fmt.Sprintf("key-%06d", firstKey+i)), keys.Seq(seq), keys.KindSet),
			[]byte(fmt.Sprintf("val-%d-%d", id, firstKey+i)))
		maxSeq = seq
	}
	res, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	off, err := srv.ComputeAlloc().Alloc(len(buf))
	if err != nil {
		t.Fatal(err)
	}
	copy(srv.DataMR().Bytes(int(off), len(buf)), buf)
	return &sstable.Meta{
		ID: id, Size: res.Size, Extent: int64((len(buf) + 63) &^ 63),
		IndexLen: res.IndexLen, FilterLen: res.FilterLen, Count: res.Count,
		Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
		Data: srv.DataMR().Addr(int(off)), CreatorNode: srv.Node().ID - 1, // compute-created
		Format: sstable.ByteAddr, Index: res.Index, Filter: res.Filter,
	}
}

type memSink struct{ buf *[]byte }

func (s memSink) Write(p []byte) { *s.buf = append(*s.buf, p...) }
func (s memSink) Finish() error  { return nil }

func TestCompactArgsRoundTrip(t *testing.T) {
	a := &CompactArgs{
		SmallestSnapshot: 42,
		DropTombstones:   true,
		Subcompactions:   4,
		TableSize:        1 << 20,
		Format:           sstable.ByteAddr,
		BitsPerKey:       10,
	}
	a.Inputs = append(a.Inputs, &sstable.Meta{ID: 7, Size: 100, Count: 3,
		Smallest: keys.Append(nil, []byte("a"), 1, keys.KindSet),
		Largest:  keys.Append(nil, []byte("z"), 2, keys.KindSet)})
	got, err := DecodeCompactArgs(EncodeCompactArgs(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.SmallestSnapshot != 42 || !got.DropTombstones || got.Subcompactions != 4 ||
		got.TableSize != 1<<20 || len(got.Inputs) != 1 || got.Inputs[0].ID != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	// Slim encoding must omit index bodies.
	if got.Inputs[0].Index.NumRecords() != 0 {
		t.Fatal("slim args carried the index body")
	}
}

func TestDecodeCompactArgsCorrupt(t *testing.T) {
	a := &CompactArgs{Subcompactions: 1, TableSize: 1 << 20}
	b := EncodeCompactArgs(a)
	for _, cut := range []int{0, 2, len(b) - 1} {
		if _, err := DecodeCompactArgs(b[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestNearDataCompactionEndToEnd(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		// Two overlapping tables: newer versions of keys 0..499 shadow
		// older ones in the second table.
		t1 := buildRemoteTable(t, srv, 1, 0, 500, 1000) // newer
		t2 := buildRemoteTable(t, srv, 2, 0, 800, 1)    // older, wider

		notifier := rpc.NotifierFor(cn)
		cli := rpc.NewClient(cn, srv.Node(), notifier, 8<<20)
		args := &CompactArgs{
			Inputs:           []*sstable.Meta{t1, t2},
			SmallestSnapshot: uint64(keys.MaxSeq),
			DropTombstones:   true,
			Subcompactions:   4,
			TableSize:        1 << 20,
			Format:           sstable.ByteAddr,
			BitsPerKey:       10,
		}
		reply, err := cli.CallLarge("compact", EncodeCompactArgs(args))
		if err != nil {
			t.Fatal(err)
		}
		outs, err := DecodeMetas(reply)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) == 0 {
			t.Fatal("no outputs")
		}
		total := 0
		for _, m := range outs {
			if m.CreatorNode != srv.Node().ID {
				t.Fatalf("output creator = %d, want memory node %d", m.CreatorNode, srv.Node().ID)
			}
			total += m.Count
		}
		if total != 800 {
			t.Fatalf("outputs hold %d entries, want 800 (500 shadowed dropped)", total)
		}
		if srv.SelfUsed() == 0 {
			t.Fatal("outputs not allocated from the self-controlled region")
		}

		// Verify merged content: key-000000 must have the newer value.
		qp := cn.NewQP(srv.Node())
		found := false
		for _, m := range outs {
			r := sstable.NewReader(m, sstable.NewQPFetcher(qp, m.Data), sstable.Options{})
			v, ok, deleted, err := r.Get([]byte("key-000000"), keys.MaxSeq)
			if err != nil {
				t.Fatal(err)
			}
			if ok && !deleted {
				if string(v) != "val-1-0" {
					t.Fatalf("merged value = %q, want newer val-1-0", v)
				}
				found = true
			}
		}
		if !found {
			t.Fatal("key-000000 missing after compaction")
		}
	})
	env.Wait()
}

func TestCompactRejectsForeignTables(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		bogus := &sstable.Meta{ID: 1, Count: 1,
			Smallest: keys.Append(nil, []byte("a"), 1, keys.KindSet),
			Largest:  keys.Append(nil, []byte("b"), 1, keys.KindSet),
			Data:     rdma.RemoteAddr{Node: 99, RKey: 1}}
		notifier := rpc.NotifierFor(cn)
		cli := rpc.NewClient(cn, srv.Node(), notifier, 1<<20)
		_, err := cli.CallLarge("compact", EncodeCompactArgs(&CompactArgs{
			Inputs: []*sstable.Meta{bogus}, Subcompactions: 1, TableSize: 1 << 20}))
		if err == nil {
			t.Fatal("compaction of non-resident table succeeded")
		}
	})
	env.Wait()
}

func TestFreeBatch(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		// Allocate two extents in the self region via a compaction-less
		// path: reach in directly (the allocator is the unit under test
		// on the server side of the "free" RPC).
		off1, _ := srv.selfAlloc.Alloc(4096)
		off2, _ := srv.selfAlloc.Alloc(8192)
		if srv.SelfUsed() == 0 {
			t.Fatal("setup failed")
		}
		cli := rpc.NewClient(cn, srv.Node(), nil, 1<<20)
		frees := [][2]int64{
			{srv.selfBase + off1, 4096},
			{srv.selfBase + off2, 8192},
		}
		if _, err := cli.Call("free", EncodeFrees(frees)); err != nil {
			t.Fatal(err)
		}
		if srv.SelfUsed() != 0 {
			t.Fatalf("SelfUsed = %d after free batch", srv.SelfUsed())
		}
	})
	env.Wait()
}

func TestTmpfsReadWriteFree(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		cli := rpc.NewClient(cn, srv.Node(), nil, 1<<20)

		write := func(id uint64, off int, data []byte) {
			args := make([]byte, 16, 16+len(data))
			putU64(args, 0, id)
			putU64(args, 8, uint64(off))
			args = append(args, data...)
			if _, err := cli.Call("fs_write", args); err != nil {
				t.Fatal(err)
			}
		}
		read := func(id uint64, off, n int) []byte {
			args := make([]byte, 20)
			putU64(args, 0, id)
			putU64(args, 8, uint64(off))
			putU32(args, 16, uint32(n))
			b, err := cli.Call("fs_read", args)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}

		write(5, 0, []byte("hello "))
		write(5, 6, []byte("tmpfs"))
		if got := read(5, 0, 11); !bytes.Equal(got, []byte("hello tmpfs")) {
			t.Fatalf("read = %q", got)
		}
		if srv.FSUsed() == 0 {
			t.Fatal("FSUsed = 0")
		}
		// Out-of-bounds read errors.
		args := make([]byte, 20)
		putU64(args, 0, 5)
		putU64(args, 8, 100)
		putU32(args, 16, 10)
		if _, err := cli.Call("fs_read", args); err == nil {
			t.Fatal("OOB read succeeded")
		}
		// Free.
		fr := make([]byte, 12)
		putU32(fr, 0, 1)
		putU64(fr, 4, 5)
		if _, err := cli.Call("fs_free", fr); err != nil {
			t.Fatal(err)
		}
		if srv.FSUsed() != 0 {
			t.Fatal("file survived fs_free")
		}
	})
	env.Wait()
}

func TestSubcompactionsUseRemoteCores(t *testing.T) {
	// A compaction on a 12-core memory node with 4 subcompactions must run
	// them in parallel: measure against a 1-core node.
	elapsed := map[int]time.Duration{}
	for _, cores := range []int{1, 12} {
		env := sim.NewEnv()
		fab := rdma.NewFabric(env, rdma.EDR100())
		cn := fab.AddNode("compute", 24)
		mn := fab.AddNode("memory", cores)
		srv := NewServer(mn, smallConfig())
		srv.Start()
		env.Run(func() {
			defer fab.Close()
			t1 := buildRemoteTable(t, srv, 1, 0, 20_000, 1)
			notifier := rpc.NotifierFor(cn)
			cli := rpc.NewClient(cn, srv.Node(), notifier, 8<<20)
			start := env.Now()
			_, err := cli.CallLarge("compact", EncodeCompactArgs(&CompactArgs{
				Inputs: []*sstable.Meta{t1}, SmallestSnapshot: uint64(keys.MaxSeq),
				Subcompactions: 8, TableSize: 128 << 10, Format: sstable.ByteAddr, BitsPerKey: 10}))
			if err != nil {
				t.Fatal(err)
			}
			elapsed[cores] = time.Duration(env.Now() - start)
		})
		env.Wait()
	}
	if elapsed[12]*2 >= elapsed[1] {
		t.Fatalf("12-core compaction (%v) not much faster than 1-core (%v)", elapsed[12], elapsed[1])
	}
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, off int, v uint32) {
	for i := 0; i < 4; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}
