package memnode

import (
	"strings"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

func compactArgsFor(inputs []*sstable.Meta, jobID uint64) *CompactArgs {
	return &CompactArgs{
		Inputs:           inputs,
		SmallestSnapshot: uint64(keys.MaxSeq),
		DropTombstones:   true,
		Subcompactions:   2,
		TableSize:        1 << 20,
		Format:           sstable.ByteAddr,
		BitsPerKey:       10,
		JobID:            jobID,
	}
}

func TestCompactJobDedupe(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		t1 := buildRemoteTable(t, srv, 1, 0, 500, 1)
		args := EncodeCompactArgs(compactArgsFor([]*sstable.Meta{t1}, 77))

		cli := rpc.NewClient(cn, srv.Node(), rpc.NotifierFor(cn), 8<<20)
		reply1, err := cli.CallLarge("compact", args)
		if err != nil {
			t.Fatal(err)
		}
		used := srv.SelfUsed()

		// Duplicate delivery of the same job id: the merge must not run
		// again — same reply bytes, no new output allocations.
		reply2, err := cli.CallLarge("compact", args)
		if err != nil {
			t.Fatal(err)
		}
		if string(reply1) != string(reply2) {
			t.Fatal("duplicate delivery returned a different reply")
		}
		if srv.SelfUsed() != used {
			t.Fatalf("duplicate delivery allocated outputs: %d -> %d", used, srv.SelfUsed())
		}
	})
	env.Wait()
	if got := fab.Telemetry().Counter("memnode.jobs.deduped").Load(); got != 1 {
		t.Errorf("memnode.jobs.deduped = %d, want 1", got)
	}
}

func TestCompactJobDedupeParksConcurrentDuplicate(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		t1 := buildRemoteTable(t, srv, 1, 0, 5_000, 1)
		args := EncodeCompactArgs(compactArgsFor([]*sstable.Meta{t1}, 42))

		type res struct {
			reply []byte
			err   error
		}
		results := make([]res, 2)
		wg := sim.NewWaitGroup(env)
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				cli := rpc.NewClient(cn, srv.Node(), rpc.NotifierFor(cn), 8<<20)
				r, err := cli.CallLarge("compact", args)
				results[i] = res{r, err}
			})
		}
		wg.Wait()
		for i, r := range results {
			if r.err != nil {
				t.Fatalf("call %d: %v", i, r.err)
			}
		}
		if string(results[0].reply) != string(results[1].reply) {
			t.Fatal("concurrent duplicates saw different replies")
		}
	})
	env.Wait()
	if got := fab.Telemetry().Counter("memnode.jobs.deduped").Load(); got != 1 {
		t.Errorf("memnode.jobs.deduped = %d, want 1", got)
	}
}

func TestCompactCancelFreesUnclaimedOutputs(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		t1 := buildRemoteTable(t, srv, 1, 0, 500, 1)
		args := EncodeCompactArgs(compactArgsFor([]*sstable.Meta{t1}, 9))

		cli := rpc.NewClient(cn, srv.Node(), rpc.NotifierFor(cn), 8<<20)
		if _, err := cli.CallLarge("compact", args); err != nil {
			t.Fatal(err)
		}
		if srv.SelfUsed() == 0 {
			t.Fatal("no outputs allocated")
		}
		// The requester gave up (fell back to local compaction): cancel
		// must return the outputs to the self-controlled allocator.
		cancel := make([]byte, 8)
		putU64(cancel, 0, 9)
		if _, err := cli.Call("compact_cancel", cancel); err != nil {
			t.Fatal(err)
		}
		if srv.SelfUsed() != 0 {
			t.Fatalf("SelfUsed = %d after cancel", srv.SelfUsed())
		}
		// A late duplicate delivery of the canceled job must not rerun the
		// merge: the tombstone answers with the canceled error.
		if _, err := cli.CallLarge("compact", args); err == nil ||
			!strings.Contains(err.Error(), "canceled") {
			t.Fatalf("late duplicate after cancel: err = %v, want canceled", err)
		}
		if srv.SelfUsed() != 0 {
			t.Fatal("late duplicate reallocated outputs")
		}
	})
	env.Wait()
	if got := fab.Telemetry().Counter("memnode.jobs.canceled").Load(); got != 1 {
		t.Errorf("memnode.jobs.canceled = %d, want 1", got)
	}
}

func TestServiceStopDropsRequestsRestartServes(t *testing.T) {
	env, fab, cn, srv := testbed(smallConfig())
	env.Run(func() {
		defer fab.Close()
		srv.StopService()
		if srv.ServiceRunning() {
			t.Fatal("service still running after StopService")
		}
		cli := rpc.NewClient(cn, srv.Node(), nil, 1<<20)
		p := rpc.Policy{Timeout: 500 * sim.Duration(1000), MaxAttempts: 1} // 500us
		if _, err := cli.CallPolicy("free", EncodeFrees([][2]int64{}), p); err == nil {
			t.Fatal("call succeeded while service stopped")
		}
		srv.RestartService()
		if _, err := cli.CallPolicy("free", EncodeFrees([][2]int64{}), p); err != nil {
			t.Fatalf("call after restart: %v", err)
		}
	})
	env.Wait()
}
