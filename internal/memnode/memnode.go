// Package memnode implements the memory-node side of dLSM: a large
// registered data region split into a compute-controlled area (MemTable
// flush targets, allocated remotely by the compute node with zero network
// round trips) and a self-controlled area (near-data compaction output,
// §V-A), plus the RPC services the compute node drives:
//
//   - "compact": near-data compaction (§V). Inputs are read from local
//     memory, merged by a pool of subcompaction workers bounded by the
//     node's (weak) CPU, and written to the self-controlled area; only the
//     new tables' metadata crosses the network back.
//   - "flush_build": memtable flush offloading (three-layer offloading,
//     after O³-LSM): serializes one immutable memtable — shipped contents,
//     or replayed in place from the already-remote WAL ring — into the
//     self-controlled area, building the block index and bloom filter
//     there, and returns only the metadata + index/filter bytes.
//   - "free": batched reclamation of self-allocated extents (§V-B).
//   - "fs_read"/"fs_write"/"fs_free": a tmpfs-like byte service used by the
//     Nova-LSM baseline, which does file I/O through two-sided RPCs.
package memnode

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dlsm/internal/compactor"
	"dlsm/internal/keys"
	"dlsm/internal/lease"
	"dlsm/internal/rdma"
	"dlsm/internal/remote"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
)

// Config sizes the server.
type Config struct {
	// ComputeRegionSize is the area the compute node allocates from.
	ComputeRegionSize int64
	// SelfRegionSize is the area this node allocates compaction output in.
	SelfRegionSize int64
	// RPCWorkers is the RPC worker pool size.
	RPCWorkers int
	// Subcompactions caps the parallel subcompaction workers per job.
	Subcompactions int
	// LogRegionSize is the area write-ahead log slots are carved from
	// (internal/wal). The region is registered lazily on the first OpenLog,
	// so deployments that never enable durability pay nothing for it.
	LogRegionSize int64
	// LeaseRegionSize is the area shard-ownership lease entries are carved
	// from (internal/lease); registered lazily on the first OpenLease, so
	// single-compute deployments pay nothing for it.
	LeaseRegionSize int64
	// Costs is the CPU cost model charged against this node's cores.
	Costs sim.CostModel
}

// DefaultConfig returns sizes suitable for the benchmarks.
func DefaultConfig() Config {
	return Config{
		ComputeRegionSize: 1 << 30,
		SelfRegionSize:    1 << 30,
		RPCWorkers:        4,
		Subcompactions:    12,
		LogRegionSize:     64 << 20,
		LeaseRegionSize:   1 << 20,
		Costs:             sim.DefaultCosts(),
	}
}

// Server is one memory node's software.
type Server struct {
	env  *sim.Env
	node *rdma.Node
	cfg  Config

	dataMR       *rdma.MemoryRegion
	selfBase     int64
	selfAlloc    *remote.Allocator
	computeAlloc *remote.Allocator
	rpc          *rpc.Server

	// Job deduplication for "compact" and "flush_build": retried RPCs
	// share a job id, so redelivery (a retry racing a slow original) never
	// runs the work twice or leaks output extents. The table lives outside
	// the RPC service and therefore survives service crash/restart.
	jobMu    sync.Mutex
	jobs     map[uint64]*jobState
	jobOrder []uint64
	deduped  *telemetry.Counter
	canceled *telemetry.Counter

	// Write-ahead log slots (internal/wal). The directory maps a stable
	// log key (owner identity, not physical compute node) to its slot so a
	// replacement compute node can find the log of a dead one. Like the
	// data region, slots are plain registered memory: appends are one-sided
	// RDMA writes and survive both compute crashes and RPC-plane outages.
	logMu    sync.Mutex
	logMR    *rdma.MemoryRegion
	logAlloc *remote.Allocator
	logs     map[uint64]LogSlot

	// Shard-ownership lease table (internal/lease): one 64-byte entry per
	// (owner, shard), read and CAS'd by compute nodes with one-sided verbs.
	// Like the log directory, keys are logical identities so a replacement
	// compute node finds (and takes over) the leases of a dead one.
	leaseMu    sync.Mutex
	leaseMR    *rdma.MemoryRegion
	leaseAlloc *remote.Allocator
	leases     map[uint64]LeaseSlot

	fsOnce  sync.Once
	fsState *tmpfs

	// repl_clone (internal/repl, index-only replication): queue pairs to
	// destination nodes, cached per peer. cloneMu is a sim mutex because it
	// is held across the blocking chained write.
	cloneMu  *sim.Mutex
	cloneQPs map[int]*rdma.QP
}

// LogSlot locates one write-ahead log inside the log region.
type LogSlot struct {
	Addr rdma.RemoteAddr
	Size int64
}

// LeaseSlot locates one ownership-table entry inside the lease region.
type LeaseSlot struct {
	Addr rdma.RemoteAddr
	Size int64
}

// jobState tracks one offloaded job (compaction or flush build) from
// first delivery to eviction.
type jobState struct {
	done     bool
	canceled bool
	reply    []byte
	err      error
	outputs  []*sstable.Meta // self-allocated extents, freed on cancel
	waiters  []chan struct{} // duplicate deliveries parked while running
}

// jobCacheCap bounds the dedupe table; completed jobs are evicted FIFO.
const jobCacheCap = 256

// NewServer allocates the data region on node and wires up the RPC
// handlers. Call Start to begin serving.
func NewServer(node *rdma.Node, cfg Config) *Server {
	s := &Server{
		env:       node.Fabric().Env(),
		node:      node,
		cfg:       cfg,
		dataMR:    node.Register(int(cfg.ComputeRegionSize + cfg.SelfRegionSize)),
		selfBase:  cfg.ComputeRegionSize,
		selfAlloc: remote.NewAllocator(cfg.SelfRegionSize),
		rpc:       rpc.NewServer(node, cfg.Costs, cfg.RPCWorkers),
	}
	s.computeAlloc = remote.NewAllocator(cfg.ComputeRegionSize)
	s.jobs = make(map[uint64]*jobState)
	s.cloneMu = sim.NewMutex(s.env)
	s.cloneQPs = make(map[int]*rdma.QP)
	tel := node.Fabric().Telemetry()
	s.deduped = tel.Counter("memnode.jobs.deduped")
	s.canceled = tel.Counter("memnode.jobs.canceled")
	s.rpc.HandleDedicated("compact", s.handleCompact, 12)
	s.rpc.Handle("compact_cancel", s.handleCompactCancel)
	// flush_build rides the shared worker pool: builds are bounded by one
	// memtable (milliseconds), unlike multi-table merges, so they cannot
	// starve the pool the way compactions would.
	s.rpc.Handle("flush_build", s.handleFlushBuild)
	s.rpc.Handle("free", s.handleFree)
	s.rpc.Handle("fs_read", s.handleFSRead)
	s.rpc.Handle("fs_write", s.handleFSWrite)
	s.rpc.Handle("fs_free", s.handleFSFree)
	s.rpc.Handle("repl_clone", s.handleReplClone)
	return s
}

// Start launches the RPC service entities.
func (s *Server) Start() { s.rpc.Start() }

// StopService simulates the memory-node server process dying: the RPC
// plane stops (requests are dropped, in-flight replies are suppressed)
// while the registered data region stays remotely accessible — one-sided
// RDMA bypasses this node's CPU, which is exactly what lets a compute
// node fall back to local compaction with zero data loss.
func (s *Server) StopService() { s.rpc.Stop() }

// RestartService brings the RPC plane back up. The job-dedupe table
// persisted across the outage, so duplicate compaction deliveries from
// before the crash are still recognized.
func (s *Server) RestartService() { s.rpc.Start() }

// ServiceRunning reports whether the RPC plane is accepting requests.
func (s *Server) ServiceRunning() bool { return s.rpc.Running() }

// Node returns the underlying fabric node.
func (s *Server) Node() *rdma.Node { return s.node }

// DataMR returns the registered data region. The compute node addresses it
// through rkeys; local compaction reads it directly.
func (s *Server) DataMR() *rdma.MemoryRegion { return s.dataMR }

// ComputeRegionSize returns the size of the compute-controlled area, which
// occupies [0, ComputeRegionSize) of the data region.
func (s *Server) ComputeRegionSize() int64 { return s.cfg.ComputeRegionSize }

// ComputeAlloc is the allocator over the compute-controlled area. It is
// logically owned and driven by compute-side code (§V-A); the single shared
// instance keeps the many engines (shards, or multiple compute nodes) that
// target one memory node from handing out overlapping extents.
func (s *Server) ComputeAlloc() *remote.Allocator { return s.computeAlloc }

// ComputeUsed returns bytes allocated in the compute-controlled area.
func (s *Server) ComputeUsed() int64 { return s.computeAlloc.Used() }

// SelfUsed returns bytes allocated in the self-controlled area.
func (s *Server) SelfUsed() int64 { return s.selfAlloc.Used() }

// OpenLog returns the write-ahead log slot for key, carving a new one out
// of the log region on first use. Reopening an existing key returns the
// surviving slot unchanged (its size is whatever the creator asked for),
// which is what lets a restarted or replacement compute node recover the
// log a dead one left behind.
func (s *Server) OpenLog(key uint64, size int64) (LogSlot, error) {
	if key == 0 {
		return LogSlot{}, fmt.Errorf("memnode: zero log key")
	}
	if size <= 0 {
		return LogSlot{}, fmt.Errorf("memnode: log slot size %d", size)
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if slot, ok := s.logs[key]; ok {
		return slot, nil
	}
	if s.logMR == nil {
		if s.cfg.LogRegionSize <= 0 {
			return LogSlot{}, fmt.Errorf("memnode: log region disabled (LogRegionSize=%d)", s.cfg.LogRegionSize)
		}
		s.logMR = s.node.Register(int(s.cfg.LogRegionSize))
		s.logAlloc = remote.NewAllocator(s.cfg.LogRegionSize)
		s.logs = make(map[uint64]LogSlot)
	}
	off, err := s.logAlloc.Alloc(int(size))
	if err != nil {
		return LogSlot{}, fmt.Errorf("memnode: log region full: %w", err)
	}
	slot := LogSlot{Addr: s.logMR.Addr(int(off)), Size: size}
	s.logs[key] = slot
	return slot, nil
}

// FindLog looks up an existing log slot without creating one. Recovery
// uses it to distinguish "this owner never wrote a log" from a real slot.
func (s *Server) FindLog(key uint64) (LogSlot, bool) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	slot, ok := s.logs[key]
	return slot, ok
}

// LogUsed returns bytes carved out of the log region.
func (s *Server) LogUsed() int64 {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.logAlloc == nil {
		return 0
	}
	return s.logAlloc.Used()
}

// LogMR exposes the log region for tests that corrupt or inspect raw log
// bytes; nil until the first OpenLog.
func (s *Server) LogMR() *rdma.MemoryRegion {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.logMR
}

// OpenLease returns the ownership-table entry for key, carving a fresh one
// (free, epoch 0, magic stamped) out of the lease region on first use.
// Reopening an existing key returns the surviving entry unchanged — its
// epoch history is exactly what fences deposed holders, so it must never
// be reset.
func (s *Server) OpenLease(key uint64) (LeaseSlot, error) {
	if key == 0 {
		return LeaseSlot{}, fmt.Errorf("memnode: zero lease key")
	}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	if slot, ok := s.leases[key]; ok {
		return slot, nil
	}
	if s.leaseMR == nil {
		if s.cfg.LeaseRegionSize <= 0 {
			return LeaseSlot{}, fmt.Errorf("memnode: lease region disabled (LeaseRegionSize=%d)", s.cfg.LeaseRegionSize)
		}
		s.leaseMR = s.node.Register(int(s.cfg.LeaseRegionSize))
		s.leaseAlloc = remote.NewAllocator(s.cfg.LeaseRegionSize)
		s.leases = make(map[uint64]LeaseSlot)
	}
	off, err := s.leaseAlloc.Alloc(lease.EntrySize)
	if err != nil {
		return LeaseSlot{}, fmt.Errorf("memnode: lease region full: %w", err)
	}
	// Stamp the entry in place (free word, magic, version); the region is
	// zeroed at registration so the reserved tail is already valid.
	for i, b := range lease.EncodeEntry(lease.Entry{}) {
		s.leaseMR.SetByte(int(off)+i, b)
	}
	slot := LeaseSlot{Addr: s.leaseMR.Addr(int(off)), Size: lease.EntrySize}
	s.leases[key] = slot
	return slot, nil
}

// FindLease looks up an existing lease entry without creating one.
func (s *Server) FindLease(key uint64) (LeaseSlot, bool) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	slot, ok := s.leases[key]
	return slot, ok
}

// LeaseMR exposes the lease region for tests; nil until the first OpenLease.
func (s *Server) LeaseMR() *rdma.MemoryRegion {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	return s.leaseMR
}

// charge accounts CPU time to this node's core pool.
func (s *Server) charge(d sim.Duration) { s.node.CPU.Use(d) }

// --- near-data compaction -------------------------------------------------

// CompactArgs is the large RPC argument for near-data compaction: the
// compute node picks the inputs and ships only their metadata (§V-A).
type CompactArgs struct {
	Inputs           []*sstable.Meta
	SmallestSnapshot uint64
	DropTombstones   bool
	Subcompactions   int
	TableSize        int64 // per-output data budget
	ExtentCap        int64 // per-output extent size (data + footer)
	Format           sstable.Format
	BlockSize        int
	BitsPerKey       int
	// JobID identifies the job across RPC retries: every retry of one
	// compaction carries the same nonzero id, letting the memory node
	// deduplicate redelivery. 0 disables deduplication.
	JobID uint64
}

// EncodeCompactArgs serializes args for transport.
func EncodeCompactArgs(a *CompactArgs) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(a.Inputs)))
	for _, m := range a.Inputs {
		// Slim metadata: the index and filter stay out of the RPC; the
		// responder reloads them from the table footers in its own DRAM.
		enc := sstable.EncodeMetaSlim(m)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
	}
	b = binary.LittleEndian.AppendUint64(b, a.SmallestSnapshot)
	b = append(b, boolByte(a.DropTombstones))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.Subcompactions))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.TableSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.ExtentCap))
	b = append(b, byte(a.Format))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.BlockSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.BitsPerKey))
	b = binary.LittleEndian.AppendUint64(b, a.JobID)
	return b
}

// DecodeCompactArgs parses EncodeCompactArgs output.
func DecodeCompactArgs(b []byte) (*CompactArgs, error) {
	a := &CompactArgs{}
	if len(b) < 4 {
		return nil, fmt.Errorf("memnode: short compact args")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("memnode: truncated input %d", i)
		}
		sz := int(binary.LittleEndian.Uint32(b))
		if len(b) < 4+sz {
			return nil, fmt.Errorf("memnode: truncated input meta %d", i)
		}
		m, _, err := sstable.DecodeMeta(b[4 : 4+sz])
		if err != nil {
			return nil, err
		}
		a.Inputs = append(a.Inputs, m)
		b = b[4+sz:]
	}
	if len(b) < 8+1+4+8+8+1+4+4+8 {
		return nil, fmt.Errorf("memnode: short compact args tail")
	}
	a.SmallestSnapshot = binary.LittleEndian.Uint64(b)
	a.DropTombstones = b[8] != 0
	a.Subcompactions = int(binary.LittleEndian.Uint32(b[9:]))
	a.TableSize = int64(binary.LittleEndian.Uint64(b[13:]))
	a.ExtentCap = int64(binary.LittleEndian.Uint64(b[21:]))
	a.Format = sstable.Format(b[29])
	a.BlockSize = int(binary.LittleEndian.Uint32(b[30:]))
	a.BitsPerKey = int(binary.LittleEndian.Uint32(b[34:]))
	a.JobID = binary.LittleEndian.Uint64(b[38:])
	return a, nil
}

// EncodeMetas serializes a list of table metas (the compaction reply).
func EncodeMetas(metas []*sstable.Meta) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(metas)))
	for _, m := range metas {
		enc := sstable.EncodeMeta(m)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
	}
	return b
}

// DecodeMetas parses EncodeMetas output.
func DecodeMetas(b []byte) ([]*sstable.Meta, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("memnode: short metas")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	out := make([]*sstable.Meta, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("memnode: truncated meta %d", i)
		}
		sz := int(binary.LittleEndian.Uint32(b))
		if len(b) < 4+sz {
			return nil, fmt.Errorf("memnode: truncated meta body %d", i)
		}
		m, _, err := sstable.DecodeMeta(b[4 : 4+sz])
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		b = b[4+sz:]
	}
	return out, nil
}

// handleCompact executes one near-data compaction job under the shared
// job-dedupe table.
func (s *Server) handleCompact(from int, argBytes []byte) ([]byte, error) {
	args, err := DecodeCompactArgs(argBytes)
	if err != nil {
		return nil, err
	}
	return s.withJobDedupe(args.JobID, func() ([]byte, []*sstable.Meta, error) {
		return s.runCompactJob(args)
	})
}

// withJobDedupe executes run once per job id, deduplicating redelivered
// jobs: a duplicate of a completed job returns the cached reply; a
// duplicate of a running job parks until the original finishes and
// returns the same reply. Neither runs the work again. jobID 0 disables
// deduplication. Shared by the "compact" and "flush_build" services —
// both allocate self-region output extents that a cancel must reclaim.
func (s *Server) withJobDedupe(jobID uint64, run func() ([]byte, []*sstable.Meta, error)) ([]byte, error) {
	if jobID == 0 {
		reply, _, err := run()
		return reply, err
	}

	s.jobMu.Lock()
	if st, ok := s.jobs[jobID]; ok {
		s.deduped.Inc()
		if !st.done {
			ch := make(chan struct{})
			st.waiters = append(st.waiters, ch)
			s.jobMu.Unlock()
			s.env.Clock().Block("memnode.job")
			<-ch
			s.jobMu.Lock()
		}
		reply, jerr := st.reply, st.err
		s.jobMu.Unlock()
		return reply, jerr
	}
	st := &jobState{}
	s.jobs[jobID] = st
	s.jobOrder = append(s.jobOrder, jobID)
	s.jobMu.Unlock()

	reply, outputs, err := run()

	s.jobMu.Lock()
	st.done = true
	if st.canceled {
		// A cancel raced the work: the compute node has fallen back to
		// the local path and will never claim these outputs.
		for _, m := range outputs {
			s.freeSelf(m)
		}
		reply, outputs, err = nil, nil, fmt.Errorf("memnode: job %d canceled", jobID)
	}
	st.reply, st.err, st.outputs = reply, err, outputs
	waiters := st.waiters
	st.waiters = nil
	s.evictJobsLocked()
	s.jobMu.Unlock()
	for _, ch := range waiters {
		s.env.Clock().Ready("memnode.job", ch)
	}
	return reply, err
}

// handleCompactCancel frees the outputs of a job — compaction or flush
// build, they share the table — whose requester gave up (exhausted
// retries and fell back to the compute-local path). Best effort: the id
// is tombstoned so a late duplicate delivery cannot start the work.
func (s *Server) handleCompactCancel(from int, args []byte) ([]byte, error) {
	if len(args) < 8 {
		return nil, fmt.Errorf("memnode: short cancel args")
	}
	id := binary.LittleEndian.Uint64(args)
	s.jobMu.Lock()
	st := s.jobs[id]
	switch {
	case st == nil:
		s.jobs[id] = &jobState{
			done: true, canceled: true,
			err: fmt.Errorf("memnode: job %d canceled", id),
		}
		s.jobOrder = append(s.jobOrder, id)
		s.evictJobsLocked()
	case st.done && !st.canceled:
		for _, m := range st.outputs {
			s.freeSelf(m)
		}
		st.outputs = nil
		st.canceled = true
		st.reply = nil
		st.err = fmt.Errorf("memnode: job %d canceled", id)
	default:
		st.canceled = true // completion path frees the outputs
	}
	s.canceled.Inc()
	s.jobMu.Unlock()
	return nil, nil
}

// evictJobsLocked trims completed jobs FIFO once the table exceeds its
// cap. Running jobs block eviction at their position to keep order cheap.
func (s *Server) evictJobsLocked() {
	for len(s.jobs) > jobCacheCap && len(s.jobOrder) > 0 {
		id := s.jobOrder[0]
		if st := s.jobs[id]; st != nil && !st.done {
			break
		}
		s.jobOrder = s.jobOrder[1:]
		delete(s.jobs, id)
	}
}

// runCompactJob executes the merge itself and returns the encoded reply
// plus the output metas (for cancellation bookkeeping).
func (s *Server) runCompactJob(args *CompactArgs) ([]byte, []*sstable.Meta, error) {
	for _, m := range args.Inputs {
		if m.Data.Node != s.node.ID {
			return nil, nil, fmt.Errorf("memnode: input table %d not resident on node %d", m.ID, s.node.ID)
		}
		// Reload the index (and filter, unused during merge) from the
		// table footer: a local memory read, no network traffic.
		if m.Index.NumRecords() == 0 && m.IndexLen > 0 {
			raw := append([]byte(nil), s.dataMR.Bytes(m.Data.Off+int(m.Size), m.IndexLen)...)
			m.Index = sstable.NewIndexFromRaw(raw, m.Format)
		}
	}

	k := args.Subcompactions
	if k > s.cfg.Subcompactions {
		k = s.cfg.Subcompactions
	}
	if k < 1 {
		k = 1
	}
	ranges := compactor.SplitRanges(args.Inputs, k, args.TableSize)

	type result struct {
		idx   int
		metas []*sstable.Meta
		err   error
	}
	results := make([]result, len(ranges))
	wg := sim.NewWaitGroup(s.env)
	for i, r := range ranges {
		i, r := i, r
		wg.Add(1)
		run := func() {
			defer wg.Done()
			metas, err := s.runSubcompaction(args, r[0], r[1])
			results[i] = result{i, metas, err}
		}
		if i == len(ranges)-1 {
			run() // run the last range on this worker
		} else {
			s.env.Go(run)
		}
	}
	wg.Wait()

	var outputs []*sstable.Meta
	for _, r := range results {
		if r.err != nil {
			// Free any extents the successful subcompactions allocated.
			for _, rr := range results {
				for _, m := range rr.metas {
					s.freeSelf(m)
				}
			}
			return nil, nil, r.err
		}
		outputs = append(outputs, r.metas...)
	}
	return EncodeMetas(outputs), outputs, nil
}

// runSubcompaction merges one key subrange locally.
func (s *Server) runSubcompaction(args *CompactArgs, lo, hi []byte) ([]*sstable.Meta, error) {
	inputs := make([]compactor.Input, len(args.Inputs))
	for i, m := range args.Inputs {
		inputs[i] = compactor.Input{Meta: m, Fetch: sstable.NewLocalFetcher(s.dataMR, m.Data.Off)}
	}
	factory := func(capacity int64) (sstable.Sink, compactor.Commit, error) {
		off, err := s.selfAlloc.Alloc(int(capacity))
		if err != nil {
			return nil, nil, err
		}
		abs := int(s.selfBase + off)
		commit := func(res sstable.BuildResult, maxSeq uint64) (*sstable.Meta, error) {
			// Shrink to the shared extent class (see engine.shrinkExtent):
			// uniform classes keep the region fragmentation-free.
			actual := int(res.Size) + res.IndexLen + res.FilterLen
			if class := int(remote.ClassSize(int(args.ExtentCap))); args.ExtentCap > 0 && actual < class {
				actual = class
			}
			extent := s.selfAlloc.Shrink(off, actual)
			return &sstable.Meta{
				// IDs are assigned by the compute node on receipt.
				Size: res.Size, Extent: extent,
				IndexLen: res.IndexLen, FilterLen: res.FilterLen, Count: res.Count,
				Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
				Data:        s.dataMR.Addr(abs),
				CreatorNode: s.node.ID,
				Format:      args.Format, BlockSize: args.BlockSize,
				Index: res.Index, Filter: res.Filter,
			}, nil
		}
		return sstable.NewLocalSink(s.dataMR, abs), commit, nil
	}
	return compactor.Run(inputs, compactor.Params{
		Format:           args.Format,
		BlockSize:        args.BlockSize,
		BitsPerKey:       args.BitsPerKey,
		TableSize:        args.TableSize,
		ExtentCap:        args.ExtentCap,
		SmallestSnapshot: keys.Seq(args.SmallestSnapshot),
		DropTombstones:   args.DropTombstones,
		Lo:               lo,
		Hi:               hi,
		Opts:             sstable.Options{Costs: s.cfg.Costs, Charge: s.charge},
	}, factory)
}

// freeSelf releases a self-allocated output extent.
func (s *Server) freeSelf(m *sstable.Meta) {
	s.selfAlloc.Free(int64(m.Data.Off)-s.selfBase, int(m.Extent))
}

// --- batched garbage collection (§V-B) -------------------------------------

// EncodeFrees serializes a batch of (absolute offset, extent) pairs.
func EncodeFrees(frees [][2]int64) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(frees)))
	for _, f := range frees {
		b = binary.LittleEndian.AppendUint64(b, uint64(f[0]))
		b = binary.LittleEndian.AppendUint64(b, uint64(f[1]))
	}
	return b
}

func (s *Server) handleFree(from int, args []byte) ([]byte, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("memnode: short free batch")
	}
	n := int(binary.LittleEndian.Uint32(args))
	args = args[4:]
	if len(args) < 16*n {
		return nil, fmt.Errorf("memnode: truncated free batch")
	}
	for i := 0; i < n; i++ {
		off := int64(binary.LittleEndian.Uint64(args[16*i:]))
		ext := int64(binary.LittleEndian.Uint64(args[16*i+8:]))
		s.selfAlloc.Free(off-s.selfBase, int(ext))
	}
	return nil, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
