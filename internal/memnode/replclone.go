package memnode

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/rdma"
)

// handleReplClone copies a byte range of this node's data region to another
// node with a chained one-sided write — the verb behind index-only SSTable
// replication (internal/repl): a built extent travels primary→replica
// directly, so only n bytes cross the wire and neither the compute node nor
// the backup spends CPU on it.
//
// Request layout (32 bytes): srcOff u64 | n u64 | dstNode u32 | dstRKey u32
// | dstOff u64. The call is idempotent: a retried clone rewrites the same
// bytes to the same destination.
func (s *Server) handleReplClone(from int, args []byte) ([]byte, error) {
	if len(args) != 32 {
		return nil, fmt.Errorf("memnode: repl_clone: args %d bytes, want 32", len(args))
	}
	srcOff := int64(binary.LittleEndian.Uint64(args[0:]))
	n := int64(binary.LittleEndian.Uint64(args[8:]))
	dstNode := int(binary.LittleEndian.Uint32(args[16:]))
	dstRKey := binary.LittleEndian.Uint32(args[20:])
	dstOff := int64(binary.LittleEndian.Uint64(args[24:]))
	if n <= 0 || srcOff < 0 || srcOff+n > int64(s.dataMR.Size()) {
		return nil, fmt.Errorf("memnode: repl_clone: source [%d,%d) outside data region", srcOff, srcOff+n)
	}
	if dstNode < 0 || dstNode == s.node.ID {
		return nil, fmt.Errorf("memnode: repl_clone: bad destination node %d", dstNode)
	}
	s.cloneMu.Lock()
	defer s.cloneMu.Unlock()
	qp := s.cloneQPs[dstNode]
	if qp == nil {
		qp = s.node.NewQP(s.node.Fabric().Node(dstNode))
		s.cloneQPs[dstNode] = qp
	}
	dst := rdma.RemoteAddr{Node: dstNode, RKey: dstRKey, Off: int(dstOff)}
	if err := qp.WriteSync(s.dataMR, int(srcOff), dst, int(n)); err != nil {
		// The peer may have crashed (its generation advanced); drop the QP
		// so a retry after restart gets a fresh one instead of a poisoned
		// cache entry.
		qp.Close()
		delete(s.cloneQPs, dstNode)
		return nil, err
	}
	return nil, nil
}
