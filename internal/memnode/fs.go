package memnode

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// tmpfs is the memory-node side of the Nova-LSM baseline's storage: files
// live in the memory node's DRAM and every access is a two-sided RPC with a
// server-side memcpy — the "long read path" the paper attributes Nova-LSM's
// slower reads to (§XI-C2).
type tmpfs struct {
	mu    sync.Mutex
	files map[uint64][]byte
}

func (s *Server) fs() *tmpfs {
	s.fsOnce.Do(func() { s.fsState = &tmpfs{files: make(map[uint64][]byte)} })
	return s.fsState
}

// FSUsed returns the bytes held by tmpfs files.
func (s *Server) FSUsed() int64 {
	fs := s.fs()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.files {
		n += int64(len(f))
	}
	return n
}

// handleFSWrite appends/overwrites file bytes: [id u64][off u64][data...].
func (s *Server) handleFSWrite(from int, args []byte) ([]byte, error) {
	if len(args) < 16 {
		return nil, fmt.Errorf("memnode: short fs_write")
	}
	id := binary.LittleEndian.Uint64(args)
	off := int(binary.LittleEndian.Uint64(args[8:]))
	data := args[16:]

	s.charge(time.Duration(float64(len(data)) * s.cfg.Costs.MemcpyByte))
	fs := s.fs()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[id]
	if need := off + len(data); need > len(f) {
		nf := make([]byte, need)
		copy(nf, f)
		f = nf
	}
	copy(f[off:], data)
	fs.files[id] = f
	return nil, nil
}

// handleFSRead returns file bytes: [id u64][off u64][n u32].
func (s *Server) handleFSRead(from int, args []byte) ([]byte, error) {
	if len(args) < 20 {
		return nil, fmt.Errorf("memnode: short fs_read")
	}
	id := binary.LittleEndian.Uint64(args)
	off := int(binary.LittleEndian.Uint64(args[8:]))
	n := int(binary.LittleEndian.Uint32(args[16:]))

	fs := s.fs()
	fs.mu.Lock()
	f, ok := fs.files[id]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memnode: fs_read of missing file %d", id)
	}
	if off+n > len(f) {
		return nil, fmt.Errorf("memnode: fs_read [%d,+%d) beyond file %d size %d", off, n, id, len(f))
	}
	s.charge(time.Duration(float64(n) * s.cfg.Costs.MemcpyByte))
	return f[off : off+n], nil
}

// handleFSFree deletes files: [count u32][id u64]...
func (s *Server) handleFSFree(from int, args []byte) ([]byte, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("memnode: short fs_free")
	}
	n := int(binary.LittleEndian.Uint32(args))
	if len(args) < 4+8*n {
		return nil, fmt.Errorf("memnode: truncated fs_free")
	}
	fs := s.fs()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := 0; i < n; i++ {
		delete(fs.files, binary.LittleEndian.Uint64(args[4+8*i:]))
	}
	return nil, nil
}
