package memnode

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dlsm/internal/keys"
	"dlsm/internal/remote"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/wal"
)

// FlushReplay asks the memory node to rebuild the memtable's entries from
// the write-ahead-log ring resident in its own DRAM (zero-copy flush): the
// compute node ships only record locations, never the data — the bytes
// already crossed the network once, as WAL appends.
type FlushReplay struct {
	LogKey  uint64 // memnode log-slot key (engine.WALSlotKey)
	Epoch   uint64 // current log epoch; stale-epoch records fail to parse
	SeqLo   uint64 // memtable sequence range: entries outside are skipped
	SeqHi   uint64
	Records []wal.RecordLoc // ring-relative; may span-overlap neighbors' seqs
}

// FlushBuildArgs is the large RPC argument for flush offloading: build one
// SSTable in the self-controlled area from an immutable memtable's
// entries, delivered either inline (Entries) or as a WAL replay
// descriptor (Replay). BuildIndex/BuildFilter select which footer
// sections this node constructs (per-layer ablation); sections it builds
// are placed in the extent as a contiguous footer prefix after the data,
// and any section left to the compute node is covered by FooterReserve.
type FlushBuildArgs struct {
	JobID         uint64 // dedupe/cancel id (shared with "compact"); 0 disables
	Format        sstable.Format
	BlockSize     int
	BitsPerKey    int
	ExtentCap     int64 // extent-class target (engine extent sizing)
	Capacity      int64 // initial allocation request
	FooterReserve int64 // slack kept for compute-built footer sections
	BuildIndex    bool
	BuildFilter   bool

	// Contents mode: Count framed entries in ascending internal-key order,
	// each `u32 klen | u32 vlen | ikey | value`.
	Count   int
	Entries []byte

	// Replay mode, used instead of Entries when non-nil.
	Replay *FlushReplay
}

const flushModeReplay = 1

// EncodeFlushBuildArgs serializes args for transport.
func EncodeFlushBuildArgs(a *FlushBuildArgs) []byte {
	b := binary.LittleEndian.AppendUint64(nil, a.JobID)
	b = append(b, byte(a.Format))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.BlockSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.BitsPerKey))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.ExtentCap))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Capacity))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.FooterReserve))
	flags := byte(0)
	if a.BuildIndex {
		flags |= 1
	}
	if a.BuildFilter {
		flags |= 2
	}
	b = append(b, flags)
	if a.Replay != nil {
		b = append(b, flushModeReplay)
		b = binary.LittleEndian.AppendUint64(b, a.Replay.LogKey)
		b = binary.LittleEndian.AppendUint64(b, a.Replay.Epoch)
		b = binary.LittleEndian.AppendUint64(b, a.Replay.SeqLo)
		b = binary.LittleEndian.AppendUint64(b, a.Replay.SeqHi)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a.Replay.Records)))
		for _, r := range a.Replay.Records {
			b = binary.LittleEndian.AppendUint64(b, uint64(r.Off))
			b = binary.LittleEndian.AppendUint32(b, uint32(r.Size))
		}
		return b
	}
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(a.Count))
	return append(b, a.Entries...)
}

// DecodeFlushBuildArgs parses EncodeFlushBuildArgs output. The entry
// frames of contents mode are validated here (count, lengths, no trailing
// bytes) so the handler can alias them without further checks.
func DecodeFlushBuildArgs(b []byte) (*FlushBuildArgs, error) {
	const fixed = 8 + 1 + 4 + 4 + 8 + 8 + 8 + 1 + 1
	if len(b) < fixed {
		return nil, fmt.Errorf("memnode: short flush_build args")
	}
	a := &FlushBuildArgs{
		JobID:         binary.LittleEndian.Uint64(b),
		Format:        sstable.Format(b[8]),
		BlockSize:     int(binary.LittleEndian.Uint32(b[9:])),
		BitsPerKey:    int(binary.LittleEndian.Uint32(b[13:])),
		ExtentCap:     int64(binary.LittleEndian.Uint64(b[17:])),
		Capacity:      int64(binary.LittleEndian.Uint64(b[25:])),
		FooterReserve: int64(binary.LittleEndian.Uint64(b[33:])),
	}
	flags, mode := b[41], b[42]
	a.BuildIndex = flags&1 != 0
	a.BuildFilter = flags&2 != 0
	b = b[fixed:]
	if a.Capacity <= 0 || a.ExtentCap < 0 || a.FooterReserve < 0 {
		return nil, fmt.Errorf("memnode: flush_build sizes out of range")
	}
	if mode == flushModeReplay {
		if len(b) < 8+8+8+8+4 {
			return nil, fmt.Errorf("memnode: short flush_build replay descriptor")
		}
		r := &FlushReplay{
			LogKey: binary.LittleEndian.Uint64(b),
			Epoch:  binary.LittleEndian.Uint64(b[8:]),
			SeqLo:  binary.LittleEndian.Uint64(b[16:]),
			SeqHi:  binary.LittleEndian.Uint64(b[24:]),
		}
		n := int(binary.LittleEndian.Uint32(b[32:]))
		b = b[36:]
		if n < 0 || len(b) != 12*n {
			return nil, fmt.Errorf("memnode: flush_build replay wants %d records, %d bytes left", n, len(b))
		}
		for i := 0; i < n; i++ {
			off := int64(binary.LittleEndian.Uint64(b[12*i:]))
			size := int64(binary.LittleEndian.Uint32(b[12*i+8:]))
			if off < 0 || size <= 0 {
				return nil, fmt.Errorf("memnode: flush_build replay record %d out of range", i)
			}
			r.Records = append(r.Records, wal.RecordLoc{Off: int(off), Size: int(size)})
		}
		a.Replay = r
		return a, nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("memnode: short flush_build entry count")
	}
	a.Count = int(binary.LittleEndian.Uint32(b))
	a.Entries = b[4:]
	// Validate the frames end-to-end up front.
	rest := a.Entries
	for i := 0; i < a.Count; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("memnode: truncated flush_build entry %d", i)
		}
		klen := int64(binary.LittleEndian.Uint32(rest))
		vlen := int64(binary.LittleEndian.Uint32(rest[4:]))
		if klen < int64(keys.TrailerLen) || klen+vlen > int64(len(rest)-8) {
			return nil, fmt.Errorf("memnode: flush_build entry %d out of range", i)
		}
		rest = rest[8+klen+vlen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("memnode: %d trailing bytes after flush_build entries", len(rest))
	}
	return a, nil
}

// handleFlushBuild executes one flush-build job under the shared
// job-dedupe table (cancellation rides "compact_cancel").
func (s *Server) handleFlushBuild(from int, argBytes []byte) ([]byte, error) {
	args, err := DecodeFlushBuildArgs(argBytes)
	if err != nil {
		return nil, err
	}
	return s.withJobDedupe(args.JobID, func() ([]byte, []*sstable.Meta, error) {
		return s.runFlushBuild(args)
	})
}

// flushEntry is one (internal key, value) pair ready for the table writer.
type flushEntry struct {
	ikey  []byte
	value []byte
}

// runFlushBuild materializes the entries (inline or WAL replay),
// serializes them into a fresh self-region extent, builds the requested
// footer sections, and returns the encoded table meta (with the built
// index/filter bytes for the compute-side cache).
func (s *Server) runFlushBuild(args *FlushBuildArgs) ([]byte, []*sstable.Meta, error) {
	var entries []flushEntry
	var err error
	if args.Replay != nil {
		entries, err = s.replayEntries(args.Replay)
	} else {
		entries, err = s.inlineEntries(args)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("memnode: flush_build with no entries")
	}

	off, err := s.selfAlloc.Alloc(int(args.Capacity))
	if err != nil {
		return nil, nil, fmt.Errorf("memnode: flush_build allocation: %w", err)
	}
	abs := int(s.selfBase + off)
	sink := sstable.NewLocalSink(s.dataMR, abs)
	w := sstable.NewWriter(args.Format, sink, args.BlockSize, args.BitsPerKey, sstable.Options{
		Costs: s.cfg.Costs, Charge: s.charge,
		SkipIndex:   !args.BuildIndex,
		SkipFilter:  !args.BuildFilter,
		DeferFooter: true,
	})
	var maxSeq uint64
	for _, e := range entries {
		w.Add(e.ikey, e.value)
		if _, seq, _, perr := keys.Parse(e.ikey); perr == nil && uint64(seq) > maxSeq {
			maxSeq = uint64(seq)
		}
	}
	res, err := w.Finish()
	if err != nil {
		s.selfAlloc.Free(off, int(args.Capacity))
		return nil, nil, err
	}
	// Footer placement: sections built here land right after the data, in
	// index-then-filter order, but only as a contiguous prefix — with the
	// index left to the compute node, the filter's final position
	// (Size+IndexLen) is unknowable here, so its bytes travel back in the
	// reply meta and the compute node places them.
	placed := 0
	if args.BuildIndex {
		sink.Write(res.Index.Raw())
		placed += res.IndexLen
		if args.BuildFilter {
			sink.Write(res.Filter)
			placed += res.FilterLen
		}
	}
	actual := int(res.Size) + placed
	if !args.BuildIndex || !args.BuildFilter {
		actual += int(args.FooterReserve) // room for compute-built sections
	}
	if class := int(remote.ClassSize(int(args.ExtentCap))); args.ExtentCap > 0 && actual < class {
		actual = class
	}
	extent := s.selfAlloc.Shrink(off, actual)
	m := &sstable.Meta{
		// The ID is assigned by the compute node on receipt.
		Size: res.Size, Extent: extent,
		IndexLen: res.IndexLen, FilterLen: res.FilterLen, Count: res.Count,
		Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
		Data:        s.dataMR.Addr(abs),
		CreatorNode: s.node.ID,
		Format:      args.Format, BlockSize: args.BlockSize,
		Index: res.Index, Filter: res.Filter,
	}
	outputs := []*sstable.Meta{m}
	return EncodeMetas(outputs), outputs, nil
}

// inlineEntries decodes contents-mode frames (already validated by
// DecodeFlushBuildArgs) into writer-ready entries, charging the copy and
// parse work to this node.
func (s *Server) inlineEntries(args *FlushBuildArgs) ([]flushEntry, error) {
	entries := make([]flushEntry, 0, args.Count)
	rest := args.Entries
	for i := 0; i < args.Count; i++ {
		klen := int(binary.LittleEndian.Uint32(rest))
		vlen := int(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		entries = append(entries, flushEntry{ikey: rest[:klen], value: rest[klen : klen+vlen]})
		rest = rest[klen+vlen:]
	}
	s.charge(sim.Bytes(len(args.Entries), s.cfg.Costs.MemcpyByte) +
		sim.Duration(args.Count)*s.cfg.Costs.EntryParse)
	return entries, nil
}

// replayEntries rebuilds the memtable's entries from the WAL ring in this
// node's own DRAM: parse the named records, keep entries inside the
// memtable's sequence range (records may span a memtable boundary), and
// restore ascending internal-key order — the insertion the memtable's
// skiplist did on the compute node, now done here.
func (s *Server) replayEntries(r *FlushReplay) ([]flushEntry, error) {
	s.logMu.Lock()
	slot, ok := s.logs[r.LogKey]
	mr := s.logMR
	s.logMu.Unlock()
	if !ok || mr == nil {
		return nil, fmt.Errorf("memnode: flush_build replay of unknown log %#x", r.LogKey)
	}
	_, ringBase, ringSize, err := wal.Geometry(slot.Size)
	if err != nil {
		return nil, err
	}
	var entries []flushEntry
	ringBytes, parsed := 0, 0
	for i, loc := range r.Records {
		if loc.Size < 0 || loc.Off < 0 || loc.Off+loc.Size > ringSize {
			return nil, fmt.Errorf("memnode: replay record %d outside ring", i)
		}
		rec, ok := wal.ParseReplayRecord(mr.Bytes(int(slot.Addr.Off)+ringBase+loc.Off, loc.Size), r.Epoch)
		if !ok {
			return nil, fmt.Errorf("memnode: replay record %d failed to parse", i)
		}
		ringBytes += loc.Size
		for _, e := range rec.Entries {
			parsed++
			if e.Seq < r.SeqLo || e.Seq > r.SeqHi {
				continue
			}
			entries = append(entries, flushEntry{
				ikey:  keys.Append(nil, e.Key, keys.Seq(e.Seq), keys.Kind(e.Kind)),
				value: e.Value,
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return keys.Compare(entries[i].ikey, entries[j].ikey) < 0
	})
	s.charge(sim.Bytes(ringBytes, s.cfg.Costs.MemcpyByte) +
		sim.Duration(parsed)*s.cfg.Costs.EntryParse)
	return entries, nil
}
