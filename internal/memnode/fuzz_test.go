package memnode

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/wal"
)

// FuzzDecodeFlushBuildArgs: flush_build arguments arrive over the fabric
// from an arbitrary compute node; hostile bytes must decode or error, never
// panic, and whatever decodes must survive a re-encode/re-decode round trip
// unchanged (the handler aliases the validated entry frames directly).
func FuzzDecodeFlushBuildArgs(f *testing.F) {
	ikey := append([]byte("k1"), make([]byte, keys.TrailerLen)...)
	inline := &FlushBuildArgs{
		JobID: 7, BlockSize: 4096, BitsPerKey: 10,
		ExtentCap: 1 << 16, Capacity: 1 << 15, FooterReserve: 512,
		BuildIndex: true, BuildFilter: true,
		Count: 1,
	}
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(ikey)))
	frame = binary.LittleEndian.AppendUint32(frame, 3)
	frame = append(frame, ikey...)
	frame = append(frame, "val"...)
	inline.Entries = frame
	f.Add(EncodeFlushBuildArgs(inline))

	replay := &FlushBuildArgs{
		JobID: 9, Capacity: 1 << 15, ExtentCap: 1 << 16,
		Replay: &FlushReplay{LogKey: 3, Epoch: 1, SeqLo: 10, SeqHi: 20,
			Records: []wal.RecordLoc{{Off: 64, Size: 40}, {Off: 104, Size: 40}}},
	}
	f.Add(EncodeFlushBuildArgs(replay))

	f.Add(EncodeFlushBuildArgs(inline)[:20]) // truncated fixed header
	f.Add([]byte{})                          // empty
	zero := make([]byte, 43)                 // all-zero: Capacity 0 must error
	f.Add(zero)
	torn := EncodeFlushBuildArgs(inline)
	torn[len(torn)-10] ^= 0xFF // corrupt an entry length
	f.Add(torn)

	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeFlushBuildArgs(b)
		if err != nil {
			return
		}
		if a.Capacity <= 0 || a.ExtentCap < 0 || a.FooterReserve < 0 {
			t.Fatalf("decode accepted out-of-range sizes: %+v", a)
		}
		if a.Replay != nil {
			for i, r := range a.Replay.Records {
				if r.Off < 0 || r.Size <= 0 {
					t.Fatalf("decode accepted replay record %d = %+v", i, r)
				}
			}
		}
		// Round trip: re-encoding the decoded struct must reproduce a payload
		// that decodes to the same thing (frames were validated end-to-end).
		b2 := EncodeFlushBuildArgs(a)
		a2, err := DecodeFlushBuildArgs(b2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if a2.JobID != a.JobID || a2.Count != a.Count ||
			a2.BuildIndex != a.BuildIndex || a2.BuildFilter != a.BuildFilter ||
			!bytes.Equal(a2.Entries, a.Entries) ||
			(a2.Replay == nil) != (a.Replay == nil) {
			t.Fatalf("round trip diverged:\n  %+v\n  %+v", a, a2)
		}
		if a.Replay != nil && len(a2.Replay.Records) != len(a.Replay.Records) {
			t.Fatalf("round trip lost replay records: %d vs %d",
				len(a2.Replay.Records), len(a.Replay.Records))
		}
	})
}
