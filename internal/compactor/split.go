package compactor

import (
	"bytes"
	"sort"

	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// SplitRanges partitions the inputs' user-key span into at most k
// contiguous subranges of roughly equal data so subcompaction workers can
// merge them in parallel (§V-A). Each range is [lo, hi) in user-key space;
// nil bounds are unbounded. Boundaries are drawn from the largest input's
// index so versions of one user key never straddle two ranges.
//
// k is clamped so every subrange still carries at least one output table's
// worth of data (tableSize): splitting small merges would splinter the
// tree into shards of tiny tables.
func SplitRanges(inputs []*sstable.Meta, k int, tableSize int64) [][2][]byte {
	if tableSize > 0 {
		var total int64
		for _, m := range inputs {
			total += m.Size
		}
		if maxK := int(total / tableSize); k > maxK {
			k = maxK
		}
	}
	if k <= 1 || len(inputs) == 0 {
		return [][2][]byte{{nil, nil}}
	}
	// Sample boundary keys from the input with the most index records.
	var biggest *sstable.Meta
	for _, m := range inputs {
		if biggest == nil || m.Index.NumRecords() > biggest.Index.NumRecords() {
			biggest = m
		}
	}
	n := biggest.Index.NumRecords()
	if n < 2*k {
		return [][2][]byte{{nil, nil}}
	}
	var bounds [][]byte
	for i := 1; i < k; i++ {
		rec, _, _, _ := biggest.Index.Record(i * n / k)
		bounds = append(bounds, append([]byte(nil), keys.UserKey(rec)...))
	}
	sort.Slice(bounds, func(i, j int) bool { return bytes.Compare(bounds[i], bounds[j]) < 0 })
	// Deduplicate.
	uniq := bounds[:0]
	for _, b := range bounds {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], b) {
			uniq = append(uniq, b)
		}
	}
	ranges := make([][2][]byte, 0, len(uniq)+1)
	var lo []byte
	for _, b := range uniq {
		ranges = append(ranges, [2][]byte{lo, b})
		lo = b
	}
	ranges = append(ranges, [2][]byte{lo, nil})
	return ranges
}
