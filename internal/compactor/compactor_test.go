package compactor

import (
	"fmt"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// memory-backed sink/fetcher/factory for format-level testing.
type memSink struct{ buf *[]byte }

func (s memSink) Write(p []byte) { *s.buf = append(*s.buf, p...) }
func (s memSink) Finish() error  { return nil }

type memFetcher struct{ buf *[]byte }

func (f memFetcher) ReadAt(off, n int) ([]byte, error) { return (*f.buf)[off : off+n], nil }

type memTables struct{ bufs []*[]byte }

func (m *memTables) factory() Factory {
	return func(capacity int64) (sstable.Sink, Commit, error) {
		buf := new([]byte)
		m.bufs = append(m.bufs, buf)
		id := uint64(len(m.bufs))
		commit := func(res sstable.BuildResult, maxSeq uint64) (*sstable.Meta, error) {
			return &sstable.Meta{
				ID: id, Size: res.Size, Extent: capacity, Count: res.Count,
				Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
				Format: sstable.ByteAddr, Index: res.Index, Filter: res.Filter,
			}, nil
		}
		return memSink{buf}, commit, nil
	}
}

func (m *memTables) fetcherFor(meta *sstable.Meta) sstable.Fetcher {
	return memFetcher{m.bufs[meta.ID-1]}
}

// buildInput makes a table from explicit entries.
func buildInput(t *testing.T, entries []struct {
	key  string
	seq  keys.Seq
	kind keys.Kind
	val  string
}) Input {
	t.Helper()
	buf := new([]byte)
	w := sstable.NewWriter(sstable.ByteAddr, memSink{buf}, 0, 10, sstable.Options{})
	for _, e := range entries {
		w.Add(keys.Append(nil, []byte(e.key), e.seq, e.kind), []byte(e.val))
	}
	res, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	meta := &sstable.Meta{Size: res.Size, Count: res.Count, Smallest: res.Smallest,
		Largest: res.Largest, Format: sstable.ByteAddr, Index: res.Index, Filter: res.Filter}
	return Input{Meta: meta, Fetch: memFetcher{buf}}
}

type entry = struct {
	key  string
	seq  keys.Seq
	kind keys.Kind
	val  string
}

func params(tableSize int64) Params {
	return Params{Format: sstable.ByteAddr, BitsPerKey: 10, TableSize: tableSize,
		SmallestSnapshot: keys.MaxSeq, DropTombstones: true}
}

// readAll scans an output table's (key, seq, kind, value) tuples.
func readAll(t *testing.T, m *memTables, meta *sstable.Meta) []string {
	t.Helper()
	r := sstable.NewReader(meta, m.fetcherFor(meta), sstable.Options{})
	it := r.NewIterator(1 << 20)
	var out []string
	for it.First(); it.Valid(); it.Next() {
		uk, seq, kind, _ := keys.Parse(it.Key())
		out = append(out, fmt.Sprintf("%s@%d/%d=%s", uk, seq, kind, it.Value()))
	}
	return out
}

func TestMergeTwoTablesSorted(t *testing.T) {
	in1 := buildInput(t, []entry{{"a", 1, keys.KindSet, "va"}, {"c", 1, keys.KindSet, "vc"}})
	in2 := buildInput(t, []entry{{"b", 2, keys.KindSet, "vb"}, {"d", 2, keys.KindSet, "vd"}})
	mt := &memTables{}
	outs, err := Run([]Input{in1, in2}, params(1<<20), mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d outputs, want 1", len(outs))
	}
	got := readAll(t, mt, outs[0])
	want := []string{"a@1/1=va", "b@2/1=vb", "c@1/1=vc", "d@2/1=vd"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	if outs[0].MaxSeq != 2 {
		t.Fatalf("MaxSeq = %d, want 2", outs[0].MaxSeq)
	}
}

func TestShadowedVersionsDropped(t *testing.T) {
	newer := buildInput(t, []entry{{"k", 9, keys.KindSet, "new"}})
	older := buildInput(t, []entry{{"k", 3, keys.KindSet, "old"}})
	mt := &memTables{}
	outs, err := Run([]Input{newer, older}, params(1<<20), mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, mt, outs[0])
	if len(got) != 1 || got[0] != "k@9/1=new" {
		t.Fatalf("merged = %v, want only k@9", got)
	}
}

func TestSnapshotProtectsOldVersions(t *testing.T) {
	newer := buildInput(t, []entry{{"k", 9, keys.KindSet, "new"}})
	older := buildInput(t, []entry{{"k", 3, keys.KindSet, "old"}})
	p := params(1 << 20)
	p.SmallestSnapshot = 5 // a reader at seq 5 must still see k@3
	mt := &memTables{}
	outs, err := Run([]Input{newer, older}, p, mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, mt, outs[0])
	want := []string{"k@9/1=new", "k@3/1=old"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
}

func TestTombstonesDropWithShadowedData(t *testing.T) {
	del := buildInput(t, []entry{{"k", 9, keys.KindDelete, ""}})
	val := buildInput(t, []entry{{"k", 3, keys.KindSet, "old"}, {"live", 4, keys.KindSet, "x"}})
	mt := &memTables{}
	outs, err := Run([]Input{del, val}, params(1<<20), mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, mt, outs[0])
	if len(got) != 1 || got[0] != "live@4/1=x" {
		t.Fatalf("merged = %v, want only live@4", got)
	}
}

func TestTombstonesKeptWhenNotBottomLevel(t *testing.T) {
	del := buildInput(t, []entry{{"k", 9, keys.KindDelete, ""}})
	p := params(1 << 20)
	p.DropTombstones = false
	mt := &memTables{}
	outs, err := Run([]Input{del}, p, mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, mt, outs[0])
	if len(got) != 1 || got[0] != "k@9/0=" {
		t.Fatalf("merged = %v, want tombstone kept", got)
	}
}

func TestOutputRotationAtTableSize(t *testing.T) {
	var es []entry
	for i := 0; i < 100; i++ {
		es = append(es, entry{fmt.Sprintf("key-%04d", i), keys.Seq(i + 1), keys.KindSet, "0123456789012345678901234567890123456789"})
	}
	in := buildInput(t, es)
	mt := &memTables{}
	outs, err := Run([]Input{in}, params(1000), mt.factory()) // ~60B/entry, rotate ~ every 17
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) < 4 {
		t.Fatalf("%d outputs, want rotation into >= 4", len(outs))
	}
	total := 0
	var last string
	for _, o := range outs {
		for _, s := range readAll(t, mt, o) {
			if s <= last {
				t.Fatalf("entries out of order across outputs: %q after %q", s, last)
			}
			last = s
			total++
		}
	}
	if total != 100 {
		t.Fatalf("total entries = %d, want 100", total)
	}
}

func TestSubrangeBounds(t *testing.T) {
	var es []entry
	for i := 0; i < 100; i++ {
		es = append(es, entry{fmt.Sprintf("key-%04d", i), keys.Seq(i + 1), keys.KindSet, "v"})
	}
	in := buildInput(t, es)
	p := params(1 << 20)
	p.Lo, p.Hi = []byte("key-0030"), []byte("key-0060")
	mt := &memTables{}
	outs, err := Run([]Input{in}, p, mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, mt, outs[0])
	if len(got) != 30 {
		t.Fatalf("subrange produced %d entries, want 30", len(got))
	}
	if got[0] != "key-0030@31/1=v" {
		t.Fatalf("first = %q", got[0])
	}
}

func TestSplitRangesCoverAndPartition(t *testing.T) {
	var es []entry
	for i := 0; i < 1000; i++ {
		es = append(es, entry{fmt.Sprintf("key-%05d", i), keys.Seq(i + 1), keys.KindSet, "v"})
	}
	in := buildInput(t, es)
	ranges := SplitRanges([]*sstable.Meta{in.Meta}, 4, 1)
	if len(ranges) != 4 {
		t.Fatalf("%d ranges, want 4", len(ranges))
	}
	if ranges[0][0] != nil || ranges[len(ranges)-1][1] != nil {
		t.Fatal("outer bounds must be unbounded")
	}
	for i := 1; i < len(ranges); i++ {
		if string(ranges[i][0]) != string(ranges[i-1][1]) {
			t.Fatalf("ranges not contiguous at %d", i)
		}
	}
	// Running all subranges yields exactly the full set once.
	mt := &memTables{}
	total := 0
	for _, r := range ranges {
		p := params(1 << 20)
		p.Lo, p.Hi = r[0], r[1]
		outs, err := Run([]Input{in}, p, mt.factory())
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			total += o.Count
		}
	}
	if total != 1000 {
		t.Fatalf("subranges produced %d entries total, want 1000", total)
	}
}

func TestSplitRangesSmallInputSingleRange(t *testing.T) {
	in := buildInput(t, []entry{{"a", 1, keys.KindSet, "v"}})
	ranges := SplitRanges([]*sstable.Meta{in.Meta}, 8, 1)
	if len(ranges) != 1 {
		t.Fatalf("tiny input split into %d ranges", len(ranges))
	}
}

func TestEmptyMergeProducesNoOutputs(t *testing.T) {
	del := buildInput(t, []entry{{"k", 9, keys.KindDelete, ""}})
	mt := &memTables{}
	outs, err := Run([]Input{del}, params(1<<20), mt.factory())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("%d outputs from tombstone-only merge, want 0", len(outs))
	}
}
