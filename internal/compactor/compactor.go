// Package compactor merges SSTables. The same executor runs in two places:
// on the memory node for dLSM's near-data compaction (§V), where inputs are
// read from local memory and outputs written to the node's own region, and
// on the compute node for the baseline/ablation configurations, where every
// input byte is fetched over the network and every output byte written
// back.
package compactor

import (
	"bytes"
	"time"

	"dlsm/internal/iterx"
	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// Input is one table to merge.
type Input struct {
	Meta  *sstable.Meta
	Fetch sstable.Fetcher
}

// Commit finalizes one output table, assigning its identity and location.
type Commit func(res sstable.BuildResult, maxSeq uint64) (*sstable.Meta, error)

// Factory creates output tables: it allocates an extent of the given
// capacity and returns the byte sink plus the commit callback.
type Factory func(capacity int64) (sstable.Sink, Commit, error)

// Params configures one merge.
type Params struct {
	Format     sstable.Format
	BlockSize  int
	BitsPerKey int
	TableSize  int64 // rotate outputs at this much data
	// ExtentCap is the allocated extent size per output (data + footer
	// must fit); 0 derives a default from TableSize.
	ExtentCap int64

	// SmallestSnapshot is the oldest sequence number any live reader can
	// observe; older shadowed versions are dropped.
	SmallestSnapshot keys.Seq
	// DropTombstones discards deletes once shadowing is resolved (set when
	// compacting into the deepest populated level).
	DropTombstones bool

	// Lo/Hi restrict the merge to user keys in [Lo, Hi) for subcompaction
	// parallelism (§V-A); nil means unbounded.
	Lo, Hi []byte

	// Prefetch is the sequential read-ahead for input iterators.
	Prefetch int

	Opts sstable.Options // cost model + CPU charger of the executing node
}

// Run merges the inputs into size-rotated output tables.
func Run(inputs []Input, p Params, factory Factory) ([]*sstable.Meta, error) {
	iters := make([]sstable.Iterator, len(inputs))
	for i, in := range inputs {
		iters[i] = sstable.NewReader(in.Meta, in.Fetch, p.Opts).NewIterator(p.Prefetch)
	}
	merged := iterx.Merging(keys.Compare, iters...)
	defer merged.Close()
	if p.Lo != nil {
		merged.SeekGE(keys.AppendLookup(nil, p.Lo, keys.MaxSeq))
	} else {
		merged.First()
	}

	var (
		outputs  []*sstable.Meta
		w        sstable.Writer
		commit   Commit
		maxSeq   uint64
		curUkey  []byte
		haveUkey bool
		lastKept keys.Seq // seq of the most recent kept version of curUkey
		// wantRotate defers output rotation to the next user-key boundary.
		wantRotate bool
		charge     mergeCharger
	)
	charge.opts = p.Opts

	finishOutput := func() error {
		if w == nil {
			return nil
		}
		res, err := w.Finish()
		if err != nil {
			return err
		}
		meta, err := commit(res, maxSeq)
		if err != nil {
			return err
		}
		outputs = append(outputs, meta)
		w, commit, maxSeq = nil, nil, 0
		return nil
	}

	for ; merged.Valid(); merged.Next() {
		ikey := merged.Key()
		ukey, seq, kind, err := keys.Parse(ikey)
		if err != nil {
			return nil, err
		}
		if p.Hi != nil && bytes.Compare(ukey, p.Hi) >= 0 {
			break
		}
		charge.entry()

		// LevelDB's shadowing rule: within one user key (versions arrive
		// newest-first), a version is droppable once an already-kept newer
		// version is itself invisible to every live snapshot.
		if !haveUkey || !bytes.Equal(ukey, curUkey) {
			// User-key boundary: safe point to rotate the output. One
			// key's versions must never straddle two tables — point
			// lookups probe a single file per level.
			if wantRotate {
				if err := finishOutput(); err != nil {
					return nil, err
				}
				wantRotate = false
			}
			curUkey = append(curUkey[:0], ukey...)
			haveUkey = true
			lastKept = keys.MaxSeq
		} else if lastKept <= p.SmallestSnapshot {
			continue // shadowed for every possible reader
		}
		drop := kind == keys.KindDelete && seq <= p.SmallestSnapshot && p.DropTombstones
		lastKept = seq
		if drop {
			continue
		}

		if w == nil {
			var sink sstable.Sink
			var err error
			sink, commit, err = factory(p.extentCap())
			if err != nil {
				return nil, err
			}
			w = sstable.NewWriter(p.Format, sink, p.BlockSize, p.BitsPerKey, p.Opts)
		}
		w.Add(ikey, merged.Value())
		if uint64(seq) > maxSeq {
			maxSeq = uint64(seq)
		}
		// Rotate at the data budget (like RocksDB, so table cadence is
		// format-independent) or earlier if data plus the index/filter
		// footer approaches the extent — the footer can rival the data at
		// small values. The actual rotation waits for the next user-key
		// boundary above.
		if w.EstimatedSize() >= p.TableSize ||
			w.EstimatedSize()+w.FooterSize() >= p.extentCap()-64<<10 {
			wantRotate = true
		}
	}
	if err := merged.Error(); err != nil {
		return nil, err
	}
	charge.flush()
	if err := finishOutput(); err != nil {
		return nil, err
	}
	return outputs, nil
}

// extentCap sizes the output extent: the data budget plus headroom for a
// typical footer and rotation slack.
func (p Params) extentCap() int64 {
	if p.ExtentCap > 0 {
		return p.ExtentCap
	}
	return p.TableSize + p.TableSize/4 + 128<<10
}

// mergeCharger batches the per-entry merge CPU cost.
type mergeCharger struct {
	opts    sstable.Options
	pending int
}

func (m *mergeCharger) entry() {
	if m.opts.Charge == nil {
		return
	}
	m.pending++
	if time.Duration(m.pending)*m.opts.Costs.MergeEntry >= 20*time.Microsecond {
		m.flush()
	}
}

func (m *mergeCharger) flush() {
	if m.opts.Charge != nil && m.pending > 0 {
		m.opts.Charge(time.Duration(m.pending) * m.opts.Costs.MergeEntry)
		m.pending = 0
	}
}
