// Package skiplist implements the lock-free concurrent skip list used for
// dLSM MemTables (§IV). Writers insert with per-level CAS splices and never
// take a lock; readers traverse atomically published pointers. Nodes and
// payload bytes live in an arena owned by the enclosing MemTable.
package skiplist

import (
	"sync/atomic"

	"dlsm/internal/arena"
)

const maxHeight = 18

// List is a concurrent sorted map from byte keys to byte values.
// Keys must be unique (dLSM guarantees this: every entry carries a distinct
// sequence number in its internal key). There is no delete: LSM deletes are
// tombstone inserts.
type List struct {
	cmp    func(a, b []byte) int
	arena  *arena.Arena
	head   *node
	height atomic.Int32
	count  atomic.Int64
	rnd    atomic.Uint64
}

type node struct {
	key, val []byte
	next     []atomic.Pointer[node]
}

// New creates an empty list ordered by cmp, allocating from a.
func New(cmp func(a, b []byte) int, a *arena.Arena) *List {
	l := &List{cmp: cmp, arena: a, head: &node{next: make([]atomic.Pointer[node], maxHeight)}}
	l.height.Store(1)
	l.rnd.Store(0x9E3779B97F4A7C15)
	return l
}

// Len returns the number of entries.
func (l *List) Len() int { return int(l.count.Load()) }

// randomHeight draws a geometric height with p = 1/4 (LevelDB's choice).
func (l *List) randomHeight() int {
	// xorshift64*; contention on the CAS is acceptable as the loop is tiny.
	for {
		old := l.rnd.Load()
		x := old
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		if l.rnd.CompareAndSwap(old, x) {
			h := 1
			v := x * 0x2545F4914F6CDD1D
			for h < maxHeight && v&3 == 0 {
				h++
				v >>= 2
			}
			return h
		}
	}
}

// findSplice fills prev/next with the nodes straddling key at every level.
func (l *List) findSplice(key []byte, prev, next *[maxHeight]*node) {
	x := l.head
	for level := maxHeight - 1; level >= 0; level-- {
		for {
			nx := x.next[level].Load()
			if nx == nil || l.cmp(nx.key, key) >= 0 {
				prev[level], next[level] = x, nx
				break
			}
			x = nx
		}
	}
}

// Insert adds (key, value). Both slices are retained; callers should pass
// arena-stable bytes. Inserting a key that is already present panics — the
// engine's unique sequence numbers make that a logic error.
func (l *List) Insert(key, val []byte) {
	var prev, next [maxHeight]*node
	l.findSplice(key, &prev, &next)
	if next[0] != nil && l.cmp(next[0].key, key) == 0 {
		panic("skiplist: duplicate internal key")
	}

	h := l.randomHeight()
	for {
		lh := l.height.Load()
		if int(lh) >= h || l.height.CompareAndSwap(lh, int32(h)) {
			break
		}
	}

	n := &node{key: key, val: val, next: make([]atomic.Pointer[node], h)}
	for level := 0; level < h; level++ {
		for {
			p, nx := prev[level], next[level]
			n.next[level].Store(nx)
			if p.next[level].CompareAndSwap(nx, n) {
				break
			}
			// Lost a race at this level: recompute the splice from p.
			p, nx = l.findSpliceForLevel(key, p, level)
			prev[level], next[level] = p, nx
		}
	}
	l.count.Add(1)
}

// findSpliceForLevel recomputes the splice at one level starting from a
// known-preceding node.
func (l *List) findSpliceForLevel(key []byte, start *node, level int) (*node, *node) {
	x := start
	for {
		nx := x.next[level].Load()
		if nx == nil || l.cmp(nx.key, key) >= 0 {
			return x, nx
		}
		x = nx
	}
}

// seekGE returns the first node with key >= target, or nil.
func (l *List) seekGE(target []byte) *node {
	x := l.head
	for level := int(l.height.Load()) - 1; level >= 0; level-- {
		for {
			nx := x.next[level].Load()
			if nx == nil || l.cmp(nx.key, target) >= 0 {
				break
			}
			x = nx
		}
	}
	return x.next[0].Load()
}

// Iterator walks the list in key order. Concurrent inserts may or may not
// be observed; entries never disappear.
type Iterator struct {
	l *List
	n *node
}

// NewIterator returns an unpositioned iterator.
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current entry's key. Valid only.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current entry's value. Valid only.
func (it *Iterator) Value() []byte { return it.n.val }

// First positions at the smallest entry.
func (it *Iterator) First() { it.n = it.l.head.next[0].Load() }

// SeekGE positions at the first entry with key >= target.
func (it *Iterator) SeekGE(target []byte) { it.n = it.l.seekGE(target) }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }
