package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"dlsm/internal/arena"
)

func newList() *List { return New(bytes.Compare, arena.New()) }

func TestInsertAndIterateSorted(t *testing.T) {
	l := newList()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		l.Insert([]byte(k), []byte("v-"+k))
	}
	it := l.NewIterator()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if want := "v-" + string(it.Key()); string(it.Value()) != want {
			t.Fatalf("value for %s = %q, want %q", it.Key(), it.Value(), want)
		}
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iteration order %v, want %v", got, want)
	}
	if l.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(keys))
	}
}

func TestSeekGE(t *testing.T) {
	l := newList()
	for _, k := range []string{"b", "d", "f"} {
		l.Insert([]byte(k), nil)
	}
	cases := []struct{ target, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"}, {"g", ""},
	}
	for _, c := range cases {
		it := l.NewIterator()
		it.SeekGE([]byte(c.target))
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("SeekGE(%q) found %q, want none", c.target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekGE(%q) = %v, want %q", c.target, it, c.want)
		}
	}
}

func TestEmptyListIterator(t *testing.T) {
	l := newList()
	it := l.NewIterator()
	it.First()
	if it.Valid() {
		t.Fatal("iterator on empty list is valid")
	}
	it.SeekGE([]byte("x"))
	if it.Valid() {
		t.Fatal("SeekGE on empty list is valid")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	l := newList()
	l.Insert([]byte("k"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	l.Insert([]byte("k"), nil)
}

func TestConcurrentInsertsAllVisible(t *testing.T) {
	l := newList()
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-k%05d", w, i)
				l.Insert([]byte(k), []byte(k))
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*perWriter)
	}
	it := l.NewIterator()
	n, prev := 0, []byte(nil)
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violated: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != writers*perWriter {
		t.Fatalf("iterated %d entries, want %d", n, writers*perWriter)
	}
}

func TestQuickPropertySortedAndComplete(t *testing.T) {
	f := func(raw [][]byte) bool {
		// Deduplicate inputs (duplicates panic by design).
		seen := map[string]bool{}
		var ks [][]byte
		for _, k := range raw {
			if !seen[string(k)] {
				seen[string(k)] = true
				ks = append(ks, k)
			}
		}
		l := newList()
		for _, k := range ks {
			l.Insert(append([]byte(nil), k...), nil)
		}
		want := make([]string, 0, len(ks))
		for k := range seen {
			want = append(want, k)
		}
		sort.Strings(want)
		it := l.NewIterator()
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if i >= len(want) || string(it.Key()) != want[i] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	l := newList()
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[l.randomHeight()]++
	}
	if counts[1] < 60000 || counts[1] > 90000 {
		t.Fatalf("height-1 fraction %d/100000, want ~75000", counts[1])
	}
	for h, c := range counts {
		if h > 1 && c > counts[h-1] {
			t.Fatalf("height %d count %d exceeds height %d count %d", h, c, h-1, counts[h-1])
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList()
	rnd := rand.New(rand.NewSource(1))
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%016x", rnd.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys[i], keys[i])
	}
}

func BenchmarkSeekGE(b *testing.B) {
	l := newList()
	for i := 0; i < 100000; i++ {
		l.Insert([]byte(fmt.Sprintf("%08d", i*2)), nil)
	}
	b.ResetTimer()
	it := l.NewIterator()
	for i := 0; i < b.N; i++ {
		it.SeekGE([]byte(fmt.Sprintf("%08d", (i*7919)%200000)))
	}
}
