package memtable

import (
	"fmt"
	"sync"
	"testing"

	"dlsm/internal/keys"
)

func TestAddGet(t *testing.T) {
	m := New(1, 0, 1000)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(5, keys.KindSet, []byte("k"), []byte("v2"))

	v, found, deleted := m.Get([]byte("k"), 10)
	if !found || deleted || string(v) != "v2" {
		t.Fatalf("Get@10 = (%q,%v,%v), want v2", v, found, deleted)
	}
	// Snapshot at seq 3 sees only the first version.
	v, found, deleted = m.Get([]byte("k"), 3)
	if !found || deleted || string(v) != "v1" {
		t.Fatalf("Get@3 = (%q,%v,%v), want v1", v, found, deleted)
	}
	// Snapshot before any write sees nothing.
	if _, found, _ := m.Get([]byte("k"), 0); found {
		t.Fatal("Get@0 found a write from seq 1")
	}
}

func TestTombstoneShadows(t *testing.T) {
	m := New(1, 0, 1000)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)
	_, found, deleted := m.Get([]byte("k"), 10)
	if !found || !deleted {
		t.Fatalf("tombstone not observed: found=%v deleted=%v", found, deleted)
	}
	// Older snapshot still sees the live value.
	v, found, deleted := m.Get([]byte("k"), 1)
	if !found || deleted || string(v) != "v" {
		t.Fatalf("Get@1 = (%q,%v,%v)", v, found, deleted)
	}
}

func TestGetMissingKey(t *testing.T) {
	m := New(1, 0, 1000)
	m.Add(1, keys.KindSet, []byte("aa"), []byte("v"))
	m.Add(2, keys.KindSet, []byte("cc"), []byte("v"))
	if _, found, _ := m.Get([]byte("bb"), 10); found {
		t.Fatal("found a key that was never written")
	}
}

func TestOwns(t *testing.T) {
	m := New(3, 4000, 5000)
	for seq, want := range map[keys.Seq]bool{3999: false, 4000: true, 4999: true, 5000: false} {
		if m.Owns(seq) != want {
			t.Fatalf("Owns(%d) = %v, want %v", seq, !want, want)
		}
	}
}

func TestValueBytesCopied(t *testing.T) {
	m := New(1, 0, 1000)
	buf := []byte("value")
	m.Add(1, keys.KindSet, []byte("k"), buf)
	copy(buf, "XXXXX")
	v, _, _ := m.Get([]byte("k"), 10)
	if string(v) != "value" {
		t.Fatalf("value aliased caller buffer: %q", v)
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New(1, 0, 100000)
	if m.ApproximateSize() != 0 {
		t.Fatal("fresh table has nonzero size")
	}
	for i := 0; i < 100; i++ {
		m.Add(keys.Seq(i), keys.KindSet, []byte(fmt.Sprintf("key%04d", i)), make([]byte, 100))
	}
	if m.ApproximateSize() < 100*100 {
		t.Fatalf("ApproximateSize = %d, want >= 10000", m.ApproximateSize())
	}
}

func TestIteratorOrderedBySeqWithinKey(t *testing.T) {
	m := New(1, 0, 1000)
	m.Add(1, keys.KindSet, []byte("k"), []byte("old"))
	m.Add(9, keys.KindSet, []byte("k"), []byte("new"))
	it := m.NewIterator()
	it.First()
	_, seq1, _, _ := keys.Parse(it.Key())
	it.Next()
	_, seq2, _, _ := keys.Parse(it.Key())
	if seq1 != 9 || seq2 != 1 {
		t.Fatalf("versions out of order: %d then %d, want 9 then 1", seq1, seq2)
	}
}

func TestConcurrentWritersDistinctSeqs(t *testing.T) {
	m := New(1, 0, 1<<20)
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq := keys.Seq(w*per + i)
				m.BeginWrite()
				m.Add(seq, keys.KindSet, []byte(fmt.Sprintf("k%d-%d", w, i)), []byte("v"))
				m.EndWrite()
			}
		}(w)
	}
	wg.Wait()
	if !m.QuiesceDone() {
		t.Fatal("pending writers after completion")
	}
	if m.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*per)
	}
}

func TestRefUnref(t *testing.T) {
	m := New(1, 0, 10)
	m.Ref()
	m.Unref()
	m.Unref()
	defer func() {
		if recover() == nil {
			t.Fatal("negative refcount did not panic")
		}
	}()
	m.Unref()
}
