// Package memtable implements dLSM's in-memory write buffer: a lock-free
// skiplist over arena-allocated internal keys. Each MemTable owns a
// pre-assigned, contiguous range of sequence numbers; the engine's
// range-based switch protocol (§IV) uses it to decide, without locking,
// which table a write belongs to.
package memtable

import (
	"sync/atomic"

	"dlsm/internal/arena"
	"dlsm/internal/keys"
	"dlsm/internal/skiplist"
)

// MemTable is a sorted in-memory buffer of writes.
type MemTable struct {
	id    uint64
	lo    keys.Seq      // first sequence number owned by this table
	hi    atomic.Uint64 // one past the last; shrinks on size-triggered switch
	arena *arena.Arena
	list  *skiplist.List
	refs  atomic.Int32

	// pending counts writers that claimed a sequence in [lo,hi) but have
	// not finished inserting; flush waits for it to drain to zero so the
	// flushed table is complete.
	pending atomic.Int64

	// keyBytes tracks total internal-key bytes, letting the flusher size
	// the SSTable extent (data + index footer) exactly.
	keyBytes atomic.Int64
}

// New creates a MemTable owning sequence range [lo, hi).
func New(id uint64, lo, hi keys.Seq) *MemTable {
	a := arena.New()
	m := &MemTable{id: id, lo: lo, arena: a, list: skiplist.New(keys.Compare, a)}
	m.hi.Store(uint64(hi))
	m.refs.Store(1)
	return m
}

// ID returns the table's creation-ordered id.
func (m *MemTable) ID() uint64 { return m.id }

// SeqRange returns the table's owned range [lo, hi).
func (m *MemTable) SeqRange() (lo, hi keys.Seq) { return m.lo, keys.Seq(m.hi.Load()) }

// Owns reports whether seq falls in the table's assigned range.
func (m *MemTable) Owns(seq keys.Seq) bool {
	return seq >= m.lo && seq < keys.Seq(m.hi.Load())
}

// TruncateHi shrinks the owned range to [lo, hi) during a size-triggered
// switch; the engine guarantees hi exceeds every sequence already handed
// out (the fence, see DESIGN.md).
func (m *MemTable) TruncateHi(hi keys.Seq) { m.hi.Store(uint64(hi)) }

// BeginWrite registers an in-flight writer; EndWrite completes it.
func (m *MemTable) BeginWrite() { m.pending.Add(1) }

// EndWrite marks a writer finished.
func (m *MemTable) EndWrite() { m.pending.Add(-1) }

// QuiesceDone reports whether no writers are mid-insert. The flusher spins
// on this (in virtual time) before serializing the table.
func (m *MemTable) QuiesceDone() bool { return m.pending.Load() == 0 }

// Add inserts an entry. Key and value bytes are copied into the arena.
func (m *MemTable) Add(seq keys.Seq, kind keys.Kind, ukey, value []byte) {
	m.keyBytes.Add(int64(len(ukey) + keys.TrailerLen))
	ik := m.arena.Alloc(len(ukey) + keys.TrailerLen)
	ik = keys.Append(ik[:0], ukey, seq, kind)
	var v []byte
	if len(value) > 0 {
		v = m.arena.Append(value)
	}
	m.list.Insert(ik, v)
}

// Get looks up ukey at snapshot seq. Returns:
//   - value, true, false: a live value was found
//   - nil, true, true: a tombstone shadows the key at this snapshot
//   - nil, false, false: the table has no visible version of the key
func (m *MemTable) Get(ukey []byte, seq keys.Seq) (value []byte, found, deleted bool) {
	lookup := keys.AppendLookup(make([]byte, 0, len(ukey)+keys.TrailerLen), ukey, seq)
	it := m.list.NewIterator()
	it.SeekGE(lookup)
	if !it.Valid() {
		return nil, false, false
	}
	uk, _, kind, err := keys.Parse(it.Key())
	if err != nil || string(uk) != string(ukey) {
		return nil, false, false
	}
	if kind == keys.KindDelete {
		return nil, true, true
	}
	return it.Value(), true, false
}

// ApproximateSize returns the bytes consumed by the table's arena,
// compared against the MemTable size limit to trigger switching.
func (m *MemTable) ApproximateSize() int64 { return m.arena.Used() }

// KeyBytes returns the total internal-key bytes inserted.
func (m *MemTable) KeyBytes() int64 { return m.keyBytes.Load() }

// Len returns the number of entries.
func (m *MemTable) Len() int { return m.list.Len() }

// Empty reports whether no entries were inserted.
func (m *MemTable) Empty() bool { return m.list.Len() == 0 }

// Ref increments the reference count (snapshot readers pin tables).
func (m *MemTable) Ref() { m.refs.Add(1) }

// Unref decrements the reference count. Arena memory is reclaimed by GC
// when the last reference drops and the table becomes unreachable.
func (m *MemTable) Unref() {
	if m.refs.Add(-1) < 0 {
		panic("memtable: negative refcount")
	}
}

// Iterator walks internal entries in order; used by reads (merged views)
// and by the flusher to serialize the table.
type Iterator struct{ it *skiplist.Iterator }

// NewIterator returns an iterator over the table.
func (m *MemTable) NewIterator() *Iterator { return &Iterator{it: m.list.NewIterator()} }

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// First positions at the smallest internal key.
func (it *Iterator) First() { it.it.First() }

// SeekGE positions at the first internal key >= target.
func (it *Iterator) SeekGE(target []byte) { it.it.SeekGE(target) }

// Next advances.
func (it *Iterator) Next() { it.it.Next() }

// Key returns the current internal key.
func (it *Iterator) Key() []byte { return it.it.Key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.it.Value() }

// Error always returns nil; in-memory iteration cannot fail. It satisfies
// the shared iterator interface.
func (it *Iterator) Error() error { return nil }

// Close is a no-op; in-memory iterators hold no fetch resources. It
// satisfies the shared iterator interface.
func (it *Iterator) Close() {}
