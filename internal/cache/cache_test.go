package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"dlsm/internal/telemetry"
)

func testMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		Hits:          reg.Counter("cache.hits"),
		Misses:        reg.Counter("cache.misses"),
		NegHits:       reg.Counter("cache.neg_hits"),
		Fills:         reg.Counter("cache.fills"),
		Evictions:     reg.Counter("cache.evictions"),
		Invalidations: reg.Counter("cache.invalidations"),
		Bytes:         reg.Gauge("cache.bytes"),
		HitRate:       reg.Gauge("cache.hit_rate_bp"),
	}
}

func newTestCache(budget int64, shards int) (*Cache, Metrics) {
	reg := telemetry.NewRegistry(nil)
	m := testMetrics(reg)
	return New(Config{Budget: budget, Shards: shards, Metrics: m}), m
}

func TestNilAndOff(t *testing.T) {
	var c *Cache
	if _, ok := c.GetValue(1, 0); ok {
		t.Fatal("nil cache hit")
	}
	c.FillValue(1, 0, []byte("x"))
	c.FillNegative(1, 2, 3)
	if c.Negative(1, 2, 3) {
		t.Fatal("nil cache negative hit")
	}
	c.DropTable(1)
	if c.Used() != 0 || c.Budget() != 0 || c.Len() != 0 {
		t.Fatal("nil cache has size")
	}
	if New(Config{Budget: 0}) != nil {
		t.Fatal("zero budget must return nil")
	}
}

func TestFillHit(t *testing.T) {
	c, m := newTestCache(1<<20, 1)
	val := []byte("hello-value")
	if _, ok := c.GetValue(7, 3); ok {
		t.Fatal("hit before fill")
	}
	c.FillValue(7, 3, val)
	got, ok := c.GetValue(7, 3)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("GetValue = %q, %v", got, ok)
	}
	// The returned slice must be a stable copy.
	got[0] = 'X'
	got2, _ := c.GetValue(7, 3)
	if !bytes.Equal(got2, val) {
		t.Fatal("cached value aliased caller slice")
	}
	if m.Hits.Load() != 2 || m.Misses.Load() != 1 || m.Fills.Load() != 1 {
		t.Fatalf("hits=%d misses=%d fills=%d", m.Hits.Load(), m.Misses.Load(), m.Fills.Load())
	}
	if hr := m.HitRate.Load(); hr != 2*10000/3 {
		t.Fatalf("hit rate = %d bp", hr)
	}
	if want := int64(len(val)) + slotOverhead; c.Used() != want || m.Bytes.Load() != want {
		t.Fatalf("used=%d gauge=%d want %d", c.Used(), m.Bytes.Load(), want)
	}
}

func TestEvictionUnderBudgetPressure(t *testing.T) {
	// One shard, budget for ~8 entries of 64B values.
	per := int64(64+slotOverhead) * 8
	c, m := newTestCache(per, 1)
	val := make([]byte, 64)
	for i := 0; i < 100; i++ {
		c.FillValue(1, uint32(i), val)
	}
	if c.Used() > c.Budget() {
		t.Fatalf("used %d exceeds budget %d", c.Used(), c.Budget())
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
	if m.Evictions.Load() != 100-8 {
		t.Fatalf("evictions = %d, want %d", m.Evictions.Load(), 100-8)
	}
	if m.Bytes.Load() != c.Used() {
		t.Fatalf("bytes gauge %d != used %d", m.Bytes.Load(), c.Used())
	}
	// A value larger than the shard budget is refused outright.
	c.FillValue(2, 0, make([]byte, int(per)))
	if _, ok := c.GetValue(2, 0); ok {
		t.Fatal("oversized value cached")
	}
}

func TestClockKeepsHotEntry(t *testing.T) {
	per := int64(64+slotOverhead) * 4
	c, _ := newTestCache(per, 1)
	val := make([]byte, 64)
	c.FillValue(1, 0, val)
	for i := 1; i < 50; i++ {
		c.GetValue(1, 0) // keep the reference bit set
		c.FillValue(1, uint32(i), val)
	}
	if _, ok := c.GetValue(1, 0); !ok {
		t.Fatal("hot entry evicted while cold entries churned")
	}
}

func TestNegativeCache(t *testing.T) {
	c, m := newTestCache(1<<20, 1)
	if c.Negative(5, 0xfeed, 10) {
		t.Fatal("negative hit before fill")
	}
	c.FillNegative(5, 0xfeed, 10)
	if !c.Negative(5, 0xfeed, 10) {
		t.Fatal("negative miss after fill")
	}
	if c.Negative(6, 0xfeed, 10) {
		t.Fatal("negative hit for wrong table")
	}
	if m.NegHits.Load() != 1 {
		t.Fatalf("neg hits = %d", m.NegHits.Load())
	}
}

func TestNegativeCacheSnapshots(t *testing.T) {
	c, _ := newTestCache(1<<20, 1)
	// A miss recorded at snapshot 10 answers snapshots <= 10 only: the
	// table may hold versions newer than 10 that later readers must find.
	c.FillNegative(5, 0xfeed, 10)
	if !c.Negative(5, 0xfeed, 4) {
		t.Fatal("older snapshot not answered by newer recorded miss")
	}
	if c.Negative(5, 0xfeed, 11) {
		t.Fatal("newer snapshot answered by older recorded miss")
	}
	// Re-recording keeps the newest snapshot...
	c.FillNegative(5, 0xfeed, 20)
	if !c.Negative(5, 0xfeed, 15) {
		t.Fatal("refreshed entry lost coverage")
	}
	// ...and an older fill never downgrades it.
	c.FillNegative(5, 0xfeed, 3)
	if !c.Negative(5, 0xfeed, 20) {
		t.Fatal("older fill downgraded the recorded snapshot")
	}
}

func TestDropTable(t *testing.T) {
	c, m := newTestCache(1<<20, 4)
	val := make([]byte, 100)
	for i := 0; i < 32; i++ {
		c.FillValue(1, uint32(i), val)
		c.FillValue(2, uint32(i), val)
	}
	before := c.Used()
	c.DropTable(1)
	if got := m.Invalidations.Load(); got != 32 {
		t.Fatalf("invalidations = %d, want 32", got)
	}
	if c.Len() != 32 {
		t.Fatalf("len = %d, want 32 survivors", c.Len())
	}
	if _, ok := c.GetValue(1, 0); ok {
		t.Fatal("dropped table still served")
	}
	if _, ok := c.GetValue(2, 0); !ok {
		t.Fatal("surviving table lost its entries")
	}
	if c.Used() != before/2 || m.Bytes.Load() != c.Used() {
		t.Fatalf("used=%d gauge=%d want %d", c.Used(), m.Bytes.Load(), before/2)
	}
	// Slot recycling: refills after a drop must not grow the footprint.
	for i := 0; i < 32; i++ {
		c.FillValue(3, uint32(i), val)
	}
	if c.Used() != before {
		t.Fatalf("used=%d after refill, want %d", c.Used(), before)
	}
}

func TestChargeAccounting(t *testing.T) {
	var charged time.Duration
	reg := telemetry.NewRegistry(nil)
	c := New(Config{
		Budget:        1 << 20,
		ProbeCost:     100,
		CopyNSPerByte: 1,
		Charge:        func(d time.Duration) { charged += d },
		Metrics:       testMetrics(reg),
	})
	val := make([]byte, 50)
	c.FillValue(1, 0, val) // probe + 50B copy-in = 150ns
	charged = 0
	c.GetValue(1, 0) // probe + 50B copy-out
	if charged != 100+50 {
		t.Fatalf("hit charged %dns, want 150", charged)
	}
	charged = 0
	c.GetValue(1, 99) // miss: probe only, no copy
	if charged != 100 {
		t.Fatalf("miss charged %dns, want 100", charged)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	c, _ := newTestCache(256<<10, 8)
	const tables = 4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			val := []byte(fmt.Sprintf("value-from-goroutine-%d", g))
			for i := 0; i < 5000; i++ {
				tb := uint64(i % tables)
				e := uint32(i % 512)
				switch i % 4 {
				case 0:
					c.FillValue(tb, e, val)
				case 1:
					if v, ok := c.GetValue(tb, e); ok && len(v) == 0 {
						t.Error("empty cached value")
					}
				case 2:
					c.FillNegative(tb, uint64(e)*2654435761, uint64(i))
					c.Negative(tb, uint64(e)*2654435761, uint64(i))
				case 3:
					if i%1024 == 3 {
						c.DropTable(tb)
					}
				}
			}
		}()
	}
	wg.Wait()
	if c.Used() > c.Budget() {
		t.Fatalf("used %d exceeds budget %d after churn", c.Used(), c.Budget())
	}
}
