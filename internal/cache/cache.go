// Package cache implements dLSM's compute-side hot-KV cache: a budgeted,
// sharded, concurrent cache that serves point reads from local DRAM before
// the engine falls back to the one-sided RDMA read (the communication-
// efficiency lever DEX and Outback make for disaggregated indexes).
//
// Entries are keyed by (SSTable file number, entry index). Table files are
// immutable and file numbers are never reused within a DB, so a cached
// value can never go stale: when compaction obsoletes a table the engine's
// onObsolete hook calls DropTable, which merely reclaims the dead entries'
// budget. A small direct-mapped negative-lookup cache absorbs repeated
// misses that survive the bloom filter (bloom false positives), keyed by
// (table, user-key hash) and tagged with the read snapshot that observed
// the miss — "nothing visible at snapshot S" only answers readers at
// snapshots <= S, so a miss recorded by an old-snapshot read can never
// hide versions newer than S from current readers. Negative entries for
// dead tables are harmless — the read path only consults tables in the
// current version — so they are simply overwritten over time.
//
// Eviction is CLOCK over fixed-size slot segments: slots are allocated a
// segment at a time, freed slots are recycled through a free list, and
// values reuse each slot's byte capacity, so a warm cache allocates almost
// nothing (the arena discipline of the rest of the stack). All virtual CPU
// costs (probe, value copy) are charged through Config.Charge to the sim
// core pool, and never while a shard lock is held — blocking on virtual
// time under a host mutex would wedge the simulation scheduler.
package cache

import (
	"sync"
	"time"

	"dlsm/internal/telemetry"
)

// Metrics holds the telemetry handles the cache reports into. Fields may
// be nil (nil handles are inert).
type Metrics struct {
	Hits          *telemetry.Counter // value-cache hits
	Misses        *telemetry.Counter // value-cache misses (probe found nothing)
	NegHits       *telemetry.Counter // negative-cache hits (miss answered locally)
	Fills         *telemetry.Counter // values inserted
	Evictions     *telemetry.Counter // entries evicted for budget
	Invalidations *telemetry.Counter // entries dropped with their table
	Bytes         *telemetry.Gauge   // bytes currently cached (values + slot overhead)
	HitRate       *telemetry.Gauge   // hits/(hits+misses) in basis points
}

// Config sizes and wires a Cache.
type Config struct {
	// Budget is the total byte budget across all shards; values plus a
	// fixed per-slot overhead are charged against it.
	Budget int64
	// Shards is the concurrency shard count (rounded up to a power of two,
	// default 8). Each shard owns Budget/Shards bytes.
	Shards int
	// NegSlots is the per-shard size of the direct-mapped negative cache
	// (default 2048 slots, allocated lazily on first negative fill).
	NegSlots int
	// ProbeCost is the virtual CPU charged per cache probe.
	ProbeCost time.Duration
	// CopyNSPerByte is the virtual CPU per byte of value copied in or out.
	CopyNSPerByte float64
	// Charge accounts virtual CPU to the compute node; nil disables.
	Charge func(time.Duration)
	// Metrics receives hit/miss/eviction telemetry.
	Metrics Metrics
}

// slotOverhead approximates the per-entry bookkeeping (slot struct + index
// map entry) charged against the budget alongside the value bytes.
const slotOverhead = 64

// segSize is the number of slots per allocation segment.
const segSize = 256

// ckey identifies one cached value: (table file number, entry index).
type ckey struct {
	table uint64
	entry uint32
}

type slot struct {
	key  ckey
	val  []byte
	ref  bool // CLOCK reference bit
	live bool
}

type negEnt struct {
	table uint64
	fp    uint64
	seq   uint64 // newest snapshot the miss was observed at
}

type shard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	index  map[ckey]int32
	segs   [][]slot
	nslots int32
	hand   int32
	free   []int32
	neg    []negEnt
}

// Cache is the sharded hot-KV cache. All methods are safe for concurrent
// use; all methods on a nil *Cache are inert, so callers need no guards.
type Cache struct {
	cfg    Config
	mask   uint64
	shards []shard
}

// New builds a cache with cfg. A non-positive budget returns nil (off);
// the nil receiver is safe to use.
func New(cfg Config) *Cache {
	if cfg.Budget <= 0 {
		return nil
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.NegSlots <= 0 {
		cfg.NegSlots = 2048
	}
	c := &Cache{cfg: cfg, mask: uint64(n - 1), shards: make([]shard, n)}
	per := cfg.Budget / int64(n)
	if per < slotOverhead*2 {
		per = slotOverhead * 2
	}
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].index = make(map[ckey]int32)
	}
	return c
}

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Cache) shardFor(h uint64) *shard { return &c.shards[h&c.mask] }

func (c *Cache) charge(d time.Duration) {
	if c.cfg.Charge != nil && d > 0 {
		c.cfg.Charge(d)
	}
}

func (c *Cache) copyCost(n int) time.Duration {
	return time.Duration(float64(n) * c.cfg.CopyNSPerByte)
}

// updateHitRate refreshes the hit-rate gauge (basis points) from the
// hit/miss counters.
func (c *Cache) updateHitRate() {
	m := c.cfg.Metrics
	if m.HitRate == nil {
		return
	}
	h, ms := m.Hits.Load(), m.Misses.Load()
	if t := h + ms; t > 0 {
		m.HitRate.Set(h * 10000 / t)
	}
}

// GetValue returns a stable copy of the cached value for (table, entry).
func (c *Cache) GetValue(table uint64, entry uint32) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.charge(c.cfg.ProbeCost)
	sh := c.shardFor(mix(table ^ uint64(entry)<<1))
	sh.mu.Lock()
	idx, ok := sh.index[ckey{table, entry}]
	if !ok {
		sh.mu.Unlock()
		c.cfg.Metrics.Misses.Inc()
		c.updateHitRate()
		return nil, false
	}
	s := sh.slot(idx)
	s.ref = true
	out := append([]byte(nil), s.val...)
	sh.mu.Unlock()
	c.cfg.Metrics.Hits.Inc()
	c.updateHitRate()
	c.charge(c.copyCost(len(out)))
	return out, true
}

// FillValue inserts a copy of val under (table, entry), evicting via CLOCK
// until the shard fits its budget. Values larger than the shard budget are
// not cached; refilling an existing key only refreshes its reference bit
// (table contents are immutable, so the value cannot have changed).
func (c *Cache) FillValue(table uint64, entry uint32, val []byte) {
	if c == nil {
		return
	}
	need := int64(len(val)) + slotOverhead
	sh := c.shardFor(mix(table ^ uint64(entry)<<1))
	if need > sh.budget {
		return
	}
	c.charge(c.cfg.ProbeCost + c.copyCost(len(val)))
	var evictedBytes int64
	var evictedEnts int64
	filled := false
	sh.mu.Lock()
	k := ckey{table, entry}
	if idx, ok := sh.index[k]; ok {
		sh.slot(idx).ref = true
		sh.mu.Unlock()
		return
	}
	for sh.used+need > sh.budget {
		freed, ok := sh.evictOne()
		if !ok {
			break
		}
		evictedBytes += freed
		evictedEnts++
	}
	if sh.used+need <= sh.budget {
		idx := sh.takeSlot()
		s := sh.slot(idx)
		s.key = k
		s.val = append(s.val[:0], val...)
		// Inserted with the reference bit clear: an entry earns its second
		// chance by being read, otherwise one sweep degenerates CLOCK into
		// evict-at-hand and churning fills can push out the hot set.
		s.ref = false
		s.live = true
		sh.index[k] = idx
		sh.used += need
		filled = true
	}
	sh.mu.Unlock()
	if filled {
		c.cfg.Metrics.Fills.Inc()
		c.cfg.Metrics.Bytes.Add(need - evictedBytes)
	} else if evictedBytes > 0 {
		c.cfg.Metrics.Bytes.Add(-evictedBytes)
	}
	if evictedEnts > 0 {
		c.cfg.Metrics.Evictions.Add(evictedEnts)
	}
}

// Negative reports whether (table, keyHash) is a recorded miss that
// answers a read at snapshot snap. A miss recorded at snapshot S proves no
// version with sequence <= S exists in the (immutable) table, which also
// answers any snap <= S; newer snapshots may see versions the recording
// read could not, so they fall through to the bloom/index path.
func (c *Cache) Negative(table, keyHash, snap uint64) bool {
	if c == nil {
		return false
	}
	c.charge(c.cfg.ProbeCost)
	sh := c.shardFor(keyHash)
	sh.mu.Lock()
	hit := false
	if sh.neg != nil {
		e := sh.neg[mix(table^keyHash)%uint64(len(sh.neg))]
		hit = e.table == table && e.fp == keyHash && snap <= e.seq
	}
	sh.mu.Unlock()
	if hit {
		c.cfg.Metrics.NegHits.Inc()
	}
	return hit
}

// FillNegative records that table has no version of the key hashed to
// keyHash visible at snapshot snap (a miss that survived the bloom filter).
// Re-recording an existing key keeps the newest snapshot, which covers the
// widest range of readers.
func (c *Cache) FillNegative(table, keyHash, snap uint64) {
	if c == nil {
		return
	}
	sh := c.shardFor(keyHash)
	sh.mu.Lock()
	if sh.neg == nil {
		sh.neg = make([]negEnt, c.cfg.NegSlots)
	}
	e := &sh.neg[mix(table^keyHash)%uint64(len(sh.neg))]
	if !(e.table == table && e.fp == keyHash && e.seq >= snap) {
		*e = negEnt{table: table, fp: keyHash, seq: snap}
	}
	sh.mu.Unlock()
}

// DropTable removes every value cached for table, reclaiming its budget.
// Called from the engine's onObsolete hook when compaction retires the
// table; it takes only host mutexes (no virtual-time blocking), so it is
// safe under engine and version-set locks.
func (c *Cache) DropTable(table uint64) {
	if c == nil {
		return
	}
	var dropped, bytes int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, idx := range sh.index {
			if k.table == table {
				bytes += sh.removeAt(idx)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.cfg.Metrics.Invalidations.Add(dropped)
		c.cfg.Metrics.Bytes.Add(-bytes)
	}
}

// Used returns the bytes currently charged against the budget.
func (c *Cache) Used() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.used
		sh.mu.Unlock()
	}
	return n
}

// Budget returns the total configured byte budget.
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		n += c.shards[i].budget
	}
	return n
}

// Len returns the number of live cached values.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// --- shard internals (all under sh.mu) --------------------------------------

func (sh *shard) slot(idx int32) *slot {
	return &sh.segs[idx/segSize][idx%segSize]
}

// takeSlot returns a free slot index, growing by one fixed-size segment
// when the free list is empty. Slot growth is bounded: every live slot
// pins at least slotOverhead bytes of budget, so the segment count tops
// out near budget/(slotOverhead*segSize).
func (sh *shard) takeSlot() int32 {
	if n := len(sh.free); n > 0 {
		idx := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return idx
	}
	sh.segs = append(sh.segs, make([]slot, segSize))
	base := sh.nslots
	sh.nslots += segSize
	for i := int32(segSize) - 1; i > 0; i-- {
		sh.free = append(sh.free, base+i)
	}
	return base
}

// evictOne runs the CLOCK hand until it reclaims one live slot, returning
// the bytes freed. Returns false when nothing is evictable.
func (sh *shard) evictOne() (int64, bool) {
	if sh.nslots == 0 || len(sh.index) == 0 {
		return 0, false
	}
	// Two full sweeps clear every reference bit; a third pass must evict.
	for i := int32(0); i < 2*sh.nslots+1; i++ {
		idx := sh.hand
		sh.hand = (sh.hand + 1) % sh.nslots
		s := sh.slot(idx)
		if !s.live {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		return sh.removeAt(idx), true
	}
	return 0, false
}

// removeAt frees the slot at idx, returning the budget bytes reclaimed.
// The value's capacity is kept for reuse by the next fill.
func (sh *shard) removeAt(idx int32) int64 {
	s := sh.slot(idx)
	freed := int64(len(s.val)) + slotOverhead
	delete(sh.index, s.key)
	sh.used -= freed
	s.val = s.val[:0]
	s.live = false
	s.ref = false
	sh.free = append(sh.free, idx)
	return freed
}
