package engine

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dlsm/internal/sim"
)

func cacheOpts() Options {
	o := smallOpts()
	o.CacheBudgetBytes = 4 << 20
	return o
}

func value2(i int) []byte { return []byte(fmt.Sprintf("fresh-%08d-%060d", i, i)) }

func TestCacheHitsServeReads(t *testing.T) {
	harness(t, cacheOpts(), func(env *sim.Env, db *DB) {
		if db.Cache() == nil {
			t.Fatal("CacheBudgetBytes set but no cache built")
		}
		s := db.NewSession()
		defer s.Close()
		const n = 2000
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), value(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		db.Flush()
		db.WaitForCompactions()

		// First pass fills the cache, second pass must hit it.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n; i += 7 {
				v, err := s.Get(key(i))
				if err != nil || !bytes.Equal(v, value(i)) {
					t.Fatalf("pass %d Get(%d) = %q, %v", pass, i, v, err)
				}
			}
		}
		if db.stats.CacheHits.Load() == 0 {
			t.Fatal("no cache hits after repeated reads")
		}
		if db.stats.CacheFills.Load() == 0 {
			t.Fatal("no cache fills")
		}
		if db.Cache().Len() == 0 {
			t.Fatal("cache is empty after fills")
		}
		// FillCache=false reads must not grow the cache.
		fills := db.stats.CacheFills.Load()
		for i := 1; i < n; i += 97 {
			if _, err := s.GetOpts(key(i), ReadOptions{}); err != nil {
				t.Fatalf("GetOpts: %v", err)
			}
		}
		if got := db.stats.CacheFills.Load(); got != fills {
			t.Fatalf("FillCache=false grew fills %d -> %d", fills, got)
		}
	})
}

func TestNoStaleReadsAfterCompaction(t *testing.T) {
	harness(t, cacheOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		const n = 3000
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), value(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		db.Flush()
		db.WaitForCompactions()
		// Warm the cache with the old versions.
		for i := 0; i < n; i += 3 {
			if _, err := s.Get(key(i)); err != nil {
				t.Fatalf("warm Get(%d): %v", i, err)
			}
		}
		// Overwrite everything and force the old tables through compaction.
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), value2(i)); err != nil {
				t.Fatalf("overwrite Put: %v", err)
			}
		}
		db.Flush()
		db.WaitForCompactions()
		for i := 0; i < n; i += 3 {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, value2(i)) {
				t.Fatalf("stale read: Get(%d) = %q, %v", i, v, err)
			}
		}
		if db.stats.CacheInvalidations.Load() == 0 {
			t.Fatal("compaction obsoleted cached tables but nothing was invalidated")
		}
	})
}

func TestOldSnapshotMissDoesNotPoisonNewReads(t *testing.T) {
	harness(t, cacheOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		// Snapshot taken before any key exists: every version written below
		// is invisible to it.
		snap := db.CurrentSeq()
		const n = 500
		for i := 0; i < n; i++ {
			if err := s.Put(key(i), value(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		db.Flush()
		db.WaitForCompactions()
		// These misses survive the bloom filter (the keys ARE in the
		// tables) and fill the negative cache at the old snapshot.
		for i := 0; i < n; i++ {
			if _, err := s.GetAt(key(i), snap); err != ErrNotFound {
				t.Fatalf("GetAt old snap (%d) = %v, want ErrNotFound", i, err)
			}
		}
		// Current-snapshot reads must still find every key: the recorded
		// misses answer only snapshots <= snap.
		for i := 0; i < n; i++ {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("negative cache poisoned Get(%d) = %q, %v", i, v, err)
			}
		}
	})
}

func TestClosedSessionWriteError(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		s.Close()
		if err := s.Put(key(0), value(0)); err != ErrClosed {
			t.Fatalf("Put on closed session = %v, want ErrClosed", err)
		}
		if err := s.Delete(key(0)); err != ErrClosed {
			t.Fatalf("Delete on closed session = %v, want ErrClosed", err)
		}
		var b Batch
		b.Put(key(0), value(0))
		if err := s.Apply(&b); err != ErrClosed {
			t.Fatalf("Apply on closed session = %v, want ErrClosed", err)
		}
	})
}

func TestBatchApply(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()

		// Empty batch is a no-op.
		var empty Batch
		if err := s.Apply(&empty); err != nil {
			t.Fatalf("Apply(empty) = %v", err)
		}

		// A batch large enough to span several sequence ranges
		// (MemTableSize/EntrySizeHint ≈ 546 per range with smallOpts).
		const n = 5000
		var b Batch
		for i := 0; i < n; i++ {
			b.Put(key(i), value(i))
		}
		b.Delete(key(7))
		if got := b.Len(); got != n+1 {
			t.Fatalf("Len = %d, want %d", got, n+1)
		}
		if err := s.Apply(&b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if _, err := s.Get(key(7)); err != ErrNotFound {
			t.Fatalf("deleted key: Get = %v, want ErrNotFound", err)
		}
		for _, i := range []int{0, 1, n / 2, n - 1} {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("Get(%d) = %q, %v", i, v, err)
			}
		}

		// Reset recycles the buffer for the next tick.
		b.Reset()
		if b.Len() != 0 {
			t.Fatalf("Len after Reset = %d", b.Len())
		}
		b.Put(key(7), []byte("resurrected"))
		if err := s.Apply(&b); err != nil {
			t.Fatalf("Apply after Reset: %v", err)
		}
		if v, err := s.Get(key(7)); err != nil || string(v) != "resurrected" {
			t.Fatalf("Get(7) = %q, %v", v, err)
		}
	})
}

func TestStallTimeout(t *testing.T) {
	o := smallOpts()
	o.StallTimeout = time.Millisecond
	harness(t, o, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		// Force the stall predicate directly: pretend L0 is hopelessly
		// over the stop trigger, then deliver the background wakeup that
		// would normally follow a (here: useless) flush.
		db.l0count.Store(int32(o.L0StopTrigger) + 100)
		env.Go(func() {
			env.Sleep(5 * time.Millisecond)
			db.mu.Lock()
			db.broadcastLocked()
			db.mu.Unlock()
		})
		if err := s.Put(key(0), value(0)); err != ErrStalled {
			t.Fatalf("stalled Put = %v, want ErrStalled", err)
		}
		db.l0count.Store(0)
		// With the pressure gone the same write succeeds.
		if err := s.Put(key(0), value(0)); err != nil {
			t.Fatalf("Put after stall cleared: %v", err)
		}
	})
}

func TestStallTimeoutWithoutBackgroundProgress(t *testing.T) {
	o := smallOpts()
	o.StallTimeout = time.Millisecond
	harness(t, o, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		// Wedged background: the stall predicate holds and no flush or
		// compaction will ever signal bgCond — the deadline alarm alone
		// must deliver ErrStalled.
		db.l0count.Store(int32(o.L0StopTrigger) + 100)
		start := env.Now()
		if err := s.Put(key(0), value(0)); err != ErrStalled {
			t.Fatalf("stalled Put = %v, want ErrStalled", err)
		}
		if d := time.Duration(env.Now() - start); d < o.StallTimeout {
			t.Fatalf("ErrStalled after %v, before StallTimeout %v", d, o.StallTimeout)
		}
		db.l0count.Store(0)
		if err := s.Put(key(0), value(0)); err != nil {
			t.Fatalf("Put after stall cleared: %v", err)
		}
	})
}
