package engine

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dlsm/internal/faults"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// offloadOpts is smallOpts with compactions pushed out of the way so L0
// tables survive long enough to be byte-compared.
func offloadOpts() Options {
	o := smallOpts()
	o.L0CompactTrigger = 1000
	o.L0StopTrigger = 0
	return o
}

// tableSig captures everything observable about one SSTable: the meta
// geometry and the raw extent bytes (data, index, filter), copied out of
// the memory node's region. Placement (offsets, rkeys, extent class) is
// deliberately excluded: offloaded tables land in the self-controlled
// region, compute-built ones in the compute-controlled region, and the
// paper's claim is that the *contents* are identical, not the addresses.
type tableSig struct {
	size      int64
	indexLen  int
	filterLen int
	count     int
	smallest  string
	largest   string
	maxSeq    uint64
	data      []byte
	index     []byte
	filter    []byte
}

// buildTables fills n keys through a fresh DB with the given options,
// flushes, and returns the signature of every L0 table in level order.
func buildTables(t *testing.T, opts Options, n int) []tableSig {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	var sigs []tableSig
	env.Run(func() {
		db := Open(cn, srv, opts)
		s := db.NewSession()
		perm := rand.New(rand.NewSource(99)).Perm(n)
		for _, i := range perm {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		if opts.OffloadFlush {
			if got := db.Stats().OffloadedFlushes.Load(); got == 0 {
				t.Error("offload.flushes = 0 with OffloadFlush on")
			}
			if got := db.Stats().OffloadFallbacks.Load(); got != 0 {
				t.Errorf("offload.fallback = %d on a healthy fabric, want 0", got)
			}
		}
		// Everything must still read back, whichever node built the tables.
		for i := 0; i < n; i += 17 {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("Get(%s) = %q, %v", key(i), v, err)
			}
		}
		for _, m := range db.vs.Current().Levels[0] {
			total := int(m.Size) + m.IndexLen + m.FilterLen
			raw := append([]byte(nil), srv.DataMR().Bytes(m.Data.Off, total)...)
			sigs = append(sigs, tableSig{
				size:      m.Size,
				indexLen:  m.IndexLen,
				filterLen: m.FilterLen,
				count:     m.Count,
				smallest:  string(m.Smallest),
				largest:   string(m.Largest),
				maxSeq:    m.MaxSeq,
				data:      raw[:m.Size],
				index:     raw[m.Size : int(m.Size)+m.IndexLen],
				filter:    raw[int(m.Size)+m.IndexLen:],
			})
		}
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
	return sigs
}

// compareTables diffs two table sets field by field; name labels the
// offloaded variant in failures.
func compareTables(t *testing.T, name string, want, got []tableSig) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d L0 tables, baseline has %d", name, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.size != w.size || g.indexLen != w.indexLen || g.filterLen != w.filterLen ||
			g.count != w.count || g.maxSeq != w.maxSeq ||
			g.smallest != w.smallest || g.largest != w.largest {
			t.Errorf("%s: table %d geometry diverged:\n  want {size %d idx %d flt %d count %d seq %d}\n  got  {size %d idx %d flt %d count %d seq %d}",
				name, i, w.size, w.indexLen, w.filterLen, w.count, w.maxSeq,
				g.size, g.indexLen, g.filterLen, g.count, g.maxSeq)
			continue
		}
		if !bytes.Equal(g.data, w.data) {
			t.Errorf("%s: table %d data bytes diverged", name, i)
		}
		if !bytes.Equal(g.index, w.index) {
			t.Errorf("%s: table %d index bytes diverged", name, i)
		}
		if !bytes.Equal(g.filter, w.filter) {
			t.Errorf("%s: table %d filter bytes diverged", name, i)
		}
	}
}

// TestOffloadFlushByteIdentity is the core acceptance check: a memnode-built
// SSTable is byte-identical to the compute-built one for the same input,
// across every per-layer ablation combination (which exercises both the
// contiguous-prefix footer placement and compute-side footer completion).
func TestOffloadFlushByteIdentity(t *testing.T) {
	const n = 3000
	baseline := buildTables(t, offloadOpts(), n)
	if len(baseline) == 0 {
		t.Fatal("baseline produced no L0 tables; test exercises nothing")
	}
	for _, v := range []struct {
		name     string
		idx, flt bool
	}{
		{"index+filter", true, true},
		{"index-only", true, false},
		{"filter-only", false, true},
		{"data-only", false, false},
	} {
		opts := offloadOpts()
		opts.OffloadFlush = true
		opts.OffloadIndexBuild = v.idx
		opts.OffloadFilter = v.flt
		compareTables(t, v.name, baseline, buildTables(t, opts, n))
	}
}

// TestOffloadFlushWALReplay checks the zero-copy path: with the WAL on, the
// flush_build RPC ships a (ring, seq-range) descriptor and the memory node
// replays its own log ring instead of receiving the memtable contents — and
// the result is still byte-identical to a compute-built flush.
func TestOffloadFlushWALReplay(t *testing.T) {
	const n = 3000
	base := offloadOpts()
	base.Durability = DurabilitySync
	baseline := buildTables(t, base, n)

	opts := base
	opts.OffloadFlush = true
	opts.OffloadIndexBuild = true
	opts.OffloadFilter = true

	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	var sigs []tableSig
	var replays, inline int64
	env.Run(func() {
		db := Open(cn, srv, opts)
		s := db.NewSession()
		perm := rand.New(rand.NewSource(99)).Perm(n)
		for _, i := range perm {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		replays = db.Stats().OffloadReplays.Load()
		inline = db.Stats().OffloadInline.Load()
		if got := db.Stats().OffloadFallbacks.Load(); got != 0 {
			t.Errorf("offload.fallback = %d on a healthy fabric, want 0", got)
		}
		for i := 0; i < n; i += 17 {
			v, err := s.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("Get(%s) = %q, %v", key(i), v, err)
			}
		}
		for _, m := range db.vs.Current().Levels[0] {
			total := int(m.Size) + m.IndexLen + m.FilterLen
			raw := append([]byte(nil), srv.DataMR().Bytes(m.Data.Off, total)...)
			sigs = append(sigs, tableSig{
				size: m.Size, indexLen: m.IndexLen, filterLen: m.FilterLen,
				count: m.Count, smallest: string(m.Smallest), largest: string(m.Largest),
				maxSeq: m.MaxSeq,
				data:   raw[:m.Size],
				index:  raw[m.Size : int(m.Size)+m.IndexLen],
				filter: raw[int(m.Size)+m.IndexLen:],
			})
		}
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()

	if replays == 0 {
		t.Errorf("offload.replay = 0: WAL-fed flushes never used ring replay (inline = %d)", inline)
	}
	compareTables(t, "wal-replay", baseline, sigs)
}

// offloadFaultOpts is faultOpts plus full offloading: the flush_build RPC
// rides CompactRPC, so the shrunken policy makes retry exhaustion fast.
func offloadFaultOpts() Options {
	o := faultOpts()
	o.OffloadFlush = true
	o.OffloadIndexBuild = true
	o.OffloadFilter = true
	return o
}

type offloadOutageResult struct {
	end       sim.Time
	fallbacks int64
	offloaded int64
	injected  int64
}

// runOffloadOutage mirrors runServiceOutage with the offloaded flush path:
// the memnode RPC service dies under in-flight flush_build calls, retries
// exhaust, and every flush falls back to the compute-local builder with
// zero acknowledged writes lost.
func runOffloadOutage(t *testing.T, seed int64) offloadOutageResult {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()

	inj := faults.New(fab, 0)
	inj.AddRule(faults.Rule{Name: "wobble-write", Op: rdma.OpWrite, From: faults.Any, To: faults.Any,
		Prob: 0.05, Delay: 10 * time.Microsecond})
	inj.AddRule(faults.Rule{Name: "wobble-send", Op: rdma.OpSend, From: faults.Any, To: faults.Any,
		Prob: 0.3, Delay: 20 * time.Microsecond})

	const n = 6000
	var res offloadOutageResult
	env.Run(func() {
		db := Open(cn, srv, offloadFaultOpts())
		s := db.NewSession()
		for i := 0; i < n/2; i++ {
			s.Put(key(i), value(i))
		}
		// Kill the RPC service with flushes (and their flush_build calls)
		// in flight, then force the rest of the workload through it.
		srv.StopService()
		for i := n / 2; i < n; i++ {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions() // exhausts retries, builds locally
		srv.RestartService()

		for i := 0; i < n; i++ {
			v, err := s.Get(key(i))
			if err != nil {
				t.Fatalf("Get(%s) after outage: %v", key(i), err)
			}
			if !bytes.Equal(v, value(i)) {
				t.Fatalf("Get(%s) has wrong value after outage", key(i))
			}
		}
		it := s.NewIterator()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			count++
		}
		if err := it.Error(); err != nil {
			t.Fatalf("iterator after outage: %v", err)
		}
		it.Close()
		if count != n {
			t.Fatalf("iterator saw %d keys, want %d (lost or duplicated)", count, n)
		}
		res.fallbacks = db.Stats().OffloadFallbacks.Load()
		res.offloaded = db.Stats().OffloadedFlushes.Load()
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
	res.end = env.Now()
	res.injected = fab.Telemetry().Counter("faults.injected").Load()
	return res
}

func TestOffloadFallsBackDuringServiceOutage(t *testing.T) {
	r := runOffloadOutage(t, 7)
	if r.fallbacks == 0 {
		t.Error("offload.fallback = 0, want > 0 (outage never hit a flush)")
	}
	if r.offloaded == 0 {
		t.Error("offload.flushes = 0, want > 0 (no flush offloaded before the outage)")
	}
	if r.injected == 0 {
		t.Error("faults.injected = 0, want > 0")
	}
}

func TestOffloadOutageDeterministic(t *testing.T) {
	r1 := runOffloadOutage(t, 42)
	r2 := runOffloadOutage(t, 42)
	if r1 != r2 {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", r1, r2)
	}
}

// computeBusy runs a WAL-backed fill and returns the compute node's busy
// core-time. With all three layers offloaded the serialization, index and
// filter work runs on the memory node's cores, so compute busy time must
// drop relative to the local build.
func computeBusy(t *testing.T, offload bool) sim.Duration {
	t.Helper()
	opts := offloadOpts()
	opts.Durability = DurabilitySync
	if offload {
		opts.OffloadFlush = true
		opts.OffloadIndexBuild = true
		opts.OffloadFilter = true
	}
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	var busy sim.Duration
	env.Run(func() {
		db := Open(cn, srv, opts)
		s := db.NewSession()
		start := env.Now()
		cn.CPU.ResetStats()
		perm := rand.New(rand.NewSource(7)).Perm(4000)
		for _, i := range perm {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		window := env.Now() - start
		busy = sim.Duration(cn.CPU.Utilization() * float64(window) * float64(cn.CPU.Cores()))
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
	return busy
}

// TestOffloadReducesComputeCPU asserts the headline win: offloading all
// three layers strictly reduces compute-node CPU time for the same fill.
func TestOffloadReducesComputeCPU(t *testing.T) {
	local := computeBusy(t, false)
	off := computeBusy(t, true)
	if off >= local {
		t.Errorf("compute busy time with offload = %v, without = %v; want a strict reduction", off, local)
	}
	t.Logf("compute busy: local %v, offloaded %v (%.1f%% saved)",
		local, off, 100*(1-float64(off)/float64(local)))
}
