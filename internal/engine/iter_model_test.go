package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

// modelConfig is one cell of the randomized-iterator matrix: an engine
// configuration whose scans must always agree with a flat reference map.
type modelConfig struct {
	name string
	opts func() Options
	ro   ReadOptions
}

func modelMatrix() []modelConfig {
	small := smallOpts
	tiny := func() Options {
		o := smallOpts()
		// A small window forces many chunks per table, so the pipelined
		// path crosses chunk boundaries constantly.
		o.PrefetchBytes = 8 << 10
		return o
	}
	block := func() Options {
		o := smallOpts()
		o.Format = sstable.Block
		return o
	}
	return []modelConfig{
		{"byteaddr-depth1", small, ReadOptions{}},
		{"byteaddr-depth4-smallchunk", tiny, ReadOptions{PrefetchDepth: 4}},
		{"block-depth4", block, ReadOptions{PrefetchDepth: 4}},
	}
}

// TestIteratorModel drives a seeded random schedule of Put / Delete /
// WriteBatch / Flush / compaction waits against the engine while
// maintaining a flat reference map, and after every phase checks full
// scans, bounded scans, SeekGE probes and snapshot iterators pinned at
// older sequences against the model.
func TestIteratorModel(t *testing.T) {
	for _, mc := range modelMatrix() {
		t.Run(mc.name, func(t *testing.T) {
			harness(t, mc.opts(), func(env *sim.Env, db *DB) {
				runIteratorModel(t, db, mc.ro)
			})
		})
	}
}

func runIteratorModel(t *testing.T, db *DB, ro ReadOptions) {
	const (
		keySpace = 400
		phases   = 8
		opsPhase = 600
	)
	rng := rand.New(rand.NewSource(20230401))
	s := db.NewSession()
	defer s.Close()

	model := map[string]string{}
	mkey := func(i int) string { return fmt.Sprintf("mk-%06d", i) }

	type snapState struct {
		seq   keys.Seq
		model map[string]string
	}
	var snaps []snapState

	for phase := 0; phase < phases; phase++ {
		for op := 0; op < opsPhase; op++ {
			k := mkey(rng.Intn(keySpace))
			switch rng.Intn(10) {
			case 0, 1: // delete
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(model, k)
			case 2: // batch of puts and deletes, applied atomically
				var b Batch
				for j := 0; j < 1+rng.Intn(6); j++ {
					bk := mkey(rng.Intn(keySpace))
					if rng.Intn(4) == 0 {
						b.Delete([]byte(bk))
						delete(model, bk)
					} else {
						bv := fmt.Sprintf("b%d-%d-%s", phase, op, bk)
						b.Put([]byte(bk), []byte(bv))
						model[bk] = bv
					}
				}
				if err := s.Apply(&b); err != nil {
					t.Fatalf("Apply: %v", err)
				}
			default: // put
				v := fmt.Sprintf("p%d-%d-%s", phase, op, k)
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatalf("Put: %v", err)
				}
				model[k] = v
			}
		}

		// Pin a snapshot of this phase's state for later verification.
		snap := snapState{seq: db.CurrentSeq(), model: map[string]string{}}
		for k, v := range model {
			snap.model[k] = v
		}
		db.registerSnapshot(snap.seq)
		snaps = append(snaps, snap)

		// Structural churn between phases: flush, and periodically let
		// compactions settle so scans cross L0 and deeper levels.
		db.Flush()
		if phase%3 == 2 {
			db.WaitForCompactions()
		}

		checkScans(t, s, ro, model, rng, phase)
	}

	// Snapshot iterators at old sequences see each phase's frozen state.
	for i, snap := range snaps {
		roSnap := ro
		roSnap.Snapshot = snap.seq
		it := s.NewIteratorOpts(roSnap)
		got := collectAll(t, it)
		it.Close()
		compareModel(t, fmt.Sprintf("snapshot %d (seq %d)", i, snap.seq), got, snap.model)
		db.releaseSnapshot(snap.seq)
	}
}

// checkScans verifies a full scan, a handful of bounded scans and SeekGE
// probes against the model.
func checkScans(t *testing.T, s *Session, ro ReadOptions, model map[string]string, rng *rand.Rand, phase int) {
	t.Helper()
	sorted := sortedKeys(model)

	it := s.NewIteratorOpts(ro)
	defer it.Close()

	compareModel(t, fmt.Sprintf("phase %d full scan", phase), collectAll(t, it), model)

	for probe := 0; probe < 8; probe++ {
		// Half the probes hit existing keys, half land between keys.
		target := fmt.Sprintf("mk-%06d", rng.Intn(420))
		if probe%2 == 1 {
			target += "x"
		}
		want := sort.SearchStrings(sorted, target)
		it.SeekGE([]byte(target))
		if want == len(sorted) {
			if it.Valid() {
				t.Fatalf("phase %d: SeekGE(%q) valid at %q, want exhausted", phase, target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != sorted[want] {
			t.Fatalf("phase %d: SeekGE(%q) = %q, want %q", phase, target, it.Key(), sorted[want])
		}
		if string(it.Value()) != model[sorted[want]] {
			t.Fatalf("phase %d: SeekGE(%q) value mismatch", phase, target)
		}
		// Bounded scan: walk a window of up to 25 keys from the probe.
		for n := 0; n < 25 && want+n < len(sorted); n++ {
			if !it.Valid() {
				t.Fatalf("phase %d: bounded scan from %q ended at %d, model has %q",
					phase, target, n, sorted[want+n])
			}
			if string(it.Key()) != sorted[want+n] || string(it.Value()) != model[sorted[want+n]] {
				t.Fatalf("phase %d: bounded scan from %q diverged at step %d: %q",
					phase, target, n, it.Key())
			}
			it.Next()
		}
	}
	if err := it.Error(); err != nil {
		t.Fatalf("phase %d: iterator error: %v", phase, err)
	}
}

func collectAll(t *testing.T, it *Iterator) map[string]string {
	t.Helper()
	got := map[string]string{}
	var prev string
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = k
		got[k] = string(it.Value())
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	return got
}

func compareModel(t *testing.T, what string, got, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", what, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %q = %q, want %q", what, k, got[k], v)
		}
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
