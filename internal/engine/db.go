package engine

import (
	"sync"
	"sync/atomic"

	"dlsm/internal/cache"
	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/readahead"
	"dlsm/internal/remote"
	"dlsm/internal/repl"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
	"dlsm/internal/version"
	"dlsm/internal/wal"
)

// dbInstanceSeq hands every DB a process-unique id; tmpfs file names are
// namespaced by it so shards sharing one memory node never collide.
var dbInstanceSeq atomic.Uint64

// DB is one LSM-tree over disaggregated memory: MemTables, metadata, table
// indexes and bloom filters live on the compute node; SSTable bytes live on
// the memory node (§III).
type DB struct {
	instanceID uint64

	env  *sim.Env
	opts Options
	cn   *rdma.Node
	mn   *rdma.Node
	srv  *memnode.Server

	dataMR *rdma.MemoryRegion
	alloc  *remote.Allocator // compute-controlled region (§V-A)
	vs     *version.VersionSet

	// Write state.
	seq      atomic.Uint64
	cur      atomic.Pointer[memtable.MemTable]
	switchMu sync.Mutex // guards MemTable switching and the recent list
	recent   []*memtable.MemTable
	memID    uint64 // under switchMu

	writeMu *sim.Mutex // SwitchLocked only: the global write lock

	// Background coordination.
	mu       *sim.Mutex
	bgCond   *sim.Cond
	imms     []*memtable.MemTable // flush queue, newest last (under mu)
	workGen  uint64               // bumped on every broadcast (under mu)
	closed   bool                 // under mu
	l0count  atomic.Int32
	immCount atomic.Int32
	flushCh  *sim.Chan[*memtable.MemTable]
	gcCh     *sim.Chan[*sstable.Meta]
	notifier *rpc.Notifier
	wg       *sim.WaitGroup

	// Snapshots for compaction safety (explicit snapshots and iterators).
	snapMu sync.Mutex
	snaps  map[keys.Seq]int

	// Registered sessions, for the flush quiesce barrier.
	sessMu   sync.Mutex
	sessions []*Session

	tel   *telemetry.Registry
	stats Stats
	m     dbMetrics

	// kv is the compute-side hot-KV cache; nil when CacheBudgetBytes is 0
	// (all cache methods are nil-receiver-safe).
	kv *cache.Cache

	// raPool recycles registered scan-readahead buffers across iterators;
	// created lazily by the first PrefetchDepth > 1 iterator so depth-1
	// configurations never touch it (bit-identical figures).
	raPoolMu sync.Mutex
	raPool   *readahead.Pool

	// wal is the remote write-ahead log; nil when Durability is
	// DurabilityNone. walLive gates the write-path hooks: false while
	// recovery replays the log, so replayed writes are not re-logged.
	wal     *wal.Log
	walLive atomic.Bool

	// mirror replicates SSTable extents onto the backup memory node; nil
	// unless ReplicationFactor is 2 (internal/repl).
	mirror *repl.Mirror

	// readOnly marks a secondary attachment (OpenSecondary): no WAL, no
	// flush/compaction/GC workers, writes rejected with ErrReadOnly. sec
	// holds the checkpoint-refresh machinery; nil on primaries.
	readOnly bool
	sec      *secondaryState
}

// Open creates a DB on compute node cn backed by the memory node server
// srv. The server must already be started. With Durability enabled, Open
// stamps a fresh epoch on the DB's remote log slot (creating it on
// demand) and panics if the slot cannot be set up — sizing errors there
// are configuration bugs, like the flush-queue overflow below.
func Open(cn *rdma.Node, srv *memnode.Server, opts Options) *DB {
	db, err := open(cn, srv, opts, false)
	if err != nil {
		panic(err)
	}
	return db
}

// open is Open plus the recovery hook: walRecovering attaches to the
// existing log slot without touching it (Recover replays it first).
func open(cn *rdma.Node, srv *memnode.Server, opts Options, walRecovering bool) (*DB, error) {
	return openMode(cn, srv, opts, walRecovering, false)
}

// openMode is the shared constructor. readOnly builds a secondary
// attachment: compute-local state (version set, MemTables, caches) is
// still per-DB — the engine refactor multi-compute scale-out forces —
// but no write-side machinery starts: no WAL, and zero flush, compaction
// or GC workers (a secondary must never flush into, compact, or free the
// remote extents the shard's primary owns).
func openMode(cn *rdma.Node, srv *memnode.Server, opts Options, walRecovering, readOnly bool) (*DB, error) {
	opts = opts.withDefaults()
	env := cn.Fabric().Env()
	db := &DB{
		instanceID: dbInstanceSeq.Add(1),
		env:        env,
		opts:       opts,
		readOnly:   readOnly,
		cn:         cn,
		mn:         srv.Node(),
		srv:        srv,
		dataMR:     srv.DataMR(),
		alloc:      srv.ComputeAlloc(),
		mu:         sim.NewMutex(env),
		writeMu:    sim.NewMutex(env),
		flushCh:    sim.NewChan[*memtable.MemTable](env, 1024),
		gcCh:       sim.NewChan[*sstable.Meta](env, 65536),
		wg:         sim.NewWaitGroup(env),
		snaps:      map[keys.Seq]int{},
	}
	// The registry runs on the simulation's virtual clock so spans measure
	// virtual time; each DB (shard) gets its own registry, merged at the
	// deployment level via telemetry.Merge.
	db.tel = telemetry.NewRegistry(telemetry.ClockFunc(func() int64 { return int64(env.Now()) }))
	db.stats = newStats(db.tel)
	db.m = newDBMetrics(db.tel)
	// Eagerly register the L0 counters so even short runs surface the
	// per-level compaction section in snapshots.
	db.compactionLevelCounters(0)
	db.bgCond = sim.NewNamedCond(env, db.mu, "engine.bg")
	db.kv = cache.New(cache.Config{
		Budget:        opts.CacheBudgetBytes,
		ProbeCost:     opts.Costs.CacheProbe,
		CopyNSPerByte: opts.Costs.MemcpyByte,
		Charge:        db.charge,
		Metrics: cache.Metrics{
			Hits:          db.stats.CacheHits,
			Misses:        db.stats.CacheMisses,
			NegHits:       db.stats.CacheNegHits,
			Fills:         db.stats.CacheFills,
			Evictions:     db.stats.CacheEvictions,
			Invalidations: db.stats.CacheInvalidations,
			Bytes:         db.stats.CacheBytes,
			HitRate:       db.stats.CacheHitRate,
		},
	})
	db.vs = version.New(db.onObsolete)
	db.notifier = rpc.NotifierFor(cn)

	first := memtable.New(1, 1, 1+keys.Seq(db.seqRangeLen()))
	db.memID = 1
	db.cur.Store(first)
	db.recent = []*memtable.MemTable{first}

	if readOnly {
		return db, nil
	}

	if opts.ReplicationFactor > 1 {
		if err := db.openMirror(); err != nil {
			return nil, err
		}
	}

	if opts.Durability != DurabilityNone {
		if err := db.openWAL(walRecovering); err != nil {
			return nil, err
		}
	}

	for i := 0; i < opts.FlushWorkers; i++ {
		db.wg.Add(1)
		db.env.Go(func() { defer db.wg.Done(); db.flusher() })
	}
	for i := 0; i < opts.CompactionWorkers; i++ {
		db.wg.Add(1)
		db.env.Go(func() { defer db.wg.Done(); db.compactionWorker() })
	}
	db.wg.Add(1)
	db.env.Go(func() { defer db.wg.Done(); db.gcWorker() })
	return db, nil
}

// seqRangeLen is how many sequence numbers each MemTable owns: large enough
// that a table fills by size at about the same point its range runs out, so
// the switch lock is almost never contended (§IV).
func (db *DB) seqRangeLen() uint64 {
	if db.opts.SwitchPolicy == SwitchLocked {
		// Conventional switching is size-driven only; ranges are
		// effectively unbounded and truncated at each switch fence.
		return 1 << 40
	}
	n := uint64(db.opts.MemTableSize) / uint64(db.opts.EntrySizeHint)
	if n < 16 {
		n = 16
	}
	return n
}

// CurrentSeq returns the newest assigned sequence number.
func (db *DB) CurrentSeq() keys.Seq { return keys.Seq(db.seq.Load()) }

// Env returns the simulation environment.
func (db *DB) Env() *sim.Env { return db.env }

// Options returns the configuration (read-only).
func (db *DB) Options() Options { return db.opts }

// charge accounts CPU to the compute node.
func (db *DB) charge(d sim.Duration) { db.cn.CPU.Use(d) }

// broadcastLocked wakes stalled writers and idle compaction workers.
// Caller holds db.mu.
func (db *DB) broadcastLocked() {
	db.workGen++
	db.bgCond.Broadcast()
}

// onObsolete routes an unreachable table to the GC worker. It may run
// under version-set or engine locks, so it only enqueues (§V-B) — and
// drops the table's hot-KV cache entries (DropTable takes host mutexes
// only, so it is safe here too). A secondary's view dropping a table
// means the primary compacted it away, not that it is reclaimable: only
// the local cache entries go; the primary's GC owns the remote extent.
func (db *DB) onObsolete(m *sstable.Meta) {
	db.kv.DropTable(m.ID)
	if db.readOnly {
		return
	}
	if !db.gcCh.TrySend(m) {
		panic("engine: gc queue overflow")
	}
}

// Cache returns the hot-KV cache, or nil when CacheBudgetBytes is 0.
func (db *DB) Cache() *cache.Cache { return db.kv }

// scanPool lazily creates the shared readahead buffer pool. Buffers are
// sized at PrefetchBytes — the adaptive window's ceiling — so nearly
// every chunk recycles; only a single entry larger than the window makes
// the pool register a one-off buffer.
func (db *DB) scanPool() *readahead.Pool {
	db.raPoolMu.Lock()
	defer db.raPoolMu.Unlock()
	if db.raPool == nil {
		db.raPool = readahead.NewPool(db.cn, db.opts.PrefetchBytes)
	}
	return db.raPool
}

// registerSnapshot pins seq against compaction dropping versions <= seq.
func (db *DB) registerSnapshot(seq keys.Seq) {
	db.snapMu.Lock()
	db.snaps[seq]++
	db.snapMu.Unlock()
}

func (db *DB) releaseSnapshot(seq keys.Seq) {
	db.snapMu.Lock()
	db.snaps[seq]--
	if db.snaps[seq] == 0 {
		delete(db.snaps, seq)
	}
	db.snapMu.Unlock()
}

// smallestSnapshot is the oldest sequence any live reader may use.
func (db *DB) smallestSnapshot() keys.Seq {
	min := db.CurrentSeq()
	db.snapMu.Lock()
	for s := range db.snaps {
		if s < min {
			min = s
		}
	}
	db.snapMu.Unlock()
	return min
}

// Flush forces the current MemTable to remote memory and waits until the
// flush queue drains — the transactionally consistent checkpoint boundary
// of §VIII.
func (db *DB) Flush() {
	if db.readOnly {
		return // nothing to flush and no workers to drain the queue
	}
	db.switchMu.Lock()
	mt := db.cur.Load()
	if !mt.Empty() {
		// Truncate the retired table's sequence range at a burned fence
		// (as sizeSwitch does): without it the table keeps owning the
		// rest of its range, and post-flush writes with those sequences
		// would route into it through tableFor's straggler path after it
		// has already been serialized — silently lost.
		if db.opts.SwitchPolicy == SwitchSeqRange {
			fence := keys.Seq(db.seq.Add(1))
			mt.TruncateHi(fence + 1)
		}
		db.switchLocked(mt)
	}
	db.switchMu.Unlock()

	db.mu.Lock()
	for len(db.imms) > 0 && !db.closed {
		db.bgCond.Wait()
	}
	db.mu.Unlock()
}

// FenceNow burns a fence sequence and retires the current MemTable the way
// Flush's switch does, but without waiting for the flush queue: it returns
// as soon as the fence is in place. Every write acknowledged before the
// call carries a sequence at or below the returned fence; every write
// admitted after it carries a higher one. The shard rebalancer uses this as
// the cut point when moving a range — a delta copy at Snapshot=fence is
// complete by construction.
func (db *DB) FenceNow() keys.Seq {
	db.switchMu.Lock()
	defer db.switchMu.Unlock()
	mt := db.cur.Load()
	fence := keys.Seq(db.seq.Add(1))
	if db.opts.SwitchPolicy == SwitchSeqRange {
		// Truncate the table's owned range at the fence (sizeSwitch's
		// discipline) so straggler writes with later sequences cannot route
		// into it once it is retired.
		mt.TruncateHi(fence + 1)
	}
	if !mt.Empty() {
		db.switchLocked(mt)
	}
	return fence
}

// WaitForCompactions blocks until no compaction is runnable or running.
// Used by read benchmarks that measure after the tree settles (§XI-C2).
func (db *DB) WaitForCompactions() {
	if db.readOnly {
		return // secondaries never compact
	}
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return
		}
		gen := db.workGen
		db.mu.Unlock()

		if c := db.vs.PickCompaction(db.pickParams()); c != nil {
			db.vs.Release(c)
		} else if db.stats.CompactionsRunning.Load() == 0 {
			return
		}
		db.mu.Lock()
		if db.workGen == gen && !db.closed {
			db.bgCond.Wait()
		}
		db.mu.Unlock()
	}
}

// Close drains background work and stops all engine entities. Sessions
// must be closed by their owners; the fabric is left running.
func (db *DB) Close() {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	db.closed = true
	db.broadcastLocked()
	db.mu.Unlock()

	db.flushCh.Close()
	db.gcCh.Close()
	db.wg.Wait()
	// Drop the pooled readahead buffers; stragglers from still-draining
	// iterator reapers deregister themselves when they come back.
	db.raPoolMu.Lock()
	if db.raPool != nil {
		db.raPool.Close()
	}
	db.raPoolMu.Unlock()
	if db.wal != nil {
		// After the flushers: their final RequestRefresh calls must land
		// before the log stops. Close drains staged records but publishes
		// no final checkpoint — the slot stays exactly as durable as the
		// last acknowledged write, which is what Recover replays.
		db.wal.Close()
	}
	if db.mirror != nil {
		// After the WAL: the log's final mirrored refresh may still need
		// replica-address translation. Replica extents stay in place — they
		// are the copy a failover promotes.
		db.mirror.Close()
	}
	if db.sec != nil {
		db.sec.close(db.cn)
	}
}
