package engine

import (
	"testing"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func TestCheckpointRebuildAfterComputeLoss(t *testing.T) {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn1 := fab.AddNode("compute-1", 24)
	cn2 := fab.AddNode("compute-2", 24) // replacement compute node
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()

	env.Run(func() {
		const n = 3000
		db := Open(cn1, srv, smallOpts())
		s := db.NewSession()
		for i := 0; i < n; i++ {
			s.Put(key(i), value(i))
		}
		db.Flush() // §VIII: the index is flushed at the checkpoint boundary
		cp := db.Checkpoint()
		horizon := db.CurrentSeq()
		s.Close()
		db.Close() // "crash": the compute node goes away; remote memory survives

		// A fresh compute node rebuilds the index from the checkpoint.
		db2, err := OpenFromCheckpoint(cn2, srv, smallOpts(), cp)
		if err != nil {
			t.Fatal(err)
		}
		if db2.CurrentSeq() != horizon {
			t.Fatalf("sequence horizon = %d, want %d", db2.CurrentSeq(), horizon)
		}
		s2 := db2.NewSession()
		for i := 0; i < n; i += 7 {
			v, err := s2.Get(key(i))
			if err != nil {
				t.Fatalf("recovered Get(%s): %v", key(i), err)
			}
			if string(v) != string(value(i)) {
				t.Fatalf("recovered Get(%s) has wrong value", key(i))
			}
		}
		// New writes get fresh sequence numbers and work normally.
		s2.Put([]byte("post-recovery"), []byte("ok"))
		if v, err := s2.Get([]byte("post-recovery")); err != nil || string(v) != "ok" {
			t.Fatalf("post-recovery write: %q, %v", v, err)
		}
		if db2.CurrentSeq() <= horizon {
			t.Fatal("new writes did not advance past the checkpoint horizon")
		}
		// Overwrites of recovered keys win over checkpointed versions.
		s2.Put(key(0), []byte("newer"))
		if v, _ := s2.Get(key(0)); string(v) != "newer" {
			t.Fatalf("overwrite after recovery lost: %q", v)
		}
		s2.Close()
		db2.Close()
		fab.Close()
	})
	env.Wait()
}

func TestCheckpointDecodeErrors(t *testing.T) {
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	srv := memnode.NewServer(mn, memnode.DefaultConfig())
	srv.Start()
	env.Run(func() {
		for _, junk := range [][]byte{nil, {1, 2, 3}, make([]byte, 9)} {
			if _, err := OpenFromCheckpoint(cn, srv, smallOpts(), junk); err == nil {
				t.Fatalf("OpenFromCheckpoint(%d junk bytes) succeeded", len(junk))
			}
		}
		fab.Close()
	})
	env.Wait()
}

func TestCheckpointCoversCompactedTree(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 6000; i++ {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		cp := db.Checkpoint()
		if len(cp) < 100 {
			t.Fatalf("checkpoint suspiciously small: %d bytes", len(cp))
		}
		files, seq, err := decodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		if seq == 0 {
			t.Fatal("checkpoint lost the sequence horizon")
		}
		total := 0
		deep := 0
		for level, metas := range files {
			total += len(metas)
			if level >= 1 {
				deep += len(metas)
			}
		}
		if total == 0 || deep == 0 {
			t.Fatalf("checkpoint has %d tables (%d below L0); compaction should have built levels", total, deep)
		}
		// Every meta must round-trip with a usable index.
		for _, metas := range files {
			for _, m := range metas {
				if m.Count > 0 && m.Index.NumRecords() == 0 {
					t.Fatalf("table %d lost its index in the checkpoint", m.ID)
				}
			}
		}
	})
}
