package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
	"dlsm/internal/version"
	"dlsm/internal/wal"
)

// secondaryState is the checkpoint-refresh machinery of a read-only
// secondary: its own queue pair to the shard's WAL slot plus a scratch
// region big enough for the header and one checkpoint blob.
type secondaryState struct {
	slot    memnode.LogSlot
	qp      *rdma.QP
	scratch *rdma.MemoryRegion
	ckptCap int

	// mu single-flights refreshes (a sim mutex: the critical section
	// blocks on RDMA reads). lastRefresh is the virtual time of the last
	// successful refresh, read lock-free by the staleness hooks.
	mu          *sim.Mutex
	lastRefresh atomic.Int64

	refreshes *telemetry.Counter
	added     *telemetry.Counter
	dropped   *telemetry.Counter
	staleness *telemetry.Gauge
}

// OpenSecondary attaches a read-only secondary to the shard whose primary
// opened its log slot with the same (WALOwner, WALShard) and Durability
// enabled. The secondary serves Gets and scans directly from the remote
// SSTables through its own compute-local state — version set, hot-KV
// cache, readahead pipelines — and never writes: no WAL, no flush or
// compaction workers, no GC (the primary owns the remote extents).
//
// The view is the primary's last published WAL checkpoint, refreshed on
// demand (RefreshView) or per read (ReadOptions.MaxStaleness): bounded
// staleness, not read-your-writes. Writes become visible here once the
// primary flushes them into tables a checkpoint covers (Flush +
// PublishCheckpoint forces that synchronously).
func OpenSecondary(cn *rdma.Node, srv *memnode.Server, opts Options) (*DB, error) {
	// Resolve the slot identity BEFORE forcing Durability off: the key is
	// derived from opts, and a secondary must find the primary's slot, not
	// create one.
	slot, ok := srv.FindLog(walSlotKey(opts))
	if !ok {
		return nil, fmt.Errorf("engine: no log slot for owner %d shard %d (secondaries need a primary with Options.Durability)", opts.WALOwner, opts.WALShard)
	}
	opts.Durability = DurabilityNone // secondaries never log

	ckptCap, _, _, err := wal.Geometry(slot.Size)
	if err != nil {
		return nil, fmt.Errorf("engine: log slot geometry: %w", err)
	}

	qp := cn.NewQP(srv.Node())
	img, err := readSlotImage(cn, qp, slot)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("engine: reading log slot: %w", err)
	}
	_, blob, _, err := wal.ParseImage(img)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("engine: parsing log slot: %w", err)
	}
	var files [version.NumLevels][]*sstable.Meta
	var seq uint64
	if len(blob) > 0 {
		if files, seq, err = decodeCheckpoint(blob); err != nil {
			qp.Close()
			return nil, fmt.Errorf("engine: log checkpoint: %w", err)
		}
	}
	if err := reloadFooters(cn, qp, files); err != nil {
		qp.Close()
		return nil, fmt.Errorf("engine: reloading table footers: %w", err)
	}

	db, err := openMode(cn, srv, opts, false, true)
	if err != nil {
		qp.Close()
		return nil, err
	}
	db.installCheckpoint(files, seq)

	sec := &secondaryState{
		slot:    slot,
		qp:      qp,
		scratch: cn.Register(wal.HeaderSize + ckptCap),
		ckptCap: ckptCap,
		mu:      sim.NewMutex(db.env),
		// Metrics register here, not in newStats: primaries never carry
		// secondary.* names, so existing telemetry output is unchanged.
		refreshes: db.tel.Counter("secondary.refreshes"),
		added:     db.tel.Counter("secondary.tables.added"),
		dropped:   db.tel.Counter("secondary.tables.dropped"),
		staleness: db.tel.Gauge("secondary.staleness_ns"),
	}
	sec.lastRefresh.Store(int64(db.env.Now()))
	db.sec = sec
	return db, nil
}

// ReadOnly reports whether this DB is a read-only secondary.
func (db *DB) ReadOnly() bool { return db.readOnly }

// ViewAge returns how far in the virtual past this secondary's view was
// last refreshed; 0 on primaries, whose view is always current.
func (db *DB) ViewAge() time.Duration {
	if db.sec == nil {
		return 0
	}
	return time.Duration(int64(db.env.Now()) - db.sec.lastRefresh.Load())
}

// PublishCheckpoint synchronously publishes the current checkpoint blob
// and covered horizon to the WAL slot (the trimmer does the same thing
// asynchronously after each flush). Call it after Flush to make every
// flushed write observable by secondaries' next RefreshView.
func (db *DB) PublishCheckpoint() error {
	if db.wal == nil {
		return fmt.Errorf("engine: PublishCheckpoint requires Options.Durability")
	}
	return db.wal.RefreshNow()
}

// RefreshView re-reads the shard's WAL checkpoint slot and installs the
// primary's latest published view: new tables enter (footers reloaded
// from remote memory), compacted-away tables leave (dropping their local
// cache entries only — the primary owns reclamation), and the sequence
// horizon advances. Tables present in both views keep their live *File,
// so cached indexes, filters and hot-KV entries survive the refresh.
func (db *DB) RefreshView() error {
	if db.sec == nil {
		return fmt.Errorf("engine: RefreshView on a primary")
	}
	return db.sec.refresh(db)
}

// refreshIfOlder refreshes only when the view is older than bound
// (the ReadOptions.MaxStaleness hook).
func (sec *secondaryState) refreshIfOlder(db *DB, bound time.Duration) error {
	if time.Duration(int64(db.env.Now())-sec.lastRefresh.Load()) <= bound {
		return nil
	}
	return sec.refresh(db)
}

// refresh single-flights one view refresh: concurrent callers that were
// waiting on the mutex adopt the refresh that just completed.
func (sec *secondaryState) refresh(db *DB) error {
	before := sec.lastRefresh.Load()
	sec.mu.Lock()
	defer sec.mu.Unlock()
	if sec.lastRefresh.Load() != before {
		return nil // someone refreshed while we waited
	}

	_, blob, err := sec.readCheckpoint(db)
	if err != nil {
		return err
	}
	// An empty blob means the primary has not published a checkpoint yet:
	// keep the current view and only record the refresh attempt's time.
	var files [version.NumLevels][]*sstable.Meta
	seq := db.seq.Load()
	if len(blob) > 0 {
		if files, seq, err = decodeCheckpoint(blob); err != nil {
			return fmt.Errorf("engine: refresh checkpoint: %w", err)
		}
	}
	added, dropped, err := db.applyView(files, seq, len(blob) > 0)
	if err != nil {
		return err
	}

	now := int64(db.env.Now())
	sec.staleness.Set(now - sec.lastRefresh.Load())
	sec.lastRefresh.Store(now)
	sec.refreshes.Inc()
	sec.added.Add(int64(added))
	sec.dropped.Add(int64(dropped))
	return nil
}

// readCheckpoint reads a consistent (header, active checkpoint blob) pair
// with two one-sided reads, retrying when a concurrent header flip lands
// between them (the CRC in the header detects the torn pair; the primary
// alternates slots, so a blob stays stable for a full flip cycle).
func (sec *secondaryState) readCheckpoint(db *DB) (wal.Header, []byte, error) {
	const attempts = 8
	for i := 0; i < attempts; i++ {
		if err := sec.qp.ReadSync(sec.scratch, 0, sec.slot.Addr, wal.HeaderSize); err != nil {
			return wal.Header{}, nil, err
		}
		h, err := wal.DecodeHeader(append([]byte(nil), sec.scratch.Bytes(0, wal.HeaderSize)...))
		if err != nil {
			return wal.Header{}, nil, fmt.Errorf("engine: refresh header: %w", err)
		}
		if h.CkptLen == 0 {
			return h, nil, nil
		}
		if int(h.CkptLen) > sec.ckptCap || h.CkptSlot > 1 {
			return wal.Header{}, nil, fmt.Errorf("engine: refresh header claims %d-byte checkpoint in slot %d (cap %d)", h.CkptLen, h.CkptSlot, sec.ckptCap)
		}
		if err := sec.qp.ReadSync(sec.scratch, wal.HeaderSize, sec.slot.Addr.Add(h.CkptOffset()), int(h.CkptLen)); err != nil {
			return wal.Header{}, nil, err
		}
		blob := append([]byte(nil), sec.scratch.Bytes(wal.HeaderSize, int(h.CkptLen))...)
		if h.VerifyCheckpoint(blob) {
			return h, blob, nil
		}
	}
	return wal.Header{}, nil, fmt.Errorf("engine: checkpoint kept flipping across %d read attempts", attempts)
}

// applyView diffs the decoded checkpoint against the current version and
// applies the delta. Files are matched by (ID, level, data offset) — not
// ID alone, because a recovered primary restarts its ID counter and can
// mint an ID an older checkpoint already used for a different extent.
func (db *DB) applyView(files [version.NumLevels][]*sstable.Meta, seq uint64, haveBlob bool) (added, dropped int, err error) {
	type fkey struct {
		id    uint64
		level int
		off   int
	}
	cur := db.vs.Current()
	defer cur.Unref()

	existing := make(map[fkey]*version.File)
	for level, fs := range cur.Levels {
		for _, f := range fs {
			existing[fkey{f.ID, level, f.Data.Off}] = f
		}
	}
	edit := version.NewEdit()
	var created []*version.File
	var fresh [version.NumLevels][]*sstable.Meta
	want := make(map[fkey]bool, len(existing))
	for level, metas := range files {
		for _, m := range metas {
			k := fkey{m.ID, level, m.Data.Off}
			want[k] = true
			if _, ok := existing[k]; ok {
				continue // unchanged: keep the live file and its cached footer
			}
			fresh[level] = append(fresh[level], m)
			f := version.NewFile(m)
			created = append(created, f)
			edit.Add(level, f)
			added++
		}
	}
	if haveBlob {
		for k, f := range existing {
			if !want[k] {
				edit.Delete(f)
				dropped++
			}
		}
	}
	if added > 0 {
		// Checkpoint metas are slim; fetch the new tables' indexes and
		// filters from their footers before readers can reach them.
		if err := reloadFooters(db.cn, db.sec.qp, fresh); err != nil {
			for _, f := range created {
				db.vs.UnrefFile(f)
			}
			return 0, 0, fmt.Errorf("engine: reloading table footers: %w", err)
		}
	}
	if added > 0 || dropped > 0 {
		db.vs.Apply(edit)
		for _, f := range created {
			db.vs.UnrefFile(f)
		}
		db.l0count.Store(int32(db.currentL0Count()))
	}
	// The horizon only moves forward: a stale blob read concurrently with
	// the primary's recovery must not rewind visible sequence numbers.
	for {
		old := db.seq.Load()
		if seq <= old || db.seq.CompareAndSwap(old, seq) {
			break
		}
	}
	return added, dropped, nil
}

// close releases the secondary's fabric resources.
func (sec *secondaryState) close(cn *rdma.Node) {
	sec.qp.Close()
	cn.Deregister(sec.scratch)
}
