package engine

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/keys"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
	"dlsm/internal/wal"
)

// Migration moves one shard engine's remote state to another memory node
// using the durability machinery replication and failover already trust:
// live SSTable extents are cloned server→server over the repl_clone RPC
// (the index-only replication verb), the cloned set is installed on the
// destination as a checkpoint, and the WAL tail above the cloned horizon
// is read back for replay. The shard layer drives the protocol:
//
//	m := StartMigration(src, dst)      // nil: fall back to iterator copy
//	m.CloneLive()                      // phase A, writers still running
//	— gate the range, drain writers —
//	fence := src.FenceNow()
//	tail, err := m.Finish(fence)       // diff-clone, install, read tail
//	— replay tail on dst, flip the routing table —
//	m.Close()                          // or m.Abort() on any failure
type Migration struct {
	src, dst *DB

	cli     *rpc.Client // compute→source-server, repl_clone requests
	qpSrc   *rdma.QP    // compute-mediated fallback (self-region tables)
	qpDst   *rdma.QP
	scratch *rdma.MemoryRegion

	cloned map[uint64]cloneEntry // by sstable.Meta.ID
}

// cloneEntry records one table's destination copy.
type cloneEntry struct {
	off    int64 // destination allocator offset
	extent int64
	addr   rdma.RemoteAddr
}

// StartMigration prepares a clone-based migration of src's state into the
// freshly opened dst (same compute node, different memory node). It
// returns nil when the fast path does not apply — source without a WAL
// (the tail replay needs one) or a non-native transport (extents must be
// addressable server-side) — and the caller falls back to the iterator
// copy path.
func StartMigration(src, dst *DB) *Migration {
	if src.wal == nil || src.opts.Transport != TransportNative || dst.opts.Transport != TransportNative {
		return nil
	}
	if src.mn == dst.mn {
		return nil
	}
	return &Migration{src: src, dst: dst, cloned: map[uint64]cloneEntry{}}
}

// CloneLive clones every table in the source's current version that has
// not been cloned yet. Run before the write gate: writers (and flushes,
// compactions) continue; whatever the version gains or loses in the
// meantime is reconciled by Finish's differential pass.
func (m *Migration) CloneLive() error {
	v := m.src.vs.Current()
	defer v.Unref()
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if err := m.cloneTable(f.Meta); err != nil {
				return err
			}
		}
	}
	return nil
}

// cloneTable copies one table's extent (data + index + filter footer) to
// the destination server. Tables living in the source's compute-shared
// data region travel server→server via repl_clone (n bytes on the wire,
// zero compute CPU); self-region tables — near-data compaction outputs the
// source server's RPC cannot address by data-region offset — fall back to
// a compute-mediated read+write.
func (m *Migration) cloneTable(meta *sstable.Meta) error {
	if _, ok := m.cloned[meta.ID]; ok {
		return nil
	}
	n := int(meta.Size) + meta.IndexLen + meta.FilterLen
	off, err := m.dst.alloc.Alloc(int(meta.Extent))
	if err != nil {
		return fmt.Errorf("engine: migrate: destination extent: %w", err)
	}
	dst := m.dst.dataMR.Addr(int(off))
	if meta.Data.RKey == m.src.dataMR.RKey() {
		err = m.cloneViaServer(meta, dst, n)
	} else {
		err = m.copyViaCompute(meta, dst, n)
	}
	if err != nil {
		m.dst.alloc.Free(off, int(meta.Extent))
		return err
	}
	m.cloned[meta.ID] = cloneEntry{off: off, extent: meta.Extent, addr: dst}
	return nil
}

// cloneViaServer asks the source memory node to chain-write the extent to
// the destination node (the repl_clone verb, idempotent on retry).
func (m *Migration) cloneViaServer(meta *sstable.Meta, dst rdma.RemoteAddr, n int) error {
	if m.cli == nil {
		m.cli = rpc.NewClient(m.src.cn, m.src.mn, nil, 4096)
	}
	var args [32]byte
	binary.LittleEndian.PutUint64(args[0:], uint64(meta.Data.Off))
	binary.LittleEndian.PutUint64(args[8:], uint64(n))
	binary.LittleEndian.PutUint32(args[16:], uint32(dst.Node))
	binary.LittleEndian.PutUint32(args[20:], dst.RKey)
	binary.LittleEndian.PutUint64(args[24:], uint64(dst.Off))
	if _, err := m.cli.CallPolicy("repl_clone", args[:], m.src.opts.CompactRPC); err != nil {
		return fmt.Errorf("engine: migrate repl_clone: %w", err)
	}
	return nil
}

// copyViaCompute reads the extent back to the compute node and writes it
// out to the destination (2n wire bytes) — the repl.LogReplay shape.
func (m *Migration) copyViaCompute(meta *sstable.Meta, dst rdma.RemoteAddr, n int) error {
	if m.qpSrc == nil {
		m.qpSrc = m.src.cn.NewQP(m.src.mn)
		m.qpDst = m.src.cn.NewQP(m.dst.mn)
	}
	if m.scratch == nil || m.scratch.Size() < n {
		if m.scratch != nil {
			m.src.cn.Deregister(m.scratch)
		}
		m.scratch = m.src.cn.Register(n)
	}
	if err := m.qpSrc.ReadSync(m.scratch, 0, meta.Data, n); err != nil {
		return fmt.Errorf("engine: migrate read-back: %w", err)
	}
	if err := m.qpDst.WriteSync(m.scratch, 0, dst, n); err != nil {
		return fmt.Errorf("engine: migrate write-out: %w", err)
	}
	return nil
}

// Finish completes the cut after the shard layer has gated the range,
// drained in-flight writers, and fenced the source at fence. Under a
// truncation hold on the source WAL it captures the source's table
// horizon (walCheckpoint's computation), clones the differential table
// set, frees clones whose source tables were compacted away, installs the
// translated checkpoint on the destination at sequence horizon fence, and
// returns the WAL tail — every acknowledged write in (covered, fence],
// which by the switch invariant is exactly the data still in source
// MemTables and therefore in no cloned table. The caller replays the tail
// on the destination in order; the union of cloned tables and replayed
// tail reconstructs every acknowledged write by construction.
func (m *Migration) Finish(fence keys.Seq) ([]wal.Entry, error) {
	m.src.wal.HoldTruncation()
	defer m.src.wal.ReleaseTruncation()

	m.src.switchMu.Lock()
	m.src.mu.Lock()
	lo, _ := m.src.cur.Load().SeqRange()
	covered := uint64(lo) - 1
	for _, mt := range m.src.imms {
		if l, _ := mt.SeqRange(); uint64(l)-1 < covered {
			covered = uint64(l) - 1
		}
	}
	v := m.src.vs.Current()
	m.src.mu.Unlock()
	m.src.switchMu.Unlock()
	defer v.Unref()

	live := map[uint64]bool{}
	var files [version.NumLevels][]*sstable.Meta
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if err := m.cloneTable(f.Meta); err != nil {
				return nil, err
			}
			live[f.Meta.ID] = true
			files[level] = append(files[level], m.translate(f.Meta))
		}
	}
	for id, ce := range m.cloned {
		if !live[id] {
			m.dst.alloc.Free(ce.off, int(ce.extent))
			delete(m.cloned, id)
		}
	}

	m.dst.installCheckpoint(files, uint64(fence))
	if m.dst.wal != nil {
		// Make the destination slot's recovery baseline the state just
		// installed, as OpenFromCheckpoint does.
		if err := m.dst.wal.RefreshNow(); err != nil {
			return nil, err
		}
	}
	return m.src.wal.TailEntries(covered+1, uint64(fence))
}

// translate rewrites one source meta for the destination: same index,
// filter and key bounds (compute-local state travels with the struct),
// data pointing at the cloned extent, creator set to the compute node so
// the destination's GC frees the clone through its own allocator.
func (m *Migration) translate(meta *sstable.Meta) *sstable.Meta {
	c := *meta
	ce := m.cloned[meta.ID]
	c.Data = ce.addr
	c.CreatorNode = m.dst.cn.ID
	return &c
}

// Abort frees every cloned extent and releases transport resources. Call
// on any failure before the destination adopted the clones (after a
// successful Finish the destination's version owns them — call Close).
func (m *Migration) Abort() {
	for _, ce := range m.cloned {
		m.dst.alloc.Free(ce.off, int(ce.extent))
	}
	m.cloned = map[uint64]cloneEntry{}
	m.Close()
}

// Close releases the migration's transport resources only.
func (m *Migration) Close() {
	if m.cli != nil {
		m.cli.Close()
		m.cli = nil
	}
	if m.qpSrc != nil {
		m.qpSrc.Close()
		m.qpSrc = nil
	}
	if m.qpDst != nil {
		m.qpDst.Close()
		m.qpDst = nil
	}
	if m.scratch != nil {
		m.src.cn.Deregister(m.scratch)
		m.scratch = nil
	}
}
