package engine

import (
	"fmt"
	"time"

	"dlsm/internal/compactor"
	"dlsm/internal/flush"
	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// bgWorker is the thread-local context of one background thread (flusher or
// compaction worker): its own QP, flush pipeline, scratch buffer and RPC
// client, per the paper's RDMA manager (§X-B).
type bgWorker struct {
	db       *DB
	qp       *rdma.QP
	pipeline *flush.Pipeline
	scratch  *rdma.MemoryRegion
	cli      *rpc.Client
	largeCli *rpc.Client // compaction RPC (write-with-imm wakeups)
}

func (db *DB) newBGWorker() *bgWorker {
	w := &bgWorker{db: db, qp: db.cn.NewQP(db.mn)}
	w.pipeline = flush.NewPipeline(w.qp, db.opts.FlushBufSize)
	w.pipeline.SetMetrics(db.m.flush)
	return w
}

func (w *bgWorker) client() *rpc.Client {
	if w.cli == nil {
		w.cli = rpc.NewClient(w.db.cn, w.db.mn, nil, 1<<20)
	}
	return w.cli
}

func (w *bgWorker) largeClient() *rpc.Client {
	if w.largeCli == nil {
		w.largeCli = rpc.NewClient(w.db.cn, w.db.mn, w.db.notifier, w.db.opts.ReplyBufSize)
	}
	return w.largeCli
}

func (w *bgWorker) close() {
	w.qp.Close()
	if w.cli != nil {
		w.cli.Close()
	}
	if w.largeCli != nil {
		w.largeCli.Close()
	}
}

// --- flushing ---------------------------------------------------------------

func (db *DB) flusher() {
	w := db.newBGWorker()
	defer w.close()
	for {
		mt, ok := db.flushCh.Recv()
		if !ok {
			return
		}
		db.flushOne(w, mt)
	}
}

// flushOne serializes one immutable MemTable into a new L0 table (§X-C).
func (db *DB) flushOne(w *bgWorker, mt *memtable.MemTable) {
	sp := db.m.flushLat.Span(db.m.clock)
	defer sp.End()
	// Quiesce: wait until no writer can still insert into mt.
	_, hi := mt.SeqRange()
	for !mt.QuiesceDone() || !db.noClaimsBelow(uint64(hi)) {
		if db.cn.Crashed() {
			// A crashed writer's claim never clears. Drop the table
			// instead of spinning: with Durability on, Recover replays the
			// remote log; without it the data is lost either way.
			db.finishFlush(mt, nil)
			return
		}
		db.env.Sleep(200 * time.Nanosecond)
	}

	if mt.Empty() {
		db.finishFlush(mt, nil)
		return
	}

	// Capacity covers the data region plus the index+filter footer: per
	// entry the index stores the internal key plus 14 bytes of offsets,
	// block formats add up to ~10 bytes/entry of wrapping, and the bloom
	// filter is ~10 bits/key.
	capacity := mt.ApproximateSize() + mt.KeyBytes() + int64(mt.Len())*24 + 8<<10
	var meta *sstable.Meta
	offload := db.offloadEnabled()
	for attempt := 1; ; attempt++ {
		var m *sstable.Meta
		var err error
		if offload {
			m, err = db.flushRemote(w, mt, capacity)
			if err != nil {
				// Graceful degradation, mirroring compaction.fallback: the
				// memory node's RPC service is unreachable, or the replay
				// view was incomplete. The memtable is still here — build on
				// the compute node instead, for this table and the rest of
				// this flush's attempts.
				db.stats.OffloadFallbacks.Add(1)
				offload = false
				m, err = db.buildFlushTable(w, mt, capacity)
			}
		} else {
			m, err = db.buildFlushTable(w, mt, capacity)
		}
		if err == nil {
			// Replicate before install (no-op at ReplicationFactor 1): a
			// checkpoint may name this table the moment it publishes, so its
			// replica copy must exist first. On failure the extent is
			// returned and the whole build retries.
			if err = db.attachMirror(m); err == nil {
				meta = m
				break
			}
			db.discardFlushTable(w, m)
		}
		// The write failed (fabric fault, service outage). The MemTable is
		// immutable, so the build can simply run again after a pause.
		db.stats.FlushErrors.Add(1)
		if db.storageDead() {
			// Our own node — or a memory node acked writes depend on — is
			// gone; retrying cannot succeed. Surrender the table so Close
			// can still drain: recovery (or failover promotion) owns the
			// data now.
			db.finishFlush(mt, nil)
			return
		}
		if attempt >= flushMaxAttempts {
			panic(fmt.Sprintf("engine: flush failed %d times: %v", attempt, err))
		}
		d := flushRetryBase << (attempt - 1)
		if d > flushRetryMax || d <= 0 {
			d = flushRetryMax
		}
		db.env.Sleep(d)
	}
	db.stats.Flushes.Add(1)
	db.stats.BytesFlushed.Add(meta.Size)
	db.finishFlush(mt, meta)
}

// Flush retry schedule: doubling from flushRetryBase, capped. The cap is
// generous enough to ride out link flaps; a flush that still fails after
// every attempt means remote memory is gone for good.
const (
	flushMaxAttempts = 20
	flushRetryBase   = 200 * time.Microsecond
	flushRetryMax    = 50 * time.Millisecond
)

// buildFlushTable serializes mt into a freshly allocated extent and returns
// the new table's metadata. On failure the extent is returned to the
// allocator and the caller may retry.
func (db *DB) buildFlushTable(w *bgWorker, mt *memtable.MemTable, capacity int64) (*sstable.Meta, error) {
	dest, err := db.newTableDest(capacity)
	if err != nil {
		return nil, err
	}
	sink := db.newSink(w, dest, capacity)
	writer := sstable.NewWriter(db.opts.Format, sink, db.opts.BlockSize, db.opts.BitsPerKey,
		sstable.Options{Costs: db.opts.Costs, Charge: db.charge})

	var maxSeq uint64
	it := mt.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		writer.Add(it.Key(), it.Value())
		if _, seq, _, err := keys.Parse(it.Key()); err == nil && uint64(seq) > maxSeq {
			maxSeq = uint64(seq)
		}
	}
	res, err := writer.Finish()
	if err != nil {
		db.releaseTableDest(dest, capacity)
		return nil, err
	}
	extent := db.shrinkExtent(dest, capacity, res)
	return &sstable.Meta{
		ID: db.vs.NextFileID(), Size: res.Size, Extent: extent,
		IndexLen: res.IndexLen, FilterLen: res.FilterLen, Count: res.Count,
		Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
		Data: dest, CreatorNode: db.cn.ID,
		Format: db.opts.Format, BlockSize: db.opts.BlockSize,
		Index: res.Index, Filter: res.Filter,
	}, nil
}

// finishFlush publishes the new L0 table (before removing the MemTable from
// the immutable list, so no read window misses the data) and wakes stalled
// writers and compaction workers.
func (db *DB) finishFlush(mt *memtable.MemTable, meta *sstable.Meta) {
	var file *version.File
	if meta != nil {
		file = version.NewFile(meta)
		e := version.NewEdit()
		e.Add(0, file)
		db.vs.Apply(e)
		db.l0count.Store(int32(db.currentL0Count()))
	}

	db.mu.Lock()
	for i, x := range db.imms {
		if x == mt {
			db.imms = append(db.imms[:i], db.imms[i+1:]...)
			break
		}
	}
	db.immCount.Store(int32(len(db.imms)))
	db.broadcastLocked()
	db.mu.Unlock()

	if file != nil {
		db.vs.UnrefFile(file) // drop the creator reference
	}
	mt.Unref()

	// The flushed data is now remotely durable as a table: let the log
	// publish a fresh checkpoint and reclaim the covered ring records.
	// Nil-safe, so Durability-off flushes pay nothing.
	db.wal.RequestRefresh()
}

func (db *DB) currentL0Count() int {
	v := db.vs.Current()
	n := v.L0Count()
	v.Unref()
	return n
}

// --- compaction --------------------------------------------------------------

func (db *DB) pickParams() version.PickParams {
	return version.PickParams{
		L0Trigger:  db.opts.L0CompactTrigger,
		L1MaxBytes: db.opts.L1MaxBytes,
		Multiplier: db.opts.LevelMultiplier,
	}
}

// compactionWorker loops: pick the most urgent compaction, execute it
// near-data or locally, install the result.
func (db *DB) compactionWorker() {
	w := db.newBGWorker()
	defer w.close()
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return
		}
		gen := db.workGen
		db.mu.Unlock()

		c := db.vs.PickCompaction(db.pickParams())
		if c == nil {
			db.mu.Lock()
			if db.workGen == gen && !db.closed {
				db.bgCond.Wait()
			}
			db.mu.Unlock()
			continue
		}
		db.runCompaction(w, c)
	}
}

func (db *DB) runCompaction(w *bgWorker, c *version.Compaction) {
	db.stats.CompactionsRunning.Add(1)
	defer db.stats.CompactionsRunning.Add(-1)

	start := db.env.Now()
	var outputs []*sstable.Meta
	var err error
	if db.opts.CompactionSite == CompactNearData && db.opts.Transport == TransportNative {
		outputs, err = db.compactRemote(w, c)
		if err == nil {
			db.stats.RemoteCompactions.Add(1)
		} else {
			// Graceful degradation: the memory node's RPC service is
			// unreachable (crash, flapping link) and retries are spent.
			// The table bytes are still remotely readable with one-sided
			// verbs, so merge on the compute node instead.
			db.stats.CompactionFallbacks.Add(1)
			outputs, err = db.compactLocal(w, c)
			if err == nil {
				db.stats.LocalCompactions.Add(1)
			}
		}
	} else {
		outputs, err = db.compactLocal(w, c)
		if err == nil {
			db.stats.LocalCompactions.Add(1)
		}
	}
	if err == nil {
		// Replicate the outputs before the install makes them reachable
		// (no-op at ReplicationFactor 1). On failure attachOutputs has
		// already routed both-side extents to the GC worker.
		err = db.attachOutputs(outputs)
	}
	if err != nil {
		// Even the local path failed (persistent fabric faults, allocation
		// exhaustion). Abandon this attempt: the inputs stay live in the
		// current version and the picker re-picks after a pause.
		db.stats.CompactionErrors.Add(1)
		db.vs.Release(c)
		db.mu.Lock()
		db.broadcastLocked()
		db.mu.Unlock()
		db.env.Sleep(time.Millisecond)
		return
	}
	db.stats.CompactionTime.Add(int64(db.env.Now() - start))
	db.stats.CompactionBytesIn.Add(c.InputBytes())
	levelIn, levelOut := db.compactionLevelCounters(c.Level)
	levelIn.Add(c.InputBytes())
	for _, m := range outputs {
		db.stats.CompactionBytesOut.Add(m.Size)
		levelOut.Add(m.Size)
	}

	// Install: outputs to Level+1, inputs removed — one copy-on-write
	// metadata mutation (§III).
	e := version.NewEdit()
	files := make([]*version.File, 0, len(outputs))
	for _, m := range outputs {
		f := version.NewFile(m)
		files = append(files, f)
		e.Add(c.Level+1, f)
	}
	for _, f := range c.Files() {
		e.Delete(f)
	}
	db.vs.Apply(e)
	db.vs.Release(c)
	for _, f := range files {
		db.vs.UnrefFile(f)
	}
	db.l0count.Store(int32(db.currentL0Count()))

	db.mu.Lock()
	db.broadcastLocked()
	db.mu.Unlock()
}

// compactRemote offloads the merge to the memory node through the
// customized RPC (§V, §X-D2): only metadata travels; table bytes never
// cross the network.
func (db *DB) compactRemote(w *bgWorker, c *version.Compaction) ([]*sstable.Meta, error) {
	args := &memnode.CompactArgs{
		SmallestSnapshot: uint64(db.smallestSnapshot()),
		DropTombstones:   c.DropTombstones,
		Subcompactions:   db.opts.Subcompactions,
		TableSize:        db.effectiveTableSize(),
		Format:           db.opts.Format,
		BlockSize:        db.opts.BlockSize,
		BitsPerKey:       db.opts.BitsPerKey,
	}
	for _, f := range c.Files() {
		args.Inputs = append(args.Inputs, f.Meta)
	}
	// A stable nonzero job id: every retry of this call re-sends the same
	// bytes, so the memory node can deduplicate redelivery. Derived from
	// the first input's identity — its table id and extent offset are
	// unique among this DB's live jobs — plus instanceID: sibling shards
	// (and the fresh engines elastic sharding opens mid-run) restart their
	// file-id and sequence counters, and flush extents from the shared
	// compute-controlled allocator reuse the same offsets, so without the
	// instance qualifier two engines can collide on a job id and the
	// dedupe table would hand the second engine the first one's outputs —
	// two owners for one extent, and a double free at GC.
	m0 := args.Inputs[0]
	args.JobID = sim.Mix64(uint64(db.env.Seed()), uint64(db.cn.ID),
		db.instanceID, uint64(m0.ID), uint64(m0.Data.Off), m0.MaxSeq) | 1
	reply, err := w.largeClient().CallLargePolicy("compact", memnode.EncodeCompactArgs(args), db.opts.CompactRPC)
	if err != nil {
		// Give up on the remote job. Best effort: if the merge is still
		// running (or finishes later), the cancel frees its unclaimed
		// outputs and tombstones the id against late redelivery.
		db.cancelRemoteJob(w, args.JobID)
		return nil, err
	}
	outputs, err := memnode.DecodeMetas(reply)
	if err != nil {
		return nil, err
	}
	for _, m := range outputs {
		m.ID = db.vs.NextFileID()
	}
	return outputs, nil
}

// cancelRemoteJob tells the memory node to drop a compaction job the engine
// gave up on. Best effort with a short retry budget: if the service is down
// the cancel itself times out and the job's outputs leak until the next
// cancel or restart.
func (db *DB) cancelRemoteJob(w *bgWorker, jobID uint64) {
	args := appendU64(make([]byte, 0, 8), jobID)
	_, _ = w.client().CallPolicy("compact_cancel", args, db.opts.FreeRPC)
}

// compactLocal merges on the compute node: inputs stream over the network,
// outputs stream back — the data movement near-data compaction eliminates.
// Like the memory-node executor, it parallelizes into subcompactions
// (§XI-B enables 12 subcompaction workers for every system).
func (db *DB) compactLocal(w *bgWorker, c *version.Compaction) ([]*sstable.Meta, error) {
	inputMetas := make([]*sstable.Meta, 0, len(c.Files()))
	for _, f := range c.Files() {
		inputMetas = append(inputMetas, f.Meta)
	}
	ranges := compactor.SplitRanges(inputMetas, db.opts.Subcompactions, db.effectiveTableSize())

	type result struct {
		metas []*sstable.Meta
		err   error
	}
	results := make([]result, len(ranges))
	wg := sim.NewWaitGroup(db.env)
	for i, r := range ranges {
		i, r := i, r
		run := func() {
			defer wg.Done()
			metas, err := db.runLocalSubcompaction(c, inputMetas, r[0], r[1])
			results[i] = result{metas, err}
		}
		wg.Add(1)
		if i == len(ranges)-1 {
			run() // last range on this worker
		} else {
			db.env.Go(run)
		}
	}
	wg.Wait()

	var outputs []*sstable.Meta
	var firstErr error
	for _, r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		outputs = append(outputs, r.metas...)
	}
	if firstErr != nil {
		// Some subcompactions may have committed outputs before another
		// failed; none will be installed, so return their extents now.
		for _, m := range outputs {
			db.freeTableLocal(m)
		}
		return nil, firstErr
	}
	return outputs, nil
}

// runLocalSubcompaction merges one key subrange on the compute node with
// its own thread-local QP, fetchers and sink.
func (db *DB) runLocalSubcompaction(c *version.Compaction, inputMetas []*sstable.Meta, lo, hi []byte) ([]*sstable.Meta, error) {
	qp := db.cn.NewQP(db.mn)
	defer qp.Close()
	var cli *rpc.Client
	cliFn := func() *rpc.Client {
		if cli == nil {
			cli = rpc.NewClient(db.cn, db.mn, nil, 1<<20)
		}
		return cli
	}
	defer func() {
		if cli != nil {
			cli.Close()
		}
	}()
	sub := &bgWorker{db: db, qp: qp}
	sub.pipeline = flush.NewPipeline(qp, db.opts.FlushBufSize)
	sub.pipeline.SetMetrics(db.m.flush)

	inputs := make([]compactor.Input, 0, len(inputMetas))
	for _, m := range inputMetas {
		// Each input table needs its own scratch slot: the merge holds
		// chunks from every input simultaneously.
		slot := new(*rdma.MemoryRegion)
		inputs = append(inputs, compactor.Input{
			Meta:  m,
			Fetch: db.newFetcher(m, qp, slot, cliFn),
		})
	}
	factory := func(capacity int64) (sstable.Sink, compactor.Commit, error) {
		dest, err := db.newTableDest(capacity)
		if err != nil {
			return nil, nil, err
		}
		commit := func(res sstable.BuildResult, maxSeq uint64) (*sstable.Meta, error) {
			extent := db.shrinkExtent(dest, capacity, res)
			return &sstable.Meta{
				ID: db.vs.NextFileID(), Size: res.Size, Extent: extent,
				IndexLen: res.IndexLen, FilterLen: res.FilterLen, Count: res.Count,
				Smallest: res.Smallest, Largest: res.Largest, MaxSeq: maxSeq,
				Data: dest, CreatorNode: db.cn.ID,
				Format: db.opts.Format, BlockSize: db.opts.BlockSize,
				Index: res.Index, Filter: res.Filter,
			}, nil
		}
		return db.newSink(sub, dest, capacity), commit, nil
	}
	return compactor.Run(inputs, compactor.Params{
		Format:           db.opts.Format,
		BlockSize:        db.opts.BlockSize,
		BitsPerKey:       db.opts.BitsPerKey,
		TableSize:        db.effectiveTableSize(),
		ExtentCap:        db.extentClass(),
		SmallestSnapshot: db.smallestSnapshot(),
		DropTombstones:   c.DropTombstones,
		Lo:               lo,
		Hi:               hi,
		Prefetch:         db.opts.PrefetchBytes,
		Opts:             sstable.Options{Costs: db.opts.Costs, Charge: db.charge},
	}, factory)
}

// --- garbage collection (§V-B) ----------------------------------------------

// gcWorker reclaims unreachable tables: compute-created extents free
// locally (the allocator metadata lives here); memory-node-created extents
// batch into "free" RPCs; tmpfs files batch into "fs_free".
func (db *DB) gcWorker() {
	cli := rpc.NewClient(db.cn, db.mn, nil, 1<<20)
	defer cli.Close()
	var remoteFrees [][2]int64
	var fsFrees []uint64

	flushBatches := func(force bool) {
		if len(remoteFrees) > 0 && (force || len(remoteFrees) >= db.opts.GCBatch) {
			if _, err := cli.CallPolicy("free", memnode.EncodeFrees(remoteFrees), db.opts.FreeRPC); err != nil {
				// Retries exhausted: drop the batch rather than wedge the
				// GC worker. The extents leak on the memory node until its
				// service restarts; the counter records how much.
				db.stats.GCDropped.Add(1)
			} else {
				db.stats.RemoteFreeRPCs.Add(1)
			}
			remoteFrees = remoteFrees[:0]
		}
		if len(fsFrees) > 0 && (force || len(fsFrees) >= db.opts.GCBatch) {
			args := make([]byte, 4, 4+8*len(fsFrees))
			putU32(args, uint32(len(fsFrees)))
			for _, id := range fsFrees {
				args = appendU64(args, id)
			}
			if _, err := cli.CallPolicy("fs_free", args, db.opts.FreeRPC); err != nil {
				db.stats.GCDropped.Add(1)
			}
			fsFrees = fsFrees[:0]
		}
	}

	for {
		m, ok := db.gcCh.Recv()
		if !ok {
			flushBatches(true)
			return
		}
		for {
			db.routeFree(m, &remoteFrees, &fsFrees)
			if m, ok = db.gcCh.TryRecv(); !ok {
				break
			}
		}
		// The queue is drained; ship whatever accumulated (grouping
		// multiple GC tasks per RPC, §V-B).
		flushBatches(true)
	}
}

func (db *DB) routeFree(m *sstable.Meta, remoteFrees *[][2]int64, fsFrees *[]uint64) {
	db.stats.TablesFreed.Add(1)
	if db.mirror != nil {
		// Free the replica copy alongside the primary extent (idempotent:
		// a table without one — degraded mirror, abandoned attach — is a
		// no-op, so the two release paths can never double-free).
		db.mirror.Release(m.ID)
	}
	switch {
	case m.Data.RKey == fsRKeySentinel:
		*fsFrees = append(*fsFrees, uint64(m.Data.Off))
	case m.CreatorNode == db.mn.ID:
		// Near-data compaction output: the extent lives in the memory
		// node's self-controlled area, whose allocator metadata only it
		// holds — freeing is an RPC. Everything else was carved from the
		// compute-controlled region, whose (host-shared) allocator this
		// node can free directly — including tables a crashed predecessor
		// compute node created, which Recover adopts.
		*remoteFrees = append(*remoteFrees, [2]int64{int64(m.Data.Off), m.Extent})
	default:
		db.freeTableLocal(m)
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func appendU64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}
