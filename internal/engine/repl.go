package engine

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/repl"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
	"dlsm/internal/wal"
)

// openMirror validates the replication options and creates the SSTable
// mirror (internal/repl). Called from openMode before the WAL opens, so the
// log's checkpoint translation can consult the mirror from its first
// refresh.
func (db *DB) openMirror() error {
	opts := &db.opts
	if opts.ReplicationFactor > 2 {
		return fmt.Errorf("engine: ReplicationFactor %d not supported (max 2)", opts.ReplicationFactor)
	}
	if opts.Replica == nil {
		return fmt.Errorf("engine: ReplicationFactor 2 requires Options.Replica")
	}
	if opts.Replica == db.srv {
		return fmt.Errorf("engine: replica must be a different memory node than the primary")
	}
	if opts.Durability == DurabilityNone {
		return fmt.Errorf("engine: replication requires Durability (nothing durable to mirror otherwise)")
	}
	if opts.Transport != TransportNative {
		return fmt.Errorf("engine: replication requires the native transport")
	}
	db.mirror = repl.NewMirror(repl.Config{
		Compute: db.cn,
		Primary: db.srv,
		Replica: opts.Replica,
		Mode:    opts.ReplMode,
		Sync:    opts.ReplAck.Sync(),
		RPC:     opts.CompactRPC,
		// Under AckPrimary a dead replica must not wedge the primary: once
		// extent mirroring degrades, a checkpoint naming unmirrored tables
		// can never translate, so the WAL mirror is dropped with it — the
		// log keeps truncating against the primary copy alone.
		OnDegrade: func() { db.wal.DropMirror() },
	})
	return nil
}

// attachMirror replicates a freshly built table before it is installed. A
// nil error with ReplicationFactor 1 is the common fast path. Under a Sync
// ack policy a failure is returned and the caller still owns the primary
// extent; under AckPrimary the mirror degrades and the table stays
// single-copy.
func (db *DB) attachMirror(m *sstable.Meta) error {
	if db.mirror == nil {
		return nil
	}
	return db.mirror.Attach(m)
}

// attachOutputs replicates every output of a compaction before the version
// edit installs them. On failure the already-attached replica copies and
// all primary output extents are routed through the GC worker (routeFree
// releases both sides), so an abandoned compaction leaks nothing on either
// memory node.
func (db *DB) attachOutputs(outputs []*sstable.Meta) error {
	if db.mirror == nil {
		return nil
	}
	for _, m := range outputs {
		if err := db.mirror.Attach(m); err != nil {
			for _, o := range outputs {
				if !db.gcCh.TrySend(o) {
					panic("engine: gc queue overflow")
				}
			}
			return err
		}
	}
	return nil
}

// storageDead reports whether a memory node this DB must write into is
// permanently gone from its perspective: its own host, the primary memory
// node, or — under a Sync ack policy — the replica. Retry loops surrender
// instead of hammering a dead node; with replication the surviving copy is
// what Recover promotes.
func (db *DB) storageDead() bool {
	if db.cn.Crashed() || db.mn.Crashed() {
		return true
	}
	return db.opts.Replica != nil && db.opts.ReplAck.Sync() && db.opts.Replica.Node().Crashed()
}

// translateCheckpoint rewrites a slim checkpoint blob's table addresses to
// their replica-side extents; the WAL publishes the result on the mirror
// slot so a promoted replica's checkpoint names bytes the replica actually
// holds. ok=false means some named table has no replica copy yet — the
// mirror publish is skipped and the previous slot pair stays.
func (db *DB) translateCheckpoint(blob []byte) ([]byte, bool) {
	files, seq, err := decodeCheckpoint(blob)
	if err != nil {
		return nil, false
	}
	for level := range files {
		for i, m := range files[level] {
			addr, extent, ok := db.mirror.Lookup(m.ID)
			if !ok {
				return nil, false
			}
			c := *m
			c.Data = addr
			c.Extent = extent
			// The replica extent came from the replica's host-shared
			// compute allocator: after a promotion, routeFree must free it
			// locally there, not RPC the (dead) primary.
			c.CreatorNode = db.cn.ID
			files[level][i] = &c
		}
	}
	return encodeCheckpointFiles(files, seq, true), true
}

// encodeCheckpointFiles is encodeCheckpointAt over bare meta slices (the
// translated replica view has no version object). Same wire format.
func encodeCheckpointFiles(files [version.NumLevels][]*sstable.Meta, seq uint64, slim bool) []byte {
	enc := sstable.EncodeMeta
	if slim {
		enc = sstable.EncodeMetaSlim
	}
	b := binary.LittleEndian.AppendUint64(nil, seq)
	for level := 0; level < version.NumLevels; level++ {
		metas := files[level]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(metas)))
		for _, m := range metas {
			e := enc(m)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(e)))
			b = append(b, e...)
		}
	}
	return b
}

// seedMirror rebuilds the mirror's table map during a compute-crash
// recovery with replication still on: adopt the replica checkpoint slot's
// last published view (its metas carry the replica-side addresses), then
// re-mirror any installed table missing from it — a copy Released during a
// torn publish, or one the replica slot never saw. After healing, every
// installed table translates, so FinishRecovery can publish on both slots.
func (db *DB) seedMirror(files [version.NumLevels][]*sstable.Meta) error {
	if rslot, ok := db.opts.Replica.FindLog(walSlotKey(db.opts)); ok {
		qp := db.cn.NewQP(db.opts.Replica.Node())
		img, err := readSlotImage(db.cn, qp, rslot)
		qp.Close()
		if err == nil {
			if _, rblob, _, perr := wal.ParseImage(img); perr == nil && len(rblob) > 0 {
				if rfiles, _, derr := decodeCheckpoint(rblob); derr == nil {
					var metas []*sstable.Meta
					for _, lvl := range rfiles {
						metas = append(metas, lvl...)
					}
					db.mirror.Seed(metas)
				}
			}
		}
	}
	for _, lvl := range files {
		for _, m := range lvl {
			if db.mirror.Has(m.ID) {
				continue
			}
			if err := db.mirror.Attach(m); err != nil {
				return err
			}
		}
	}
	return nil
}
