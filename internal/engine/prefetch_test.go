package engine

import (
	"math/rand"
	"testing"

	"dlsm/internal/sim"
)

// loadForScan writes n keys with a fixed permutation and settles the tree
// so every config scans the same table layout.
func loadForScan(t *testing.T, s *Session, db *DB, n int) {
	t.Helper()
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := s.Put(key(i), value(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	db.Flush()
	db.WaitForCompactions()
}

// fullScan walks the whole DB and returns the number of live entries.
func fullScan(t *testing.T, s *Session, ro ReadOptions) int {
	t.Helper()
	it := s.NewIteratorOpts(ro)
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	return n
}

// Pipelined scans must return exactly the same entries as the synchronous
// path and finish in strictly less virtual time: the whole point of
// depth > 1 is overlapping chunk wire time with consumption.
func TestScanPrefetchSpeedupAndEquivalence(t *testing.T) {
	const n = 4000
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		loadForScan(t, s, db, n)

		elapsed := func(depth int) (int, sim.Duration) {
			t0 := env.Now()
			count := fullScan(t, s, ReadOptions{PrefetchDepth: depth})
			return count, sim.Duration(env.Now() - t0)
		}
		c1, d1 := elapsed(1)
		c4, d4 := elapsed(4)
		if c1 != n || c4 != n {
			t.Fatalf("scan counts: depth1 %d, depth4 %d, want %d", c1, c4, n)
		}
		if d4 >= d1 {
			t.Fatalf("depth 4 (%v) not faster than depth 1 (%v)", d4, d1)
		}
		if got := db.m.scan.BytesPrefetched.Load(); got == 0 {
			t.Fatal("scan.bytes_prefetched stayed zero across a depth-4 scan")
		}
	})
}

// Depth 1 must never touch the prefetch machinery: no pool, no pipelined
// counters — the historical synchronous path, byte for byte.
func TestScanDepth1BypassesPrefetcher(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		loadForScan(t, s, db, 2000)
		if got := fullScan(t, s, ReadOptions{}); got != 2000 {
			t.Fatalf("scan = %d entries, want 2000", got)
		}
		if db.raPool != nil {
			t.Fatal("depth-1 scan created the readahead pool")
		}
		if got := db.m.scan.BytesPrefetched.Load(); got != 0 {
			t.Fatalf("depth-1 scan prefetched %d bytes", got)
		}
	})
}

// Closing an iterator mid-scan must not leak: in-flight fetches drain in
// the background, the gauge returns to zero, abandoned bytes count as
// wasted, and every pooled buffer comes back.
func TestScanMidCloseDrainsInflight(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		loadForScan(t, s, db, 4000)

		it := s.NewIteratorOpts(ReadOptions{PrefetchDepth: 8})
		it.First()
		for i := 0; i < 10 && it.Valid(); i++ {
			it.Next()
		}
		it.Close()
		it.Close() // idempotent

		// Let the background reapers consume the abandoned completions.
		env.Sleep(sim.Duration(1 << 32))
		if g := db.m.scan.Inflight.Load(); g != 0 {
			t.Fatalf("scan.prefetch_inflight after close+drain = %d", g)
		}
		if w := db.m.scan.BytesWasted.Load(); w == 0 {
			t.Fatal("mid-scan close counted no wasted bytes")
		}
		alloc, free := db.scanPool().Stats()
		if alloc != free {
			t.Fatalf("pooled buffers leaked: allocated %d, free %d", alloc, free)
		}
	})
}

// Back-to-back pipelined scans must recycle the pool instead of growing
// it: steady state allocates no new buffers.
func TestScanPoolRecyclesAcrossIterators(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		loadForScan(t, s, db, 2000)

		fullScan(t, s, ReadOptions{PrefetchDepth: 4})
		alloc1, _ := db.scanPool().Stats()
		for i := 0; i < 3; i++ {
			fullScan(t, s, ReadOptions{PrefetchDepth: 4})
		}
		alloc2, free2 := db.scanPool().Stats()
		if alloc2 != alloc1 {
			t.Fatalf("steady-state scans grew the pool: %d -> %d buffers", alloc1, alloc2)
		}
		if alloc2 != free2 {
			t.Fatalf("buffers still out after scans closed: allocated %d, free %d", alloc2, free2)
		}
	})
}
