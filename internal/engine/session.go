package engine

import (
	"sync/atomic"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sstable"
)

// Session is one application thread's handle to the DB. Per the paper's
// RDMA manager (§X-B), every thread owns a thread-local queue pair and
// buffers, so sessions must not be shared across concurrent entities.
type Session struct {
	db      *DB
	qp      *rdma.QP
	scratch *rdma.MemoryRegion
	cli     *rpc.Client // lazily created; tmpfs transport reads

	// claim is the sequence number this session is currently inserting
	// (0 = none). Flushers quiesce a MemTable by waiting until no session
	// holds a claim below the table's range end.
	claim atomic.Uint64

	closed     atomic.Bool
	pendingCPU time.Duration
}

// NewSession creates a thread-local handle.
func (db *DB) NewSession() *Session {
	s := &Session{db: db, qp: db.cn.NewQP(db.mn)}
	db.sessMu.Lock()
	db.sessions = append(db.sessions, s)
	db.sessMu.Unlock()
	return s
}

// Close releases the session's fabric resources and deregisters it.
// Subsequent writes through the session return ErrClosed.
func (s *Session) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.FlushCPU()
	db := s.db
	db.sessMu.Lock()
	for i, x := range db.sessions {
		if x == s {
			db.sessions = append(db.sessions[:i], db.sessions[i+1:]...)
			break
		}
	}
	db.sessMu.Unlock()
	s.qp.Close()
	if s.cli != nil {
		s.cli.Close()
	}
}

// client returns the session's RPC client to the memory node.
func (s *Session) client() *rpc.Client {
	if s.cli == nil {
		s.cli = rpc.NewClient(s.db.cn, s.db.mn, nil, 1<<20)
	}
	return s.cli
}

// noClaimsBelow reports whether no session is mid-insert with a sequence
// the table at [_, hi) could own.
func (db *DB) noClaimsBelow(hi uint64) bool {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	for _, s := range db.sessions {
		if c := s.claim.Load(); c != 0 && c < hi {
			return false
		}
	}
	return true
}

// fetcher returns a Fetcher for the table through this session's QP,
// honoring the engine transport (native one-sided reads, the RDMA file
// system's extra copy, or tmpfs RPC).
func (s *Session) fetcher(meta *sstable.Meta) sstable.Fetcher {
	return s.db.newFetcher(meta, s.qp, &s.scratch, s.client)
}
