package engine

import (
	"bytes"
	"errors"
	"time"

	"dlsm/internal/keys"
	"dlsm/internal/memtable"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// ErrNotFound is returned by Get when no visible version of a key exists.
var ErrNotFound = errors.New("dlsm: key not found")

// ReadOptions tunes one read operation (API v2). The zero value is a valid
// "don't touch the cache, default prefetch" policy.
type ReadOptions struct {
	// FillCache inserts values this read fetches from remote memory (and
	// negative results that survived the bloom filter) into the hot-KV
	// cache. Cache lookups happen regardless; this only gates pollution.
	// Plain Get fills; one-off scans of cold data should leave it false.
	FillCache bool
	// PrefetchBytes overrides Options.PrefetchBytes for this iterator
	// (read-ahead chunk size of range scans). 0 keeps the DB default.
	PrefetchBytes int
	// PrefetchDepth overrides Options.PrefetchDepth for this iterator: how
	// many pipelined readahead fetches each table child keeps in flight.
	// 0 keeps the DB default; 1 forces the synchronous path.
	PrefetchDepth int
	// Snapshot pins the iterator to an explicit sequence number instead of
	// the current one (0 = current). The sequence must still be live —
	// observed while an earlier iterator or read pinned it, or at most the
	// current sequence; the engine keeps no history for sequences
	// compaction has already been allowed to fold away.
	Snapshot keys.Seq
	// MaxStaleness bounds how old a read-only secondary's view may be for
	// this read: when the view's last checkpoint refresh is further in the
	// (virtual) past, the read first refreshes synchronously from the
	// shard's WAL checkpoint slot. 0 — the default — serves the current
	// view however old it is (refreshes ride RefreshView calls only).
	// Ignored on primaries, whose view is always current.
	MaxStaleness time.Duration
	// MinSeq makes an iterator skip keys whose newest visible version is at
	// or below this sequence (0 = no floor). Combined with Snapshot it
	// yields exactly the keys that changed in (MinSeq, Snapshot] — the
	// delta the shard rebalancer copies after fencing a source shard.
	MinSeq keys.Seq
	// IncludeTombstones makes an iterator stop on deleted keys too (with
	// Iterator.IsTombstone reporting true and Value nil) instead of hiding
	// them. A delta copy needs the deletions, not just the live keys.
	IncludeTombstones bool
}

// Get reads the newest visible value of key (snapshot = current sequence).
func (s *Session) Get(key []byte) ([]byte, error) {
	return s.getAt(key, s.db.CurrentSeq(), ReadOptions{FillCache: true})
}

// GetOpts is Get with an explicit read policy.
func (s *Session) GetOpts(key []byte, ro ReadOptions) ([]byte, error) {
	return s.getAt(key, s.db.CurrentSeq(), ro)
}

// GetAt reads key at an explicit snapshot sequence.
func (s *Session) GetAt(key []byte, snap keys.Seq) ([]byte, error) {
	return s.getAt(key, snap, ReadOptions{FillCache: true})
}

func (s *Session) getAt(key []byte, snap keys.Seq, ro ReadOptions) ([]byte, error) {
	db := s.db
	if db.sec != nil && ro.MaxStaleness > 0 {
		if err := db.sec.refreshIfOlder(db, ro.MaxStaleness); err != nil {
			return nil, err
		}
		if snap < db.CurrentSeq() {
			snap = db.CurrentSeq() // the refresh may have advanced the horizon
		}
	}
	db.stats.Reads.Add(1)
	sp := db.m.readLat.Span(db.m.clock)
	defer sp.End()

	// Pin a consistent view. The immutable list is captured BEFORE the
	// version: flushers publish to L0 before removing from the list, so
	// the union always covers every table (§III).
	mem := db.cur.Load()
	mem.Ref()
	imms := db.pinImms()
	v := db.vs.Current()
	defer func() {
		mem.Unref()
		for _, m := range imms {
			m.Unref()
		}
		v.Unref()
	}()

	// 1. MemTable, then immutable tables newest -> oldest.
	db.charge(db.opts.Costs.MemProbe)
	if val, found, deleted := mem.Get(key, snap); found {
		db.m.memHits.Inc()
		return valueOrNotFound(val, deleted)
	}
	for i := len(imms) - 1; i >= 0; i-- {
		db.charge(db.opts.Costs.MemProbe)
		if val, found, deleted := imms[i].Get(key, snap); found {
			db.m.immHits.Inc()
			return valueOrNotFound(val, deleted)
		}
	}

	// 2. L0, newest -> oldest (files overlap).
	for _, f := range v.Levels[0] {
		if !keyInRange(key, f.Meta) {
			continue
		}
		val, found, deleted, err := s.tableGet(f.Meta, key, snap, ro)
		if err != nil {
			return nil, err
		}
		if found {
			return valueOrNotFound(val, deleted)
		}
	}

	// 3. Deeper levels: at most one candidate file per level.
	for level := 1; level < version.NumLevels; level++ {
		f := findFile(v.Levels[level], key)
		if f == nil {
			continue
		}
		val, found, deleted, err := s.tableGet(f.Meta, key, snap, ro)
		if err != nil {
			return nil, err
		}
		if found {
			return valueOrNotFound(val, deleted)
		}
	}
	return nil, ErrNotFound
}

func (s *Session) tableGet(meta *sstable.Meta, key []byte, snap keys.Seq, ro ReadOptions) ([]byte, bool, bool, error) {
	o := sstable.Options{
		Costs:   s.db.opts.Costs,
		Charge:  s.db.charge,
		Metrics: &s.db.m.reader,
	}
	// Only a concrete cache goes in the interface field (a typed-nil would
	// make the reader pay the probe bookkeeping for nothing).
	if s.db.kv != nil {
		o.Cache = s.db.kv
		o.FillCache = ro.FillCache
	}
	r := sstable.NewReader(meta, s.fetcher(meta), o)
	val, found, deleted, err := r.Get(key, snap)
	if err != nil || !found || deleted {
		return nil, found, deleted, err
	}
	// The fetcher's scratch is reused; hand the caller a stable copy.
	return append([]byte(nil), val...), true, false, nil
}

// pinImms snapshots the immutable list with references held.
func (db *DB) pinImms() []*memtable.MemTable {
	db.mu.Lock()
	out := make([]*memtable.MemTable, len(db.imms))
	copy(out, db.imms)
	for _, m := range out {
		m.Ref()
	}
	db.mu.Unlock()
	return out
}

func valueOrNotFound(val []byte, deleted bool) ([]byte, error) {
	if deleted {
		return nil, ErrNotFound
	}
	return val, nil
}

func keyInRange(key []byte, m *sstable.Meta) bool {
	return bytes.Compare(key, keys.UserKey(m.Smallest)) >= 0 &&
		bytes.Compare(key, keys.UserKey(m.Largest)) <= 0
}

// findFile binary-searches a sorted level for the file that may contain key.
func findFile(files []*version.File, key []byte) *version.File {
	lo, hi := 0, len(files)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys.UserKey(files[mid].Largest), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(files) || bytes.Compare(key, keys.UserKey(files[lo].Smallest)) < 0 {
		return nil
	}
	return files[lo]
}
