package engine

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// Checkpoint returns a transactionally consistent snapshot of the index
// metadata (§VIII): the sequence horizon plus every level's table metas
// (including their cached indexes and filters). Table data itself stays in
// remote memory, which survives a compute-node failure. MemTable contents
// are not covered: call Flush first, or — since this PR — open the DB with
// Options.Durability set, which layers the remote write-ahead log
// (internal/wal) on top so Recover re-applies every acknowledged write
// after the last checkpoint horizon automatically.
func (db *DB) Checkpoint() []byte {
	v := db.vs.Current()
	defer v.Unref()
	return encodeCheckpointAt(v, db.seq.Load(), false)
}

// encodeCheckpointAt serializes one version at one sequence horizon. slim
// drops the cached index and filter bytes from each meta — the WAL's
// checkpoint blobs use it to stay within their slot capacity; recovery
// reloads both from the table footers in remote memory.
func encodeCheckpointAt(v *version.Version, seq uint64, slim bool) []byte {
	enc := sstable.EncodeMeta
	if slim {
		enc = sstable.EncodeMetaSlim
	}
	b := binary.LittleEndian.AppendUint64(nil, seq)
	for level := 0; level < version.NumLevels; level++ {
		files := v.Levels[level]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(files)))
		for _, f := range files {
			e := enc(f.Meta)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(e)))
			b = append(b, e...)
		}
	}
	return b
}

// OpenFromCheckpoint reconstructs a DB on a fresh compute node from a
// checkpoint taken before the previous compute node went away. The memory
// node server (and the table bytes in its regions) must be the ones the
// checkpoint refers to.
func OpenFromCheckpoint(cn *rdma.Node, srv *memnode.Server, opts Options, checkpoint []byte) (*DB, error) {
	files, seq, err := decodeCheckpoint(checkpoint)
	if err != nil {
		return nil, err
	}
	db, err := open(cn, srv, opts, false)
	if err != nil {
		return nil, err
	}
	db.installCheckpoint(files, seq)
	if db.wal != nil {
		// Make the slot's recovery baseline the checkpoint just installed;
		// until this lands, a crash would recover an empty (fresh-epoch) DB.
		if err := db.wal.RefreshNow(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// installCheckpoint installs a decoded checkpoint into a freshly opened
// DB: the sequence horizon, a MemTable starting above it (so recovered
// re-execution and new writes never collide with checkpointed sequence
// numbers), and every level's files.
func (db *DB) installCheckpoint(files [version.NumLevels][]*sstable.Meta, seq uint64) {
	db.seq.Store(seq)
	db.switchMu.Lock()
	fresh := memtable.New(db.memID, keys.Seq(seq+1), keys.Seq(seq+1+db.seqRangeLen()))
	db.cur.Store(fresh)
	db.recent = []*memtable.MemTable{fresh}
	db.switchMu.Unlock()

	edit := version.NewEdit()
	var created []*version.File
	for level, metas := range files {
		for _, m := range metas {
			f := version.NewFile(m)
			created = append(created, f)
			edit.Add(level, f)
		}
	}
	db.vs.Apply(edit)
	for _, f := range created {
		db.vs.UnrefFile(f)
	}
	db.l0count.Store(int32(db.currentL0Count()))
}

// decodeCheckpoint parses a checkpoint blob defensively: recovery feeds
// it bytes read back from remote memory, so every length is validated
// against the remaining input before use (a corrupt count or size must
// produce an error, never an allocation explosion or a panic), meta
// decoding must consume its declared bytes exactly, and trailing garbage
// after the last level is rejected.
func decodeCheckpoint(b []byte) (files [version.NumLevels][]*sstable.Meta, seq uint64, err error) {
	if len(b) < 8 {
		return files, 0, fmt.Errorf("engine: short checkpoint (%d bytes)", len(b))
	}
	seq = binary.LittleEndian.Uint64(b)
	b = b[8:]
	for level := 0; level < version.NumLevels; level++ {
		if len(b) < 4 {
			return files, 0, fmt.Errorf("engine: truncated checkpoint at level %d", level)
		}
		n := int64(binary.LittleEndian.Uint32(b))
		b = b[4:]
		// Each meta needs at least its 4-byte length prefix, so a count
		// beyond the remaining bytes cannot be honest.
		if n > int64(len(b))/4 {
			return files, 0, fmt.Errorf("engine: checkpoint level %d claims %d metas in %d bytes", level, n, len(b))
		}
		for i := int64(0); i < n; i++ {
			if len(b) < 4 {
				return files, 0, fmt.Errorf("engine: truncated checkpoint meta")
			}
			sz := int64(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if sz > int64(len(b)) {
				return files, 0, fmt.Errorf("engine: checkpoint meta claims %d of %d bytes", sz, len(b))
			}
			m, rest, err := sstable.DecodeMeta(b[:sz])
			if err != nil {
				return files, 0, fmt.Errorf("engine: checkpoint meta: %w", err)
			}
			if len(rest) != 0 {
				return files, 0, fmt.Errorf("engine: checkpoint meta has %d trailing bytes", len(rest))
			}
			files[level] = append(files[level], m)
			b = b[sz:]
		}
	}
	if len(b) != 0 {
		return files, 0, fmt.Errorf("engine: checkpoint has %d trailing bytes", len(b))
	}
	return files, seq, nil
}
