package engine

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// Checkpoint returns a transactionally consistent snapshot of the index
// metadata (§VIII): the sequence horizon plus every level's table metas
// (including their cached indexes and filters). Table data itself stays in
// remote memory, which survives a compute-node failure; a main-memory
// database layers command logging on top and re-executes operations after
// the horizon on recovery.
//
// Call Flush first (or use the snapshot for incremental checkpointing) if
// MemTable contents must be covered.
func (db *DB) Checkpoint() []byte {
	v := db.vs.Current()
	defer v.Unref()

	b := binary.LittleEndian.AppendUint64(nil, db.seq.Load())
	for level := 0; level < version.NumLevels; level++ {
		files := v.Levels[level]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(files)))
		for _, f := range files {
			enc := sstable.EncodeMeta(f.Meta)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
			b = append(b, enc...)
		}
	}
	return b
}

// OpenFromCheckpoint reconstructs a DB on a fresh compute node from a
// checkpoint taken before the previous compute node went away. The memory
// node server (and the table bytes in its regions) must be the ones the
// checkpoint refers to.
func OpenFromCheckpoint(cn *rdma.Node, srv *memnode.Server, opts Options, checkpoint []byte) (*DB, error) {
	files, seq, err := decodeCheckpoint(checkpoint)
	if err != nil {
		return nil, err
	}
	db := Open(cn, srv, opts)
	db.seq.Store(seq)

	// Replace the initial MemTable with one whose sequence range starts
	// after the checkpoint horizon, so recovered re-execution and new
	// writes never collide with checkpointed sequence numbers.
	db.switchMu.Lock()
	fresh := memtable.New(db.memID, keys.Seq(seq+1), keys.Seq(seq+1+db.seqRangeLen()))
	db.cur.Store(fresh)
	db.recent = []*memtable.MemTable{fresh}
	db.switchMu.Unlock()

	edit := version.NewEdit()
	var created []*version.File
	for level, metas := range files {
		for _, m := range metas {
			f := version.NewFile(m)
			created = append(created, f)
			edit.Add(level, f)
		}
	}
	db.vs.Apply(edit)
	for _, f := range created {
		db.vs.UnrefFile(f)
	}
	db.l0count.Store(int32(db.currentL0Count()))
	return db, nil
}

func decodeCheckpoint(b []byte) (files [version.NumLevels][]*sstable.Meta, seq uint64, err error) {
	if len(b) < 8 {
		return files, 0, fmt.Errorf("engine: short checkpoint")
	}
	seq = binary.LittleEndian.Uint64(b)
	b = b[8:]
	for level := 0; level < version.NumLevels; level++ {
		if len(b) < 4 {
			return files, 0, fmt.Errorf("engine: truncated checkpoint at level %d", level)
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		for i := 0; i < n; i++ {
			if len(b) < 4 {
				return files, 0, fmt.Errorf("engine: truncated checkpoint meta")
			}
			sz := int(binary.LittleEndian.Uint32(b))
			if len(b) < 4+sz {
				return files, 0, fmt.Errorf("engine: truncated checkpoint meta body")
			}
			m, _, err := sstable.DecodeMeta(b[4 : 4+sz])
			if err != nil {
				return files, 0, err
			}
			files[level] = append(files[level], m)
			b = b[4+sz:]
		}
	}
	return files, seq, nil
}
