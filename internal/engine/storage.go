package engine

import (
	"encoding/binary"
	"fmt"
	"time"

	"dlsm/internal/flush"
	"dlsm/internal/rdma"
	"dlsm/internal/remote"
	"dlsm/internal/rpc"
	"dlsm/internal/sstable"
)

// fsRKeySentinel marks Meta.Data addresses that are tmpfs file ids rather
// than registered-memory offsets (TransportTmpfsRPC).
const fsRKeySentinel = ^uint32(0)

// fsCallOverhead is the per-call CPU cost of going through a file-system
// layer instead of raw verbs (TransportFS): the software overhead the
// paper's port pays on every read and write (§XI-A).
const fsCallOverhead = 600 * time.Nanosecond

// newTableDest allocates space for a new table of at most capacity bytes
// and returns its remote address. For the tmpfs transport the "address" is
// a fresh file id.
func (db *DB) newTableDest(capacity int64) (rdma.RemoteAddr, error) {
	if db.opts.Transport == TransportTmpfsRPC {
		// Namespace file ids by DB instance: many shards share one tmpfs.
		id := db.instanceID<<40 | db.vs.NextFileID()
		return rdma.RemoteAddr{Node: db.mn.ID, RKey: fsRKeySentinel, Off: int(id)}, nil
	}
	off, err := db.alloc.Alloc(int(capacity))
	if err != nil {
		return rdma.RemoteAddr{}, fmt.Errorf("engine: remote allocation failed: %w", err)
	}
	return db.dataMR.Addr(int(off)), nil
}

// newSink creates the byte sink that writes a table to dest using the
// worker's thread-local resources.
func (db *DB) newSink(w *bgWorker, dest rdma.RemoteAddr, capacity int64) sstable.Sink {
	switch db.opts.Transport {
	case TransportTmpfsRPC:
		return &tmpfsSink{cli: w.client(), fileID: uint64(dest.Off), chunk: 256 << 10}
	case TransportFS:
		// The FS port writes synchronously with an extra user->fs copy.
		return &fsSink{
			syncSink: syncSink{qp: w.qp, dest: dest, cap: capacity, node: db.cn, bufSize: db.opts.FlushBufSize},
			db:       db,
		}
	default:
		if db.opts.AsyncFlush {
			w.pipeline.Reset(dest, int(capacity))
			return w.pipeline
		}
		return &syncSink{qp: w.qp, dest: dest, cap: capacity, node: db.cn, bufSize: db.opts.FlushBufSize}
	}
}

// shrinkExtent trims a freshly written table's extent to its actual size,
// but never below the engine's uniform extent class: keeping all table
// extents in one buddy class means any freed extent immediately serves the
// next table, preventing live/free checkerboard fragmentation. tmpfs files
// size themselves.
func (db *DB) shrinkExtent(dest rdma.RemoteAddr, capacity int64, res sstable.BuildResult) int64 {
	actual := int(res.Size) + res.IndexLen + res.FilterLen
	if db.opts.Transport == TransportTmpfsRPC {
		return int64(actual)
	}
	if class := int(db.extentClass()); actual < class {
		actual = class
	}
	return db.alloc.Shrink(int64(dest.Off), actual)
}

// extentClass is the uniform table extent size: TableSize of data plus
// headroom for the index/filter footer (~10% at the paper's 420B entries)
// and rotation slack.
func (db *DB) extentClass() int64 {
	return remote.ClassSize(int(db.opts.TableSize+db.opts.TableSize/4) + 128<<10)
}

// effectiveTableSize is the per-output data budget: the extent class minus
// footer headroom, so tables fill their buddy blocks without splitting.
func (db *DB) effectiveTableSize() int64 { return db.opts.TableSize }

// freeTable releases a table's storage if this node owns it; memory-node
// owned extents are batched to the "free" RPC by the GC worker.
func (db *DB) freeTableLocal(m *sstable.Meta) {
	switch db.opts.Transport {
	case TransportTmpfsRPC:
		// Freed via fs_free RPC by the GC worker.
	default:
		db.alloc.Free(int64(m.Data.Off), int(m.Extent))
	}
}

// releaseTableDest returns a failed build's extent before any table meta
// exists for it. tmpfs partial files route through the GC batch path;
// native extents go straight back to the compute-controlled allocator.
func (db *DB) releaseTableDest(dest rdma.RemoteAddr, capacity int64) {
	if dest.RKey == fsRKeySentinel {
		db.gcCh.TrySend(&sstable.Meta{Data: dest, Extent: capacity})
		return
	}
	db.alloc.Free(int64(dest.Off), int(capacity))
}

// newFetcher builds the read-side Fetcher for a table. scratch is a
// per-thread growable registered buffer shared across the thread's
// fetchers; cli lazily provides an RPC client for tmpfs reads.
func (db *DB) newFetcher(meta *sstable.Meta, qp *rdma.QP, scratch **rdma.MemoryRegion, cli func() *rpc.Client) sstable.Fetcher {
	if meta.Data.RKey == fsRKeySentinel {
		return &tmpfsFetcher{cli: cli(), fileID: uint64(meta.Data.Off)}
	}
	f := &nativeFetcher{qp: qp, base: meta.Data, scratch: scratch}
	if db.opts.Transport == TransportFS {
		return &fsFetcher{inner: f, db: db}
	}
	return f
}

// nativeFetcher is a QP fetcher sharing the thread's scratch buffer.
type nativeFetcher struct {
	qp      *rdma.QP
	base    rdma.RemoteAddr
	scratch **rdma.MemoryRegion
}

func (f *nativeFetcher) ReadAt(off, n int) ([]byte, error) {
	mr := *f.scratch
	if mr == nil || mr.Size() < n {
		size := 256 << 10
		for size < n {
			size *= 2
		}
		mr = f.qp.Node().Register(size)
		*f.scratch = mr
	}
	if err := f.qp.ReadSync(mr, 0, f.base.Add(off), n); err != nil {
		return nil, err
	}
	return mr.Bytes(0, n), nil
}

// fsFetcher adds the file-system layer's per-call and per-byte copy costs.
type fsFetcher struct {
	inner *nativeFetcher
	db    *DB
}

func (f *fsFetcher) ReadAt(off, n int) ([]byte, error) {
	f.db.charge(fsCallOverhead + time.Duration(float64(n)*f.db.opts.Costs.MemcpyByte))
	return f.inner.ReadAt(off, n)
}

// tmpfsFetcher reads file bytes via the two-sided fs_read RPC — Nova-LSM's
// long read path (§XI-C2).
type tmpfsFetcher struct {
	cli    *rpc.Client
	fileID uint64
	buf    []byte
}

func (f *tmpfsFetcher) ReadAt(off, n int) ([]byte, error) {
	args := make([]byte, 20)
	binary.LittleEndian.PutUint64(args, f.fileID)
	binary.LittleEndian.PutUint64(args[8:], uint64(off))
	binary.LittleEndian.PutUint32(args[16:], uint32(n))
	b, err := f.cli.Call("fs_read", args)
	if err != nil {
		return nil, err
	}
	f.buf = b
	return f.buf, nil
}

// syncSink writes each filled buffer with a blocking RDMA write — the
// flush path of the ports, without §X-C's asynchronous overlap.
type syncSink struct {
	qp      *rdma.QP
	node    *rdma.Node
	dest    rdma.RemoteAddr
	cap     int64
	bufSize int
	buf     *rdma.MemoryRegion
	n       int
	off     int
	err     error
}

func (s *syncSink) Write(p []byte) {
	if s.buf == nil {
		if s.bufSize <= 0 {
			s.bufSize = flush.DefaultBufSize
		}
		s.buf = s.node.Register(s.bufSize)
	}
	for len(p) > 0 {
		n := copy(s.buf.Bytes(s.n, s.bufSize-s.n), p)
		s.n += n
		p = p[n:]
		if s.n == s.bufSize {
			s.flush()
		}
	}
}

func (s *syncSink) flush() {
	if s.n == 0 || s.err != nil {
		return
	}
	if int64(s.off+s.n) > s.cap {
		s.err = fmt.Errorf("engine: table overflows extent (%d > %d)", s.off+s.n, s.cap)
		return
	}
	if err := s.qp.WriteSync(s.buf, 0, s.dest.Add(s.off), s.n); err != nil {
		s.err = err
		return
	}
	s.off += s.n
	s.n = 0
}

func (s *syncSink) Finish() error {
	s.flush()
	return s.err
}

// fsSink adds the FS port's extra copy per byte and per-call overhead.
type fsSink struct {
	syncSink
	db *DB
}

func (s *fsSink) Write(p []byte) {
	s.db.charge(time.Duration(float64(len(p)) * s.db.opts.Costs.MemcpyByte))
	s.syncSink.Write(p)
}

func (s *fsSink) Finish() error {
	s.db.charge(fsCallOverhead)
	return s.syncSink.Finish()
}

// tmpfsSink streams table bytes to a memory-node tmpfs file in chunked
// fs_write RPCs (the Nova-LSM flush path).
type tmpfsSink struct {
	cli    *rpc.Client
	fileID uint64
	chunk  int
	buf    []byte
	off    int
	err    error
}

func (s *tmpfsSink) Write(p []byte) {
	s.buf = append(s.buf, p...)
	for len(s.buf) >= s.chunk {
		s.send(s.buf[:s.chunk])
		s.buf = s.buf[s.chunk:]
	}
}

func (s *tmpfsSink) send(p []byte) {
	if s.err != nil {
		return
	}
	args := make([]byte, 16, 16+len(p))
	binary.LittleEndian.PutUint64(args, s.fileID)
	binary.LittleEndian.PutUint64(args[8:], uint64(s.off))
	args = append(args, p...)
	if _, err := s.cli.Call("fs_write", args); err != nil {
		s.err = err
		return
	}
	s.off += len(p)
}

func (s *tmpfsSink) Finish() error {
	if len(s.buf) > 0 {
		s.send(s.buf)
		s.buf = nil
	}
	return s.err
}
