package engine

import (
	"bytes"

	"dlsm/internal/iterx"
	"dlsm/internal/keys"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/readahead"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// Iterator is a snapshot-consistent scan over the whole DB in user-key
// order, exposing the newest visible version of each live key. For range
// scans over remote tables, sub-iterators prefetch multi-MB chunks (§VI).
type Iterator struct {
	s      *Session
	snap   keys.Seq
	merged sstable.Iterator

	mem  *memtable.MemTable
	imms []*memtable.MemTable
	v    *version.Version

	ukey  []byte
	value []byte
	valid bool
	err   error

	minSeq  keys.Seq // skip keys whose newest visible version is <= minSeq
	incTomb bool     // surface tombstones instead of hiding them
	isTomb  bool     // current position is a tombstone (incTomb only)
}

// NewIterator opens a scan at the current sequence. Close it to release
// the pinned snapshot.
func (s *Session) NewIterator() *Iterator {
	return s.NewIteratorOpts(ReadOptions{})
}

// NewIteratorOpts is NewIterator with an explicit read policy:
// PrefetchBytes/PrefetchDepth tune the readahead pipeline and Snapshot
// pins an explicit sequence. FillCache is ignored — scans bypass the
// hot-KV cache entirely (prefetched chunks are the wrong granularity to
// cache).
func (s *Session) NewIteratorOpts(ro ReadOptions) *Iterator {
	db := s.db
	if db.sec != nil && ro.MaxStaleness > 0 {
		// Best-effort: an iterator has no error channel, so a failed
		// refresh scans the stale (still self-consistent) view.
		_ = db.sec.refreshIfOlder(db, ro.MaxStaleness)
	}
	snap := db.CurrentSeq()
	if ro.Snapshot > 0 {
		snap = ro.Snapshot
	}
	db.registerSnapshot(snap)

	mem := db.cur.Load()
	mem.Ref()
	imms := db.pinImms()
	v := db.vs.Current()

	opts := sstable.Options{Costs: db.opts.Costs, Charge: db.charge}
	prefetch := db.opts.PrefetchBytes
	if ro.PrefetchBytes > 0 {
		prefetch = ro.PrefetchBytes
	}
	depth := db.opts.PrefetchDepth
	if ro.PrefetchDepth > 0 {
		depth = ro.PrefetchDepth
	}

	var children []sstable.Iterator
	children = append(children, mem.NewIterator())
	for i := len(imms) - 1; i >= 0; i-- {
		children = append(children, imms[i].NewIterator())
	}
	// Per-child readahead: every L0 file and each level's Concat child
	// gets its own pipeline, so children fetch concurrently while the
	// merge consumes them.
	for _, f := range v.Levels[0] {
		children = append(children, s.scanIter(f.Meta, opts, prefetch, depth))
	}
	for level := 1; level < version.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		children = append(children, iterx.Concat(keys.Compare, len(files),
			func(i int) ([]byte, []byte) { return files[i].Smallest, files[i].Largest },
			func(i int) sstable.Iterator {
				return s.scanIter(files[i].Meta, opts, prefetch, depth)
			}))
	}

	return &Iterator{
		s: s, snap: snap,
		merged: iterx.Merging(keys.Compare, children...),
		mem:    mem, imms: imms, v: v,
		minSeq: ro.MinSeq, incTomb: ro.IncludeTombstones,
	}
}

// scanIter builds the scan iterator over one table. At PrefetchDepth > 1
// on the native transport it gets its own queue pair (thread-local QP
// discipline, §X-B: pipelined fetches must not interleave completions
// with the session QP's synchronous reads) and a pipelined prefetcher
// drawing buffers from the DB's shared pool. Otherwise — depth 1, the FS
// and tmpfs transports — it reads synchronously through the session's
// shared scratch, the historical path, untouched byte for byte.
func (s *Session) scanIter(meta *sstable.Meta, opts sstable.Options, prefetch, depth int) sstable.Iterator {
	db := s.db
	if depth <= 1 || db.opts.Transport != TransportNative || meta.Data.RKey == fsRKeySentinel {
		r := sstable.NewReader(meta, db.newFetcher(meta, s.qp, newScratchSlot(), s.client), opts)
		return r.NewIterator(prefetch)
	}
	r := sstable.NewReader(meta, db.newFetcher(meta, s.qp, newScratchSlot(), s.client), opts)
	return r.NewIteratorOpts(sstable.IterOpts{
		Prefetch: prefetch,
		Readahead: &readahead.Config{
			QP:        db.cn.NewQP(db.mn),
			OwnQP:     true,
			Base:      meta.Data,
			Pool:      db.scanPool(),
			Depth:     depth,
			MaxWindow: prefetch,
			Metrics:   db.m.scan,
		},
	})
}

// newScratchSlot gives each table iterator its own scratch buffer slot;
// chunks from different tables must not clobber each other mid-merge.
func newScratchSlot() **rdma.MemoryRegion {
	var slot *rdma.MemoryRegion
	return &slot
}

// First positions at the smallest live key.
func (it *Iterator) First() {
	it.merged.First()
	it.ukey = it.ukey[:0]
	it.findNext(false)
}

// SeekGE positions at the first live key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) {
	it.merged.SeekGE(keys.AppendLookup(nil, ukey, it.snap))
	it.ukey = it.ukey[:0]
	it.findNext(false)
}

// Next advances to the following live key.
func (it *Iterator) Next() {
	it.merged.Next()
	it.findNext(true)
}

// findNext skips versions invisible at the snapshot, stale versions of a
// key already emitted, and tombstoned keys.
func (it *Iterator) findNext(haveLast bool) {
	it.valid = false
	for it.merged.Valid() {
		ukey, seq, kind, err := keys.Parse(it.merged.Key())
		if err != nil {
			it.err = err
			return
		}
		if seq > it.snap {
			it.merged.Next()
			continue
		}
		if haveLast && bytes.Equal(ukey, it.ukey) {
			it.merged.Next()
			continue
		}
		it.ukey = append(it.ukey[:0], ukey...)
		haveLast = true
		// The merge yields (ukey asc, seq desc), so this is the newest
		// visible version of ukey: at or below the floor means the key did
		// not change after minSeq and the whole key is skipped.
		if seq <= it.minSeq {
			it.merged.Next()
			continue
		}
		if kind == keys.KindDelete {
			if it.incTomb {
				it.isTomb = true
				it.value = nil
				it.valid = true
				return
			}
			it.merged.Next()
			continue
		}
		it.isTomb = false
		it.value = it.merged.Value()
		it.valid = true
		return
	}
	if err := it.merged.Error(); err != nil {
		it.err = err
	}
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *Iterator) Key() []byte { return it.ukey }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.value }

// IsTombstone reports whether the current position is a deletion. Only an
// iterator opened with ReadOptions.IncludeTombstones ever stops on one.
func (it *Iterator) IsTombstone() bool { return it.isTomb }

// Error reports the first failure encountered.
func (it *Iterator) Error() error { return it.err }

// Close releases the pinned snapshot and tables, plus any in-flight
// prefetch buffers (drained asynchronously; Close never blocks). Safe to
// call mid-scan and more than once.
func (it *Iterator) Close() {
	if it.v == nil {
		return
	}
	it.merged.Close()
	it.s.db.releaseSnapshot(it.snap)
	it.mem.Unref()
	for _, m := range it.imms {
		m.Unref()
	}
	it.v.Unref()
	it.v = nil
}
