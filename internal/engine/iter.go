package engine

import (
	"bytes"

	"dlsm/internal/iterx"
	"dlsm/internal/keys"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// Iterator is a snapshot-consistent scan over the whole DB in user-key
// order, exposing the newest visible version of each live key. For range
// scans over remote tables, sub-iterators prefetch multi-MB chunks (§VI).
type Iterator struct {
	s      *Session
	snap   keys.Seq
	merged sstable.Iterator

	mem  *memtable.MemTable
	imms []*memtable.MemTable
	v    *version.Version

	ukey  []byte
	value []byte
	valid bool
	err   error
}

// NewIterator opens a scan at the current sequence. Close it to release
// the pinned snapshot.
func (s *Session) NewIterator() *Iterator {
	return s.NewIteratorOpts(ReadOptions{})
}

// NewIteratorOpts is NewIterator with an explicit read policy. Only
// ReadOptions.PrefetchBytes applies: scans bypass the hot-KV cache
// entirely (prefetched chunks are the wrong granularity to cache), so
// FillCache is ignored.
func (s *Session) NewIteratorOpts(ro ReadOptions) *Iterator {
	db := s.db
	snap := db.CurrentSeq()
	db.registerSnapshot(snap)

	mem := db.cur.Load()
	mem.Ref()
	imms := db.pinImms()
	v := db.vs.Current()

	opts := sstable.Options{Costs: db.opts.Costs, Charge: db.charge}
	prefetch := db.opts.PrefetchBytes
	if ro.PrefetchBytes > 0 {
		prefetch = ro.PrefetchBytes
	}

	var children []sstable.Iterator
	children = append(children, mem.NewIterator())
	for i := len(imms) - 1; i >= 0; i-- {
		children = append(children, imms[i].NewIterator())
	}
	for _, f := range v.Levels[0] {
		r := sstable.NewReader(f.Meta, s.db.newFetcher(f.Meta, s.qp, newScratchSlot(), s.client), opts)
		children = append(children, r.NewIterator(prefetch))
	}
	for level := 1; level < version.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		children = append(children, iterx.Concat(keys.Compare, len(files),
			func(i int) ([]byte, []byte) { return files[i].Smallest, files[i].Largest },
			func(i int) sstable.Iterator {
				r := sstable.NewReader(files[i].Meta, s.db.newFetcher(files[i].Meta, s.qp, newScratchSlot(), s.client), opts)
				return r.NewIterator(prefetch)
			}))
	}

	return &Iterator{
		s: s, snap: snap,
		merged: iterx.Merging(keys.Compare, children...),
		mem:    mem, imms: imms, v: v,
	}
}

// newScratchSlot gives each table iterator its own scratch buffer slot;
// chunks from different tables must not clobber each other mid-merge.
func newScratchSlot() **rdma.MemoryRegion {
	var slot *rdma.MemoryRegion
	return &slot
}

// First positions at the smallest live key.
func (it *Iterator) First() {
	it.merged.First()
	it.ukey = it.ukey[:0]
	it.findNext(false)
}

// SeekGE positions at the first live key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) {
	it.merged.SeekGE(keys.AppendLookup(nil, ukey, it.snap))
	it.ukey = it.ukey[:0]
	it.findNext(false)
}

// Next advances to the following live key.
func (it *Iterator) Next() {
	it.merged.Next()
	it.findNext(true)
}

// findNext skips versions invisible at the snapshot, stale versions of a
// key already emitted, and tombstoned keys.
func (it *Iterator) findNext(haveLast bool) {
	it.valid = false
	for it.merged.Valid() {
		ukey, seq, kind, err := keys.Parse(it.merged.Key())
		if err != nil {
			it.err = err
			return
		}
		if seq > it.snap {
			it.merged.Next()
			continue
		}
		if haveLast && bytes.Equal(ukey, it.ukey) {
			it.merged.Next()
			continue
		}
		it.ukey = append(it.ukey[:0], ukey...)
		haveLast = true
		if kind == keys.KindDelete {
			it.merged.Next()
			continue
		}
		it.value = it.merged.Value()
		it.valid = true
		return
	}
	if err := it.merged.Error(); err != nil {
		it.err = err
	}
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *Iterator) Key() []byte { return it.ukey }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.value }

// Error reports the first failure encountered.
func (it *Iterator) Error() error { return it.err }

// Close releases the pinned snapshot and tables.
func (it *Iterator) Close() {
	if it.v == nil {
		return
	}
	it.s.db.releaseSnapshot(it.snap)
	it.mem.Unref()
	for _, m := range it.imms {
		m.Unref()
	}
	it.v.Unref()
	it.v = nil
}
