package engine

import (
	"testing"
	"time"

	"dlsm/internal/faults"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
)

// faultOpts shrinks the retry policies so outages resolve in simulated
// milliseconds instead of seconds.
func faultOpts() Options {
	o := smallOpts()
	o.CompactRPC = rpc.Policy{
		Timeout:     500 * time.Microsecond,
		MaxAttempts: 3,
		Backoff:     100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      0.2,
	}
	o.FreeRPC = rpc.Policy{
		Timeout:     200 * time.Microsecond,
		MaxAttempts: 2,
		Backoff:     50 * time.Microsecond,
	}
	return o
}

type outageResult struct {
	end       sim.Time
	fallbacks int64
	retries   int64
	injected  int64
}

// runServiceOutage writes a compaction-heavy workload, kills the memnode
// RPC service while compactions are in flight (the node itself — and so
// the one-sided data path — stays up), and verifies every key survives
// via the retry → local-compaction fallback.
func runServiceOutage(t *testing.T, seed int64) outageResult {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()

	inj := faults.New(fab, 0)
	// A latency wobble on the data and message paths: exercises the
	// injector without corrupting anything (never Drop on engine paths).
	inj.AddRule(faults.Rule{Name: "wobble-write", Op: rdma.OpWrite, From: faults.Any, To: faults.Any,
		Prob: 0.05, Delay: 10 * time.Microsecond})
	inj.AddRule(faults.Rule{Name: "wobble-send", Op: rdma.OpSend, From: faults.Any, To: faults.Any,
		Prob: 0.3, Delay: 20 * time.Microsecond})

	const n = 6000
	var res outageResult
	env.Run(func() {
		db := Open(cn, srv, faultOpts())
		s := db.NewSession()
		for i := 0; i < n; i++ {
			s.Put(key(i), value(i))
		}
		// Flushes from the loop above have already queued compactions; some
		// are mid-CallLarge right now. Kill the RPC service under them.
		srv.StopService()
		db.Flush()
		db.WaitForCompactions() // exhausts retries, falls back locally
		srv.RestartService()

		for i := 0; i < n; i++ {
			v, err := s.Get(key(i))
			if err != nil {
				t.Fatalf("Get(%s) after outage: %v", key(i), err)
			}
			if string(v) != string(value(i)) {
				t.Fatalf("Get(%s) has wrong value after outage", key(i))
			}
		}
		it := s.NewIterator()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			count++
		}
		if err := it.Error(); err != nil {
			t.Fatalf("iterator after outage: %v", err)
		}
		it.Close()
		if count != n {
			t.Fatalf("iterator saw %d keys, want %d (lost or duplicated)", count, n)
		}
		res.fallbacks = db.Stats().CompactionFallbacks.Load()
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
	res.end = env.Now()
	res.retries = fab.Telemetry().Counter("rpc.retries").Load()
	res.injected = fab.Telemetry().Counter("faults.injected").Load()
	return res
}

func TestCompactionFallsBackDuringServiceOutage(t *testing.T) {
	r := runServiceOutage(t, 7)
	if r.fallbacks == 0 {
		t.Error("compaction.fallback = 0, want > 0")
	}
	if r.retries == 0 {
		t.Error("rpc.retries = 0, want > 0")
	}
	if r.injected == 0 {
		t.Error("faults.injected = 0, want > 0")
	}
}

func TestServiceOutageScenarioDeterministic(t *testing.T) {
	r1 := runServiceOutage(t, 42)
	r2 := runServiceOutage(t, 42)
	if r1 != r2 {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", r1, r2)
	}
}

func TestLinkFlapDuringFlushDrainsPipeline(t *testing.T) {
	env := sim.NewEnvSeed(11)
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	inj := faults.New(fab, 0)

	const n = 4000
	env.Run(func() {
		db := Open(cn, srv, faultOpts())
		s := db.NewSession()
		for i := 0; i < n; i++ {
			s.Put(key(i), value(i)) // memtable-only: no fabric traffic yet
		}
		// Flap the compute<->memory link exactly while the flush pipeline
		// runs: 200us down / 200us up for 4ms, starting (down) right now.
		start := env.Now()
		window := sim.Time(4 * time.Millisecond)
		inj.FlapLink(cn.ID, mn.ID, 200*time.Microsecond, 200*time.Microsecond, start, start+window)
		db.Flush()
		env.WaitUntil(start + window) // let the flap window expire
		db.WaitForCompactions()

		if got := db.Stats().FlushErrors.Load(); got == 0 {
			t.Error("flush.errors = 0, want > 0 (flush never hit a down phase)")
		}
		if g := db.Telemetry().Snapshot().Gauges["flush.buffers_inflight"]; g != 0 {
			t.Errorf("flush.buffers_inflight = %d after flush, want 0 (leaked buffers)", g)
		}
		for i := 0; i < n; i++ {
			v, err := s.Get(key(i))
			if err != nil || string(v) != string(value(i)) {
				t.Fatalf("Get(%s) after flap: %q, %v", key(i), v, err)
			}
		}
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
}
