package engine

import (
	"errors"
	"time"

	"dlsm/internal/keys"
	"dlsm/internal/memtable"
	"dlsm/internal/sim"
)

// ErrClosed is returned by writes against a closed Session or DB.
var ErrClosed = errors.New("dlsm: closed")

// ErrStalled is returned when a write stalled longer than
// Options.StallTimeout. The write was not applied; retrying later is safe.
var ErrStalled = errors.New("dlsm: write stalled longer than StallTimeout")

// ErrReadOnly is returned by writes against a read-only secondary
// (OpenSecondary); only the shard's lease-holding primary may write.
var ErrReadOnly = errors.New("dlsm: read-only secondary")

// Put inserts key -> value through the session's thread context.
func (s *Session) Put(key, value []byte) error { return s.write(keys.KindSet, key, value) }

// Delete writes a tombstone for key.
func (s *Session) Delete(key []byte) error { return s.write(keys.KindDelete, key, nil) }

func (s *Session) write(kind keys.Kind, key, value []byte) error {
	db := s.db
	if s.closed.Load() {
		return ErrClosed
	}
	if db.readOnly {
		return ErrReadOnly
	}
	sp := db.m.writeLat.Span(db.m.clock)
	defer sp.End()
	if err := db.maybeStall(); err != nil {
		return err
	}

	var seq keys.Seq
	var mt *memtable.MemTable
	switch db.opts.SwitchPolicy {
	case SwitchSeqRange:
		// dLSM (§IV): a lock-free fetch-and-add assigns the sequence; the
		// table is determined by which range the sequence falls in, so
		// only range-boundary writers ever touch the switch lock. The
		// claim publishes the in-flight sequence so flushers quiesce
		// straggler inserts into already-switched tables.
		seq = keys.Seq(db.seq.Add(1))
		s.claim.Store(uint64(seq))
		mt = db.tableFor(seq)
	case SwitchLocked:
		// Conventional ports: sequence assignment and the full-table
		// check are a critical section; the CPU burned while holding the
		// lock caps aggregate write throughput regardless of threads.
		db.writeMu.Lock()
		db.charge(db.opts.SyncOverhead)
		seq = keys.Seq(db.seq.Add(1))
		s.claim.Store(uint64(seq))
		mt = db.cur.Load()
		if mt.ApproximateSize() >= db.opts.MemTableSize {
			db.sizeSwitch(mt)
			mt = db.cur.Load()
		}
		db.writeMu.Unlock()
	}

	mt.BeginWrite()
	s.chargeBatched(db.opts.Costs.MemInsert + db.opts.WritePathExtra)
	mt.Add(seq, kind, key, value)
	mt.EndWrite()
	s.claim.Store(0)
	db.stats.Writes.Add(1)

	// Size-triggered switch (SeqRange): burn one sequence number as a
	// fence so every outstanding sequence still maps to the old table.
	if db.opts.SwitchPolicy == SwitchSeqRange &&
		mt.ApproximateSize() >= db.opts.MemTableSize && db.cur.Load() == mt {
		db.sizeSwitch(mt)
	}

	// Durability: log the write after the insert. A record lost to a crash
	// between insert and doorbell was never acknowledged, so replay owing
	// it nothing is exactly the contract; Sync mode returns only once the
	// record is durable in the remote ring.
	if db.walEnabled() {
		return db.walAppend(uint64(seq), 1, func(int) (byte, []byte, []byte) {
			return byte(kind), key, value
		})
	}
	return nil
}

// sizeSwitch retires mt because it reached its size limit, truncating its
// sequence range at a freshly burned fence sequence.
func (db *DB) sizeSwitch(mt *memtable.MemTable) {
	wait := db.m.switchWait.Span(db.m.clock)
	db.switchMu.Lock()
	wait.End()
	if db.cur.Load() == mt {
		fence := keys.Seq(db.seq.Add(1))
		mt.TruncateHi(fence + 1)
		db.switchLocked(mt)
	}
	db.switchMu.Unlock()
}

// tableFor resolves which MemTable owns seq, switching tables when seq runs
// past the current range (the double-checked locking of §IV, entered only
// by out-of-range writers).
func (db *DB) tableFor(seq keys.Seq) *memtable.MemTable {
	mt := db.cur.Load()
	if mt.Owns(seq) {
		return mt
	}
	// Slow path: only range-boundary writers reach here (§IV), so the count
	// and the wait histogram measure real switch-lock contention.
	db.m.switchContended.Inc()
	wait := db.m.switchWait.Span(db.m.clock)
	db.switchMu.Lock()
	wait.End()
	defer db.switchMu.Unlock()
	for {
		mt = db.cur.Load()
		if mt.Owns(seq) {
			return mt
		}
		if _, hi := mt.SeqRange(); seq >= hi {
			db.switchLocked(mt)
			continue
		}
		// Straggler: seq belongs to an already-switched table.
		for _, old := range db.recent {
			if old.Owns(seq) {
				return old
			}
		}
		panic("engine: sequence number owned by no table")
	}
}

// switchLocked makes mt immutable and installs a fresh MemTable owning the
// next consecutive sequence range. Caller holds switchMu.
func (db *DB) switchLocked(mt *memtable.MemTable) {
	_, hi := mt.SeqRange()
	db.memID++
	next := memtable.New(db.memID, hi, hi+keys.Seq(db.seqRangeLen()))
	db.cur.Store(next)
	db.recent = append(db.recent, next)
	// recent keeps only tables that can still receive straggler writes or
	// serve reads before flushing: cap its growth.
	if len(db.recent) > db.opts.MaxImmutables+4 {
		db.recent = db.recent[1:]
	}
	db.stats.MemSwitches.Add(1)

	db.mu.Lock()
	db.imms = append(db.imms, mt)
	db.immCount.Store(int32(len(db.imms)))
	db.mu.Unlock()
	if !db.flushCh.TrySend(mt) {
		// Cannot happen: MaxImmutables stalls writers far below the
		// queue capacity. Blocking here would hold switchMu across a
		// sim wait, so fail loudly instead.
		panic("engine: flush queue overflow")
	}
}

// maybeStall blocks the writer while the LSM cannot absorb more writes:
// too many immutable tables (flush behind) or too many L0 files
// (level0_stop_writes_trigger, §XI-C1). Bulkload mode disables the latter.
// Returns ErrClosed if the DB closes mid-stall, or ErrStalled once the
// stall outlives Options.StallTimeout. Background progress (a flush or
// compaction completing) wakes the writer to re-evaluate; a virtual-time
// alarm at the deadline guarantees ErrStalled fires even when the
// background workers are wedged and never signal.
func (db *DB) maybeStall() error {
	if !db.shouldStall() {
		return nil
	}
	l0 := db.opts.L0StopTrigger > 0 && int(db.l0count.Load()) >= db.opts.L0StopTrigger
	start := db.env.Now()
	var alarm *sim.Alarm
	if t := db.opts.StallTimeout; t > 0 {
		// The timer entity parks on a cancellable alarm: if the deadline
		// fires it broadcasts bgCond so the loop below re-evaluates the
		// timeout; if the stall ends first, Cancel wakes it without leaving
		// a pending wakeup to drag the virtual clock forward.
		alarm = db.env.Clock().NewAlarm(start+sim.Time(t), "engine.stallTimer")
		db.env.Go(func() {
			if alarm.Wait() {
				db.mu.Lock()
				db.bgCond.Broadcast()
				db.mu.Unlock()
			}
		})
	}
	var err error
	db.mu.Lock()
	for db.shouldStall() {
		if db.closed {
			err = ErrClosed
			break
		}
		if t := db.opts.StallTimeout; t > 0 && time.Duration(db.env.Now()-start) >= t {
			err = ErrStalled
			break
		}
		db.bgCond.Wait()
	}
	db.mu.Unlock()
	if alarm != nil {
		alarm.Cancel()
	}
	d := int64(db.env.Now() - start)
	db.stats.StallTime.Add(d)
	db.stats.Stalls.Add(1)
	if l0 {
		db.stats.StallL0Time.Add(d)
	} else {
		db.stats.StallImmTime.Add(d)
	}
	return err
}

// shouldStall uses atomic counters only, so it is safe both before and
// while holding db.mu.
func (db *DB) shouldStall() bool {
	if db.opts.L0StopTrigger > 0 && int(db.l0count.Load()) >= db.opts.L0StopTrigger {
		return true
	}
	return int(db.immCount.Load()) >= db.opts.MaxImmutables
}

// chargeBatched coalesces per-write CPU charges per session.
func (s *Session) chargeBatched(d time.Duration) {
	s.pendingCPU += d
	if s.pendingCPU >= 20*time.Microsecond {
		s.db.charge(s.pendingCPU)
		s.pendingCPU = 0
	}
}

// FlushCPU drains the session's batched CPU debt; benchmarks call it at
// the end of a measured run.
func (s *Session) FlushCPU() {
	if s.pendingCPU > 0 {
		s.db.charge(s.pendingCPU)
		s.pendingCPU = 0
	}
}
