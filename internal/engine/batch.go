package engine

import (
	"dlsm/internal/keys"
	"dlsm/internal/memtable"
)

// Batch buffers Put/Delete operations so Session.Apply can claim one
// sequence range for all of them: one fetch-add and one switch check
// instead of per-entry claims (API v2). Keys and values are copied into an
// internal arena, so callers may reuse their slices immediately. A Batch
// is not safe for concurrent use; Reset recycles its memory.
type Batch struct {
	buf  []byte
	ents []batchEnt
}

type batchEnt struct {
	koff, klen int
	voff, vlen int
	del        bool
}

// Put records key -> value.
func (b *Batch) Put(key, value []byte) {
	ko := len(b.buf)
	b.buf = append(b.buf, key...)
	vo := len(b.buf)
	b.buf = append(b.buf, value...)
	b.ents = append(b.ents, batchEnt{koff: ko, klen: len(key), voff: vo, vlen: len(value)})
}

// Delete records a tombstone for key.
func (b *Batch) Delete(key []byte) {
	ko := len(b.buf)
	b.buf = append(b.buf, key...)
	b.ents = append(b.ents, batchEnt{koff: ko, klen: len(key), del: true})
}

// Len returns the number of buffered operations.
func (b *Batch) Len() int { return len(b.ents) }

// Reset clears the batch, keeping its arena for reuse.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.ents = b.ents[:0]
}

// Entry returns operation i: its key, value (nil for deletes), and whether
// it is a delete. Slices point into the batch arena and are valid until
// Reset.
func (b *Batch) Entry(i int) (key, value []byte, del bool) {
	e := b.ents[i]
	key = b.buf[e.koff : e.koff+e.klen]
	if !e.del {
		value = b.buf[e.voff : e.voff+e.vlen]
	}
	return key, value, e.del
}

// Apply writes every operation in the batch. Under SwitchSeqRange one
// fetch-add claims the whole contiguous sequence range [hi-n+1, hi], so
// the per-write atomic traffic of §IV is paid once per batch; entries are
// then routed to whichever MemTable owns their sequence (a batch may span
// a range boundary). Under SwitchLocked the global write lock is taken
// once for the batch instead of once per entry.
//
// Entries become visible individually as they are inserted — Apply is a
// throughput construct, not a transaction.
func (s *Session) Apply(b *Batch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	db := s.db
	if s.closed.Load() {
		return ErrClosed
	}
	if db.readOnly {
		return ErrReadOnly
	}
	sp := db.m.writeLat.Span(db.m.clock)
	defer sp.End()
	if err := db.maybeStall(); err != nil {
		return err
	}

	var lo uint64
	var locked *memtable.MemTable
	switch db.opts.SwitchPolicy {
	case SwitchSeqRange:
		hi := db.seq.Add(uint64(n))
		lo = hi - uint64(n) + 1
		s.claim.Store(lo)
	case SwitchLocked:
		db.writeMu.Lock()
		db.charge(db.opts.SyncOverhead)
		hi := db.seq.Add(uint64(n))
		lo = hi - uint64(n) + 1
		s.claim.Store(lo)
		locked = db.cur.Load()
		if locked.ApproximateSize() >= db.opts.MemTableSize {
			db.sizeSwitch(locked)
			locked = db.cur.Load()
		}
		db.writeMu.Unlock()
	}

	for i := 0; i < n; i++ {
		seq := keys.Seq(lo + uint64(i))
		// Advancing the claim releases already-inserted prefixes to the
		// flushers' quiesce barrier.
		s.claim.Store(uint64(seq))
		mt := locked
		if mt == nil {
			mt = db.tableFor(seq)
		}
		key, value, del := b.Entry(i)
		kind := keys.KindSet
		if del {
			kind = keys.KindDelete
		}
		mt.BeginWrite()
		s.chargeBatched(db.opts.Costs.MemInsert + db.opts.WritePathExtra)
		mt.Add(seq, kind, key, value)
		mt.EndWrite()
	}
	s.claim.Store(0)
	db.stats.Writes.Add(int64(n))

	// One size-triggered switch check for the whole batch (SeqRange).
	if db.opts.SwitchPolicy == SwitchSeqRange {
		if mt := db.cur.Load(); mt.ApproximateSize() >= db.opts.MemTableSize {
			db.sizeSwitch(mt)
		}
	}

	// Durability: one log append covers the batch's whole sequence range,
	// so group commit sees it as a single record train (one doorbell).
	if db.walEnabled() {
		return db.walAppend(lo, n, func(i int) (byte, []byte, []byte) {
			key, value, del := b.Entry(i)
			if del {
				return byte(keys.KindDelete), key, value
			}
			return byte(keys.KindSet), key, value
		})
	}
	return nil
}
