package engine

import "sync/atomic"

// Stats holds the engine's observability counters. All fields are safe for
// concurrent reads while the DB runs.
type Stats struct {
	Writes      atomic.Int64
	Reads       atomic.Int64
	MemSwitches atomic.Int64

	Flushes      atomic.Int64
	BytesFlushed atomic.Int64

	RemoteCompactions  atomic.Int64
	LocalCompactions   atomic.Int64
	CompactionsRunning atomic.Int64
	CompactionBytesIn  atomic.Int64
	CompactionBytesOut atomic.Int64
	CompactionTime     atomic.Int64 // virtual ns

	Stalls       atomic.Int64
	StallTime    atomic.Int64 // virtual ns
	StallL0Time  atomic.Int64 // stalled on level0_stop_writes_trigger
	StallImmTime atomic.Int64 // stalled on MaxImmutables (flush backlog)

	TablesFreed    atomic.Int64
	RemoteFreeRPCs atomic.Int64
}

// Stats exposes the live counters.
func (db *DB) Stats() *Stats { return &db.stats }

// SpaceUsed reports the remote-memory footprint: compute-controlled
// allocations plus the memory node's self-controlled allocations plus
// tmpfs files (§XI-C3's space comparison).
func (db *DB) SpaceUsed() int64 {
	return db.alloc.Used() + db.srv.SelfUsed() + db.srv.FSUsed()
}

// LevelSizes returns the current per-level (files, bytes).
func (db *DB) LevelSizes() [][2]int64 {
	v := db.vs.Current()
	defer v.Unref()
	out := make([][2]int64, len(v.Levels))
	for i, level := range v.Levels {
		var bytes int64
		for _, f := range level {
			bytes += f.Size
		}
		out[i] = [2]int64{int64(len(level)), bytes}
	}
	return out
}
