package engine

import (
	"fmt"

	"dlsm/internal/flush"
	"dlsm/internal/readahead"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
)

// Stats holds the engine's observability counters, backed by the DB's
// telemetry registry (so they appear in Registry.Snapshot() alongside the
// histograms). All fields are safe for concurrent reads while the DB runs.
type Stats struct {
	Writes      *telemetry.Counter
	Reads       *telemetry.Counter
	MemSwitches *telemetry.Counter

	Flushes      *telemetry.Counter
	BytesFlushed *telemetry.Counter

	RemoteCompactions   *telemetry.Counter
	LocalCompactions    *telemetry.Counter
	CompactionsRunning  *telemetry.Gauge
	CompactionBytesIn   *telemetry.Counter
	CompactionBytesOut  *telemetry.Counter
	CompactionTime      *telemetry.Counter // virtual ns
	CompactionFallbacks *telemetry.Counter // remote exhausted retries -> local
	CompactionErrors    *telemetry.Counter // compactions abandoned (will re-pick)

	FlushErrors *telemetry.Counter // flush attempts that failed and retried
	GCDropped   *telemetry.Counter // free batches dropped after retries

	// Write-path offloading (Options.OffloadFlush). All stay zero when
	// offloading is off: the flush path never issues flush_build RPCs.
	OffloadedFlushes *telemetry.Counter // flush builds completed on the memory node
	OffloadReplays   *telemetry.Counter // offloaded flushes fed by WAL-ring replay
	OffloadInline    *telemetry.Counter // offloaded flushes that shipped contents
	OffloadFallbacks *telemetry.Counter // offload gave up -> compute-local build

	Stalls       *telemetry.Counter
	StallTime    *telemetry.Counter // virtual ns
	StallL0Time  *telemetry.Counter // stalled on level0_stop_writes_trigger
	StallImmTime *telemetry.Counter // stalled on MaxImmutables (flush backlog)

	TablesFreed    *telemetry.Counter
	RemoteFreeRPCs *telemetry.Counter

	// Remote write-ahead log (internal/wal). All stay zero when
	// Durability is DurabilityNone: the log is never constructed.
	WALAppends     *telemetry.Counter // records staged for the log
	WALBytes       *telemetry.Counter // record bytes appended remotely
	WALDoorbells   *telemetry.Counter // RDMA writes posted (group commit coalesces)
	WALTruncations *telemetry.Counter // checkpoint publishes that freed ring space
	WALCkptSkips   *telemetry.Counter // checkpoint blobs too large for their slot
	WALRingStalls  *telemetry.Counter // appends that waited for ring space
	WALReplayed    *telemetry.Counter // entries re-applied by Recover

	// Hot-KV cache (internal/cache). All stay zero when CacheBudgetBytes
	// is 0: the cache is never constructed.
	CacheHits          *telemetry.Counter
	CacheMisses        *telemetry.Counter
	CacheNegHits       *telemetry.Counter // misses answered by the negative cache
	CacheFills         *telemetry.Counter
	CacheEvictions     *telemetry.Counter
	CacheInvalidations *telemetry.Counter // entries dropped with obsoleted tables
	CacheBytes         *telemetry.Gauge   // bytes currently cached
	CacheHitRate       *telemetry.Gauge   // hits/(hits+misses), basis points
}

func newStats(reg *telemetry.Registry) Stats {
	return Stats{
		Writes:      reg.Counter("engine.writes"),
		Reads:       reg.Counter("engine.reads"),
		MemSwitches: reg.Counter("engine.memtable.switches"),

		Flushes:      reg.Counter("engine.flushes"),
		BytesFlushed: reg.Counter("engine.flush.bytes"),

		RemoteCompactions:  reg.Counter("engine.compaction.remote"),
		LocalCompactions:   reg.Counter("engine.compaction.local"),
		CompactionsRunning: reg.Gauge("engine.compaction.running"),
		CompactionBytesIn:  reg.Counter("engine.compaction.bytes_in"),
		CompactionBytesOut: reg.Counter("engine.compaction.bytes_out"),
		CompactionTime:     reg.Counter("engine.compaction.time_ns"),
		// Named without the engine. prefix: this is the headline
		// graceful-degradation signal (remote compaction gave up after
		// retries and ran locally).
		CompactionFallbacks: reg.Counter("compaction.fallback"),
		CompactionErrors:    reg.Counter("engine.compaction.errors"),

		FlushErrors: reg.Counter("engine.flush.errors"),
		GCDropped:   reg.Counter("engine.gc.dropped_batches"),

		OffloadedFlushes: reg.Counter("offload.flushes"),
		OffloadReplays:   reg.Counter("offload.replay"),
		OffloadInline:    reg.Counter("offload.inline"),
		// Named without the engine. prefix, like compaction.fallback: the
		// graceful-degradation signal for the offloaded write path.
		OffloadFallbacks: reg.Counter("offload.fallback"),

		Stalls:       reg.Counter("engine.stalls"),
		StallTime:    reg.Counter("engine.stall.time_ns"),
		StallL0Time:  reg.Counter("engine.stall.l0_time_ns"),
		StallImmTime: reg.Counter("engine.stall.imm_time_ns"),

		TablesFreed:    reg.Counter("engine.gc.tables_freed"),
		RemoteFreeRPCs: reg.Counter("engine.gc.remote_free_rpcs"),

		WALAppends:     reg.Counter("wal.appends"),
		WALBytes:       reg.Counter("wal.append_bytes"),
		WALDoorbells:   reg.Counter("wal.doorbells"),
		WALTruncations: reg.Counter("wal.truncations"),
		WALCkptSkips:   reg.Counter("wal.ckpt_skips"),
		WALRingStalls:  reg.Counter("wal.ring_stalls"),
		WALReplayed:    reg.Counter("wal.replayed"),

		CacheHits:          reg.Counter("cache.hits"),
		CacheMisses:        reg.Counter("cache.misses"),
		CacheNegHits:       reg.Counter("cache.neg_hits"),
		CacheFills:         reg.Counter("cache.fills"),
		CacheEvictions:     reg.Counter("cache.evictions"),
		CacheInvalidations: reg.Counter("cache.invalidations"),
		CacheBytes:         reg.Gauge("cache.bytes"),
		CacheHitRate:       reg.Gauge("cache.hit_rate_bp"),
	}
}

// dbMetrics bundles the latency histograms and path counters the engine
// reports beyond the headline Stats counters.
type dbMetrics struct {
	clock telemetry.Clock

	writeLat   *telemetry.Histogram // engine.write.latency_ns
	readLat    *telemetry.Histogram // engine.read.latency_ns
	switchWait *telemetry.Histogram // engine.memtable.switch_wait_ns
	flushLat   *telemetry.Histogram // engine.flush.latency_ns

	walGroup *telemetry.Histogram // wal.group_records: records per doorbell group

	switchContended *telemetry.Counter // writers that hit the switch lock
	memHits         *telemetry.Counter // reads answered by the MemTable
	immHits         *telemetry.Counter // reads answered by an immutable table

	reader sstable.ReaderMetrics
	flush  flush.Metrics
	scan   readahead.Metrics
}

func newDBMetrics(reg *telemetry.Registry) dbMetrics {
	return dbMetrics{
		clock:      reg.Clock(),
		writeLat:   reg.Histogram("engine.write.latency_ns"),
		readLat:    reg.Histogram("engine.read.latency_ns"),
		switchWait: reg.Histogram("engine.memtable.switch_wait_ns"),
		flushLat:   reg.Histogram("engine.flush.latency_ns"),
		walGroup:   reg.Histogram("wal.group_records"),

		switchContended: reg.Counter("engine.memtable.switch_contended"),
		memHits:         reg.Counter("engine.read.memtable_hits"),
		immHits:         reg.Counter("engine.read.immtable_hits"),

		reader: sstable.ReaderMetrics{
			BloomNegatives: reg.Counter("engine.read.bloom_negatives"),
			Fetches:        reg.Counter("engine.read.table_fetches"),
			FetchedBytes:   reg.Counter("engine.read.table_fetch_bytes"),
		},
		flush: flush.Metrics{
			BuffersInFlight:  reg.Gauge("flush.buffers_inflight"),
			BuffersAllocated: reg.Counter("flush.buffers_allocated"),
			ReapWaits:        reg.Counter("flush.reap_waits"),
			BytesSubmitted:   reg.Counter("flush.bytes_submitted"),
		},
		scan: readahead.Metrics{
			Inflight:        reg.Gauge("scan.prefetch_inflight"),
			StallNS:         reg.Counter("scan.stall_ns"),
			BytesPrefetched: reg.Counter("scan.bytes_prefetched"),
			BytesWasted:     reg.Counter("scan.bytes_wasted"),
		},
	}
}

// compactionLevelCounters returns the per-level byte counters for a
// compaction out of level (get-or-create; names are stable so repeated
// compactions of the same level share counters).
func (db *DB) compactionLevelCounters(level int) (in, out *telemetry.Counter) {
	prefix := fmt.Sprintf("engine.compaction.L%d.", level)
	return db.tel.Counter(prefix + "bytes_in"), db.tel.Counter(prefix + "bytes_out")
}

// Stats exposes the live counters.
func (db *DB) Stats() *Stats { return &db.stats }

// Telemetry returns the DB's metrics registry. Its clock is the simulation's
// virtual clock, so latency histograms are in virtual nanoseconds.
func (db *DB) Telemetry() *telemetry.Registry { return db.tel }

// SpaceUsed reports the remote-memory footprint: compute-controlled
// allocations plus the memory node's self-controlled allocations plus
// tmpfs files (§XI-C3's space comparison).
func (db *DB) SpaceUsed() int64 {
	return db.alloc.Used() + db.srv.SelfUsed() + db.srv.FSUsed()
}

// LevelSizes returns the current per-level (files, bytes).
func (db *DB) LevelSizes() [][2]int64 {
	v := db.vs.Current()
	defer v.Unref()
	out := make([][2]int64, len(v.Levels))
	for i, level := range v.Levels {
		var bytes int64
		for _, f := range level {
			bytes += f.Size
		}
		out[i] = [2]int64{int64(len(level)), bytes}
	}
	return out
}
