package engine

import (
	"fmt"

	"dlsm/internal/keys"
	"dlsm/internal/sim"
	"dlsm/internal/wal"
)

// ErrFenced is returned by writes on a primary whose shard lease was
// taken over by another compute node (see Options.WALFence).
var ErrFenced = wal.ErrFenced

// walSlotKey names this DB's log slot on the memory node. Recover must
// derive the same key from the same (WALOwner, WALShard) pair to find
// the slot the crashed compute node was appending to.
func walSlotKey(opts Options) uint64 {
	return sim.Mix64(0x57A1D06, uint64(opts.WALOwner), uint64(opts.WALShard)) | 1
}

// WALSlotKey exposes the slot-key derivation to failover tooling: after a
// torn checkpoint publish, an operator (or test) reads the 64-byte headers
// of both sides of a replicated slot pair — memnode.FindLog with this key
// on each memory node — and arbitrates with repl.PickSlotPair before
// choosing which node to Recover from.
func WALSlotKey(opts Options) uint64 { return walSlotKey(opts) }

// openWAL attaches the remote write-ahead log. With recovering=true the
// slot must already exist (Recover found it) and is left untouched until
// FinishRecovery; otherwise the slot is created on demand and stamped
// with a fresh epoch.
func (db *DB) openWAL(recovering bool) error {
	slot, err := db.srv.OpenLog(walSlotKey(db.opts), db.opts.WALSize)
	if err != nil {
		return fmt.Errorf("engine: opening wal slot: %w", err)
	}
	var replica *wal.ReplicaConfig
	if db.mirror != nil {
		// The replica slot uses the same logical key, so a promotion finds
		// the mirrored log exactly where Recover looks for the primary one.
		rslot, rerr := db.opts.Replica.OpenLog(walSlotKey(db.opts), db.opts.WALSize)
		if rerr != nil {
			return fmt.Errorf("engine: opening replica wal slot: %w", rerr)
		}
		if rslot.Size != slot.Size {
			return fmt.Errorf("engine: replica wal slot is %d bytes, primary %d", rslot.Size, slot.Size)
		}
		tel := db.cn.Fabric().Telemetry()
		replica = &wal.ReplicaConfig{
			Host:      db.opts.Replica.Node(),
			Slot:      rslot.Addr,
			Sync:      db.opts.ReplAck.Sync(),
			Translate: db.translateCheckpoint,
			Bytes:     tel.Counter("wal.mirror_bytes"),
			Degraded:  tel.Counter("wal.mirror_degraded"),
			TornHook:  db.opts.ReplTornHook,
		}
	}
	l, err := wal.Open(wal.Config{
		Env:       db.env,
		Compute:   db.cn,
		Host:      db.mn,
		Slot:      slot.Addr,
		SlotSize:  slot.Size,
		PerWrite:  db.opts.WALPerWriteCommit,
		Fence:     db.opts.WALFence,
		FenceWord: db.opts.WALFenceWord,
		Replica:   replica,
		Refresh:   db.walCheckpoint,
		Kick:      db.walKick,
		Charge:    func(n int) { db.charge(sim.Bytes(n, db.opts.Costs.MemcpyByte)) },
		Metrics: wal.Metrics{
			Appends:      db.stats.WALAppends,
			AppendBytes:  db.stats.WALBytes,
			Doorbells:    db.stats.WALDoorbells,
			GroupRecords: db.m.walGroup,
			Truncations:  db.stats.WALTruncations,
			CkptSkips:    db.stats.WALCkptSkips,
			RingStalls:   db.stats.WALRingStalls,
			Replayed:     db.stats.WALReplayed,
		},
	}, recovering)
	if err != nil {
		return err
	}
	db.wal = l
	if !recovering {
		db.walLive.Store(true)
	}
	return nil
}

// walCheckpoint is the log's Refresh callback: a slim checkpoint blob
// (table metas without their cached index/filter bytes, which recovery
// reloads from the table footers in remote memory) plus the covered
// horizon. Every sequence number <= covered lives in a table the blob
// names: covered is one below the lowest sequence range still held by a
// live MemTable, and the flush quiesce barrier guarantees no in-flight
// write can land below an already-flushed table's range.
func (db *DB) walCheckpoint() (blob []byte, covered uint64) {
	db.switchMu.Lock()
	db.mu.Lock()
	lo, _ := db.cur.Load().SeqRange()
	covered = uint64(lo) - 1
	for _, mt := range db.imms {
		if l, _ := mt.SeqRange(); uint64(l)-1 < covered {
			covered = uint64(l) - 1
		}
	}
	seq := db.seq.Load()
	v := db.vs.Current()
	db.mu.Unlock()
	db.switchMu.Unlock()
	defer v.Unref()
	return encodeCheckpointAt(v, seq, true), covered
}

// walKick is the log's ring-full escape hatch: force the current
// MemTable toward a flush so the next checkpoint refresh can advance the
// truncation horizon. Mirrors the switch half of Flush without waiting
// for the queue to drain (the commit loop re-checks for space as flushes
// complete).
func (db *DB) walKick() {
	db.switchMu.Lock()
	mt := db.cur.Load()
	if !mt.Empty() {
		if db.opts.SwitchPolicy == SwitchSeqRange {
			fence := keys.Seq(db.seq.Add(1))
			mt.TruncateHi(fence + 1)
		}
		db.switchLocked(mt)
	}
	db.switchMu.Unlock()
}

// walAppend logs n consecutive-sequence entries starting at seqLo, after
// they are already in the MemTable, and resolves the append per the
// durability mode: Sync waits for the group-commit doorbell, Async only
// surfaces an already-broken log. Call with no engine locks held.
func (db *DB) walAppend(seqLo uint64, n int, ent func(i int) (kind byte, key, value []byte)) error {
	tok, err := db.wal.Stage(seqLo, n, ent)
	if err != nil {
		return err
	}
	return db.wal.Commit(tok, db.opts.Durability == DurabilitySync)
}

// walEnabled reports whether writes should be logged right now (the log
// exists and recovery replay is not running).
func (db *DB) walEnabled() bool {
	return db.wal != nil && db.walLive.Load()
}

// WAL returns the remote log, or nil when Durability is DurabilityNone.
func (db *DB) WAL() *wal.Log { return db.wal }
