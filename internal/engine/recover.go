package engine

import (
	"fmt"
	"sort"

	"dlsm/internal/bloom"
	"dlsm/internal/keys"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sstable"
	"dlsm/internal/version"
	"dlsm/internal/wal"
)

// Recover rebuilds a DB on a fresh compute node from the remote
// write-ahead log the crashed one left behind (§VIII). opts must name the
// same (WALOwner, WALShard) — and sizing-relevant options — the dead DB
// used. The slot image is read back with one-sided verbs, its checkpoint
// installs the table metadata (indexes and filters reload from the table
// footers in remote memory), and every surviving log record above the
// checkpoint's covered horizon is re-applied in original sequence order.
// In Sync mode that restores 100% of acknowledged writes: a record
// missing past the torn tail was never durable, so its write was never
// acknowledged. The log then switches to a fresh epoch and the DB is
// live, logging again.
func Recover(cn *rdma.Node, srv *memnode.Server, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Durability == DurabilityNone {
		return nil, fmt.Errorf("engine: Recover requires Options.Durability")
	}
	slot, ok := srv.FindLog(walSlotKey(opts))
	if !ok {
		return nil, fmt.Errorf("engine: no log slot for owner %d shard %d", opts.WALOwner, opts.WALShard)
	}

	qp := cn.NewQP(srv.Node())
	img, err := readSlotImage(cn, qp, slot)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("engine: reading log slot: %w", err)
	}
	h, blob, recs, err := wal.ParseImage(img)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("engine: parsing log slot: %w", err)
	}
	var files [version.NumLevels][]*sstable.Meta
	var seq uint64
	if len(blob) > 0 {
		if files, seq, err = decodeCheckpoint(blob); err != nil {
			qp.Close()
			return nil, fmt.Errorf("engine: log checkpoint: %w", err)
		}
	}
	err = reloadFooters(cn, qp, files)
	qp.Close()
	if err != nil {
		return nil, fmt.Errorf("engine: reloading table footers: %w", err)
	}

	// Open with the log in recovery mode: the slot stays untouched until
	// FinishRecovery, so a crash during replay re-runs recovery against
	// the identical surviving state.
	db, err := open(cn, srv, opts, true)
	if err != nil {
		return nil, err
	}
	db.installCheckpoint(files, seq)

	// With replication still on, rebuild the mirror's table map from the
	// replica checkpoint slot and re-copy anything missing, so every
	// installed table translates when FinishRecovery publishes on both
	// slots.
	if db.mirror != nil {
		if err := db.seedMirror(files); err != nil {
			db.Close()
			return nil, fmt.Errorf("engine: seeding replica mirror: %w", err)
		}
	}

	// Replay in original sequence order. Entries at or below the covered
	// horizon are already in checkpoint tables; above it a record may
	// duplicate a flushed-but-not-yet-covered table's entries, which is
	// harmless — the replay re-asserts the same value at a newer sequence.
	var entries []wal.Entry
	for _, r := range recs {
		for _, e := range r.Entries {
			if e.Seq > h.Covered {
				entries = append(entries, e)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	if err := db.replayEntries(entries); err != nil {
		db.Close()
		return nil, fmt.Errorf("engine: replaying log: %w", err)
	}

	// Flush the replayed writes so the recovery checkpoint covers them,
	// then atomically switch the slot to a fresh, empty-ring epoch.
	db.Flush()
	if err := db.wal.FinishRecovery(); err != nil {
		db.Close()
		return nil, fmt.Errorf("engine: finishing recovery: %w", err)
	}
	db.walLive.Store(true)
	return db, nil
}

// readSlotImage copies the whole log slot to local memory with one
// one-sided read.
func readSlotImage(cn *rdma.Node, qp *rdma.QP, slot memnode.LogSlot) ([]byte, error) {
	mr := cn.Register(int(slot.Size))
	defer cn.Deregister(mr)
	if err := qp.ReadSync(mr, 0, slot.Addr, int(slot.Size)); err != nil {
		return nil, err
	}
	return append([]byte(nil), mr.Bytes(0, int(slot.Size))...), nil
}

// reloadFooters restores the cached index and bloom filter of every slim
// checkpoint meta from its table footer in remote memory (the same
// reload the memory node does before compacting, but over the fabric).
func reloadFooters(cn *rdma.Node, qp *rdma.QP, files [version.NumLevels][]*sstable.Meta) error {
	var scratch *rdma.MemoryRegion
	defer func() {
		if scratch != nil {
			cn.Deregister(scratch)
		}
	}()
	for _, level := range files {
		for _, m := range level {
			need := m.IndexLen + m.FilterLen
			wantIndex := m.IndexLen > 0 && m.Index.NumRecords() == 0
			wantFilter := m.FilterLen > 0 && len(m.Filter) == 0
			if need == 0 || (!wantIndex && !wantFilter) {
				continue
			}
			if scratch == nil || scratch.Size() < need {
				if scratch != nil {
					cn.Deregister(scratch)
				}
				scratch = cn.Register(need)
			}
			if err := qp.ReadSync(scratch, 0, m.Data.Add(int(m.Size)), need); err != nil {
				return err
			}
			if wantIndex {
				raw := append([]byte(nil), scratch.Bytes(0, m.IndexLen)...)
				m.Index = sstable.NewIndexFromRaw(raw, m.Format)
			}
			if wantFilter {
				m.Filter = append(bloom.Filter(nil), scratch.Bytes(m.IndexLen, m.FilterLen)...)
			}
		}
	}
	return nil
}

// replayEntries re-applies recovered log entries through the normal write
// path (batched, with fresh sequence numbers above the checkpoint
// horizon). The write-path WAL hooks are gated off until FinishRecovery,
// so replays are not re-logged record-by-record — the recovery
// checkpoint covers them wholesale.
func (db *DB) replayEntries(entries []wal.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	s := db.NewSession()
	defer s.Close()
	var b Batch
	apply := func() error {
		if b.Len() == 0 {
			return nil
		}
		err := s.Apply(&b)
		b.Reset()
		return err
	}
	for _, e := range entries {
		if keys.Kind(e.Kind) == keys.KindDelete {
			b.Delete(e.Key)
		} else {
			b.Put(e.Key, e.Value)
		}
		if b.Len() >= 512 {
			if err := apply(); err != nil {
				return err
			}
		}
	}
	if err := apply(); err != nil {
		return err
	}
	s.FlushCPU()
	db.stats.WALReplayed.Add(int64(len(entries)))
	return nil
}
