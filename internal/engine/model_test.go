package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

// TestModelCheckRandomOps drives the engine with random Put/Delete/Get/scan
// sequences and cross-checks every observation against an in-memory
// reference model, including at historical snapshots. This is the
// linearizability-style workhorse: it exercises MemTable switches, flushes,
// near-data compaction, tombstones and snapshot isolation together.
func TestModelCheckRandomOps(t *testing.T) {
	configs := []struct {
		name string
		mut  func(*Options)
	}{
		{"neardata-byteaddr", func(o *Options) {}},
		{"local-block", func(o *Options) {
			o.Format = sstable.Block
			o.BlockSize = 2 << 10
			o.CompactionSite = CompactLocal
		}},
		{"locked-fs", func(o *Options) {
			o.Format = sstable.Block
			o.Transport = TransportFS
			o.SwitchPolicy = SwitchLocked
			o.AsyncFlush = false
			o.CompactionSite = CompactLocal
		}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) { runModelScenario(t, cfg.mut) })
	}
}

// runModelScenario is the shared model-checking body.
func runModelScenario(t *testing.T, mut func(*Options)) {
	{
		{
			opts := smallOpts()
			opts.MemTableSize = 16 << 10 // tiny: constant flushing/compaction
			opts.TableSize = 16 << 10
			opts.L1MaxBytes = 64 << 10
			mut(&opts)
			harness(t, opts, func(env *sim.Env, db *DB) {
				model := map[string]string{}
				type snap struct {
					seq   keys.Seq
					model map[string]string
				}
				var snaps []snap

				s := db.NewSession()
				defer s.Close()
				rnd := rand.New(rand.NewSource(99))
				const keySpace = 400
				for step := 0; step < 6000; step++ {
					k := fmt.Sprintf("key-%03d", rnd.Intn(keySpace))
					switch op := rnd.Intn(10); {
					case op < 5: // put
						v := fmt.Sprintf("v%d", step)
						s.Put([]byte(k), []byte(v))
						model[k] = v
					case op < 7: // delete
						s.Delete([]byte(k))
						delete(model, k)
					default: // get
						got, err := s.Get([]byte(k))
						want, ok := model[k]
						if ok != (err == nil) || (ok && string(got) != want) {
							t.Fatalf("step %d: Get(%s) = (%q,%v), model (%q,%v)",
								step, k, got, err, want, ok)
						}
					}
					if step%1500 == 777 { // take a historical snapshot
						m := make(map[string]string, len(model))
						for k, v := range model {
							m[k] = v
						}
						db.registerSnapshot(db.CurrentSeq())
						snaps = append(snaps, snap{db.CurrentSeq(), m})
					}
				}

				// Final state: every key matches the model.
				for i := 0; i < keySpace; i++ {
					k := fmt.Sprintf("key-%03d", i)
					got, err := s.Get([]byte(k))
					want, ok := model[k]
					if ok != (err == nil) || (ok && string(got) != want) {
						t.Fatalf("final Get(%s) = (%q,%v), model (%q,%v)", k, got, err, want, ok)
					}
				}

				// Historical snapshots still read their frozen state even
				// after flushes and compactions.
				db.Flush()
				db.WaitForCompactions()
				for _, sn := range snaps {
					for i := 0; i < keySpace; i += 3 {
						k := fmt.Sprintf("key-%03d", i)
						got, err := s.GetAt([]byte(k), sn.seq)
						want, ok := sn.model[k]
						if ok != (err == nil) || (ok && string(got) != want) {
							for d := keys.Seq(0); d < 40; d++ {
								if v2, e2 := s.GetAt([]byte(k), sn.seq-d); e2 == nil {
									t.Logf("  GetAt(%s, %d) = %q", k, sn.seq-d, v2)
									break
								}
							}
							cur, ce := s.Get([]byte(k))
							t.Logf("  current Get(%s) = (%q, %v)", k, cur, ce)
							t.Fatalf("snapshot@%d Get(%s) = (%q,%v), model (%q,%v)",
								sn.seq, k, got, err, want, ok)
						}
					}
					db.releaseSnapshot(sn.seq)
				}

				// A full scan agrees with the model exactly.
				it := s.NewIterator()
				defer it.Close()
				seen := map[string]string{}
				for it.First(); it.Valid(); it.Next() {
					seen[string(it.Key())] = string(it.Value())
				}
				if err := it.Error(); err != nil {
					t.Fatal(err)
				}
				if len(seen) != len(model) {
					t.Fatalf("scan saw %d keys, model has %d", len(seen), len(model))
				}
				for k, v := range model {
					if seen[k] != v {
						t.Fatalf("scan[%s] = %q, model %q", k, seen[k], v)
					}
				}
			})
		}
	}
}

// TestModelCheckConcurrentReaders runs writers and validating readers
// concurrently: every read must return either a value some Put wrote for
// that key, never garbage, and scans must always be sorted.
func TestModelCheckConcurrentReaders(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 32 << 10
	opts.TableSize = 32 << 10
	harness(t, opts, func(env *sim.Env, db *DB) {
		const keySpace = 300
		wg := sim.NewWaitGroup(env)
		stop := false

		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				rnd := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 2000; i++ {
					k := fmt.Sprintf("key-%03d", rnd.Intn(keySpace))
					s.Put([]byte(k), []byte(fmt.Sprintf("%s=%d.%d", k, w, i)))
				}
			})
		}
		for r := 0; r < 4; r++ {
			r := r
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				rnd := rand.New(rand.NewSource(int64(100 + r)))
				for i := 0; i < 800 && !stop; i++ {
					k := fmt.Sprintf("key-%03d", rnd.Intn(keySpace))
					v, err := s.Get([]byte(k))
					if err == nil {
						// Value integrity: it must be a value written for
						// exactly this key.
						if len(v) < len(k) || string(v[:len(k)]) != k {
							t.Errorf("Get(%s) returned foreign value %q", k, v)
							stop = true
						}
					} else if err != ErrNotFound {
						t.Errorf("Get(%s): %v", k, err)
						stop = true
					}
				}
			})
		}
		wg.Wait()
	})
}
