package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

// smallOpts shrinks everything so a few thousand writes exercise flushes,
// L0 compactions and deeper-level compactions.
func smallOpts() Options {
	o := DLSM()
	o.MemTableSize = 64 << 10
	o.TableSize = 64 << 10
	o.L1MaxBytes = 256 << 10
	o.EntrySizeHint = 120
	o.FlushWorkers = 2
	o.CompactionWorkers = 2
	o.Subcompactions = 4
	o.ReplyBufSize = 4 << 20
	return o
}

// harness runs fn inside a fresh simulated deployment and tears it down.
func harness(t *testing.T, opts Options, fn func(env *sim.Env, db *DB)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	env.Run(func() {
		db := Open(cn, srv, opts)
		fn(env, db)
		db.Close()
		fab.Close()
	})
	env.Wait()
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%060d", i, i)) }

func TestPutGetInMemory(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		s.Put([]byte("hello"), []byte("world"))
		v, err := s.Get([]byte("hello"))
		if err != nil || string(v) != "world" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if _, err := s.Get([]byte("absent")); err != ErrNotFound {
			t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
		}
	})
}

func TestOverwriteVisibility(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		s.Put([]byte("k"), []byte("v1"))
		snap := db.CurrentSeq()
		s.Put([]byte("k"), []byte("v2"))
		if v, _ := s.Get([]byte("k")); string(v) != "v2" {
			t.Fatalf("Get = %q, want v2", v)
		}
		if v, _ := s.GetAt([]byte("k"), snap); string(v) != "v1" {
			t.Fatalf("GetAt = %q, want v1", v)
		}
	})
}

func TestDeleteHidesKey(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		s.Put([]byte("k"), []byte("v"))
		snap := db.CurrentSeq()
		s.Delete([]byte("k"))
		if _, err := s.Get([]byte("k")); err != ErrNotFound {
			t.Fatalf("deleted key visible: %v", err)
		}
		if v, err := s.GetAt([]byte("k"), snap); err != nil || string(v) != "v" {
			t.Fatalf("old snapshot lost the key: %q, %v", v, err)
		}
	})
}

// writeRead drives enough data through the engine to force flushes and
// compactions, then verifies every key.
func writeRead(t *testing.T, opts Options, n int) {
	harness(t, opts, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		perm := rand.New(rand.NewSource(42)).Perm(n)
		for _, i := range perm {
			s.Put(key(i), value(i))
		}
		if got := db.Stats().Flushes.Load(); got == 0 {
			t.Fatal("no flush happened; test is not exercising the LSM")
		}
		for i := 0; i < n; i += 7 {
			v, err := s.Get(key(i))
			if err != nil {
				t.Fatalf("Get(%s): %v", key(i), err)
			}
			if string(v) != string(value(i)) {
				t.Fatalf("Get(%s) = %q, want %q", key(i), v, value(i))
			}
		}
		db.WaitForCompactions()
		total := db.Stats().RemoteCompactions.Load() + db.Stats().LocalCompactions.Load()
		if total == 0 {
			t.Fatal("no compaction ran")
		}
		// All keys still present after the tree settled.
		for i := 0; i < n; i += 13 {
			if _, err := s.Get(key(i)); err != nil {
				t.Fatalf("post-compaction Get(%s): %v", key(i), err)
			}
		}
	})
}

func TestWriteReadNearData(t *testing.T) { writeRead(t, smallOpts(), 5000) }
func TestWriteReadLocalCompaction(t *testing.T) {
	o := smallOpts()
	o.CompactionSite = CompactLocal
	writeRead(t, o, 5000)
}
func TestWriteReadBlockFormat(t *testing.T) {
	o := smallOpts()
	o.Format = sstable.Block
	o.BlockSize = 2 << 10
	writeRead(t, o, 5000)
}
func TestWriteReadFSTransport(t *testing.T) {
	o := smallOpts()
	o.Format = sstable.Block
	o.Transport = TransportFS
	o.CompactionSite = CompactLocal
	o.AsyncFlush = false
	o.SwitchPolicy = SwitchLocked
	writeRead(t, o, 5000)
}
func TestWriteReadTmpfsTransport(t *testing.T) {
	o := smallOpts()
	o.Format = sstable.Block
	o.Transport = TransportTmpfsRPC
	o.CompactionSite = CompactLocal
	o.AsyncFlush = false
	o.SwitchPolicy = SwitchLocked
	writeRead(t, o, 3000)
}
func TestWriteReadSyncFlush(t *testing.T) {
	o := smallOpts()
	o.AsyncFlush = false
	writeRead(t, o, 3000)
}

func TestConcurrentWritersAllDataSurvives(t *testing.T) {
	const writers, per = 8, 800
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		wg := sim.NewWaitGroup(env)
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				for i := 0; i < per; i++ {
					k := []byte(fmt.Sprintf("w%02d-%06d", w, i))
					s.Put(k, k)
				}
			})
		}
		wg.Wait()
		db.Flush()
		s := db.NewSession()
		defer s.Close()
		for w := 0; w < writers; w++ {
			for i := 0; i < per; i += 17 {
				k := []byte(fmt.Sprintf("w%02d-%06d", w, i))
				v, err := s.Get(k)
				if err != nil || string(v) != string(k) {
					t.Fatalf("Get(%s) = %q, %v", k, v, err)
				}
			}
		}
	})
}

func TestIteratorFullScanSortedComplete(t *testing.T) {
	const n = 4000
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		perm := rand.New(rand.NewSource(7)).Perm(n)
		for _, i := range perm {
			s.Put(key(i), value(i))
		}
		it := s.NewIterator()
		defer it.Close()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != string(key(count)) {
				t.Fatalf("scan[%d] = %q, want %q", count, it.Key(), key(count))
			}
			if string(it.Value()) != string(value(count)) {
				t.Fatalf("scan[%d] value mismatch", count)
			}
			count++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("scanned %d keys, want %d", count, n)
		}
	})
}

func TestIteratorSeesNewestVersionOnly(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for round := 0; round < 3; round++ {
			for i := 0; i < 500; i++ {
				s.Put(key(i), []byte(fmt.Sprintf("round-%d", round)))
			}
		}
		s.Delete(key(250))
		it := s.NewIterator()
		defer it.Close()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Value()) != "round-2" {
				t.Fatalf("key %q has value %q, want round-2", it.Key(), it.Value())
			}
			if string(it.Key()) == string(key(250)) {
				t.Fatal("deleted key visible in scan")
			}
			count++
		}
		if count != 499 {
			t.Fatalf("scanned %d keys, want 499", count)
		}
	})
}

func TestIteratorSeekGE(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 1000; i++ {
			s.Put(key(i*2), value(i*2))
		}
		it := s.NewIterator()
		defer it.Close()
		it.SeekGE(key(501)) // odd: lands on 502
		if !it.Valid() || string(it.Key()) != string(key(502)) {
			t.Fatalf("SeekGE landed on %q", it.Key())
		}
	})
}

func TestIteratorSnapshotIgnoresLaterWrites(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 100; i++ {
			s.Put(key(i), []byte("old"))
		}
		it := s.NewIterator()
		defer it.Close()
		for i := 0; i < 100; i++ {
			s.Put(key(i), []byte("new"))
		}
		s.Put(key(200), []byte("new"))
		count := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Value()) != "old" {
				t.Fatalf("snapshot scan saw %q", it.Value())
			}
			count++
		}
		if count != 100 {
			t.Fatalf("snapshot scan saw %d keys, want 100", count)
		}
	})
}

func TestStallsInNormalModeNotInBulkload(t *testing.T) {
	normal := smallOpts()
	normal.L0StopTrigger = 2 // tiny: stalls guaranteed
	var normalStalls int64
	harness(t, normal, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 4000; i++ {
			s.Put(key(i), value(i))
		}
		normalStalls = db.Stats().Stalls.Load()
	})
	if normalStalls == 0 {
		t.Fatal("no write stalls with level0_stop_writes_trigger=2")
	}

	bulk := smallOpts()
	bulk.L0StopTrigger = 0 // bulkload: never stall on L0
	harness(t, bulk, func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 4000; i++ {
			s.Put(key(i), value(i))
		}
		// Stalls can still come from MaxImmutables, but L0 must not gate:
		// verify L0 can exceed the normal-mode trigger.
		if got := db.Stats().Stalls.Load(); got > 0 && db.l0count.Load() <= 2 {
			t.Fatalf("bulkload stalled %d times at tiny L0", got)
		}
	})
}

func TestSpaceReclaimedByGC(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		// Overwrite the same small key set many times: compaction should
		// keep space bounded near one copy of the live data.
		for round := 0; round < 20; round++ {
			for i := 0; i < 500; i++ {
				s.Put(key(i), value(i))
			}
		}
		db.Flush()
		db.WaitForCompactions()
		if db.Stats().TablesFreed.Load() == 0 {
			t.Fatal("no tables were garbage collected")
		}
		live := int64(500 * 120)
		if used := db.SpaceUsed(); used > 30*live {
			t.Fatalf("space used %d, live data only %d: GC not reclaiming", used, live)
		}
	})
}

func TestFlushMakesMemtableDurable(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		s.Put([]byte("k"), []byte("v"))
		db.Flush()
		if db.Stats().Flushes.Load() == 0 {
			t.Fatal("Flush did not flush")
		}
		if v, err := s.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("Get after flush = %q, %v", v, err)
		}
	})
}

func TestRemoteCompactionMovesNoTableBytes(t *testing.T) {
	// Near-data compaction must not transfer table data over the fabric:
	// compare compute->memory traffic against flushed bytes.
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 256 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	env.Run(func() {
		db := Open(cn, srv, smallOpts())
		s := db.NewSession()
		for i := 0; i < 8000; i++ {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		if db.Stats().RemoteCompactions.Load() == 0 {
			t.Error("no remote compaction ran")
		}
		flushed := db.Stats().BytesFlushed.Load()
		compacted := db.Stats().CompactionBytesIn.Load() + db.Stats().CompactionBytesOut.Load()
		sent, _ := fab.LinkStats(cn, mn)
		recvd, _ := fab.LinkStats(mn, cn)
		// Compute->memory carries flushes (data + index/filter footer,
		// <=~1.6x data at these entry sizes) plus small RPCs. Had the
		// compaction inputs crossed the wire, sent would include
		// CompactionBytesIn on top.
		if sent > flushed*8/5+compacted/4 {
			t.Errorf("compute->memory sent %d bytes (flushed %d, compacted %d): compaction data crossed the wire",
				sent, flushed, compacted)
		}
		// Memory->compute carries only new-table metadata replies — a
		// fraction of the compacted bytes, not the bytes themselves.
		if recvd > compacted/2 {
			t.Errorf("memory->compute received %d of %d compacted bytes: table data came back", recvd, compacted)
		}
		s.Close()
		db.Close()
		fab.Close()
	})
	env.Wait()
}

func TestTelemetrySnapshot(t *testing.T) {
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 4000; i++ {
			s.Put(key(i), value(i))
		}
		db.Flush()
		db.WaitForCompactions()
		for i := 0; i < 500; i++ {
			if _, err := s.Get(key(i)); err != nil {
				t.Fatalf("Get(%d): %v", i, err)
			}
		}

		snap := db.Telemetry().Snapshot()
		wl := snap.Histograms["engine.write.latency_ns"]
		if wl.Count != 4000 {
			t.Fatalf("write latency count = %d, want 4000", wl.Count)
		}
		// Most writes finish in 0 virtual ns (nothing blocks), so P50 may be
		// 0; the tail (switch waits, stalls) must show up in Sum and Max.
		if wl.Sum <= 0 || wl.Max <= 0 {
			t.Fatalf("write latency sum/max = %d/%d, want > 0", wl.Sum, wl.Max)
		}
		rl := snap.Histograms["engine.read.latency_ns"]
		if rl.Count != 500 {
			t.Fatalf("read latency count = %d, want 500", rl.Count)
		}
		if fl := snap.Histograms["engine.flush.latency_ns"]; fl.Count != snap.Counters["engine.flushes"]+0 && fl.Count == 0 {
			t.Fatalf("flush latency count = %d", fl.Count)
		}
		if snap.Counters["engine.writes"] != 4000 || snap.Counters["engine.reads"] != 500 {
			t.Fatalf("writes/reads = %d/%d", snap.Counters["engine.writes"], snap.Counters["engine.reads"])
		}
		if snap.Counters["flush.bytes_submitted"] == 0 {
			t.Fatal("flush.bytes_submitted = 0; pipeline metrics not wired")
		}
		if snap.Counters["flush.buffers_allocated"] == 0 {
			t.Fatal("flush.buffers_allocated = 0")
		}
		if g, ok := snap.Gauges["flush.buffers_inflight"]; !ok || g != 0 {
			t.Fatalf("flush.buffers_inflight = %d (present=%v), want 0 after settle", g, ok)
		}
		// smallOpts forces L0 compactions; per-level byte counters must exist
		// and carry the compacted volume.
		if _, ok := snap.Counters["engine.compaction.L0.bytes_in"]; !ok {
			t.Fatal("missing engine.compaction.L0.bytes_in")
		}
		if snap.Counters["engine.compaction.bytes_in"] > 0 &&
			snap.Counters["engine.compaction.L0.bytes_in"] == 0 {
			t.Fatal("compactions ran but L0 per-level counter stayed 0")
		}
		// Reads after compaction hit SSTables: the reader metrics must move.
		if snap.Counters["engine.read.table_fetches"] == 0 {
			t.Fatal("engine.read.table_fetches = 0; reader metrics not wired")
		}
		if snap.Counters["engine.read.table_fetch_bytes"] == 0 {
			t.Fatal("engine.read.table_fetch_bytes = 0")
		}
	})
}

func TestStatsBackedByTelemetry(t *testing.T) {
	// The migrated Stats fields and the registry must be the same storage.
	harness(t, smallOpts(), func(env *sim.Env, db *DB) {
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 100; i++ {
			s.Put(key(i), value(i))
		}
		if got := db.Stats().Writes.Load(); got != 100 {
			t.Fatalf("Stats().Writes = %d, want 100", got)
		}
		if got := db.Telemetry().Snapshot().Counters["engine.writes"]; got != 100 {
			t.Fatalf("registry engine.writes = %d, want 100", got)
		}
	})
}
