package engine

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dlsm/internal/sstable"
	"dlsm/internal/version"
)

// emptyCheckpoint builds the smallest valid checkpoint: a sequence
// horizon and zero tables on every level.
func emptyCheckpoint(seq uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, seq)
	for level := 0; level < version.NumLevels; level++ {
		b = binary.LittleEndian.AppendUint32(b, 0)
	}
	return b
}

// oneMetaCheckpoint builds a checkpoint carrying a single synthetic L0
// meta, slim or full.
func oneMetaCheckpoint(slim bool) []byte {
	m := &sstable.Meta{
		ID: 7, Size: 4096, Extent: 8192, IndexLen: 64, FilterLen: 16,
		Count: 10, Smallest: []byte("a\x00\x00\x00\x00\x00\x00\x00\x01"),
		Largest: []byte("z\x00\x00\x00\x00\x00\x00\x00\x09"), MaxSeq: 9,
		Format: sstable.ByteAddr,
	}
	enc := sstable.EncodeMeta(m)
	if slim {
		enc = sstable.EncodeMetaSlim(m)
	}
	b := binary.LittleEndian.AppendUint64(nil, 42)
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
	b = append(b, enc...)
	for level := 1; level < version.NumLevels; level++ {
		b = binary.LittleEndian.AppendUint32(b, 0)
	}
	return b
}

// reencodeCheckpoint re-serializes a decoded checkpoint with the slim
// meta encoding (the shape recovery hands back after reloadFooters has
// not yet run).
func reencodeCheckpoint(files [version.NumLevels][]*sstable.Meta, seq uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, seq)
	for level := 0; level < version.NumLevels; level++ {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(files[level])))
		for _, m := range files[level] {
			enc := sstable.EncodeMetaSlim(m)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
			b = append(b, enc...)
		}
	}
	return b
}

// TestDecodeCheckpointHardened exercises the defensive paths: every
// truncation of a valid checkpoint must error (not panic), as must
// dishonest counts, dishonest meta sizes, and trailing garbage.
func TestDecodeCheckpointHardened(t *testing.T) {
	valid := oneMetaCheckpoint(false)
	if _, seq, err := decodeCheckpoint(valid); err != nil || seq != 42 {
		t.Fatalf("valid checkpoint: seq=%d err=%v", seq, err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := decodeCheckpoint(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}

	// A level count far beyond what the remaining bytes could hold must be
	// rejected up front, not trusted into an allocation loop.
	huge := emptyCheckpoint(1)
	binary.LittleEndian.PutUint32(huge[8:], 0xFFFFFFFF)
	if _, _, err := decodeCheckpoint(huge); err == nil {
		t.Fatal("absurd meta count decoded successfully")
	}

	// A meta size prefix larger than the remaining input must be rejected.
	badSz := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badSz[12:], 0xFFFFFF00)
	if _, _, err := decodeCheckpoint(badSz); err == nil {
		t.Fatal("dishonest meta size decoded successfully")
	}

	// A meta frame padded beyond what DecodeMeta consumes leaves trailing
	// bytes inside the frame — reject.
	padded := oneMetaCheckpoint(false)
	metaLen := binary.LittleEndian.Uint32(padded[12:])
	binary.LittleEndian.PutUint32(padded[12:], metaLen+3)
	padded = append(padded[:16+metaLen], append([]byte{0, 0, 0}, padded[16+metaLen:]...)...)
	if _, _, err := decodeCheckpoint(padded); err == nil {
		t.Fatal("meta with trailing bytes decoded successfully")
	}

	// Trailing garbage after the last level must be rejected.
	if _, _, err := decodeCheckpoint(append(emptyCheckpoint(1), 0xAA)); err == nil {
		t.Fatal("checkpoint with trailing bytes decoded successfully")
	}

	// Slim metas (the WAL checkpoint encoding) decode with empty caches.
	if files, _, err := decodeCheckpoint(oneMetaCheckpoint(true)); err != nil {
		t.Fatalf("slim checkpoint: %v", err)
	} else if len(files[0]) != 1 || files[0][0].Index.NumRecords() != 0 {
		t.Fatal("slim checkpoint should decode with an empty cached index")
	}
}

// FuzzDecodeCheckpoint asserts decodeCheckpoint is total on arbitrary
// bytes — including bit-flipped valid checkpoints — and that anything it
// accepts survives an encode/decode round trip bit-stably (so recovery
// never amplifies a corrupt blob into a panic or a divergent tree).
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(emptyCheckpoint(0))
	f.Add(emptyCheckpoint(1 << 40))
	f.Add(oneMetaCheckpoint(false))
	f.Add(oneMetaCheckpoint(true))
	f.Fuzz(func(t *testing.T, data []byte) {
		files, seq, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		enc := reencodeCheckpoint(files, seq)
		files2, seq2, err := decodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
		}
		if seq2 != seq {
			t.Fatalf("seq changed across round trip: %d != %d", seq2, seq)
		}
		if !bytes.Equal(reencodeCheckpoint(files2, seq2), enc) {
			t.Fatal("checkpoint encoding is not stable across decode/encode")
		}
		for level := 0; level < version.NumLevels; level++ {
			if len(files2[level]) != len(files[level]) {
				t.Fatalf("level %d count changed across round trip", level)
			}
			for i, m := range files[level] {
				m2 := files2[level][i]
				if m2.ID != m.ID || m2.Size != m.Size || m2.Count != m.Count ||
					m2.MaxSeq != m.MaxSeq || m2.Data != m.Data ||
					!bytes.Equal(m2.Smallest, m.Smallest) || !bytes.Equal(m2.Largest, m.Largest) {
					t.Fatalf("level %d meta %d changed across round trip", level, i)
				}
			}
		}
	})
}
