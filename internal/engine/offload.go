package engine

import (
	"encoding/binary"
	"fmt"

	"dlsm/internal/memnode"
	"dlsm/internal/memtable"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

// offloadEnabled reports whether flush builds go to the memory node
// (three-layer write-path offloading, DESIGN.md §11). Only the native
// transport has the flush_build service; the FS and tmpfs ports keep
// their compute-side flush paths.
func (db *DB) offloadEnabled() bool {
	return db.opts.OffloadFlush && db.opts.Transport == TransportNative
}

// flushRemote offloads one MemTable flush to the memory node: a
// flush_build RPC has it serialize the table into its self-controlled
// area and build the footer sections selected by OffloadIndexBuild /
// OffloadFilter. With the WAL on, only a replay descriptor travels — the
// entry bytes are already resident in the memory node's ring — otherwise
// the memtable contents ship inline. Any footer section the memory node
// did not build is constructed here and one-sided-written into the
// extent's reserved footer space, so the finished table is byte-identical
// to a compute-built one.
func (db *DB) flushRemote(w *bgWorker, mt *memtable.MemTable, capacity int64) (*sstable.Meta, error) {
	lo, hi := mt.SeqRange()
	args := &memnode.FlushBuildArgs{
		Format:     db.opts.Format,
		BlockSize:  db.opts.BlockSize,
		BitsPerKey: db.opts.BitsPerKey,
		ExtentCap:  db.extentClass(),
		Capacity:   capacity,
		// The flush capacity formula is data estimate + footer headroom;
		// the headroom part is exactly what compute-built sections need.
		FooterReserve: capacity - mt.ApproximateSize(),
		BuildIndex:    db.opts.OffloadIndexBuild,
		BuildFilter:   db.opts.OffloadFilter && db.opts.BitsPerKey > 0,
	}
	// A stable nonzero job id, so the memory node dedupes retried
	// deliveries (same contract as "compact"). instanceID disambiguates
	// shards of one compute node sharing a memory node; the memtable id
	// and range base make it unique among this DB's flushes.
	args.JobID = sim.Mix64(uint64(db.env.Seed()), uint64(db.cn.ID),
		db.instanceID, mt.ID(), uint64(lo)) | 1

	if db.walEnabled() && hi > lo {
		// Zero-copy mode: the WAL ring already holds every durable entry on
		// the memory node. SeqRange is half-open [lo, hi) — the replay
		// protocol is inclusive, so the boundary seq hi (owned by the next
		// memtable, possibly already in the ring) must stay out. A failed
		// view (ring stalled, log broken) is not fatal — the contents can
		// still ship inline.
		if v, err := db.wal.ReplayView(uint64(lo), uint64(hi)-1); err == nil && len(v.Records) > 0 {
			args.Replay = &memnode.FlushReplay{
				LogKey:  walSlotKey(db.opts),
				Epoch:   v.Epoch,
				SeqLo:   uint64(lo),
				SeqHi:   uint64(hi) - 1,
				Records: v.Records,
			}
		}
	}
	if args.Replay == nil {
		args.Count = mt.Len()
		args.Entries = db.encodeMemtableEntries(mt)
	}

	reply, err := w.largeClient().CallLargePolicy("flush_build",
		memnode.EncodeFlushBuildArgs(args), db.opts.CompactRPC)
	if err != nil {
		// Give up on the remote build. Best effort: if the job is still
		// running (or finishes later), the cancel frees its extent and
		// tombstones the id against late redelivery.
		db.cancelRemoteJob(w, args.JobID)
		return nil, err
	}
	outputs, err := memnode.DecodeMetas(reply)
	if err == nil && len(outputs) != 1 {
		err = fmt.Errorf("engine: flush_build returned %d tables", len(outputs))
	}
	if err != nil {
		db.cancelRemoteJob(w, args.JobID)
		return nil, err
	}
	m := outputs[0]
	if m.Count != mt.Len() {
		// The replay view can legitimately miss entries that reached the
		// memtable but were never staged to the log (an ErrTooLarge append,
		// a writer between claim release and Stage). Entry sequences are
		// unique and range-filtered, so the built count can only fall
		// short — equality certifies completeness. Drop the remote table
		// and let the caller fall back to the compute-local build.
		db.cancelRemoteJob(w, args.JobID)
		return nil, fmt.Errorf("engine: offloaded flush built %d of %d entries", m.Count, mt.Len())
	}
	if err := db.completeFooter(w, mt, m, args); err != nil {
		db.cancelRemoteJob(w, args.JobID)
		return nil, err
	}
	m.ID = db.vs.NextFileID()
	db.stats.OffloadedFlushes.Add(1)
	if args.Replay != nil {
		db.stats.OffloadReplays.Add(1)
	} else {
		db.stats.OffloadInline.Add(1)
	}
	return m, nil
}

// encodeMemtableEntries frames mt's entries for contents-mode shipping
// (`u32 klen | u32 vlen | ikey | value`, ascending internal-key order).
// The gather copy out of the memtable arena is compute CPU.
func (db *DB) encodeMemtableEntries(mt *memtable.MemTable) []byte {
	buf := make([]byte, 0, int(mt.ApproximateSize())+8*mt.Len())
	it := mt.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		k, v := it.Key(), it.Value()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, k...)
		buf = append(buf, v...)
	}
	db.charge(sim.Bytes(len(buf), db.opts.Costs.MemcpyByte))
	return buf
}

// completeFooter constructs and places whatever footer sections the
// memory node skipped (per-layer ablation). A geometry-only writer pass
// over the memtable (SkipData) rebuilds exactly the missing sections with
// the same block boundaries the remote data pass used, then one-sided
// writes land them in the extent's reserved footer space. Also places a
// memory-node-built filter that could not land remotely: with the index
// built here, the filter's final position was unknowable on the memory
// node, so its bytes traveled back in the reply meta.
func (db *DB) completeFooter(w *bgWorker, mt *memtable.MemTable, m *sstable.Meta, args *memnode.FlushBuildArgs) error {
	if args.BuildIndex && args.BuildFilter {
		return nil // full footer already placed on the memory node
	}
	needIndex := !args.BuildIndex
	needFilter := !args.BuildFilter && db.opts.BitsPerKey > 0
	if needIndex || needFilter {
		bw := sstable.NewWriter(db.opts.Format, nullSink{}, db.opts.BlockSize, db.opts.BitsPerKey,
			sstable.Options{
				Costs: db.opts.Costs, Charge: db.charge,
				SkipData:    true,
				SkipIndex:   !needIndex,
				SkipFilter:  !needFilter,
				DeferFooter: true,
			})
		it := mt.NewIterator()
		for it.First(); it.Valid(); it.Next() {
			bw.Add(it.Key(), it.Value())
		}
		res, err := bw.Finish()
		if err != nil {
			return err
		}
		if needIndex {
			m.Index, m.IndexLen = res.Index, res.IndexLen
		}
		if needFilter {
			m.Filter, m.FilterLen = res.Filter, res.FilterLen
		}
	}
	if m.Size+int64(m.IndexLen)+int64(m.FilterLen) > m.Extent {
		return fmt.Errorf("engine: offloaded table footer overflows extent (%d+%d+%d > %d)",
			m.Size, m.IndexLen, m.FilterLen, m.Extent)
	}
	off := int(m.Size)
	if needIndex {
		if err := db.writeFooterSection(w, m.Data.Add(off), m.Index.Raw()); err != nil {
			return err
		}
	}
	off += m.IndexLen
	if m.FilterLen > 0 {
		if err := db.writeFooterSection(w, m.Data.Add(off), m.Filter); err != nil {
			return err
		}
	}
	return nil
}

// writeFooterSection lands one footer section with a blocking one-sided
// write through the worker's growable scratch buffer.
func (db *DB) writeFooterSection(w *bgWorker, dest rdma.RemoteAddr, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	mr := w.scratch
	if mr == nil || mr.Size() < len(b) {
		size := 256 << 10
		for size < len(b) {
			size *= 2
		}
		mr = db.cn.Register(size)
		w.scratch = mr
	}
	copy(mr.Bytes(0, len(b)), b)
	return w.qp.WriteSync(mr, 0, dest, len(b))
}

// nullSink backs geometry-only writer passes: with SkipData and
// DeferFooter set, nothing is ever written to it.
type nullSink struct{}

func (nullSink) Write(p []byte) {}
func (nullSink) Finish() error  { return nil }

// discardFlushTable returns a freshly built, never-installed flush
// table's extent. Compute-built extents free locally; a memory-node-built
// extent lives in the self-controlled area, whose allocator metadata only
// the memory node holds — freeing is an RPC. Best effort: on failure the
// extent leaks until the service restarts, like a dropped GC batch.
func (db *DB) discardFlushTable(w *bgWorker, m *sstable.Meta) {
	if m.CreatorNode == db.mn.ID && m.Data.RKey != fsRKeySentinel {
		frees := [][2]int64{{int64(m.Data.Off), m.Extent}}
		if _, err := w.client().CallPolicy("free", memnode.EncodeFrees(frees), db.opts.FreeRPC); err != nil {
			db.stats.GCDropped.Add(1)
		}
		return
	}
	db.freeTableLocal(m)
}
