// Package engine implements the dLSM storage engine on one compute node
// backed by one memory node: the paper's write path with sequence-range
// MemTable switching (§IV), asynchronous flushing (§X-C), near-data or
// compute-side compaction (§V), byte-addressable or block SSTables (§VI),
// snapshot-isolated reads and scans, stall control and ownership-aware
// garbage collection (§V-B).
//
// dLSM proper and the LSM baselines (RocksDB-RDMA ports, Nova-LSM
// adaptation, the dLSM-Block ablation) are configurations of this engine:
// they differ only in table format, compaction site, flush I/O mode, the
// MemTable switch protocol, and the storage transport.
package engine

import (
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/repl"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
)

// SwitchPolicy selects how writers decide when a MemTable becomes immutable.
type SwitchPolicy int

const (
	// SwitchSeqRange is dLSM's protocol (§IV): each MemTable owns a
	// pre-assigned sequence-number range; only boundary writers contend.
	SwitchSeqRange SwitchPolicy = iota
	// SwitchLocked is the conventional design: writers serialize sequence
	// assignment and the full-table check through a global write mutex,
	// paying SyncOverhead of CPU inside the critical section.
	SwitchLocked
)

// CompactionSite selects where compaction executes.
type CompactionSite int

const (
	// CompactNearData offloads compaction to the memory node (§V).
	CompactNearData CompactionSite = iota
	// CompactLocal merges on the compute node, fetching every input byte
	// and writing back every output byte over the network.
	CompactLocal
)

// Transport selects how table bytes reach the memory node.
type Transport int

const (
	// TransportNative writes straight to pre-registered remote extents
	// with one-sided verbs (dLSM).
	TransportNative Transport = iota
	// TransportFS goes through the RDMA-oriented file system used to port
	// RocksDB (§XI-A): block-aligned, synchronous, one extra copy.
	TransportFS
	// TransportTmpfsRPC does file I/O via two-sided RPCs to a tmpfs
	// service on the memory node (the Nova-LSM adaptation).
	TransportTmpfsRPC
)

// Durability selects what a completed write guarantees when the compute
// node crashes (§VIII). SSTable bytes always survive in remote memory;
// the write-ahead log (internal/wal) extends that to MemTable contents.
type Durability int

const (
	// DurabilityNone is the historical behavior and the default: no log.
	// Acknowledged writes still in MemTables die with the compute node.
	DurabilityNone Durability = iota
	// DurabilityAsync appends every write to the remote log but
	// acknowledges before the append is durable: the crash-loss window is
	// one group-commit round trip instead of a whole MemTable.
	DurabilityAsync
	// DurabilitySync acknowledges only after the write's log record is
	// durable in remote memory; Recover restores every acknowledged write.
	DurabilitySync
)

// Options configures a DB.
type Options struct {
	Format     sstable.Format
	BlockSize  int // Block format target block size
	BitsPerKey int // bloom filter bits per key (0 disables)

	MemTableSize  int64 // switch threshold
	EntrySizeHint int   // expected bytes/entry, sizes the seq range
	TableSize     int64 // SSTable target size

	L0CompactTrigger int // files in L0 triggering compaction
	L0StopTrigger    int // files in L0 stalling writers; <=0 means never (bulkload)
	MaxImmutables    int // immutable MemTables before writers stall
	L1MaxBytes       int64
	LevelMultiplier  int64

	FlushWorkers      int
	CompactionWorkers int
	Subcompactions    int

	SwitchPolicy   SwitchPolicy
	CompactionSite CompactionSite
	Transport      Transport
	AsyncFlush     bool // overlap serialization with RDMA writes (§X-C)
	FlushBufSize   int

	// OffloadFlush pushes MemTable flushes to the memory node (three-layer
	// write-path offloading, DESIGN.md §11): a flush_build RPC has it
	// serialize the SSTable into its self-controlled area — replaying its
	// resident WAL ring in place when Durability is on (zero extra data
	// bytes on the network), else from memtable contents shipped inline.
	// False — the default — keeps the compute-side flush path
	// byte-identical to builds that predate offloading. Requires the
	// native transport (other transports ignore it); on exhausted RPC
	// retries the flush falls back to the compute-local build.
	OffloadFlush bool

	// OffloadIndexBuild additionally builds the block index on the memory
	// node during an offloaded flush; otherwise the compute node
	// constructs it and one-sided-writes it into the extent's reserved
	// footer space. Only meaningful with OffloadFlush.
	OffloadIndexBuild bool

	// OffloadFilter likewise offloads bloom-filter construction. Only
	// meaningful with OffloadFlush and BitsPerKey > 0.
	OffloadFilter bool

	PrefetchBytes int // range-scan read-ahead

	// PrefetchDepth is how many readahead chunk fetches a range scan keeps
	// in flight per table iterator (the flush pipeline's multi-buffer
	// design applied to the read path, internal/readahead). 1 — the
	// default — fetches each chunk synchronously, the historical behavior;
	// higher depths overlap RDMA fetches with iteration CPU. Only the
	// native one-sided transport pipelines; FS and tmpfs reads stay
	// synchronous at any depth.
	PrefetchDepth int

	// CacheBudgetBytes is the byte budget of the compute-side hot-KV cache
	// (internal/cache). 0 — the default — disables caching entirely, so
	// every figure that predates the cache is unchanged unless it opts in.
	CacheBudgetBytes int64

	// Durability selects the write-ahead logging mode (§VIII). The default,
	// DurabilityNone, allocates no log and leaves the write path untouched.
	Durability Durability

	// WALSize is the byte size of this DB's remote log slot (header +
	// checkpoint slots + ring). Filled with 8×MemTableSize only when
	// Durability is enabled; a ring much smaller than the flush backlog
	// self-corrects by stalling appends and kicking a MemTable switch.
	WALSize int64

	// WALPerWriteCommit disables group commit: every staged record gets its
	// own RDMA doorbell. Exists for the durability ablation (fig wal).
	WALPerWriteCommit bool

	// WALOwner and WALShard name this DB's log slot on the memory node
	// (owner = logical compute index, shard = shard index). Every live DB
	// with Durability enabled must use a distinct (owner, shard) pair per
	// memory node; Recover uses the same pair to find the slot again.
	WALOwner int
	WALShard int

	// WALFence and WALFenceWord wire the shard's ownership lease
	// (internal/lease) into the log's commit path: each commit group
	// acknowledges only after a one-sided CAS verifies the remote word at
	// WALFence still reads WALFenceWord, so a lease takeover rejects the
	// deposed owner's in-flight appends with ErrFenced. Set by the lease
	// layer (shard.NewPrimary/Takeover); the zero default disables fencing
	// and keeps the historical single-owner layout byte-identical.
	WALFence     rdma.RemoteAddr
	WALFenceWord uint64

	// ReplicationFactor is how many memory nodes hold every durable
	// artifact of this DB. 0 and 1 — the default — keep today's
	// single-copy layout and allocate nothing extra. 2 mirrors the WAL
	// ring, checkpoint slots and SSTable extents onto Replica
	// (internal/repl); higher factors are not yet supported. Requires
	// Durability on and the native transport.
	ReplicationFactor int

	// Replica is the backup memory node mirrored onto when
	// ReplicationFactor is 2. It must be a different server than the
	// primary. No LSM runs there: the replica is passive registered
	// memory receiving chained one-sided writes.
	Replica *memnode.Server

	// ReplAck selects when a replicated write acknowledges: AckPrimary
	// (the default) keeps today's ack point and mirrors best-effort;
	// AckQuorum/AckAll ack only after the replica copy is durable too.
	ReplAck repl.AckPolicy

	// ReplMode selects how SSTable bytes reach the replica: IndexOnly
	// (the default) ships built extents primary→replica; LogReplay
	// models a backup that rebuilds tables from its log copy.
	ReplMode repl.Mode

	// ReplTornHook, when set, runs after the replica checkpoint header
	// flips and before the primary's — the torn-dual-flip window. Tests
	// crash the publisher here to exercise slot-pair arbitration.
	ReplTornHook func()

	// StallTimeout bounds how long Put/Delete/Apply may block on a write
	// stall (flush backlog or L0 stop trigger) before returning ErrStalled.
	// 0 — the default — waits indefinitely, the pre-v2 behavior. The
	// timeout is checked each time background progress wakes the writer.
	StallTimeout time.Duration

	// AutoBalance enables the elastic λ-sharding rebalancer (consumed by
	// the shard layer, ignored by a single engine): a background entity on
	// the virtual clock that watches per-shard load and splits hot shards,
	// merges cold adjacent ones, and migrates ranges between memory nodes.
	// Default off — the static λ geometry then behaves exactly as before.
	AutoBalance bool

	// BalanceInterval is the rebalancer's decision tick (0 = its default).
	// Consumed by the shard layer alongside AutoBalance.
	BalanceInterval time.Duration

	// SyncOverhead is CPU charged inside the global write lock under
	// SwitchLocked — the synchronization cost dLSM eliminates (§IV).
	SyncOverhead time.Duration

	// WritePathExtra is additional per-write CPU charged outside any lock,
	// modeling the deeper write-path software stack of the ported systems
	// (writer groups, format framing) that dLSM's lean path avoids (§IV).
	WritePathExtra time.Duration

	// ReplyBufSize bounds compaction RPC replies (new tables' metadata).
	ReplyBufSize int

	// GCBatch groups this many remote frees per "free" RPC (§V-B).
	GCBatch int

	// CompactRPC governs deadlines and retries of the near-data compaction
	// RPC. Retries are safe: each call carries a job id the memory node
	// dedupes on, so a duplicate delivery attaches to the running job
	// instead of compacting twice. On exhausted retries the engine falls
	// back to compute-local compaction.
	CompactRPC rpc.Policy

	// FreeRPC governs deadlines and retries of short control RPCs (remote
	// frees, job cancels). These are idempotent, so aggressive retry is
	// safe; an exhausted batch is dropped (leaking remote memory until the
	// next successful free) rather than wedging the GC worker.
	FreeRPC rpc.Policy

	Costs sim.CostModel
}

// DLSM returns dLSM's configuration at benchmark scale (sizes scaled from
// the paper's 64MB tables per DESIGN.md §2).
func DLSM() Options {
	return Options{
		Format:            sstable.ByteAddr,
		BitsPerKey:        10,
		MemTableSize:      4 << 20,
		EntrySizeHint:     420,
		TableSize:         4 << 20,
		L0CompactTrigger:  4,
		L0StopTrigger:     36,
		MaxImmutables:     16,
		L1MaxBytes:        32 << 20,
		LevelMultiplier:   10,
		FlushWorkers:      4,
		CompactionWorkers: 12,
		Subcompactions:    12,
		SwitchPolicy:      SwitchSeqRange,
		CompactionSite:    CompactNearData,
		Transport:         TransportNative,
		AsyncFlush:        true,
		FlushBufSize:      1 << 20,
		PrefetchBytes:     2 << 20,
		PrefetchDepth:     1,
		SyncOverhead:      450 * time.Nanosecond,
		ReplyBufSize:      16 << 20,
		GCBatch:           8,
		CompactRPC: rpc.Policy{
			Timeout:     2 * time.Second,
			MaxAttempts: 3,
			Backoff:     10 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			Jitter:      0.2,
		},
		FreeRPC: rpc.Policy{
			Timeout:     50 * time.Millisecond,
			MaxAttempts: 5,
			Backoff:     1 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Jitter:      0.2,
		},
		Costs: sim.DefaultCosts(),
	}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := DLSM()
	if o.BitsPerKey == 0 {
		o.BitsPerKey = d.BitsPerKey
	}
	if o.MemTableSize == 0 {
		o.MemTableSize = d.MemTableSize
	}
	if o.EntrySizeHint == 0 {
		o.EntrySizeHint = d.EntrySizeHint
	}
	if o.TableSize == 0 {
		o.TableSize = d.TableSize
	}
	if o.L0CompactTrigger == 0 {
		o.L0CompactTrigger = d.L0CompactTrigger
	}
	if o.MaxImmutables == 0 {
		o.MaxImmutables = d.MaxImmutables
	}
	if o.L1MaxBytes == 0 {
		o.L1MaxBytes = d.L1MaxBytes
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = d.LevelMultiplier
	}
	if o.FlushWorkers == 0 {
		o.FlushWorkers = d.FlushWorkers
	}
	if o.CompactionWorkers == 0 {
		o.CompactionWorkers = d.CompactionWorkers
	}
	if o.Subcompactions == 0 {
		o.Subcompactions = d.Subcompactions
	}
	if o.FlushBufSize == 0 {
		o.FlushBufSize = d.FlushBufSize
	}
	if o.PrefetchBytes == 0 {
		o.PrefetchBytes = d.PrefetchBytes
	}
	if o.PrefetchDepth == 0 {
		o.PrefetchDepth = d.PrefetchDepth
	}
	if o.SyncOverhead == 0 {
		o.SyncOverhead = d.SyncOverhead
	}
	if o.ReplyBufSize == 0 {
		o.ReplyBufSize = d.ReplyBufSize
	}
	if o.GCBatch == 0 {
		o.GCBatch = d.GCBatch
	}
	if o.CompactRPC == (rpc.Policy{}) {
		o.CompactRPC = d.CompactRPC
	}
	if o.FreeRPC == (rpc.Policy{}) {
		o.FreeRPC = d.FreeRPC
	}
	if o.Costs == (sim.CostModel{}) {
		o.Costs = d.Costs
	}
	if o.BlockSize == 0 {
		o.BlockSize = 8 << 10
	}
	// WALSize is only defaulted when logging is on, so DurabilityNone
	// configurations are byte-identical to builds that predate the WAL.
	if o.Durability != DurabilityNone && o.WALSize == 0 {
		o.WALSize = 8 * o.MemTableSize
		if o.WALSize < 64<<10 {
			o.WALSize = 64 << 10
		}
	}
	// Writers must never stall below the compaction trigger, or L0 can
	// never become compactable and the system wedges.
	if o.L0StopTrigger > 0 && o.L0CompactTrigger > o.L0StopTrigger {
		o.L0CompactTrigger = o.L0StopTrigger
	}
	return o
}
