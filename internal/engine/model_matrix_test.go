package engine

import (
	"testing"

	"dlsm/internal/sstable"
)

// TestModelCheckMoreConfigs extends the model check across the remaining
// format x compaction-site x subcompaction matrix. The block+subcompaction
// cells are the regression net for a real bug found during development:
// output rotation splitting one user key's versions across two tables,
// which level point-lookups (one candidate file per level) cannot see.
func TestModelCheckMoreConfigs(t *testing.T) {
	for _, cfg := range []struct {
		name string
		mut  func(*Options)
	}{
		{"local-byteaddr", func(o *Options) { o.CompactionSite = CompactLocal }},
		{"neardata-block", func(o *Options) { o.Format = sstable.Block; o.BlockSize = 2 << 10 }},
		{"neardata-block-sub1", func(o *Options) { o.Format = sstable.Block; o.BlockSize = 2 << 10; o.Subcompactions = 1 }},
		{"local-block-sub1", func(o *Options) {
			o.Format = sstable.Block
			o.BlockSize = 2 << 10
			o.CompactionSite = CompactLocal
			o.Subcompactions = 1
		}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			runModelScenario(t, cfg.mut)
		})
	}
}
