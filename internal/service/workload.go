package service

import (
	"fmt"
	"math/rand"
)

// OpKind classifies one client request.
type OpKind int

// The request kinds the tier executes.
const (
	OpRead    OpKind = iota // point Get
	OpUpdate                // Put over an existing key
	OpInsert                // Put of a brand-new key
	OpScan                  // bounded range scan from a start key
	OpRMW                   // read-modify-write: Get then Put of the same key
	OpScanAll               // one full-table scan (the readseq workload)
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	case OpScanAll:
		return "scanall"
	}
	return "unknown"
}

// Op is one generated request: a kind, the key index it targets, and for
// scans the entry budget.
type Op struct {
	Kind    OpKind
	Key     int
	ScanLen int
}

// Mix is the operation mix of a workload; the fractions must sum to 1
// (anything left over goes to reads).
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
}

// Workload describes what one tenant's clients ask for. The generator is
// purely a function of (seed, client index, op index): same seed, same
// stream, regardless of how the ops interleave across tenants at runtime.
type Workload struct {
	Name string
	Mix  Mix

	// KeyRange is the number of preloaded keys; reads, updates and scan
	// starts draw from [0, KeyRange) plus whatever this client inserted.
	KeyRange int

	// Zipf > 1 skews key choice with a Zipf(s) distribution whose ranks
	// are scrambled across the key space (the same scheme the bench
	// harness uses); <= 1 draws uniformly. The classic YCSB zipfian
	// constant is 0.99, which math/rand's Zipf cannot express (it needs
	// s > 1); the presets use 1.2 — a slightly hotter head — and say so.
	Zipf float64

	// Latest biases reads toward recently inserted keys (YCSB-D): the
	// read key is the newest insert minus a Zipf-distributed age.
	Latest bool

	// MaxScanLen is the scan budget upper bound (YCSB-E draws uniformly
	// from [1, MaxScanLen]).
	MaxScanLen int

	// ScanAll makes every op one full-table scan; the tier counts scanned
	// entries (not scans) as throughput units, matching the direct
	// harness's readseq accounting.
	ScanAll bool
}

// YCSB returns the standard YCSB core workload w ('A'..'F') over keyRange
// preloaded keys:
//
//	A  50% read / 50% update, zipf
//	B  95% read /  5% update, zipf
//	C 100% read,              zipf
//	D  95% read /  5% insert, latest
//	E  95% scan /  5% insert, zipf, scans up to 100 entries
//	F  50% read / 50% read-modify-write, zipf
func YCSB(w byte, keyRange int) Workload {
	wl := Workload{Name: fmt.Sprintf("YCSB-%c", w), KeyRange: keyRange, Zipf: 1.2}
	switch w {
	case 'A', 'a':
		wl.Mix = Mix{Read: 0.5, Update: 0.5}
	case 'B', 'b':
		wl.Mix = Mix{Read: 0.95, Update: 0.05}
	case 'C', 'c':
		wl.Mix = Mix{Read: 1.0}
	case 'D', 'd':
		wl.Mix = Mix{Read: 0.95, Insert: 0.05}
		wl.Latest = true
		wl.Zipf = 0 // recency bias comes from Latest, not key scrambling
	case 'E', 'e':
		wl.Mix = Mix{Scan: 0.95, Insert: 0.05}
		wl.MaxScanLen = 100
	case 'F', 'f':
		wl.Mix = Mix{Read: 0.5, RMW: 0.5}
	default:
		panic(fmt.Sprintf("service: unknown YCSB workload %q", w))
	}
	return wl
}

// ReadSeq is the full-table-scan workload (the direct harness's readseq):
// each client scans the whole database once.
func ReadSeq(keyRange int) Workload {
	return Workload{Name: "readseq", KeyRange: keyRange, ScanAll: true}
}

// gen generates one client's op stream. Inserted keys are allocated
// disjointly across all clients of the run: client c (global index) takes
// KeyRange + c + i*stride for its i-th insert, so no two clients ever
// collide and the stream stays a pure function of the seed.
type gen struct {
	w        Workload
	rnd      *rand.Rand
	zipf     *rand.Zipf
	latest   *rand.Zipf
	base     int // global client index
	stride   int // total clients in the run
	inserted int
}

func newGen(w Workload, rnd *rand.Rand, clientIdx, totalClients int) *gen {
	g := &gen{w: w, rnd: rnd, base: clientIdx, stride: totalClients}
	if w.Zipf > 1 && w.KeyRange > 1 {
		g.zipf = rand.NewZipf(rnd, w.Zipf, 1, uint64(w.KeyRange-1))
	}
	if w.Latest && w.KeyRange > 1 {
		g.latest = rand.NewZipf(rnd, 1.2, 1, uint64(w.KeyRange-1))
	}
	return g
}

// next draws the i-th op of the stream.
func (g *gen) next() Op {
	if g.w.ScanAll {
		return Op{Kind: OpScanAll}
	}
	m := g.w.Mix
	f := g.rnd.Float64()
	switch {
	case f < m.Update:
		return Op{Kind: OpUpdate, Key: g.pick()}
	case f < m.Update+m.Insert:
		k := g.w.KeyRange + g.base + g.inserted*g.stride
		g.inserted++
		return Op{Kind: OpInsert, Key: k}
	case f < m.Update+m.Insert+m.Scan:
		n := 1
		if g.w.MaxScanLen > 1 {
			n += g.rnd.Intn(g.w.MaxScanLen)
		}
		return Op{Kind: OpScan, Key: g.pick(), ScanLen: n}
	case f < m.Update+m.Insert+m.Scan+m.RMW:
		return Op{Kind: OpRMW, Key: g.pick()}
	default:
		return Op{Kind: OpRead, Key: g.pick()}
	}
}

// pick draws a read/update/scan-start key index.
func (g *gen) pick() int {
	if g.latest != nil {
		// Newest key this client knows about, aged by a Zipf draw.
		newest := g.w.KeyRange - 1
		if g.inserted > 0 {
			newest = g.w.KeyRange + g.base + (g.inserted-1)*g.stride
		}
		k := newest - int(g.latest.Uint64())
		if k < 0 {
			k = 0
		}
		return k
	}
	if g.zipf != nil {
		return int(scramble(g.zipf.Uint64()) % uint64(g.w.KeyRange))
	}
	if g.w.KeyRange <= 1 {
		return 0
	}
	return g.rnd.Intn(g.w.KeyRange)
}

// scramble is splitmix64's finalizer: it spreads the dense Zipf ranks
// 0,1,2,... over the whole key space so skew stresses caches and shards
// uniformly (the same mapping internal/bench uses).
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
