// Package service is a simulated front-end tier over a dLSM deployment:
// the piece that turns the engine-as-a-library harness into something
// shaped like production traffic. N client entities per tenant issue a
// configured workload (the YCSB A-F core mixes, or full-table scans) with
// per-op think time, route requests through the sharded DB via ordinary
// per-client sessions, and pass every request through the tenant's
// admission controller — a deterministic GCRA token bucket on the virtual
// clock. Over-quota requests are throttled (ErrThrottled) or queue up to
// an admission deadline, riding the same virtual-clock wait machinery the
// engine's write stalls use. Per-tenant SLOs (p50/p95/p99/p999 latency,
// throughput, throttle counts) are measured from virtual-clock latencies
// into internal/telemetry histograms and returned as Reports.
//
// Everything is deterministic: op streams are pure functions of the seed,
// admission is a pure state machine over virtual time, and the sim
// kernel's cooperative serial dispatch makes the interleaving of client
// entities a function of virtual state alone. Two runs of the same seeded
// scenario produce byte-identical SLO reports.
package service

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Session is the per-client operation surface the tier drives. Backends
// adapt their native sessions (dlsm.Session, the bench harness's
// kvSession) to it; Get returning an error for a missing key is expected
// and not fatal.
type Session interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	// Scan iterates from start (nil = first key) in key order until fn
	// returns false.
	Scan(start []byte, fn func(k, v []byte) bool)
	Close()
}

// DB hands out per-client sessions. Routing over shards is the session's
// business (shard.Session routes per key); the tier only demands
// session-per-client discipline, mirroring one connection per client.
type DB interface {
	NewSession() Session
}

// TenantConfig describes one tenant: its client population, workload,
// pacing and quota.
type TenantConfig struct {
	Name    string
	Clients int
	// Ops is the tenant's total request budget, split evenly across
	// clients (remainder dropped, like the bench harness).
	Ops int
	// ThinkTime is the fixed virtual-time pause before each request
	// (0 = closed loop at full speed).
	ThinkTime time.Duration

	// RatePerSec caps admitted requests per second of virtual time
	// (0 = unlimited: admission is bypassed entirely and adds no
	// virtual-time events, so an unlimited single-tenant run is
	// indistinguishable from driving the engine directly).
	RatePerSec float64
	// Burst is the token-bucket capacity (default 1).
	Burst int
	// AdmissionDeadline is how long an over-quota request may queue for
	// a token before it is throttled. 0 = fail fast: reject any request
	// that cannot be admitted immediately.
	AdmissionDeadline time.Duration

	Workload Workload
}

// Config describes one service-tier run.
type Config struct {
	// Seed derives every client's op stream (client c of the run uses
	// Seed + c*7919, the bench harness's per-thread convention).
	Seed int64
	// Key and Value format a key index into stored bytes.
	Key   func(i int) []byte
	Value func(i int) []byte

	Tenants []TenantConfig
}

// Tier is one front-end service tier bound to a deployment's sim
// environment and a backend DB. Build with New, drive with Run.
type Tier struct {
	env     *sim.Env
	db      DB
	cfg     Config
	reg     *telemetry.Registry
	tenants []*tenant
}

// tenant is the runtime state behind one TenantConfig.
type tenant struct {
	cfg   TenantConfig
	per   int // ops per client
	first int // global index of the tenant's first client

	mu     sync.Mutex // guards bucket; never held across sim blocking
	bucket *Bucket

	issued    *telemetry.Counter
	admitted  *telemetry.Counter
	throttled *telemetry.Counter
	kinds     [numOpKinds]*telemetry.Counter
	scanned   *telemetry.Counter
	latency   *telemetry.Histogram
	admitWait *telemetry.Histogram

	units atomic.Int64 // throughput units (ops, or entries for ScanAll)
	endNS atomic.Int64 // virtual finish time of the slowest client
}

// New builds a tier over db inside env. It spawns nothing; Run does.
func New(env *sim.Env, db DB, cfg Config) *Tier {
	if cfg.Key == nil || cfg.Value == nil {
		panic("service: Config.Key and Config.Value are required")
	}
	t := &Tier{
		env: env,
		db:  db,
		cfg: cfg,
		reg: telemetry.NewRegistry(telemetry.ClockFunc(func() int64 { return int64(env.Now()) })),
	}
	first := 0
	for _, tc := range cfg.Tenants {
		if tc.Clients <= 0 {
			panic(fmt.Sprintf("service: tenant %q needs at least one client", tc.Name))
		}
		tn := &tenant{cfg: tc, per: tc.Ops / tc.Clients, first: first}
		tn.bucket = NewBucket(tc.RatePerSec, tc.Burst)
		p := "svc." + tc.Name + "."
		tn.issued = t.reg.Counter(p + "issued")
		tn.admitted = t.reg.Counter(p + "admitted")
		tn.throttled = t.reg.Counter(p + "throttled")
		for k := OpKind(0); k < numOpKinds; k++ {
			tn.kinds[k] = t.reg.Counter(p + k.String() + "s")
		}
		tn.scanned = t.reg.Counter(p + "scan_entries")
		tn.latency = t.reg.Histogram(p + "latency_ns")
		tn.admitWait = t.reg.Histogram(p + "admit_wait_ns")
		t.tenants = append(t.tenants, tn)
		first += tc.Clients
	}
	return t
}

// Run spawns every tenant's clients, waits for all of them to drain their
// request budgets, and returns one Report per tenant (in Config order).
// Call from inside the deployment's Run (the driver entity).
func (t *Tier) Run() []Report {
	total := 0
	for _, tn := range t.tenants {
		total += tn.cfg.Clients
	}
	start := t.env.Now()
	wg := sim.NewWaitGroup(t.env)
	for _, tn := range t.tenants {
		tn := tn
		for c := 0; c < tn.cfg.Clients; c++ {
			c := c
			wg.Add(1)
			t.env.Go(func() {
				defer wg.Done()
				t.client(tn, c, total)
			})
		}
	}
	wg.Wait()
	reports := make([]Report, len(t.tenants))
	for i, tn := range t.tenants {
		reports[i] = t.report(tn, start)
	}
	return reports
}

// client is one tenant client entity: think, generate, admit, execute,
// observe — per ops, then exit.
func (t *Tier) client(tn *tenant, c, totalClients int) {
	s := t.db.NewSession()
	defer s.Close()
	global := tn.first + c
	rnd := rand.New(rand.NewSource(t.cfg.Seed + int64(global)*7919))
	g := newGen(tn.cfg.Workload, rnd, global, totalClients)
	deadline := tn.cfg.AdmissionDeadline
	for i := 0; i < tn.per; i++ {
		if tn.cfg.ThinkTime > 0 {
			t.env.Sleep(tn.cfg.ThinkTime)
		}
		op := g.next()
		tn.issued.Inc()
		arrive := t.env.Now()
		if tn.bucket != nil {
			tn.mu.Lock()
			wait, ok := tn.bucket.Admit(arrive, deadline)
			tn.mu.Unlock()
			if !ok {
				tn.throttled.Inc()
				continue
			}
			if wait > 0 {
				t.env.Sleep(wait)
			}
			tn.admitWait.Observe(int64(wait))
		}
		units := t.exec(s, tn, op)
		tn.latency.Observe(int64(t.env.Now() - arrive))
		tn.admitted.Inc()
		tn.kinds[op.Kind].Inc()
		tn.units.Add(units)
	}
	// The slowest client's finish time bounds the tenant's window.
	now := int64(t.env.Now())
	for {
		old := tn.endNS.Load()
		if now <= old || tn.endNS.CompareAndSwap(old, now) {
			break
		}
	}
}

// exec performs one admitted op and returns its throughput units (1, or
// entries visited for scans under ScanAll accounting).
func (t *Tier) exec(s Session, tn *tenant, op Op) int64 {
	switch op.Kind {
	case OpRead:
		s.Get(t.cfg.Key(op.Key)) // a miss is an answer, not an error
		return 1
	case OpUpdate, OpInsert:
		if err := s.Put(t.cfg.Key(op.Key), t.cfg.Value(op.Key)); err != nil {
			panic(fmt.Sprintf("service: put: %v", err))
		}
		return 1
	case OpScan:
		n := 0
		s.Scan(t.cfg.Key(op.Key), func(k, v []byte) bool {
			n++
			return n < op.ScanLen
		})
		tn.scanned.Add(int64(n))
		return 1
	case OpRMW:
		k := t.cfg.Key(op.Key)
		s.Get(k)
		if err := s.Put(k, t.cfg.Value(op.Key)); err != nil {
			panic(fmt.Sprintf("service: rmw put: %v", err))
		}
		return 1
	case OpScanAll:
		var n int64
		s.Scan(nil, func(k, v []byte) bool {
			n++
			return true
		})
		tn.scanned.Add(n)
		return n
	}
	panic(fmt.Sprintf("service: unknown op kind %d", op.Kind))
}

// TelemetrySnapshot returns the tier's svc.* metrics (per-tenant latency
// and admission-wait histograms, issue/admit/throttle counters) for
// merging with engine and fabric snapshots.
func (t *Tier) TelemetrySnapshot() telemetry.Snapshot { return t.reg.Snapshot() }
