package service

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"dlsm/internal/sim"
)

// Report is one tenant's SLO summary for a Run: request accounting,
// throughput, and the latency tail from the virtual clock. Reports are
// deterministic for a seeded scenario — byte-identical across runs — so
// they double as regression fixtures.
type Report struct {
	Tenant  string
	Clients int

	// Issued = Admitted + Throttled, always.
	Issued, Admitted, Throttled int64

	// Per-kind admitted counts and total entries visited by scans.
	Reads, Updates, Inserts, Scans, RMWs int64
	ScanEntries                          int64

	// Units is what Throughput counts per second: admitted ops, except
	// under ScanAll accounting where it is entries scanned (readseq).
	Units      int64
	Elapsed    time.Duration // first issue to slowest client's finish
	Throughput float64       // Units per second of virtual time

	// Latency quantiles over admitted requests, measured arrival (after
	// think time) to completion — admission queueing included.
	P50, P95, P99, P999, Max time.Duration
}

// report assembles tn's Report for a run that started at start.
func (t *Tier) report(tn *tenant, start sim.Time) Report {
	h := tn.latency.Snapshot()
	r := Report{
		Tenant:      tn.cfg.Name,
		Clients:     tn.cfg.Clients,
		Issued:      tn.issued.Load(),
		Admitted:    tn.admitted.Load(),
		Throttled:   tn.throttled.Load(),
		Reads:       tn.kinds[OpRead].Load(),
		Updates:     tn.kinds[OpUpdate].Load(),
		Inserts:     tn.kinds[OpInsert].Load(),
		Scans:       tn.kinds[OpScan].Load() + tn.kinds[OpScanAll].Load(),
		RMWs:        tn.kinds[OpRMW].Load(),
		ScanEntries: tn.scanned.Load(),
		Units:       tn.units.Load(),
		Elapsed:     time.Duration(sim.Time(tn.endNS.Load()) - start),
		P50:         time.Duration(h.P50),
		P95:         time.Duration(h.P95),
		P99:         time.Duration(h.P99),
		P999:        time.Duration(h.P999),
		Max:         time.Duration(h.Max),
	}
	if r.Elapsed > 0 {
		r.Throughput = float64(r.Units) / r.Elapsed.Seconds()
	}
	return r
}

// WriteReports renders per-tenant SLO rows as an aligned table.
func WriteReports(w io.Writer, reports []Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tclients\tissued\tadmitted\tthrottled\tthroughput\tp50\tp95\tp99\tp999")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%v\t%v\t%v\t%v\n",
			r.Tenant, r.Clients, r.Issued, r.Admitted, r.Throttled,
			fmtRate(r.Throughput), r.P50, r.P95, r.P99, r.P999)
	}
	tw.Flush()
}

func fmtRate(t float64) string {
	switch {
	case t >= 1e6:
		return fmt.Sprintf("%.2fM/s", t/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.1fK/s", t/1e3)
	default:
		return fmt.Sprintf("%.0f/s", t)
	}
}
