package service

import (
	"errors"

	"dlsm/internal/sim"
)

// ErrThrottled is returned to a client whose request the tenant's token
// bucket rejects: either immediately (AdmissionDeadline 0 and no token
// available) or after the earliest conforming time falls past the
// admission deadline. The request consumes no quota.
var ErrThrottled = errors.New("service: request throttled by tenant quota")

// Bucket is a deterministic token-bucket admission controller in GCRA
// (virtual-scheduling) form: one state word — the theoretical arrival
// time of the next conforming request — updated per admit, no refill
// loop, no wall clock. Rate r requests/second with burst b means any
// window of length W admits at most b + W*r requests.
//
// Bucket is a pure state machine over virtual time: callers serialize
// access (the tenant holds its mutex) and perform the returned wait
// themselves on the sim clock. Identical call sequences produce identical
// decisions, which is what makes seeded service-tier runs reproducible
// and the machine directly fuzzable (FuzzAdmission).
//
// A nil Bucket admits everything with zero wait.
type Bucket struct {
	inc sim.Duration // virtual time per token (1e9/rate ns)
	tau sim.Duration // burst tolerance: (burst-1)*inc
	tat sim.Time     // theoretical arrival time of the next token
}

// NewBucket builds a bucket admitting ratePerSec requests per second of
// virtual time with the given burst capacity (minimum 1: the bucket must
// be able to hold the token it hands out). ratePerSec <= 0 returns nil —
// the unlimited bucket.
func NewBucket(ratePerSec float64, burst int) *Bucket {
	if ratePerSec <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	inc := sim.Duration(1e9 / ratePerSec)
	if inc < 1 {
		inc = 1
	}
	return &Bucket{inc: inc, tau: sim.Duration(burst-1) * inc}
}

// Admit decides one arrival at virtual time now. ok means the request is
// admitted after waiting wait (0 when a token is free immediately); the
// caller sleeps that long before issuing the request. !ok means the
// earliest conforming time lies more than deadline past now: the request
// is throttled and the bucket state is unchanged, so a rejected request
// consumes no quota. Deadline 0 is fail-fast admission: admit only
// requests that need no wait at all.
func (b *Bucket) Admit(now sim.Time, deadline sim.Duration) (wait sim.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	tat := b.tat
	if t := now; tat < t {
		tat = t
	}
	admitAt := tat - sim.Time(b.tau)
	if admitAt < now {
		admitAt = now
	}
	wait = sim.Duration(admitAt - now)
	if wait > deadline {
		return wait, false
	}
	b.tat = tat + sim.Time(b.inc)
	return wait, true
}

// Interval returns the virtual time between tokens (0 for the unlimited
// bucket).
func (b *Bucket) Interval() sim.Duration {
	if b == nil {
		return 0
	}
	return b.inc
}

// TAT exposes the theoretical-arrival-time state word for tests and
// fuzzing: it must never decrease across Admit calls.
func (b *Bucket) TAT() sim.Time {
	if b == nil {
		return 0
	}
	return b.tat
}
