package service

import (
	"math/rand"
	"testing"
)

// drawOps generates n ops from one seeded client stream.
func drawOps(w Workload, seed int64, n int) []Op {
	rnd := rand.New(rand.NewSource(seed))
	g := newGen(w, rnd, 0, 4)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.next()
	}
	return ops
}

func kindFractions(ops []Op) map[OpKind]float64 {
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	out := map[OpKind]float64{}
	for k, c := range counts {
		out[k] = float64(c) / float64(len(ops))
	}
	return out
}

// TestYCSBMixRatios checks every preset hits its stated
// read/update/insert/scan/RMW ratios within 1% over a long stream.
func TestYCSBMixRatios(t *testing.T) {
	const n = 200_000
	const tol = 0.01
	want := map[byte]map[OpKind]float64{
		'A': {OpRead: 0.5, OpUpdate: 0.5},
		'B': {OpRead: 0.95, OpUpdate: 0.05},
		'C': {OpRead: 1.0},
		'D': {OpRead: 0.95, OpInsert: 0.05},
		'E': {OpScan: 0.95, OpInsert: 0.05},
		'F': {OpRead: 0.5, OpRMW: 0.5},
	}
	for letter, mix := range want {
		got := kindFractions(drawOps(YCSB(letter, 10_000), 42, n))
		for k := OpKind(0); k < numOpKinds; k++ {
			w := mix[k]
			g := got[k]
			if g < w-tol || g > w+tol {
				t.Errorf("YCSB-%c %v fraction = %.4f, want %.2f±%.2f", letter, k, g, w, tol)
			}
		}
	}
}

// TestSameSeedIdenticalStream pins the generator's determinism: the op
// stream is a pure function of (workload, seed, client index).
func TestSameSeedIdenticalStream(t *testing.T) {
	for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		w := YCSB(letter, 5_000)
		a := drawOps(w, 7, 10_000)
		b := drawOps(w, 7, 10_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("YCSB-%c op %d diverged: %+v vs %+v", letter, i, a[i], b[i])
			}
		}
		c := drawOps(w, 8, 10_000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("YCSB-%c: different seeds produced identical streams", letter)
		}
	}
}

// TestZipfSkewAndScramble: the zipf-scrambled key choice must be heavily
// skewed (a hot head) yet spread across the key space rather than
// clustered at low indexes.
func TestZipfSkewAndScramble(t *testing.T) {
	const keys = 10_000
	ops := drawOps(YCSB('C', keys), 1, 200_000)
	counts := map[int]int{}
	for _, op := range ops {
		counts[op.Key]++
	}
	hottest, hotKey := 0, 0
	for k, c := range counts {
		if c > hottest {
			hottest, hotKey = c, k
		}
	}
	// Uniform would give ~20 hits per key; the zipf head must dwarf that.
	if hottest < 100*len(ops)/keys {
		t.Errorf("hottest key drew %d of %d — not zipf-skewed", hottest, len(ops))
	}
	// The scramble must spread hot ranks over the space: the hottest key
	// landing in the lowest 1% of the key space would suggest unscrambled
	// dense ranks (rank 0 maps to key 0).
	t.Logf("hottest key %d drew %d/%d", hotKey, hottest, len(ops))
	quarters := [4]int{}
	for k := range counts {
		quarters[k*4/keys]++
	}
	for q, n := range quarters {
		if n == 0 {
			t.Errorf("key-space quarter %d never drawn — scramble not spreading", q)
		}
	}
}

// TestInsertKeysDisjointAcrossClients: concurrent clients must never
// allocate the same insert key.
func TestInsertKeysDisjointAcrossClients(t *testing.T) {
	const clients = 4
	w := YCSB('D', 1_000)
	seen := map[int]int{}
	for c := 0; c < clients; c++ {
		rnd := rand.New(rand.NewSource(int64(c)))
		g := newGen(w, rnd, c, clients)
		for i := 0; i < 5_000; i++ {
			op := g.next()
			if op.Kind != OpInsert {
				continue
			}
			if op.Key < w.KeyRange {
				t.Fatalf("client %d inserted into the preloaded range: %d", c, op.Key)
			}
			if prev, dup := seen[op.Key]; dup {
				t.Fatalf("clients %d and %d both inserted key %d", prev, c, op.Key)
			}
			seen[op.Key] = c
		}
	}
}

// TestLatestDistributionTargetsRecentInserts: YCSB-D reads must
// concentrate near the newest inserted keys.
func TestLatestDistributionTargetsRecentInserts(t *testing.T) {
	w := YCSB('D', 10_000)
	rnd := rand.New(rand.NewSource(3))
	g := newGen(w, rnd, 0, 1)
	recent := 0
	reads := 0
	var newest int
	for i := 0; i < 100_000; i++ {
		op := g.next()
		switch op.Kind {
		case OpInsert:
			newest = op.Key
		case OpRead:
			reads++
			// "Recent" = within 100 keys of the newest write this client
			// knows about (or of the initial load frontier).
			frontier := newest
			if frontier == 0 {
				frontier = w.KeyRange - 1
			}
			if op.Key > frontier-100 && op.Key <= frontier {
				recent++
			}
		}
	}
	if frac := float64(recent) / float64(reads); frac < 0.5 {
		t.Errorf("only %.1f%% of YCSB-D reads hit the 100 newest keys — latest bias missing", frac*100)
	}
}

// TestScanLengthsBounded: YCSB-E scan budgets stay in [1, MaxScanLen].
func TestScanLengthsBounded(t *testing.T) {
	w := YCSB('E', 1_000)
	for _, op := range drawOps(w, 11, 50_000) {
		if op.Kind != OpScan {
			continue
		}
		if op.ScanLen < 1 || op.ScanLen > w.MaxScanLen {
			t.Fatalf("scan length %d outside [1,%d]", op.ScanLen, w.MaxScanLen)
		}
	}
}
