package service

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dlsm/internal/sim"
)

// fakeDB is a deterministic in-sim backend: every op costs a fixed slice
// of virtual time and bumps a counter, nothing more. It stands in for the
// engine so the model test isolates the service tier's own bookkeeping.
type fakeDB struct {
	env    *sim.Env
	opCost sim.Duration

	gets, puts, scans atomic.Int64
}

func (d *fakeDB) NewSession() Session { return &fakeSession{d: d} }

type fakeSession struct{ d *fakeDB }

func (s *fakeSession) Put(k, v []byte) error {
	s.d.puts.Add(1)
	s.d.env.Sleep(s.d.opCost)
	return nil
}

func (s *fakeSession) Get(k []byte) ([]byte, error) {
	s.d.gets.Add(1)
	s.d.env.Sleep(s.d.opCost)
	return nil, nil
}

func (s *fakeSession) Scan(start []byte, fn func(k, v []byte) bool) {
	s.d.scans.Add(1)
	s.d.env.Sleep(s.d.opCost)
	// Serve a tiny synthetic range so scan callbacks and ScanEntries
	// accounting are exercised.
	for i := 0; i < 3; i++ {
		if !fn([]byte{byte(i)}, nil) {
			return
		}
	}
}

func (s *fakeSession) Close() {}

func testKey(i int) []byte   { return []byte(fmt.Sprintf("%016d", i)) }
func testValue(i int) []byte { return []byte(fmt.Sprintf("v%014d", i)) }

// runScenario executes one seeded scenario on a fresh sim kernel and
// returns the reports plus the backend's op counters.
func runScenario(t *testing.T, seed int64, tenants []TenantConfig) ([]Report, *fakeDB) {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	db := &fakeDB{env: env, opCost: 20 * time.Microsecond}
	var reports []Report
	env.Run(func() {
		tier := New(env, db, Config{Seed: seed, Key: testKey, Value: testValue, Tenants: tenants})
		reports = tier.Run()
	})
	env.Wait()
	return reports, db
}

// randomTenants builds a randomized multi-tenant scenario: mixed
// workloads, random client counts, think times, quotas and deadlines —
// including unlimited tenants (RatePerSec 0).
func randomTenants(rnd *rand.Rand) []TenantConfig {
	n := 2 + rnd.Intn(3)
	letters := []byte{'A', 'B', 'C', 'D', 'E', 'F'}
	tenants := make([]TenantConfig, n)
	for i := range tenants {
		tc := TenantConfig{
			Name:     fmt.Sprintf("t%d", i),
			Clients:  1 + rnd.Intn(4),
			Ops:      200 + rnd.Intn(400),
			Workload: YCSB(letters[rnd.Intn(len(letters))], 2_000),
		}
		if rnd.Intn(2) == 0 {
			tc.ThinkTime = time.Duration(rnd.Intn(200)) * time.Microsecond
		}
		if rnd.Intn(3) > 0 { // 2/3 of tenants are rate-limited
			tc.RatePerSec = float64(1_000 + rnd.Intn(50_000))
			tc.Burst = 1 + rnd.Intn(16)
			if rnd.Intn(2) == 0 {
				tc.AdmissionDeadline = time.Duration(rnd.Intn(500)) * time.Microsecond
			}
		}
		tenants[i] = tc
	}
	return tenants
}

// TestServiceModelInvariants runs randomized seeded scenarios against the
// flat reference model and checks the tier's conservation laws:
//
//   - every tenant issues exactly its configured budget (per-client split),
//   - issued == admitted + throttled,
//   - per-kind admitted counts sum back to admitted,
//   - no tenant is admitted above quota: admitted <= burst + window*rate,
//   - backend ops match admitted op kinds exactly (conservation
//     end-to-end: nothing lost, nothing duplicated, throttled requests
//     never reach the backend).
func TestServiceModelInvariants(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(1000 + trial)))
			tenants := randomTenants(rnd)
			reports, db := runScenario(t, int64(42+trial), tenants)

			var wantGets, wantPuts, wantScans int64
			for i, r := range reports {
				tc := tenants[i]
				wantIssued := int64(tc.Ops/tc.Clients) * int64(tc.Clients)
				if r.Issued != wantIssued {
					t.Errorf("%s: issued %d, want %d", r.Tenant, r.Issued, wantIssued)
				}
				if r.Issued != r.Admitted+r.Throttled {
					t.Errorf("%s: issued %d != admitted %d + throttled %d",
						r.Tenant, r.Issued, r.Admitted, r.Throttled)
				}
				if sum := r.Reads + r.Updates + r.Inserts + r.Scans + r.RMWs; sum != r.Admitted {
					t.Errorf("%s: op kinds sum %d != admitted %d", r.Tenant, sum, r.Admitted)
				}
				if tc.RatePerSec > 0 {
					burst := tc.Burst
					if burst < 1 {
						burst = 1
					}
					// Admissions are scheduled inside [start, end]; the GCRA
					// guarantees at most burst + window*rate admits in any
					// window (+1 for the fencepost).
					limit := int64(burst) + int64(r.Elapsed.Seconds()*tc.RatePerSec) + 1
					if r.Admitted > limit {
						t.Errorf("%s: admitted %d over quota limit %d (rate %.0f burst %d window %v)",
							r.Tenant, r.Admitted, limit, tc.RatePerSec, burst, r.Elapsed)
					}
				} else if r.Throttled != 0 {
					t.Errorf("%s: unlimited tenant throttled %d requests", r.Tenant, r.Throttled)
				}
				// Flat reference model of backend traffic per admitted kind.
				wantGets += r.Reads + r.RMWs
				wantPuts += r.Updates + r.Inserts + r.RMWs
				wantScans += r.Scans
			}
			if got := db.gets.Load(); got != wantGets {
				t.Errorf("backend gets %d, model wants %d", got, wantGets)
			}
			if got := db.puts.Load(); got != wantPuts {
				t.Errorf("backend puts %d, model wants %d", got, wantPuts)
			}
			if got := db.scans.Load(); got != wantScans {
				t.Errorf("backend scans %d, model wants %d", got, wantScans)
			}
		})
	}
}

// TestThrottledRequestsNeverReachBackend pins the fail-fast path: a
// 1-token, tiny-rate bucket with no deadline admits almost nothing, and
// the backend sees exactly the admitted count.
func TestThrottledRequestsNeverReachBackend(t *testing.T) {
	tenants := []TenantConfig{{
		Name:       "strangled",
		Clients:    4,
		Ops:        400,
		RatePerSec: 1, // one token per virtual second
		Burst:      1,
		Workload:   YCSB('C', 1_000),
	}}
	reports, db := runScenario(t, 9, tenants)
	r := reports[0]
	if r.Throttled == 0 {
		t.Fatal("expected heavy throttling")
	}
	if got := db.gets.Load(); got != r.Admitted {
		t.Fatalf("backend saw %d gets, admitted %d — throttled requests leaked", got, r.Admitted)
	}
	if r.Admitted+r.Throttled != r.Issued {
		t.Fatalf("conservation broken: %d + %d != %d", r.Admitted, r.Throttled, r.Issued)
	}
}

// TestServiceDeterministic is the regression gate for satellite 3: two
// runs of the same seeded multi-tenant scenario must produce
// byte-identical SLO reports.
func TestServiceDeterministic(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	tenants := randomTenants(rnd)
	render := func() string {
		reports, _ := runScenario(t, 123, tenants)
		var buf bytes.Buffer
		WriteReports(&buf, reports)
		for _, r := range reports {
			fmt.Fprintf(&buf, "%+v\n", r)
		}
		return buf.String()
	}
	a := render()
	b := render()
	if a != b {
		t.Fatalf("seeded scenario not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
