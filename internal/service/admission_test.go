package service

import (
	"encoding/binary"
	"testing"
	"time"

	"dlsm/internal/sim"
)

func TestNilBucketAdmitsEverything(t *testing.T) {
	var b *Bucket
	for i := 0; i < 10; i++ {
		wait, ok := b.Admit(sim.Time(i), 0)
		if !ok || wait != 0 {
			t.Fatalf("nil bucket: wait=%v ok=%v", wait, ok)
		}
	}
	if NewBucket(0, 5) != nil {
		t.Fatal("rate 0 must build the unlimited (nil) bucket")
	}
}

func TestBucketBurstThenSteadyRate(t *testing.T) {
	// 1000/s, burst 4: four tokens at t=0, then one per millisecond.
	b := NewBucket(1000, 4)
	for i := 0; i < 4; i++ {
		wait, ok := b.Admit(0, 0)
		if !ok || wait != 0 {
			t.Fatalf("burst token %d: wait=%v ok=%v", i, wait, ok)
		}
	}
	// Fifth request at t=0 fail-fast: rejected, needing 1ms.
	wait, ok := b.Admit(0, 0)
	if ok {
		t.Fatal("fifth immediate request must be throttled at deadline 0")
	}
	if wait != time.Millisecond {
		t.Fatalf("fifth request wait = %v, want 1ms", wait)
	}
	// Same request with a deadline queues for exactly that wait.
	wait, ok = b.Admit(0, 2*time.Millisecond)
	if !ok || wait != time.Millisecond {
		t.Fatalf("queued request: wait=%v ok=%v, want 1ms true", wait, ok)
	}
	// After a long idle gap the burst is available again.
	at := sim.Time(time.Second)
	for i := 0; i < 4; i++ {
		wait, ok := b.Admit(at, 0)
		if !ok || wait != 0 {
			t.Fatalf("post-idle burst token %d: wait=%v ok=%v", i, wait, ok)
		}
	}
}

func TestBucketThrottleLeavesStateUnchanged(t *testing.T) {
	b := NewBucket(100, 1)
	b.Admit(0, 0)
	tat := b.TAT()
	for i := 0; i < 5; i++ {
		if _, ok := b.Admit(0, 0); ok {
			t.Fatal("over-quota request admitted")
		}
		if b.TAT() != tat {
			t.Fatal("throttled request mutated bucket state")
		}
	}
	// The token that was not consumed by the rejected requests is still
	// there at its scheduled time.
	wait, ok := b.Admit(sim.Time(b.Interval()), 0)
	if !ok || wait != 0 {
		t.Fatalf("token after interval: wait=%v ok=%v", wait, ok)
	}
}

func TestBucketRateBoundOverWindow(t *testing.T) {
	// Greedy arrivals with a queueing deadline: admitted count over the
	// window must respect burst + window*rate.
	const rate, burst = 500.0, 10
	b := NewBucket(rate, burst)
	var now sim.Time
	admitted := 0
	horizon := sim.Time(200 * time.Millisecond)
	for now < horizon {
		wait, ok := b.Admit(now, time.Hour)
		if !ok {
			t.Fatal("unbounded deadline must always admit")
		}
		now += sim.Time(wait) // model the client sleeping out its wait
		admitted++
	}
	limit := burst + int(float64(horizon)/1e9*rate) + 1
	if admitted > limit {
		t.Fatalf("admitted %d over %v, limit %d", admitted, time.Duration(horizon), limit)
	}
	if admitted < limit-2 {
		t.Fatalf("admitted %d, expected to saturate near %d", admitted, limit)
	}
}

// FuzzAdmission drives the GCRA state machine with arbitrary arrival
// gaps, deadlines, rates and bursts, checking the invariants the service
// tier's conservation and quota guarantees rest on.
func FuzzAdmission(f *testing.F) {
	f.Add(uint16(1000), uint8(4), []byte{0, 0, 1, 0, 10, 1, 0, 0, 255, 255})
	f.Add(uint16(1), uint8(1), []byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Add(uint16(60000), uint8(255), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, rate uint16, burst uint8, steps []byte) {
		if rate == 0 {
			rate = 1
		}
		b := NewBucket(float64(rate), int(burst))
		replay := NewBucket(float64(rate), int(burst))
		var now, lastAdmit sim.Time
		admitted := 0
		for i := 0; i+3 < len(steps); i += 4 {
			now += sim.Time(binary.LittleEndian.Uint16(steps[i:])) * sim.Time(time.Microsecond)
			deadline := sim.Duration(binary.LittleEndian.Uint16(steps[i+2:])) * time.Microsecond
			prevTAT := b.TAT()
			wait, ok := b.Admit(now, deadline)
			if wait < 0 {
				t.Fatalf("negative wait %v", wait)
			}
			if ok {
				admitted++
				if at := now + sim.Time(wait); at > lastAdmit {
					lastAdmit = at
				}
				if wait > deadline {
					t.Fatalf("admitted with wait %v > deadline %v", wait, deadline)
				}
				if b.TAT() < prevTAT {
					t.Fatalf("TAT went backwards: %v -> %v", prevTAT, b.TAT())
				}
			} else {
				if wait <= deadline {
					t.Fatalf("throttled with wait %v <= deadline %v", wait, deadline)
				}
				if b.TAT() != prevTAT {
					t.Fatal("throttle mutated state")
				}
			}
			// Replaying the identical sequence gives identical decisions.
			rwait, rok := replay.Admit(now, deadline)
			if rwait != wait || rok != ok {
				t.Fatalf("replay diverged: (%v,%v) vs (%v,%v)", wait, ok, rwait, rok)
			}
		}
		// Quota: counting each admission at its scheduled admit time
		// (arrival + queue wait), admissions cannot exceed burst +
		// window*rate — each admit advances TAT by one interval, and TAT
		// trails the admit time by at most tau + inc.
		bound := int(burst) + 1 + int(float64(lastAdmit)/1e9*float64(rate)) + 1
		if admitted > bound {
			t.Fatalf("admitted %d > quota bound %d (window=%v rate=%d burst=%d)",
				admitted, bound, time.Duration(lastAdmit), rate, burst)
		}
	})
}
