// Package sherman reimplements the Sherman baseline (§XI-A #5): a
// write-optimized B+-tree over disaggregated memory [Wang et al., SIGMOD
// 2022] as configured in the dLSM paper's evaluation — 1 KB tree nodes,
// internal nodes cached in compute-node local memory, leaves resident in
// remote memory.
//
// The measured data path matches the paper's description:
//
//   - A read routes through the cached internal nodes (local CPU) and
//     issues exactly one RDMA read for the leaf.
//   - A write locks the leaf with an RDMA CAS, reads the leaf (RDMA read),
//     modifies it locally, and writes it back; the write-back image carries
//     the cleared lock word, modeling Sherman's combined write+unlock
//     doorbell. Every write therefore moves >= 2 x 1 KB over the wire —
//     the per-write network cost dLSM's MemTable buffering avoids.
//   - A range scan walks the leaf chain, one 1 KB read per leaf (vs dLSM's
//     multi-MB prefetch, Fig 11).
//
// Simplifications (documented in DESIGN.md §4): the internal-node tree is
// an authoritative compute-local structure (a sorted separator array with
// binary search) rather than being mirrored to remote memory — with a
// single compute node its remote copy would never be read; and Sherman's
// hierarchical on-chip lock is approximated by the straight RDMA CAS with
// bounded backoff.
package sherman

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/remote"
	"dlsm/internal/sim"
)

// NodeSize is Sherman's block size (the paper follows the source default).
const NodeSize = 1 << 10

// Leaf layout: [lock u64][version u32][count u16][next u64][entries...]
// where each entry is [klen u8][vlen u16][key][value], sorted by key.
const leafHdr = 8 + 4 + 2 + 8

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("sherman: key not found")

// Options tunes the tree.
type Options struct {
	Costs       sim.CostModel
	LockBackoff time.Duration // wait between CAS retries
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{Costs: sim.DefaultCosts(), LockBackoff: 2 * time.Microsecond}
}

// Stats counts Sherman's remote operations.
type Stats struct {
	mu         sync.Mutex
	Reads      int64
	Writes     int64
	Splits     int64
	LockRetry  int64
	LeafReads  int64
	LeafWrites int64
}

// Tree is a Sherman B+-tree: cached internals on the compute node, leaves
// in remote memory.
type Tree struct {
	env   *sim.Env
	cn    *rdma.Node
	mn    *rdma.Node
	mr    *rdma.MemoryRegion
	alloc *remote.Allocator
	opts  Options

	// Cached internal structure: leaf i owns user keys in
	// [seps[i], seps[i+1]) with seps[0] = "" and an implied +inf end.
	mu    sync.RWMutex
	seps  [][]byte
	leafs []int64 // remote offsets

	stats Stats
}

// New creates a tree whose leaves live in the memory node's data region.
func New(cn *rdma.Node, srv *memnode.Server, opts Options) *Tree {
	t := &Tree{
		env:   cn.Fabric().Env(),
		cn:    cn,
		mn:    srv.Node(),
		mr:    srv.DataMR(),
		alloc: srv.ComputeAlloc(),
		opts:  opts,
	}
	// Root leaf covering the whole key space.
	off, err := t.alloc.Alloc(NodeSize)
	if err != nil {
		panic(err)
	}
	t.seps = [][]byte{{}}
	t.leafs = []int64{off}
	return t
}

// Stats returns the operation counters.
func (t *Tree) Stats() *Stats { return &t.stats }

// SpaceUsed returns remote bytes held by leaves.
func (t *Tree) SpaceUsed() int64 { return t.alloc.Used() }

// NumLeaves returns the current leaf count.
func (t *Tree) NumLeaves() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.leafs)
}

// routeLocked returns the position of the leaf owning key.
func route(seps [][]byte, key []byte) int {
	// First separator > key, minus one.
	i := sort.Search(len(seps), func(i int) bool { return bytes.Compare(seps[i], key) > 0 })
	return i - 1
}

// lookup returns the remote offset of the leaf owning key.
func (t *Tree) lookup(key []byte) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leafs[route(t.seps, key)]
}

// Session is one thread's handle: its own QP and leaf buffers (§X-B).
type Session struct {
	t    *Tree
	qp   *rdma.QP
	buf  *rdma.MemoryRegion // leaf image
	word *rdma.MemoryRegion // 8-byte scratch for CAS
}

// NewSession creates a thread-local handle.
func (t *Tree) NewSession() *Session {
	return &Session{
		t:    t,
		qp:   t.cn.NewQP(t.mn),
		buf:  t.cn.Register(NodeSize),
		word: t.cn.Register(8),
	}
}

// Close releases the session's QP.
func (s *Session) Close() { s.qp.Close() }

func (s *Session) charge(d time.Duration) { s.t.cn.CPU.Use(d) }

// readLeaf fetches the 1KB leaf at off into the session buffer.
func (s *Session) readLeaf(off int64) (*leaf, error) {
	s.t.stats.mu.Lock()
	s.t.stats.LeafReads++
	s.t.stats.mu.Unlock()
	if err := s.qp.ReadSync(s.buf, 0, s.t.mr.Addr(int(off)), NodeSize); err != nil {
		return nil, err
	}
	return parseLeaf(s.buf.Bytes(0, NodeSize))
}

// writeLeaf writes a leaf image (with its lock word already cleared) back.
func (s *Session) writeLeaf(off int64, l *leaf) error {
	s.t.stats.mu.Lock()
	s.t.stats.LeafWrites++
	s.t.stats.mu.Unlock()
	l.encode(s.buf.Bytes(0, NodeSize))
	return s.qp.WriteSync(s.buf, 0, s.t.mr.Addr(int(off)), NodeSize)
}

// lockLeaf acquires the leaf's remote lock word via RDMA CAS, retrying with
// backoff.
func (s *Session) lockLeaf(off int64) error {
	for {
		_, swapped, err := s.qp.CompareSwapSync(s.t.mr.Addr(int(off)), 0, 1)
		if err != nil {
			return err
		}
		if swapped {
			return nil
		}
		s.t.stats.mu.Lock()
		s.t.stats.LockRetry++
		s.t.stats.mu.Unlock()
		s.t.env.Sleep(s.t.opts.LockBackoff)
	}
}

// unlockLeaf explicitly clears the lock word (only needed when the write
// path aborts without a write-back).
func (s *Session) unlockLeaf(off int64) error {
	binary.LittleEndian.PutUint64(s.word.Bytes(0, 8), 0)
	return s.qp.WriteSync(s.word, 0, s.t.mr.Addr(int(off)), 8)
}

// Get reads the value of key with a single leaf RDMA read.
func (s *Session) Get(key []byte) ([]byte, error) {
	t := s.t
	t.stats.mu.Lock()
	t.stats.Reads++
	t.stats.mu.Unlock()
	s.charge(t.opts.Costs.IndexSearch) // cached internal-node traversal
	for {
		off := t.lookup(key)
		l, err := s.readLeaf(off)
		if err != nil {
			return nil, err
		}
		if l.locked() {
			// A writer is mid-update; retry after its write-back.
			t.env.Sleep(t.opts.LockBackoff)
			continue
		}
		s.charge(t.opts.Costs.MemProbe)
		if v, ok := l.get(key); ok {
			return append([]byte(nil), v...), nil
		}
		// The leaf may have split since routing; re-check.
		if t.lookup(key) != off {
			continue
		}
		return nil, ErrNotFound
	}
}

// Put inserts or overwrites key.
func (s *Session) Put(key, value []byte) error {
	if len(key) > 255 || len(value) > 65535 {
		return fmt.Errorf("sherman: key/value too large")
	}
	if leafHdr+6+len(key)+len(value) > NodeSize {
		return fmt.Errorf("sherman: entry exceeds node size")
	}
	t := s.t
	t.stats.mu.Lock()
	t.stats.Writes++
	t.stats.mu.Unlock()
	s.charge(t.opts.Costs.IndexSearch)

	for {
		off := t.lookup(key)
		if err := s.lockLeaf(off); err != nil {
			return err
		}
		l, err := s.readLeaf(off)
		if err != nil {
			return err
		}
		// Re-route under the lock: a concurrent split may have moved the
		// key's range to a new leaf.
		if t.lookup(key) != off {
			if err := s.unlockLeaf(off); err != nil {
				return err
			}
			continue
		}
		s.charge(t.opts.Costs.MemProbe)
		if l.put(key, value) {
			l.lock = 0 // combined write-back + unlock
			l.version++
			return s.writeLeaf(off, l)
		}
		// Leaf full: split while holding the lock.
		if err := s.split(off, l, key, value); err != nil {
			return err
		}
		return nil
	}
}

// Delete removes key (no underflow merging, as is common).
func (s *Session) Delete(key []byte) error {
	t := s.t
	for {
		off := t.lookup(key)
		if err := s.lockLeaf(off); err != nil {
			return err
		}
		l, err := s.readLeaf(off)
		if err != nil {
			return err
		}
		if t.lookup(key) != off {
			if err := s.unlockLeaf(off); err != nil {
				return err
			}
			continue
		}
		l.delete(key)
		l.lock = 0
		l.version++
		return s.writeLeaf(off, l)
	}
}

// split divides the locked, full leaf at off and retries the insert into
// the correct half. Sequence: write the new (right) leaf, publish the new
// separator in the cached internals, then write back the old leaf with its
// lock cleared.
func (s *Session) split(off int64, l *leaf, key, value []byte) error {
	t := s.t
	t.stats.mu.Lock()
	t.stats.Splits++
	t.stats.mu.Unlock()

	newOff, err := t.alloc.Alloc(NodeSize)
	if err != nil {
		return err
	}
	right := l.splitRight()
	right.next = l.next
	l.next = uint64(newOff)
	sep := right.entries[0].key

	// The new leaf is invisible until the separator publishes, so it can
	// be written unlocked.
	if err := s.writeLeaf(newOff, right); err != nil {
		return err
	}

	t.mu.Lock()
	i := route(t.seps, sep)
	t.seps = append(t.seps, nil)
	copy(t.seps[i+2:], t.seps[i+1:])
	t.seps[i+1] = append([]byte(nil), sep...)
	t.leafs = append(t.leafs, 0)
	copy(t.leafs[i+2:], t.leafs[i+1:])
	t.leafs[i+1] = newOff
	t.mu.Unlock()

	// Insert into whichever half owns the key, then write back the old
	// leaf (unlocking it). If the key went right, the right leaf must be
	// rewritten too — it is still only reachable after this point.
	target := l
	if bytes.Compare(key, sep) >= 0 {
		target = right
	}
	if !target.put(key, value) {
		return fmt.Errorf("sherman: entry does not fit after split")
	}
	if target == right {
		if err := s.writeLeaf(newOff, right); err != nil {
			return err
		}
	}
	l.lock = 0
	l.version++
	return s.writeLeaf(off, l)
}

// Scan iterates the leaf chain from the first key >= start, calling fn for
// each entry until fn returns false or the keys end. One 1KB RDMA read per
// leaf (Fig 11's comparison point).
func (s *Session) Scan(start []byte, fn func(key, value []byte) bool) error {
	t := s.t
	t.mu.RLock()
	i := route(t.seps, start)
	off := t.leafs[i]
	t.mu.RUnlock()

	for {
		l, err := s.readLeaf(off)
		if err != nil {
			return err
		}
		if l.locked() {
			t.env.Sleep(t.opts.LockBackoff)
			continue
		}
		s.charge(time.Duration(len(l.entries)) * t.opts.Costs.EntryParse)
		for _, e := range l.entries {
			if bytes.Compare(e.key, start) < 0 {
				continue
			}
			if !fn(e.key, e.val) {
				return nil
			}
		}
		if l.next == 0 {
			return nil
		}
		off = int64(l.next)
	}
}
