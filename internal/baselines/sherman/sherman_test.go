package sherman

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func harness(t *testing.T, fn func(env *sim.Env, tree *Tree)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 24)
	mn := fab.AddNode("memory", 12)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 256 << 20
	cfg.SelfRegionSize = 1 << 20
	srv := memnode.NewServer(mn, cfg)
	srv.Start()
	env.Run(func() {
		tree := New(cn, srv, DefaultOptions())
		fn(env, tree)
		fab.Close()
	})
	env.Wait()
}

func TestPutGet(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		if err := s.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		v, err := s.Get([]byte("k"))
		if err != nil || string(v) != "v" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if _, err := s.Get([]byte("missing")); err != ErrNotFound {
			t.Fatalf("Get(missing) = %v", err)
		}
	})
}

func TestOverwrite(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		s.Put([]byte("k"), []byte("v1"))
		s.Put([]byte("k"), []byte("v2"))
		if v, _ := s.Get([]byte("k")); string(v) != "v2" {
			t.Fatalf("Get = %q", v)
		}
	})
}

func TestManyInsertsForceSplits(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		const n = 2000
		val := make([]byte, 100)
		perm := rand.New(rand.NewSource(3)).Perm(n)
		for _, i := range perm {
			if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if tree.NumLeaves() < 10 {
			t.Fatalf("only %d leaves after %d inserts", tree.NumLeaves(), n)
		}
		for i := 0; i < n; i += 7 {
			if _, err := s.Get([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
				t.Fatalf("Get(%d): %v", i, err)
			}
		}
	})
}

func TestLargeValuesLikePaper(t *testing.T) {
	// 420-byte entries in 1KB leaves: ~2 entries per leaf, splits constant.
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		val := make([]byte, 400)
		for i := 0; i < 300; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if got := tree.Stats().Splits; got < 100 {
			t.Fatalf("splits = %d, want many with 400B values", got)
		}
		for i := 0; i < 300; i++ {
			v, err := s.Get([]byte(fmt.Sprintf("key-%012d", i)))
			if err != nil || len(v) != 400 {
				t.Fatalf("Get(%d) len=%d err=%v", i, len(v), err)
			}
		}
	})
}

func TestDelete(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		s.Put([]byte("a"), []byte("1"))
		s.Put([]byte("b"), []byte("2"))
		s.Delete([]byte("a"))
		if _, err := s.Get([]byte("a")); err != ErrNotFound {
			t.Fatalf("deleted key: %v", err)
		}
		if v, _ := s.Get([]byte("b")); string(v) != "2" {
			t.Fatal("unrelated key lost")
		}
	})
}

func TestScanOrderedComplete(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		const n = 1000
		perm := rand.New(rand.NewSource(5)).Perm(n)
		for _, i := range perm {
			s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
		count := 0
		var last []byte
		s.Scan(nil, func(k, v []byte) bool {
			if last != nil && string(k) <= string(last) {
				t.Fatalf("scan out of order: %q after %q", k, last)
			}
			last = append(last[:0], k...)
			count++
			return true
		})
		if count != n {
			t.Fatalf("scanned %d, want %d", count, n)
		}
	})
}

func TestScanFromMiddle(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		for i := 0; i < 100; i++ {
			s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v"))
		}
		count := 0
		s.Scan([]byte("key-000050"), func(k, v []byte) bool {
			count++
			return true
		})
		if count != 50 {
			t.Fatalf("scan from middle saw %d, want 50", count)
		}
	})
}

func TestConcurrentWriters(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		wg := sim.NewWaitGroup(env)
		const writers, per = 8, 200
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := tree.NewSession()
				defer s.Close()
				for i := 0; i < per; i++ {
					k := []byte(fmt.Sprintf("w%02d-%05d", w, i))
					if err := s.Put(k, k); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			})
		}
		wg.Wait()
		s := tree.NewSession()
		defer s.Close()
		for w := 0; w < writers; w++ {
			for i := 0; i < per; i += 11 {
				k := []byte(fmt.Sprintf("w%02d-%05d", w, i))
				v, err := s.Get(k)
				if err != nil || string(v) != string(k) {
					t.Fatalf("Get(%s) = %q, %v", k, v, err)
				}
			}
		}
	})
}

func TestReadIsSingleRDMARead(t *testing.T) {
	harness(t, func(env *sim.Env, tree *Tree) {
		s := tree.NewSession()
		defer s.Close()
		for i := 0; i < 50; i++ {
			s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v"))
		}
		before := tree.Stats().LeafReads
		for i := 0; i < 50; i++ {
			s.Get([]byte(fmt.Sprintf("key-%06d", i)))
		}
		reads := tree.Stats().LeafReads - before
		if reads != 50 {
			t.Fatalf("50 Gets issued %d leaf reads, want exactly 50", reads)
		}
	})
}

func TestLeafEncodeParseRoundTrip(t *testing.T) {
	l := &leaf{version: 7, next: 12345}
	l.put([]byte("alpha"), []byte("1"))
	l.put([]byte("beta"), []byte("2"))
	buf := make([]byte, NodeSize)
	l.encode(buf)
	got, err := parseLeaf(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.version != 7 || got.next != 12345 || len(got.entries) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if v, ok := got.get([]byte("beta")); !ok || string(v) != "2" {
		t.Fatal("entry lost in round trip")
	}
}
