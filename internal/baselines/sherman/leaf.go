package sherman

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// leaf is the decoded in-compute-node image of one remote 1KB leaf.
type leaf struct {
	lock    uint64
	version uint32
	next    uint64 // remote offset of the right sibling, 0 = none
	entries []entry
}

type entry struct {
	key, val []byte
}

func (l *leaf) locked() bool { return l.lock != 0 }

// bytesUsed returns the encoded size.
func (l *leaf) bytesUsed() int {
	n := leafHdr
	for _, e := range l.entries {
		n += 3 + len(e.key) + len(e.val)
	}
	return n
}

// get returns the value for key.
func (l *leaf) get(key []byte) ([]byte, bool) {
	i := sort.Search(len(l.entries), func(i int) bool {
		return bytes.Compare(l.entries[i].key, key) >= 0
	})
	if i < len(l.entries) && bytes.Equal(l.entries[i].key, key) {
		return l.entries[i].val, true
	}
	return nil, false
}

// put inserts or replaces key, reporting false when the leaf would
// overflow NodeSize.
func (l *leaf) put(key, val []byte) bool {
	i := sort.Search(len(l.entries), func(i int) bool {
		return bytes.Compare(l.entries[i].key, key) >= 0
	})
	if i < len(l.entries) && bytes.Equal(l.entries[i].key, key) {
		if l.bytesUsed()-len(l.entries[i].val)+len(val) > NodeSize {
			return false
		}
		l.entries[i].val = append([]byte(nil), val...)
		return true
	}
	if l.bytesUsed()+3+len(key)+len(val) > NodeSize {
		return false
	}
	l.entries = append(l.entries, entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = entry{append([]byte(nil), key...), append([]byte(nil), val...)}
	return true
}

// delete removes key if present.
func (l *leaf) delete(key []byte) {
	i := sort.Search(len(l.entries), func(i int) bool {
		return bytes.Compare(l.entries[i].key, key) >= 0
	})
	if i < len(l.entries) && bytes.Equal(l.entries[i].key, key) {
		l.entries = append(l.entries[:i], l.entries[i+1:]...)
	}
}

// splitRight moves the upper half of the entries into a fresh leaf.
func (l *leaf) splitRight() *leaf {
	mid := len(l.entries) / 2
	if mid == 0 {
		mid = 1 // a 1-entry leaf that overflows still splits its successor space
	}
	r := &leaf{entries: append([]entry(nil), l.entries[mid:]...)}
	l.entries = l.entries[:mid]
	return r
}

// encode serializes the leaf into a NodeSize buffer.
func (l *leaf) encode(b []byte) {
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[0:], l.lock)
	binary.LittleEndian.PutUint32(b[8:], l.version)
	binary.LittleEndian.PutUint16(b[12:], uint16(len(l.entries)))
	binary.LittleEndian.PutUint64(b[14:], l.next)
	off := leafHdr
	for _, e := range l.entries {
		b[off] = byte(len(e.key))
		binary.LittleEndian.PutUint16(b[off+1:], uint16(len(e.val)))
		copy(b[off+3:], e.key)
		copy(b[off+3+len(e.key):], e.val)
		off += 3 + len(e.key) + len(e.val)
	}
}

// parseLeaf decodes a leaf image.
func parseLeaf(b []byte) (*leaf, error) {
	if len(b) < leafHdr {
		return nil, fmt.Errorf("sherman: short leaf (%d bytes)", len(b))
	}
	l := &leaf{
		lock:    binary.LittleEndian.Uint64(b[0:]),
		version: binary.LittleEndian.Uint32(b[8:]),
		next:    binary.LittleEndian.Uint64(b[14:]),
	}
	count := int(binary.LittleEndian.Uint16(b[12:]))
	off := leafHdr
	for i := 0; i < count; i++ {
		if off+3 > len(b) {
			return nil, fmt.Errorf("sherman: corrupt leaf entry %d", i)
		}
		kl := int(b[off])
		vl := int(binary.LittleEndian.Uint16(b[off+1:]))
		if off+3+kl+vl > len(b) {
			return nil, fmt.Errorf("sherman: corrupt leaf entry %d bounds", i)
		}
		l.entries = append(l.entries, entry{
			key: append([]byte(nil), b[off+3:off+3+kl]...),
			val: append([]byte(nil), b[off+3+kl:off+3+kl+vl]...),
		})
		off += 3 + kl + vl
	}
	return l, nil
}
