package sim

import "sync"

// CPU models a node's pool of processor cores in virtual time. Entities
// charge modeled execution time against the pool with Use; when all cores
// are busy the charge queues FIFO, which is how a 2-core memory node
// saturates under 12 compaction workers while a 24-core compute node does
// not. CPU also tracks aggregate busy time so benchmarks can report
// utilization (Fig 12 in the paper annotates bars with CPU%).
type CPU struct {
	env   *Env
	cores int

	mu    sync.Mutex
	free  []Time // per-core earliest availability
	busy  Duration
	since Time // start of the current accounting window
}

// NewCPU returns a core pool with the given number of cores.
func NewCPU(e *Env, cores int) *CPU {
	if cores < 1 {
		cores = 1
	}
	return &CPU{env: e, cores: cores, free: make([]Time, cores)}
}

// Cores returns the pool size.
func (c *CPU) Cores() int { return c.cores }

// Use charges d of CPU time to the pool: the entity occupies the earliest
// available core for d of virtual time, queueing behind earlier charges
// when all cores are busy.
func (c *CPU) Use(d Duration) {
	if d <= 0 {
		return
	}
	now := c.env.Now()
	c.mu.Lock()
	// Pick the core that frees up soonest.
	best := 0
	for i := 1; i < c.cores; i++ {
		if c.free[i] < c.free[best] {
			best = i
		}
	}
	start := c.free[best]
	if start < now {
		start = now
	}
	end := start + Time(d)
	c.free[best] = end
	c.busy += d
	c.mu.Unlock()
	c.env.WaitUntil(end)
}

// ResetStats starts a new utilization accounting window at the current
// virtual time.
func (c *CPU) ResetStats() {
	c.mu.Lock()
	c.busy = 0
	c.since = c.env.Now()
	c.mu.Unlock()
}

// Utilization returns the fraction of core-time spent busy since the last
// ResetStats, in [0, 1].
func (c *CPU) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	window := c.env.Now() - c.since
	if window <= 0 {
		return 0
	}
	return float64(c.busy) / (float64(window) * float64(c.cores))
}
