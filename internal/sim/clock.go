// Package sim implements a discrete-event simulation kernel with a virtual
// clock. Simulated threads ("entities") are real goroutines executing real
// code; only *time* is virtual. An entity is either running (executing Go
// code on the host), ready (runnable, awaiting dispatch) or blocked
// (waiting on the virtual clock or on a sim-aware synchronization
// primitive).
//
// Scheduling is cooperative and serial: at most one entity executes at a
// time. Entities made runnable — woken by a primitive, newly spawned, or
// released by a canceled alarm — join a FIFO ready queue, and the next one
// is dispatched only when the current runner blocks or exits. When nothing
// is runnable the clock advances to the earliest pending wakeup and
// dispatches that single waiter. Serial dispatch makes every arrival order
// in the simulation — mutex queues, CPU core assignment, channel handoffs —
// a pure function of virtual state rather than of host scheduling, so a
// run's virtual timeline is reproducible on any host.
//
// Rules for code running under the simulator:
//
//   - All cross-entity blocking must use sim primitives (Mutex, Cond, Chan,
//     WaitGroup) or clock waits. Host sync primitives may be used only for
//     critical sections that never block on a sim primitive while held.
//   - Every goroutine that touches sim primitives must be spawned with
//     Env.Go (or driven through Env.Run).
//
// Virtual time is int64 nanoseconds since simulation start.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// waiter states (guarded by Clock.mu).
const (
	waiterPending = iota
	waiterFired
	waiterCanceled
)

type waiter struct {
	at     Time
	seq    uint64 // tie-break so equal timestamps wake FIFO
	ch     chan struct{}
	where  string // description for deadlock reports
	state  int    // pending / fired / canceled
	parked bool   // owner is inside Alarm.Wait (alarms only)
}

type waitHeap []*waiter

func (h waitHeap) Len() int { return len(h) }
func (h waitHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h waitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waitHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waitHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Clock is the virtual clock and scheduler shared by all entities of one
// simulation.
type Clock struct {
	mu      sync.Mutex
	now     Time
	runners int             // entities currently dispatched (0 or 1)
	blocked int             // entities blocked on non-clock sim primitives
	ready   []chan struct{} // FIFO of runnable entities awaiting dispatch
	seq     uint64
	heap    waitHeap
	stalled map[string]int // where -> count, for deadlock diagnostics
	active  int            // drivers currently inside Env.Run
	dead    bool
}

// NewClock returns a fresh virtual clock at time zero.
func NewClock() *Clock {
	return &Clock{stalled: make(map[string]int)}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// dispatchLocked hands the run slot to the longest-ready entity.
// Caller holds c.mu and has established runners == 0.
func (c *Clock) dispatchLocked() {
	ch := c.ready[0]
	c.ready = c.ready[1:]
	c.runners++
	close(ch)
}

// join registers a new entity (spawned goroutine or Run driver) and
// returns the gate channel that closes when the scheduler dispatches it.
func (c *Clock) join() chan struct{} {
	c.mu.Lock()
	ch := make(chan struct{})
	c.ready = append(c.ready, ch)
	// An idle simulation (no current runner) has nothing that will reach a
	// dispatch point, so dispatch here; this is how the first entity starts.
	if c.runners == 0 {
		c.dispatchLocked()
	}
	c.mu.Unlock()
	return ch
}

// exit deregisters the running entity, dispatching the next one.
func (c *Clock) exit() {
	c.mu.Lock()
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
}

// Sleep blocks the calling entity for d of virtual time.
func (c *Clock) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.sleepUntilLocked(c.now+Time(d), "sleep")
}

// WaitUntil blocks the calling entity until virtual time t.
func (c *Clock) WaitUntil(t Time) {
	c.mu.Lock()
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	c.sleepUntilLocked(t, "waitUntil")
}

// sleepUntilLocked enqueues the caller on the wait heap and releases the
// clock lock. The caller must hold c.mu.
func (c *Clock) sleepUntilLocked(t Time, where string) {
	w := &waiter{at: t, seq: c.seq, ch: make(chan struct{}), where: where}
	c.seq++
	heap.Push(&c.heap, w)
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
	<-w.ch
}

// Block parks the calling entity on an external primitive (mutex queue,
// channel, ...). The primitive hands it back to the scheduler with Ready.
// where describes the wait site for deadlock reports.
func (c *Clock) Block(where string) {
	c.mu.Lock()
	c.runners--
	c.blocked++
	c.stalled[where]++
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
}

// Ready marks an entity previously parked with Block as runnable: it joins
// the dispatch queue and its channel ch closes when it is dispatched. The
// waker keeps the run slot and continues; this is what keeps wake order a
// function of program order rather than of host scheduling.
func (c *Clock) Ready(where string, ch chan struct{}) {
	c.mu.Lock()
	c.blocked--
	c.stalled[where]--
	if c.stalled[where] == 0 {
		delete(c.stalled, where)
	}
	c.ready = append(c.ready, ch)
	// Wakes from host (non-entity) code while the simulation is idle must
	// dispatch here or the wake would be lost.
	if c.runners == 0 {
		c.dispatchLocked()
	}
	c.mu.Unlock()
}

// maybeAdvanceLocked dispatches the next ready entity if no entity is
// running, advancing virtual time to the earliest pending wakeup when the
// ready queue is empty. It returns a non-empty diagnostic when the
// simulation is deadlocked; the caller must release c.mu before panicking.
// Caller holds c.mu.
func (c *Clock) maybeAdvanceLocked() (deadlock string) {
	if c.runners > 0 || c.dead {
		return ""
	}
	if len(c.ready) > 0 {
		c.dispatchLocked()
		return ""
	}
	// Canceled alarms are heap garbage; drop them before deciding.
	for len(c.heap) > 0 && c.heap[0].state == waiterCanceled {
		heap.Pop(&c.heap)
	}
	if len(c.heap) == 0 {
		if c.blocked > 0 && c.active > 0 {
			// A driver is inside Run, every entity is parked on a
			// primitive, and nothing is scheduled to wake: the
			// simulation cannot make progress. (With no active driver,
			// parked service entities are just idle, not deadlocked.)
			c.dead = true
			return c.stallReportLocked()
		}
		return ""
	}
	// Wake the single earliest waiter; later waiters at the same instant
	// dispatch one at a time as earlier ones block again.
	w := heap.Pop(&c.heap).(*waiter)
	w.state = waiterFired
	c.now = w.at
	c.runners++
	close(w.ch)
	return ""
}

// Alarm is a cancellable virtual-time wakeup. The owning entity schedules
// it with NewAlarm, then parks in Wait; any other entity may Cancel it
// early, waking the owner before the deadline. Unlike spawning a timer
// entity, a canceled alarm leaves no pending wakeup behind, so it never
// drags the virtual clock out to its deadline.
type Alarm struct {
	c *Clock
	w *waiter
}

// NewAlarm schedules a wakeup for the calling entity at virtual time t
// (clamped to now). The entity must follow with Wait before blocking on
// anything else.
func (c *Clock) NewAlarm(t Time, where string) *Alarm {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		t = c.now
	}
	w := &waiter{at: t, seq: c.seq, ch: make(chan struct{}), where: where}
	c.seq++
	heap.Push(&c.heap, w)
	return &Alarm{c: c, w: w}
}

// Wait parks the owning entity until the alarm fires or is canceled. It
// returns true if the deadline fired, false if Cancel woke it early.
func (a *Alarm) Wait() bool {
	c := a.c
	c.mu.Lock()
	if a.w.state == waiterCanceled {
		// Canceled before the owner parked: return without ever leaving
		// the run slot; the heap entry is dropped as garbage.
		c.mu.Unlock()
		return false
	}
	a.w.parked = true
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
	<-a.w.ch
	c.mu.Lock()
	fired := a.w.state == waiterFired
	c.mu.Unlock()
	return fired
}

// Cancel wakes the alarm's owner before the deadline. Calling it after
// the alarm fired (or cancelling twice) is a no-op. Cancel may be called
// before the owner reaches Wait; the runner accounting still balances.
func (a *Alarm) Cancel() {
	c := a.c
	c.mu.Lock()
	if a.w.state != waiterPending {
		c.mu.Unlock()
		return
	}
	a.w.state = waiterCanceled
	if a.w.parked {
		// The owner is parked in Wait; hand it to the dispatch queue.
		c.ready = append(c.ready, a.w.ch)
		if c.runners == 0 {
			c.dispatchLocked()
		}
	}
	c.mu.Unlock()
}

func (c *Clock) stallReportLocked() string {
	keys := make([]string, 0, len(c.stalled))
	for k := range c.stalled {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s×%d ", k, c.stalled[k])
	}
	return b.String()
}
