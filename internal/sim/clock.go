// Package sim implements a discrete-event simulation kernel with a virtual
// clock. Simulated threads ("entities") are real goroutines executing real
// code; only *time* is virtual. An entity is either running (executing Go
// code on the host) or blocked (waiting on the virtual clock or on a
// sim-aware synchronization primitive). The clock advances to the next
// pending wakeup only when every entity is blocked, so virtual timestamps
// are consistent regardless of how many physical cores the host has.
//
// Rules for code running under the simulator:
//
//   - All cross-entity blocking must use sim primitives (Mutex, Cond, Chan,
//     Semaphore, WaitGroup) or clock waits. Host sync primitives may be used
//     only for critical sections that never block on a sim primitive while
//     held.
//   - Every goroutine that touches sim primitives must be spawned with
//     Env.Go (or registered with Env.Enter/Exit).
//
// Virtual time is int64 nanoseconds since simulation start.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// waiter states (guarded by Clock.mu).
const (
	waiterPending = iota
	waiterFired
	waiterCanceled
)

type waiter struct {
	at    Time
	seq   uint64 // tie-break so equal timestamps wake FIFO
	ch    chan struct{}
	where string // description for deadlock reports
	state int    // pending / fired / canceled
}

type waitHeap []*waiter

func (h waitHeap) Len() int { return len(h) }
func (h waitHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h waitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waitHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waitHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Clock is the virtual clock shared by all entities of one simulation.
type Clock struct {
	mu      sync.Mutex
	now     Time
	runners int // entities currently executing host code
	blocked int // entities blocked on non-clock sim primitives
	seq     uint64
	heap    waitHeap
	stalled map[string]int // where -> count, for deadlock diagnostics
	active  int            // drivers currently inside Env.Run
	dead    bool
}

// NewClock returns a fresh virtual clock at time zero.
func NewClock() *Clock {
	return &Clock{stalled: make(map[string]int)}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// enter registers one more running entity. Must be paired with exit.
func (c *Clock) enter() {
	c.mu.Lock()
	c.runners++
	c.mu.Unlock()
}

// exit deregisters a running entity, possibly advancing the clock.
func (c *Clock) exit() {
	c.mu.Lock()
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
}

// Sleep blocks the calling entity for d of virtual time.
func (c *Clock) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.sleepUntilLocked(c.now+Time(d), "sleep")
}

// WaitUntil blocks the calling entity until virtual time t.
func (c *Clock) WaitUntil(t Time) {
	c.mu.Lock()
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	c.sleepUntilLocked(t, "waitUntil")
}

// sleepUntilLocked enqueues the caller on the wait heap and releases the
// clock lock. The caller must hold c.mu.
func (c *Clock) sleepUntilLocked(t Time, where string) {
	w := &waiter{at: t, seq: c.seq, ch: make(chan struct{}), where: where}
	c.seq++
	heap.Push(&c.heap, w)
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
	<-w.ch
}

// block parks the calling entity on an external primitive (mutex queue,
// channel, ...). The primitive wakes it via unblock. where describes the
// wait site for deadlock reports.
func (c *Clock) Block(where string) {
	c.mu.Lock()
	c.runners--
	c.blocked++
	c.stalled[where]++
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
}

// unblock marks one entity previously parked with block as runnable again.
// It is called by the waker *before* signaling the waiter's channel.
func (c *Clock) Unblock(where string) {
	c.mu.Lock()
	c.runners++
	c.blocked--
	c.stalled[where]--
	if c.stalled[where] == 0 {
		delete(c.stalled, where)
	}
	c.mu.Unlock()
}

// maybeAdvanceLocked advances virtual time to the earliest pending wakeup if
// no entity is running. It returns a non-empty diagnostic when the
// simulation is deadlocked; the caller must release c.mu before panicking.
// Caller holds c.mu.
func (c *Clock) maybeAdvanceLocked() (deadlock string) {
	if c.runners > 0 || c.dead {
		return ""
	}
	for {
		// Canceled alarms are heap garbage; drop them before deciding.
		for len(c.heap) > 0 && c.heap[0].state == waiterCanceled {
			heap.Pop(&c.heap)
		}
		if len(c.heap) == 0 {
			if c.blocked > 0 && c.active > 0 {
				// A driver is inside Run, every entity is parked on a
				// primitive, and nothing is scheduled to wake: the
				// simulation cannot make progress. (With no active driver,
				// parked service entities are just idle, not deadlocked.)
				c.dead = true
				return c.stallReportLocked()
			}
			return ""
		}
		next := c.heap[0].at
		woke := 0
		// Wake every waiter scheduled for this instant. Each wakes as a
		// runner.
		for len(c.heap) > 0 && c.heap[0].at == next {
			w := heap.Pop(&c.heap).(*waiter)
			if w.state == waiterCanceled {
				continue
			}
			w.state = waiterFired
			c.runners++
			woke++
			close(w.ch)
		}
		if woke > 0 {
			c.now = next
			return ""
		}
		// Everything at this instant was canceled; try the next one.
	}
}

// Alarm is a cancellable virtual-time wakeup. The owning entity schedules
// it with NewAlarm, then parks in Wait; any other entity may Cancel it
// early, waking the owner before the deadline. Unlike spawning a timer
// entity, a canceled alarm leaves no pending wakeup behind, so it never
// drags the virtual clock out to its deadline.
type Alarm struct {
	c *Clock
	w *waiter
}

// NewAlarm schedules a wakeup for the calling entity at virtual time t
// (clamped to now). The entity must follow with Wait before blocking on
// anything else.
func (c *Clock) NewAlarm(t Time, where string) *Alarm {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		t = c.now
	}
	w := &waiter{at: t, seq: c.seq, ch: make(chan struct{}), where: where}
	c.seq++
	heap.Push(&c.heap, w)
	return &Alarm{c: c, w: w}
}

// Wait parks the owning entity until the alarm fires or is canceled. It
// returns true if the deadline fired, false if Cancel woke it early.
func (a *Alarm) Wait() bool {
	c := a.c
	c.mu.Lock()
	c.runners--
	dead := c.maybeAdvanceLocked()
	c.mu.Unlock()
	if dead != "" {
		panic("sim: deadlock — all entities blocked: " + dead)
	}
	<-a.w.ch
	c.mu.Lock()
	fired := a.w.state == waiterFired
	c.mu.Unlock()
	return fired
}

// Cancel wakes the alarm's owner before the deadline. Calling it after
// the alarm fired (or cancelling twice) is a no-op. Cancel may be called
// before the owner reaches Wait; the runner accounting still balances.
func (a *Alarm) Cancel() {
	c := a.c
	c.mu.Lock()
	if a.w.state != waiterPending {
		c.mu.Unlock()
		return
	}
	a.w.state = waiterCanceled
	c.runners++ // the owner becomes runnable again
	c.mu.Unlock()
	close(a.w.ch)
}

func (c *Clock) stallReportLocked() string {
	keys := make([]string, 0, len(c.stalled))
	for k := range c.stalled {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s×%d ", k, c.stalled[k])
	}
	return b.String()
}
