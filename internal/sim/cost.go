package sim

import "time"

// CostModel holds the calibrated virtual CPU costs charged by the storage
// engines. The real data-structure work still executes on the host; these
// constants determine how much *virtual* time that work occupies on a
// simulated node's core pool. See DESIGN.md §5 for the calibration story.
type CostModel struct {
	// MemTable operations.
	MemInsert Duration // one skiplist insert (includes key encode)
	MemProbe  Duration // one MemTable/immutable-table lookup

	// Read path.
	IndexSearch Duration // binary search of a cached SSTable index
	BloomProbe  Duration // one bloom-filter membership test
	EntryParse  Duration // decode one KV during iteration
	CacheProbe  Duration // one hot-KV cache probe (hash + shard map touch)

	// Bulk byte processing (per byte).
	SerializeByte float64 // ns/B: building SSTable bytes from entries
	MergeEntry    Duration
	BlockByte     float64  // ns/B: wrapping/unwrapping block formats
	BlockTouch    Duration // fixed cost per block wrap/unwrap
	MemcpyByte    float64  // ns/B: extra buffer copies (file systems, RPC)

	// RPC / misc.
	RPCHandle Duration // server-side dispatch + handler entry

	// Table-build accounting knobs, zero by default so the build cost
	// stays folded into SerializeByte/BlockByte exactly as calibrated.
	// Offload ablation figures set them nonzero to make the index- and
	// filter-construction layers separately visible in CPU utilization.
	IndexByte float64  // ns/B: block-index construction, per index byte
	FilterKey Duration // bloom-filter construction, per key
}

// DefaultCosts is the calibration used throughout the benchmarks.
func DefaultCosts() CostModel {
	return CostModel{
		MemInsert:     1800 * time.Nanosecond,
		MemProbe:      700 * time.Nanosecond,
		IndexSearch:   600 * time.Nanosecond,
		BloomProbe:    150 * time.Nanosecond,
		EntryParse:    120 * time.Nanosecond,
		CacheProbe:    120 * time.Nanosecond,
		SerializeByte: 0.55,
		MergeEntry:    900 * time.Nanosecond,
		BlockByte:     0.8,
		BlockTouch:    1200 * time.Nanosecond,
		MemcpyByte:    0.25,
		RPCHandle:     1000 * time.Nanosecond,
	}
}

// Bytes returns the CPU duration for processing n bytes at nsPerByte.
func Bytes(n int, nsPerByte float64) Duration {
	return Duration(float64(n) * nsPerByte)
}
