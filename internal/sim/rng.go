package sim

// Deterministic randomness for the simulation. Every source of simulated
// nondeterminism (fault injection, retry jitter) must draw from the
// environment's seed through Mix64 rather than from math/rand's global
// state, so that one seed reproduces one virtual-time history.

// DefaultSeed is the environment seed when none is given.
const DefaultSeed int64 = 0x5eed_d15a_99e6

// Seed returns the environment's seed.
func (e *Env) Seed() int64 { return e.seed }

// Mix64 hashes an arbitrary tuple of values into a uniformly distributed
// 64-bit value using splitmix64 steps. It is pure — identical inputs give
// identical outputs on every run and platform — which makes it the
// deterministic substitute for a shared RNG stream: derive each draw from
// stable identifiers (seed, rule id, attempt number) instead of from the
// order in which concurrent entities happen to ask.
func Mix64(vs ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// MixFloat maps a Mix64 draw to [0, 1).
func MixFloat(vs ...uint64) float64 {
	return float64(Mix64(vs...)>>11) / float64(1<<53)
}
