package sim

import "sync"

// Env is one simulation world: a virtual clock plus bookkeeping for the
// entities that live in it. All components of a simulated deployment
// (compute nodes, memory nodes, benchmark drivers) share one Env.
type Env struct {
	clock *Clock
	seed  int64
	wg    sync.WaitGroup
}

// NewEnv creates a fresh simulation world at virtual time zero with the
// default seed.
func NewEnv() *Env {
	return NewEnvSeed(DefaultSeed)
}

// NewEnvSeed creates a fresh simulation world whose injected faults and
// retry jitter derive deterministically from seed (see Mix64).
func NewEnvSeed(seed int64) *Env {
	return &Env{clock: NewClock(), seed: seed}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.clock.Now() }

// Sleep advances the calling entity by d of virtual time.
func (e *Env) Sleep(d Duration) { e.clock.Sleep(d) }

// WaitUntil blocks the calling entity until virtual time t.
func (e *Env) WaitUntil(t Time) { e.clock.WaitUntil(t) }

// Go spawns fn as a new simulated entity. The entity joins the scheduler's
// ready queue when Go returns and starts executing at its first dispatch
// (when the spawning entity next blocks, or immediately if nothing runs).
func (e *Env) Go(fn func()) {
	e.wg.Add(1)
	gate := e.clock.join()
	go func() {
		defer e.wg.Done()
		defer e.clock.exit()
		<-gate
		fn()
	}()
}

// Run registers the calling goroutine as a driver entity, runs fn, then
// deregisters. Use it to drive a simulation from a test or main goroutine.
// Deadlock detection is armed only while at least one driver is inside
// Run: service entities parked on empty queues between Runs are idle, not
// deadlocked.
func (e *Env) Run(fn func()) {
	e.clock.mu.Lock()
	e.clock.active++
	e.clock.mu.Unlock()
	<-e.clock.join()
	defer func() {
		e.clock.mu.Lock()
		e.clock.active--
		e.clock.mu.Unlock()
		e.clock.exit()
	}()
	fn()
}

// Wait blocks the host goroutine until every entity spawned with Go has
// returned. It must be called from outside the simulation (not from an
// entity), typically after Run.
func (e *Env) Wait() { e.wg.Wait() }

// Clock exposes the underlying virtual clock.
func (e *Env) Clock() *Clock { return e.clock }
