package sim

import "sync"

// Mutex is a mutual-exclusion lock for simulated entities. Waiting on a
// contended Mutex parks the entity in virtual time (FIFO handoff), so lock
// waits are invisible to the virtual clock until the holder releases.
type Mutex struct {
	clock *Clock
	mu    sync.Mutex
	held  bool
	queue []chan struct{}
}

// NewMutex returns a Mutex bound to the environment's clock.
func NewMutex(e *Env) *Mutex { return &Mutex{clock: e.clock} }

// Lock acquires m, blocking the calling entity until it is available.
func (m *Mutex) Lock() {
	m.mu.Lock()
	if !m.held {
		m.held = true
		m.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()
	m.clock.Block("mutex")
	<-ch
}

// TryLock acquires m if it is free, reporting whether it did.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing it directly to the longest waiter if any.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	if !m.held {
		m.mu.Unlock()
		panic("sim: unlock of unlocked Mutex")
	}
	if len(m.queue) == 0 {
		m.held = false
		m.mu.Unlock()
		return
	}
	ch := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	m.clock.Ready("mutex", ch) // ownership hands off; held stays true
}

// Cond is a condition variable whose waiters are simulated entities.
// L must be a *Mutex from the same environment.
type Cond struct {
	L     *Mutex
	clock *Clock
	name  string
	mu    sync.Mutex
	queue []chan struct{}
}

// NewCond returns a condition variable using l as its lock.
func NewCond(e *Env, l *Mutex) *Cond { return &Cond{L: l, clock: e.clock, name: "cond"} }

// NewNamedCond returns a condition variable whose waiters show up under
// name in deadlock reports.
func NewNamedCond(e *Env, l *Mutex, name string) *Cond {
	return &Cond{L: l, clock: e.clock, name: name}
}

// Wait atomically releases c.L, parks the entity until Signal/Broadcast,
// then reacquires c.L before returning.
func (c *Cond) Wait() {
	ch := make(chan struct{})
	c.mu.Lock()
	c.queue = append(c.queue, ch)
	c.mu.Unlock()
	c.L.Unlock()
	c.clock.Block(c.name)
	<-ch
	c.L.Lock()
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return
	}
	ch := c.queue[0]
	c.queue = c.queue[1:]
	c.mu.Unlock()
	c.clock.Ready(c.name, ch)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	q := c.queue
	c.queue = nil
	c.mu.Unlock()
	for _, ch := range q {
		c.clock.Ready(c.name, ch)
	}
}

// WaitGroup mirrors sync.WaitGroup for simulated entities.
type WaitGroup struct {
	clock *Clock
	mu    sync.Mutex
	n     int
	queue []chan struct{}
}

// NewWaitGroup returns a WaitGroup bound to the environment's clock.
func NewWaitGroup(e *Env) *WaitGroup { return &WaitGroup{clock: e.clock} }

// Add adds delta to the counter, waking waiters if it reaches zero.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("sim: negative WaitGroup counter")
	}
	var q []chan struct{}
	if w.n == 0 {
		q = w.queue
		w.queue = nil
	}
	w.mu.Unlock()
	for _, ch := range q {
		w.clock.Ready("waitgroup", ch)
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks the entity until the counter is zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	w.queue = append(w.queue, ch)
	w.mu.Unlock()
	w.clock.Block("waitgroup")
	<-ch
}
