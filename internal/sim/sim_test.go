package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var got Time
	e.Run(func() {
		e.Sleep(5 * time.Millisecond)
		got = e.Now()
	})
	if got != Time(5*time.Millisecond) {
		t.Fatalf("Now = %d, want %d", got, 5*time.Millisecond)
	}
}

func TestConcurrentSleepersShareVirtualTime(t *testing.T) {
	// 10 entities each sleeping 1ms concurrently must finish at t=1ms,
	// not 10ms: virtual time models parallelism regardless of host cores.
	e := NewEnv()
	var done atomic.Int32
	e.Run(func() {
		wg := NewWaitGroup(e)
		for i := 0; i < 10; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				e.Sleep(time.Millisecond)
				done.Add(1)
			})
		}
		wg.Wait()
		if now := e.Now(); now != Time(time.Millisecond) {
			t.Errorf("Now = %v, want 1ms", now)
		}
	})
	e.Wait()
	if done.Load() != 10 {
		t.Fatalf("done = %d, want 10", done.Load())
	}
}

func TestWaitUntilPastIsNoop(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		e.Sleep(time.Millisecond)
		e.WaitUntil(0) // already passed
		if e.Now() != Time(time.Millisecond) {
			t.Errorf("Now moved backwards or stalled: %v", e.Now())
		}
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEnv()
	var inside, max atomic.Int32
	e.Run(func() {
		m := NewMutex(e)
		wg := NewWaitGroup(e)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					m.Lock()
					n := inside.Add(1)
					for {
						old := max.Load()
						if n <= old || max.CompareAndSwap(old, n) {
							break
						}
					}
					e.Sleep(time.Microsecond)
					inside.Add(-1)
					m.Unlock()
				}
			})
		}
		wg.Wait()
	})
	e.Wait()
	if max.Load() != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", max.Load())
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		m := NewMutex(e)
		if !m.TryLock() {
			t.Fatal("TryLock on free mutex failed")
		}
		if m.TryLock() {
			t.Fatal("TryLock on held mutex succeeded")
		}
		m.Unlock()
		if !m.TryLock() {
			t.Fatal("TryLock after unlock failed")
		}
		m.Unlock()
	})
}

func TestCondSignalWakesWaiter(t *testing.T) {
	e := NewEnv()
	var woke bool
	e.Run(func() {
		m := NewMutex(e)
		c := NewCond(e, m)
		ready := false
		e.Go(func() {
			e.Sleep(time.Millisecond)
			m.Lock()
			ready = true
			m.Unlock()
			c.Signal()
		})
		m.Lock()
		for !ready {
			c.Wait()
		}
		woke = true
		m.Unlock()
	})
	e.Wait()
	if !woke {
		t.Fatal("waiter never woke")
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEnv()
	var woke atomic.Int32
	e.Run(func() {
		m := NewMutex(e)
		c := NewCond(e, m)
		go_ := false
		wg := NewWaitGroup(e)
		for i := 0; i < 5; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				m.Lock()
				for !go_ {
					c.Wait()
				}
				m.Unlock()
				woke.Add(1)
			})
		}
		e.Sleep(time.Millisecond)
		m.Lock()
		go_ = true
		m.Unlock()
		c.Broadcast()
		wg.Wait()
	})
	e.Wait()
	if woke.Load() != 5 {
		t.Fatalf("woke = %d, want 5", woke.Load())
	}
}

func TestChanFIFOAndBlocking(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Run(func() {
		ch := NewChan[int](e, 2)
		wg := NewWaitGroup(e)
		wg.Add(1)
		e.Go(func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ch.Send(i) // blocks when buffer full
			}
			ch.Close()
		})
		for {
			v, ok := ch.Recv()
			if !ok {
				break
			}
			got = append(got, v)
		}
		wg.Wait()
	})
	e.Wait()
	if len(got) != 10 {
		t.Fatalf("received %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	e := NewEnv()
	var v int
	e.Run(func() {
		ch := NewChan[int](e, 0)
		e.Go(func() { ch.Send(42) })
		v, _ = ch.Recv()
	})
	e.Wait()
	if v != 42 {
		t.Fatalf("v = %d, want 42", v)
	}
}

func TestChanTryOps(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		ch := NewChan[int](e, 1)
		if _, ok := ch.TryRecv(); ok {
			t.Fatal("TryRecv on empty chan succeeded")
		}
		if !ch.TrySend(1) {
			t.Fatal("TrySend on empty chan failed")
		}
		if ch.TrySend(2) {
			t.Fatal("TrySend on full chan succeeded")
		}
		v, ok := ch.TryRecv()
		if !ok || v != 1 {
			t.Fatalf("TryRecv = (%d,%v), want (1,true)", v, ok)
		}
	})
}

func TestCPUSingleCoreSerializes(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		cpu := NewCPU(e, 1)
		wg := NewWaitGroup(e)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				cpu.Use(time.Millisecond)
			})
		}
		wg.Wait()
		if now := e.Now(); now != Time(4*time.Millisecond) {
			t.Errorf("1-core: Now = %v, want 4ms", time.Duration(now))
		}
	})
	e.Wait()
}

func TestCPUMultiCoreParallelizes(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		cpu := NewCPU(e, 4)
		wg := NewWaitGroup(e)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				cpu.Use(time.Millisecond)
			})
		}
		wg.Wait()
		if now := e.Now(); now != Time(time.Millisecond) {
			t.Errorf("4-core: Now = %v, want 1ms", time.Duration(now))
		}
	})
	e.Wait()
}

func TestCPUUtilization(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		cpu := NewCPU(e, 2)
		cpu.ResetStats()
		cpu.Use(time.Millisecond)
		// 1ms busy on one of two cores over a 1ms window => 50%.
		u := cpu.Utilization()
		if u < 0.49 || u > 0.51 {
			t.Errorf("utilization = %f, want 0.5", u)
		}
	})
	e.Wait()
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e.Run(func() {
		m := NewMutex(e)
		m.Lock()
		m.Lock() // self-deadlock: sole entity blocks forever
	})
}

func TestWaitGroupZeroWaitReturnsImmediately(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		wg := NewWaitGroup(e)
		wg.Wait() // must not block
	})
}

// TestSchedulerDeterministicTimeline runs a contended workload twice and
// requires identical per-entity virtual timelines. With cooperative serial
// dispatch, same-instant contention — CPU core queueing, mutex handoff
// order, channel FIFO order — must resolve identically on every run, no
// matter how the host schedules the underlying goroutines.
func TestSchedulerDeterministicTimeline(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		const n = 8
		out := make([]Time, n)
		e.Run(func() {
			cpu := NewCPU(e, 2)
			mu := NewMutex(e)
			ch := NewChan[int](e, 2)
			wg := NewWaitGroup(e)
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				e.Go(func() {
					defer wg.Done()
					for j := 0; j < 4; j++ {
						cpu.Use(Duration(1+(i*7+j*3)%5) * time.Microsecond)
						mu.Lock()
						e.Sleep(time.Microsecond)
						mu.Unlock()
						ch.Send(i)
						ch.Recv()
					}
					out[i] = e.Now()
				})
			}
			wg.Wait()
		})
		e.Wait()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entity %d finished at %d vs %d across identical runs", i, a[i], b[i])
		}
	}
}
