package sim

import "sync"

// Chan is a bounded FIFO queue whose Send/Recv park simulated entities.
// A capacity of zero makes it a rendezvous channel. Chan[T] is the sim
// analog of a buffered Go channel and is safe for many senders/receivers.
type Chan[T any] struct {
	clock  *Clock
	mu     sync.Mutex
	buf    []T
	cap    int
	closed bool
	recvq  []*chanWaiter[T]
	sendq  []*chanSender[T]
}

type chanWaiter[T any] struct {
	ch chan struct{}
	v  T
	ok bool
}

type chanSender[T any] struct {
	ch chan struct{}
	v  T
}

// NewChan returns a channel with the given buffer capacity.
func NewChan[T any](e *Env, capacity int) *Chan[T] {
	return &Chan[T]{clock: e.clock, cap: capacity}
}

// Send enqueues v, parking the entity while the buffer is full.
// Send on a closed channel silently drops the value: channels here model
// hardware queues torn down during shutdown, where in-flight work is
// discarded rather than crashing the machine.
func (c *Chan[T]) Send(v T) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	// Direct handoff to a parked receiver if one exists.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.v, w.ok = v, true
		c.mu.Unlock()
		c.clock.Ready("chan.recv", w.ch)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		c.mu.Unlock()
		return
	}
	s := &chanSender[T]{ch: make(chan struct{}), v: v}
	c.sendq = append(c.sendq, s)
	c.mu.Unlock()
	c.clock.Block("chan.send")
	<-s.ch
}

// TrySend enqueues v without blocking, reporting whether it was accepted.
func (c *Chan[T]) TrySend(v T) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return true // dropped, as in Send
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.v, w.ok = v, true
		c.mu.Unlock()
		c.clock.Ready("chan.recv", w.ch)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()
	return false
}

// Recv dequeues a value, parking the entity while the channel is empty.
// ok is false if the channel is closed and drained.
func (c *Chan[T]) Recv() (v T, ok bool) {
	c.mu.Lock()
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now take the freed slot.
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.v)
			c.mu.Unlock()
			c.clock.Ready("chan.send", s.ch)
			return v, true
		}
		c.mu.Unlock()
		return v, true
	}
	if len(c.sendq) > 0 { // zero-capacity rendezvous
		s := c.sendq[0]
		c.sendq = c.sendq[1:]
		c.mu.Unlock()
		c.clock.Ready("chan.send", s.ch)
		return s.v, true
	}
	if c.closed {
		c.mu.Unlock()
		return v, false
	}
	w := &chanWaiter[T]{ch: make(chan struct{})}
	c.recvq = append(c.recvq, w)
	c.mu.Unlock()
	c.clock.Block("chan.recv")
	<-w.ch
	return w.v, w.ok
}

// TryRecv dequeues a value without blocking. ok is false if nothing was
// available (empty, or closed and drained).
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.v)
			c.clock.Ready("chan.send", s.ch)
		}
		return v, true
	}
	return v, false
}

// Close closes the channel; parked receivers wake with ok=false.
func (c *Chan[T]) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	q := c.recvq
	c.recvq = nil
	sq := c.sendq
	c.sendq = nil
	c.mu.Unlock()
	for _, w := range q {
		c.clock.Ready("chan.recv", w.ch)
	}
	// Parked senders wake with their values discarded.
	for _, s := range sq {
		c.clock.Ready("chan.send", s.ch)
	}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}
