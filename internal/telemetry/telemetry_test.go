package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second registration returned a different handle")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(7)
	sp := h.Span(Wall)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || sp.End() != 0 {
		t.Fatal("nil metric handles must be no-ops")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 samples around 100 (bucket [64,128)), 10 around 10000.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10_000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*100+10*10_000 || s.Max != 10_000 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	// P50 must land in 100's bucket [64,128); P99 in 10000's [8192,16384),
	// clamped to the exact max.
	if s.P50 < 64 || s.P50 >= 128 {
		t.Errorf("p50 = %d, want within [64,128)", s.P50)
	}
	if s.P99 < 8192 || s.P99 > 10_000 {
		t.Errorf("p99 = %d, want within [8192,10000]", s.P99)
	}
	if s.Max != 10_000 {
		t.Errorf("max = %d, want 10000", s.Max)
	}
	if m := s.Mean(); m != (90*100+10*10_000)/100 {
		t.Errorf("mean = %d", m)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1)
	h.Observe(1 << 62)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1<<62 {
		t.Fatalf("max = %d", s.Max)
	}
	if q := s.Quantile(1.0); q != 1<<62 {
		t.Fatalf("q100 = %d, want clamped to max", q)
	}
}

func TestSpanUsesClock(t *testing.T) {
	var now atomic.Int64
	clock := ClockFunc(func() int64 { return now.Load() })
	r := NewRegistry(clock)
	sp := r.StartSpan("op.latency_ns")
	now.Store(250)
	if d := sp.End(); d != 250 {
		t.Fatalf("span duration = %d, want 250", d)
	}
	s := r.Snapshot().Histograms["op.latency_ns"]
	if s.Count != 1 || s.Sum != 250 {
		t.Fatalf("histogram after span: count=%d sum=%d", s.Count, s.Sum)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	// Exercised under -race: concurrent observers against one registry,
	// with snapshots taken mid-flight.
	r := NewRegistry(nil)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				g.Add(-1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if s.Counters["ops"] != workers*perWorker {
		t.Fatalf("ops = %d, want %d", s.Counters["ops"], workers*perWorker)
	}
	if s.Gauges["depth"] != 0 {
		t.Fatalf("depth = %d, want 0", s.Gauges["depth"])
	}
	if s.Histograms["lat"].Count != workers*perWorker {
		t.Fatalf("lat count = %d", s.Histograms["lat"].Count)
	}
}

func TestMerge(t *testing.T) {
	r1 := NewRegistry(nil)
	r2 := NewRegistry(nil)
	r1.Counter("writes").Add(10)
	r2.Counter("writes").Add(5)
	r2.Counter("only2").Add(1)
	r1.Gauge("inflight").Set(3)
	r2.Gauge("inflight").Set(4)
	for i := 0; i < 50; i++ {
		r1.Histogram("lat").Observe(100)
		r2.Histogram("lat").Observe(100_000)
	}
	m := Merge(r1.Snapshot(), r2.Snapshot())
	if m.Counters["writes"] != 15 || m.Counters["only2"] != 1 {
		t.Fatalf("merged counters: %v", m.Counters)
	}
	if m.Gauges["inflight"] != 7 {
		t.Fatalf("merged gauge = %d", m.Gauges["inflight"])
	}
	h := m.Histograms["lat"]
	if h.Count != 100 || h.Max != 100_000 {
		t.Fatalf("merged histogram count=%d max=%d", h.Count, h.Max)
	}
	// Half the mass at 100, half at 100k: p95 must come from the upper mode.
	if h.P95 < 65536 || h.P95 > 100_000 {
		t.Errorf("merged p95 = %d", h.P95)
	}
	if h.P50 > 128 {
		t.Errorf("merged p50 = %d, want lower mode", h.P50)
	}
}

func TestWriteJSONAndText(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("engine.writes").Add(7)
	r.Gauge("flush.buffers_inflight").Set(2)
	r.Histogram("engine.write.latency_ns").Observe(1500)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if decoded.Counters["engine.writes"] != 7 {
		t.Fatalf("decoded counters: %v", decoded.Counters)
	}
	if decoded.Histograms["engine.write.latency_ns"].Count != 1 {
		t.Fatalf("decoded histograms: %v", decoded.Histograms)
	}

	var txt bytes.Buffer
	r.Snapshot().WriteText(&txt)
	out := txt.String()
	for _, want := range []string{"engine.writes", "flush.buffers_inflight", "engine.write.latency_ns", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
