package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing (by convention) atomic counter.
// All methods are no-ops on a nil receiver so optional instrumentation
// needs no guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, buffers in flight).
// All methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i holds values
// whose bit length is i, i.e. [2^(i-1), 2^i); bucket 0 holds values <= 0.
const histBuckets = 64

// Histogram records a distribution of non-negative int64 samples
// (latencies in ns, sizes in bytes) in logarithmic power-of-two buckets.
// Observing is lock-free: one atomic add per bucket plus sum/count/max
// maintenance. Quantiles are estimated at snapshot time from the buckets
// (resolution: one power of two), with the tracked exact maximum as an
// upper clamp. All methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's current state with derived quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
		Buckets: make([]int64, histBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.finalize()
	return s
}

// Span measures one timed section into a Histogram. It is a plain value —
// no allocation per span — created by Histogram.Span or
// Registry.StartSpan. The zero Span is inert.
type Span struct {
	h     *Histogram
	clock Clock
	start int64
}

// Span opens a span against h using clock c. A nil histogram or clock
// yields an inert span.
func (h *Histogram) Span(c Clock) Span {
	if h == nil || c == nil {
		return Span{}
	}
	return Span{h: h, clock: c, start: c.Now()}
}

// End closes the span, observes the elapsed time into the histogram, and
// returns it (0 for inert spans).
func (s Span) End() int64 {
	if s.h == nil {
		return 0
	}
	d := s.clock.Now() - s.start
	s.h.Observe(d)
	return d
}
