package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestP999TailSeparation: a 0.1% tail far above the body must show up in
// P999 while P99 stays in the body.
func TestP999TailSeparation(t *testing.T) {
	var h Histogram
	for i := 0; i < 9_989; i++ {
		h.Observe(100)
	}
	for i := 0; i < 11; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.P99 > 1_000 {
		t.Errorf("p99 = %d, want body (~100)", s.P99)
	}
	if s.P999 < 100_000 {
		t.Errorf("p999 = %d, want tail (~1e6)", s.P999)
	}
	if s.P999 < s.P99 || s.P99 < s.P50 {
		t.Errorf("quantiles not monotone: p50=%d p99=%d p999=%d", s.P50, s.P99, s.P999)
	}
	if s.P999 > s.Max {
		t.Errorf("p999 %d exceeds tracked max %d", s.P999, s.Max)
	}
}

// TestQuantileEmptyHistogram: an untouched histogram reports zeros, never
// panics or fabricates values.
func TestQuantileEmptyHistogram(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 0.999, 1.0} {
		if v := s.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	if s.P50 != 0 || s.P99 != 0 || s.P999 != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot not all-zero: %+v", s)
	}
	// A snapshot decoded from JSON has no Buckets slice at all.
	decoded := HistogramSnapshot{Count: 5, Max: 9}
	if v := decoded.Quantile(0.5); v != 0 {
		t.Errorf("bucketless Quantile = %d, want 0", v)
	}
}

// TestQuantileSingleBucket: when every sample lands in one bucket, every
// quantile collapses to that bucket's value, clamped to the exact max.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1_000; i++ {
		h.Observe(700) // bucket [512, 1024)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1.0} {
		if v := s.Quantile(q); v != 700 {
			t.Errorf("single-bucket Quantile(%v) = %d, want clamp to max 700", q, v)
		}
	}
}

// TestQuantileSaturatingValues: samples at the int64 edge must land in the
// last bucket and report without overflow.
func TestQuantileSaturatingValues(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64 - 1)
	s := h.Snapshot()
	if s.Max != math.MaxInt64 {
		t.Fatalf("max = %d", s.Max)
	}
	for _, q := range []float64{0.5, 0.999} {
		if v := s.Quantile(q); v != math.MaxInt64 {
			t.Errorf("saturating Quantile(%v) = %d", q, v)
		}
	}
	// Negative and zero samples clamp into bucket 0.
	var h2 Histogram
	h2.Observe(-5)
	h2.Observe(0)
	s2 := h2.Snapshot()
	if v := s2.Quantile(0.999); v != 0 {
		t.Errorf("nonpositive samples: Quantile = %d, want 0", v)
	}
}

// TestWriteTextIncludesP999: the human-readable dump carries the new
// column.
func TestWriteTextIncludesP999(t *testing.T) {
	r := NewRegistry(nil)
	r.Histogram("svc.t.latency_ns").Observe(4096)
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	if !strings.Contains(buf.String(), "p999") {
		t.Errorf("WriteText missing p999 column:\n%s", buf.String())
	}
}
