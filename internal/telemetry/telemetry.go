// Package telemetry is a dependency-free metrics and tracing core for the
// dLSM stack. It provides atomic Counters and Gauges, log-bucketed
// Histograms with quantile estimation, and lightweight Spans, all behind a
// Registry that hands out stable metric handles.
//
// Design constraints, in order:
//
//   - Hot paths are lock-free: instrumented code holds *Counter /
//     *Gauge / *Histogram handles obtained once at setup and touches only
//     atomics per event. The Registry's mutex is paid at registration and
//     snapshot time only.
//   - Time is pluggable: a Clock abstracts nanosecond timestamps so Spans
//     and latency histograms work identically under the wall clock and
//     under internal/sim's virtual clock (wire the latter with ClockFunc).
//   - Nil handles are inert: every method on a nil Counter, Gauge or
//     Histogram is a no-op, so optional instrumentation needs no guards at
//     call sites.
//
// Metric names are flat dot-separated strings ("engine.write.latency_ns",
// "rdma.link.compute-0->memory-0.bytes"). Registries from independent
// components (per-shard engines, the RDMA fabric) are combined with Merge,
// which sums counters and gauges and merges histogram buckets.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Clock supplies nanosecond timestamps for spans and latency measurement.
// Implementations must be safe for concurrent use.
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to the Clock interface. Use it to drive
// telemetry off internal/sim's virtual clock:
//
//	telemetry.ClockFunc(func() int64 { return int64(env.Now()) })
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

type wallClock struct{}

func (wallClock) Now() int64 { return time.Now().UnixNano() }

// Wall is the host wall clock.
var Wall Clock = wallClock{}

// Registry is a named collection of metrics. The zero value is not usable;
// create registries with NewRegistry. All methods are safe for concurrent
// use; Counter/Gauge/Histogram return the existing metric when the name is
// already registered, so independent callers sharing a registry share
// handles.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry whose spans read clock; nil
// selects the wall clock.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = Wall
	}
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Clock returns the registry's time source.
func (r *Registry) Clock() Clock { return r.clock }

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// StartSpan opens a span whose duration lands in the histogram registered
// under name. For hot paths, cache the histogram handle and use
// Histogram.Span instead — StartSpan pays the registry lookup.
func (r *Registry) StartSpan(name string) Span {
	return r.Histogram(name).Span(r.clock)
}

// Snapshot captures a consistent-enough view of every metric: individual
// values are read atomically; the set of metrics is captured under the
// registry lock. Cheap enough to call mid-run.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON (an expvar-style
// dump) to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
