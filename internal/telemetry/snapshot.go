package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// HistogramSnapshot is a point-in-time view of one Histogram. Buckets
// carries the raw log2 bucket counts so snapshots from independent
// registries can be merged with quantiles recomputed; it is omitted from
// JSON output.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`

	Buckets []int64 `json:"-"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the log buckets.
// Resolution is one power of two; the result is clamped to the tracked
// exact maximum.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			v := bucketMid(i)
			if h.Max > 0 && v > h.Max {
				v = h.Max
			}
			return v
		}
	}
	return h.Max
}

// bucketMid is the representative value of bucket i: the midpoint of
// [2^(i-1), 2^i), saturating near the int64 edge.
func bucketMid(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i == 1:
		return 1
	case i >= 63:
		return math.MaxInt64
	}
	lo := int64(1) << (i - 1)
	return lo + lo/2
}

func (h *HistogramSnapshot) finalize() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
	h.P999 = h.Quantile(0.999)
}

// Mean returns the average sample (0 when empty).
func (h HistogramSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Snapshot is a point-in-time view of a Registry (or a merge of several).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Merge combines snapshots from independent registries (per-shard engines,
// the fabric): counters and gauges with equal names sum; histograms merge
// their buckets, with quantiles recomputed and the maximum taken across
// inputs.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			m := out.Histograms[name]
			m.Count += h.Count
			m.Sum += h.Sum
			if h.Max > m.Max {
				m.Max = h.Max
			}
			if len(m.Buckets) == 0 {
				m.Buckets = make([]int64, histBuckets)
			}
			for i, n := range h.Buckets {
				if i < len(m.Buckets) {
					m.Buckets[i] += n
				}
			}
			out.Histograms[name] = m
		}
	}
	for name, h := range out.Histograms {
		h.finalize()
		out.Histograms[name] = h
	}
	return out
}

// WriteText renders the snapshot as an aligned, name-sorted human-readable
// table (the format dlsm-bench prints).
func (s Snapshot) WriteText(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "  counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(tw, "    %s\t%d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "  gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(tw, "    %s\t%d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "  histograms:\tcount\tmean\tp50\tp95\tp99\tp999\tmax")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(tw, "    %s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				name, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.P999, h.Max)
		}
	}
	tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
