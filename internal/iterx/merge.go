// Package iterx provides iterator combinators over the shared iterator
// interface: heap-merging across sources (MemTables, immutable tables and
// SSTables) and level concatenation for the sorted, non-overlapping levels.
package iterx

import (
	"container/heap"

	"dlsm/internal/sstable"
)

// Compare orders internal keys (keys.Compare in practice).
type Compare func(a, b []byte) int

// Merging merges children into one sorted stream. Ties (which cannot occur
// with unique internal keys) favor earlier children.
func Merging(cmp Compare, children ...sstable.Iterator) sstable.Iterator {
	if len(children) == 1 {
		return children[0]
	}
	return &mergeIter{cmp: cmp, children: children}
}

type mergeIter struct {
	cmp      Compare
	children []sstable.Iterator
	h        mergeHeap
	inited   bool
}

type heapItem struct {
	it  sstable.Iterator
	ord int
}

type mergeHeap struct {
	cmp   Compare
	items []heapItem
}

func (h mergeHeap) Len() int { return len(h.items) }
func (h mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.items[i].it.Key(), h.items[j].it.Key())
	if c != 0 {
		return c < 0
	}
	return h.items[i].ord < h.items[j].ord
}
func (h mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)   { h.items = append(h.items, x.(heapItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func (m *mergeIter) rebuild(position func(sstable.Iterator)) {
	m.h = mergeHeap{cmp: m.cmp}
	for ord, it := range m.children {
		position(it)
		if it.Valid() {
			m.h.items = append(m.h.items, heapItem{it, ord})
		}
	}
	heap.Init(&m.h)
	m.inited = true
}

func (m *mergeIter) First() { m.rebuild(func(it sstable.Iterator) { it.First() }) }

func (m *mergeIter) SeekGE(ikey []byte) {
	m.rebuild(func(it sstable.Iterator) { it.SeekGE(ikey) })
}

func (m *mergeIter) Valid() bool { return m.inited && m.h.Len() > 0 }

func (m *mergeIter) Next() {
	top := &m.h.items[0]
	top.it.Next()
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

func (m *mergeIter) Key() []byte   { return m.h.items[0].it.Key() }
func (m *mergeIter) Value() []byte { return m.h.items[0].it.Value() }

func (m *mergeIter) Error() error {
	for _, it := range m.children {
		if err := it.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every child (each may hold pipelined prefetch buffers).
func (m *mergeIter) Close() {
	for _, it := range m.children {
		it.Close()
	}
	m.children = nil
	m.h.items = nil
	m.inited = false
}

// Concat iterates a sequence of non-overlapping, key-ordered tables one at
// a time (the classic "two-level iterator" for levels >= 1). open lazily
// materializes the iterator for table i; bounds provide each table's
// smallest/largest internal keys for seek routing.
func Concat(cmp Compare, n int, bounds func(i int) (smallest, largest []byte), open func(i int) sstable.Iterator) sstable.Iterator {
	return &concatIter{cmp: cmp, n: n, bounds: bounds, open: open, idx: -1}
}

type concatIter struct {
	cmp    Compare
	n      int
	bounds func(i int) (smallest, largest []byte)
	open   func(i int) sstable.Iterator
	idx    int
	cur    sstable.Iterator
	err    error
}

func (c *concatIter) load(i int) {
	// Close the table being left so its prefetch resources (pipelined
	// buffers, per-iterator QP) are released as the level advances.
	if c.cur != nil {
		c.cur.Close()
	}
	c.idx = i
	if i < 0 || i >= c.n {
		c.cur = nil
		return
	}
	c.cur = c.open(i)
}

func (c *concatIter) First() {
	c.load(0)
	if c.cur != nil {
		c.cur.First()
		c.skipExhausted()
	}
}

func (c *concatIter) SeekGE(ikey []byte) {
	// Find the first table whose largest key >= target.
	lo, hi := 0, c.n
	for lo < hi {
		mid := (lo + hi) / 2
		_, largest := c.bounds(mid)
		if c.cmp(largest, ikey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.load(lo)
	if c.cur != nil {
		c.cur.SeekGE(ikey)
		c.skipExhausted()
	}
}

func (c *concatIter) skipExhausted() {
	for c.cur != nil && !c.cur.Valid() {
		if err := c.cur.Error(); err != nil {
			c.err = err
			c.cur.Close()
			c.cur = nil
			return
		}
		c.load(c.idx + 1)
		if c.cur != nil {
			c.cur.First()
		}
	}
}

func (c *concatIter) Valid() bool { return c.err == nil && c.cur != nil && c.cur.Valid() }

func (c *concatIter) Next() {
	c.cur.Next()
	c.skipExhausted()
}

func (c *concatIter) Key() []byte   { return c.cur.Key() }
func (c *concatIter) Value() []byte { return c.cur.Value() }

func (c *concatIter) Error() error {
	if c.err != nil {
		return c.err
	}
	if c.cur != nil {
		return c.cur.Error()
	}
	return nil
}

// Close closes the currently open table; tables already left were closed
// as the iterator advanced past them.
func (c *concatIter) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
}
