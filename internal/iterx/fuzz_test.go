package iterx

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"dlsm/internal/keys"
	"dlsm/internal/sstable"
)

// ikv is one internal-key entry for fuzzing the merge combinator.
type ikv struct {
	ikey []byte
	val  []byte
}

// ikvIter iterates a keys.Compare-sorted slice of internal keys.
type ikvIter struct {
	kvs []ikv
	pos int
}

func (s *ikvIter) First() { s.pos = 0 }
func (s *ikvIter) SeekGE(k []byte) {
	s.pos = sort.Search(len(s.kvs), func(i int) bool {
		return keys.Compare(s.kvs[i].ikey, k) >= 0
	})
}
func (s *ikvIter) Valid() bool   { return s.pos >= 0 && s.pos < len(s.kvs) }
func (s *ikvIter) Next()         { s.pos++ }
func (s *ikvIter) Key() []byte   { return s.kvs[s.pos].ikey }
func (s *ikvIter) Value() []byte { return s.kvs[s.pos].val }
func (s *ikvIter) Error() error  { return nil }
func (s *ikvIter) Close()        {}

// FuzzMergeIterator drives Merging with up to 5 children holding duplicate
// user keys across "levels", tombstones and empty children, and checks the
// three invariants the engine's read path depends on: the merged stream is
// exactly the sorted union of the children, SeekGE lands on the reference
// lower bound, and folding to the newest visible version per user key
// (skipping tombstones) reproduces the reference live map.
func FuzzMergeIterator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x22, 0x43, 0x64, 0x85}) // one entry per child
	f.Add([]byte{0x00, 0x20, 0x00, 0x20, 0x00}) // same ukey across two children, dup writes
	f.Add([]byte{0x30, 0x10, 0x30, 0x10})       // set/delete ping-pong on one ukey
	f.Add(bytes.Repeat([]byte{0x07, 0xe3, 0x51, 0x92}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		const nChildren = 5
		// Decode each byte as one write: low 3 bits pick the child, next
		// 2 bits pick the user key, bit 5 picks set vs tombstone. A global
		// sequence counter makes every internal key unique, as the engine
		// guarantees. Three more ukey values come from a second pass so
		// duplicates across children are common but not universal.
		children := make([][]ikv, nChildren)
		var all []ikv
		type verdict struct {
			seq  keys.Seq
			live bool
			val  string
		}
		newest := map[string]verdict{}
		seq := keys.Seq(1)
		for i, b := range data {
			child := int(b&0x07) % nChildren
			ukey := fmt.Sprintf("u%02d", int(b>>3&0x03)+(i%5)*4)
			kind := keys.KindSet
			if b&0x20 != 0 {
				kind = keys.KindDelete
			}
			val := fmt.Sprintf("v%d", seq)
			e := ikv{ikey: keys.Append(nil, []byte(ukey), seq, kind), val: []byte(val)}
			children[child] = append(children[child], e)
			all = append(all, e)
			if v, ok := newest[ukey]; !ok || seq > v.seq {
				newest[ukey] = verdict{seq: seq, live: kind == keys.KindSet, val: val}
			}
			seq++
		}
		sortIKVs := func(kvs []ikv) {
			sort.Slice(kvs, func(i, j int) bool {
				return keys.Compare(kvs[i].ikey, kvs[j].ikey) < 0
			})
		}
		iters := make([]sstable.Iterator, nChildren)
		for i := range children {
			sortIKVs(children[i])
			iters[i] = &ikvIter{kvs: children[i]}
		}
		sortIKVs(all)

		// Invariant 1: the merged stream is the sorted union.
		m := Merging(keys.Compare, iters...)
		i := 0
		for m.First(); m.Valid(); m.Next() {
			if i >= len(all) {
				t.Fatalf("merged stream longer than union (%d entries)", len(all))
			}
			if !bytes.Equal(m.Key(), all[i].ikey) {
				t.Fatalf("entry %d: key %x, want %x", i, m.Key(), all[i].ikey)
			}
			if !bytes.Equal(m.Value(), all[i].val) {
				t.Fatalf("entry %d: value %q, want %q", i, m.Value(), all[i].val)
			}
			i++
		}
		if i != len(all) {
			t.Fatalf("merged stream yielded %d entries, want %d", i, len(all))
		}
		if err := m.Error(); err != nil {
			t.Fatal(err)
		}

		// Invariant 2: SeekGE lands on the reference lower bound. Probe
		// every ukey at MaxSeq (lookup form) plus past-the-end.
		for probe := 0; probe < 24; probe++ {
			target := keys.AppendLookup(nil, []byte(fmt.Sprintf("u%02d", probe)), keys.MaxSeq)
			want := sort.Search(len(all), func(i int) bool {
				return keys.Compare(all[i].ikey, target) >= 0
			})
			m.SeekGE(target)
			if want == len(all) {
				if m.Valid() {
					t.Fatalf("SeekGE(u%02d) valid at %x, want exhausted", probe, m.Key())
				}
				continue
			}
			if !m.Valid() || !bytes.Equal(m.Key(), all[want].ikey) {
				t.Fatalf("SeekGE(u%02d) = %x, want %x", probe, m.Key(), all[want].ikey)
			}
		}

		// Invariant 3: folding the merged stream to the first (newest)
		// version per user key, dropping tombstones, gives the live map —
		// a deleted key is never yielded, a live key has its newest value.
		live := map[string]string{}
		var prev []byte
		for m.First(); m.Valid(); m.Next() {
			uk := keys.UserKey(m.Key())
			if prev != nil && bytes.Equal(uk, prev) {
				continue // older version of the same ukey
			}
			prev = append(prev[:0], uk...)
			_, _, kind, err := keys.Parse(m.Key())
			if err != nil {
				t.Fatal(err)
			}
			if kind == keys.KindDelete {
				continue
			}
			live[string(uk)] = string(m.Value())
		}
		for uk, v := range newest {
			got, ok := live[uk]
			if v.live != ok {
				t.Fatalf("ukey %q: live=%v, want %v", uk, ok, v.live)
			}
			if ok && got != v.val {
				t.Fatalf("ukey %q: value %q, want %q", uk, got, v.val)
			}
		}
		for uk := range live {
			if _, ok := newest[uk]; !ok {
				t.Fatalf("ukey %q yielded but never written", uk)
			}
		}
		m.Close()
	})
}
