package iterx

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"dlsm/internal/sstable"
)

// sliceIter is a trivial in-memory iterator for combinator testing.
type sliceIter struct {
	keys   []string
	pos    int
	closed bool
}

func newSliceIter(keys ...string) *sliceIter {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	return &sliceIter{keys: sorted, pos: -1}
}

func (s *sliceIter) First() { s.pos = 0 }
func (s *sliceIter) SeekGE(k []byte) {
	s.pos = sort.SearchStrings(s.keys, string(k))
}
func (s *sliceIter) Valid() bool   { return s.pos >= 0 && s.pos < len(s.keys) }
func (s *sliceIter) Next()         { s.pos++ }
func (s *sliceIter) Key() []byte   { return []byte(s.keys[s.pos]) }
func (s *sliceIter) Value() []byte { return []byte("v:" + s.keys[s.pos]) }
func (s *sliceIter) Error() error  { return nil }
func (s *sliceIter) Close()        { s.closed = true }

func collect(it sstable.Iterator) []string {
	var out []string
	for it.First(); it.Valid(); it.Next() {
		out = append(out, string(it.Key()))
	}
	return out
}

func TestMergingInterleaves(t *testing.T) {
	m := Merging(bytes.Compare,
		newSliceIter("a", "d", "g"),
		newSliceIter("b", "e"),
		newSliceIter("c", "f", "h"))
	got := collect(m)
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged = %v", got)
	}
}

func TestMergingSeekGE(t *testing.T) {
	m := Merging(bytes.Compare, newSliceIter("a", "d"), newSliceIter("b", "e"))
	m.SeekGE([]byte("c"))
	if !m.Valid() || string(m.Key()) != "d" {
		t.Fatalf("SeekGE(c) at %q", m.Key())
	}
	m.Next()
	if string(m.Key()) != "e" {
		t.Fatalf("Next = %q", m.Key())
	}
}

func TestMergingSingleChildPassThrough(t *testing.T) {
	child := newSliceIter("x", "y")
	if Merging(bytes.Compare, child) != sstable.Iterator(child) {
		t.Fatal("single child should pass through unwrapped")
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	m := Merging(bytes.Compare, newSliceIter(), newSliceIter("a"), newSliceIter())
	got := collect(m)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("merged = %v", got)
	}
}

func TestMergingQuickProperty(t *testing.T) {
	f := func(a, b, c []byte) bool {
		mk := func(raw []byte) (*sliceIter, []string) {
			seen := map[string]bool{}
			var ks []string
			for _, x := range raw {
				k := fmt.Sprintf("k%03d", x)
				if !seen[k] {
					seen[k] = true
					ks = append(ks, k)
				}
			}
			return newSliceIter(ks...), ks
		}
		// Distinct key spaces per child avoid duplicate keys (the engine
		// guarantees unique internal keys).
		i1, k1 := mk(a)
		i2, k2 := mk(b)
		i3, k3 := mk(c)
		for i := range k2 {
			k2[i] = "m" + k2[i]
			i2.keys[i] = "m" + i2.keys[i]
		}
		for i := range k3 {
			k3[i] = "z" + k3[i]
			i3.keys[i] = "z" + i3.keys[i]
		}
		want := append(append(append([]string{}, k1...), k2...), k3...)
		sort.Strings(want)
		got := collect(Merging(bytes.Compare, i1, i2, i3))
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatIteratesAllTables(t *testing.T) {
	tables := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}}
	it := Concat(bytes.Compare, len(tables),
		func(i int) ([]byte, []byte) {
			return []byte(tables[i][0]), []byte(tables[i][len(tables[i])-1])
		},
		func(i int) sstable.Iterator { return newSliceIter(tables[i]...) })
	got := collect(it)
	want := []string{"a", "b", "c", "d", "e", "f"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("concat = %v", got)
	}
}

func TestConcatSeekRoutesToRightTable(t *testing.T) {
	tables := [][]string{{"a", "b"}, {"d", "e"}, {"x", "y"}}
	mk := func() sstable.Iterator {
		return Concat(bytes.Compare, len(tables),
			func(i int) ([]byte, []byte) {
				return []byte(tables[i][0]), []byte(tables[i][len(tables[i])-1])
			},
			func(i int) sstable.Iterator { return newSliceIter(tables[i]...) })
	}
	cases := []struct{ seek, want string }{
		{"a", "a"}, {"c", "d"}, {"e", "e"}, {"f", "x"}, {"z", ""},
	}
	for _, c := range cases {
		it := mk()
		it.SeekGE([]byte(c.seek))
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("SeekGE(%q) valid at %q", c.seek, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekGE(%q) = %q, want %q", c.seek, it.Key(), c.want)
		}
	}
}

func TestConcatLazyOpen(t *testing.T) {
	opened := 0
	it := Concat(bytes.Compare, 3,
		func(i int) ([]byte, []byte) {
			lo := []byte{byte('a' + 2*i)}
			return lo, []byte{byte('a' + 2*i + 1)}
		},
		func(i int) sstable.Iterator {
			opened++
			return newSliceIter(string(byte('a'+2*i)), string(byte('a'+2*i+1)))
		})
	it.SeekGE([]byte("e"))
	if !it.Valid() || string(it.Key()) != "e" {
		t.Fatalf("SeekGE(e) = %q", it.Key())
	}
	if opened != 1 {
		t.Fatalf("opened %d tables for a point seek, want 1 (lazy)", opened)
	}
}

func TestConcatEmpty(t *testing.T) {
	it := Concat(bytes.Compare, 0, nil, nil)
	it.First()
	if it.Valid() {
		t.Fatal("empty concat is valid")
	}
}
