// Package bloom implements the bloom filters dLSM caches on the compute
// node so point reads skip SSTables that cannot contain the key (§II-C,
// §VI). The construction mirrors LevelDB's: k probes derived from one
// 32-bit hash by double hashing.
package bloom

import "encoding/binary"

// Filter is an immutable bloom filter over a set of keys. The zero-length
// filter matches everything (safe default).
type Filter []byte

// Build creates a filter for the given keys at bitsPerKey (the paper and
// RocksDB default to 10, ~1% false-positive rate).
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := uint32(float64(bitsPerKey) * 0.69) // ln(2) * bits/key
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	f := make(Filter, nBytes+1)
	f[nBytes] = byte(k)
	for _, key := range keys {
		h := Hash(key)
		delta := h>>17 | h<<15
		for i := uint32(0); i < k; i++ {
			pos := h % uint32(bits)
			f[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// MayContain reports whether key could be in the set. False positives are
// possible; false negatives are not.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return true
	}
	nBytes := len(f) - 1
	bits := uint32(nBytes * 8)
	k := uint32(f[nBytes])
	if k > 30 {
		return true // reserved for future encodings
	}
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := uint32(0); i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Hash is LevelDB's bloom hash (a Murmur-like 32-bit hash).
func Hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for len(data) >= 4 {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
