package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(ks [][]byte) bool {
		filter := Build(ks, 10)
		for _, k := range ks {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, []byte(fmt.Sprintf("key-%08d", i)))
	}
	f := Build(ks, 10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03 at 10 bits/key", rate)
	}
}

func TestEmptyFilterMatchesAll(t *testing.T) {
	var f Filter
	if !f.MayContain([]byte("anything")) {
		t.Fatal("nil filter must match everything")
	}
}

func TestSmallSets(t *testing.T) {
	for n := 0; n <= 4; n++ {
		var ks [][]byte
		for i := 0; i < n; i++ {
			ks = append(ks, []byte{byte(i)})
		}
		f := Build(ks, 10)
		for _, k := range ks {
			if !f.MayContain(k) {
				t.Fatalf("n=%d: false negative", n)
			}
		}
	}
}

func TestHashStability(t *testing.T) {
	// The hash feeds on-disk filters; pin its value so the format is stable.
	if h := Hash([]byte("dlsm")); h != Hash([]byte("dlsm")) {
		t.Fatal("hash not deterministic")
	}
	if Hash([]byte("a")) == Hash([]byte("b")) {
		t.Fatal("trivial collision")
	}
}

func BenchmarkMayContain(b *testing.B) {
	var ks [][]byte
	for i := 0; i < 100000; i++ {
		ks = append(ks, []byte(fmt.Sprintf("key-%08d", i)))
	}
	f := Build(ks, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(ks[i%len(ks)])
	}
}
