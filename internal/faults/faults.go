// Package faults is the deterministic fault-injection plane for a simulated
// dLSM deployment. An Injector attaches to the RDMA fabric and decides, per
// posted work request, whether to drop it in the network, complete it with
// an error, or delay it — plus link-level degradation (latency/bandwidth
// multipliers over a virtual-time window), periodic link flaps, and whole
// memory-node crash/restart schedules.
//
// Every probabilistic decision is a pure hash of (injector seed, rule name,
// the op's virtual time and signature) via sim.Mix64 — no shared RNG stream
// or arrival-order counter exists, so two runs with the same seed and
// workload inject exactly the same faults at exactly the same virtual
// times, no matter how the host scheduler interleaves concurrent entities
// posting at the same virtual instant.
//
// Everything the injector does is counted in the fabric's telemetry registry
// under "faults.*", so benchmark figures and tests can assert on injected
// fault volume without extra plumbing.
package faults

import (
	"errors"
	"hash/fnv"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// ErrInjected is the default error for Fail rules that do not set their own.
var ErrInjected = errors.New("faults: injected failure")

// ErrLinkDown completes operations posted while a flapping link is in its
// down phase.
var ErrLinkDown = errors.New("faults: link down")

// Any is the wildcard for a Rule's Op, From and To selectors.
const Any = -1

// Rule selects work requests and assigns them a fault verdict. Zero-valued
// selector fields are wildcards except Op/From/To, which use Any explicitly
// (OpCode 0 is a real verb).
type Rule struct {
	// Name identifies the rule and seeds its private random stream; two
	// rules with different names make independent decisions. Required.
	Name string
	// Op matches a single verb, or Any.
	Op rdma.OpCode
	// From/To match the posting node and its peer, or Any.
	From, To int
	// After/Until bound the active virtual-time window: active while
	// After <= now < Until, with Until == 0 meaning forever.
	After, Until sim.Time
	// Prob is the per-match firing probability; 0 means 1.0 (always).
	Prob float64
	// Count caps the number of firings; 0 means unlimited.
	Count int

	// Drop loses the op in the network (local success, no remote effect).
	Drop bool
	// Fail completes the op with Err (ErrInjected if Err is nil).
	Fail bool
	// Err overrides the error used when Fail is set.
	Err error
	// Delay adds virtual latency to the completion. A delay-only rule
	// (neither Drop nor Fail) still executes the op.
	Delay sim.Duration
}

// window is one link-degradation or flap interval.
type window struct {
	a, b    int // unordered pair, Any allowed
	from    sim.Time
	until   sim.Time // 0 = forever
	latMult float64
	bwMult  float64
	downFor sim.Duration // nonzero for flaps
	upFor   sim.Duration
}

func (w *window) active(now sim.Time) bool {
	return now >= w.from && (w.until == 0 || now < w.until)
}

// down reports whether a flap window is in its down phase at now.
func (w *window) down(now sim.Time) bool {
	if w.downFor == 0 || !w.active(now) {
		return false
	}
	period := w.downFor + w.upFor
	if period == 0 {
		return true
	}
	return sim.Duration(now-w.from)%period < w.downFor
}

// pairMatches reports whether the unordered selector (wa, wb) covers the
// ordered pair (a, b). A single wildcard selects every link touching the
// named node; two wildcards select every link.
func pairMatches(wa, wb, a, b int) bool {
	if wa != Any && wb != Any {
		return (wa == a && wb == b) || (wa == b && wb == a)
	}
	w := wa
	if w == Any {
		w = wb
	}
	if w == Any {
		return true
	}
	return w == a || w == b
}

// Injector implements rdma.FaultInjector. Create one with New, which also
// installs it on the fabric. All methods are safe for concurrent use.
type Injector struct {
	env  *sim.Env
	fab  *rdma.Fabric
	seed uint64

	injected *telemetry.Counter // any nonzero verdict
	dropped  *telemetry.Counter
	failed   *telemetry.Counter
	delayed  *telemetry.Counter
	crashes  *telemetry.Counter
	restarts *telemetry.Counter

	mu      sync.Mutex
	rules   []*liveRule
	windows []*window
	lastNow sim.Time         // instant the occ map describes
	occ     map[opSig]uint64 // same-instant occurrence index per signature
}

type liveRule struct {
	Rule
	key   uint64 // Mix64(seed, fnv(Name)): base of the rule's random stream
	fired int
}

// opSig is the stable signature of one posted work request; together with
// the posting instant and a same-instant occurrence index it keys every
// probabilistic draw, replacing an arrival-order counter that would make
// the fault assignment depend on host scheduling.
type opSig struct {
	op       rdma.OpCode
	from, to int
	bytes    int
}

// New creates an injector seeded from the environment seed XOR salt and
// installs it on the fabric. Pass salt 0 for the canonical stream; distinct
// salts give independent fault schedules under one environment seed.
func New(fab *rdma.Fabric, salt uint64) *Injector {
	env := fab.Env()
	tel := fab.Telemetry()
	in := &Injector{
		env:      env,
		fab:      fab,
		seed:     uint64(env.Seed()) ^ salt,
		injected: tel.Counter("faults.injected"),
		dropped:  tel.Counter("faults.dropped"),
		failed:   tel.Counter("faults.failed"),
		delayed:  tel.Counter("faults.delayed"),
		crashes:  tel.Counter("faults.crashes"),
		restarts: tel.Counter("faults.restarts"),
	}
	fab.SetInjector(in)
	return in
}

// AddRule arms a work-request rule. Rules are consulted in insertion order;
// the first one that fires decides the verdict.
func (in *Injector) AddRule(r Rule) {
	h := fnv.New64a()
	h.Write([]byte(r.Name))
	lr := &liveRule{Rule: r, key: sim.Mix64(in.seed, h.Sum64())}
	in.mu.Lock()
	in.rules = append(in.rules, lr)
	in.mu.Unlock()
}

// DegradeLink multiplies the latency (latMult) and divides the bandwidth
// (bwMult; 2 = half speed) of the link between nodes a and b — either may
// be Any — for virtual times [from, until), until 0 meaning forever.
// Overlapping windows compound multiplicatively.
func (in *Injector) DegradeLink(a, b int, latMult, bwMult float64, from, until sim.Time) {
	in.mu.Lock()
	in.windows = append(in.windows, &window{a: a, b: b, from: from, until: until, latMult: latMult, bwMult: bwMult})
	in.mu.Unlock()
}

// FlapLink makes the link between a and b alternate downFor-down /
// upFor-up starting at from, for as long as the [from, until) window is
// active. Operations posted during a down phase complete with ErrLinkDown
// and have no remote effect.
func (in *Injector) FlapLink(a, b int, downFor, upFor sim.Duration, from, until sim.Time) {
	in.mu.Lock()
	in.windows = append(in.windows, &window{a: a, b: b, from: from, until: until, downFor: downFor, upFor: upFor})
	in.mu.Unlock()
}

// CrashNode schedules a full crash of node n at virtual time at: all its
// registered memory is invalidated, receive queues close, and peers' QPs
// complete outstanding and future work with rdma.ErrQPBroken. If
// restartAfter > 0 the node restarts that much later with empty regions.
func (in *Injector) CrashNode(n *rdma.Node, at sim.Time, restartAfter sim.Duration) {
	in.env.Go(func() {
		in.env.WaitUntil(at)
		n.Crash()
		in.crashes.Inc()
		if restartAfter > 0 {
			in.env.Sleep(restartAfter)
			n.Restart()
			in.restarts.Inc()
		}
	})
}

// At runs fn as its own entity at virtual time t. It is the generic hook
// for software-level fault events (e.g. stopping a memnode RPC service)
// that the RDMA-level injector cannot express itself.
func (in *Injector) At(t sim.Time, fn func()) {
	in.env.Go(func() {
		in.env.WaitUntil(t)
		fn()
	})
}

// OnOp implements rdma.FaultInjector. It is called on the posting path of
// every work request.
func (in *Injector) OnOp(op rdma.OpCode, from, to, bytes int) rdma.Fault {
	now := in.env.Now()
	in.mu.Lock()
	// The occurrence index distinguishes identical ops posted at the same
	// virtual instant so each draws independently, while keeping every draw
	// a pure function of virtual state — the order in which concurrent
	// entities happen to reach this lock never changes who gets faulted.
	if now != in.lastNow {
		in.lastNow = now
		clear(in.occ)
	}
	if in.occ == nil {
		in.occ = make(map[opSig]uint64)
	}
	sig := opSig{op: op, from: from, to: to, bytes: bytes}
	occ := in.occ[sig]
	in.occ[sig]++
	// A flapping link in its down phase beats every rule: nothing traverses
	// a dead link, whatever the rules say.
	for _, w := range in.windows {
		if w.downFor != 0 && pairMatches(w.a, w.b, from, to) && w.down(now) {
			in.mu.Unlock()
			in.injected.Inc()
			in.failed.Inc()
			return rdma.Fault{Err: ErrLinkDown}
		}
	}
	for _, r := range in.rules {
		if r.Op != Any && r.Op != op {
			continue
		}
		if r.From != Any && r.From != from {
			continue
		}
		if r.To != Any && r.To != to {
			continue
		}
		if now < r.After || (r.Until != 0 && now >= r.Until) {
			continue
		}
		if r.Count != 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob != 0 && r.Prob < 1 &&
			sim.MixFloat(r.key, uint64(now), uint64(op), uint64(from), uint64(to), uint64(bytes), occ) >= r.Prob {
			continue
		}
		r.fired++
		in.mu.Unlock()
		in.injected.Inc()
		f := rdma.Fault{Drop: r.Drop, Delay: r.Delay}
		if r.Fail {
			f.Err = r.Err
			if f.Err == nil {
				f.Err = ErrInjected
			}
		}
		switch {
		case f.Err != nil:
			in.failed.Inc()
		case f.Drop:
			in.dropped.Inc()
		}
		if f.Delay > 0 {
			in.delayed.Inc()
		}
		return f
	}
	in.mu.Unlock()
	return rdma.Fault{}
}

// LinkFactors implements rdma.FaultInjector: the compounded latency and
// bandwidth multipliers of all degradation windows covering the from->to
// link at virtual time now.
func (in *Injector) LinkFactors(from, to int, now sim.Time) (latMult, bwMult float64) {
	latMult, bwMult = 1, 1
	in.mu.Lock()
	for _, w := range in.windows {
		if w.downFor != 0 || !w.active(now) || !pairMatches(w.a, w.b, from, to) {
			continue
		}
		if w.latMult > 0 {
			latMult *= w.latMult
		}
		if w.bwMult > 0 {
			bwMult *= w.bwMult
		}
	}
	in.mu.Unlock()
	return latMult, bwMult
}
