package faults

import (
	"fmt"
	"hash/crc32"
	"sort"
	"testing"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// crashOutcome is everything one crash-recovery run produces, reduced to
// comparable values so two runs with the same seed can be checked for
// byte-identical behavior.
type crashOutcome struct {
	acked     int    // writes acknowledged before the crash
	replayed  int64  // entries Recover re-applied from the log
	digest    uint32 // crc32 over every acked key=value read back post-recovery
	memCPU    float64
	endVirtNS int64
}

// runCrashRecovery drives a Sync-durability workload on compute node 1,
// crashes it mid-stream, recovers the DB on compute node 2 from the
// remote log, and verifies every acknowledged write survived.
func runCrashRecovery(t *testing.T, seed int64) crashOutcome {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	mem := fab.AddNode("mem", 12)
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)
	inj := New(fab, 0)

	var out crashOutcome
	env.Run(func() {
		defer fab.Close()
		srv := memnode.NewServer(mem, memnode.DefaultConfig())
		srv.Start()

		opts := engine.DLSM()
		opts.MemTableSize = 64 << 10
		opts.TableSize = 64 << 10
		opts.EntrySizeHint = 64
		opts.Durability = engine.DurabilitySync
		opts.WALSize = 1 << 20
		// Compute-local compaction keeps the memory node's CPU provably
		// idle for the whole pre-crash phase: flushes, GC frees and the
		// log's append path are all one-sided.
		opts.CompactionSite = engine.CompactLocal

		db := engine.Open(cn1, srv, opts)
		inj.CrashNode(cn1, sim.Time(20*time.Millisecond), 0)

		const writers = 4
		acked := make([]map[string]string, writers)
		wg := sim.NewWaitGroup(env)
		for w := 0; w < writers; w++ {
			w := w
			acked[w] = map[string]string{}
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				for i := 0; ; i++ {
					key := fmt.Sprintf("w%d-k%06d", w, i)
					val := fmt.Sprintf("w%d-v%06d", w, i)
					// Sync durability: a nil error means the write's log
					// record is in remote memory — it must survive.
					if err := s.Put([]byte(key), []byte(val)); err != nil {
						return
					}
					acked[w][key] = val
				}
			})
		}
		wg.Wait()
		out.memCPU = mem.CPU.Utilization()
		db.Close()

		db2, err := engine.Recover(cn2, srv, opts)
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		defer db2.Close()
		out.replayed = db2.Stats().WALReplayed.Load()

		s := db2.NewSession()
		defer s.Close()
		crc := crc32.NewIEEE()
		for w := 0; w < writers; w++ {
			keys := make([]string, 0, len(acked[w]))
			for k := range acked[w] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out.acked += len(keys)
			for _, k := range keys {
				got, err := s.Get([]byte(k))
				if err != nil {
					t.Errorf("acked key %q lost after recovery: %v", k, err)
					continue
				}
				if string(got) != acked[w][k] {
					t.Errorf("acked key %q = %q after recovery, want %q", k, got, acked[w][k])
					continue
				}
				fmt.Fprintf(crc, "%s=%s\n", k, got)
			}
		}
		out.digest = crc.Sum32()
	})
	env.Wait()
	out.endVirtNS = int64(env.Now())
	return out
}

// TestComputeCrashRecoverySync: a compute node dies mid-workload with
// Durability Sync; Recover on a fresh compute node restores 100% of the
// acknowledged writes, the memory node spent zero CPU on the whole write
// path (appends, flushes and GC are one-sided), and the entire scenario
// is deterministic — two runs with the same seed are byte-identical.
func TestComputeCrashRecoverySync(t *testing.T) {
	a := runCrashRecovery(t, 7)
	if a.acked == 0 {
		t.Fatal("no writes acknowledged before the crash; scenario is vacuous")
	}
	if a.replayed == 0 {
		t.Fatal("recovery replayed nothing; the crash cannot have been mid-MemTable")
	}
	if a.memCPU != 0 {
		t.Fatalf("memory node CPU utilization = %v during the write workload, want 0 (one-sided append path)", a.memCPU)
	}
	t.Logf("acked=%d replayed=%d digest=%08x end=%v", a.acked, a.replayed, a.digest, time.Duration(a.endVirtNS))

	b := runCrashRecovery(t, 7)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
}
