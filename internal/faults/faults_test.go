package faults

import (
	"errors"
	"testing"
	"time"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

func testbed(seed int64) (*sim.Env, *rdma.Fabric, *rdma.Node, *rdma.Node, *Injector) {
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	a := fab.AddNode("a", 4)
	b := fab.AddNode("b", 4)
	return env, fab, a, b, New(fab, 0)
}

func TestRuleDropFailDelay(t *testing.T) {
	env, fab, a, b, inj := testbed(1)
	// Rules are consulted in order; each fires exactly once.
	inj.AddRule(Rule{Name: "fail", Op: rdma.OpWrite, From: a.ID, To: b.ID, Count: 1, Fail: true})
	inj.AddRule(Rule{Name: "drop", Op: rdma.OpWrite, From: a.ID, To: b.ID, Count: 1, Drop: true})
	inj.AddRule(Rule{Name: "slow", Op: rdma.OpWrite, From: a.ID, To: b.ID, Count: 1, Delay: time.Millisecond})
	env.Run(func() {
		defer fab.Close()
		dst := b.Register(4096)
		src := a.RegisterBuf([]byte("abcd"))
		qp := a.NewQP(b)

		if err := qp.WriteSync(src, 0, dst.Addr(0), 4); !errors.Is(err, ErrInjected) {
			t.Errorf("write 1: err = %v, want ErrInjected", err)
		}
		if err := qp.WriteSync(src, 0, dst.Addr(0), 4); err != nil {
			t.Errorf("write 2 (dropped): err = %v, want local success", err)
		}
		if string(dst.Bytes(0, 4)) == "abcd" {
			t.Error("dropped write reached remote memory")
		}
		start := env.Now()
		if err := qp.WriteSync(src, 0, dst.Addr(0), 4); err != nil {
			t.Errorf("write 3 (delayed): %v", err)
		}
		if d := time.Duration(env.Now() - start); d < time.Millisecond {
			t.Errorf("delayed write took %v, want >= 1ms", d)
		}
		if string(dst.Bytes(0, 4)) != "abcd" {
			t.Error("delayed write lost its payload")
		}
		// All rules exhausted: plain success.
		if err := qp.WriteSync(src, 0, dst.Addr(0), 4); err != nil {
			t.Errorf("write 4: %v", err)
		}
	})
	env.Wait()

	tel := fab.Telemetry()
	if got := tel.Counter("faults.injected").Load(); got != 3 {
		t.Errorf("faults.injected = %d, want 3", got)
	}
	if tel.Counter("faults.dropped").Load() != 1 || tel.Counter("faults.failed").Load() != 1 ||
		tel.Counter("faults.delayed").Load() != 1 {
		t.Error("per-verdict counters wrong")
	}
}

func TestRuleProbabilityDeterministic(t *testing.T) {
	run := func(seed int64) (failures int, end sim.Time) {
		env, fab, a, b, inj := testbed(seed)
		inj.AddRule(Rule{Name: "sometimes", Op: rdma.OpWrite, From: Any, To: Any, Prob: 0.3, Fail: true})
		env.Run(func() {
			defer fab.Close()
			dst := b.Register(64)
			src := a.RegisterBuf(make([]byte, 8))
			qp := a.NewQP(b)
			for i := 0; i < 200; i++ {
				if err := qp.WriteSync(src, 0, dst.Addr(0), 8); err != nil {
					failures++
				}
			}
		})
		env.Wait()
		return failures, env.Now()
	}
	f1, t1 := run(42)
	f2, t2 := run(42)
	if f1 != f2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", f1, t1, f2, t2)
	}
	if f1 == 0 || f1 == 200 {
		t.Fatalf("Prob 0.3 fired %d/200 times", f1)
	}
}

func TestFlapLink(t *testing.T) {
	env, fab, a, b, inj := testbed(2)
	inj.FlapLink(a.ID, b.ID, time.Millisecond, time.Millisecond, 0, 0)
	env.Run(func() {
		defer fab.Close()
		dst := b.Register(64)
		src := a.RegisterBuf(make([]byte, 8))
		qp := a.NewQP(b)
		// t=0: down phase.
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); !errors.Is(err, ErrLinkDown) {
			t.Errorf("down phase: err = %v, want ErrLinkDown", err)
		}
		env.Sleep(1100 * time.Microsecond) // into the up phase
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); err != nil {
			t.Errorf("up phase: %v", err)
		}
		env.Sleep(900 * time.Microsecond) // down again
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); !errors.Is(err, ErrLinkDown) {
			t.Errorf("second down phase: err = %v, want ErrLinkDown", err)
		}
	})
	env.Wait()
}

func TestDegradeLinkSlowsTransfers(t *testing.T) {
	measure := func(degrade bool) time.Duration {
		env, fab, a, b, inj := testbed(3)
		if degrade {
			inj.DegradeLink(a.ID, b.ID, 2, 4, 0, 0)
		}
		var d time.Duration
		env.Run(func() {
			defer fab.Close()
			dst := b.Register(1 << 20)
			src := a.Register(1 << 20)
			qp := a.NewQP(b)
			start := env.Now()
			if err := qp.WriteSync(src, 0, dst.Addr(0), 1<<20); err != nil {
				t.Fatal(err)
			}
			d = time.Duration(env.Now() - start)
		})
		env.Wait()
		return d
	}
	healthy, degraded := measure(false), measure(true)
	if degraded < 3*healthy {
		t.Fatalf("degraded 1MB write took %v, healthy %v; want >= 3x", degraded, healthy)
	}
}

func TestCrashNodeBreaksQPsAndRestartForgets(t *testing.T) {
	env, fab, a, b, inj := testbed(4)
	inj.CrashNode(b, sim.Time(time.Millisecond), time.Millisecond)
	env.Run(func() {
		defer fab.Close()
		dst := b.Register(64)
		src := a.RegisterBuf(make([]byte, 8))
		qp := a.NewQP(b)
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); err != nil {
			t.Errorf("pre-crash write: %v", err)
		}
		env.Sleep(1500 * time.Microsecond) // b is down
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); !errors.Is(err, rdma.ErrQPBroken) {
			t.Errorf("crashed peer: err = %v, want ErrQPBroken", err)
		}
		env.Sleep(time.Millisecond) // b restarted with empty regions
		if b.Crashed() {
			t.Fatal("node still crashed after restart window")
		}
		// Pre-crash registrations are gone: the old rkey must not resolve.
		if err := qp.WriteSync(src, 0, dst.Addr(0), 8); err == nil {
			t.Error("write to pre-crash rkey succeeded after restart")
		}
		// Fresh registrations work again.
		dst2 := b.Register(64)
		if err := qp.WriteSync(src, 0, dst2.Addr(0), 8); err != nil {
			t.Errorf("post-restart write to fresh region: %v", err)
		}
	})
	env.Wait()

	tel := fab.Telemetry()
	if tel.Counter("faults.crashes").Load() != 1 || tel.Counter("faults.restarts").Load() != 1 {
		t.Error("crash/restart counters wrong")
	}
}
