package faults

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"testing"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/lease"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// leaseOpts is the small-table Sync-durability configuration shared by the
// lease handoff scenarios (mirrors runCrashRecovery's).
func leaseOpts() engine.Options {
	opts := engine.DLSM()
	opts.MemTableSize = 64 << 10
	opts.TableSize = 64 << 10
	opts.EntrySizeHint = 64
	opts.Durability = engine.DurabilitySync
	opts.WALSize = 1 << 20
	opts.CompactionSite = engine.CompactLocal
	return opts
}

// runLeaseHandoff drives a Sync-durability workload on compute node 1
// holding the shard's write lease, crashes it mid-stream, and hands the
// shard to compute node 2 via lease takeover + recovery. Every
// acknowledged write must survive the handoff.
func runLeaseHandoff(t *testing.T, seed int64) crashOutcome {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	mem := fab.AddNode("mem", 12)
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)
	inj := New(fab, 0)

	var out crashOutcome
	env.Run(func() {
		defer fab.Close()
		srv := memnode.NewServer(mem, memnode.DefaultConfig())
		srv.Start()

		opts := leaseOpts()
		ls, err := srv.OpenLease(lease.SlotKey(opts.WALOwner, opts.WALShard))
		if err != nil {
			t.Errorf("OpenLease: %v", err)
			return
		}
		cl1 := lease.NewClient(cn1, srv.Node(), ls.Addr, 0)
		l1, err := cl1.Acquire()
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		// The fence word is all the engine needs; the client itself is not
		// part of the write path (and node 1 is about to die holding it).
		cl1.Close()
		opts.WALFence = ls.Addr
		opts.WALFenceWord = l1.Word()

		db := engine.Open(cn1, srv, opts)
		inj.CrashNode(cn1, sim.Time(20*time.Millisecond), 0)

		const writers = 4
		acked := make([]map[string]string, writers)
		wg := sim.NewWaitGroup(env)
		for w := 0; w < writers; w++ {
			w := w
			acked[w] = map[string]string{}
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				for i := 0; ; i++ {
					key := fmt.Sprintf("w%d-k%06d", w, i)
					val := fmt.Sprintf("w%d-v%06d", w, i)
					if err := s.Put([]byte(key), []byte(val)); err != nil {
						return
					}
					acked[w][key] = val
				}
			})
		}
		wg.Wait()
		out.memCPU = mem.CPU.Utilization()
		db.Close()

		// Handoff: the new owner deposes the dead holder FIRST (the CAS
		// fences any append the old owner never got acknowledged), then
		// reads the log slot — so recovery observes every acked write.
		cl2 := lease.NewClient(cn2, srv.Node(), ls.Addr, 1)
		defer cl2.Close()
		l2, err := cl2.Takeover()
		if err != nil {
			t.Errorf("Takeover: %v", err)
			return
		}
		if l2.Epoch != l1.Epoch+1 {
			t.Errorf("takeover epoch = %d, want %d", l2.Epoch, l1.Epoch+1)
		}
		opts.WALFenceWord = l2.Word()
		db2, err := engine.Recover(cn2, srv, opts)
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		defer db2.Close()
		out.replayed = db2.Stats().WALReplayed.Load()

		s := db2.NewSession()
		defer s.Close()
		crc := crc32.NewIEEE()
		for w := 0; w < writers; w++ {
			keys := make([]string, 0, len(acked[w]))
			for k := range acked[w] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out.acked += len(keys)
			for _, k := range keys {
				got, err := s.Get([]byte(k))
				if err != nil {
					t.Errorf("acked key %q lost across handoff: %v", k, err)
					continue
				}
				if string(got) != acked[w][k] {
					t.Errorf("acked key %q = %q after handoff, want %q", k, got, acked[w][k])
					continue
				}
				fmt.Fprintf(crc, "%s=%s\n", k, got)
			}
		}
		out.digest = crc.Sum32()
	})
	env.Wait()
	out.endVirtNS = int64(env.Now())
	return out
}

// TestLeaseHandoffCrashSync: the lease holder dies mid-workload; a
// secondary compute node takes the lease over and recovers the shard. Zero
// acknowledged writes are lost, and the whole scenario is deterministic —
// two runs with the same seed are byte-identical.
func TestLeaseHandoffCrashSync(t *testing.T) {
	a := runLeaseHandoff(t, 7)
	if a.acked == 0 {
		t.Fatal("no writes acknowledged before the crash; scenario is vacuous")
	}
	if a.replayed == 0 {
		t.Fatal("handoff replayed nothing; the crash cannot have been mid-MemTable")
	}
	t.Logf("acked=%d replayed=%d digest=%08x end=%v", a.acked, a.replayed, a.digest, time.Duration(a.endVirtNS))

	b := runLeaseHandoff(t, 7)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
}

// TestDeposedOwnerFenced is the fencing regression test: a LIVE primary
// (no crash) is deposed by takeover, and its very next synchronous write
// must fail with ErrFenced rather than acknowledge — while every write it
// acknowledged before the takeover is visible to the new owner.
func TestDeposedOwnerFenced(t *testing.T) {
	env := sim.NewEnvSeed(11)
	fab := rdma.NewFabric(env, rdma.EDR100())
	mem := fab.AddNode("mem", 12)
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)

	env.Run(func() {
		defer fab.Close()
		srv := memnode.NewServer(mem, memnode.DefaultConfig())
		srv.Start()

		opts := leaseOpts()
		ls, err := srv.OpenLease(lease.SlotKey(opts.WALOwner, opts.WALShard))
		if err != nil {
			t.Fatalf("OpenLease: %v", err)
		}
		cl1 := lease.NewClient(cn1, srv.Node(), ls.Addr, 0)
		defer cl1.Close()
		l1, err := cl1.Acquire()
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		opts.WALFence = ls.Addr
		opts.WALFenceWord = l1.Word()

		db1 := engine.Open(cn1, srv, opts)
		s1 := db1.NewSession()
		const n = 200
		for i := 0; i < n; i++ {
			if err := s1.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%06d", i))); err != nil {
				t.Fatalf("pre-takeover put %d: %v", i, err)
			}
		}

		// Depose the live primary and recover on node 2.
		cl2 := lease.NewClient(cn2, srv.Node(), ls.Addr, 1)
		defer cl2.Close()
		l2, err := cl2.Takeover()
		if err != nil {
			t.Fatalf("Takeover: %v", err)
		}
		opts.WALFenceWord = l2.Word()
		db2, err := engine.Recover(cn2, srv, opts)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		defer db2.Close()

		// The deposed owner's post-takeover appends must never acknowledge:
		// its commit fence CAS fails and the write surfaces ErrFenced.
		var fenced bool
		for i := 0; i < 10; i++ {
			err := s1.Put([]byte(fmt.Sprintf("post-%06d", i)), []byte("x"))
			if err == nil {
				continue
			}
			if !errors.Is(err, engine.ErrFenced) {
				t.Fatalf("deposed put error = %v, want ErrFenced", err)
			}
			fenced = true
			break
		}
		if !fenced {
			t.Fatal("deposed owner kept acknowledging writes after takeover")
		}
		s1.Close()
		db1.Close()

		// Everything acknowledged before the takeover is in the new owner.
		s2 := db2.NewSession()
		defer s2.Close()
		for i := 0; i < n; i++ {
			got, err := s2.Get([]byte(fmt.Sprintf("k%06d", i)))
			if err != nil || string(got) != fmt.Sprintf("v%06d", i) {
				t.Fatalf("acked key %d after takeover: %q, %v", i, got, err)
			}
		}
		// The deposed release is refused and leaves the new owner's entry.
		if err := cl1.Release(l1); !errors.Is(err, lease.ErrNotHeld) {
			t.Fatalf("deposed release: %v", err)
		}
	})
	env.Wait()
}
