package faults

import (
	"fmt"
	"hash/crc32"
	"sort"
	"testing"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/repl"
	"dlsm/internal/sim"
)

// smallMemConfig shrinks the memory-node regions to the scale of these
// workloads (a few hundred KB of data) so the scenarios stay fast.
func smallMemConfig() memnode.Config {
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 64 << 20
	cfg.SelfRegionSize = 16 << 20
	cfg.LogRegionSize = 8 << 20
	return cfg
}

// failoverOutcome reduces one memnode-crash failover run to comparable
// values (the crashOutcome pattern) for same-seed determinism checks.
type failoverOutcome struct {
	acked     int    // writes acknowledged before the primary memnode died
	mirrored  int64  // SSTable extents replicated before the crash
	replayed  int64  // entries the promotion replayed from the replica ring
	digest    uint32 // crc32 over every acked key=value read back post-promotion
	endVirtNS int64
}

// replOptions is the shared engine configuration of the replication
// scenarios: quorum-acked factor-2 replication onto srv2 in the given
// SSTable transfer mode.
func replOptions(replica *memnode.Server, mode repl.Mode) engine.Options {
	opts := engine.DLSM()
	opts.MemTableSize = 64 << 10
	opts.TableSize = 64 << 10
	opts.EntrySizeHint = 64
	opts.Durability = engine.DurabilitySync
	opts.WALSize = 1 << 20
	opts.CompactionSite = engine.CompactLocal
	opts.ReplicationFactor = 2
	opts.Replica = replica
	opts.ReplAck = repl.AckQuorum
	opts.ReplMode = mode
	return opts
}

// runWriters drives 4 write sessions until their Puts start failing and
// returns every acknowledged key=value pair. Under quorum ack a nil error
// means the record is in BOTH memory nodes' rings — it must survive the
// loss of either one.
func runWriters(env *sim.Env, db *engine.DB) map[string]string {
	const writers = 4
	acked := make([]map[string]string, writers)
	wg := sim.NewWaitGroup(env)
	for w := 0; w < writers; w++ {
		w := w
		acked[w] = map[string]string{}
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-k%06d", w, i)
				val := fmt.Sprintf("w%d-v%06d", w, i)
				if err := s.Put([]byte(key), []byte(val)); err != nil {
					return
				}
				acked[w][key] = val
			}
		})
	}
	wg.Wait()
	all := map[string]string{}
	for w := range acked {
		for k, v := range acked[w] {
			all[k] = v
		}
	}
	return all
}

// verifyAcked reads every acknowledged write back through db and folds the
// results into a digest; a missing or wrong value fails the test.
func verifyAcked(t *testing.T, db *engine.DB, acked map[string]string) uint32 {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	crc := crc32.NewIEEE()
	for _, k := range keys {
		got, err := s.Get([]byte(k))
		if err != nil {
			t.Errorf("acked key %q lost in failover: %v", k, err)
			continue
		}
		if string(got) != acked[k] {
			t.Errorf("acked key %q = %q after failover, want %q", k, got, acked[k])
			continue
		}
		fmt.Fprintf(crc, "%s=%s\n", k, got)
	}
	return crc.Sum32()
}

// runMemnodeFailover drives a quorum-replicated Sync workload, crashes the
// PRIMARY MEMORY NODE mid-stream, and promotes the replica: Recover on a
// fresh compute node pointed at the replica memory node, replication off.
// Every write acknowledged before the crash must be readable afterwards.
func runMemnodeFailover(t *testing.T, seed int64, mode repl.Mode) failoverOutcome {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	mem1 := fab.AddNode("mem1", 12)
	mem2 := fab.AddNode("mem2", 12)
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)
	inj := New(fab, 0)

	var out failoverOutcome
	env.Run(func() {
		defer fab.Close()
		srv1 := memnode.NewServer(mem1, smallMemConfig())
		srv1.Start()
		srv2 := memnode.NewServer(mem2, smallMemConfig())
		srv2.Start()

		opts := replOptions(srv2, mode)
		db := engine.Open(cn1, srv1, opts)
		inj.CrashNode(mem1, sim.Time(20*time.Millisecond), 0)

		acked := runWriters(env, db)
		out.acked = len(acked)
		out.mirrored = fab.Telemetry().Counter("repl.tables").Load()
		db.Close()

		// Promote: the replica memory node holds the mirrored WAL ring, the
		// checkpoint slot pair and every acked SSTable extent under the same
		// slot key the primary used, so plain Recover pointed at it adopts
		// everything. Replication is off on the promoted side (its peer died).
		optsP := opts
		optsP.ReplicationFactor = 0
		optsP.Replica = nil
		db2, err := engine.Recover(cn2, srv2, optsP)
		if err != nil {
			t.Errorf("promoting replica: %v", err)
			return
		}
		defer db2.Close()
		out.replayed = db2.Stats().WALReplayed.Load()
		out.digest = verifyAcked(t, db2, acked)
	})
	env.Wait()
	out.endVirtNS = int64(env.Now())
	return out
}

// testMemnodeFailover runs the scenario in one transfer mode and checks it
// is non-vacuous, zero-loss and deterministic per seed.
func testMemnodeFailover(t *testing.T, mode repl.Mode) {
	a := runMemnodeFailover(t, 11, mode)
	if a.acked == 0 {
		t.Fatal("no writes acknowledged before the crash; scenario is vacuous")
	}
	if a.mirrored == 0 {
		t.Fatal("no SSTable extents replicated before the crash; the failover never exercised the table mirror")
	}
	if a.replayed == 0 {
		t.Fatal("promotion replayed nothing; the crash cannot have been mid-MemTable")
	}
	t.Logf("%v: acked=%d mirrored=%d replayed=%d digest=%08x end=%v",
		mode, a.acked, a.mirrored, a.replayed, a.digest, time.Duration(a.endVirtNS))

	b := runMemnodeFailover(t, 11, mode)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
}

// TestMemnodeFailoverIndexOnly: zero-loss promotion with index-only SSTable
// replication (the primary clones extents to the replica).
func TestMemnodeFailoverIndexOnly(t *testing.T) {
	testMemnodeFailover(t, repl.IndexOnly)
}

// TestMemnodeFailoverLogReplay: zero-loss promotion with log-replay SSTable
// replication (the compute node re-writes extents to the replica).
func TestMemnodeFailoverLogReplay(t *testing.T) {
	testMemnodeFailover(t, repl.LogReplay)
}

// tornOutcome reduces one torn-publish run for determinism comparison.
type tornOutcome struct {
	acked     int
	tagDelta  uint64 // replica publication tag minus primary's after the crash
	pick      int    // repl.PickSlotPair verdict on the surviving pair
	replayed  int64
	digest    uint32
	endVirtNS int64
}

// readHeader fetches one slot's 64-byte header from compute node cn.
func readHeader(t *testing.T, cn *rdma.Node, srv *memnode.Server, key uint64) []byte {
	t.Helper()
	slot, ok := srv.FindLog(key)
	if !ok {
		t.Fatalf("log slot %#x missing on the memory node", key)
	}
	mr := cn.Register(64)
	defer cn.Deregister(mr)
	qp := cn.NewQP(srv.Node())
	defer qp.Close()
	if err := qp.ReadSync(mr, 0, slot.Addr, 64); err != nil {
		t.Fatalf("reading slot header: %v", err)
	}
	return append([]byte(nil), mr.Bytes(0, 64)...)
}

// runTornPublish crashes the PUBLISHING COMPUTE NODE between the two header
// flips of a replicated checkpoint publish (Options.ReplTornHook fires after
// the replica header lands, before the primary's). The surviving pair must
// be detectably torn — replica exactly one publication tag ahead —
// PickSlotPair must choose the replica side, and recovering from it must
// observe every acknowledged write.
func runTornPublish(t *testing.T, seed int64) tornOutcome {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	mem1 := fab.AddNode("mem1", 12)
	mem2 := fab.AddNode("mem2", 12)
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)

	var out tornOutcome
	env.Run(func() {
		defer fab.Close()
		srv1 := memnode.NewServer(mem1, smallMemConfig())
		srv1.Start()
		srv2 := memnode.NewServer(mem2, smallMemConfig())
		srv2.Start()

		opts := replOptions(srv2, repl.IndexOnly)
		publishes := 0
		opts.ReplTornHook = func() {
			publishes++
			if publishes == 3 {
				// The replica header for publish #3 just landed; dying here
				// leaves the primary header one publication behind.
				cn1.Crash()
			}
		}
		db := engine.Open(cn1, srv1, opts)
		acked := runWriters(env, db)
		out.acked = len(acked)
		db.Close()

		key := engine.WALSlotKey(opts)
		praw := readHeader(t, cn2, srv1, key)
		rraw := readHeader(t, cn2, srv2, key)
		ph, err := repl.DecodeReplicaSlot(praw)
		if err != nil {
			t.Errorf("primary header: %v", err)
			return
		}
		rh, err := repl.DecodeReplicaSlot(rraw)
		if err != nil {
			t.Errorf("replica header: %v", err)
			return
		}
		if rh.Epoch != ph.Epoch {
			t.Errorf("slot epochs diverged: primary %d, replica %d", ph.Epoch, rh.Epoch)
		}
		out.tagDelta = rh.Tag - ph.Tag
		out.pick = repl.PickSlotPair(ph, rh)

		// Recover from the side the arbitration picked (the replica).
		optsP := opts
		optsP.ReplicationFactor = 0
		optsP.Replica = nil
		optsP.ReplTornHook = nil
		db2, err := engine.Recover(cn2, srv2, optsP)
		if err != nil {
			t.Errorf("recovering from the torn pair's replica side: %v", err)
			return
		}
		defer db2.Close()
		out.replayed = db2.Stats().WALReplayed.Load()
		out.digest = verifyAcked(t, db2, acked)
	})
	env.Wait()
	out.endVirtNS = int64(env.Now())
	return out
}

// TestTornCheckpointPublish: a compute crash between the two header flips of
// a replicated publish leaves the pair torn by exactly one tag; PickSlotPair
// resolves it to the replica side and recovery from there loses nothing.
// Deterministic per seed.
func TestTornCheckpointPublish(t *testing.T) {
	a := runTornPublish(t, 3)
	if a.acked == 0 {
		t.Fatal("no writes acknowledged before the torn publish; scenario is vacuous")
	}
	if a.tagDelta != 1 {
		t.Fatalf("replica tag is %d ahead of primary, want exactly 1 (torn dual-flip)", a.tagDelta)
	}
	if a.pick != 1 {
		t.Fatalf("PickSlotPair chose side %d, want 1 (the replica, one publish ahead)", a.pick)
	}
	t.Logf("acked=%d tagDelta=%d replayed=%d digest=%08x end=%v",
		a.acked, a.tagDelta, a.replayed, a.digest, time.Duration(a.endVirtNS))

	b := runTornPublish(t, 3)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
}
