package faults

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
	"testing"
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/shard"
	"dlsm/internal/sim"
)

// migOutcome reduces one mid-migration-crash run to comparable facts; two
// runs with the same seed must produce identical outcomes.
type migOutcome struct {
	acked     int
	digest    uint32
	migFailed bool
	endVirtNS int64
}

func migKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// runMigrationCrash drives a λ=2 primary across two memory nodes, starts a
// hot-range migration of shard 1 to the other server with writers running,
// and crashes the compute node while the migration is in flight — before
// the routing flip, so the original geometry still names every WAL slot
// that acknowledged a write. A second compute node then takes over the
// leases and recovers; every acknowledged write must be present.
func runMigrationCrash(t *testing.T, seed int64) migOutcome {
	t.Helper()
	env := sim.NewEnvSeed(seed)
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn1 := fab.AddNode("compute1", 8)
	cn2 := fab.AddNode("compute2", 8)
	cfg := memnode.DefaultConfig()
	cfg.ComputeRegionSize = 128 << 20
	cfg.SelfRegionSize = 128 << 20
	var servers []*memnode.Server
	for i := 0; i < 2; i++ {
		mn := fab.AddNode(fmt.Sprintf("mem%d", i), 12)
		srv := memnode.NewServer(mn, cfg)
		srv.Start()
		servers = append(servers, srv)
	}
	inj := New(fab, 0)

	var out migOutcome
	env.Run(func() {
		defer fab.Close()
		const n = 4000
		opts := leaseOpts()
		bounds := shard.UniformBoundaries(2, n, migKey)
		db, err := shard.NewPrimary(cn1, servers, 2, bounds, opts, 0)
		if err != nil {
			t.Errorf("NewPrimary: %v", err)
			return
		}

		// Preload both shards; every preload write is acknowledged.
		acked := map[string]string{}
		pre := db.NewSession()
		for i := 0; i < n; i++ {
			k, v := migKey(i), fmt.Sprintf("pre-%08d", i)
			if err := pre.Put(k, []byte(v)); err != nil {
				t.Errorf("preload Put: %v", err)
				return
			}
			acked[string(k)] = v
		}
		pre.Close()

		// Crash lands shortly after the migration starts — inside the
		// clone/tail window, before the routing flip.
		inj.CrashNode(cn1, env.Now()+sim.Time(500*time.Microsecond), 0)

		const writers = 3
		wacked := make([]map[string]string, writers)
		wg := sim.NewWaitGroup(env)
		for w := 0; w < writers; w++ {
			w := w
			wacked[w] = map[string]string{}
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				for j := 0; ; j++ {
					// Fresh unique keys spread over the whole keyspace (so
					// both the moving and the staying shard take writes);
					// never overwriting an earlier acked key keeps "acked ⇒
					// present with this exact value" assertable.
					i := (j * 2654435761) % n
					key := fmt.Sprintf("%s.w%d.%06d", migKey(i), w, j)
					val := fmt.Sprintf("w%d-v%06d", w, j)
					if err := s.Put([]byte(key), []byte(val)); err != nil {
						return
					}
					wacked[w][key] = val
				}
			})
		}

		migDone := false
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			err := db.MigrateShard(db.ShardID(1), 0)
			out.migFailed = err != nil
			migDone = true
		})
		wg.Wait()
		if !migDone {
			t.Error("migration goroutine never finished")
		}
		db.Close()

		for w := 0; w < writers; w++ {
			for k, v := range wacked[w] {
				acked[k] = v
			}
		}

		// Takeover from the second compute node with the original geometry
		// (the routing table is compute-local state; a pre-flip crash means
		// the original geometry still covers every acked write).
		db2, err := shard.Takeover(cn2, servers, 2, bounds, opts, 1)
		if err != nil {
			t.Errorf("Takeover: %v", err)
			return
		}
		defer db2.Close()

		keys := make([]string, 0, len(acked))
		for k := range acked {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out.acked = len(keys)
		s := db2.NewSession()
		defer s.Close()
		crc := crc32.NewIEEE()
		for _, k := range keys {
			got, err := s.Get([]byte(k))
			if err != nil {
				t.Errorf("acked key %q lost across migration crash: %v", k, err)
				continue
			}
			if !bytes.Equal(got, []byte(acked[k])) {
				t.Errorf("acked key %q = %q, want %q", k, got, acked[k])
				continue
			}
			fmt.Fprintf(crc, "%s=%s\n", k, got)
		}
		out.digest = crc.Sum32()
	})
	env.Wait()
	out.endVirtNS = int64(env.Now())
	return out
}

// TestMigrationCrashZeroLoss: the compute node dies mid-migration (after
// the clone started, before the routing flip); takeover from a second
// compute node recovers every acknowledged write, and the whole scenario
// is deterministic — two runs with the same seed are identical.
func TestMigrationCrashZeroLoss(t *testing.T) {
	a := runMigrationCrash(t, 17)
	if !a.migFailed {
		t.Fatal("migration completed before the crash; the scenario needs a mid-flight crash (retune the crash delay)")
	}
	if a.acked == 0 {
		t.Fatal("no writes acknowledged; scenario is vacuous")
	}
	t.Logf("acked=%d digest=%08x end=%v", a.acked, a.digest, time.Duration(a.endVirtNS))

	b := runMigrationCrash(t, 17)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
}
