package readahead

import (
	"bytes"
	"fmt"
	"testing"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// rig is a two-node fabric with a patterned remote region, run inside the
// simulation so QP traffic advances the virtual clock.
type rig struct {
	env  *sim.Env
	cn   *rdma.Node
	mn   *rdma.Node
	base rdma.RemoteAddr
	data []byte
	pool *Pool
	m    Metrics
}

func withRig(t *testing.T, size, poolBuf int, fn func(r *rig)) {
	t.Helper()
	env := sim.NewEnv()
	fab := rdma.NewFabric(env, rdma.EDR100())
	cn := fab.AddNode("compute", 4)
	mn := fab.AddNode("memory", 4)
	env.Run(func() {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		mr := mn.Register(size)
		copy(mr.Bytes(0, size), data)
		reg := telemetry.NewRegistry(nil)
		fn(&rig{
			env: env, cn: cn, mn: mn,
			base: mr.Addr(0), data: data,
			pool: NewPool(cn, poolBuf),
			m: Metrics{
				Inflight:        reg.Gauge("inflight"),
				StallNS:         reg.Counter("stall"),
				BytesPrefetched: reg.Counter("prefetched"),
				BytesWasted:     reg.Counter("wasted"),
			},
		})
		fab.Close()
	})
	env.Wait()
}

// sched builds a depth-deep scheduler over the rig's region with simple
// size-capped chunk planning (requests stay entry-aligned in these tests).
func (r *rig) sched(depth, minW, maxW int) *Scheduler {
	size := len(r.data)
	return New(Config{
		QP:        r.cn.NewQP(r.mn),
		OwnQP:     true,
		Base:      r.base,
		Size:      size,
		Pool:      r.pool,
		Depth:     depth,
		MinWindow: minW,
		MaxWindow: maxW,
		Metrics:   r.m,
	}, func(off, want int) int {
		end := off + want
		if end > size {
			end = size
		}
		return end
	})
}

func TestPoolRecyclesFIFO(t *testing.T) {
	withRig(t, 1<<10, 8<<10, func(r *rig) {
		a, ap := r.pool.Get(4 << 10)
		b, bp := r.pool.Get(4 << 10)
		if !ap || !bp {
			t.Fatal("pool-class buffers not pooled")
		}
		r.pool.Put(a, ap)
		r.pool.Put(b, bp)
		c, _ := r.pool.Get(4 << 10)
		d, _ := r.pool.Get(4 << 10)
		if c != a || d != b {
			t.Fatal("pool did not recycle FIFO")
		}
		if alloc, _ := r.pool.Stats(); alloc != 2 {
			t.Fatalf("allocated = %d, want 2", alloc)
		}
		// Oversized chunks bypass the pool entirely.
		big, pooled := r.pool.Get(64 << 10)
		if pooled {
			t.Fatal("oversized buffer claimed to be pooled")
		}
		if big.Size() < 64<<10 {
			t.Fatalf("oversized buffer too small: %d", big.Size())
		}
		r.pool.Put(big, pooled)
		if alloc, _ := r.pool.Stats(); alloc != 2 {
			t.Fatalf("oversized Get changed pooled count: %d", alloc)
		}
	})
}

// Sequential consumption must deliver exact bytes, keep at most Depth
// fetches (and so at most Depth+1 buffers) alive, and prefetch every byte
// exactly once.
func TestSchedulerSequentialDelivery(t *testing.T) {
	const size, entry = 64 << 10, 64
	withRig(t, size, 4<<10, func(r *rig) {
		s := r.sched(4, 1<<10, 4<<10)
		for off := 0; off < size; off += entry {
			b, lo, err := s.ReadAt(off, off+entry)
			if err != nil {
				t.Fatalf("ReadAt(%d): %v", off, err)
			}
			if got := b[off-lo : off-lo+entry]; !bytes.Equal(got, r.data[off:off+entry]) {
				t.Fatalf("bytes mismatch at %d", off)
			}
			if g := r.m.Inflight.Load(); g < 0 || g > 4 {
				t.Fatalf("inflight gauge out of range: %d", g)
			}
		}
		s.Close()
		if got := r.m.BytesPrefetched.Load(); got != size {
			t.Fatalf("bytes_prefetched = %d, want %d", got, size)
		}
		if wasted := r.m.BytesWasted.Load(); wasted != 0 {
			t.Fatalf("sequential scan wasted %d bytes", wasted)
		}
		if alloc, _ := r.pool.Stats(); alloc > 5 {
			t.Fatalf("pool allocated %d buffers for depth 4", alloc)
		}
	})
}

// The adaptive window starts at MinWindow, doubles per chunk on
// sequential advance, and resets to MinWindow on a seek outside the
// planned run.
func TestSchedulerAdaptiveWindow(t *testing.T) {
	const size = 256 << 10
	withRig(t, size, 64<<10, func(r *rig) {
		var wants []int
		s := New(Config{
			QP: r.cn.NewQP(r.mn), OwnQP: true, Base: r.base, Size: size,
			Pool: r.pool, Depth: 3, MinWindow: 1 << 10, MaxWindow: 8 << 10,
			Metrics: r.m,
		}, func(off, want int) int {
			wants = append(wants, want)
			end := off + want
			if end > size {
				end = size
			}
			return end
		})
		if _, _, err := s.ReadAt(0, 64); err != nil {
			t.Fatal(err)
		}
		// The covering chunk plus the Depth refills all post at MinWindow:
		// the initial burst of a deep pipeline stays small.
		want := []int{1 << 10, 1 << 10, 1 << 10, 1 << 10}
		if fmt.Sprint(wants) != fmt.Sprint(want) {
			t.Fatalf("initial wants = %v, want %v", wants, want)
		}
		// Each sequential advance onto the pipeline head doubles the
		// window for the chunk the refill posts.
		wants = nil
		if _, _, err := s.ReadAt(1<<10, 1<<10+64); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.ReadAt(2<<10, 2<<10+64); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(wants) != fmt.Sprint([]int{2 << 10, 4 << 10}) {
			t.Fatalf("advance wants = %v, want [2048 4096]", wants)
		}
		// Seek far outside the planned run: window must reset.
		wants = nil
		if _, _, err := s.ReadAt(128<<10, 128<<10+64); err != nil {
			t.Fatal(err)
		}
		if len(wants) == 0 || wants[0] != 1<<10 {
			t.Fatalf("post-seek wants = %v, want leading %d", wants, 1<<10)
		}
		if r.m.BytesWasted.Load() == 0 {
			t.Fatal("seek abandoned no bytes")
		}
		s.Close()
	})
}

// Close with fetches still in flight must return every buffer to the pool
// (via the background reaper), zero the inflight gauge and count the
// abandoned bytes as wasted.
func TestSchedulerCloseDrainsInflight(t *testing.T) {
	const size = 256 << 10
	withRig(t, size, 8<<10, func(r *rig) {
		s := r.sched(4, 8<<10, 8<<10)
		if _, _, err := s.ReadAt(0, 64); err != nil {
			t.Fatal(err)
		}
		if r.m.Inflight.Load() == 0 {
			t.Fatal("pipeline did not fill")
		}
		s.Close()
		s.Close() // idempotent
		if _, _, err := s.ReadAt(64, 128); err != ErrClosed {
			t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
		}
		// Let the reaper drain the in-flight completions.
		r.env.Sleep(sim.Duration(1 << 30))
		if g := r.m.Inflight.Load(); g != 0 {
			t.Fatalf("inflight gauge after drain = %d", g)
		}
		alloc, free := r.pool.Stats()
		if alloc != free {
			t.Fatalf("buffers leaked: allocated %d, free %d", alloc, free)
		}
		if r.m.BytesWasted.Load() == 0 {
			t.Fatal("abandoned fetches not counted as wasted")
		}
	})
}

// Deeper pipelines must finish a full sequential consumption of the region
// in strictly less virtual time than depth 1: wire time overlaps the gaps
// between requests.
func TestSchedulerDepthOverlaps(t *testing.T) {
	const size, entry = 512 << 10, 64
	elapsed := func(depth int) sim.Duration {
		var d sim.Duration
		withRig(t, size, 16<<10, func(r *rig) {
			s := r.sched(depth, 16<<10, 16<<10)
			t0 := r.env.Now()
			for off := 0; off < size; off += entry {
				if _, _, err := s.ReadAt(off, off+entry); err != nil {
					t.Fatalf("depth %d ReadAt(%d): %v", depth, off, err)
				}
			}
			d = sim.Duration(r.env.Now() - t0)
			s.Close()
		})
		return d
	}
	d1, d4 := elapsed(1), elapsed(4)
	if d4 >= d1 {
		t.Fatalf("depth 4 (%v) not faster than depth 1 (%v)", d4, d1)
	}
}
