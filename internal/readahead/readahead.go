// Package readahead implements pipelined scan prefetching: a per-iterator
// scheduler that keeps a configurable depth of chunk fetches in flight on
// a queue pair, mirroring the flush pipeline's multi-buffer design
// (internal/flush) on the read path. dLSM §VI sells byte-addressable
// SSTables partly on multi-MB scan prefetches; with one outstanding fetch
// the scan still stalls a full RDMA round trip per chunk — exactly the
// idle bubble §X-C's multi-buffer flush machinery removes on the write
// path. Posting depth chunks back-to-back pipelines their wire times (the
// QP reserves wire time at post), so the network works while the iterator
// burns CPU on parsing.
//
// Determinism: the scheduler spawns no entities of its own on the hot
// path — asynchrony comes entirely from the QP's existing post/completion
// machinery, which is already part of the deterministic cooperative
// scheduler. Only Close of an iterator with fetches still in flight
// spawns one reaper entity to drain them.
package readahead

import (
	"errors"
	"sync"

	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// DefaultMinWindow is the adaptive window's starting chunk size — about
// one "entry page" of the paper's 420-byte entries. A seek resets the
// window here so point-lookup-shaped iterators don't over-fetch.
const DefaultMinWindow = 4 << 10

// ErrClosed is returned by ReadAt on a closed scheduler.
var ErrClosed = errors.New("readahead: scheduler closed")

// Metrics are the scan-prefetch telemetry handles. All fields may be nil
// (nil handles are inert).
type Metrics struct {
	Inflight        *telemetry.Gauge   // scan.prefetch_inflight
	StallNS         *telemetry.Counter // scan.stall_ns: virtual ns blocked on fetches
	BytesPrefetched *telemetry.Counter // scan.bytes_prefetched
	BytesWasted     *telemetry.Counter // scan.bytes_wasted: fetched but never consumed
}

// Pool recycles registered prefetch buffers FIFO across a DB's scan
// iterators, like the flush pipeline's free list: registration
// (ibv_reg_mr) is expensive, so buffers are registered once and reused.
// Chunks larger than the pool class (a single entry bigger than the max
// window) get a dedicated registration, dropped on release.
type Pool struct {
	node    *rdma.Node
	bufSize int

	mu        sync.Mutex
	free      []*rdma.MemoryRegion
	allocated int
	closed    bool
}

// NewPool creates a pool of bufSize-byte buffers registered on node.
func NewPool(node *rdma.Node, bufSize int) *Pool {
	if bufSize < DefaultMinWindow {
		bufSize = DefaultMinWindow
	}
	return &Pool{node: node, bufSize: bufSize}
}

// BufSize is the pooled buffer class in bytes.
func (p *Pool) BufSize() int { return p.bufSize }

// Get returns a registered buffer of at least n bytes and whether it came
// from (and must return to) the pool.
func (p *Pool) Get(n int) (mr *rdma.MemoryRegion, pooled bool) {
	if n > p.bufSize {
		return p.node.Register(n), false
	}
	p.mu.Lock()
	if len(p.free) > 0 {
		mr = p.free[0]
		p.free = p.free[1:]
		p.mu.Unlock()
		return mr, true
	}
	p.allocated++
	p.mu.Unlock()
	return p.node.Register(p.bufSize), true
}

// Put releases a buffer obtained from Get.
func (p *Pool) Put(mr *rdma.MemoryRegion, pooled bool) {
	if mr == nil {
		return
	}
	if !pooled {
		p.node.Deregister(mr)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.node.Deregister(mr)
		return
	}
	p.free = append(p.free, mr)
	p.mu.Unlock()
}

// Stats reports how many pooled buffers exist and how many are free.
// allocated == free means every scan iterator has returned its buffers.
func (p *Pool) Stats() (allocated, free int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated, len(p.free)
}

// Close deregisters the free buffers; buffers still out are deregistered
// as they come back.
func (p *Pool) Close() {
	p.mu.Lock()
	free := p.free
	p.free, p.closed = nil, true
	p.mu.Unlock()
	for _, mr := range free {
		p.node.Deregister(mr)
	}
}

// Config wires a Scheduler to one table's data region.
type Config struct {
	QP    *rdma.QP        // fetch queue pair; must carry no other traffic
	OwnQP bool            // Close the QP once all fetches have drained
	Base  rdma.RemoteAddr // table data region
	Size  int             // data region length in bytes
	Pool  *Pool           // buffer source
	Depth int             // max in-flight chunk fetches (the pipeline depth)

	// MinWindow/MaxWindow bound the adaptive chunk size: the first fetch
	// after a seek is MinWindow bytes, doubling per chunk up to MaxWindow
	// on sequential advance. Defaults: DefaultMinWindow / MinWindow.
	MinWindow int
	MaxWindow int

	Metrics Metrics
}

// chunk is one buffer's residency: table bytes [lo, hi).
type chunk struct {
	mr     *rdma.MemoryRegion
	lo, hi int
	pooled bool
}

// Scheduler pipelines chunk fetches for one table iterator. It is not
// safe for concurrent use — iterators are thread-local, like their QPs.
type Scheduler struct {
	cfg  Config
	env  *sim.Env
	plan func(off, want int) int

	window   int     // next chunk size (adaptive)
	next     int     // next planned fetch offset; -1 = nothing planned
	cur      chunk   // resident chunk the consumer reads from
	inflight []chunk // posted fetches, FIFO (completion order)
	closed   bool
	err      error
}

// New creates a scheduler. plan(off, want) returns the end offset of the
// chunk starting at off spanning at least want bytes, aligned so no entry
// or block straddles two chunks (sstable.Reader supplies this from its
// index); it must make progress (end > off) for every off < Size.
func New(cfg Config, plan func(off, want int) int) *Scheduler {
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = DefaultMinWindow
	}
	if cfg.MaxWindow < cfg.MinWindow {
		cfg.MaxWindow = cfg.MinWindow
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	return &Scheduler{
		cfg:    cfg,
		env:    cfg.QP.Node().Fabric().Env(),
		plan:   plan,
		window: cfg.MinWindow,
		next:   -1,
	}
}

// ReadAt makes [lo, hi) resident and returns the covering chunk plus its
// start offset; the slice is valid until the next ReadAt or Close. A
// request inside the pipelined run consumes the pipeline head; a request
// outside it (a seek) resets the adaptive window and replans from lo.
func (s *Scheduler) ReadAt(lo, hi int) ([]byte, int, error) {
	if s.err != nil {
		return nil, 0, s.err
	}
	if s.closed {
		return nil, 0, ErrClosed
	}
	if hi <= lo {
		return nil, lo, nil
	}
	if s.cur.mr != nil && lo >= s.cur.lo && hi <= s.cur.hi {
		s.fill()
		return s.slice(), s.cur.lo, nil
	}

	// Drop pipeline heads the consumer skipped entirely (a seek within
	// the planned run, or chunks whose every entry was invisible).
	hit := -1
	for i, c := range s.inflight {
		if lo >= c.lo && hi <= c.hi {
			hit = i
			break
		}
	}
	if hit == 0 {
		// Sequential advance onto the pipeline head: the consumer is
		// keeping up, so widen future chunks. Growing here — rather than
		// per submission — keeps a deep pipeline's initial burst at
		// Depth x MinWindow, so short scans abandon little.
		s.grow()
	}
	if hit < 0 {
		// Miss: the request is outside everything posted. Reset the
		// window and replan from lo. The covering chunk is posted FIRST —
		// appending behind the abandoned fetches keeps QP FIFO order
		// while its wire time overlaps their (already paid) drain.
		abandoned := len(s.inflight)
		s.window = s.cfg.MinWindow
		s.next = lo
		s.submitOne(hi - lo)
		hit = abandoned
	}
	for i := 0; i < hit; i++ {
		c := s.awaitHead()
		s.cfg.Metrics.BytesWasted.Add(int64(c.hi - c.lo))
		s.release(c)
	}
	s.release(s.cur)
	s.cur = s.awaitHead()
	if s.err != nil {
		return nil, 0, s.err
	}
	s.fill()
	return s.slice(), s.cur.lo, nil
}

// fill tops the pipeline up to Depth outstanding fetches.
func (s *Scheduler) fill() {
	for len(s.inflight) < s.cfg.Depth && s.next >= 0 && s.next < s.cfg.Size {
		s.submitOne(0)
	}
}

// submitOne posts the next chunk fetch of at least minSpan bytes at the
// current window size.
func (s *Scheduler) submitOne(minSpan int) {
	want := s.window
	if minSpan > want {
		want = minSpan
	}
	end := s.plan(s.next, want)
	if end <= s.next { // defensive: a non-advancing plan would spin
		s.next = s.cfg.Size
		return
	}
	n := end - s.next
	mr, pooled := s.cfg.Pool.Get(n)
	s.cfg.QP.Read(mr, 0, s.cfg.Base.Add(s.next), n, 0)
	s.cfg.Metrics.BytesPrefetched.Add(int64(n))
	s.cfg.Metrics.Inflight.Add(1)
	s.inflight = append(s.inflight, chunk{mr: mr, lo: s.next, hi: end, pooled: pooled})
	s.next = end
}

// grow doubles the adaptive window up to MaxWindow.
func (s *Scheduler) grow() {
	s.window *= 2
	if s.window > s.cfg.MaxWindow {
		s.window = s.cfg.MaxWindow
	}
}

// awaitHead blocks until the oldest in-flight fetch completes and pops
// it. Time spent blocked is the pipeline's stall time.
func (s *Scheduler) awaitHead() chunk {
	t0 := s.env.Now()
	comp := s.cfg.QP.WaitCQ()
	if d := s.env.Now() - t0; d > 0 {
		s.cfg.Metrics.StallNS.Add(int64(d))
	}
	s.cfg.Metrics.Inflight.Add(-1)
	c := s.inflight[0]
	s.inflight = s.inflight[1:]
	if comp.Err != nil && s.err == nil {
		s.err = comp.Err
	}
	return c
}

func (s *Scheduler) slice() []byte {
	return s.cur.mr.Bytes(0, s.cur.hi-s.cur.lo)
}

func (s *Scheduler) release(c chunk) {
	s.cfg.Pool.Put(c.mr, c.pooled)
}

// Close releases the scheduler's buffers; it is idempotent and never
// blocks. Fetches still in flight cannot be cancelled — the simulated NIC
// (like a real one) writes into their buffers at wire-completion time —
// so a reaper entity drains them, counts their bytes as wasted, returns
// the buffers to the pool, and only then closes an owned QP. Without this
// a mid-scan Close would leak registered MRs and race the completing
// fetch's buffer write.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.release(s.cur)
	s.cur = chunk{}
	pending := s.inflight
	s.inflight = nil
	if len(pending) == 0 {
		if s.cfg.OwnQP {
			s.cfg.QP.Close()
		}
		return
	}
	qp, pool, m, own := s.cfg.QP, s.cfg.Pool, s.cfg.Metrics, s.cfg.OwnQP
	s.env.Go(func() {
		for _, c := range pending {
			qp.WaitCQ()
			m.Inflight.Add(-1)
			m.BytesWasted.Add(int64(c.hi - c.lo))
			pool.Put(c.mr, c.pooled)
		}
		if own {
			qp.Close()
		}
	})
}
