package rdma

import (
	"encoding/binary"
	"errors"
	"sync"

	"dlsm/internal/sim"
)

// OpCode identifies an RDMA verb.
type OpCode int

// Verbs supported by the fabric.
const (
	OpRead OpCode = iota
	OpWrite
	OpWriteImm
	OpSend
	OpFetchAdd
	OpCompareSwap
)

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpSend:
		return "SEND"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCompareSwap:
		return "CMP_SWAP"
	}
	return "UNKNOWN"
}

// Completion is a work-completion entry polled from a CQ.
type Completion struct {
	Ctx     uint64 // caller-supplied work-request id
	Op      OpCode
	N       int    // bytes transferred
	Old     uint64 // prior value, for atomics
	Swapped bool   // CAS success
	Err     error
}

// ErrQPClosed is reported by operations on a closed queue pair.
var ErrQPClosed = errors.New("rdma: queue pair closed")

// ErrQPBroken is reported by operations whose peer node has crashed: the
// connection is torn down and every posted or in-flight work request
// completes with this error instead of touching remote memory.
var ErrQPBroken = errors.New("rdma: queue pair broken (peer crashed)")

type workRequest struct {
	op       OpCode
	lmr      *MemoryRegion // local buffer (READ dst / WRITE src)
	loff, n  int
	payload  []byte // SEND payload (owned by the request)
	remote   RemoteAddr
	imm      uint32
	endpoint string // SEND target endpoint
	add      uint64 // FETCH_ADD operand
	expect   uint64 // CAS operands
	swap     uint64
	ctx      uint64
	done     sim.Time   // wire completion, scheduled at post time
	dir      *direction // link direction carrying the data (telemetry)
	fault    Fault      // injected verdict, decided at post time
	peerGen  uint64     // peer crash generation at post time
}

// QP is a queue pair: an ordered send queue from one node to a peer plus a
// private completion queue. Operations are posted asynchronously; wire time
// is reserved at post (so back-to-back posts pipeline their latencies, as a
// real NIC does) and completions surface in FIFO order.
type QP struct {
	node *Node
	peer *Node
	env  *sim.Env

	mu     sync.Mutex
	closed bool
	wrs    *sim.Chan[workRequest]
	cq     *sim.Chan[Completion]
	last   sim.Time // completion time of the most recently posted WR
}

func newQP(n *Node, peer *Node) *QP {
	qp := &QP{
		node: n,
		peer: peer,
		env:  n.env(),
		wrs:  sim.NewChan[workRequest](n.env(), 4096),
		cq:   sim.NewChan[Completion](n.env(), 4096),
	}
	n.env().Go(qp.worker)
	return qp
}

// Node returns the owning node.
func (q *QP) Node() *Node { return q.node }

// Peer returns the remote node.
func (q *QP) Peer() *Node { return q.peer }

// post schedules wire time for the request and hands it to the worker.
// Posting on a closed QP is not a crash: racing writers during shutdown
// receive an ErrQPClosed completion instead (real NICs flush the send
// queue with error completions when a QP leaves the RTS state).
func (q *QP) post(wr workRequest, bytes int, twoSided bool, atomic bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		// TrySend: if the CQ is full (or already torn down) the flush
		// completion is dropped; pollers still observe ErrQPClosed once
		// the worker closes the CQ.
		q.cq.TrySend(Completion{Ctx: wr.ctx, Op: wr.op, Err: ErrQPClosed})
		return
	}
	now := q.env.Now()
	wr.peerGen = q.peer.crashGeneration()
	if fi := q.node.fabric.injector(); fi != nil {
		wr.fault = fi.OnOp(wr.op, q.node.ID, q.peer.ID, bytes)
	}
	var done sim.Time
	switch {
	case atomic:
		l, d := q.node.fabric.linkFor(q.node.ID, q.peer.ID)
		latM, _ := q.linkFactors(q.node.ID, q.peer.ID, now)
		done = l.scheduleAtomic(d, now, latM)
		wr.dir = d
	case wr.op == OpRead:
		// Data flows peer -> node: bandwidth is consumed on that direction.
		l, d := q.node.fabric.linkFor(q.peer.ID, q.node.ID)
		latM, bwM := q.linkFactors(q.peer.ID, q.node.ID, now)
		done = l.schedule(d, now, bytes, false, latM, bwM)
		wr.dir = d
	default:
		l, d := q.node.fabric.linkFor(q.node.ID, q.peer.ID)
		latM, bwM := q.linkFactors(q.node.ID, q.peer.ID, now)
		done = l.schedule(d, now, bytes, twoSided, latM, bwM)
		wr.dir = d
	}
	done += sim.Time(wr.fault.Delay)
	wr.dir.depth.Add(1)
	// FIFO completion ordering within one QP.
	if done < q.last {
		done = q.last
	}
	q.last = done
	wr.done = done
	q.mu.Unlock()
	q.wrs.Send(wr)
}

// linkFactors queries the fault plane's degradation multipliers for the
// from->to direction, defaulting to a healthy link.
func (q *QP) linkFactors(from, to int, now sim.Time) (latMult, bwMult float64) {
	if fi := q.node.fabric.injector(); fi != nil {
		return fi.LinkFactors(from, to, now)
	}
	return 1, 1
}

// Read posts a one-sided read of n bytes from remote into (lmr, loff).
func (q *QP) Read(lmr *MemoryRegion, loff int, remote RemoteAddr, n int, ctx uint64) {
	q.post(workRequest{op: OpRead, lmr: lmr, loff: loff, n: n, remote: remote, ctx: ctx}, n, false, false)
}

// Write posts a one-sided write of n bytes from (lmr, loff) to remote.
func (q *QP) Write(lmr *MemoryRegion, loff int, remote RemoteAddr, n int, ctx uint64) {
	q.post(workRequest{op: OpWrite, lmr: lmr, loff: loff, n: n, remote: remote, ctx: ctx}, n, false, false)
}

// WriteImm is Write plus an immediate value delivered to the peer's
// immediate queue, waking its thread notifier.
func (q *QP) WriteImm(lmr *MemoryRegion, loff int, remote RemoteAddr, n int, imm uint32, ctx uint64) {
	q.post(workRequest{op: OpWriteImm, lmr: lmr, loff: loff, n: n, remote: remote, imm: imm, ctx: ctx}, n, false, false)
}

// Send posts a two-sided send of payload to the peer's named endpoint.
// The payload is copied at post time.
func (q *QP) Send(endpoint string, payload []byte, ctx uint64) {
	p := append([]byte(nil), payload...)
	q.post(workRequest{op: OpSend, payload: p, n: len(p), endpoint: endpoint, ctx: ctx}, len(p), true, false)
}

// FetchAdd posts an 8-byte remote fetch-and-add; the completion's Old field
// carries the prior value.
func (q *QP) FetchAdd(remote RemoteAddr, add uint64, ctx uint64) {
	q.post(workRequest{op: OpFetchAdd, remote: remote, add: add, ctx: ctx, n: 8}, 8, false, true)
}

// CompareSwap posts an 8-byte remote compare-and-swap.
func (q *QP) CompareSwap(remote RemoteAddr, expect, swap uint64, ctx uint64) {
	q.post(workRequest{op: OpCompareSwap, remote: remote, expect: expect, swap: swap, ctx: ctx, n: 8}, 8, false, true)
}

// PollCQ returns one completion if available without blocking.
func (q *QP) PollCQ() (Completion, bool) { return q.cq.TryRecv() }

// WaitCQ parks the entity until a completion is available. A closed QP
// yields a completion with Err = ErrQPClosed.
func (q *QP) WaitCQ() Completion {
	c, ok := q.cq.Recv()
	if !ok {
		return Completion{Err: ErrQPClosed}
	}
	return c
}

// ReadSync performs a blocking one-sided read. The QP must have no other
// outstanding requests (thread-local QP discipline, as in the paper).
func (q *QP) ReadSync(lmr *MemoryRegion, loff int, remote RemoteAddr, n int) error {
	q.Read(lmr, loff, remote, n, 0)
	return q.WaitCQ().Err
}

// WriteSync performs a blocking one-sided write.
func (q *QP) WriteSync(lmr *MemoryRegion, loff int, remote RemoteAddr, n int) error {
	q.Write(lmr, loff, remote, n, 0)
	return q.WaitCQ().Err
}

// SendSync performs a blocking two-sided send.
func (q *QP) SendSync(endpoint string, payload []byte) error {
	q.Send(endpoint, payload, 0)
	return q.WaitCQ().Err
}

// FetchAddSync performs a blocking fetch-and-add, returning the old value.
func (q *QP) FetchAddSync(remote RemoteAddr, add uint64) (uint64, error) {
	q.FetchAdd(remote, add, 0)
	c := q.WaitCQ()
	return c.Old, c.Err
}

// CompareSwapSync performs a blocking compare-and-swap, returning the old
// value and whether the swap applied.
func (q *QP) CompareSwapSync(remote RemoteAddr, expect, swap uint64) (uint64, bool, error) {
	q.CompareSwap(remote, expect, swap, 0)
	c := q.WaitCQ()
	return c.Old, c.Swapped, c.Err
}

// Close shuts the QP down; the worker drains outstanding requests first.
func (q *QP) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.wrs.Close()
	q.node.dropQP(q)
}

// worker executes posted work requests in FIFO order at their scheduled
// virtual completion times.
func (q *QP) worker() {
	for {
		wr, ok := q.wrs.Recv()
		if !ok {
			q.cq.Close()
			return
		}
		q.env.WaitUntil(wr.done)
		wr.dir.depth.Add(-1)
		comp := Completion{Ctx: wr.ctx, Op: wr.op, N: wr.n}
		switch {
		case wr.fault.Err != nil:
			// Injected failure: error completion, no remote effect.
			comp.Err = wr.fault.Err
			q.cq.Send(comp)
			continue
		case q.peer.Crashed(), q.peer.crashGeneration() != wr.peerGen:
			// Peer died: the connection is broken (real RC QPs transition
			// to the error state and flush with work-completion errors).
			// The generation comparison also breaks requests whose peer
			// crashed and restarted between post and execution — a chained
			// write straddling the crash must never silently succeed.
			comp.Err = ErrQPBroken
			q.cq.Send(comp)
			continue
		case wr.fault.Drop:
			// Lost in the network: the optimistic local NIC still reports
			// success, but nothing reached the peer. Only higher-layer
			// timeouts can observe this.
			q.cq.Send(comp)
			continue
		}
		switch wr.op {
		case OpRead:
			mr, err := q.peer.lookupMR(wr.remote.RKey)
			if err != nil {
				comp.Err = err
				break
			}
			mr.read(wr.remote.Off, wr.lmr.buf[wr.loff:wr.loff+wr.n])
		case OpWrite, OpWriteImm:
			mr, err := q.peer.lookupMR(wr.remote.RKey)
			if err != nil {
				comp.Err = err
				break
			}
			mr.write(wr.remote.Off, wr.lmr.buf[wr.loff:wr.loff+wr.n])
			if wr.op == OpWriteImm {
				q.peer.ImmQueue().Send(Message{From: q.node.ID, Imm: wr.imm})
			}
		case OpSend:
			q.peer.Endpoint(wr.endpoint).Send(Message{From: q.node.ID, Payload: wr.payload})
		case OpFetchAdd:
			mr, err := q.peer.lookupMR(wr.remote.RKey)
			if err != nil {
				comp.Err = err
				break
			}
			comp.Old = atomicFetchAdd(mr, wr.remote.Off, wr.add)
		case OpCompareSwap:
			mr, err := q.peer.lookupMR(wr.remote.RKey)
			if err != nil {
				comp.Err = err
				break
			}
			comp.Old, comp.Swapped = atomicCompareSwap(mr, wr.remote.Off, wr.expect, wr.swap)
		}
		q.cq.Send(comp)
	}
}

func atomicFetchAdd(mr *MemoryRegion, off int, add uint64) uint64 {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	old := binary.LittleEndian.Uint64(mr.buf[off:])
	binary.LittleEndian.PutUint64(mr.buf[off:], old+add)
	return old
}

func atomicCompareSwap(mr *MemoryRegion, off int, expect, swap uint64) (uint64, bool) {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	old := binary.LittleEndian.Uint64(mr.buf[off:])
	if old == expect {
		binary.LittleEndian.PutUint64(mr.buf[off:], swap)
		return old, true
	}
	return old, false
}
