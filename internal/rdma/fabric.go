package rdma

import (
	"fmt"
	"sync"

	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Fabric is the network connecting all nodes of one simulated deployment.
// Per-link traffic (bytes, operations, queue depth per direction) is
// published to the fabric's telemetry registry under
// "rdma.link.<src>-><dst>.*".
type Fabric struct {
	env    *sim.Env
	params LinkParams
	tel    *telemetry.Registry

	mu    sync.Mutex
	nodes []*Node
	links map[[2]int]*link // keyed by unordered node pair {lo, hi}

	injMu sync.RWMutex
	inj   FaultInjector
}

// NewFabric creates a fabric whose links default to params.
func NewFabric(env *sim.Env, params LinkParams) *Fabric {
	clock := telemetry.ClockFunc(func() int64 { return int64(env.Now()) })
	return &Fabric{
		env:    env,
		params: params,
		tel:    telemetry.NewRegistry(clock),
		links:  make(map[[2]int]*link),
	}
}

// Env returns the simulation environment the fabric lives in.
func (f *Fabric) Env() *sim.Env { return f.env }

// Telemetry returns the fabric's metrics registry (per-link counters and
// queue-depth gauges, on the deployment's virtual clock).
func (f *Fabric) Telemetry() *telemetry.Registry { return f.tel }

// AddNode creates a node with the given number of CPU cores and attaches it
// to the fabric. Links to existing nodes use the fabric default parameters.
func (f *Fabric) AddNode(name string, cores int) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := newNode(f, len(f.nodes), name, cores)
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id.
func (f *Fabric) Node(id int) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 0 || id >= len(f.nodes) {
		panic(fmt.Sprintf("rdma: unknown node %d", id))
	}
	return f.nodes[id]
}

// linkFor returns the full-duplex link between nodes a and b — the same
// link object regardless of argument order — plus the a->b direction of
// it, creating both on first use.
func (f *Fabric) linkFor(a, b int) (*link, *direction) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := [2]int{lo, hi}
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.links[key]
	if !ok {
		l = &link{params: f.params}
		l.dirs[0].register(f.tel, f.nodes[lo].Name, f.nodes[hi].Name)
		l.dirs[1].register(f.tel, f.nodes[hi].Name, f.nodes[lo].Name)
		f.links[key] = l
	}
	if a == lo {
		return l, &l.dirs[0]
	}
	return l, &l.dirs[1]
}

// SetLinkParams overrides the parameters of the link between a and b. The
// link is full duplex: one set of parameters governs both directions, so
// argument order does not matter.
func (f *Fabric) SetLinkParams(a, b *Node, p LinkParams) {
	l, _ := f.linkFor(a.ID, b.ID)
	l.mu.Lock()
	l.params = p
	l.mu.Unlock()
}

// Close shuts down every node (and thus every queue-pair worker entity).
func (f *Fabric) Close() {
	f.mu.Lock()
	nodes := append([]*Node(nil), f.nodes...)
	f.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// link models the full-duplex connection between one pair of nodes: shared
// parameters, with bandwidth reserved and traffic counted per direction.
// Latency is pipelined (concurrent small ops overlap); bandwidth is
// serialized per direction (bulk transfers queue behind each other).
type link struct {
	mu     sync.Mutex
	params LinkParams
	dirs   [2]direction // [0]: lo->hi, [1]: hi->lo
}

// direction is one direction of a link: its bandwidth reservation horizon
// plus telemetry handles.
type direction struct {
	busyUntil sim.Time // under link.mu

	bytes *telemetry.Counter
	ops   *telemetry.Counter
	depth *telemetry.Gauge // posted-but-incomplete work requests
}

func (d *direction) register(tel *telemetry.Registry, src, dst string) {
	prefix := "rdma.link." + src + "->" + dst
	d.bytes = tel.Counter(prefix + ".bytes")
	d.ops = tel.Counter(prefix + ".ops")
	d.depth = tel.Gauge(prefix + ".queue_depth")
}

// schedule reserves wire time for n bytes in direction d starting no
// earlier than now and returns the virtual completion time of the
// operation (including latency). latMult and bwMult are the fault plane's
// degradation factors (1, 1 on a healthy link): latMult scales latency,
// bwMult divides effective bandwidth and so multiplies transfer time.
func (l *link) schedule(d *direction, now sim.Time, n int, twoSided bool, latMult, bwMult float64) sim.Time {
	l.mu.Lock()
	start := d.busyUntil
	if start < now {
		start = now
	}
	xfer := l.params.transferTime(n)
	if bwMult > 1 {
		xfer = sim.Duration(float64(xfer) * bwMult)
	}
	d.busyUntil = start + sim.Time(xfer)
	lat := l.params.Latency
	if twoSided {
		lat += l.params.TwoSidedExtra
	}
	if latMult > 1 {
		lat = sim.Duration(float64(lat) * latMult)
	}
	done := d.busyUntil + sim.Time(lat)
	l.mu.Unlock()
	d.bytes.Add(int64(n))
	d.ops.Inc()
	return done
}

// scheduleAtomic reserves an atomic operation slot in direction d.
func (l *link) scheduleAtomic(d *direction, now sim.Time, latMult float64) sim.Time {
	l.mu.Lock()
	start := d.busyUntil
	if start < now {
		start = now
	}
	// Atomics occupy negligible wire time but pay their own latency.
	lat := l.params.AtomicLatency
	if latMult > 1 {
		lat = sim.Duration(float64(lat) * latMult)
	}
	done := start + sim.Time(lat)
	l.mu.Unlock()
	d.ops.Inc()
	return done
}

// LinkStats reports the cumulative payload bytes and operations sent from
// node a to node b. Either argument order resolves to the same underlying
// full-duplex link; the returned numbers are those of the a->b direction.
func (f *Fabric) LinkStats(a, b *Node) (bytes, ops int64) {
	_, d := f.linkFor(a.ID, b.ID)
	return d.bytes.Load(), d.ops.Load()
}

// PairStats reports the total payload bytes and operations across both
// directions of the link between a and b. It is symmetric:
// PairStats(a, b) == PairStats(b, a).
func (f *Fabric) PairStats(a, b *Node) (bytes, ops int64) {
	l, _ := f.linkFor(a.ID, b.ID)
	for i := range l.dirs {
		bytes += l.dirs[i].bytes.Load()
		ops += l.dirs[i].ops.Load()
	}
	return bytes, ops
}
