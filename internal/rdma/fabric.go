package rdma

import (
	"fmt"
	"sync"

	"dlsm/internal/sim"
)

// Fabric is the network connecting all nodes of one simulated deployment.
type Fabric struct {
	env    *sim.Env
	params LinkParams

	mu    sync.Mutex
	nodes []*Node
	links map[[2]int]*link
}

// NewFabric creates a fabric whose links default to params.
func NewFabric(env *sim.Env, params LinkParams) *Fabric {
	return &Fabric{env: env, params: params, links: make(map[[2]int]*link)}
}

// Env returns the simulation environment the fabric lives in.
func (f *Fabric) Env() *sim.Env { return f.env }

// AddNode creates a node with the given number of CPU cores and attaches it
// to the fabric. Links to existing nodes use the fabric default parameters.
func (f *Fabric) AddNode(name string, cores int) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := newNode(f, len(f.nodes), name, cores)
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id.
func (f *Fabric) Node(id int) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 0 || id >= len(f.nodes) {
		panic(fmt.Sprintf("rdma: unknown node %d", id))
	}
	return f.nodes[id]
}

// linkFor returns the directed link from node a to node b, creating it on
// first use.
func (f *Fabric) linkFor(a, b int) *link {
	key := [2]int{a, b}
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.links[key]
	if !ok {
		l = &link{params: f.params}
		f.links[key] = l
	}
	return l
}

// SetLinkParams overrides the parameters of the directed links between a and
// b (both directions).
func (f *Fabric) SetLinkParams(a, b *Node, p LinkParams) {
	for _, key := range [][2]int{{a.ID, b.ID}, {b.ID, a.ID}} {
		f.mu.Lock()
		l, ok := f.links[key]
		if !ok {
			l = &link{}
			f.links[key] = l
		}
		l.mu.Lock()
		l.params = p
		l.mu.Unlock()
		f.mu.Unlock()
	}
}

// Close shuts down every node (and thus every queue-pair worker entity).
func (f *Fabric) Close() {
	f.mu.Lock()
	nodes := append([]*Node(nil), f.nodes...)
	f.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// link models one direction of a point-to-point connection. Latency is
// pipelined (concurrent small ops overlap); bandwidth is serialized (bulk
// transfers queue behind each other).
type link struct {
	mu        sync.Mutex
	params    LinkParams
	busyUntil sim.Time
	bytes     int64 // cumulative payload bytes (observability)
	ops       int64
}

// schedule reserves wire time for n bytes starting no earlier than now and
// returns the virtual completion time of the operation (including latency).
func (l *link) schedule(now sim.Time, n int, extra sim.Duration) sim.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.busyUntil
	if start < now {
		start = now
	}
	l.busyUntil = start + sim.Time(l.params.transferTime(n))
	l.bytes += int64(n)
	l.ops++
	return l.busyUntil + sim.Time(l.params.Latency) + sim.Time(extra)
}

// LinkStats reports the cumulative payload bytes and operations sent from
// node a to node b.
func (f *Fabric) LinkStats(a, b *Node) (bytes, ops int64) {
	l := f.linkFor(a.ID, b.ID)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes, l.ops
}

// scheduleAtomic reserves an atomic operation slot.
func (l *link) scheduleAtomic(now sim.Time) sim.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.busyUntil
	if start < now {
		start = now
	}
	l.ops++
	// Atomics occupy negligible wire time but pay their own latency.
	return start + sim.Time(l.params.AtomicLatency)
}
