package rdma

import (
	"errors"
	"testing"
)

func TestPostOnClosedQPCompletesWithError(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		src := cn.RegisterBuf([]byte("data"))
		dst := mn.Register(64)
		qp := cn.NewQP(mn)
		qp.Close()
		// A racing writer posting after shutdown must get an error
		// completion, not a panic.
		qp.Write(src, 0, dst.Addr(0), 4, 7)
		c := qp.WaitCQ()
		if !errors.Is(c.Err, ErrQPClosed) {
			t.Fatalf("completion err = %v, want ErrQPClosed", c.Err)
		}
		if c.Ctx != 7 || c.Op != OpWrite {
			t.Fatalf("completion = %+v, want ctx 7 op write", c)
		}
		if err := qp.WriteSync(src, 0, dst.Addr(0), 4); !errors.Is(err, ErrQPClosed) {
			t.Fatalf("WriteSync on closed QP = %v, want ErrQPClosed", err)
		}
		// Closing twice stays idempotent.
		qp.Close()
	})
	env.Wait()
}

func TestWaitCQAfterCloseDrainsThenErrors(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		src := cn.RegisterBuf([]byte("data"))
		dst := mn.Register(64)
		qp := cn.NewQP(mn)
		qp.Write(src, 0, dst.Addr(0), 4, 1)
		if c := qp.WaitCQ(); c.Err != nil {
			t.Fatalf("live completion: %v", c.Err)
		}
		qp.Close()
		if c := qp.WaitCQ(); !errors.Is(c.Err, ErrQPClosed) {
			t.Fatalf("post-close WaitCQ err = %v, want ErrQPClosed", c.Err)
		}
	})
	env.Wait()
}

func TestEndpointOnDeadNodeIsClosed(t *testing.T) {
	env, f, _, mn := testbed()
	env.Run(func() {
		defer f.Close()
		mn.Close()
		// Late consumers of a dead node's receive queues must observe
		// immediate teardown instead of parking forever.
		ep := mn.Endpoint("late")
		if _, ok := ep.Recv(); ok {
			t.Fatal("endpoint on closed node delivered a message")
		}
	})
	env.Wait()
}
