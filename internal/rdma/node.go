package rdma

import (
	"fmt"
	"sync"

	"dlsm/internal/sim"
)

// Message is a two-sided SEND delivered to an endpoint on the target node,
// or an immediate-data notification from WRITE_WITH_IMM.
type Message struct {
	From    int    // sender node id
	Payload []byte // copied payload (nil for pure imm notifications)
	Imm     uint32 // immediate data (WRITE_WITH_IMM, or app-level tag)
}

// Node is one machine attached to the fabric: a CPU core pool plus
// registered memory regions. Compute nodes and memory nodes are both Nodes;
// they differ only in core count, memory size and the software run on them.
type Node struct {
	ID     int
	Name   string
	CPU    *sim.CPU
	fabric *Fabric

	userData sync.Map // per-node extension slots (e.g. the RPC notifier)

	mu        sync.Mutex
	nextRKey  uint32
	mrs       map[uint32]*MemoryRegion
	endpoints map[string]*sim.Chan[Message]
	immQueue  *sim.Chan[Message]
	qps       []*QP
	closed    bool
	crashed   bool
	crashGen  uint64 // incremented by every Crash; see crashGeneration
}

func newNode(f *Fabric, id int, name string, cores int) *Node {
	return &Node{
		ID:        id,
		Name:      name,
		CPU:       sim.NewCPU(f.env, cores),
		fabric:    f,
		nextRKey:  1,
		mrs:       make(map[uint32]*MemoryRegion),
		endpoints: make(map[string]*sim.Chan[Message]),
		immQueue:  sim.NewChan[Message](f.env, 4096),
	}
}

func (n *Node) env() *sim.Env { return n.fabric.env }

// Fabric returns the fabric the node is attached to.
func (n *Node) Fabric() *Fabric { return n.fabric }

// UserData is a per-node extension map for higher layers that need one
// instance of something per node (e.g. the RPC thread notifier). Scoping
// such singletons to the node keeps dead deployments collectible.
func (n *Node) UserData() *sync.Map { return &n.userData }

// Register allocates and registers a memory region of the given size,
// modeling ibv_reg_mr over a freshly allocated pinned buffer. dLSM
// pre-registers large regions and sub-allocates in user space (§X-B);
// internal/remote implements those sub-allocators.
func (n *Node) Register(size int) *MemoryRegion {
	return n.RegisterBuf(make([]byte, size))
}

// RegisterBuf registers an existing buffer.
func (n *Node) RegisterBuf(buf []byte) *MemoryRegion {
	n.mu.Lock()
	defer n.mu.Unlock()
	mr := &MemoryRegion{node: n, rkey: n.nextRKey, buf: buf}
	n.nextRKey++
	n.mrs[mr.rkey] = mr
	return mr
}

// Deregister removes a region from the NIC; subsequent remote access to its
// rkey fails.
func (n *Node) Deregister(mr *MemoryRegion) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.mrs, mr.rkey)
}

// lookupMR resolves an rkey, as the NIC does for incoming one-sided ops.
func (n *Node) lookupMR(rkey uint32) (*MemoryRegion, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	mr, ok := n.mrs[rkey]
	if !ok {
		return nil, fmt.Errorf("rdma: node %d: invalid rkey %d", n.ID, rkey)
	}
	return mr, nil
}

// Endpoint returns the named receive queue for two-sided messages,
// creating it on first use. It models a shared receive queue feeding a
// message dispatcher.
func (n *Node) Endpoint(name string) *sim.Chan[Message] {
	n.mu.Lock()
	if n.closed || n.crashed {
		// A dead node has no receive queues. Hand back a chan that is
		// already closed (and never stored: a restart must mint live ones)
		// so a late consumer observes immediate teardown instead of
		// parking forever on a queue nothing can close.
		n.mu.Unlock()
		ep := sim.NewChan[Message](n.env(), 1)
		ep.Close()
		return ep
	}
	defer n.mu.Unlock()
	ep, ok := n.endpoints[name]
	if !ok {
		ep = sim.NewChan[Message](n.env(), 4096)
		n.endpoints[name] = ep
	}
	return ep
}

// ImmQueue is where WRITE_WITH_IMM notifications targeting this node are
// delivered; dLSM's thread notifier consumes it to wake sleeping RPC
// requesters (§X-D). A crash closes and replaces the queue, so consumers
// holding the old one observe it closing.
func (n *Node) ImmQueue() *sim.Chan[Message] {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.immQueue
}

// NewQP creates a queue pair from this node to peer with its own send queue,
// completion queue and worker. Per the paper's RDMA manager, each thread
// creates a thread-local QP so completions are never mixed across threads.
func (n *Node) NewQP(peer *Node) *QP {
	qp := newQP(n, peer)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		panic("rdma: NewQP on closed node")
	}
	n.qps = append(n.qps, qp)
	n.mu.Unlock()
	return qp
}

// dropQP forgets a closed queue pair so short-lived QPs (one per scan
// iterator, say) don't accumulate on the node for its whole lifetime.
func (n *Node) dropQP(qp *QP) {
	n.mu.Lock()
	for i, x := range n.qps {
		if x == qp {
			n.qps = append(n.qps[:i], n.qps[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
}

// Crashed reports whether the node is currently crashed. Queue pairs check
// it when executing work requests: any operation targeting a crashed peer
// completes with ErrQPBroken.
func (n *Node) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

// crashGeneration counts how many times the node has crashed. Queue pairs
// snapshot the target's generation at post time and compare at execution
// time: a mismatch means the peer crashed (and possibly restarted) while
// the request was in flight, so it must complete with ErrQPBroken rather
// than silently touch reborn memory. This is what makes a crash atomic
// with respect to chained one-sided writes straddling the crash instant.
func (n *Node) crashGeneration() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashGen
}

// Crash simulates the node failing: every registered memory region is
// invalidated (remote access to its rkey fails from now on, even after a
// restart — rkeys are never reissued), all receive queues close (resident
// software such as an RPC server observes its endpoints closing, exactly
// as a dying process would), and the node's own queue pairs shut down.
// In-flight operations from peers complete with ErrQPBroken.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.crashed || n.closed {
		n.mu.Unlock()
		return
	}
	n.crashed = true
	n.crashGen++
	n.mrs = make(map[uint32]*MemoryRegion)
	qps := n.qps
	n.qps = nil
	eps := make([]*sim.Chan[Message], 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.endpoints = make(map[string]*sim.Chan[Message])
	imm := n.immQueue
	n.immQueue = sim.NewChan[Message](n.env(), 4096)
	n.mu.Unlock()
	for _, qp := range qps {
		qp.Close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	imm.Close()
}

// Restart brings a crashed node back: fresh (empty) memory-region and
// endpoint tables, a fresh immediate queue. Regions come back empty —
// whoever owned registered memory must re-register and repopulate it; all
// remote addresses minted before the crash stay permanently invalid.
func (n *Node) Restart() {
	n.mu.Lock()
	n.crashed = false
	n.mu.Unlock()
}

// Close tears down all queue pairs and receive queues of the node.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	qps := n.qps
	n.qps = nil // qp.Close -> dropQP must not mutate the snapshot's backing array
	eps := make([]*sim.Chan[Message], 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	imm := n.immQueue
	n.mu.Unlock()
	for _, qp := range qps {
		qp.Close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	imm.Close()
}
