// Package rdma simulates an RDMA fabric connecting the nodes of a
// disaggregated-memory deployment. It models the ibverbs surface dLSM's
// RDMA manager is built on: registered memory regions addressed by rkeys,
// per-thread queue pairs with FIFO send queues and completion queues, and
// the verbs READ, WRITE, WRITE_WITH_IMM, SEND/RECV, FETCH_ADD and CAS.
//
// Transfers physically copy bytes between Go buffers; their *timing* is
// virtual (see internal/sim): an operation completes after the link's base
// latency plus its bytes serialized at the link bandwidth, with bandwidth
// shared per direction across all queue pairs. This reproduces the
// latency-vs-bandwidth asymmetry that motivates the paper's design: tiny
// transfers are latency-bound (~27 ns/B at 64 B) while multi-MB transfers
// approach wire speed (~0.08 ns/B), a >100x per-byte gap.
package rdma

import "time"

// LinkParams describes one network link between two nodes.
type LinkParams struct {
	// Latency is the completion latency of a one-sided verb, i.e. the
	// time from posting a small READ/WRITE to its completion event.
	Latency time.Duration
	// TwoSidedExtra is added to SEND/RECV operations for the receive-side
	// dispatch that one-sided verbs avoid.
	TwoSidedExtra time.Duration
	// AtomicLatency is the completion latency of FETCH_ADD / CAS.
	AtomicLatency time.Duration
	// Bandwidth is the per-direction link bandwidth in bytes/second.
	Bandwidth float64
}

// EDR100 models the paper's Mellanox EDR ConnectX-4 (100 Gb/s) testbed link.
func EDR100() LinkParams {
	return LinkParams{
		Latency:       1700 * time.Nanosecond,
		TwoSidedExtra: 1000 * time.Nanosecond,
		AtomicLatency: 2000 * time.Nanosecond,
		Bandwidth:     12.5e9, // 100 Gb/s
	}
}

// FDR56 models the CloudLab c6220 Mellanox FDR ConnectX-3 (56 Gb/s) link
// used in the paper's multi-node experiments.
func FDR56() LinkParams {
	return LinkParams{
		Latency:       2100 * time.Nanosecond,
		TwoSidedExtra: 1200 * time.Nanosecond,
		AtomicLatency: 2500 * time.Nanosecond,
		Bandwidth:     7.0e9, // 56 Gb/s
	}
}

// transferTime returns the wire time for n payload bytes (excluding latency).
func (p LinkParams) transferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.Bandwidth * 1e9)
}
