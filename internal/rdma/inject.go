package rdma

import "dlsm/internal/sim"

// Fault is the verdict an injector returns for one posted work request.
// The zero value means "no fault".
type Fault struct {
	// Drop loses the operation in the network: the local NIC still reports
	// a successful completion (wire time is reserved as usual) but the
	// remote side never sees the payload — a SEND is not delivered, a
	// WRITE's bytes never land, a WRITE_IMM's immediate is not raised.
	// Higher layers observe the loss only through their own timeouts.
	Drop bool
	// Err completes the operation with this error and no remote effect.
	Err error
	// Delay adds extra virtual latency before the completion fires.
	Delay sim.Duration
}

// FaultInjector is the fabric's pluggable fault plane. Implementations
// (internal/faults.Injector) must be safe for concurrent use; methods are
// called on the hot posting path of every queue pair.
type FaultInjector interface {
	// OnOp is consulted once per posted work request, before wire time is
	// scheduled. from/to are node ids in payload-flow order (for READs the
	// data flows to->from at the link layer; OnOp still receives the
	// poster's orientation: from = posting node, to = peer).
	OnOp(op OpCode, from, to, bytes int) Fault
	// LinkFactors returns the latency and bandwidth multipliers in force
	// for traffic from node "from" to node "to" at virtual time now.
	// (1, 1) means a healthy link; latMult scales completion latency and
	// bwMult divides effective bandwidth (2 = half the bandwidth).
	LinkFactors(from, to int, now sim.Time) (latMult, bwMult float64)
}

// SetInjector installs (or, with nil, removes) the fabric's fault plane.
// Install before traffic starts; swapping mid-run is safe but individual
// in-flight operations keep the verdict they were posted with.
func (f *Fabric) SetInjector(fi FaultInjector) {
	f.injMu.Lock()
	f.inj = fi
	f.injMu.Unlock()
}

// injector returns the installed fault plane, or nil.
func (f *Fabric) injector() FaultInjector {
	f.injMu.RLock()
	fi := f.inj
	f.injMu.RUnlock()
	return fi
}
