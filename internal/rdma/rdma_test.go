package rdma

import (
	"bytes"
	"testing"
	"time"

	"dlsm/internal/sim"
)

// testbed creates a 2-node fabric (compute, memory) with EDR-100 links.
func testbed() (*sim.Env, *Fabric, *Node, *Node) {
	env := sim.NewEnv()
	f := NewFabric(env, EDR100())
	cn := f.AddNode("compute", 24)
	mn := f.AddNode("memory", 12)
	return env, f, cn, mn
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.RegisterBuf([]byte("hello, disaggregated world"))
		remote := mn.Register(64)
		dst := cn.Register(64)

		qp := cn.NewQP(mn)
		if err := qp.WriteSync(local, 0, remote.Addr(3), local.Size()); err != nil {
			t.Fatalf("WriteSync: %v", err)
		}
		if err := qp.ReadSync(dst, 0, remote.Addr(3), local.Size()); err != nil {
			t.Fatalf("ReadSync: %v", err)
		}
		if got := dst.Bytes(0, local.Size()); !bytes.Equal(got, []byte("hello, disaggregated world")) {
			t.Fatalf("round trip mismatch: %q", got)
		}
	})
	env.Wait()
}

func TestSmallVsLargeTransferCostGap(t *testing.T) {
	// The motivating observation (§I): per-byte cost of 64B transfers must
	// be >=100x that of 1MB transfers.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(2 << 20)
		local := cn.Register(2 << 20)
		qp := cn.NewQP(mn)

		t0 := env.Now()
		if err := qp.WriteSync(local, 0, remote.Addr(0), 64); err != nil {
			t.Fatal(err)
		}
		small := env.Now() - t0

		t1 := env.Now()
		if err := qp.WriteSync(local, 0, remote.Addr(0), 1<<20); err != nil {
			t.Fatal(err)
		}
		large := env.Now() - t1

		perByteSmall := float64(small) / 64
		perByteLarge := float64(large) / (1 << 20)
		if gap := perByteSmall / perByteLarge; gap < 100 {
			t.Fatalf("per-byte gap = %.1fx, want >= 100x (small %v, large %v)",
				gap, time.Duration(small), time.Duration(large))
		}
	})
	env.Wait()
}

func TestBandwidthSerializedAcrossQPs(t *testing.T) {
	// Two 1MB writes from different QPs share one link direction: the pair
	// must take ~2x the wire time of one, not complete concurrently.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(4 << 20)
		local := cn.Register(1 << 20)
		wg := sim.NewWaitGroup(env)
		start := env.Now()
		for i := 0; i < 2; i++ {
			off := i * (1 << 20)
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				qp := cn.NewQP(mn)
				if err := qp.WriteSync(local, 0, remote.Addr(off), 1<<20); err != nil {
					t.Errorf("write: %v", err)
				}
			})
		}
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)
		wire := EDR100().transferTime(1 << 20)
		if elapsed < 2*wire {
			t.Fatalf("2x1MB finished in %v, want >= %v (bandwidth not serialized)", elapsed, 2*wire)
		}
	})
	env.Wait()
}

func TestLatencyPipelinedAcrossQPs(t *testing.T) {
	// Many concurrent small ops should overlap their latencies: 16 parallel
	// 64B writes must finish in far less than 16 * latency.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(4096)
		wg := sim.NewWaitGroup(env)
		start := env.Now()
		for i := 0; i < 16; i++ {
			off := i * 64
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				qp := cn.NewQP(mn)
				local := cn.Register(64)
				if err := qp.WriteSync(local, 0, remote.Addr(off), 64); err != nil {
					t.Errorf("write: %v", err)
				}
			})
		}
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)
		if elapsed > 4*EDR100().Latency {
			t.Fatalf("16 small writes took %v, want < 4x latency (latency not pipelined)", elapsed)
		}
	})
	env.Wait()
}

func TestAsyncCompletionsFIFO(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(1 << 20)
		local := cn.Register(1 << 20)
		qp := cn.NewQP(mn)
		for i := uint64(0); i < 8; i++ {
			qp.Write(local, 0, remote.Addr(int(i)*4096), 4096, i)
		}
		for i := uint64(0); i < 8; i++ {
			c := qp.WaitCQ()
			if c.Err != nil {
				t.Fatalf("completion %d: %v", i, c.Err)
			}
			if c.Ctx != i {
				t.Fatalf("completion order: got ctx %d, want %d", c.Ctx, i)
			}
		}
	})
	env.Wait()
}

func TestSendRecvEndpoint(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		qp := cn.NewQP(mn)
		if err := qp.SendSync("rpc", []byte("compact L0")); err != nil {
			t.Fatal(err)
		}
		msg, ok := mn.Endpoint("rpc").Recv()
		if !ok {
			t.Fatal("endpoint closed")
		}
		if string(msg.Payload) != "compact L0" || msg.From != cn.ID {
			t.Fatalf("bad message: %+v", msg)
		}
	})
	env.Wait()
}

func TestSendPayloadCopiedAtPost(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		qp := cn.NewQP(mn)
		buf := []byte("original")
		qp.Send("rpc", buf, 0)
		copy(buf, "CLOBBER!") // caller reuses its buffer immediately
		msg, _ := mn.Endpoint("rpc").Recv()
		if string(msg.Payload) != "original" {
			t.Fatalf("payload not copied at post: %q", msg.Payload)
		}
		qp.WaitCQ()
	})
	env.Wait()
}

func TestWriteWithImmediate(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(128)
		local := cn.RegisterBuf([]byte("reply-payload"))
		qp := cn.NewQP(mn)
		qp.WriteImm(local, 0, remote.Addr(0), local.Size(), 0xBEEF, 1)
		msg, ok := mn.ImmQueue().Recv()
		if !ok || msg.Imm != 0xBEEF {
			t.Fatalf("imm notification: ok=%v msg=%+v", ok, msg)
		}
		// The payload must be visible at the target when the imm arrives.
		if got := string(remote.Bytes(0, 13)); got != "reply-payload" {
			t.Fatalf("payload not visible with imm: %q", got)
		}
		qp.WaitCQ()
	})
	env.Wait()
}

func TestFetchAdd(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(8)
		qp := cn.NewQP(mn)
		old, err := qp.FetchAddSync(remote.Addr(0), 5)
		if err != nil || old != 0 {
			t.Fatalf("first FAA: old=%d err=%v", old, err)
		}
		old, err = qp.FetchAddSync(remote.Addr(0), 7)
		if err != nil || old != 5 {
			t.Fatalf("second FAA: old=%d err=%v", old, err)
		}
	})
	env.Wait()
}

func TestCompareSwap(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(8)
		qp := cn.NewQP(mn)
		old, swapped, err := qp.CompareSwapSync(remote.Addr(0), 0, 42)
		if err != nil || !swapped || old != 0 {
			t.Fatalf("CAS(0->42): old=%d swapped=%v err=%v", old, swapped, err)
		}
		old, swapped, err = qp.CompareSwapSync(remote.Addr(0), 0, 99)
		if err != nil || swapped || old != 42 {
			t.Fatalf("CAS(0->99) should fail: old=%d swapped=%v err=%v", old, swapped, err)
		}
	})
	env.Wait()
}

func TestAwaitByteWakesAfterRemoteWrite(t *testing.T) {
	// Models the general-purpose RPC reply path: requester polls a flag
	// that the responder sets via one-sided write.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		replyBuf := cn.Register(64) // requester-side reply buffer
		payload := mn.RegisterBuf(append(bytes.Repeat([]byte{7}, 63), 1))

		env.Go(func() { // responder
			env.Sleep(10 * time.Microsecond)
			qp := mn.NewQP(cn)
			if err := qp.WriteSync(payload, 0, replyBuf.Addr(0), 64); err != nil {
				t.Errorf("responder write: %v", err)
			}
		})

		replyBuf.AwaitByte(63, 1)
		woke := time.Duration(env.Now())
		if woke < 10*time.Microsecond+EDR100().Latency {
			t.Fatalf("poller woke at %v, before the write could complete", woke)
		}
		if replyBuf.Bytes(0, 1)[0] != 7 {
			t.Fatal("payload bytes not visible when flag observed")
		}
	})
	env.Wait()
}

func TestInvalidRKeyFails(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.Register(8)
		qp := cn.NewQP(mn)
		err := qp.WriteSync(local, 0, RemoteAddr{Node: mn.ID, RKey: 9999, Off: 0}, 8)
		if err == nil {
			t.Fatal("write with bogus rkey succeeded")
		}
	})
	env.Wait()
}

func TestDeregisteredRegionInaccessible(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.Register(8)
		remote := mn.Register(8)
		mn.Deregister(remote)
		qp := cn.NewQP(mn)
		if err := qp.WriteSync(local, 0, remote.Addr(0), 8); err == nil {
			t.Fatal("write to deregistered region succeeded")
		}
	})
	env.Wait()
}

func TestReadConsumesReverseBandwidth(t *testing.T) {
	// A large READ consumes memory->compute bandwidth; a concurrent large
	// WRITE (compute->memory) should not contend with it.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		remote := mn.Register(2 << 20)
		localR := cn.Register(1 << 20)
		localW := cn.Register(1 << 20)
		wg := sim.NewWaitGroup(env)
		start := env.Now()
		wg.Add(2)
		env.Go(func() {
			defer wg.Done()
			qp := cn.NewQP(mn)
			qp.ReadSync(localR, 0, remote.Addr(0), 1<<20)
		})
		env.Go(func() {
			defer wg.Done()
			qp := cn.NewQP(mn)
			qp.WriteSync(localW, 0, remote.Addr(1<<20), 1<<20)
		})
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)
		wire := EDR100().transferTime(1 << 20)
		// Full duplex: both finish in ~one wire time, not two.
		if elapsed > wire+10*EDR100().Latency {
			t.Fatalf("read+write took %v, want ~%v (directions should not contend)", elapsed, wire)
		}
	})
	env.Wait()
}

func TestLinkStatsResolveToSameLink(t *testing.T) {
	// Regression: (a,b) and (b,a) used to resolve to two independent
	// directed link objects, so querying stats or setting parameters in
	// the "wrong" order created a second, empty link for the same pair.
	// A link is full duplex: both argument orders must hit one object,
	// with stats reported per direction.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.Register(1 << 20)
		remote := mn.Register(1 << 20)

		// Query stats in the reverse order BEFORE any traffic: this must
		// not create a link distinct from the one traffic will use.
		if b, o := f.LinkStats(mn, cn); b != 0 || o != 0 {
			t.Fatalf("pristine link has stats %d/%d", b, o)
		}

		qp := cn.NewQP(mn)
		if err := qp.WriteSync(local, 0, remote.Addr(0), 4096); err != nil {
			t.Fatal(err)
		}
		if err := qp.ReadSync(local, 0, remote.Addr(0), 1024); err != nil {
			t.Fatal(err)
		}

		sentB, sentOps := f.LinkStats(cn, mn)
		recvB, recvOps := f.LinkStats(mn, cn)
		if sentB != 4096 || recvB != 1024 {
			t.Fatalf("directional stats: cn->mn %d bytes, mn->cn %d bytes; want 4096/1024", sentB, recvB)
		}

		// Pair totals are symmetric and cover both directions.
		pb, po := f.PairStats(cn, mn)
		pb2, po2 := f.PairStats(mn, cn)
		if pb != pb2 || po != po2 {
			t.Fatalf("PairStats asymmetric: (%d,%d) vs (%d,%d)", pb, po, pb2, po2)
		}
		if pb != sentB+recvB || po != sentOps+recvOps {
			t.Fatalf("PairStats %d/%d != directional sums %d/%d", pb, po, sentB+recvB, sentOps+recvOps)
		}

		// One pair, one link object.
		f.mu.Lock()
		nlinks := len(f.links)
		f.mu.Unlock()
		if nlinks != 1 {
			t.Fatalf("fabric holds %d link objects for one node pair, want 1", nlinks)
		}
	})
	env.Wait()
}

func TestSetLinkParamsEitherArgumentOrder(t *testing.T) {
	// Parameters set via (b,a) must govern (a,b) traffic: one full-duplex
	// link per pair.
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.Register(64)
		remote := mn.Register(64)

		slow := EDR100()
		slow.Latency = 100 * time.Microsecond
		f.SetLinkParams(mn, cn, slow) // reversed order on purpose

		qp := cn.NewQP(mn)
		t0 := env.Now()
		if err := qp.WriteSync(local, 0, remote.Addr(0), 64); err != nil {
			t.Fatal(err)
		}
		if d := time.Duration(env.Now() - t0); d < slow.Latency {
			t.Fatalf("write completed in %v; params set via reversed order were ignored (want >= %v)", d, slow.Latency)
		}
	})
	env.Wait()
}

func TestLinkTelemetry(t *testing.T) {
	env, f, cn, mn := testbed()
	env.Run(func() {
		defer f.Close()
		local := cn.Register(1 << 20)
		remote := mn.Register(1 << 20)
		qp := cn.NewQP(mn)
		if err := qp.WriteSync(local, 0, remote.Addr(0), 8192); err != nil {
			t.Fatal(err)
		}
		snap := f.Telemetry().Snapshot()
		if got := snap.Counters["rdma.link.compute->memory.bytes"]; got != 8192 {
			t.Fatalf("telemetry bytes = %d, want 8192 (counters: %v)", got, snap.Counters)
		}
		if got := snap.Counters["rdma.link.compute->memory.ops"]; got != 1 {
			t.Fatalf("telemetry ops = %d, want 1", got)
		}
		// The synchronous write has completed: no work request in flight.
		if got := snap.Gauges["rdma.link.compute->memory.queue_depth"]; got != 0 {
			t.Fatalf("queue depth = %d after completion, want 0", got)
		}
	})
	env.Wait()
}
