package rdma

import (
	"fmt"
	"sync"

	"dlsm/internal/sim"
)

// MemoryRegion is a pinned, NIC-registered buffer. Remote peers address it
// with a (node, rkey, offset) triple; one-sided verbs copy bytes directly
// into or out of it without involving the owning node's CPU.
//
// Synchronization contract: remote writes happen under the region's host
// mutex and bump a generation counter; pollers that observe an update via
// Await* therefore also observe the payload bytes written before it. Code
// that reads region bytes directly (Bytes) must have established visibility
// through some other channel (an RPC reply, a completion event, engine-level
// immutability), exactly like real RDMA programs must.
type MemoryRegion struct {
	node *Node
	rkey uint32
	buf  []byte

	mu       sync.Mutex
	gen      uint64
	watchers []*mrWatcher
}

// mrWatcher is one parked poller: either a plain channel wait (no
// deadline) or a cancellable alarm (deadline), woken by the next write.
type mrWatcher struct {
	ch    chan struct{} // nil when alarm is set
	alarm *sim.Alarm
}

// wake releases one parked poller; called after the waking write landed.
func (r *MemoryRegion) wake(w *mrWatcher) {
	if w.alarm != nil {
		w.alarm.Cancel()
		return
	}
	r.node.env().Clock().Ready("mr.poll", w.ch)
}

// RemoteAddr is a wire-transferable pointer into a registered region.
type RemoteAddr struct {
	Node int
	RKey uint32
	Off  int
}

// Add returns the address displaced by n bytes.
func (a RemoteAddr) Add(n int) RemoteAddr {
	a.Off += n
	return a
}

func (a RemoteAddr) String() string {
	return fmt.Sprintf("node%d/rkey%d+%d", a.Node, a.RKey, a.Off)
}

// Size returns the region length in bytes.
func (r *MemoryRegion) Size() int { return len(r.buf) }

// RKey returns the remote-access key peers use to address this region.
func (r *MemoryRegion) RKey() uint32 { return r.rkey }

// Node returns the owning node's id.
func (r *MemoryRegion) Node() int { return r.node.ID }

// Addr returns the remote address of offset off within the region.
func (r *MemoryRegion) Addr(off int) RemoteAddr {
	return RemoteAddr{Node: r.node.ID, RKey: r.rkey, Off: off}
}

// Bytes returns the slice [off, off+n) of the region for direct local
// access. See the type comment for the visibility contract.
func (r *MemoryRegion) Bytes(off, n int) []byte {
	return r.buf[off : off+n]
}

// write is a remote one-sided write into the region (QP worker only).
func (r *MemoryRegion) write(off int, src []byte) {
	r.mu.Lock()
	copy(r.buf[off:off+len(src)], src)
	r.gen++
	watchers := r.watchers
	r.watchers = nil
	r.mu.Unlock()
	for _, w := range watchers {
		r.wake(w)
	}
}

// read is a remote one-sided read out of the region (QP worker only).
func (r *MemoryRegion) read(off int, dst []byte) {
	r.mu.Lock()
	copy(dst, r.buf[off:off+len(dst)])
	r.mu.Unlock()
}

// AwaitByte parks the calling entity until the byte at off equals want.
// This is the simulation analog of CPU-polling a flag that a one-sided
// remote write will set (the paper's general-purpose RPC reply path).
func (r *MemoryRegion) AwaitByte(off int, want byte) {
	r.AwaitByteDeadline(off, want, 0)
}

// AwaitByteDeadline is AwaitByte with a virtual-time deadline: it returns
// true once the byte at off equals want, or false if the deadline passes
// first. deadline <= 0 waits forever. This is how a real poller abandons a
// reply flag when the responder may be dead.
func (r *MemoryRegion) AwaitByteDeadline(off int, want byte, deadline sim.Time) bool {
	env := r.node.env()
	for {
		r.mu.Lock()
		if r.buf[off] == want {
			r.mu.Unlock()
			return true
		}
		if deadline > 0 && env.Now() >= deadline {
			r.mu.Unlock()
			return false
		}
		w := &mrWatcher{}
		if deadline > 0 {
			w.alarm = env.Clock().NewAlarm(deadline, "mr.poll")
		} else {
			w.ch = make(chan struct{})
		}
		r.watchers = append(r.watchers, w)
		r.mu.Unlock()
		if w.alarm != nil {
			if w.alarm.Wait() {
				// Deadline fired first. Retire the watcher and decide by
				// one final flag check: a write may have landed between
				// the alarm firing and this wakeup.
				r.mu.Lock()
				for i, x := range r.watchers {
					if x == w {
						r.watchers = append(r.watchers[:i], r.watchers[i+1:]...)
						break
					}
				}
				ok := r.buf[off] == want
				r.mu.Unlock()
				return ok
			}
			// Canceled by a write: loop and recheck the flag.
		} else {
			env.Clock().Block("mr.poll")
			<-w.ch
		}
	}
}

// SetByte writes a single byte locally under the region lock, waking
// pollers. Used to reset flags between RPCs.
func (r *MemoryRegion) SetByte(off int, b byte) {
	r.mu.Lock()
	r.buf[off] = b
	r.gen++
	watchers := r.watchers
	r.watchers = nil
	r.mu.Unlock()
	for _, w := range watchers {
		r.wake(w)
	}
}
