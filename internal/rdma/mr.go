package rdma

import (
	"fmt"
	"sync"
)

// MemoryRegion is a pinned, NIC-registered buffer. Remote peers address it
// with a (node, rkey, offset) triple; one-sided verbs copy bytes directly
// into or out of it without involving the owning node's CPU.
//
// Synchronization contract: remote writes happen under the region's host
// mutex and bump a generation counter; pollers that observe an update via
// Await* therefore also observe the payload bytes written before it. Code
// that reads region bytes directly (Bytes) must have established visibility
// through some other channel (an RPC reply, a completion event, engine-level
// immutability), exactly like real RDMA programs must.
type MemoryRegion struct {
	node *Node
	rkey uint32
	buf  []byte

	mu       sync.Mutex
	gen      uint64
	watchers []chan struct{}
}

// RemoteAddr is a wire-transferable pointer into a registered region.
type RemoteAddr struct {
	Node int
	RKey uint32
	Off  int
}

// Add returns the address displaced by n bytes.
func (a RemoteAddr) Add(n int) RemoteAddr {
	a.Off += n
	return a
}

func (a RemoteAddr) String() string {
	return fmt.Sprintf("node%d/rkey%d+%d", a.Node, a.RKey, a.Off)
}

// Size returns the region length in bytes.
func (r *MemoryRegion) Size() int { return len(r.buf) }

// RKey returns the remote-access key peers use to address this region.
func (r *MemoryRegion) RKey() uint32 { return r.rkey }

// Node returns the owning node's id.
func (r *MemoryRegion) Node() int { return r.node.ID }

// Addr returns the remote address of offset off within the region.
func (r *MemoryRegion) Addr(off int) RemoteAddr {
	return RemoteAddr{Node: r.node.ID, RKey: r.rkey, Off: off}
}

// Bytes returns the slice [off, off+n) of the region for direct local
// access. See the type comment for the visibility contract.
func (r *MemoryRegion) Bytes(off, n int) []byte {
	return r.buf[off : off+n]
}

// write is a remote one-sided write into the region (QP worker only).
func (r *MemoryRegion) write(off int, src []byte) {
	r.mu.Lock()
	copy(r.buf[off:off+len(src)], src)
	r.gen++
	watchers := r.watchers
	r.watchers = nil
	r.mu.Unlock()
	for _, ch := range watchers {
		r.node.env().Clock().Unblock("mr.poll")
		close(ch)
	}
}

// read is a remote one-sided read out of the region (QP worker only).
func (r *MemoryRegion) read(off int, dst []byte) {
	r.mu.Lock()
	copy(dst, r.buf[off:off+len(dst)])
	r.mu.Unlock()
}

// AwaitByte parks the calling entity until the byte at off equals want.
// This is the simulation analog of CPU-polling a flag that a one-sided
// remote write will set (the paper's general-purpose RPC reply path).
func (r *MemoryRegion) AwaitByte(off int, want byte) {
	for {
		r.mu.Lock()
		if r.buf[off] == want {
			r.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		r.watchers = append(r.watchers, ch)
		r.mu.Unlock()
		r.node.env().Clock().Block("mr.poll")
		<-ch
	}
}

// SetByte writes a single byte locally under the region lock, waking
// pollers. Used to reset flags between RPCs.
func (r *MemoryRegion) SetByte(off int, b byte) {
	r.mu.Lock()
	r.buf[off] = b
	r.gen++
	watchers := r.watchers
	r.watchers = nil
	r.mu.Unlock()
	for _, ch := range watchers {
		r.node.env().Clock().Unblock("mr.poll")
		close(ch)
	}
}
