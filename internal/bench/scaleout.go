package bench

import (
	"fmt"
	"runtime/debug"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/shard"
	"dlsm/internal/sim"
)

// ScaleoutPoint measures multi-compute scale-out (internal/lease): compute
// node 0 opens the shard group as the lease-holding primary and preloads
// it; every further compute node attaches as a read-only secondary serving
// from its own compute-local state. The measured phase is read-only —
// 95% point Gets, 5% ScanLen-entry range scans per thread — so aggregate
// throughput is bounded by compute-side CPU and QPs, which is exactly what
// adding compute nodes multiplies (the memory-node count stays fixed).
func ScaleoutPoint(n, computes, threadsPerNode int) Result {
	cfg := Config{System: DLSM, Threads: threadsPerNode, N: n,
		ComputeNodes: computes, Durability: engine.DurabilityAsync}.Normalize()
	env, fab, cns, servers := deployment(cfg)
	var res Result
	env.Run(func() {
		lambda := lambdaFor(DLSM, cfg)
		if len(servers) > lambda {
			lambda = len(servers)
		}
		var bounds [][]byte
		for j := 1; j < lambda; j++ {
			bounds = append(bounds, cfg.Key(cfg.KeyRange*j/lambda))
		}
		opts := engineOptions(DLSM, cfg, lambda)

		primary, err := shard.NewPrimary(cns[0], servers, lambda, bounds, opts, 0)
		if err != nil {
			panic(fmt.Sprintf("bench: scaleout primary: %v", err))
		}
		pdb := &lsmDB{db: primary, servers: uniqueServers(servers)}
		doPreload(env, cfg, pdb)
		pdb.Settle()
		// Publish the settled tree so secondaries see the full preload.
		if err := primary.PublishCheckpoint(); err != nil {
			panic(fmt.Sprintf("bench: scaleout publish: %v", err))
		}

		dbs := []kvDB{pdb}
		for i := 1; i < computes; i++ {
			sec, err := shard.OpenSecondary(cns[i], servers, lambda, bounds, opts)
			if err != nil {
				panic(fmt.Sprintf("bench: scaleout secondary %d: %v", i, err))
			}
			if err := sec.RefreshView(); err != nil {
				panic(fmt.Sprintf("bench: scaleout refresh %d: %v", i, err))
			}
			dbs = append(dbs, &lsmDB{db: sec, servers: nil})
		}

		per := cfg.N / (computes * threadsPerNode)
		outs := make([]int64, computes*threadsPerNode)
		start := env.Now()
		wg := sim.NewWaitGroup(env)
		for i := 0; i < computes; i++ {
			for t := 0; t < threadsPerNode; t++ {
				i, t := i, t
				wg.Add(1)
				env.Go(func() {
					defer wg.Done()
					s := dbs[i].NewSession()
					defer s.Close()
					rnd := cfg.threadRand(i*64 + t)
					var ops int64
					for j := 0; j < per; j++ {
						if rnd.Float64() < 0.05 {
							cnt := 0
							s.Scan(cfg.Key(rnd.Intn(cfg.KeyRange)), func(k, v []byte) bool {
								cnt++
								return cnt < cfg.ScanLen
							})
							ops += int64(cnt)
						} else {
							s.Get(cfg.Key(rnd.Intn(cfg.KeyRange)))
							ops++
						}
					}
					outs[i*threadsPerNode+t] = ops
				})
			}
		}
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)

		res.System = DLSM
		res.Threads = computes * threadsPerNode
		res.Elapsed = elapsed
		for _, o := range outs {
			res.Ops += o
		}
		if elapsed > 0 {
			res.Throughput = float64(res.Ops) / elapsed.Seconds()
		}
		res.SpaceUsed = pdb.SpaceUsed()
		res.RemoteCPUUtil = servers[0].Node().CPU.Utilization()

		// Secondaries close before the primary: they hold no leases, and
		// the primary's Close hands its leases back last.
		for i := len(dbs) - 1; i >= 0; i-- {
			dbs[i].Close()
		}
		res.Metrics = fab.Telemetry().Snapshot()
		fab.Close()
	})
	env.Wait()
	debug.FreeOSMemory()
	return res
}

// FigScaleout sweeps aggregate read throughput against the compute-node
// count at a fixed memory-node count: 1 node is the classic single-writer
// deployment; 2 and 4 add read-only secondaries under the lease ownership
// layer. One-sided reads make the workload compute-bound, so aggregate
// throughput must rise with every added compute node.
func FigScaleout(n, threadsPerNode int) *Figure {
	f := &Figure{Name: "Fig Scaleout", Title: "aggregate read throughput vs compute nodes (1 primary + read-only secondaries)", XLabel: "compute nodes"}
	s := Series{Label: "dLSM"}
	for _, c := range []int{1, 2, 4} {
		r := ScaleoutPoint(n, c, threadsPerNode)
		progress("figscaleout c=%d: %s ops/s (%d threads, remote CPU %.0f%%)",
			c, fmtTput(r.Throughput), r.Threads, 100*r.RemoteCPUUtil)
		s.Points = append(s.Points, Point{X: fmt.Sprintf("%d", c), R: r})
	}
	f.Series = append(f.Series, s)
	return f
}
