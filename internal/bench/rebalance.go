package bench

import (
	"time"
)

// FigRebalance measures elastic λ-sharding under a hot key range: 90% of
// the measured operations hit a band covering 10% of the keyspace, which
// lands inside one of the four initial shards. The static series keeps
// the λ=4 geometry it started with; the auto-balance series lets the
// rebalancer split the hot shard at a load-weighted pivot (and migrate
// or merge as the load map evolves). The shifting-fill point moves the
// band to a different shard at each third of the run, so the balancer
// must split again as the hotspot travels.
func FigRebalance(n, threads int) *Figure {
	f := &Figure{Name: "Fig rebalance", Title: "elastic λ-sharding under a hot range", XLabel: "workload"}
	workloads := []struct {
		label string
		shift float64
		run   func(Config) Result
	}{
		{"fillrandom", 0, FillRandom},
		{"mixed-50r", 0, Mixed},
		{"shifting-fill", 0.25, FillRandom},
	}
	variants := []struct {
		label string
		auto  bool
	}{
		{"dLSM static λ=4", false},
		{"dLSM auto-balance", true},
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, w := range workloads {
			cfg := Config{
				System: DLSM, Threads: threads, N: n, KeyRange: n,
				Lambda: 4, ReadRatio: 0.5,
				HotFrac: 0.9, HotWidth: 0.1, HotShift: w.shift,
				AutoBalance:     v.auto,
				BalanceInterval: 2 * time.Millisecond,
				// The unmeasured warmup lets the balancer split the hot
				// shard and settle before measurement, so the figure
				// compares steady-state geometries, not cut-over cost.
				Warmup: n,
			}
			r := w.run(cfg)
			c := r.Metrics.Counters
			progress("figrebalance %s %s: %s ops/s (splits %d, migrates %d, merges %d)",
				v.label, w.label, fmtTput(r.Throughput),
				c["balance.splits"], c["balance.migrates"], c["balance.merges"])
			s.Points = append(s.Points, Point{X: w.label, R: r})
		}
		f.Series = append(f.Series, s)
	}
	return f
}
