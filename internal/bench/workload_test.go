package bench

import (
	"math/rand"
	"testing"
)

// TestNextKeyUniformChiSquared: with Zipf off, nextKey must be uniform
// over the key range. Pearson chi-squared over 100 cells; the threshold is
// ~4 sigma for 99 degrees of freedom, far looser than any real skew.
func TestNextKeyUniformChiSquared(t *testing.T) {
	c := Config{KeyRange: 100_000, Seed: 1}
	r := c.threadRand(0)
	if c.zipf(r) != nil {
		t.Fatal("Zipf 0 must build the uniform (nil) generator")
	}
	const draws = 200_000
	const cells = 100
	counts := make([]int, cells)
	for i := 0; i < draws; i++ {
		k := c.nextKey(r, nil)
		if k < 0 || k >= c.KeyRange {
			t.Fatalf("key %d outside [0,%d)", k, c.KeyRange)
		}
		counts[k*cells/c.KeyRange]++
	}
	expect := float64(draws) / cells
	var chi2 float64
	for _, n := range counts {
		d := float64(n) - expect
		chi2 += d * d / expect
	}
	// df=99: mean 99, stddev ~14. 160 is ~4.3 sigma.
	if chi2 > 160 {
		t.Errorf("uniform chi-squared = %.1f over %d cells — not uniform", chi2, cells)
	}
}

// TestNextKeyZipfSkewAndSpread: with Zipf on, a small set of hot keys must
// dominate, and the scramble must spread those hot keys across the whole
// key space instead of clustering them at low indexes.
func TestNextKeyZipfSkewAndSpread(t *testing.T) {
	c := Config{KeyRange: 100_000, Seed: 1, Zipf: 1.2}
	r := c.threadRand(0)
	z := c.zipf(r)
	if z == nil {
		t.Fatal("Zipf 1.2 must build a skewed generator")
	}
	const draws = 200_000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[c.nextKey(r, z)]++
	}
	// Skew: the top-10 keys must carry far more than uniform's share.
	top := make([]int, 0, len(counts))
	for _, n := range counts {
		top = append(top, n)
	}
	sortDesc(top)
	top10 := 0
	for i := 0; i < 10 && i < len(top); i++ {
		top10 += top[i]
	}
	if frac := float64(top10) / draws; frac < 0.2 {
		t.Errorf("top-10 keys carry %.1f%% of draws — zipf skew missing", frac*100)
	}
	// Spread: hot keys must not cluster. Every tenth of the key space
	// should see traffic.
	tenths := [10]int{}
	for k := range counts {
		tenths[k*10/c.KeyRange]++
	}
	for i, n := range tenths {
		if n == 0 {
			t.Errorf("key-space tenth %d never drawn — scramble not spreading ranks", i)
		}
	}
}

// TestZipfGoldenReplay: the skewed stream is a pure function of the seed —
// the same (seed, zipf) pair replays identically, and the stream matches
// a reference rand.Zipf driven the same way.
func TestZipfGoldenReplay(t *testing.T) {
	c := Config{KeyRange: 50_000, Seed: 42, Zipf: 1.2}
	draw := func() []int {
		r := c.threadRand(3)
		z := c.zipf(r)
		out := make([]int, 1_000)
		for i := range out {
			out[i] = c.nextKey(r, z)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Reference model: rand.Zipf rank -> scramble -> mod range.
	ref := rand.New(rand.NewSource(c.Seed + 3*7919))
	zr := rand.NewZipf(ref, c.Zipf, 1, uint64(c.KeyRange-1))
	for i := range a {
		want := int(scramble(zr.Uint64()) % uint64(c.KeyRange))
		if a[i] != want {
			t.Fatalf("draw %d = %d, reference model wants %d", i, a[i], want)
		}
	}
}

// TestHotKeyBandFractionAndShift: hotKey must put ~HotFrac of draws inside
// the moving band, and the band's origin must advance by HotShift at each
// third of the run.
func TestHotKeyBandFractionAndShift(t *testing.T) {
	c := Config{KeyRange: 100_000, Seed: 7, HotFrac: 0.9, HotWidth: 0.05, HotShift: 0.2}
	const per = 90_000
	r := c.threadRand(0)
	phaseHits := [3]int{}
	phaseDraws := [3]int{}
	for i := 0; i < per; i++ {
		phase := 3 * i / per
		if phase > 2 {
			phase = 2
		}
		k := c.hotKey(r, i, per)
		width := int(float64(c.KeyRange) * c.HotWidth)
		origin := int(float64(c.KeyRange) * (0.4 + float64(phase)*c.HotShift))
		lo, hi := origin%c.KeyRange, (origin+width)%c.KeyRange
		hit := false
		if lo < hi {
			hit = k >= lo && k < hi
		} else { // band wraps
			hit = k >= lo || k < hi
		}
		phaseDraws[phase]++
		if hit {
			phaseHits[phase]++
		}
	}
	for p := 0; p < 3; p++ {
		frac := float64(phaseHits[p]) / float64(phaseDraws[p])
		// HotFrac of draws target the band; the uniform remainder adds
		// ~HotWidth more. Allow 3% tolerance either side.
		want := c.HotFrac + (1-c.HotFrac)*c.HotWidth
		if frac < want-0.03 || frac > want+0.03 {
			t.Errorf("phase %d: %.3f of draws in band, want %.3f±0.03", p, frac, want)
		}
	}
}

// TestScrambleInjectiveOnDenseRanks: splitmix64's finalizer is a
// bijection on uint64; over the dense rank prefix the zipf head lives in,
// it must produce no collisions and no obvious clustering.
func TestScrambleInjectiveOnDenseRanks(t *testing.T) {
	const n = 1 << 16
	seen := make(map[uint64]uint64, n)
	for x := uint64(0); x < n; x++ {
		s := scramble(x)
		if prev, dup := seen[s]; dup {
			t.Fatalf("scramble collision: %d and %d both map to %d", prev, x, s)
		}
		seen[s] = x
	}
	// Clustering check: consecutive ranks must land in different 2^48-wide
	// regions often (a linear map would keep them adjacent).
	jumps := 0
	for x := uint64(1); x < 1_000; x++ {
		if scramble(x)>>48 != scramble(x-1)>>48 {
			jumps++
		}
	}
	if jumps < 900 {
		t.Errorf("only %d/999 consecutive ranks changed high bits — scramble too linear", jumps)
	}
}

// sortDesc sorts ints descending (tiny n, insertion sort keeps this file
// dependency-free).
func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
