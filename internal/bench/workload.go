package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// Config describes one benchmark run. Zero fields take defaults.
type Config struct {
	System  System
	Threads int

	N        int // total operations in the measured phase
	KeyRange int // distinct keys (db_bench: same as N)
	KeySize  int // default 20 (paper)
	ValSize  int // default 400 (paper)

	ReadRatio float64 // mixed workloads: fraction of reads
	Lambda    int     // dLSM shard count (§VII)
	Bulkload  bool    // level0_stop_writes_trigger = infinity

	// Zipf > 1 skews measured-phase key choice with a Zipf(s=Zipf)
	// distribution whose ranks are scrambled across the key space (so hot
	// keys spread over shards). <= 1 keeps the uniform db_bench draw,
	// bit-identical to the pre-Zipf workloads.
	Zipf float64

	// HotFrac > 0 draws that fraction of measured-phase keys from a hot
	// band HotWidth (fraction of the keyspace) wide; the band's origin
	// advances by HotShift at each third of a thread's run — the
	// shifting-hotspot workload FigRebalance uses. 0 keeps the uniform
	// draw bit-identical to the historical workloads.
	HotFrac  float64
	HotWidth float64
	HotShift float64

	// AutoBalance turns on the elastic-sharding rebalancer (online split/
	// merge/migrate, internal/balance); BalanceInterval overrides its
	// decision tick. Off keeps the routing table static — every other
	// figure byte-identical.
	AutoBalance     bool
	BalanceInterval time.Duration

	// CacheBudgetBytes enables the compute-side hot-KV cache (0 = off,
	// the historical behavior). Passed through to engine.Options.
	CacheBudgetBytes int64

	// PrefetchDepth and PrefetchBytes tune scan readahead (engine.Options
	// passthrough). Depth 0 keeps the engine default of 1 — the synchronous
	// scan path, bit-identical to the pre-pipeline figures; depth > 1 keeps
	// that many chunk fetches in flight per table iterator. PrefetchBytes 0
	// keeps the engine's 2MB chunk ceiling.
	PrefetchDepth int
	PrefetchBytes int

	// ScanLen is the entries per range scan in the scanrandom workload
	// (default 100, db_bench seekrandom-style).
	ScanLen int

	DisableNearData bool // dLSM ablation: compact on the compute node instead

	// Durability selects the remote write-ahead log mode (engine.Options):
	// DurabilityNone (default) keeps every figure bit-identical to the
	// pre-WAL runs; Async/Sync log each write over one-sided RDMA.
	Durability engine.Durability
	// WALPerWrite disables group commit: one doorbell per write (the
	// FigWAL ablation baseline).
	WALPerWrite bool

	// Costs overrides the CPU cost model on every node (engine and
	// memnode). The zero value keeps sim.DefaultCosts — the calibration
	// every existing figure uses. FigOffload sets nonzero IndexByte /
	// FilterKey so the index- and filter-build layers become separately
	// visible in CPU utilization.
	Costs sim.CostModel

	// Offload* push write-path layers to the memory node (engine.Options
	// passthrough, the FigOffload ablation): flush serialization, block
	// index build, and bloom-filter build. All false keeps the flush path
	// bit-identical to the pre-offload figures.
	OffloadFlush      bool
	OffloadIndexBuild bool
	OffloadFilter     bool

	// ReplicationFactor mirrors every durable artifact onto a second
	// memory node (internal/repl, the FigRepl sweep). 0 and 1 keep the
	// single-copy layout bit-identical to the pre-replication figures; 2
	// requires MemoryNodes >= 2 and Durability on, dedicates the last
	// memory node as the passive replica, and acks on quorum. ReplMode
	// picks the SSTable transfer mode: "" or "index" for index-only
	// (primary clones extents to the replica), "log" for log-replay
	// (the compute node reads back and re-writes, the FORTH baseline).
	ReplicationFactor int
	ReplMode          string

	// Cluster shape (Fig 12/14/15); zero means the single-node testbed.
	ComputeNodes int
	MemoryNodes  int
	ComputeCores int
	MemoryCores  int
	Link         rdma.LinkParams

	// Preload is the number of keys filled before a read-only or mixed
	// measurement (0 = KeyRange).
	Preload int

	// Warmup runs that many unmeasured operations of the configured mix
	// before the measured phase (FigRebalance: lets the auto-balancer
	// split the hot shard so the measurement sees the settled geometry).
	// 0 — the default everywhere else — skips the phase entirely.
	Warmup int

	// FaultScenario injects faults during the run: "" (none), "delay"
	// (probabilistic latency on verbs), "flap" (periodic link down/up
	// between compute-0 and memory-0), or "outage" (repeated memnode RPC
	// service crashes — data regions survive, compactions fall back
	// locally). Engine RPC retry policies are shrunk to match the
	// millisecond-scale fault windows.
	FaultScenario string

	// Seed for workload generation.
	Seed int64
}

// Normalize fills defaults; all runners call it first.
func (c Config) Normalize() Config {
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.N == 0 {
		c.N = 200_000
	}
	if c.KeyRange == 0 {
		c.KeyRange = c.N
	}
	if c.KeySize < 12 {
		c.KeySize = 20
	}
	if c.ValSize == 0 {
		c.ValSize = 400
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Preload == 0 {
		c.Preload = c.KeyRange
	}
	if c.Seed == 0 {
		c.Seed = 20230401
	}
	if c.ScanLen == 0 {
		c.ScanLen = 100
	}
	return c
}

// memTableSize scales the paper's 64MB MemTable/SSTable to the run's data
// volume, preserving the data:memtable ratio (DESIGN.md §2).
func (c Config) memTableSize() int64 {
	data := int64(c.KeyRange) * int64(c.KeySize+c.ValSize)
	size := data / 96 // paper: ~42GB data / 64MB memtable ~= 650; softened for small runs
	if size < 256<<10 {
		size = 256 << 10
	}
	if size > 64<<20 {
		size = 64 << 20
	}
	return size
}

// regionSize sizes each memory node's regions: live data plus transient
// amplification headroom (obsolete tables awaiting GC, compaction slack).
func (c Config) regionSize() int64 {
	data := int64(c.KeyRange) * int64(c.KeySize+c.ValSize)
	per := data*6/int64(max(1, c.MemoryNodes)) + 128<<20
	return per
}

// Key formats key i at the configured key size (db_bench-style fixed-width
// decimal, shared by workloads and shard boundaries).
func (c Config) Key(i int) []byte {
	return []byte(fmt.Sprintf("%0*d", c.KeySize, i))
}

// Value deterministically generates the value for key i.
func (c Config) Value(i int) []byte {
	v := make([]byte, c.ValSize)
	state := uint64(i)*0x9E3779B97F4A7C15 + 1
	for j := range v {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v[j] = 'a' + byte(state%26)
	}
	return v
}

// threadRand returns the per-thread random stream.
func (c Config) threadRand(thread int) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + int64(thread)*7919))
}

// zipf builds the thread's skewed rank generator, or nil for uniform runs.
func (c Config) zipf(r *rand.Rand) *rand.Zipf {
	if c.Zipf <= 1 {
		return nil
	}
	return rand.NewZipf(r, c.Zipf, 1, uint64(c.KeyRange-1))
}

// nextKey draws one key index: uniform when z is nil (the historical
// stream, unchanged), else a Zipf rank scrambled over [0, KeyRange).
func (c Config) nextKey(r *rand.Rand, z *rand.Zipf) int {
	if z == nil {
		return r.Intn(c.KeyRange)
	}
	return int(scramble(z.Uint64()) % uint64(c.KeyRange))
}

// hotKey draws one measured-phase key for hot-banded workloads: with
// probability HotFrac the key comes from a band HotWidth wide whose
// origin starts at 40% of the keyspace and advances by HotShift at each
// third of the thread's run. Only called when HotFrac > 0, so uniform
// workloads keep their historical random stream bit-identical.
func (c Config) hotKey(r *rand.Rand, i, per int) int {
	if r.Float64() >= c.HotFrac {
		return r.Intn(c.KeyRange)
	}
	phase := 0
	if per > 0 {
		phase = 3 * i / per
		if phase > 2 {
			phase = 2
		}
	}
	width := int(float64(c.KeyRange) * c.HotWidth)
	if width < 1 {
		width = 1
	}
	origin := int(float64(c.KeyRange) * (0.4 + float64(phase)*c.HotShift))
	return (origin + r.Intn(width)) % c.KeyRange
}

// scramble is splitmix64's finalizer: it maps the dense hot ranks
// 0,1,2,... onto keys scattered across the whole space, so skew stresses
// the cache rather than one shard.
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
