package bench

import (
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
	"dlsm/internal/telemetry"
)

// Result is one measured data point.
type Result struct {
	System  System
	Threads int
	Ops     int64
	Elapsed time.Duration // virtual time
	// Throughput in operations/second of virtual time (entries/second for
	// scans).
	Throughput float64
	P50, P99   time.Duration
	SpaceUsed  int64
	// RemoteCPUUtil is the memory node's core utilization during the
	// measured phase (Fig 12 bar annotations).
	RemoteCPUUtil float64
	// ComputeCPUUtil is the compute node's core utilization during the
	// measured phase (the FigOffload headline: offloading must lower it).
	ComputeCPUUtil float64
	// Net traffic during the measured phase, compute<->first memory node.
	NetToMem, NetFromMem int64
	// Metrics is the end-of-run telemetry snapshot: the system's engine
	// registries merged with the fabric's per-link registry. Cumulative
	// over the whole run (preload included), unlike the deltas above.
	Metrics telemetry.Snapshot
}

// opKind selects the measured operation mix.
type opKind int

const (
	opFill opKind = iota
	opRead
	opMixed
	opScan
	opScanRand
)

// FillRandom measures random-write throughput from an empty tree
// ("fillrandom", Fig 7).
func FillRandom(cfg Config) Result { return run(cfg.Normalize(), opFill, false) }

// ReadRandom preloads every key, waits for compaction to settle, then
// measures random point reads ("readrandom", Fig 8).
func ReadRandom(cfg Config) Result { return run(cfg.Normalize(), opRead, true) }

// Mixed preloads, then measures a read/write mix at cfg.ReadRatio
// ("readrandomwriterandom", Fig 10).
func Mixed(cfg Config) Result { return run(cfg.Normalize(), opMixed, true) }

// ReadSeq preloads, settles, then measures full-table scans ("readseq",
// Fig 11); throughput is entries/second.
func ReadSeq(cfg Config) Result { return run(cfg.Normalize(), opScan, true) }

// ScanRandom preloads, settles, then measures ScanLen-entry range scans
// from uniform random start keys ("seekrandom"); throughput is
// entries/second.
func ScanRandom(cfg Config) Result { return run(cfg.Normalize(), opScanRand, true) }

func run(cfg Config, kind opKind, preload bool) Result {
	env, fab, cns, servers := deployment(cfg)
	var res Result
	env.Run(func() {
		db := openSystem(cfg.System, cfg, cns[0], servers)
		if preload {
			doPreload(env, cfg, db)
			db.Settle()
		}
		if cfg.Warmup > 0 {
			doWarmup(env, cfg, kind, db)
			if preload {
				// Read-involving measurements settle after the warmup the
				// same way they settle after preload: a rebalance split
				// leaves its copied range as a stack of small L0 tables,
				// and reads should see the compacted steady state.
				db.Settle()
			}
		}
		res = measure(env, fab, cfg, kind, db, cns[0], servers)
		db.Close()
		// Re-snapshot after Close drained the background workers, so
		// late compactions (and any fault-driven retries/fallbacks they
		// performed) are part of the reported metrics.
		res.Metrics = fab.Telemetry().Snapshot()
		if t, ok := db.(interface{ TelemetrySnapshot() telemetry.Snapshot }); ok {
			res.Metrics = telemetry.Merge(t.TelemetrySnapshot(), res.Metrics)
		}
		fab.Close()
	})
	env.Wait()
	// Figure sweeps run many deployments back-to-back; return each one's
	// registered regions to the OS promptly.
	debug.FreeOSMemory()
	return res
}

// doPreload inserts every key exactly once (shuffled), with 16 loader
// threads, outside the measured window.
func doPreload(env *sim.Env, cfg Config, db kvDB) {
	const loaders = 16
	perm := rand.New(rand.NewSource(cfg.Seed ^ 0x5ee0)).Perm(cfg.Preload)
	wg := sim.NewWaitGroup(env)
	for t := 0; t < loaders; t++ {
		t := t
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := t; i < len(perm); i += loaders {
				k := perm[i]
				s.Put(cfg.Key(k), cfg.Value(k))
			}
		})
	}
	wg.Wait()
}

// doWarmup runs cfg.Warmup unmeasured operations of the same mix across
// cfg.Threads entities, on random streams disjoint from the measured
// phase's.
func doWarmup(env *sim.Env, cfg Config, kind opKind, db kvDB) {
	wg := sim.NewWaitGroup(env)
	for t := 0; t < cfg.Threads; t++ {
		t := t
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			rnd := cfg.threadRand(t + 100003)
			var lat []time.Duration
			opLoop(env, cfg, kind, s, rnd, cfg.Warmup/cfg.Threads, &lat)
		})
	}
	wg.Wait()
}

// measure runs the configured operation mix across cfg.Threads entities and
// aggregates the result.
func measure(env *sim.Env, fab *rdma.Fabric, cfg Config, kind opKind, db kvDB, cn *rdma.Node, servers []*memnode.Server) Result {
	mn := servers[0].Node()
	mn.CPU.ResetStats()
	cn.CPU.ResetStats()
	toMem0, _ := fab.LinkStats(cn, mn)
	fromMem0, _ := fab.LinkStats(mn, cn)

	type threadOut struct {
		ops int64
		lat []time.Duration
	}
	outs := make([]threadOut, cfg.Threads)
	start := env.Now()
	wg := sim.NewWaitGroup(env)
	for t := 0; t < cfg.Threads; t++ {
		t := t
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			rnd := cfg.threadRand(t)
			per := cfg.N / cfg.Threads
			switch kind {
			case opScan:
				outs[t].ops = scanOnce(env, s, &outs[t].lat)
			case opScanRand:
				outs[t].ops = scanRandomLoop(env, cfg, s, rnd, per, &outs[t].lat)
			default:
				outs[t].ops = opLoop(env, cfg, kind, s, rnd, per, &outs[t].lat)
			}
		})
	}
	wg.Wait()
	elapsed := time.Duration(env.Now() - start)

	var res Result
	res.System = cfg.System
	res.Threads = cfg.Threads
	res.Elapsed = elapsed
	for _, o := range outs {
		res.Ops += o.ops
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	var all []time.Duration
	for _, o := range outs {
		all = append(all, o.lat...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
	}
	res.SpaceUsed = db.SpaceUsed()
	res.RemoteCPUUtil = mn.CPU.Utilization()
	res.ComputeCPUUtil = cn.CPU.Utilization()
	toMem1, _ := fab.LinkStats(cn, mn)
	fromMem1, _ := fab.LinkStats(mn, cn)
	res.NetToMem = toMem1 - toMem0
	res.NetFromMem = fromMem1 - fromMem0
	res.Metrics = fab.Telemetry().Snapshot()
	if t, ok := db.(interface{ TelemetrySnapshot() telemetry.Snapshot }); ok {
		res.Metrics = telemetry.Merge(t.TelemetrySnapshot(), res.Metrics)
	}
	return res
}

// opLoop executes per point operations, sampling latency every 32nd op.
// Key choice is uniform, or Zipf-skewed when cfg.Zipf > 1.
func opLoop(env *sim.Env, cfg Config, kind opKind, s kvSession, rnd *rand.Rand, per int, lat *[]time.Duration) int64 {
	z := cfg.zipf(rnd)
	var ops int64
	for i := 0; i < per; i++ {
		var k int
		if cfg.HotFrac > 0 {
			k = cfg.hotKey(rnd, i, per)
		} else {
			k = cfg.nextKey(rnd, z)
		}
		read := kind == opRead || (kind == opMixed && rnd.Float64() < cfg.ReadRatio)
		sample := i%32 == 0
		var t0 sim.Time
		if sample {
			t0 = env.Now()
		}
		if read {
			s.Get(cfg.Key(k)) // misses are expected and counted (db_bench)
		} else {
			s.Put(cfg.Key(k), cfg.Value(k))
		}
		if sample {
			*lat = append(*lat, time.Duration(env.Now()-t0))
		}
		ops++
	}
	return ops
}

// scanRandomLoop runs per/ScanLen bounded scans from random start keys,
// counting entries visited; per-entry latency is sampled every 4th scan.
func scanRandomLoop(env *sim.Env, cfg Config, s kvSession, rnd *rand.Rand, per int, lat *[]time.Duration) int64 {
	scans := per / cfg.ScanLen
	if scans < 1 {
		scans = 1
	}
	var n int64
	for i := 0; i < scans; i++ {
		start := cfg.Key(rnd.Intn(cfg.KeyRange))
		t0 := env.Now()
		cnt := 0
		s.Scan(start, func(k, v []byte) bool {
			cnt++
			return cnt < cfg.ScanLen
		})
		n += int64(cnt)
		if cnt > 0 && i%4 == 0 {
			*lat = append(*lat, time.Duration(env.Now()-t0)/time.Duration(cnt))
		}
	}
	return n
}

// scanOnce iterates the whole database once, returning entries visited.
func scanOnce(env *sim.Env, s kvSession, lat *[]time.Duration) int64 {
	var n int64
	t0 := env.Now()
	s.Scan(nil, func(k, v []byte) bool {
		n++
		return true
	})
	if n > 0 {
		*lat = append(*lat, time.Duration(env.Now()-t0)/time.Duration(n))
	}
	return n
}
