package bench

import (
	"time"

	"dlsm/internal/faults"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/rpc"
	"dlsm/internal/sim"
)

// FaultScenarios lists the supported Config.FaultScenario values in the
// order FigFaults sweeps them.
var FaultScenarios = []string{"none", "delay", "flap", "outage"}

// applyFaults attaches a deterministic injector implementing
// cfg.FaultScenario to a freshly built deployment. Drops are never used:
// on one-sided data paths a silently dropped WRITE is indistinguishable
// from success and would corrupt the store — real NICs fail the QP
// instead, which is what "flap" and "outage" model.
func applyFaults(env *sim.Env, fab *rdma.Fabric, cns []*rdma.Node, servers []*memnode.Server, cfg Config) {
	inj := faults.New(fab, uint64(cfg.Seed))
	switch cfg.FaultScenario {
	case "", "none":
	case "delay":
		inj.AddRule(faults.Rule{Name: "delay-write", Op: rdma.OpWrite, From: faults.Any, To: faults.Any,
			Prob: 0.05, Delay: 20 * time.Microsecond})
		inj.AddRule(faults.Rule{Name: "delay-read", Op: rdma.OpRead, From: faults.Any, To: faults.Any,
			Prob: 0.05, Delay: 20 * time.Microsecond})
		inj.AddRule(faults.Rule{Name: "delay-send", Op: rdma.OpSend, From: faults.Any, To: faults.Any,
			Prob: 0.2, Delay: 50 * time.Microsecond})
	case "flap":
		// 100us down in every millisecond on the primary compute<->memory
		// link, for the whole run.
		inj.FlapLink(cns[0].ID, servers[0].Node().ID, 100*time.Microsecond, 900*time.Microsecond, 0, 0)
	case "outage":
		// Eight 3ms RPC-service blackouts, 6ms apart — long enough to
		// outlast the full retry schedule. One-sided RDMA to the data
		// regions keeps working throughout; near-data compactions time
		// out, retry, and fall back to the compute node.
		srv := servers[0]
		for i := 0; i < 8; i++ {
			at := sim.Time((1 + 6*i)) * sim.Time(time.Millisecond)
			inj.At(at, srv.StopService)
			inj.At(at+sim.Time(3*time.Millisecond), srv.RestartService)
		}
	default:
		panic("bench: unknown fault scenario " + cfg.FaultScenario)
	}
}

// faultCompactPolicy and faultFreePolicy shrink the engine's RPC retry
// policies to the injected fault windows, so a blackout costs milliseconds
// of virtual time rather than the production multi-second deadlines.
var faultCompactPolicy = rpc.Policy{
	Timeout:     time.Millisecond,
	MaxAttempts: 3,
	Backoff:     100 * time.Microsecond,
	MaxBackoff:  time.Millisecond,
	Jitter:      0.2,
}

var faultFreePolicy = rpc.Policy{
	Timeout:     500 * time.Microsecond,
	MaxAttempts: 2,
	Backoff:     100 * time.Microsecond,
}

// FigFaults measures dLSM random-write throughput under each injected
// fault scenario (robustness figure: goodput under fault load). All
// scenarios share one seed, so runs are individually reproducible.
func FigFaults(n, threads int) *Figure {
	f := &Figure{Name: "Fig F", Title: "fillrandom under injected faults (dLSM)", XLabel: "scenario"}
	s := Series{Label: "dLSM"}
	for _, sc := range FaultScenarios {
		cfg := Config{System: DLSM, Threads: threads, N: n, FaultScenario: sc}
		r := FillRandom(cfg)
		s.Points = append(s.Points, Point{X: sc, R: r})
		progress("faults %s: %s ops/s (compaction fallbacks: %d)", sc,
			fmtTput(r.Throughput), r.Metrics.Counters["compaction.fallback"])
	}
	f.Series = []Series{s}
	return f
}
