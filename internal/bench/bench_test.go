package bench

import (
	"testing"
	"time"
)

// Small-N smoke configurations: these validate the harness mechanics and
// the qualitative orderings, not absolute numbers.
const smokeN = 30_000

func TestFillRandomDLSM(t *testing.T) {
	r := FillRandom(Config{System: DLSM, Threads: 8, N: smokeN})
	if r.Ops < smokeN*9/10 {
		t.Fatalf("ops = %d, want ~%d", r.Ops, smokeN)
	}
	if r.Throughput <= 0 || r.Elapsed <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	t.Logf("dLSM fill: %.0f ops/s, p50=%v p99=%v space=%dMB",
		r.Throughput, r.P50, r.P99, r.SpaceUsed>>20)
}

func TestReadRandomAfterSettle(t *testing.T) {
	r := ReadRandom(Config{System: DLSM, Threads: 8, N: smokeN, KeyRange: smokeN})
	if r.Ops < smokeN*9/10 {
		t.Fatalf("ops = %d", r.Ops)
	}
	t.Logf("dLSM read: %.0f ops/s p50=%v", r.Throughput, r.P50)
}

func TestEverySystemFillsAndReads(t *testing.T) {
	for _, sys := range AllSystems {
		cfg := Config{System: sys, Threads: 4, N: 8_000, KeyRange: 8_000}
		w := FillRandom(cfg)
		if w.Ops == 0 || w.Throughput <= 0 {
			t.Fatalf("%v fill degenerate: %+v", sys, w)
		}
		r := ReadRandom(cfg)
		if r.Ops == 0 || r.Throughput <= 0 {
			t.Fatalf("%v read degenerate: %+v", sys, r)
		}
		t.Logf("%-22s fill=%9.0f ops/s  read=%9.0f ops/s", sys, w.Throughput, r.Throughput)
	}
}

func TestMixedWorkload(t *testing.T) {
	r := Mixed(Config{System: DLSM, Threads: 8, N: smokeN, KeyRange: smokeN, ReadRatio: 0.5, Lambda: 8})
	if r.Ops < smokeN*9/10 {
		t.Fatalf("ops = %d", r.Ops)
	}
	t.Logf("dLSM-8 mixed 50%%: %.0f ops/s", r.Throughput)
}

func TestReadSeqScansEverything(t *testing.T) {
	r := ReadSeq(Config{System: DLSM, Threads: 2, N: 10_000, KeyRange: 10_000})
	if r.Ops != 2*10_000 {
		t.Fatalf("scan visited %d entries, want %d", r.Ops, 2*10_000)
	}
	t.Logf("dLSM readseq: %.0f entries/s", r.Throughput)
}

func TestClusterRun(t *testing.T) {
	cfg := Config{System: DLSM, Threads: 8, N: 16_000, KeyRange: 16_000,
		ComputeNodes: 2, MemoryNodes: 2, Lambda: 2}
	w := runCluster(cfg, opFill, false)
	if w.Ops < 15_000 {
		t.Fatalf("cluster ops = %d", w.Ops)
	}
	if w.ComputeNodes != 2 || w.MemoryNodes != 2 {
		t.Fatalf("cluster shape: %+v", w)
	}
	t.Logf("2C2M fill: %.0f ops/s", w.Throughput)
}

func TestDLSMBeatsBaselinesOnWrites(t *testing.T) {
	// The headline claim at moderate scale: dLSM writes faster than every
	// baseline (Fig 7a). Absolute margins are checked in EXPERIMENTS.md.
	cfg := Config{Threads: 8, N: 20_000}
	cfg.System = DLSM
	d := FillRandom(cfg)
	for _, sys := range []System{RocksRDMA8K, NovaLSM, Sherman} {
		c := cfg
		c.System = sys
		r := FillRandom(c)
		if r.Throughput >= d.Throughput {
			t.Errorf("%v writes %.0f ops/s >= dLSM %.0f ops/s", sys, r.Throughput, d.Throughput)
		}
		t.Logf("dLSM %.0f vs %v %.0f (%.1fx)", d.Throughput, sys, r.Throughput, d.Throughput/r.Throughput)
	}
}

func TestNearDataCompactionHelpsUnderWriteLoad(t *testing.T) {
	base := Config{System: DLSM, Threads: 16, N: 40_000}
	with := FillRandom(base)
	without := base
	without.DisableNearData = true
	wo := FillRandom(without)
	t.Logf("near-data %.0f vs compute-side %.0f ops/s (%.2fx)",
		with.Throughput, wo.Throughput, with.Throughput/wo.Throughput)
	if with.Throughput < wo.Throughput*95/100 {
		t.Errorf("near-data compaction slower than compute-side: %.0f vs %.0f",
			with.Throughput, wo.Throughput)
	}
}

func TestRemoteCPUUtilizationReported(t *testing.T) {
	r := FillRandom(Config{System: DLSM, Threads: 8, N: smokeN, MemoryCores: 2})
	if r.RemoteCPUUtil <= 0 || r.RemoteCPUUtil > 1 {
		t.Fatalf("remote CPU utilization = %f", r.RemoteCPUUtil)
	}
	t.Logf("remote CPU (2 cores): %.0f%%", r.RemoteCPUUtil*100)
}

func TestLatencySamplesSane(t *testing.T) {
	// Read latencies include at least one network round trip, so the
	// percentiles must be positive and ordered. (Write latency is not
	// asserted: Puts buffer locally and their CPU charges are batched,
	// so an individual Put can complete in zero virtual time.)
	r := ReadRandom(Config{System: DLSM, Threads: 4, N: smokeN, KeyRange: smokeN})
	if r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("latency percentiles: p50=%v p99=%v", r.P50, r.P99)
	}
	if r.P50 > time.Second {
		t.Fatalf("p50 = %v implausible", r.P50)
	}
	t.Logf("read p50=%v p99=%v", r.P50, r.P99)
}
