package bench

import "testing"

func TestFaultScenariosRunToCompletion(t *testing.T) {
	for _, sc := range FaultScenarios {
		r := FillRandom(Config{System: DLSM, Threads: 4, N: smokeN / 3, FaultScenario: sc})
		if r.Ops < int64(smokeN/3)*9/10 {
			t.Fatalf("%s: ops = %d", sc, r.Ops)
		}
		switch sc {
		case "delay":
			if r.Metrics.Counters["faults.injected"] == 0 {
				t.Errorf("delay: faults.injected = 0")
			}
		case "outage":
			if r.Metrics.Counters["compaction.fallback"] == 0 {
				t.Errorf("outage: compaction.fallback = 0")
			}
			if r.Metrics.Counters["rpc.retries"] == 0 {
				t.Errorf("outage: rpc.retries = 0")
			}
		}
		t.Logf("%-7s %.0f ops/s (fallbacks=%d retries=%d injected=%d)", sc, r.Throughput,
			r.Metrics.Counters["compaction.fallback"],
			r.Metrics.Counters["rpc.retries"],
			r.Metrics.Counters["faults.injected"])
	}
}
