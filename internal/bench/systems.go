// Package bench reproduces the paper's evaluation (§XI): db_bench-style
// workload generators, a virtual-time measurement runner, the six evaluated
// systems as configurations over the shared substrate, and one driver per
// figure. Throughput numbers are virtual-time based and therefore reflect
// the calibrated hardware model, not the host machine.
package bench

import (
	"fmt"
	"time"

	"dlsm/internal/baselines/sherman"
	"dlsm/internal/engine"
	"dlsm/internal/memnode"
	"dlsm/internal/rdma"
	"dlsm/internal/repl"
	"dlsm/internal/shard"
	"dlsm/internal/sim"
	"dlsm/internal/sstable"
	"dlsm/internal/telemetry"
)

// System identifies one evaluated system (§XI-A).
type System int

// The evaluated systems.
const (
	DLSM        System = iota // this paper
	DLSMBlock                 // dLSM with 8KB block SSTables (Fig 13 ablation)
	RocksRDMA8K               // Baseline #1: RocksDB port, 8KB blocks
	RocksRDMA2K               // Baseline #2: RocksDB port, 2KB blocks
	MemoryRocks               // Baseline #3: entry-sized blocks, cached index
	NovaLSM                   // Baseline #4: tmpfs-RPC storage, 64 subranges
	Sherman                   // Baseline #5: disaggregated B+-tree
)

func (s System) String() string {
	switch s {
	case DLSM:
		return "dLSM"
	case DLSMBlock:
		return "dLSM-Block"
	case RocksRDMA8K:
		return "RocksDB-RDMA (8KB)"
	case RocksRDMA2K:
		return "RocksDB-RDMA (2KB)"
	case MemoryRocks:
		return "Memory-RocksDB-RDMA"
	case NovaLSM:
		return "Nova-LSM"
	case Sherman:
		return "Sherman"
	}
	return "unknown"
}

// AllLSM lists the LSM-based systems (everything but Sherman).
var AllLSM = []System{DLSM, RocksRDMA8K, RocksRDMA2K, MemoryRocks, NovaLSM}

// AllSystems lists every comparison system of Fig 7(a)/8.
var AllSystems = []System{DLSM, RocksRDMA8K, RocksRDMA2K, MemoryRocks, NovaLSM, Sherman}

// kvSession is the per-thread operation surface shared by all systems.
type kvSession interface {
	Put(key, value []byte)
	Get(key []byte) ([]byte, error)
	// Scan iterates from start in key order until fn returns false.
	Scan(start []byte, fn func(k, v []byte) bool)
	Close()
}

// kvDB abstracts a system under test.
type kvDB interface {
	NewSession() kvSession
	// Settle flushes buffers and waits for background work to finish
	// (read benchmarks measure after compaction completes, §XI-C2).
	Settle()
	SpaceUsed() int64
	Close()
}

// engineOptions builds the engine configuration for an LSM system.
// lambda > 1 divides the background worker budget across shards.
func engineOptions(sys System, cfg Config, lambda int) engine.Options {
	o := engine.DLSM()
	// The write buffer and table budget is global; each shard gets its
	// slice so total memory use is lambda-independent.
	per := cfg.memTableSize() / int64(lambda)
	if per < 64<<10 {
		per = 64 << 10
	}
	o.MemTableSize = per
	o.TableSize = per
	o.L1MaxBytes = 8 * o.TableSize
	o.EntrySizeHint = cfg.KeySize + cfg.ValSize
	o.L0StopTrigger = 36
	if cfg.Bulkload {
		o.L0StopTrigger = 0
	}
	o.FlushWorkers = workersPerShard(4, lambda)
	o.CompactionWorkers = workersPerShard(12, lambda)
	o.Subcompactions = 12
	o.ReplyBufSize = 32 << 20
	// Whole-node cache budget; shard.New splits it across the λ shards.
	o.CacheBudgetBytes = cfg.CacheBudgetBytes
	// Elastic sharding (FigRebalance): the balancer watches per-shard load
	// and splits/merges/migrates online. Off keeps the routing table
	// static — every other figure byte-identical.
	o.AutoBalance = cfg.AutoBalance
	if cfg.BalanceInterval > 0 {
		o.BalanceInterval = cfg.BalanceInterval
	}
	// Scan readahead (FigScan sweep); zero keeps the engine defaults
	// (depth 1: the synchronous scan path, bit-identical to the seed).
	if cfg.PrefetchDepth > 0 {
		o.PrefetchDepth = cfg.PrefetchDepth
	}
	if cfg.PrefetchBytes > 0 {
		o.PrefetchBytes = cfg.PrefetchBytes
	}
	// Remote WAL mode (FigWAL sweep); WALSize keeps its default of
	// 8 MemTables per shard slot.
	o.Durability = cfg.Durability
	o.WALPerWriteCommit = cfg.WALPerWrite
	// Cost-model override (FigOffload makes build layers CPU-visible).
	if cfg.Costs != (sim.CostModel{}) {
		o.Costs = cfg.Costs
	}
	// Write-path offloading (FigOffload ablation); all-false keeps the
	// flush path bit-identical to the seed figures.
	o.OffloadFlush = cfg.OffloadFlush
	o.OffloadIndexBuild = cfg.OffloadIndexBuild
	o.OffloadFilter = cfg.OffloadFilter
	// Replication (FigRepl sweep): quorum ack across two copies; the
	// replica server itself is attached by openSystemRange, which
	// dedicates the last memory node to the backup role.
	if cfg.ReplicationFactor > 1 {
		o.ReplicationFactor = cfg.ReplicationFactor
		o.ReplAck = repl.AckQuorum
		if cfg.ReplMode == "log" {
			o.ReplMode = repl.LogReplay
		}
	}

	switch sys {
	case DLSM:
	case DLSMBlock:
		o.Format = sstable.Block
		o.BlockSize = 8 << 10
	case RocksRDMA8K, RocksRDMA2K, MemoryRocks:
		o.Format = sstable.Block
		o.BlockSize = map[System]int{RocksRDMA8K: 8 << 10, RocksRDMA2K: 2 << 10, MemoryRocks: 1}[sys]
		o.Transport = engine.TransportFS
		o.CompactionSite = engine.CompactLocal
		o.AsyncFlush = false
		o.SwitchPolicy = engine.SwitchLocked
		o.WritePathExtra = 900 * time.Nanosecond
	case NovaLSM:
		o.Format = sstable.Block
		o.BlockSize = 8 << 10
		o.Transport = engine.TransportTmpfsRPC
		o.CompactionSite = engine.CompactLocal
		o.AsyncFlush = false
		o.SwitchPolicy = engine.SwitchLocked
		// Nova-LSM's write path routes through its range index and LTC
		// machinery; measured against dLSM's lean path in §XI-C1.
		o.WritePathExtra = 4500 * time.Nanosecond
	}
	if cfg.DisableNearData && sys == DLSM {
		o.CompactionSite = engine.CompactLocal // Fig 12's "no near-data" group
	}
	if cfg.FaultScenario != "" && cfg.FaultScenario != "none" {
		o.CompactRPC = faultCompactPolicy
		o.FreeRPC = faultFreePolicy
	}
	return o
}

func workersPerShard(total, lambda int) int {
	n := total / lambda
	if n < 1 {
		n = 1
	}
	return n
}

// lambdaFor returns the shard count of a system under cfg: Nova-LSM always
// runs its 64 subranges; dLSM uses cfg.Lambda (§VII).
func lambdaFor(sys System, cfg Config) int {
	if sys == NovaLSM {
		return 64
	}
	if sys == DLSM || sys == DLSMBlock {
		if cfg.Lambda > 1 {
			return cfg.Lambda
		}
	}
	return 1
}

// openSystem instantiates a system on compute node cn over servers,
// covering the full key range.
func openSystem(sys System, cfg Config, cn *rdma.Node, servers []*memnode.Server) kvDB {
	return openSystemRange(sys, cfg, cn, servers, 0, cfg.KeyRange)
}

// openSystemRange opens a system covering user keys [lo, hi) — the slice a
// compute node owns in cluster runs (§IX).
func openSystemRange(sys System, cfg Config, cn *rdma.Node, servers []*memnode.Server, lo, hi int) kvDB {
	if sys == Sherman {
		t := sherman.New(cn, servers[0], sherman.DefaultOptions())
		return &shermanDB{t: t}
	}
	lambda := lambdaFor(sys, cfg)
	// With replication on, the last memory node is the passive backup:
	// shards spread over the others and every durable artifact mirrors
	// onto it (engine.Options.Replica).
	primaries := servers
	var replica *memnode.Server
	if cfg.ReplicationFactor > 1 && len(servers) > 1 && (sys == DLSM || sys == DLSMBlock) {
		primaries = servers[:len(servers)-1]
		replica = servers[len(servers)-1]
	}
	// Spreading data over m memory nodes requires at least m shards
	// (Fig 14a scales memory nodes with lambda = m).
	if len(primaries) > lambda {
		lambda = len(primaries)
	}
	var bounds [][]byte
	for j := 1; j < lambda; j++ {
		bounds = append(bounds, cfg.Key(lo+(hi-lo)*j/lambda))
	}
	opts := engineOptions(sys, cfg, lambda)
	opts.Replica = replica
	db, err := shard.New(cn, primaries, lambda, bounds, opts)
	if err != nil {
		panic(err) // bench geometries are derived, never user input
	}
	return &lsmDB{db: db, servers: uniqueServers(servers)}
}

func uniqueServers(servers []*memnode.Server) []*memnode.Server {
	seen := map[*memnode.Server]bool{}
	var out []*memnode.Server
	for _, s := range servers {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// --- LSM adapter ------------------------------------------------------------

type lsmDB struct {
	db      *shard.DB
	servers []*memnode.Server
}

func (l *lsmDB) NewSession() kvSession { return &lsmSession{s: l.db.NewSession()} }
func (l *lsmDB) Settle() {
	l.db.Flush()
	l.db.WaitForCompactions()
}

// SpaceUsed queries each distinct memory node once (shards share servers,
// so summing per-shard engine numbers would multiply-count them).
func (l *lsmDB) SpaceUsed() int64 {
	var n int64
	for _, s := range l.servers {
		n += s.ComputeUsed() + s.SelfUsed() + s.FSUsed()
	}
	return n
}
func (l *lsmDB) Close() { l.db.Close() }

// TelemetrySnapshot exposes the merged per-shard engine metrics; the bench
// runner combines it with the fabric's registry into Result.Metrics.
func (l *lsmDB) TelemetrySnapshot() telemetry.Snapshot {
	return l.db.TelemetrySnapshot()
}

type lsmSession struct{ s *shard.Session }

// Put panics on write errors: bench never sets StallTimeout or writes to
// closed sessions, so any error here is an engine bug, not load shedding.
func (s *lsmSession) Put(k, v []byte) {
	if err := s.s.Put(k, v); err != nil {
		panic(fmt.Sprintf("bench: put: %v", err))
	}
}
func (s *lsmSession) Get(k []byte) ([]byte, error) {
	v, err := s.s.Get(k)
	if err == engine.ErrNotFound {
		return nil, errNotFound
	}
	return v, err
}

func (s *lsmSession) Scan(start []byte, fn func(k, v []byte) bool) {
	it := s.s.NewIterator()
	defer it.Close()
	if start == nil {
		it.First()
	} else {
		it.SeekGE(start)
	}
	for ; it.Valid(); it.Next() {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}

func (s *lsmSession) Close() { s.s.Close() }

// --- Sherman adapter ----------------------------------------------------------

type shermanDB struct{ t *sherman.Tree }

func (d *shermanDB) NewSession() kvSession { return &shermanSession{s: d.t.NewSession()} }
func (d *shermanDB) Settle()               {}
func (d *shermanDB) SpaceUsed() int64      { return d.t.SpaceUsed() }
func (d *shermanDB) Close()                {}

type shermanSession struct{ s *sherman.Session }

func (s *shermanSession) Put(k, v []byte) {
	if err := s.s.Put(k, v); err != nil {
		panic(fmt.Sprintf("sherman put: %v", err))
	}
}

func (s *shermanSession) Get(k []byte) ([]byte, error) {
	v, err := s.s.Get(k)
	if err == sherman.ErrNotFound {
		return nil, errNotFound
	}
	return v, err
}

func (s *shermanSession) Scan(start []byte, fn func(k, v []byte) bool) {
	s.s.Scan(start, fn)
}

func (s *shermanSession) Close() { s.s.Close() }

type notFoundError struct{}

func (notFoundError) Error() string { return "bench: key not found" }

var errNotFound = notFoundError{}

// deployment builds the fabric, compute and memory nodes for one run.
func deployment(cfg Config) (*sim.Env, *rdma.Fabric, []*rdma.Node, []*memnode.Server) {
	env := sim.NewEnv()
	link := cfg.Link
	if link == (rdma.LinkParams{}) {
		link = rdma.EDR100()
	}
	fab := rdma.NewFabric(env, link)
	computeNodes := max(1, cfg.ComputeNodes)
	memoryNodes := max(1, cfg.MemoryNodes)
	computeCores := cfg.ComputeCores
	if computeCores == 0 {
		computeCores = 24
	}
	memoryCores := cfg.MemoryCores
	if memoryCores == 0 {
		memoryCores = 12
	}
	var cns []*rdma.Node
	for i := 0; i < computeNodes; i++ {
		cns = append(cns, fab.AddNode(fmt.Sprintf("compute-%d", i), computeCores))
	}
	var servers []*memnode.Server
	mcfg := memnode.DefaultConfig()
	if cfg.Costs != (sim.CostModel{}) {
		mcfg.Costs = cfg.Costs
	}
	mcfg.ComputeRegionSize = cfg.regionSize()
	mcfg.SelfRegionSize = cfg.regionSize()
	mcfg.Subcompactions = 12
	// The log region registers lazily on first OpenLog, so runs without
	// durability pay nothing; with it on, size for λ slots of 8 MemTables.
	if cfg.Durability == engine.DurabilityNone {
		mcfg.LogRegionSize = 0
	} else {
		mcfg.LogRegionSize = 8*cfg.memTableSize() + 64<<20
	}
	for i := 0; i < memoryNodes; i++ {
		mn := fab.AddNode(fmt.Sprintf("memory-%d", i), memoryCores)
		srv := memnode.NewServer(mn, mcfg)
		srv.Start()
		servers = append(servers, srv)
	}
	applyFaults(env, fab, cns, servers, cfg)
	return env, fab, cns, servers
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
