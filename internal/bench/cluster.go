package bench

import (
	"math/rand"
	"runtime/debug"
	"time"

	"dlsm/internal/memnode"
	"dlsm/internal/sim"
)

// ClusterResult aggregates a multi-compute run (Fig 14/15).
type ClusterResult struct {
	System       System
	ComputeNodes int
	MemoryNodes  int
	Threads      int // total across compute nodes
	Ops          int64
	Elapsed      time.Duration
	Throughput   float64
}

// runCluster measures a c-compute x m-memory run: the key space slices per
// compute node (shards round-robin over memory nodes, §IX), drivers run
// against their own compute node only.
func runCluster(cfg Config, kind opKind, preload bool) ClusterResult {
	cfg = cfg.Normalize()
	c := max(1, cfg.ComputeNodes)
	env, fab, cns, servers := deployment(cfg)
	var res ClusterResult
	env.Run(func() {
		lambda := lambdaFor(cfg.System, cfg)
		dbs := make([]kvDB, c)
		for i := 0; i < c; i++ {
			lo, hi := cfg.KeyRange*i/c, cfg.KeyRange*(i+1)/c
			// Rotate the server list so compute i's shards start on a
			// different memory node (round-robin placement, Fig 5).
			rotated := make([]*memnode.Server, len(servers))
			for j := range servers {
				rotated[j] = servers[(i*lambda+j)%len(servers)]
			}
			dbs[i] = openSystemRange(cfg.System, cfg, cns[i], rotated, lo, hi)
		}

		if preload {
			wg := sim.NewWaitGroup(env)
			for i := 0; i < c; i++ {
				i := i
				wg.Add(1)
				env.Go(func() {
					defer wg.Done()
					lo, hi := cfg.KeyRange*i/c, cfg.KeyRange*(i+1)/c
					preloadRange(env, cfg, dbs[i], lo, hi)
					dbs[i].Settle()
				})
			}
			wg.Wait()
		}

		perNodeThreads := max(1, cfg.Threads/c)
		perOps := cfg.N / (c * perNodeThreads)
		start := env.Now()
		wg := sim.NewWaitGroup(env)
		var outs = make([]int64, c*perNodeThreads)
		for i := 0; i < c; i++ {
			for t := 0; t < perNodeThreads; t++ {
				i, t := i, t
				wg.Add(1)
				env.Go(func() {
					defer wg.Done()
					s := dbs[i].NewSession()
					defer s.Close()
					rnd := cfg.threadRand(i*64 + t)
					lo, hi := cfg.KeyRange*i/c, cfg.KeyRange*(i+1)/c
					var lat []time.Duration
					outs[i*perNodeThreads+t] = opLoopRange(env, cfg, kind, s, rnd, perOps, lo, hi, &lat)
				})
			}
		}
		wg.Wait()
		elapsed := time.Duration(env.Now() - start)

		res = ClusterResult{
			System:       cfg.System,
			ComputeNodes: c,
			MemoryNodes:  len(servers),
			Threads:      c * perNodeThreads,
			Elapsed:      elapsed,
		}
		for _, o := range outs {
			res.Ops += o
		}
		if elapsed > 0 {
			res.Throughput = float64(res.Ops) / elapsed.Seconds()
		}
		for _, db := range dbs {
			db.Close()
		}
		fab.Close()
	})
	env.Wait()
	debug.FreeOSMemory()
	return res
}

// preloadRange inserts keys [lo, hi) once each with 16 loaders.
func preloadRange(env *sim.Env, cfg Config, db kvDB, lo, hi int) {
	const loaders = 16
	perm := rand.New(rand.NewSource(cfg.Seed ^ int64(lo))).Perm(hi - lo)
	wg := sim.NewWaitGroup(env)
	for t := 0; t < loaders; t++ {
		t := t
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := t; i < len(perm); i += loaders {
				k := lo + perm[i]
				s.Put(cfg.Key(k), cfg.Value(k))
			}
		})
	}
	wg.Wait()
}

// opLoopRange is opLoop restricted to keys in [lo, hi).
func opLoopRange(env *sim.Env, cfg Config, kind opKind, s kvSession, rnd *rand.Rand, per, lo, hi int, lat *[]time.Duration) int64 {
	var ops int64
	span := hi - lo
	for i := 0; i < per; i++ {
		k := lo + rnd.Intn(span)
		read := kind == opRead || (kind == opMixed && rnd.Float64() < cfg.ReadRatio)
		if read {
			s.Get(cfg.Key(k))
		} else {
			s.Put(cfg.Key(k), cfg.Value(k))
		}
		ops++
	}
	return ops
}
