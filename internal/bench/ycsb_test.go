package bench

import (
	"bytes"
	"testing"

	"dlsm/internal/service"
)

// TestServiceReadSeqMatchesDirect is the satellite-6 equivalence gate: the
// service tier with a single unlimited, think-free tenant must be
// indistinguishable from driving the harness directly — same virtual
// elapsed time, same op count, same network bytes, byte-identical
// formatted throughput as the -fig 11 table prints it. Any divergence
// means the tier added virtual-time events of its own.
func TestServiceReadSeqMatchesDirect(t *testing.T) {
	cfg := Config{System: DLSM, Threads: 2, N: 10_000, KeyRange: 10_000}
	direct := ReadSeq(cfg)
	svc, reports := ServiceReadSeq(cfg)

	if svc.Ops != direct.Ops {
		t.Errorf("ops: service %d, direct %d", svc.Ops, direct.Ops)
	}
	if svc.Elapsed != direct.Elapsed {
		t.Errorf("virtual elapsed: service %v, direct %v", svc.Elapsed, direct.Elapsed)
	}
	if got, want := fmtTput(svc.Throughput), fmtTput(direct.Throughput); got != want {
		t.Errorf("formatted throughput: service %s, direct %s", got, want)
	}
	if svc.NetToMem != direct.NetToMem || svc.NetFromMem != direct.NetFromMem {
		t.Errorf("net bytes: service %d/%d, direct %d/%d",
			svc.NetToMem, svc.NetFromMem, direct.NetToMem, direct.NetFromMem)
	}
	if svc.SpaceUsed != direct.SpaceUsed {
		t.Errorf("space used: service %d, direct %d", svc.SpaceUsed, direct.SpaceUsed)
	}
	if len(reports) != 1 {
		t.Fatalf("reports: %d", len(reports))
	}
	r := reports[0]
	if r.Throttled != 0 || r.Issued != int64(cfg.Threads) || r.Units != direct.Ops {
		t.Errorf("solo tenant report off: %+v", r)
	}
}

// smokeCfg is the mixed-tenant scenario at test scale.
func smokeCfg() Config {
	return Config{System: DLSM, Threads: 4, N: 20_000, KeyRange: 20_000, Lambda: 4}.Normalize()
}

// TestMixedTenantAdmissionImprovesP99 is the acceptance headline at smoke
// scale: rate-limiting the scan-heavy analytics tenant must strictly
// improve the latency-sensitive frontend tenant's p99, and the analytics
// tenant must actually feel the limit.
func TestMixedTenantAdmissionImprovesP99(t *testing.T) {
	cfg := smokeCfg()
	_, open := RunService(cfg, mixedTenants(cfg, 0), true)
	openRate := open[1].Throughput
	_, limited := RunService(cfg, mixedTenants(cfg, openRate/4), true)

	if limited[1].Throttled == 0 {
		t.Error("analytics tenant was never throttled — limit had no teeth")
	}
	if limited[1].Throughput >= open[1].Throughput {
		t.Errorf("analytics throughput did not drop: %.0f/s -> %.0f/s",
			open[1].Throughput, limited[1].Throughput)
	}
	if limited[0].P99 >= open[0].P99 {
		t.Errorf("frontend p99 did not strictly improve: %v (open) -> %v (limited)",
			open[0].P99, limited[0].P99)
	}
	t.Logf("frontend p99 %v -> %v; analytics %.0f/s -> %.0f/s (throttled %d)",
		open[0].P99, limited[0].P99, open[1].Throughput, limited[1].Throughput,
		limited[1].Throttled)
}

// TestRunServiceDeterministic pins the end-to-end regression contract:
// the same seeded multi-tenant scenario over the full deployment renders
// byte-identical SLO reports on every run.
func TestRunServiceDeterministic(t *testing.T) {
	cfg := Config{System: DLSM, Threads: 4, N: 8_000, KeyRange: 8_000, Lambda: 2}.Normalize()
	render := func() string {
		_, reports := RunService(cfg, mixedTenants(cfg, 20_000), true)
		var buf bytes.Buffer
		service.WriteReports(&buf, reports)
		return buf.String()
	}
	a := render()
	b := render()
	if a != b {
		t.Fatalf("RunService not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}
