package bench

import "dlsm/internal/engine"

// FigRepl sweeps the replication layer (internal/repl) on a randomfill
// workload at Sync durability: ReplicationFactor 1 (the single-copy
// baseline, bit-identical to FigWAL's sync point apart from the second,
// idle memory node), then factor 2 in both transfer modes the FORTH index-
// replication study compares. The per-point replication wire bytes are the
// figure's payload: index-only ships each built extent once
// (primary→replica, n bytes), log-replay reads it back and re-writes it
// (2n), so at equal durability index-only must use strictly fewer bytes.
func FigRepl(n, threads int) *Figure {
	f := &Figure{Name: "Fig Repl", Title: "memnode replication: ack quorum + transfer mode (randomfill, sync WAL)", XLabel: "mode"}
	variants := []struct {
		label string
		rf    int
		mode  string
	}{
		{"rf=1", 1, ""},
		{"rf=2 index-only", 2, "index"},
		{"rf=2 log-replay", 2, "log"},
	}
	s := Series{Label: "dLSM"}
	for _, v := range variants {
		r := FillRandom(Config{System: DLSM, Threads: threads, N: n,
			Durability: engine.DurabilitySync, MemoryNodes: 2,
			ReplicationFactor: v.rf, ReplMode: v.mode})
		c := r.Metrics.Counters
		progress("figrepl %s: %s ops/s (tables %d, sst repl bytes %d, wal mirror bytes %d, clone rpcs %d)",
			v.label, fmtTput(r.Throughput),
			c["repl.tables"], c["repl.net_bytes"], c["wal.mirror_bytes"], c["repl.clone_rpcs"])
		s.Points = append(s.Points, Point{X: v.label, R: r})
	}
	f.Series = append(f.Series, s)
	return f
}
