package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"dlsm/internal/engine"
	"dlsm/internal/rdma"
	"dlsm/internal/sim"
)

// Figure is one reproduced table/figure: labeled series of data points.
type Figure struct {
	Name   string // e.g. "Fig 7(a)"
	Title  string
	XLabel string
	Series []Series
}

// Series is one line/bar group of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement at an x position.
type Point struct {
	X string
	R Result
}

// Print renders the figure as a throughput table, one row per series.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s: %s\n", f.Name, f.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", f.XLabel)
	if len(f.Series) > 0 {
		for _, p := range f.Series[0].Points {
			fmt.Fprintf(tw, "\t%s", p.X)
		}
	}
	fmt.Fprintln(tw)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "%s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(tw, "\t%s", fmtTput(p.R.Throughput))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintMetrics renders one telemetry snapshot for the figure: the richest
// point of the first series carrying one (the first series is dLSM in the
// system sweeps), preferring its last point — the fullest run, with latency
// histograms, flush-pipeline stats, per-level compaction and per-link
// network bytes.
func (f *Figure) PrintMetrics(w io.Writer) {
	var best *Point
	var bestSeries string
	size := func(p Point) int {
		return len(p.R.Metrics.Counters) + len(p.R.Metrics.Gauges) + len(p.R.Metrics.Histograms)
	}
	for si := range f.Series {
		for pi := range f.Series[si].Points {
			p := &f.Series[si].Points[pi]
			if p.R.Metrics.Empty() {
				continue
			}
			if best == nil || size(*p) >= size(*best) {
				best, bestSeries = p, f.Series[si].Label
			}
		}
		if best != nil {
			break // stay within the first series that has metrics at all
		}
	}
	if best == nil {
		return
	}
	fmt.Fprintf(w, "\n%s metrics (%s, %s=%s):\n", f.Name, bestSeries, f.XLabel, best.X)
	best.R.Metrics.WriteText(w)
}

func fmtTput(t float64) string {
	switch {
	case t >= 1e6:
		return fmt.Sprintf("%.2fM", t/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.1fK", t/1e3)
	default:
		return fmt.Sprintf("%.0f", t)
	}
}

// Progress, when non-nil, receives one line per completed data point.
var Progress func(format string, args ...any)

func progress(format string, args ...any) {
	if Progress != nil {
		Progress(format, args...)
	}
}

// Fig7a reproduces Fig 7(a): random-write throughput vs threads, normal
// mode (level0_stop_writes_trigger = 36), all six systems.
func Fig7a(n int, threads []int) *Figure {
	f := &Figure{Name: "Fig 7(a)", Title: "write throughput, normal mode", XLabel: "threads"}
	for _, sys := range AllSystems {
		s := Series{Label: sys.String()}
		for _, th := range threads {
			r := FillRandom(Config{System: sys, Threads: th, N: n})
			progress("fig7a %s threads=%d: %s ops/s", sys, th, fmtTput(r.Throughput))
			s.Points = append(s.Points, Point{X: fmt.Sprint(th), R: r})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig7b reproduces Fig 7(b): bulkload mode (no L0 write stalls); Sherman
// is not applicable (§XI-C1).
func Fig7b(n int, threads []int) *Figure {
	f := &Figure{Name: "Fig 7(b)", Title: "write throughput, bulkload mode", XLabel: "threads"}
	for _, sys := range AllLSM {
		s := Series{Label: sys.String()}
		for _, th := range threads {
			r := FillRandom(Config{System: sys, Threads: th, N: n, Bulkload: true})
			progress("fig7b %s threads=%d: %s ops/s", sys, th, fmtTput(r.Throughput))
			s.Points = append(s.Points, Point{X: fmt.Sprint(th), R: r})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig8 reproduces Fig 8: random-read throughput vs threads after
// compaction settles.
func Fig8(n int, threads []int) *Figure {
	f := &Figure{Name: "Fig 8", Title: "read throughput", XLabel: "threads"}
	for _, sys := range AllSystems {
		s := Series{Label: sys.String()}
		for _, th := range threads {
			r := ReadRandom(Config{System: sys, Threads: th, N: n, KeyRange: n})
			progress("fig8 %s threads=%d: %s ops/s", sys, th, fmtTput(r.Throughput))
			s.Points = append(s.Points, Point{X: fmt.Sprint(th), R: r})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig9 reproduces Fig 9: write and read throughput at growing data sizes,
// plus the remote-memory space usage reported in §XI-C3.
func Fig9(sizes []int, threads int) (write, read *Figure, space map[string][]string) {
	write = &Figure{Name: "Fig 9(write)", Title: "randomfill vs data size", XLabel: "keys"}
	read = &Figure{Name: "Fig 9(read)", Title: "randomread vs data size", XLabel: "keys"}
	space = map[string][]string{}
	for _, sys := range AllSystems {
		ws := Series{Label: sys.String()}
		rs := Series{Label: sys.String()}
		for _, n := range sizes {
			w := FillRandom(Config{System: sys, Threads: threads, N: n, KeyRange: n})
			r := ReadRandom(Config{System: sys, Threads: threads, N: n, KeyRange: n})
			progress("fig9 %s n=%d: write %s, read %s, space %dMB",
				sys, n, fmtTput(w.Throughput), fmtTput(r.Throughput), r.SpaceUsed>>20)
			ws.Points = append(ws.Points, Point{X: fmt.Sprint(n), R: w})
			rs.Points = append(rs.Points, Point{X: fmt.Sprint(n), R: r})
			space[sys.String()] = append(space[sys.String()], fmt.Sprintf("%dMB", r.SpaceUsed>>20))
		}
		write.Series = append(write.Series, ws)
		read.Series = append(read.Series, rs)
	}
	return write, read, space
}

// Fig10 reproduces Fig 10: mixed read/write throughput vs read ratio, with
// dLSM at lambda = 1 and 8 (§VII).
func Fig10(n int, threads int, ratios []float64) *Figure {
	f := &Figure{Name: "Fig 10", Title: "mixed read/write throughput", XLabel: "read%"}
	type variant struct {
		label  string
		sys    System
		lambda int
	}
	variants := []variant{
		{"dLSM-1", DLSM, 1},
		{"dLSM-8", DLSM, 8},
		{"RocksDB-RDMA (8KB)", RocksRDMA8K, 1},
		{"RocksDB-RDMA (2KB)", RocksRDMA2K, 1},
		{"Memory-RocksDB-RDMA", MemoryRocks, 1},
		{"Nova-LSM", NovaLSM, 1},
		{"Sherman", Sherman, 1},
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, ratio := range ratios {
			r := Mixed(Config{System: v.sys, Threads: threads, N: n, KeyRange: n,
				ReadRatio: ratio, Lambda: v.lambda})
			progress("fig10 %s read=%.0f%%: %s ops/s", v.label, ratio*100, fmtTput(r.Throughput))
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%.0f%%", ratio*100), R: r})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig11 reproduces Fig 11: full-table scan throughput (entries/s) with
// prefetching enabled; Nova-LSM is omitted as in the paper.
func Fig11(n int, threads int) *Figure {
	f := &Figure{Name: "Fig 11", Title: "range query (readseq) throughput", XLabel: ""}
	for _, sys := range []System{DLSM, RocksRDMA8K, RocksRDMA2K, MemoryRocks, Sherman} {
		r := ReadSeq(Config{System: sys, Threads: threads, N: n, KeyRange: n})
		progress("fig11 %s: %s entries/s", sys, fmtTput(r.Throughput))
		f.Series = append(f.Series, Series{Label: sys.String(),
			Points: []Point{{X: "entries/s", R: r}}})
	}
	return f
}

// FigScan sweeps the pipelined scan prefetcher: depth {1,2,4,8} crossed
// with chunk ceiling {256KB, 2MB} on full-table scans (readseq) and
// 100-entry random range scans (scanrandom). Depth 1 is the synchronous
// path, byte-identical to the pre-pipeline scans. Run with few threads:
// pipelining hides chunk wire latency behind consumption, which shows
// only while the link has headroom — many concurrent scans saturate the
// wire at any depth. Each point reports the prefetch telemetry.
func FigScan(n, threads int) *Figure {
	f := &Figure{Name: "Fig scan", Title: "pipelined scan prefetching: depth x chunk", XLabel: "depth"}
	workloads := []struct {
		label string
		run   func(Config) Result
	}{
		{"readseq", ReadSeq},
		{"scanrandom", ScanRandom},
	}
	chunks := []int{256 << 10, 2 << 20}
	depths := []int{1, 2, 4, 8}
	for _, w := range workloads {
		for _, chunk := range chunks {
			s := Series{Label: fmt.Sprintf("dLSM %s, %dKB chunks", w.label, chunk>>10)}
			for _, d := range depths {
				r := w.run(Config{System: DLSM, Threads: threads, N: n, KeyRange: n,
					PrefetchDepth: d, PrefetchBytes: chunk})
				c := r.Metrics.Counters
				progress("figscan %s chunk=%dKB depth=%d: %s entries/s (prefetched %dMB, wasted %dKB, stalled %dms)",
					w.label, chunk>>10, d, fmtTput(r.Throughput),
					c["scan.bytes_prefetched"]>>20, c["scan.bytes_wasted"]>>10,
					c["scan.stall_ns"]/1e6)
				s.Points = append(s.Points, Point{X: fmt.Sprint(d), R: r})
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}

// FigCache sweeps the compute-side hot-KV cache budget on a Zipf-skewed
// readrandom workload (s=1.2, scrambled hot set). Budget 0 is the cache
// disabled — the pre-cache read path, unchanged. Each point reports the
// telemetry hit rate alongside throughput.
func FigCache(n, threads int) *Figure {
	f := &Figure{Name: "Fig cache", Title: "hot-KV cache: Zipf(1.2) readrandom vs budget", XLabel: "budget"}
	// Intermediate points sit below the laptop-scale working set so every
	// step of the sweep moves throughput; 64 MB is the paper-scale budget
	// (fully saturated at the default -n).
	budgets := []int64{0, 256 << 10, 1 << 20, 4 << 20, 64 << 20}
	s := Series{Label: "dLSM"}
	for _, b := range budgets {
		r := ReadRandom(Config{System: DLSM, Threads: threads, N: n, KeyRange: n,
			Zipf: 1.2, CacheBudgetBytes: b})
		progress("figcache budget=%s: %s ops/s (hit rate %.1f%%, neg hits %d)",
			fmtBudget(b), fmtTput(r.Throughput), cacheHitRate(r)*100,
			r.Metrics.Counters["cache.neg_hits"])
		s.Points = append(s.Points, Point{X: fmtBudget(b), R: r})
	}
	f.Series = append(f.Series, s)
	return f
}

// FigWAL sweeps the remote write-ahead log's durability modes on a
// randomfill workload: logging off (the pre-WAL write path, the bit-exact
// baseline for every other figure), Async and Sync — each with group
// commit (default) and with one doorbell per write (WALPerWrite). The
// per-point doorbell counts show the coalescing: in Sync mode group
// commit must strictly beat per-write doorbells.
func FigWAL(n, threads int) *Figure {
	f := &Figure{Name: "Fig WAL", Title: "remote WAL durability modes (randomfill)", XLabel: "mode"}
	variants := []struct {
		label    string
		d        engine.Durability
		perWrite bool
	}{
		{"off", engine.DurabilityNone, false},
		{"async", engine.DurabilityAsync, false},
		{"async+perwrite", engine.DurabilityAsync, true},
		{"sync", engine.DurabilitySync, false},
		{"sync+perwrite", engine.DurabilitySync, true},
	}
	s := Series{Label: "dLSM"}
	for _, v := range variants {
		r := FillRandom(Config{System: DLSM, Threads: threads, N: n,
			Durability: v.d, WALPerWrite: v.perWrite})
		c := r.Metrics.Counters
		progress("figwal %s: %s ops/s (appends %d, doorbells %d, ring stalls %d)",
			v.label, fmtTput(r.Throughput),
			c["wal.appends"], c["wal.doorbells"], c["wal.ring_stalls"])
		s.Points = append(s.Points, Point{X: v.label, R: r})
	}
	f.Series = append(f.Series, s)
	return f
}

// FigOffload sweeps the three write-path offload layers (flush
// serialization, block-index build, bloom-filter build) on a randomfill
// workload with the sync remote WAL on — so every offloaded flush replays
// the memnode-resident log ring instead of re-shipping the memtable. The
// cost model gets nonzero IndexByte/FilterKey so the index and filter
// layers are separately visible in CPU utilization; with all layers on,
// compute CPU must sit strictly below the no-offload baseline at no worse
// throughput.
func FigOffload(n, threads int) *Figure {
	costs := sim.DefaultCosts()
	costs.IndexByte = 0.6
	costs.FilterKey = 250 * time.Nanosecond
	f := &Figure{Name: "Fig Offload", Title: "write-path offload ablation (randomfill, sync WAL)", XLabel: "layers"}
	variants := []struct {
		label            string
		flush, idx, flt bool
	}{
		{"off", false, false, false},
		{"flush", true, false, false},
		{"flush+index", true, true, false},
		{"all", true, true, true},
	}
	s := Series{Label: "dLSM"}
	for _, v := range variants {
		r := FillRandom(Config{System: DLSM, Threads: threads, N: n,
			Durability: engine.DurabilitySync, Costs: costs,
			OffloadFlush: v.flush, OffloadIndexBuild: v.idx, OffloadFilter: v.flt})
		c := r.Metrics.Counters
		progress("figoffload %s: %s ops/s (compute CPU %.1f%%, remote CPU %.1f%%, offloaded %d, replay %d, fallback %d)",
			v.label, fmtTput(r.Throughput),
			r.ComputeCPUUtil*100, r.RemoteCPUUtil*100,
			c["offload.flushes"], c["offload.replay"], c["offload.fallback"])
		s.Points = append(s.Points, Point{X: v.label, R: r})
	}
	f.Series = append(f.Series, s)
	return f
}

// cacheHitRate extracts the value-cache hit fraction from a run's
// telemetry snapshot (0 when the cache was off).
func cacheHitRate(r Result) float64 {
	h := r.Metrics.Counters["cache.hits"]
	m := r.Metrics.Counters["cache.misses"]
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func fmtBudget(b int64) string {
	switch {
	case b == 0:
		return "off"
	case b < 1<<20:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dMB", b>>20)
	}
}

// Fig12 reproduces Fig 12: the impact of remote CPU cores on near-data
// compaction at different writer counts, with compute-side compaction as
// the rightmost group. Each point is annotated with remote CPU
// utilization.
func Fig12(n int, cores []int, writers []int) *Figure {
	f := &Figure{Name: "Fig 12", Title: "near-data compaction vs remote cores (normal-mode fill)", XLabel: "writers"}
	for _, c := range cores {
		s := Series{Label: fmt.Sprintf("near-data, %d cores", c)}
		for _, w := range writers {
			r := FillRandom(Config{System: DLSM, Threads: w, N: n, MemoryCores: c})
			progress("fig12 cores=%d writers=%d: %s ops/s (remote CPU %.0f%%)",
				c, w, fmtTput(r.Throughput), r.RemoteCPUUtil*100)
			s.Points = append(s.Points, Point{X: fmt.Sprint(w), R: r})
		}
		f.Series = append(f.Series, s)
	}
	s := Series{Label: "compute-side compaction"}
	for _, w := range writers {
		r := FillRandom(Config{System: DLSM, Threads: w, N: n, DisableNearData: true})
		progress("fig12 no-near-data writers=%d: %s ops/s", w, fmtTput(r.Throughput))
		s.Points = append(s.Points, Point{X: fmt.Sprint(w), R: r})
	}
	f.Series = append(f.Series, s)
	return f
}

// Fig13 reproduces Fig 13: dLSM vs dLSM-Block (8KB) on random writes and
// reads — the byte-addressable SSTable ablation (§VI).
func Fig13(n int, threads int) *Figure {
	f := &Figure{Name: "Fig 13", Title: "byte-addressable SSTable ablation", XLabel: "workload"}
	for _, sys := range []System{DLSM, DLSMBlock} {
		w := FillRandom(Config{System: sys, Threads: threads, N: n, KeyRange: n})
		r := ReadRandom(Config{System: sys, Threads: threads, N: n, KeyRange: n})
		progress("fig13 %s: write %s, read %s", sys, fmtTput(w.Throughput), fmtTput(r.Throughput))
		f.Series = append(f.Series, Series{Label: sys.String(), Points: []Point{
			{X: "randomfill", R: w},
			{X: "randomread", R: r},
		}})
	}
	return f
}

// Fig14a reproduces Fig 14(a): one compute node, scaling memory nodes with
// the data volume; the reference series holds the same data in one node.
func Fig14a(baseN int, memNodes []int, threads int) *Figure {
	f := &Figure{Name: "Fig 14(a)", Title: "scale out memory nodes (data grows with nodes)", XLabel: "memory nodes"}
	wr := Series{Label: "write (multi-node)"}
	rd := Series{Label: "read (multi-node)"}
	wrRef := Series{Label: "write (single node, same data)"}
	rdRef := Series{Label: "read (single node, same data)"}
	for _, m := range memNodes {
		n := baseN * m
		cfgM := Config{System: DLSM, Threads: threads, N: n, KeyRange: n,
			ComputeNodes: 1, MemoryNodes: m, Lambda: max(8, m),
			ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}
		w := runCluster(cfgM, opFill, false)
		r := runCluster(cfgM, opRead, true)
		progress("fig14a m=%d n=%d: write %s, read %s", m, n, fmtTput(w.Throughput), fmtTput(r.Throughput))
		wr.Points = append(wr.Points, Point{X: fmt.Sprint(m), R: Result{Throughput: w.Throughput}})
		rd.Points = append(rd.Points, Point{X: fmt.Sprint(m), R: Result{Throughput: r.Throughput}})

		cfg1 := cfgM
		cfg1.MemoryNodes = 1
		w1 := runCluster(cfg1, opFill, false)
		r1 := runCluster(cfg1, opRead, true)
		progress("fig14a single-node n=%d: write %s, read %s", n, fmtTput(w1.Throughput), fmtTput(r1.Throughput))
		wrRef.Points = append(wrRef.Points, Point{X: fmt.Sprint(m), R: Result{Throughput: w1.Throughput}})
		rdRef.Points = append(rdRef.Points, Point{X: fmt.Sprint(m), R: Result{Throughput: r1.Throughput}})
	}
	f.Series = []Series{wr, wrRef, rd, rdRef}
	return f
}

// Fig14b reproduces Fig 14(b): one memory node, scaling compute nodes at
// fixed data size.
func Fig14b(n int, computeNodes []int, threadsPerNode int) *Figure {
	f := &Figure{Name: "Fig 14(b)", Title: "scale out compute nodes (1 memory node)", XLabel: "compute nodes"}
	wr := Series{Label: "write"}
	rd := Series{Label: "read"}
	for _, c := range computeNodes {
		cfg := Config{System: DLSM, Threads: c * threadsPerNode, N: n, KeyRange: n,
			ComputeNodes: c, MemoryNodes: 1, Lambda: 8,
			ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}
		w := runCluster(cfg, opFill, false)
		r := runCluster(cfg, opRead, true)
		progress("fig14b c=%d: write %s, read %s", c, fmtTput(w.Throughput), fmtTput(r.Throughput))
		wr.Points = append(wr.Points, Point{X: fmt.Sprint(c), R: Result{Throughput: w.Throughput}})
		rd.Points = append(rd.Points, Point{X: fmt.Sprint(c), R: Result{Throughput: r.Throughput}})
	}
	f.Series = []Series{wr, rd}
	return f
}

// Fig14aPoint measures one Fig 14(a) write point: 1 compute node, m memory
// nodes, data scaled with m.
func Fig14aPoint(baseN, m, threads int) ClusterResult {
	return runCluster(Config{System: DLSM, Threads: threads, N: baseN * m, KeyRange: baseN * m,
		ComputeNodes: 1, MemoryNodes: m, Lambda: max(8, m),
		ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}, opFill, false)
}

// Fig14bPoint measures one Fig 14(b) write point: c compute nodes, 1
// memory node.
func Fig14bPoint(n, c, threadsPerNode int) ClusterResult {
	return runCluster(Config{System: DLSM, Threads: c * threadsPerNode, N: n, KeyRange: n,
		ComputeNodes: c, MemoryNodes: 1, Lambda: 8,
		ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}, opFill, false)
}

// Fig15Point measures one Fig 15 write point: x compute and x memory
// nodes, data scaled with x.
func Fig15Point(sys System, baseN, x, threadsPerNode int) ClusterResult {
	return runCluster(Config{System: sys, Threads: x * threadsPerNode, N: baseN * x, KeyRange: baseN * x,
		ComputeNodes: x, MemoryNodes: x, Lambda: 8,
		ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}, opFill, false)
}

// Fig15 reproduces Fig 15: scaling compute and memory nodes together
// (xCxM, lambda=8, data grows with nodes) for dLSM, Nova-LSM and Sherman.
func Fig15(baseN int, nodes []int, threadsPerNode int) (write, read *Figure) {
	write = &Figure{Name: "Fig 15(write)", Title: "multi-node randomfill (xCxM)", XLabel: "nodes"}
	read = &Figure{Name: "Fig 15(read)", Title: "multi-node randomread (xCxM)", XLabel: "nodes"}
	for _, sys := range []System{DLSM, NovaLSM, Sherman} {
		ws := Series{Label: sys.String()}
		rs := Series{Label: sys.String()}
		for _, x := range nodes {
			n := baseN * x
			cfg := Config{System: sys, Threads: x * threadsPerNode, N: n, KeyRange: n,
				ComputeNodes: x, MemoryNodes: x, Lambda: 8,
				ComputeCores: 16, MemoryCores: 8, Link: rdma.FDR56()}
			w := runCluster(cfg, opFill, false)
			r := runCluster(cfg, opRead, true)
			progress("fig15 %s x=%d: write %s, read %s", sys, x, fmtTput(w.Throughput), fmtTput(r.Throughput))
			ws.Points = append(ws.Points, Point{X: fmt.Sprintf("%dC%dM", x, x), R: Result{Throughput: w.Throughput}})
			rs.Points = append(rs.Points, Point{X: fmt.Sprintf("%dC%dM", x, x), R: Result{Throughput: r.Throughput}})
		}
		write.Series = append(write.Series, ws)
		read.Series = append(read.Series, rs)
	}
	return write, read
}
