package bench

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"time"

	"dlsm/internal/service"
	"dlsm/internal/telemetry"
)

// svcDB adapts the bench harness's system-under-test to the service
// tier's backend interface.
type svcDB struct{ db kvDB }

func (d svcDB) NewSession() service.Session { return svcSession{s: d.db.NewSession()} }

type svcSession struct{ s kvSession }

func (s svcSession) Put(k, v []byte) error          { s.s.Put(k, v); return nil }
func (s svcSession) Get(k []byte) ([]byte, error)   { return s.s.Get(k) }
func (s svcSession) Scan(st []byte, fn func(k, v []byte) bool) { s.s.Scan(st, fn) }
func (s svcSession) Close()                         { s.s.Close() }

// RunService runs one service-tier scenario over a deployment built from
// cfg: deploy, open the system, preload cfg.Preload keys (when preload is
// set), settle, then drive the tenants through a service.Tier and collect
// both the harness Result (aggregate units, virtual elapsed, CPU and
// network accounting — the same bookkeeping measure() does) and the
// per-tenant SLO reports. A tenant workload with KeyRange 0 inherits
// cfg.KeyRange.
func RunService(cfg Config, tenants []service.TenantConfig, preload bool) (Result, []service.Report) {
	cfg = cfg.Normalize()
	for i := range tenants {
		if tenants[i].Workload.KeyRange == 0 {
			tenants[i].Workload.KeyRange = cfg.KeyRange
		}
	}
	env, fab, cns, servers := deployment(cfg)
	var res Result
	var reports []service.Report
	env.Run(func() {
		db := openSystem(cfg.System, cfg, cns[0], servers)
		if preload {
			doPreload(env, cfg, db)
			db.Settle()
		}
		mn := servers[0].Node()
		cn := cns[0]
		mn.CPU.ResetStats()
		cn.CPU.ResetStats()
		toMem0, _ := fab.LinkStats(cn, mn)
		fromMem0, _ := fab.LinkStats(mn, cn)

		tier := service.New(env, svcDB{db}, service.Config{
			Seed:    cfg.Seed,
			Key:     cfg.Key,
			Value:   cfg.Value,
			Tenants: tenants,
		})
		start := env.Now()
		reports = tier.Run()
		elapsed := time.Duration(env.Now() - start)

		res.System = cfg.System
		res.Threads = 0
		for _, r := range reports {
			res.Threads += r.Clients
			res.Ops += r.Units
		}
		res.Elapsed = elapsed
		if elapsed > 0 {
			res.Throughput = float64(res.Ops) / elapsed.Seconds()
		}
		res.SpaceUsed = db.SpaceUsed()
		res.RemoteCPUUtil = mn.CPU.Utilization()
		res.ComputeCPUUtil = cn.CPU.Utilization()
		toMem1, _ := fab.LinkStats(cn, mn)
		fromMem1, _ := fab.LinkStats(mn, cn)
		res.NetToMem = toMem1 - toMem0
		res.NetFromMem = fromMem1 - fromMem0

		db.Close()
		res.Metrics = telemetry.Merge(tier.TelemetrySnapshot(), fab.Telemetry().Snapshot())
		if t, ok := db.(interface{ TelemetrySnapshot() telemetry.Snapshot }); ok {
			res.Metrics = telemetry.Merge(t.TelemetrySnapshot(), res.Metrics)
		}
		fab.Close()
	})
	env.Wait()
	debug.FreeOSMemory()
	return res, reports
}

// soloTenant is the single-tenant, no-limit, no-think configuration: the
// service tier degenerated to the direct harness's thread loop.
func soloTenant(name string, w service.Workload, clients, ops int) service.TenantConfig {
	return service.TenantConfig{Name: name, Clients: clients, Ops: ops, Workload: w}
}

// ServiceReadSeq runs the direct harness's readseq workload (every client
// scans the whole database once) through the service tier with a single
// unlimited tenant. With no rate limit and no think time the tier adds no
// virtual-time events, so the result is byte-identical to ReadSeq(cfg) —
// the equivalence a regression test diffs.
func ServiceReadSeq(cfg Config) (Result, []service.Report) {
	cfg = cfg.Normalize()
	return RunService(cfg, []service.TenantConfig{
		// Ops = Clients: each client's budget is exactly one full scan.
		soloTenant("solo", service.ReadSeq(cfg.KeyRange), cfg.Threads, cfg.Threads),
	}, true)
}

// YCSBWorkloads lists the six core workload letters.
var YCSBWorkloads = []byte{'A', 'B', 'C', 'D', 'E', 'F'}

// YCSBResult is everything -fig ycsb produces: the six-workload
// single-tenant matrix and the mixed-tenant admission-control scenario
// (the same two tenants with and without a rate limit on the scan-heavy
// one).
type YCSBResult struct {
	Matrix        *Figure
	MatrixReports map[string]service.Report

	// Mixed scenario: a latency-sensitive YCSB-B tenant ("frontend")
	// beside a scan-heavy YCSB-E tenant ("analytics"), first with no
	// limits, then with analytics rate-limited. Reports are in tenant
	// order: frontend, analytics.
	Open    []service.Report
	Limited []service.Report
}

// mixedTenants builds the two-tenant scenario. limit rate-limits the
// analytics tenant (requests/second of virtual time; 0 = no limits).
func mixedTenants(cfg Config, limit float64) []service.TenantConfig {
	clients := cfg.Threads / 2
	if clients < 1 {
		clients = 1
	}
	frontend := service.TenantConfig{
		Name:     "frontend",
		Clients:  clients,
		Ops:      cfg.N / 2,
		Workload: service.YCSB('B', cfg.KeyRange),
	}
	analytics := service.TenantConfig{
		Name:    "analytics",
		Clients: clients,
		// Scans visit up to 100 entries each; a tenth of the frontend's
		// op budget keeps the two tenants' runtimes comparable.
		Ops:      cfg.N / 20,
		Workload: service.YCSB('E', cfg.KeyRange),
	}
	if limit > 0 {
		analytics.RatePerSec = limit
		analytics.Burst = 8
		// Queue at most one token interval deep; beyond that, fail fast.
		// (A closed loop of c clients queues at most c deep, so a deadline
		// of many intervals would never throttle anything.)
		analytics.AdmissionDeadline = time.Duration(float64(time.Second) / limit)
	}
	return []service.TenantConfig{frontend, analytics}
}

// FigYCSB runs the full YCSB A-F matrix as single unlimited tenants, then
// the mixed-tenant scenario with and without admission control on the
// analytics tenant. The headline: rate-limiting the scan-heavy tenant
// strictly improves the latency-sensitive tenant's p99.
func FigYCSB(n, threads int) *YCSBResult {
	out := &YCSBResult{
		Matrix:        &Figure{Name: "Fig YCSB", Title: "YCSB core workloads (single tenant, no limits)", XLabel: "workload"},
		MatrixReports: map[string]service.Report{},
	}
	s := Series{Label: "dLSM"}
	for _, w := range YCSBWorkloads {
		cfg := Config{System: DLSM, Threads: threads, N: n, KeyRange: n, Lambda: 4}.Normalize()
		wl := service.YCSB(w, cfg.KeyRange)
		r, reps := RunService(cfg, []service.TenantConfig{
			soloTenant("solo", wl, cfg.Threads, cfg.N),
		}, true)
		rep := reps[0]
		out.MatrixReports[wl.Name] = rep
		progress("figycsb %s: %s ops/s (p50=%v p99=%v p999=%v)",
			wl.Name, fmtTput(rep.Throughput), rep.P50, rep.P99, rep.P999)
		s.Points = append(s.Points, Point{X: wl.Name, R: r})
	}
	out.Matrix.Series = append(out.Matrix.Series, s)

	// Mixed-tenant scenario. The limit is derived from the unlimited
	// run's own analytics rate, so the scenario scales with -n: a quarter
	// of the rate the scan tenant reached with no limits.
	cfg := Config{System: DLSM, Threads: threads, N: n, KeyRange: n, Lambda: 4}.Normalize()
	_, out.Open = RunService(cfg, mixedTenants(cfg, 0), true)
	openRate := out.Open[1].Throughput
	_, out.Limited = RunService(cfg, mixedTenants(cfg, openRate/4), true)
	progress("figycsb mixed: frontend p99 %v (open) -> %v (analytics limited to %.0f/s, throttled %d)",
		out.Open[0].P99, out.Limited[0].P99, openRate/4, out.Limited[1].Throttled)
	return out
}

// Print renders the matrix table, the per-workload SLO rows, and the
// mixed-tenant scenario's before/after SLO tables.
func (y *YCSBResult) Print(w io.Writer) {
	y.Matrix.Print(w)
	fmt.Fprintln(w, "\nPer-workload SLOs (single tenant):")
	var names []string
	for name := range y.MatrixReports {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []service.Report
	for _, name := range names {
		r := y.MatrixReports[name]
		r.Tenant = name
		rows = append(rows, r)
	}
	service.WriteReports(w, rows)

	fmt.Fprintln(w, "\nMixed tenants, no limits (frontend = YCSB-B, analytics = YCSB-E):")
	service.WriteReports(w, y.Open)
	fmt.Fprintln(w, "\nMixed tenants, analytics rate-limited:")
	service.WriteReports(w, y.Limited)
	if len(y.Open) == 2 && len(y.Limited) == 2 {
		fmt.Fprintf(w, "\nfrontend p99: %v -> %v (admission control on the scan tenant)\n",
			y.Open[0].P99, y.Limited[0].P99)
	}
}
