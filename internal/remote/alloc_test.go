package remote

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeReuse(t *testing.T) {
	a := NewAllocator(1 << 20)
	off1, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == off2 {
		t.Fatal("overlapping allocations")
	}
	a.Free(off1, 1000)
	off3, err := a.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if off3 != off1 {
		t.Fatalf("first-fit should reuse freed extent: got %d, want %d", off3, off1)
	}
}

func TestExhaustion(t *testing.T) {
	a := NewAllocator(256)
	if _, err := a.Alloc(200); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(200); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestCoalescingRestoresFullSpace(t *testing.T) {
	a := NewAllocator(1 << 16)
	var offs []int64
	for i := 0; i < 16; i++ {
		off, err := a.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free in shuffled order; coalescing must rebuild one max-size extent.
	rand.New(rand.NewSource(7)).Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
	for _, off := range offs {
		a.Free(off, 4096)
	}
	if a.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", a.Used())
	}
	if _, err := a.Alloc(1 << 16); err != nil {
		t.Fatalf("full-size alloc after coalescing failed: %v", err)
	}
}

func TestOverlappingFreePanics(t *testing.T) {
	a := NewAllocator(1 << 16)
	off, _ := a.Alloc(128)
	a.Free(off, 128)
	a.Alloc(4096) // keep used > 0 so the accounting check passes first
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(off, 128)
}

func TestAlignment(t *testing.T) {
	a := NewAllocator(1 << 16)
	off1, _ := a.Alloc(1)
	off2, _ := a.Alloc(1)
	if off1%Align != 0 || off2%Align != 0 {
		t.Fatalf("offsets not aligned: %d, %d", off1, off2)
	}
	if off2-off1 < Align {
		t.Fatalf("allocations closer than alignment: %d, %d", off1, off2)
	}
}

func TestQuickAllocFreeNoOverlap(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
	}
	f := func(ops []op) bool {
		a := NewAllocator(1 << 20)
		type ext struct {
			off int64
			n   int
		}
		var live []ext
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				n := int(o.Size%8192) + 1
				off, err := a.Alloc(n)
				if err != nil {
					continue
				}
				// Check against all live extents for overlap.
				for _, e := range live {
					lo, hi := off, off+alignUp(int64(n))
					elo, ehi := e.off, e.off+alignUp(int64(e.n))
					if lo < ehi && elo < hi {
						return false
					}
				}
				live = append(live, ext{off, n})
			} else {
				e := live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(e.off, e.n)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
